// Fold-path engagement smoke tests: cheap guards (run in CI next to
// the short-iteration Fig. 14/15 benchmarks) that the summary fast
// path actually carries the paper workloads — including the negation
// query, whose watermark-versioned pane summaries are easy to
// accidentally disqualify — and that it agrees with the forced
// per-vertex scan on them.
package greta_test

import (
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/bench"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// runSmoke executes q over evs with the given scan discipline and
// returns the engine for inspection.
func runSmoke(t *testing.T, qsrc string, evs []*event.Event, forceScan bool) *core.Engine {
	t.Helper()
	plan, err := core.NewPlan(query.MustParse(qsrc), aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	eng.SetForceVertexScan(forceScan)
	eng.Run(event.NewSliceStream(evs))
	return eng
}

func testFoldEngagement(t *testing.T, qsrc string, evs []*event.Event) {
	t.Helper()
	fast := runSmoke(t, qsrc, evs, false)
	scan := runSmoke(t, qsrc, evs, true)
	fs, ss := fast.Stats(), scan.Stats()
	if fs.SummaryFolds == 0 {
		t.Fatal("summary fast path never engaged (SummaryFolds == 0)")
	}
	if fs.Edges != ss.Edges || fs.Inserted != ss.Inserted {
		t.Fatalf("fold path diverges from per-vertex scan: edges %d vs %d, inserted %d vs %d",
			fs.Edges, ss.Edges, fs.Inserted, ss.Inserted)
	}
	fr, sr := fast.Results(), scan.Results()
	if len(fr) != len(sr) {
		t.Fatalf("%d results (fold) vs %d (scan)", len(fr), len(sr))
	}
	for i := range fr {
		if fr[i].Group != sr[i].Group || fr[i].Wid != sr[i].Wid || fr[i].Values[0] != sr[i].Values[0] {
			t.Fatalf("result %d: (%q, %d, %v) fold vs (%q, %d, %v) scan",
				i, fr[i].Group, fr[i].Wid, fr[i].Values[0], sr[i].Group, sr[i].Wid, sr[i].Values[0])
		}
	}
}

// TestFig14FoldEngagement guards the positive-pattern fast path on the
// Figure 14 stock workload.
func TestFig14FoldEngagement(t *testing.T) {
	testFoldEngagement(t, bench.Q1Positive, stockStream(2000, 0))
}

// TestFig15FoldEngagement guards the negation fast path on the Figure
// 15 workload: dependency links must no longer force per-vertex scans.
func TestFig15FoldEngagement(t *testing.T) {
	testFoldEngagement(t, bench.Q1Negation, stockStream(2000, 0.002))
}
