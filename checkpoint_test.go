package greta_test

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/greta-cep/greta"
)

// ckDrain collects a closed handle's results sorted by (group, window)
// — delivery order differs between a live run (emission order) and a
// restored one (the pre-crash prefix is re-buffered in sorted order).
func ckDrain(h *greta.Handle) []greta.Result {
	var out []greta.Result
	for r := range h.Results() {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b greta.Result) int {
		if c := cmp.Compare(a.Group, b.Group); c != 0 {
			return c
		}
		return cmp.Compare(a.Wid, b.Wid)
	})
	return out
}

// ckStockStream builds a deterministic stock stream long enough to
// cross several checkpoint boundaries.
func ckStockStream(n int) []*greta.Event {
	b := &greta.Builder{}
	for i := 0; i < n; i++ {
		t := greta.Time(1 + i/2) // pairs share a timestamp
		price := float64(100 - (i*7)%13)
		company := fmt.Sprintf("c%d", i%3)
		b.AddStr("Stock", t, map[string]float64{"price": price}, map[string]string{"company": company})
		if i%11 == 0 {
			b.AddStr("Halt", t, nil, map[string]string{"company": company})
		}
	}
	return b.Events()
}

func ckResultsEqual(t *testing.T, ctx string, want, got []greta.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Group != g.Group || w.Wid != g.Wid || len(w.Values) != len(g.Values) {
			t.Fatalf("%s: result %d = %+v, want %+v", ctx, i, g, w)
		}
		for j := range w.Values {
			if math.Float64bits(w.Values[j]) != math.Float64bits(g.Values[j]) {
				t.Fatalf("%s: result %d value %d = %v, want %v (bit-exact)", ctx, i, j, g.Values[j], w.Values[j])
			}
		}
	}
}

// TestRuntimeCheckpointRestore kills a checkpointing runtime
// mid-stream, restores from disk, replays the suffix, and demands the
// same results and stats as an uninterrupted run — through the public
// API only.
func TestRuntimeCheckpointRestore(t *testing.T) {
	const every = greta.Time(16)
	queries := []string{
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN MIN(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] WITHIN 24 SLIDE 8",
	}
	evs := ckStockStream(260)

	run := func(rt *greta.Runtime, hs []*greta.Handle, from greta.Time) []*greta.Handle {
		for _, ev := range evs {
			if ev.Time < from {
				continue
			}
			if err := rt.Process(ev); err != nil {
				t.Fatal(err)
			}
		}
		return hs
	}
	register := func(rt *greta.Runtime) []*greta.Handle {
		hs := make([]*greta.Handle, len(queries))
		for i, q := range queries {
			h, err := rt.Register(greta.MustCompile(q), greta.WithID(fmt.Sprintf("q%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = h
		}
		return hs
	}

	// Uninterrupted control run. It checkpoints too (into its own
	// directory) so its boundary-advance cadence — which can split
	// summary folds differently — matches the crashed run's; results
	// are identical either way, Stats are bit-identical only between
	// runs with the same cadence.
	rtA := greta.NewRuntime(greta.WithCheckpoint(t.TempDir(), every))
	hsA := run(rtA, register(rtA), 0)
	if err := rtA.Close(); err != nil {
		t.Fatal(err)
	}

	// Checkpointing run, killed after the last boundary it crossed.
	dir := t.TempDir()
	rtB := greta.NewRuntime(greta.WithCheckpoint(dir, every),
		greta.WithCheckpointErrors(func(err error) { t.Errorf("checkpoint: %v", err) }))
	hsB := register(rtB)
	crashAt := len(evs) * 3 / 4
	for _, ev := range evs[:crashAt] {
		if err := rtB.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: rtB is abandoned without Close. Restore from disk.
	res, err := greta.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Handles) != len(queries) {
		t.Fatalf("restored %d handles, want %d", len(res.Handles), len(queries))
	}
	for i, h := range res.Handles {
		if want := fmt.Sprintf("q%d", i); h.ID() != want {
			t.Fatalf("handle %d id %q, want %q", i, h.ID(), want)
		}
		if h.Query() != hsB[i].Query() {
			t.Fatalf("handle %d query %q, want %q", i, h.Query(), hsB[i].Query())
		}
	}
	if res.ReplayFrom <= 0 || res.ReplayFrom%every != 0 {
		t.Fatalf("replay bound %d is not a positive boundary multiple of %d", res.ReplayFrom, every)
	}
	run(res.Runtime, res.Handles, res.ReplayFrom)
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}

	for i := range queries {
		ctx := fmt.Sprintf("statement %d", i)
		ckResultsEqual(t, ctx, ckDrain(hsA[i]), ckDrain(res.Handles[i]))
		if a, r := hsA[i].Stats(), res.Handles[i].Stats(); a != r {
			t.Fatalf("%s: stats diverge after restore:\n  uninterrupted %+v\n  restored      %+v", ctx, a, r)
		}
	}

	// The restored runtime re-armed checkpointing into the same dir:
	// the replay must have produced newer generations.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("restored runtime wrote no further checkpoints")
	}
}

// TestRestoreErrors covers the degraded paths: no checkpoint at all
// and a corrupt newest generation falling back to the previous one.
func TestRestoreErrors(t *testing.T) {
	if _, err := greta.Restore(t.TempDir()); !errors.Is(err, greta.ErrNoCheckpoint) {
		t.Fatalf("Restore(empty) = %v, want ErrNoCheckpoint", err)
	}

	dir := t.TempDir()
	rt := greta.NewRuntime(greta.WithCheckpoint(dir, 8))
	if _, err := rt.Register(greta.MustCompile(
		"RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 SLIDE 5")); err != nil {
		t.Fatal(err)
	}
	for _, ev := range ckStockStream(80) {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt every checkpoint file: Restore must refuse loudly rather
	// than resurrect bad state.
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.gck"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := greta.Restore(dir); err == nil {
		t.Fatal("Restore of all-corrupt directory succeeded")
	}
}

// TestRestoreFallbackGeneration corrupts the newest checkpoint of a
// real run: Restore must fall back to the previous generation and the
// (longer) replay must still converge to the uninterrupted results —
// a fault costs replay work, never windows.
func TestRestoreFallbackGeneration(t *testing.T) {
	const every = greta.Time(16)
	const q = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	evs := ckStockStream(260)

	feed := func(rt *greta.Runtime, from greta.Time) {
		for _, ev := range evs {
			if ev.Time >= from {
				if err := rt.Process(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	rtA := greta.NewRuntime(greta.WithCheckpoint(t.TempDir(), every))
	hA, err := rtA.Register(greta.MustCompile(q))
	if err != nil {
		t.Fatal(err)
	}
	feed(rtA, 0)
	if err := rtA.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rtB := greta.NewRuntime(greta.WithCheckpoint(dir, every))
	if _, err := rtB.Register(greta.MustCompile(q)); err != nil {
		t.Fatal(err)
	}
	feed(rtB, 0) // crash here: rtB abandoned before Close

	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.gck"))
	if err != nil || len(files) < 2 {
		t.Fatalf("want >= 2 generations on disk, got %v (%v)", files, err)
	}
	slices.Sort(files)
	newest := files[len(files)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := greta.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The fallback generation is one interval older than the newest.
	if res.ReplayFrom%every != 0 {
		t.Fatalf("fallback replay bound %d not boundary-aligned", res.ReplayFrom)
	}
	feed(res.Runtime, res.ReplayFrom)
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	ckResultsEqual(t, "fallback generation", ckDrain(hA), ckDrain(res.Handles[0]))
	if a, r := hA.Stats(), res.Handles[0].Stats(); a != r {
		t.Fatalf("fallback stats diverge:\n  uninterrupted %+v\n  restored      %+v", a, r)
	}
}

// TestCheckpointWriteFailureDegrades points checkpointing at an
// uncreatable directory (a regular file shadows the path): every
// scheduled write fails, the failures surface through
// WithCheckpointErrors, and ingestion keeps running.
func TestCheckpointWriteFailureDegrades(t *testing.T) {
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, []byte("i am a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	var failures int
	rt := greta.NewRuntime(
		greta.WithCheckpoint(blocked, 16),
		greta.WithCheckpointErrors(func(err error) {
			failures++
			if err == nil {
				t.Error("nil checkpoint error reported")
			}
		}))
	h, err := rt.Register(greta.MustCompile(
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 10 SLIDE 5"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range ckStockStream(200) {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if failures == 0 {
		t.Fatal("no checkpoint failure was reported")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ckDrain(h)) == 0 {
		t.Fatal("runtime stopped serving after checkpoint failures")
	}
}

// TestManualCheckpoint exercises Runtime.Checkpoint (the
// {"cmd":"checkpoint"} path): unconfigured runtimes refuse, configured
// ones persist a restorable snapshot on demand.
func TestManualCheckpoint(t *testing.T) {
	if err := greta.NewRuntime().Checkpoint(); err == nil {
		t.Fatal("Checkpoint without WithCheckpoint succeeded")
	}

	dir := t.TempDir()
	rt := greta.NewRuntime(greta.WithCheckpoint(dir, 1<<40)) // never self-triggers
	h, err := rt.Register(greta.MustCompile(
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 10 SLIDE 5"))
	if err != nil {
		t.Fatal(err)
	}
	evs := ckStockStream(120)
	for _, ev := range evs {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := greta.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is fully consumed and timestamps were quiescent at the
	// snapshot: nothing to replay, closing both must agree.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	ckResultsEqual(t, "manual checkpoint", ckDrain(h), ckDrain(res.Handles[0]))
}
