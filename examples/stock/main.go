// Stock: the paper's query Q1 — count price down-trends per sector
// over a sliding window of an NYSE-style transaction stream
// (algorithmic trading, paper §1).
//
// Every event in a trend must carry the same company and sector
// ([company, sector]), prices must strictly decrease between adjacent
// trend events, and counts are grouped by sector: a high down-trend
// count across companies of one sector is the paper's sell-signal
// indicator.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/greta-cep/greta"
)

func main() {
	rt := greta.NewRuntime()
	h, err := rt.Register(greta.MustCompile(`
		RETURN sector, COUNT(*)
		PATTERN Stock S+
		WHERE [company, sector] AND S.price > NEXT(S).price
		GROUP-BY sector
		WITHIN 60 seconds SLIDE 20 seconds`))
	if err != nil {
		log.Fatal(err)
	}

	cfg := greta.DefaultStock(50000)
	cfg.DownBias = 0.15 // a bearish session
	events := greta.StockStream(cfg)

	h.OnResult(func(r greta.Result) {
		// Results stream out as windows close.
		fmt.Printf("window %3d [%4d,%4d) sector=%-6s down-trends=%g\n",
			r.Wid, r.WindowStart, r.WindowEnd, r.Group, r.Values[0])
	})
	if err := rt.Run(context.Background(), greta.NewSliceStream(events)); err != nil {
		log.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	st := h.Stats()
	fmt.Printf("\nprocessed %d events across %d partitions; %d vertices stored, %d edges traversed\n",
		st.Events, st.Partitions, st.Inserted, st.Edges)
	fmt.Printf("traversal split: %d per-vertex visits vs %d summary folds (%d watermark rebuilds)\n",
		st.ScanVisits, st.SummaryFolds, st.SummaryRebuilds)
}
