// Netserver: stream events to a multi-query GRETA runtime over TCP
// and receive window aggregates, tagged per statement, as they close —
// the ingestion path a deployment would use, with bounded out-of-order
// tolerance and mid-stream statement registration.
//
// The server starts each session with Q1 (down-trend counting per
// sector); the in-process client streams a generated stock feed with
// artificial disorder (repaired by the server's reorder slack) and,
// halfway through, registers a second query — a per-sector volume
// monitor — which sees the stream from its registration watermark
// onward.
//
// The session is resumable: the client asks for a session id up front
// (EnableResume) and every event carries a sequence number. Three
// quarters in, the client stalls past the server's read timeout — the
// server parks the session in its linger window instead of tearing it
// down — and heals the break with Resume, which redials and replays
// the unacknowledged tail of the send buffer; the server dedups by
// seq, so every event still applies exactly once. The run ends with
// Server.Shutdown: stop accepting, drain and flush the remaining
// sessions, then close.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/netstream"
)

func main() {
	q1, err := greta.Compile(`
		RETURN sector, COUNT(*)
		PATTERN Stock S+
		WHERE [company, sector] AND S.price > NEXT(S).price
		GROUP-BY sector
		WITHIN 30 seconds SLIDE 10 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	srv := &netstream.Server{
		Statements:    []*greta.Statement{q1}, // registered as "q0" per session
		AllowRegister: true,                   // clients may add statements mid-stream
		Slack:         5,                      // tolerate events up to 5 seconds late
		ReadTimeout:   300 * time.Millisecond, // a silent peer is parked, not served
		Linger:        30 * time.Second,       // parked sessions await a resume this long
		Heartbeat:     100 * time.Millisecond, // pings surface dead peers on the write path
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			// listener closed at shutdown
			_ = err
		}
	}()
	fmt.Printf("serving GRETA sessions on %s\n", ln.Addr())

	client, err := netstream.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	sid, err := client.EnableResume(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumable session %q\n", sid)

	// Stream a stock feed with bounded disorder (±3 seconds of jitter);
	// halfway through, attach the volume monitor mid-stream.
	rng := rand.New(rand.NewSource(7))
	events := greta.StockStream(greta.DefaultStock(20000))
	var volumeID string
	for i, ev := range events {
		if i == len(events)/2 {
			volumeID, err = client.Register(`
				RETURN sector, COUNT(S)
				PATTERN Stock S+
				WHERE [sector]
				GROUP-BY sector
				WITHIN 30 seconds SLIDE 10 seconds`)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("registered volume monitor mid-stream as %q\n", volumeID)
			// The stats frame is the session's live observability view:
			// resilience cursors (applied/dropped, last seq, resumes) and
			// the runtime's event-time frontier — no barrier, no flush.
			if st, err := client.Stats(); err == nil {
				fmt.Printf("mid-stream stats: processed=%d dropped=%d last_seq=%d statements=%d watermark=%d\n",
					st.Processed, st.Dropped, st.LastSeq, st.Statements, st.Watermark)
			}
		}
		if i == 3*len(events)/4 {
			// Stall past the server's read timeout: the server parks the
			// session in its linger window and closes the connection.
			// Resume redials, identifies the session, learns the last
			// sequence number the server applied, and replays the
			// unacknowledged tail — nothing is lost, nothing doubles.
			time.Sleep(srv.ReadTimeout + 200*time.Millisecond)
			if err := client.Resume(ctx); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("connection parked by read timeout; resumed session %q at event %d\n", sid, i)
		}
		t := ev.Time
		if jitter := rng.Intn(4); jitter > 0 && t >= int64(jitter) {
			t -= int64(jitter)
		}
		if err := client.Send(string(ev.Type), t, ev.Attrs, ev.Str); err != nil {
			// A break the stall did not surface: heal it and keep going —
			// the failed event was buffered before the write, so the
			// resume replay covers it.
			if rerr := client.Resume(ctx); rerr != nil {
				log.Fatal(rerr)
			}
			fmt.Printf("send failed (%v); resumed session %q at event %d\n", err, sid, i)
		}
	}

	results, processed, err := client.Flush()
	if err != nil {
		log.Fatal(err)
	}
	perStmt := map[string]int{}
	for _, r := range results {
		perStmt[r.Stmt]++
	}
	fmt.Printf("server processed %d events; window results per statement: %v\n", processed, perStmt)
	for i, r := range results {
		fmt.Printf("  [%s] window %3d [%3d,%3d) sector=%-6s value=%g\n",
			r.Stmt, r.Wid, r.Start, r.End, r.Group, r.Values[0])
		if i >= 9 {
			fmt.Printf("  ... (%d more)\n", len(results)-10)
			break
		}
	}

	// Graceful drain: stop accepting, flush and close any remaining
	// sessions (this one already flushed), then release the listener.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and shut down")
}
