// Netserver: stream events to a GRETA engine over TCP and receive
// window aggregates as they close — the ingestion path a deployment
// would use, with bounded out-of-order tolerance.
//
// The server compiles Q1 (down-trend counting) and serves sessions; the
// in-process client streams a generated stock feed with artificial
// disorder, which the server's reorder slack repairs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/netstream"
)

func main() {
	stmt, err := greta.Compile(`
		RETURN sector, COUNT(*)
		PATTERN Stock S+
		WHERE [company, sector] AND S.price > NEXT(S).price
		GROUP-BY sector
		WITHIN 30 seconds SLIDE 10 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	srv := &netstream.Server{
		NewEngine: func() *greta.Engine { return stmt.NewEngine() },
		Slack:     5, // tolerate events up to 5 seconds late
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	go func() {
		if err := srv.Serve(ln); err != nil {
			// listener closed at shutdown
			_ = err
		}
	}()
	fmt.Printf("serving GRETA sessions on %s\n", ln.Addr())

	client, err := netstream.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Stream a stock feed with bounded disorder (±3 seconds of jitter).
	rng := rand.New(rand.NewSource(7))
	events := greta.StockStream(greta.DefaultStock(20000))
	for _, ev := range events {
		t := ev.Time
		if jitter := rng.Intn(4); jitter > 0 && t >= int64(jitter) {
			t -= int64(jitter)
		}
		if err := client.Send(string(ev.Type), t, ev.Attrs, ev.Str); err != nil {
			log.Fatal(err)
		}
	}

	results, processed, err := client.Flush()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server processed %d events, emitted %d window results\n", processed, len(results))
	for i, r := range results {
		fmt.Printf("  window %3d [%3d,%3d) sector=%-6s down-trends=%g\n",
			r.Wid, r.Start, r.End, r.Group, r.Values[0])
		if i >= 9 {
			fmt.Printf("  ... (%d more)\n", len(results)-10)
			break
		}
	}
}
