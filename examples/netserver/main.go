// Netserver: stream events to a multi-query GRETA runtime over TCP
// and receive window aggregates, tagged per statement, as they close —
// the ingestion path a deployment would use, with bounded out-of-order
// tolerance and mid-stream statement registration.
//
// The server starts each session with Q1 (down-trend counting per
// sector); the in-process client streams a generated stock feed with
// artificial disorder (repaired by the server's reorder slack) and,
// halfway through, registers a second query — a per-sector volume
// monitor — which sees the stream from its registration watermark
// onward.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/netstream"
)

func main() {
	q1, err := greta.Compile(`
		RETURN sector, COUNT(*)
		PATTERN Stock S+
		WHERE [company, sector] AND S.price > NEXT(S).price
		GROUP-BY sector
		WITHIN 30 seconds SLIDE 10 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	srv := &netstream.Server{
		Statements:    []*greta.Statement{q1}, // registered as "q0" per session
		AllowRegister: true,                   // clients may add statements mid-stream
		Slack:         5,                      // tolerate events up to 5 seconds late
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	go func() {
		if err := srv.Serve(ln); err != nil {
			// listener closed at shutdown
			_ = err
		}
	}()
	fmt.Printf("serving GRETA sessions on %s\n", ln.Addr())

	client, err := netstream.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Stream a stock feed with bounded disorder (±3 seconds of jitter);
	// halfway through, attach the volume monitor mid-stream.
	rng := rand.New(rand.NewSource(7))
	events := greta.StockStream(greta.DefaultStock(20000))
	var volumeID string
	for i, ev := range events {
		if i == len(events)/2 {
			volumeID, err = client.Register(`
				RETURN sector, COUNT(S)
				PATTERN Stock S+
				WHERE [sector]
				GROUP-BY sector
				WITHIN 30 seconds SLIDE 10 seconds`)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("registered volume monitor mid-stream as %q\n", volumeID)
		}
		t := ev.Time
		if jitter := rng.Intn(4); jitter > 0 && t >= int64(jitter) {
			t -= int64(jitter)
		}
		if err := client.Send(string(ev.Type), t, ev.Attrs, ev.Str); err != nil {
			log.Fatal(err)
		}
	}

	results, processed, err := client.Flush()
	if err != nil {
		log.Fatal(err)
	}
	perStmt := map[string]int{}
	for _, r := range results {
		perStmt[r.Stmt]++
	}
	fmt.Printf("server processed %d events; window results per statement: %v\n", processed, perStmt)
	for i, r := range results {
		fmt.Printf("  [%s] window %3d [%3d,%3d) sector=%-6s value=%g\n",
			r.Stmt, r.Wid, r.Start, r.End, r.Group, r.Values[0])
		if i >= 9 {
			fmt.Printf("  ... (%d more)\n", len(results)-10)
			break
		}
	}
}
