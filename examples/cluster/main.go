// Cluster: the paper's query Q2 — total CPU cycles per mapper over
// increasing load-distribution trends on a Hadoop cluster (paper §1) —
// run as a real multi-process cluster.
//
// The binary re-execs itself as shard processes: each child hosts one
// worker slot behind a netstream server, and the parent becomes the
// coordinator — it hashes every event's partition key once (the same
// FNV-1a route hash the single-process engine uses), forwards events
// to the owning shard as columnar batch frames, drives the per-window
// barrier schedule, and merges the shards' partial windows in slot
// order, so the aggregates are bit-identical to a single-process
// RunParallel run (paper §7, distributed).
//
// Halfway through the stream a third shard process joins cold
// (AddShard) and the first shard drains its slot onto it (Drain):
// a barrier, a snapshot, and a handoff later the stream continues on
// the rebalanced topology without disturbing a single window.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"slices"
	"strings"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/cluster"
)

const shardEnv = "GRETA_EXAMPLE_SHARD"

func main() {
	if os.Getenv(shardEnv) != "" {
		runShard()
		return
	}

	// Spawn two shard children; each prints its listen address.
	sh1 := spawnShard()
	sh2 := spawnShard()
	defer sh1.stop()
	defer sh2.stop()

	co, err := cluster.Connect(context.Background(), cluster.Config{
		Shards: []string{sh1.addr, sh2.addr},
	})
	if err != nil {
		log.Fatal(err)
	}

	q2, err := co.Register(`
		RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 60 seconds SLIDE 30 seconds`, cluster.WithID("q2"))
	if err != nil {
		log.Fatal(err)
	}
	// A second statement rides the same ingest: measurement volume per
	// job, a sanity signal for the tuner.
	vol, err := co.Register(`
		RETURN job, COUNT(M)
		PATTERN Measurement M+
		WHERE [job]
		GROUP-BY job
		WITHIN 60 seconds SLIDE 30 seconds`, cluster.WithID("volume"))
	if err != nil {
		log.Fatal(err)
	}

	events := greta.ClusterStream(greta.DefaultCluster(100000))
	for i, ev := range events {
		if i == len(events)/2 {
			// Rebalance mid-stream: a cold shard joins and shard 0 drains
			// its slot onto it. Results are unaffected — slots keep their
			// home indices through the handoff.
			sh3 := spawnShard()
			defer sh3.stop()
			idx, err := co.AddShard(context.Background(), sh3.addr)
			if err != nil {
				log.Fatal(err)
			}
			if err := co.Drain(0, idx); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rebalanced at event %d: shard 0 drained onto shard %d (%d shards, %d slots)\n",
				i, idx, co.Shards(), co.Slots())
		}
		if err := co.Process(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := co.Close(); err != nil {
		log.Fatal(err)
	}

	// Aggregate total CPU per mapper across windows for a compact report.
	perMapper := map[string]float64{}
	for _, r := range q2.Results() {
		perMapper[r.Group] += r.Values[0]
	}
	keys := make([]string, 0, len(perMapper))
	for k := range perMapper {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	fmt.Println("total CPU cycles over increasing-load trends, per (job, mapper) group:")
	for _, k := range keys {
		fmt.Printf("  %-16s %14.0f\n", k, perMapper[k])
	}
	st := q2.Stats()
	fmt.Printf("\nprocessed %d events across %d shard processes; %d Q2 results, %d volume windows emitted\n",
		st.Events, co.Shards(), st.Results, len(vol.Results()))
}

// runShard is the child role: serve shard sessions on a kernel-picked
// port, announce it on stdout, and exit when the parent closes stdin.
func runShard() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ln.Addr())
	srv := cluster.ServeShard()
	go func() {
		// Parent exit closes our stdin: drain sessions and go.
		_, _ = io.Copy(io.Discard, os.Stdin)
		_ = srv.Shutdown(context.Background())
	}()
	// Serve returns an accept error once Shutdown closes the listener.
	_ = srv.Serve(ln)
}

// child is one spawned shard process and its announced address.
type child struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

func spawnShard() *child {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), shardEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		log.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		log.Fatalf("shard failed to announce its address: %v", err)
	}
	return &child{cmd: cmd, stdin: stdin, addr: strings.TrimSpace(line)}
}

func (c *child) stop() {
	_ = c.stdin.Close()
	_ = c.cmd.Wait()
}
