// Cluster: the paper's query Q2 — total CPU cycles per mapper over
// increasing load-distribution trends on a Hadoop cluster (paper §1).
//
// A trend is a job-start event, any number of measurements with
// strictly increasing load, and a job-end event, all carrying the same
// job and mapper ids. The SUM(M.cpu) aggregate over these trends feeds
// automatic cluster tuning. This example also demonstrates parallel
// partition processing (paper §7) with the Runtime's streaming
// per-window merge: two statements share the same parallel workers and
// one pass over the stream.
package main

import (
	"context"
	"fmt"
	"log"
	"slices"

	"github.com/greta-cep/greta"
)

func main() {
	rt := greta.NewRuntime()
	q2, err := rt.Register(greta.MustCompile(`
		RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 60 seconds SLIDE 30 seconds`), greta.WithID("q2"))
	if err != nil {
		log.Fatal(err)
	}
	// A second statement rides the same ingest: measurement volume per
	// job, a sanity signal for the tuner.
	vol, err := rt.Register(greta.MustCompile(`
		RETURN job, COUNT(M)
		PATTERN Measurement M+
		WHERE [job]
		GROUP-BY job
		WITHIN 60 seconds SLIDE 30 seconds`), greta.WithID("volume"))
	if err != nil {
		log.Fatal(err)
	}

	events := greta.ClusterStream(greta.DefaultCluster(100000))

	// Grouped queries partition the stream; partitions run in parallel
	// and windows merge (and stream out) as they close.
	if err := rt.RunParallel(context.Background(), greta.NewSliceStream(events), 4); err != nil {
		log.Fatal(err)
	}

	// Aggregate total CPU per mapper across windows for a compact report.
	perMapper := map[string]float64{}
	for r := range q2.Results() {
		perMapper[r.Group] += r.Values[0]
	}
	keys := make([]string, 0, len(perMapper))
	for k := range perMapper {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	fmt.Println("total CPU cycles over increasing-load trends, per (job, mapper) group:")
	for _, k := range keys {
		fmt.Printf("  %-16s %14.0f\n", k, perMapper[k])
	}
	var volWindows int
	for range vol.Results() {
		volWindows++
	}
	st := q2.Stats()
	fmt.Printf("\nprocessed %d events; %d Q2 results, %d volume windows emitted\n",
		st.Events, st.Results, volWindows)
}
