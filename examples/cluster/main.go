// Cluster: the paper's query Q2 — total CPU cycles per mapper over
// increasing load-distribution trends on a Hadoop cluster (paper §1).
//
// A trend is a job-start event, any number of measurements with
// strictly increasing load, and a job-end event, all carrying the same
// job and mapper ids. The SUM(M.cpu) aggregate over these trends feeds
// automatic cluster tuning. This example also demonstrates parallel
// partition processing (paper §7).
package main

import (
	"fmt"
	"log"
	"slices"

	"github.com/greta-cep/greta"
)

func main() {
	stmt, err := greta.Compile(`
		RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 60 seconds SLIDE 30 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	events := greta.ClusterStream(greta.DefaultCluster(100000))

	eng := stmt.NewEngine()
	// Grouped queries partition the stream; partitions run in parallel.
	eng.RunParallel(greta.NewSliceStream(events), 4)

	// Aggregate total CPU per mapper across windows for a compact report.
	perMapper := map[string]float64{}
	for _, r := range eng.Results() {
		perMapper[r.Group] += r.Values[0]
	}
	keys := make([]string, 0, len(perMapper))
	for k := range perMapper {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	fmt.Println("total CPU cycles over increasing-load trends, per (job, mapper) group:")
	for _, k := range keys {
		fmt.Printf("  %-16s %14.0f\n", k, perMapper[k])
	}
	st := eng.Stats()
	fmt.Printf("\nprocessed %d events; %d results emitted\n", st.Events, st.Results)
}
