// Multitenant: k tenants, one GRETA graph.
//
// A multi-tenant aggregation server typically hosts many statements
// over the SAME hot sub-pattern — here, down-trends per company on a
// stock stream — with each tenant asking for different aggregates:
// one wants the trend count, one the price sum, one min/max, one the
// average. The Runtime's shared sub-plan network (on by default)
// notices that all four statements form identical trend sets and
// serves them from ONE shared graph: vertices, edges, pane summaries,
// and pools are maintained once, and each tenant's aggregates are
// extracted from the shared per-window payload at window close.
//
// The example registers the four tenant statements plus one
// deliberately different statement (an up-trend query, its own graph),
// streams the workload, and prints the per-tenant results next to the
// runtime's sharing topology: 4 of 5 statements collapsed onto 1
// shared graph.
package main

import (
	"fmt"
	"log"

	"github.com/greta-cep/greta"
)

func main() {
	rt := greta.NewRuntime()

	// Four tenants, one sub-pattern: identical PATTERN / WHERE /
	// GROUP-BY / WITHIN, divergent RETURN clauses.
	const downTrend = `
		PATTERN Stock S+
		WHERE [company] AND S.price > NEXT(S).price
		GROUP-BY company
		WITHIN 60 seconds SLIDE 30 seconds`
	tenants := map[string]string{
		"counter":  `RETURN COUNT(*)` + downTrend,
		"revenue":  `RETURN SUM(S.price)` + downTrend,
		"extremes": `RETURN MIN(S.price), MAX(S.price)` + downTrend,
		"averager": `RETURN AVG(S.price)` + downTrend,
	}
	handles := map[string]*greta.Handle{}
	for id, q := range tenants {
		h, err := rt.Register(greta.MustCompile(q), greta.WithID(id))
		if err != nil {
			log.Fatal(err)
		}
		handles[id] = h
	}
	// A statement with different trend formation keeps its own graph.
	up, err := rt.Register(greta.MustCompile(`
		RETURN COUNT(*)
		PATTERN Stock S+
		WHERE [company] AND S.price < NEXT(S).price
		GROUP-BY company
		WITHIN 60 seconds SLIDE 30 seconds`), greta.WithID("up-trends"))
	if err != nil {
		log.Fatal(err)
	}

	rs := rt.Stats()
	fmt.Printf("topology: %d statements, %d shared on %d graph(s), %d routing hash(es) per event\n",
		rs.Statements, rs.SharedStatements, rs.SharedGraphs, rs.RouteGroups)

	events := greta.StockStream(greta.DefaultStock(20000))
	for _, ev := range events {
		if err := rt.Process(ev); err != nil && err != greta.ErrOutOfOrder {
			log.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}

	// Every tenant saw every window; the shared graph did the trend
	// work once. Print one window as a sample plus per-tenant totals.
	for _, id := range []string{"counter", "revenue", "extremes", "averager"} {
		h := handles[id]
		n := 0
		var last greta.Result
		for r := range h.Results() {
			last = r
			n++
		}
		st := h.Stats()
		fmt.Printf("[%-8s] %3d results, last window %d group %q values %v (graph shared by %d statements)\n",
			id, n, last.Wid, last.Group, last.Values, st.SharedStatements)
	}
	upN := 0
	for range up.Results() {
		upN++
	}
	fmt.Printf("[%-8s] %3d results (exclusive graph)\n", "up", upN)

	// The work happened once: all four tenants report the SAME engine
	// counters (one shared graph), and the up-trend statement its own.
	cs, us := handles["counter"].Stats(), up.Stats()
	fmt.Printf("shared graph: %d events, %d vertices inserted, %d logical edges\n",
		cs.Events, cs.Inserted, cs.Edges)
	fmt.Printf("private graph: %d events, %d vertices inserted, %d logical edges\n",
		us.Events, us.Inserted, us.Edges)
}
