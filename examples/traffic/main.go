// Traffic: the paper's query Q3 — detect traffic jams that are NOT
// caused by accidents (paper §1), demonstrating negation.
//
// The pattern SEQ(NOT Accident A, Position P+) counts, per road
// segment, the continually-slowing-down vehicle trajectories with no
// accident earlier in the window: a match of the negative sub-pattern
// invalidates later position reports (paper §5, Case 3). The query
// returns both the number of such trajectories and the average speed.
package main

import (
	"fmt"
	"log"

	"github.com/greta-cep/greta"
)

func main() {
	stmt, err := greta.Compile(`
		RETURN segment, COUNT(*), AVG(P.speed)
		PATTERN SEQ(NOT Accident A, Position P+)
		WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed
		GROUP-BY segment
		WITHIN 30 seconds SLIDE 10 seconds`)
	if err != nil {
		log.Fatal(err)
	}

	cfg := greta.DefaultLinearRoad(60000)
	cfg.AccidentProb = 0.0005
	events := greta.LinearRoadStream(cfg)

	eng := stmt.NewEngine()
	eng.Run(greta.NewSliceStream(events))

	fmt.Println("slow-down trajectories per window and segment (accident-free):")
	shown := 0
	for _, r := range eng.Results() {
		fmt.Printf("  window %3d segment=%-6s trajectories=%-12g avg speed=%.1f\n",
			r.Wid, r.Group, r.Values[0], r.Values[1])
		shown++
		if shown >= 25 {
			fmt.Printf("  ... (%d more results)\n", len(eng.Results())-shown)
			break
		}
	}
	st := eng.Stats()
	fmt.Printf("\nprocessed %d events across %d partitions\n", st.Events, st.Partitions)
}
