// Quickstart: count event trends with GRETA in a few lines.
//
// The pattern (SEQ(A+, B))+ with the stream {a1, b2, a3, a4, b7}
// matches 11 trends (paper Fig. 3 / Example 1) — GRETA computes the
// count, together with COUNT(A), MIN, MAX, SUM, and AVG over the A
// events, without constructing a single trend. The statement runs
// inside a Runtime, the long-lived host that can serve many such
// statements over one shared ingest path.
package main

import (
	"fmt"
	"log"

	"github.com/greta-cep/greta"
)

func main() {
	// The trace hook surfaces lifecycle events (statement register and
	// close here; checkpoint commits, session resumes, and barrier emits
	// in the serving layers) without touching the per-event hot path.
	rt := greta.NewRuntime(greta.WithTraceHook(func(ev greta.TraceEvent) {
		fmt.Printf("trace: %s stmt=%s watermark=%d\n", ev.Kind, ev.Stmt, ev.Watermark)
	}))
	h, err := rt.Register(greta.MustCompile(`
		RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr)
		PATTERN (SEQ(A+, B))+`))
	if err != nil {
		log.Fatal(err)
	}

	var b greta.Builder
	b.Add("A", 1, map[string]float64{"attr": 5})
	b.Add("B", 2, nil)
	b.Add("A", 3, map[string]float64{"attr": 6})
	b.Add("A", 4, map[string]float64{"attr": 4})
	b.Add("B", 7, nil)

	s := b.Stream()
	for ev := s.Next(); ev != nil; ev = s.Next() {
		if err := rt.Process(ev); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil { // flush open windows
		log.Fatal(err)
	}

	for r := range h.Results() {
		fmt.Printf("COUNT(*)=%v COUNT(A)=%v MIN=%v MAX=%v SUM=%v AVG=%v\n",
			r.Values[0], r.Values[1], r.Values[2], r.Values[3], r.Values[4], r.Values[5])
	}
	st := h.Stats()
	fmt.Printf("stored %d vertices, traversed %d edges — no trend was ever materialized\n",
		st.Inserted, st.Edges)
	// The edge traversal cost splits into per-vertex candidate visits
	// (ScanVisits), O(1) pane/subtree summary folds that each cover any
	// number of edges (SummaryFolds), and lazy in-place summary rebuilds
	// after negation watermark advances (SummaryRebuilds).
	fmt.Printf("cost split: %d per-vertex visits, %d summary folds, %d summary rebuilds\n",
		st.ScanVisits, st.SummaryFolds, st.SummaryRebuilds)
	// Metrics() is the machine-readable view of the same run — the
	// snapshot behind the /metrics endpoint (greta.WithMetricsAddr) —
	// and stays consistent with the per-handle Stats above.
	m := rt.Metrics()
	fmt.Printf("metrics: events=%d watermark=%d statements closed with graphs intact\n",
		m.Events, m.Watermark)
}
