// Benchmarks regenerating the paper's evaluation (§10) as testing.B
// targets — one benchmark family per figure/table, plus ablation
// benchmarks for the design choices called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// The harness binary (cmd/gretabench) produces the paper-style tables;
// these benchmarks provide the same measurements under the Go bench
// framework. Two-step engines run at reduced sizes with caps: they are
// exponential, which is precisely the paper's point.
package greta_test

import (
	"fmt"
	"testing"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/cet"
	"github.com/greta-cep/greta/internal/baseline/flat"
	"github.com/greta-cep/greta/internal/baseline/sase"
	"github.com/greta-cep/greta/internal/bench"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

func runGreta(b *testing.B, qsrc string, evs []*event.Event, mode aggregate.Mode) {
	b.Helper()
	q := query.MustParse(qsrc)
	plan, err := core.NewPlan(q, mode)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(plan)
		eng.Run(event.NewSliceStream(evs))
	}
	b.StopTimer()
	reportThroughput(b, len(evs))
}

func reportThroughput(b *testing.B, events int) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	}
}

// stockStream generates the Fig. 14/15 workload at ~1 event per company
// per second (matching the harness), so adjacency is non-trivial.
func stockStream(n int, haltProb float64) []*event.Event {
	cfg := gen.DefaultStock(n)
	cfg.Rate = 10
	cfg.HaltProb = haltProb
	return gen.Stock(cfg)
}

// BenchmarkFig14 regenerates Figure 14: positive patterns over the
// stock stream, events-per-window sweep, all four engines.
func BenchmarkFig14(b *testing.B) {
	q := bench.Q1Positive
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		evs := stockStream(n, 0)
		b.Run(fmt.Sprintf("GRETA/n=%d", n), func(b *testing.B) {
			runGreta(b, q, evs, aggregate.ModeNative)
		})
	}
	qq := query.MustParse(q)
	for _, n := range []int{100, 250, 500} {
		evs := stockStream(n, 0)
		b.Run(fmt.Sprintf("SASE/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sase.Run(qq, evs, sase.Options{MaxTrends: 2_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
		b.Run(fmt.Sprintf("CET/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := cet.Run(qq, evs, cet.Options{MaxNodes: 2_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
		b.Run(fmt.Sprintf("Flink/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := flat.Run(qq, evs, flat.Options{MaxLen: 8, MaxSequences: 2_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
	}
}

// BenchmarkFig15 regenerates Figure 15: the same sweep with a negative
// sub-pattern (trading halts invalidate later events).
func BenchmarkFig15(b *testing.B) {
	q := bench.Q1Negation
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		evs := stockStream(n, 0.002)
		b.Run(fmt.Sprintf("GRETA/n=%d", n), func(b *testing.B) {
			runGreta(b, q, evs, aggregate.ModeNative)
		})
	}
	qq := query.MustParse(q)
	for _, n := range []int{100, 250, 500} {
		evs := stockStream(n, 0.002)
		b.Run(fmt.Sprintf("SASE/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sase.Run(qq, evs, sase.Options{MaxTrends: 2_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
	}
}

// BenchmarkFig16 regenerates Figure 16: edge-predicate selectivity
// sweep over the Linear Road stream.
func BenchmarkFig16(b *testing.B) {
	for _, sel := range []float64{10, 30, 50, 70, 90} {
		cfg := gen.DefaultLinearRoad(4000)
		cfg.StartRate, cfg.EndRate = 50, 200
		cfg.GateSelectivity = sel
		evs := gen.LinearRoad(cfg)
		b.Run(fmt.Sprintf("GRETA/sel=%.0f", sel), func(b *testing.B) {
			runGreta(b, bench.Q3Selectivity, evs, aggregate.ModeNative)
		})
	}
	qq := query.MustParse(bench.Q3Selectivity)
	for _, sel := range []float64{10, 30, 50} {
		cfg := gen.DefaultLinearRoad(600)
		cfg.StartRate, cfg.EndRate = 50, 200
		cfg.GateSelectivity = sel
		evs := gen.LinearRoad(cfg)
		b.Run(fmt.Sprintf("SASE/sel=%.0f", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sase.Run(qq, evs, sase.Options{MaxTrends: 5_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
	}
}

// BenchmarkFig17 regenerates Figure 17: number of event trend groups.
// GRETA's cost stays flat; the two-step engines speed up with more
// groups because trends get shorter.
func BenchmarkFig17(b *testing.B) {
	for _, groups := range []int{1, 5, 10, 50} {
		cfg := gen.DefaultCluster(4000)
		cfg.Rate = 200
		cfg.Mappers = groups
		evs := gen.Cluster(cfg)
		b.Run(fmt.Sprintf("GRETA/groups=%d", groups), func(b *testing.B) {
			runGreta(b, bench.Q2Groups, evs, aggregate.ModeNative)
		})
	}
	qq := query.MustParse(bench.Q2Groups)
	for _, groups := range []int{5, 10, 50} {
		cfg := gen.DefaultCluster(1500)
		cfg.Rate = 100
		cfg.Mappers = groups
		evs := gen.Cluster(cfg)
		b.Run(fmt.Sprintf("SASE/groups=%d", groups), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sase.Run(qq, evs, sase.Options{MaxTrends: 5_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b, len(evs))
		})
	}
}

// BenchmarkTable1 measures the three event selection semantics over
// the §2 example stream shape (Table 1).
func BenchmarkTable1(b *testing.B) {
	evs := stockStream(4000, 0)
	for _, sem := range []string{"skip-till-any-match", "skip-till-next-match", "contiguous"} {
		q := fmt.Sprintf("RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS %s", sem)
		b.Run(sem, func(b *testing.B) {
			runGreta(b, q, evs, aggregate.ModeNative)
		})
	}
}

// BenchmarkTheorem8Growth tracks GRETA's scaling on the dense A+
// workload. The paper's cost model is quadratic in events per window
// (Theorem 8.1: every insertion visits every predecessor), and the
// LOGICAL edge count stays n(n-1)/2 (TestGrowthShape locks that in) —
// but the summary fast path aggregates those edges through subtree
// folds, so wall-clock should now grow near-linearly (~n log n), not
// quadratically.
func BenchmarkTheorem8Growth(b *testing.B) {
	for _, n := range []int{500, 1000, 2000, 4000} {
		var bd event.Builder
		for i := 0; i < n; i++ {
			bd.Add("A", event.Time(i+1), nil)
		}
		evs := bd.Events()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runGreta(b, "RETURN COUNT(*) PATTERN A+", evs, aggregate.ModeNative)
		})
	}
}

// BenchmarkAblationVertexTree compares the compiled-range Vertex Tree
// path against a semantically identical predicate written in a form
// the range compiler cannot use (full scan + residual evaluation) —
// the §7 design choice.
func BenchmarkAblationVertexTree(b *testing.B) {
	evs := stockStream(4000, 0)
	// Sorted tree + range scan: S.price > NEXT(S).price compiles.
	b.Run("range", func(b *testing.B) {
		runGreta(b, "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price", evs, aggregate.ModeNative)
	})
	// Same predicate, non-linear form: full scan per insertion.
	b.Run("scan", func(b *testing.B) {
		runGreta(b, "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price * S.price > NEXT(S).price * NEXT(S).price", evs, aggregate.ModeNative)
	})
}

// BenchmarkAblationPaneSharing compares the shared GRETA graph across
// overlapping sliding windows (paper §6, Fig. 9(b)) against naive
// per-window replication (Fig. 9(a)).
func BenchmarkAblationPaneSharing(b *testing.B) {
	evs := stockStream(6000, 0)
	qShared := "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 8 SLIDE 2"
	b.Run("shared", func(b *testing.B) {
		runGreta(b, qShared, evs, aggregate.ModeNative)
	})
	b.Run("replicated", func(b *testing.B) {
		// One engine per window over only that window's events.
		q := query.MustParse("RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price")
		spec := query.MustParse(qShared).Window
		plan, err := core.NewPlan(q, aggregate.ModeNative)
		if err != nil {
			b.Fatal(err)
		}
		var wids []int64
		seen := map[int64]bool{}
		for _, e := range evs {
			lo, hi := spec.Wids(e.Time)
			for w := lo; w <= hi; w++ {
				if !seen[w] {
					seen[w] = true
					wids = append(wids, w)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, wid := range wids {
				var wevs []*event.Event
				for _, e := range evs {
					if spec.Contains(wid, e.Time) {
						wevs = append(wevs, e)
					}
				}
				eng := core.NewEngine(plan)
				eng.Run(event.NewSliceStream(wevs))
			}
		}
		b.StopTimer()
		reportThroughput(b, len(evs))
	})
}

// BenchmarkAblationArithmetic compares native (wrap-around uint64)
// against exact (math/big) aggregate arithmetic.
func BenchmarkAblationArithmetic(b *testing.B) {
	evs := stockStream(2000, 0)
	q := "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price"
	b.Run("native", func(b *testing.B) {
		runGreta(b, q, evs, aggregate.ModeNative)
	})
	b.Run("exact", func(b *testing.B) {
		runGreta(b, q, evs, aggregate.ModeExact)
	})
}

// BenchmarkParallelPartitions measures the §7 parallel partition
// processing on the grouped cluster workload.
func BenchmarkParallelPartitions(b *testing.B) {
	stmt := greta.MustCompile(bench.Q2Groups + " WITHIN 20 seconds SLIDE 10 seconds")
	evs := gen.Cluster(gen.DefaultCluster(30000))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := stmt.NewEngine()
				eng.RunParallel(greta.NewSliceStream(evs), workers)
			}
			reportThroughput(b, len(evs))
		})
	}
}

// batchIngestWorkloads are the BenchmarkBatchIngest fixtures: the
// Fig. 14 stock workload (edge predicate — the batch path amortizes
// hashing and clock advances but cannot pre-filter) and the Fig. 16
// low-selectivity Linear Road workload with the gate as a vertex
// predicate (the column pre-filter skips ~90% of rows).
func batchIngestWorkloads() []struct {
	name    string
	q       string
	evs     []*event.Event
	schemas []*event.Schema
} {
	// 20k events so steady-state ingest dominates the per-iteration
	// runtime setup and pool warmup (the ratio of interest is the
	// amortized per-row cost, not the cold start).
	lr := gen.DefaultLinearRoad(20000)
	lr.StartRate, lr.EndRate = 50, 200
	lr.GateSelectivity = 10
	return []struct {
		name    string
		q       string
		evs     []*event.Event
		schemas []*event.Schema
	}{
		{"fig14", bench.Q1Positive, stockStream(4000, 0), gen.StockSchemas()},
		{"fig16-sel10", bench.Q3SelectivityVertex, gen.LinearRoad(lr), gen.LinearRoadSchemas()},
	}
}

// buildIngestBatches groups consecutive same-type events into columnar
// batches of up to size rows (the generators emit batch-representable
// values only).
func buildIngestBatches(b *testing.B, evs []*event.Event, schemas []*greta.Schema, size int) []*greta.Batch {
	b.Helper()
	bySch := map[greta.Type]*greta.Schema{}
	for _, s := range schemas {
		bySch[s.Type] = s
	}
	var out []*greta.Batch
	var cur *greta.Batch
	for _, ev := range evs {
		if cur != nil && (cur.Type() != ev.Type || cur.Len() >= size) {
			out = append(out, cur)
			cur = nil
		}
		if cur == nil {
			sch := bySch[ev.Type]
			if sch == nil {
				b.Fatalf("no schema for type %q", ev.Type)
			}
			cur = greta.NewBatch(sch, size)
		}
		if err := cur.AppendEvent(ev); err != nil {
			b.Fatal(err)
		}
	}
	if cur != nil {
		out = append(out, cur)
	}
	return out
}

// BenchmarkBatchIngest compares per-event Process against columnar
// ProcessBatch at batch sizes 1, 64, and 1024 over the Fig. 14 and
// Fig. 16 (sel=10, vertex gate) workloads. Results are bit-identical
// across all variants (TestBatchIngestDifferential); the batch path
// buys one hash probe per partition run, one watermark advance per
// batch, and — on the fig16 workload — column pre-filtering.
func BenchmarkBatchIngest(b *testing.B) {
	for _, w := range batchIngestWorkloads() {
		stmt := greta.MustCompile(w.q)
		// The timer brackets ingest only: runtime construction, statement
		// compilation/registration, and the Close-time window flush are
		// identical across variants and would otherwise dilute (and add
		// planner/GC noise to) the per-row cost under comparison.
		b.Run(w.name+"/per-event", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rt := greta.NewRuntime()
				if _, err := rt.Register(stmt); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, ev := range w.evs {
					if err := rt.Process(ev); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			reportThroughput(b, len(w.evs))
		})
		for _, size := range []int{1, 64, 1024} {
			batches := buildIngestBatches(b, w.evs, w.schemas, size)
			b.Run(fmt.Sprintf("%s/batch=%d", w.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					rt := greta.NewRuntime()
					if _, err := rt.Register(stmt); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for _, bt := range batches {
						if _, err := rt.ProcessBatch(bt); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					if err := rt.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				reportThroughput(b, len(w.evs))
			})
		}
	}
}

// BenchmarkIngestion measures single-event processing cost at steady
// state (the per-event path: pane lookup, tree insert, range scan,
// payload fold).
func BenchmarkIngestion(b *testing.B) {
	stmt := greta.MustCompile("RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 30 seconds SLIDE 10 seconds")
	cfgIngest := gen.DefaultStock(200000)
	cfgIngest.Rate = 1000
	evs := gen.Stock(cfgIngest)
	b.ResetTimer()
	eng := stmt.NewEngine()
	for i := 0; i < b.N; i++ {
		eng.Process(evs[i%len(evs)])
	}
}
