package greta

import (
	"net/http"

	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/obs"
)

// Metrics is a consistent point-in-time snapshot of a Runtime's
// observability counters: ingest totals, watermark/lag gauges, reorder
// buffer depth, checkpoint durability state, multi-query topology, and
// per-statement engine statistics. Cell-backed counters (events,
// drops, watermark, checkpoint totals) are updated by lock-free atomics
// on the ingest path and stay live in every mode, including while
// RunParallel owns the stream; per-statement engine stats are omitted
// while workers own the engines and after Close. At end of run the
// snapshot's Runtime and Statements sections equal Stats() and
// Handle.Stats() exactly — the snapshot is a view, not a second set of
// books.
type Metrics = core.MetricsSnapshot

// StatementMetrics is one live statement's identity and counters
// inside a Metrics snapshot.
type StatementMetrics = core.StatementMetrics

// CheckpointMetrics is the durability section of a Metrics snapshot.
type CheckpointMetrics = core.CheckpointMetrics

// TraceKind labels a lifecycle TraceEvent.
type TraceKind = core.TraceKind

// TraceEvent is one structured lifecycle event delivered to the
// WithTraceHook callback. Fields beyond Kind are populated where they
// make sense: Stmt for statement events, Boundary/Bytes/Dur for
// checkpoints, Session for netstream session events, Shard for cluster
// membership events.
type TraceEvent = core.TraceEvent

// Lifecycle trace kinds (see TraceEvent). The runtime itself fires the
// statement and checkpoint kinds; netstream fires TraceSessionResume;
// the cluster coordinator fires the barrier and shard kinds.
const (
	TraceStatementRegister = core.TraceStatementRegister
	TraceStatementClose    = core.TraceStatementClose
	TraceCheckpointBegin   = core.TraceCheckpointBegin
	TraceCheckpointCommit  = core.TraceCheckpointCommit
	TraceCheckpointFail    = core.TraceCheckpointFail
	TraceSessionResume     = core.TraceSessionResume
	TraceBarrierEmit       = core.TraceBarrierEmit
	TraceShardAdd          = core.TraceShardAdd
	TraceShardDrain        = core.TraceShardDrain
)

// WithMetricsAddr serves the runtime's observability surface on addr
// ("host:port"; ":0" picks a free port — read it back from
// MetricsAddr). The listener serves:
//
//	/metrics       Prometheus text exposition (0.0.4)
//	/metrics.json  the same series as flat JSON
//	/debug/vars    expvar
//	/debug/pprof/  the standard runtime profiles
//
// The endpoint is live for the Runtime's lifetime and closed by Close.
// NewRuntime (and Restore) panic if addr cannot be bound — a
// misconfigured listen address is a programming error, matching
// WithCheckpoint's invalid-interval contract. Scrapes render outside
// the ingest path; armed metrics keep the per-event path
// allocation-free.
func WithMetricsAddr(addr string) RuntimeOption {
	return func(c *runtimeConfig) { c.metricsAddr = addr }
}

// WithTraceHook installs a structured lifecycle trace hook: statement
// register/close, checkpoint begin/commit/fail (and, via the serving
// layers, session resumes, barrier emits, shard membership). The hook
// fires synchronously on the path that caused the event with the
// runtime lock held — it must return quickly and must not call back
// into the Runtime or its Handles.
func WithTraceHook(fn func(TraceEvent)) RuntimeOption {
	return func(c *runtimeConfig) { c.trace = fn }
}

// WithMetricsDisabled detaches the hot-path metric cells: per-event
// counter and gauge updates are skipped entirely. The snapshot and
// /metrics surfaces keep working from sampled state; cell-backed
// series simply stop moving. This exists to measure the armed cost
// (BenchmarkMetricsOverhead) and for callers who want the last word in
// hot-path hygiene; the armed path is itself allocation-free and
// branch-predictable (a nil check plus a handful of uncontended
// atomics).
func WithMetricsDisabled() RuntimeOption {
	return func(c *runtimeConfig) { c.metricsOff = true }
}

// Metrics returns a consistent snapshot of the runtime's counters.
// Safe to call concurrently with ingestion, including during
// RunParallel and after Close; see Metrics (the type) for what each
// mode omits.
func (rt *Runtime) Metrics() Metrics { return rt.inner.Metrics() }

// MetricsAddr reports the bound address of the WithMetricsAddr
// listener ("" when none is armed). With ":0" this is how the chosen
// port is discovered.
func (rt *Runtime) MetricsAddr() string {
	if rt.metLn == nil {
		return ""
	}
	return rt.metLn.Addr().String()
}

// MetricsHandler returns the runtime's observability HTTP surface
// (/metrics, /metrics.json, /debug/vars, /debug/pprof/) for mounting
// on a caller-owned server — the embeddable form of WithMetricsAddr.
// Rendering samples runtime state under its lock; do not call the
// handler from a trace hook or result callback.
func (rt *Runtime) MetricsHandler() http.Handler {
	return obs.NewMux(rt.inner.MetricsRegistry())
}

// SetTraceHook replaces the lifecycle trace hook after construction or
// restore (nil clears it); see WithTraceHook for the contract.
func (rt *Runtime) SetTraceHook(fn func(TraceEvent)) { rt.inner.SetTraceHook(fn) }

// armObs applies the observability options (trace hook, metrics
// disarm, metrics listener) to a built runtime.
func (rt *Runtime) armObs(cfg *runtimeConfig) error {
	if cfg.trace != nil {
		rt.inner.SetTraceHook(cfg.trace)
	}
	if cfg.metricsOff {
		rt.inner.DisableMetrics()
	}
	if cfg.metricsAddr != "" {
		ln, err := obs.Serve(cfg.metricsAddr, rt.inner.MetricsRegistry())
		if err != nil {
			return err
		}
		rt.metLn = ln
	}
	return nil
}
