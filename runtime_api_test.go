package greta_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/greta-cep/greta"
)

// TestRuntimeStreamingResults consumes Handle.Results concurrently
// with ingestion: the iterator must yield every result exactly once,
// in emission order, and terminate when the runtime closes.
func TestRuntimeStreamingResults(t *testing.T) {
	rt := greta.NewRuntime()
	h, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var got []greta.Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range h.Results() {
			got = append(got, r)
		}
	}()
	for i := 1; i <= 45; i++ {
		if err := rt.Process(&greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Windows [0,10) .. [40,50): five windows, each with trends.
	if len(got) != 5 {
		t.Fatalf("streamed %d results, want 5", len(got))
	}
	for i, r := range got {
		if r.Wid != int64(i) {
			t.Errorf("result %d: wid %d, want %d (emission order)", i, r.Wid, i)
		}
	}
	// A late iterator replays the full sequence.
	n := 0
	for range h.Results() {
		n++
	}
	if n != 5 {
		t.Errorf("replay iterator saw %d results, want 5", n)
	}
	// Early break must not wedge the handle.
	for range h.Results() {
		break
	}
}

// TestRuntimeRegisterOptions covers WithID and WithTransactional, and
// default id assignment.
func TestRuntimeRegisterOptions(t *testing.T) {
	rt := greta.NewRuntime()
	defer rt.Close()
	a, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN B+"), greta.WithID("trends"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN SEQ(A, B)"), greta.WithTransactional())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "q0" || b.ID() != "trends" || c.ID() != "q1" {
		t.Errorf("ids = %q, %q, %q; want q0, trends, q1", a.ID(), b.ID(), c.ID())
	}
	if q := b.Query(); q == "" {
		t.Error("Handle.Query empty")
	}
	// Duplicate ids are rejected; a closed statement's id is reusable.
	if _, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN C+"), greta.WithID("trends")); err == nil {
		t.Error("duplicate id must be rejected")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN C+"), greta.WithID("trends")); err != nil {
		t.Errorf("closed statement's id not reusable: %v", err)
	}
}

// TestRuntimeHandleClose closes one of two statements mid-stream via
// the public API and checks the survivor is unperturbed and errors are
// the documented sentinels.
func TestRuntimeHandleClose(t *testing.T) {
	rt := greta.NewRuntime()
	h1, _ := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"))
	h2, _ := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10"))
	for i := 1; i <= 15; i++ {
		if err := rt.Process(&greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Close(); !errors.Is(err, greta.ErrStatementClosed) {
		t.Fatalf("double close: %v, want ErrStatementClosed", err)
	}
	// h1's iterator terminates (closed handles stream their flush, then end).
	n1 := 0
	for range h1.Results() {
		n1++
	}
	if n1 == 0 {
		t.Error("closed handle lost its flushed results")
	}
	for i := 16; i <= 25; i++ {
		if err := rt.Process(&greta.Event{ID: uint64(i), Type: "A", Time: greta.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	var wids []int64
	for r := range h2.Results() {
		wids = append(wids, r.Wid)
	}
	if len(wids) != 3 {
		t.Fatalf("survivor saw %d windows, want 3", len(wids))
	}
	if err := rt.Process(&greta.Event{ID: 99, Type: "A", Time: 99}); !errors.Is(err, greta.ErrClosed) {
		t.Fatalf("process after close: %v, want ErrClosed", err)
	}
	if _, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+")); !errors.Is(err, greta.ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
}

// TestRuntimeRunContext covers ctx-aware Run: a cancelled context
// stops ingestion with the context error.
func TestRuntimeRunContext(t *testing.T) {
	rt := greta.NewRuntime()
	defer rt.Close()
	if _, err := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	evs := []*greta.Event{{ID: 1, Type: "A", Time: 1}}
	if err := rt.Run(ctx, greta.NewSliceStream(evs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestRuntimeProcessOutOfOrder checks the error-returning ingest at
// the public surface and that the drop is visible in statement stats.
func TestRuntimeProcessOutOfOrder(t *testing.T) {
	rt := greta.NewRuntime()
	h, _ := rt.Register(greta.MustCompile("RETURN COUNT(*) PATTERN A+"))
	if err := rt.Process(&greta.Event{ID: 1, Type: "A", Time: 5}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(&greta.Event{ID: 2, Type: "A", Time: 3}); !errors.Is(err, greta.ErrOutOfOrder) {
		t.Fatalf("late event: %v, want ErrOutOfOrder", err)
	}
	if wm := rt.Watermark(); wm != 5 {
		t.Errorf("watermark = %d, want 5", wm)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().OutOfOrder; got != 1 {
		t.Errorf("OutOfOrder = %d, want 1", got)
	}
}

// TestEngineShimBridges checks the deprecated Engine exposes its
// backing Runtime and Handle (the migration path netstream uses).
func TestEngineShimBridges(t *testing.T) {
	eng := greta.MustCompile("RETURN COUNT(*) PATTERN A+").NewEngine()
	if eng.Runtime() == nil || eng.Handle() == nil {
		t.Fatal("engine shim lost its runtime/handle")
	}
	if eng.Handle().ID() != "q0" {
		t.Errorf("shim handle id = %q", eng.Handle().ID())
	}
	eng.Process(&greta.Event{ID: 1, Type: "A", Time: 1})
	eng.Flush()
	if len(eng.Results()) != 1 {
		t.Fatalf("results = %+v", eng.Results())
	}
	n := 0
	for range eng.Handle().Results() {
		n++
	}
	if n != 1 {
		t.Errorf("handle iterator saw %d results, want 1", n)
	}
}

// TestRuntimeParallelPublic drives RunParallel through the public API
// with two statements sharing the ingest and compares against
// sequential runtimes.
func TestRuntimeParallelPublic(t *testing.T) {
	queries := []string{
		`RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E)
		 WHERE [job, mapper] AND M.load < NEXT(M).load GROUP-BY mapper
		 WITHIN 20 seconds SLIDE 10 seconds`,
		`RETURN COUNT(*) PATTERN Measurement M+ WHERE [job] WITHIN 30 seconds SLIDE 10 seconds`,
	}
	events := greta.ClusterStream(greta.DefaultCluster(20000))

	seq := make([]*greta.Handle, len(queries))
	seqRt := greta.NewRuntime()
	for i, q := range queries {
		seq[i], _ = seqRt.Register(greta.MustCompile(q))
	}
	if err := seqRt.Run(context.Background(), greta.NewSliceStream(events)); err != nil {
		t.Fatal(err)
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	par := make([]*greta.Handle, len(queries))
	parRt := greta.NewRuntime()
	for i, q := range queries {
		par[i], _ = parRt.Register(greta.MustCompile(q))
	}
	if err := parRt.RunParallel(context.Background(), greta.NewSliceStream(events), 4); err != nil {
		t.Fatal(err)
	}

	for i := range queries {
		var a, b []greta.Result
		for r := range seq[i].Results() {
			a = append(a, r)
		}
		for r := range par[i].Results() {
			b = append(b, r)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d sequential vs %d parallel results", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Group != b[j].Group || a[j].Wid != b[j].Wid {
				t.Fatalf("query %d result %d: (%q,%d) vs (%q,%d)",
					i, j, a[j].Group, a[j].Wid, b[j].Group, b[j].Wid)
			}
			for k := range a[j].Values {
				if a[j].Values[k] != b[j].Values[k] {
					t.Fatalf("query %d result %d value %d: %v vs %v",
						i, j, k, a[j].Values[k], b[j].Values[k])
				}
			}
		}
	}
}

// gateStream feeds a prefix, then holds mid-stream until released —
// keeping RunParallel in flight while the test races registrations
// against it.
type gateStream struct {
	evs     []*greta.Event
	i       int
	began   chan struct{} // closed on first Next: RunParallel owns the runtime
	release chan struct{} // closing resumes the stream
}

func (s *gateStream) Next() *greta.Event {
	if s.i == 0 {
		close(s.began)
	}
	if s.i == len(s.evs)/2 {
		<-s.release
	}
	if s.i >= len(s.evs) {
		return nil
	}
	ev := s.evs[s.i]
	s.i++
	return ev
}

// TestRegisterDuringRunParallel pins the eager ErrRunning contract:
// registrations racing an in-flight RunParallel fail immediately with
// ErrRunning — they neither block until the stream ends nor race the
// workers — and the parallel run's own results are unaffected. Run
// under -race this doubles as the data-race regression test.
func TestRegisterDuringRunParallel(t *testing.T) {
	const query = "RETURN COUNT(*) PATTERN Measurement M+ WHERE [job] WITHIN 30 seconds SLIDE 10 seconds"
	events := greta.ClusterStream(greta.DefaultCluster(4000))

	rt := greta.NewRuntime()
	h, err := rt.Register(greta.MustCompile(query))
	if err != nil {
		t.Fatal(err)
	}
	s := &gateStream{evs: events, began: make(chan struct{}), release: make(chan struct{})}
	runErr := make(chan error, 1)
	go func() { runErr <- rt.RunParallel(context.Background(), s, 4) }()
	<-s.began

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Register(greta.MustCompile(query)); !errors.Is(err, greta.ErrRunning) {
				t.Errorf("Register during RunParallel: err = %v, want ErrRunning", err)
			}
			if err := rt.Process(&greta.Event{ID: 1, Type: "Measurement", Time: 1}); !errors.Is(err, greta.ErrRunning) {
				t.Errorf("Process during RunParallel: err = %v, want ErrRunning", err)
			}
			if err := h.Close(); !errors.Is(err, greta.ErrRunning) {
				t.Errorf("Handle.Close during RunParallel: err = %v, want ErrRunning", err)
			}
		}()
	}
	// The rejections are eager: every goroutine returns while the stream
	// is still held open mid-run (a lazy check would deadlock here).
	wg.Wait()
	close(s.release)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	// RunParallel closed the runtime; late registrations now say so.
	if _, err := rt.Register(greta.MustCompile(query)); !errors.Is(err, greta.ErrClosed) {
		t.Errorf("Register after RunParallel: err = %v, want ErrClosed", err)
	}
	n := 0
	for range h.Results() {
		n++
	}
	if n == 0 {
		t.Error("parallel run emitted no results")
	}
}
