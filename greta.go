// Package greta is a stream processing library for real-time event
// trend aggregation. It implements the GRETA approach (Poppe, Lei,
// Rundensteiner, Maier: "GRETA: Graph-based Real-time Event Trend
// Aggregation", VLDB 2017): aggregates over arbitrarily-long Kleene
// matches (event trends) are computed online by encoding all trends
// into a graph and propagating aggregates along its edges, without
// ever constructing the trends — quadratic time and linear space where
// two-step engines need exponential time and space.
//
// # Quick start
//
// A Runtime hosts any number of compiled statements over one shared
// ingest path; events are routed once and fanned out to every
// registered statement:
//
//	rt := greta.NewRuntime()
//	h, err := rt.Register(greta.MustCompile(`
//	    RETURN COUNT(*) PATTERN Stock S+
//	    WHERE [company] AND S.price > NEXT(S).price
//	    WITHIN 10 minutes SLIDE 10 seconds`))
//	if err != nil { ... }
//	h.OnResult(func(r greta.Result) {
//	    fmt.Printf("window %d: %v down-trends\n", r.Wid, r.Values[0])
//	})
//	for _, ev := range events {
//	    if err := rt.Process(ev); err != nil { ... }
//	}
//	rt.Close() // flush open windows
//
// Statements can be registered and closed at any point mid-stream
// (Register/Handle.Close); a statement registered at watermark T sees
// only events from T onward. Results stream through the OnResult
// callback or the Handle.Results iterator:
//
//	go func() {
//	    for r := range h.Results() {
//	        fmt.Printf("[%s] window %d: %v\n", h.ID(), r.Wid, r.Values[0])
//	    }
//	}()
//
// Runtime.Run consumes a whole Stream under a context;
// Runtime.RunParallel partitions it across workers with a streaming
// per-window merge. The single-statement Engine (Statement.NewEngine)
// remains as a deprecated shim over a one-statement Runtime.
//
// The query language follows the paper's grammar (Fig. 2): RETURN with
// COUNT/MIN/MAX/SUM/AVG, PATTERN with event types, SEQ, Kleene plus,
// and NOT (plus the §9 sugar: star, optional, OR, AND), WHERE with
// equivalence ([attr, ...]), vertex, and edge (NEXT) predicates,
// GROUP-BY, and WITHIN/SLIDE sliding windows.
package greta

import (
	"cmp"
	"context"
	"slices"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// Event is a stream message: a typed, timestamped record with numeric
// (Attrs) and string (Str) attributes. Construct events directly or
// with a Builder.
type Event = event.Event

// Time is an application timestamp in ticks (the paper's workloads use
// seconds).
type Time = event.Time

// Type identifies an event type.
type Type = event.Type

// Stream is an in-order event source.
type Stream = event.Stream

// Schema describes an event type's attributes. Binding events to a
// schema (Schema.Bind or BindSchemas) populates dense slot arrays that
// the runtime reads by precompiled index — the steady-state per-event
// path then runs without map probes or allocation. Events without a
// schema are processed through the equivalent map fallback.
type Schema = event.Schema

// BindSchemas binds each event whose type has a schema in schemas;
// call once at ingest. Events of other types stay schemaless.
func BindSchemas(evs []*Event, schemas []*Schema) { event.BindAll(evs, schemas) }

// Batch is a columnar block of schema-bound events of one type: dense
// per-attribute arrays in schema slot order, materialized as Event rows
// aliasing that storage. Build one with NewBatch plus Append (dense
// slot values) or AppendEvent (copies a map-carried event, rejecting
// values the dense form cannot represent), then feed it with
// Runtime.ProcessBatch. A batch hands ownership of its rows to the
// runtime; do not Reset or reuse it while windows that saw its rows
// are open.
type Batch = event.Batch

// NewBatch returns an empty batch bound to sch with capacity for n
// rows. The schema must not be nil; its Type stamps every row.
func NewBatch(sch *Schema, n int) *Batch { return event.NewBatch(sch, n) }

// Builder assembles in-order test and example streams.
type Builder = event.Builder

// NewSliceStream adapts a slice of events to a Stream.
func NewSliceStream(evs []*Event) Stream { return event.NewSliceStream(evs) }

// Result is one final aggregate for one group and one window.
type Result = core.Result

// Stats summarizes runtime costs: events, stored vertices, logical
// edges, partitions, results, memory peaks (PeakVertices/PeakPayloads,
// with summary payloads included), and the edge-traversal cost split —
// ScanVisits (per-vertex candidate visits) vs SummaryFolds (O(1)
// pane/subtree summary folds, each covering any number of logical
// edges) vs SummaryRebuilds (lazy in-place pane-summary rebuilds after
// negation watermark advances).
type Stats = core.Stats

// Option configures compilation.
type Option func(*options)

type options struct {
	mode aggregate.Mode
}

// WithExactArithmetic switches aggregate arithmetic from native machine
// words (uint64 with wrap-around, float64 sums) to exact math/big
// arithmetic. The number of trends is Θ(2ⁿ) in the window size, so
// native counters wrap on large windows; exact mode trades speed for
// full precision.
func WithExactArithmetic() Option {
	return func(o *options) { o.mode = aggregate.ModeExact }
}

// Statement is a compiled event trend aggregation query: the GRETA
// configuration produced by the static query analyzer (template per
// sub-pattern, classified predicates, window plan).
type Statement struct {
	query *query.Query
	plan  *core.Plan
}

// Compile parses and plans a query.
func Compile(src string, opts ...Option) (*Statement, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(q, o.mode)
	if err != nil {
		return nil, err
	}
	return &Statement{query: q, plan: plan}, nil
}

// MustCompile is Compile that panics on error, for tests and examples.
func MustCompile(src string, opts ...Option) *Statement {
	s, err := Compile(src, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Query returns the canonical text of the compiled query.
func (s *Statement) Query() string { return s.query.String() }

// NewEngine instantiates a single-statement runtime for the statement.
// Engines are single-use: create one per stream pass.
//
// Deprecated: Engine is a thin shim over a one-statement Runtime. New
// code should use NewRuntime and Register, which share one ingest path
// across many concurrent statements and support mid-stream lifecycle.
func (s *Statement) NewEngine() *Engine {
	rt := NewRuntime()
	// Sharing is off for the shim: SetTransactional mutates the engine
	// after registration, which a shared graph must never absorb.
	h, err := rt.Register(s, WithSharing(false))
	if err != nil {
		// A fresh runtime cannot be closed or running.
		panic(err)
	}
	return &Engine{rt: rt, h: h, inner: h.st.Engine()}
}

// Engine is the single-statement GRETA runtime: it consumes an
// in-order event stream, maintains the GRETA graph(s), and emits
// per-group, per-window aggregates as windows close.
//
// Deprecated: Engine wraps a one-statement Runtime; use Runtime and
// Handle directly for shared ingest across statements, mid-stream
// registration, error-returning Process, and streaming results.
type Engine struct {
	rt    *Runtime
	h     *Handle
	inner *core.Engine
}

// Runtime exposes the Engine's underlying one-statement Runtime (a
// migration bridge: netstream, for example, attaches further
// statements to it).
func (e *Engine) Runtime() *Runtime { return e.rt }

// Handle exposes the Engine's statement handle (streaming results,
// statement id).
func (e *Engine) Handle() *Handle { return e.h }

// OnResult registers a callback invoked when a window's final
// aggregate is emitted (incrementally maintained, so emission is
// immediate at window close).
func (e *Engine) OnResult(f func(Result)) { e.h.OnResult(f) }

// Process offers one event. Events must arrive in non-decreasing time
// order; a late event is counted and dropped (see Stats.OutOfOrder).
func (e *Engine) Process(ev *Event) { _ = e.rt.Process(ev) }

// Run consumes a whole stream and flushes.
func (e *Engine) Run(s Stream) {
	_ = e.rt.Run(context.Background(), s)
	_ = e.rt.Close()
}

// RunParallel consumes the stream with parallel workers, partitioning
// by grouping/equivalence attributes (paper §7), merging results per
// window as they close. Falls back to Run for ungrouped queries.
func (e *Engine) RunParallel(s Stream, workers int) {
	_ = e.rt.RunParallel(context.Background(), s, workers)
}

// SetTransactional switches to the paper's §7 stream-transaction
// scheduler: events sharing a timestamp execute as one transaction per
// partition, with independent dependency levels (e.g., several negative
// sub-pattern graphs) processed concurrently. Results are identical to
// the default sequential mode. Call before the first Process.
func (e *Engine) SetTransactional(on bool) { e.inner.SetTransactional(on) }

// Flush closes all open windows; call at end of stream. Flush closes
// the backing one-statement Runtime, so events offered afterwards are
// rejected and dropped (engines were always documented single-use;
// drive the Runtime directly if you need explicit end-of-life control).
func (e *Engine) Flush() { _ = e.rt.Close() }

// Results returns all emitted results sorted by (group, window),
// served from the handle's delivery buffer — the engine itself may run
// without retention.
func (e *Engine) Results() []Result {
	rs := e.h.bufferedResults()
	slices.SortFunc(rs, func(a, b Result) int {
		if c := cmp.Compare(a.Group, b.Group); c != 0 {
			return c
		}
		return cmp.Compare(a.Wid, b.Wid)
	})
	return rs
}

// Stats returns runtime statistics.
func (e *Engine) Stats() Stats { return e.inner.Stats() }

// DOT renders the engine's live GRETA graph(s) in Graphviz DOT format
// — one box per vertex labeled "type+time : count" as in the paper's
// figures, with edges between adjacent trend events. Intended for
// debugging and teaching on small streams; call before Flush expires
// the graph.
func (e *Engine) DOT() string { return e.inner.DOT() }
