// Package greta is a stream processing library for real-time event
// trend aggregation. It implements the GRETA approach (Poppe, Lei,
// Rundensteiner, Maier: "GRETA: Graph-based Real-time Event Trend
// Aggregation", VLDB 2017): aggregates over arbitrarily-long Kleene
// matches (event trends) are computed online by encoding all trends
// into a graph and propagating aggregates along its edges, without
// ever constructing the trends — quadratic time and linear space where
// two-step engines need exponential time and space.
//
// # Quick start
//
//	stmt, err := greta.Compile(`
//	    RETURN COUNT(*) PATTERN Stock S+
//	    WHERE [company] AND S.price > NEXT(S).price
//	    WITHIN 10 minutes SLIDE 10 seconds`)
//	if err != nil { ... }
//	eng := stmt.NewEngine()
//	eng.OnResult(func(r greta.Result) {
//	    fmt.Printf("window %d: %v down-trends\n", r.Wid, r.Values[0])
//	})
//	for _, ev := range events {
//	    eng.Process(ev)
//	}
//	eng.Flush()
//
// The query language follows the paper's grammar (Fig. 2): RETURN with
// COUNT/MIN/MAX/SUM/AVG, PATTERN with event types, SEQ, Kleene plus,
// and NOT (plus the §9 sugar: star, optional, OR, AND), WHERE with
// equivalence ([attr, ...]), vertex, and edge (NEXT) predicates,
// GROUP-BY, and WITHIN/SLIDE sliding windows.
package greta

import (
	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// Event is a stream message: a typed, timestamped record with numeric
// (Attrs) and string (Str) attributes. Construct events directly or
// with a Builder.
type Event = event.Event

// Time is an application timestamp in ticks (the paper's workloads use
// seconds).
type Time = event.Time

// Type identifies an event type.
type Type = event.Type

// Stream is an in-order event source.
type Stream = event.Stream

// Schema describes an event type's attributes. Binding events to a
// schema (Schema.Bind or BindSchemas) populates dense slot arrays that
// the runtime reads by precompiled index — the steady-state per-event
// path then runs without map probes or allocation. Events without a
// schema are processed through the equivalent map fallback.
type Schema = event.Schema

// BindSchemas binds each event whose type has a schema in schemas;
// call once at ingest. Events of other types stay schemaless.
func BindSchemas(evs []*Event, schemas []*Schema) { event.BindAll(evs, schemas) }

// Builder assembles in-order test and example streams.
type Builder = event.Builder

// NewSliceStream adapts a slice of events to a Stream.
func NewSliceStream(evs []*Event) Stream { return event.NewSliceStream(evs) }

// Result is one final aggregate for one group and one window.
type Result = core.Result

// Stats summarizes runtime costs: events, stored vertices, logical
// edges, partitions, results, memory peaks (PeakVertices/PeakPayloads,
// with summary payloads included), and the edge-traversal cost split —
// ScanVisits (per-vertex candidate visits) vs SummaryFolds (O(1)
// pane/subtree summary folds, each covering any number of logical
// edges) vs SummaryRebuilds (lazy in-place pane-summary rebuilds after
// negation watermark advances).
type Stats = core.Stats

// Option configures compilation.
type Option func(*options)

type options struct {
	mode aggregate.Mode
}

// WithExactArithmetic switches aggregate arithmetic from native machine
// words (uint64 with wrap-around, float64 sums) to exact math/big
// arithmetic. The number of trends is Θ(2ⁿ) in the window size, so
// native counters wrap on large windows; exact mode trades speed for
// full precision.
func WithExactArithmetic() Option {
	return func(o *options) { o.mode = aggregate.ModeExact }
}

// Statement is a compiled event trend aggregation query: the GRETA
// configuration produced by the static query analyzer (template per
// sub-pattern, classified predicates, window plan).
type Statement struct {
	query *query.Query
	plan  *core.Plan
}

// Compile parses and plans a query.
func Compile(src string, opts ...Option) (*Statement, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(q, o.mode)
	if err != nil {
		return nil, err
	}
	return &Statement{query: q, plan: plan}, nil
}

// MustCompile is Compile that panics on error, for tests and examples.
func MustCompile(src string, opts ...Option) *Statement {
	s, err := Compile(src, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Query returns the canonical text of the compiled query.
func (s *Statement) Query() string { return s.query.String() }

// NewEngine instantiates a fresh runtime for the statement. Engines are
// single-use: create one per stream pass.
func (s *Statement) NewEngine() *Engine {
	return &Engine{inner: core.NewEngine(s.plan)}
}

// Engine is the GRETA runtime: it consumes an in-order event stream,
// maintains the GRETA graph(s), and emits per-group, per-window
// aggregates as windows close.
type Engine struct {
	inner *core.Engine
}

// OnResult registers a callback invoked when a window's final
// aggregate is emitted (incrementally maintained, so emission is
// immediate at window close).
func (e *Engine) OnResult(f func(Result)) { e.inner.OnResult(f) }

// Process offers one event. Events must arrive in non-decreasing time
// order.
func (e *Engine) Process(ev *Event) { e.inner.Process(ev) }

// Run consumes a whole stream and flushes.
func (e *Engine) Run(s Stream) { e.inner.Run(s) }

// RunParallel consumes the stream with parallel workers, partitioning
// by grouping/equivalence attributes (paper §7). Falls back to Run for
// ungrouped queries.
func (e *Engine) RunParallel(s Stream, workers int) { e.inner.RunParallel(s, workers) }

// SetTransactional switches to the paper's §7 stream-transaction
// scheduler: events sharing a timestamp execute as one transaction per
// partition, with independent dependency levels (e.g., several negative
// sub-pattern graphs) processed concurrently. Results are identical to
// the default sequential mode. Call before the first Process.
func (e *Engine) SetTransactional(on bool) { e.inner.SetTransactional(on) }

// Flush closes all open windows; call at end of stream.
func (e *Engine) Flush() { e.inner.Flush() }

// Results returns all emitted results sorted by (group, window).
func (e *Engine) Results() []Result { return e.inner.Results() }

// Stats returns runtime statistics.
func (e *Engine) Stats() Stats { return e.inner.Stats() }

// DOT renders the engine's live GRETA graph(s) in Graphviz DOT format
// — one box per vertex labeled "type+time : count" as in the paper's
// figures, with edges between adjacent trend events. Intended for
// debugging and teaching on small streams; call before Flush expires
// the graph.
func (e *Engine) DOT() string { return e.inner.DOT() }
