#!/bin/sh
# Observability smoke test: runs a checkpointed gretacli workload with
# the metrics endpoint armed, scrapes /metrics while the run lingers,
# and asserts the key series families are present and the exposition
# parses (via cmd/promcheck, which reuses the in-repo parser). Also
# exercises the cluster coordinator's endpoint against live shards.
#
# Usage: scripts/obs_smoke.sh
set -eu

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$tmp/gretacli" ./cmd/gretacli
go build -o "$tmp/gretacluster" ./cmd/gretacluster
go build -o "$tmp/promcheck" ./cmd/promcheck

# --- runtime endpoint: checkpointed stock run, scraped mid-linger ----
"$tmp/gretacli" \
    -query 'RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 60 seconds SLIDE 20 seconds' \
    -workload stock -events 20000 \
    -checkpoint-dir "$tmp/ck" -checkpoint-every 2 \
    -metrics 127.0.0.1:0 -stats-interval 1s -linger 6s \
    >"$tmp/cli.out" 2>"$tmp/cli.err" &
cli=$!

url=""
for _ in $(seq 1 50); do
    url="$(sed -n 's/^metrics: //p' "$tmp/cli.err" | head -n1)"
    [ -n "$url" ] && break
    sleep 0.2
done
[ -n "$url" ] || { echo "obs_smoke: gretacli never echoed a metrics URL" >&2; cat "$tmp/cli.err" >&2; exit 1; }

# Let the feed finish so the gauges reflect the whole stream, then
# scrape during the linger window (the stream is fed in well under 6s).
sleep 3
curl -fsS "$url" >"$tmp/cli.prom"
"$tmp/promcheck" \
    greta_events_total \
    greta_watermark \
    greta_watermark_lag \
    greta_event_time_max \
    greta_statements \
    greta_stmt_events_total \
    greta_stmt_summary_folds_total \
    greta_checkpoint_writes_total \
    greta_checkpoint_age_seconds \
    <"$tmp/cli.prom"
curl -fsS "${url%/metrics}/metrics.json" >/dev/null
curl -fsS "${url%/metrics}/debug/vars" >/dev/null
wait "$cli" || { echo "obs_smoke: gretacli failed" >&2; cat "$tmp/cli.err" >&2; exit 1; }
grep -q '^stats: events=' "$tmp/cli.err" || { echo "obs_smoke: -stats-interval never printed" >&2; exit 1; }

# --- cluster endpoint: 2 shards, coordinator scraped mid-linger ------
"$tmp/gretacluster" shard -listen 127.0.0.1:0 >"$tmp/s1.out" 2>&1 &
"$tmp/gretacluster" shard -listen 127.0.0.1:0 >"$tmp/s2.out" 2>&1 &
a1=""; a2=""
for _ in $(seq 1 50); do
    a1="$(sed -n 's/^shard listening on //p' "$tmp/s1.out" | head -n1)"
    a2="$(sed -n 's/^shard listening on //p' "$tmp/s2.out" | head -n1)"
    [ -n "$a1" ] && [ -n "$a2" ] && break
    sleep 0.2
done
[ -n "$a1" ] && [ -n "$a2" ] || { echo "obs_smoke: shards never came up" >&2; exit 1; }

"$tmp/gretacluster" coord -shards "$a1,$a2" \
    -query 'RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E) WHERE [job, mapper] AND M.load < NEXT(M).load GROUP-BY mapper WITHIN 20 seconds SLIDE 10 seconds' \
    -workload cluster -events 30000 \
    -metrics 127.0.0.1:0 -linger 6s \
    >"$tmp/co.out" 2>"$tmp/co.err" &
co=$!

curl_url=""
for _ in $(seq 1 50); do
    curl_url="$(sed -n 's/^metrics: //p' "$tmp/co.err" | head -n1)"
    [ -n "$curl_url" ] && break
    sleep 0.2
done
[ -n "$curl_url" ] || { echo "obs_smoke: coordinator never echoed a metrics URL" >&2; cat "$tmp/co.err" >&2; exit 1; }

sleep 3
curl -fsS "$curl_url" >"$tmp/co.prom"
"$tmp/promcheck" \
    greta_cluster_events_total \
    greta_cluster_frames_total \
    greta_cluster_frame_bytes_total \
    greta_cluster_barriers_total \
    greta_cluster_barrier_rtt_seconds \
    greta_cluster_watermark \
    greta_cluster_low_watermark \
    greta_cluster_slot_ack_lag \
    greta_cluster_shards \
    greta_cluster_slots \
    <"$tmp/co.prom"
wait "$co" || { echo "obs_smoke: coordinator failed" >&2; cat "$tmp/co.err" >&2; exit 1; }

echo "obs_smoke: ok"
