#!/usr/bin/env bash
# apicheck.sh — the public-API surface guard.
#
#   scripts/apicheck.sh update   regenerate api.txt from the current code
#   scripts/apicheck.sh check    fail if the API surface drifted from api.txt
#
# api.txt is the committed fingerprint of every exported declaration
# (functions, methods, types, struct fields, vars, consts) of the
# public packages, extracted from `go doc -all`. CI runs `check`, so an
# accidental breaking change to the public API fails the build; an
# intentional change is committed by rerunning `make api` and reviewing
# the diff.
set -eu
cd "$(dirname "$0")/.."

OUT=api.txt
PKGS=". ./netstream ./cluster"

gen() {
	for pkg in $PKGS; do
		echo "# package $pkg"
		# Declarations are flush-left; struct fields, interface methods,
		# and const/var block members are tab-indented. Doc prose and its
		# code examples are space-indented and excluded, as are comments
		# inside declaration blocks.
		go doc -all "$pkg" | grep -E "^(func|type|var|const|$(printf '\t'))" | grep -v "^$(printf '\t')//" || true
		echo
	done
}

case "${1:-check}" in
update)
	gen >"$OUT"
	echo "wrote $OUT"
	;;
check)
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT
	gen >"$tmp"
	if ! diff -u "$OUT" "$tmp"; then
		echo >&2
		echo "public API surface drifted from $OUT." >&2
		echo "If the change is intentional, run 'make api' and commit the diff." >&2
		exit 1
	fi
	echo "API surface unchanged"
	;;
*)
	echo "usage: $0 [update|check]" >&2
	exit 2
	;;
esac
