#!/bin/sh
# Runs the paper-figure benchmarks (Fig. 14-17 + parallel partitions)
# with -benchmem and emits a machine-readable snapshot so future changes
# have a perf trajectory to compare against.
#
# Usage: scripts/bench.sh out.json [benchtime]
#   out.json   output file (required; the Makefile passes
#              BENCH_$(PR).json so each PR leaves its own snapshot —
#              guessing a default here would silently misfile the
#              perf trajectory)
#   benchtime  go test -benchtime value (default 1x; use e.g. 2s for
#              lower-variance numbers)
set -eu

out="${1:?usage: scripts/bench.sh out.json [benchtime] (run 'make bench PR=<n>' to pick the snapshot file)}"
benchtime="${2:-1x}"
pattern='BenchmarkFig14|BenchmarkFig15|BenchmarkFig16|BenchmarkFig17|BenchmarkParallelPartitions|BenchmarkSharedStatements|BenchmarkCheckpointWrite|BenchmarkRestore|BenchmarkBatchIngest|BenchmarkCluster|BenchmarkMetricsOverhead'

# Fail loudly if the snapshot cannot be written: a bench run whose
# output silently vanishes leaves a hole in the perf trajectory (the
# PR 7 snapshot was lost exactly this way).
if ! touch "$out" 2>/dev/null; then
    echo "error: cannot write $out" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . ./internal/bench ./cluster | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""; evs = ""; snap = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "events/s") evs = $i
        if ($(i+1) == "snapshot-bytes") snap = $i
    }
    if (ns == "") next
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (evs != "") line = line sprintf(", \"events_per_sec\": %s", evs)
    if (snap != "") line = line sprintf(", \"snapshot_bytes\": %s", snap)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    lines[n++] = line "}"
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

# An empty snapshot means the awk parse found no benchmark lines —
# refuse to leave a hollow file in the trajectory.
grep -q '"name"' "$out" || {
    echo "error: no benchmark results parsed; removing $out" >&2
    rm -f "$out"
    exit 1
}
echo "wrote $out"
