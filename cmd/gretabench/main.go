// Command gretabench regenerates the paper's evaluation (§10): the
// events-per-window sweeps for positive and negated patterns (Figures
// 14 and 15), the edge-predicate selectivity sweep (Figure 16), the
// trend-group sweep (Figure 17), the event-selection-semantics table
// (Table 1), and the complexity-growth measurement backing Theorems
// 8.1/8.2.
//
// Usage:
//
//	gretabench -exp all            # everything, default scale
//	gretabench -exp fig14 -quick   # one experiment, CI scale
//	gretabench -exp fig16 -csv     # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/greta-cep/greta/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig14|fig15|fig16|fig17|table1|growth|all")
	quick := flag.Bool("quick", false, "use the small CI scale")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	flag.Parse()

	sc := bench.Full()
	if *quick {
		sc = bench.Quick()
	}

	if err := bench.OracleCheck(); err != nil {
		fmt.Fprintln(os.Stderr, "correctness pre-check failed:", err)
		os.Exit(1)
	}

	emit := func(fig bench.Figure) {
		if *csv {
			bench.CSV(os.Stdout, fig)
		} else {
			bench.Print(os.Stdout, fig)
		}
	}
	run := func(name string) {
		switch name {
		case "fig14":
			fig, err := bench.Fig14(sc)
			check(err)
			emit(fig)
		case "fig15":
			fig, err := bench.Fig15(sc)
			check(err)
			emit(fig)
		case "fig16":
			fig, err := bench.Fig16(sc)
			check(err)
			emit(fig)
		case "fig17":
			fig, err := bench.Fig17(sc)
			check(err)
			emit(fig)
		case "table1":
			rows, err := bench.Table1()
			check(err)
			bench.PrintTable1(os.Stdout, rows)
		case "growth":
			pts, err := bench.Growth([]int{8, 16, 32, 64, 128, 256, 512, 1024})
			check(err)
			bench.PrintGrowth(os.Stdout, pts)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "growth", "fig14", "fig15", "fig16", "fig17"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
