// Command gretacli runs one or more GRETA queries over a generated
// workload or a CSV event file and prints the per-group, per-window
// aggregates. Multiple -query flags share one Runtime: the stream is
// ingested once and fanned out to every statement.
//
// Usage:
//
//	gretacli -query 'RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price' \
//	         -query 'RETURN SUM(S.price) PATTERN Stock S+ WHERE [company]' \
//	         -workload stock -events 10000
//
//	gretacli -query '...' -csv events.csv
//
// CSV format: type,time,attr=value,...,name=string,... — numeric values
// become numeric attributes, everything else string attributes.
//
// Durability: -checkpoint-dir DIR -checkpoint-every N writes a
// watermark-aligned checkpoint into DIR at every multiple of N in
// event time. After a crash, -restore -checkpoint-dir DIR rebuilds the
// statements from the newest valid checkpoint and replays only the
// events at or past its watermark — the output matches the
// uninterrupted run:
//
//	gretacli -query '...' -workload stock -checkpoint-dir /tmp/ck -checkpoint-every 100
//	gretacli -restore -checkpoint-dir /tmp/ck -workload stock
//
// Disorder: -slack N buffers events up to N time units behind the
// stream maximum and releases them in order; later events are dropped
// with a diagnostic on stderr (event time vs the violated watermark).
//
// Observability: -metrics ADDR serves /metrics (Prometheus text),
// /metrics.json, /debug/vars, and /debug/pprof/ for the run's
// lifetime (the bound address is echoed on stderr; ":0" picks a free
// port). -stats-interval D prints a one-line metrics summary to
// stderr every D. -linger D holds the stream open that long after the
// last event — watermark, lag, and checkpoint gauges stay live for
// scraping — before the final flush.
package main

import (
	"bufio"
	"cmp"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"github.com/greta-cep/greta"
)

// queryList collects repeated -query flags.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func main() {
	var queries queryList
	flag.Var(&queries, "query", "GRETA query text (repeatable; all queries share one ingest)")
	workload := flag.String("workload", "", "generate events: stock|linearroad|cluster")
	events := flag.Int("events", 10000, "number of generated events")
	csvPath := flag.String("csv", "", "read events from a CSV file instead")
	exact := flag.Bool("exact", false, "use exact (math/big) aggregate arithmetic")
	workers := flag.Int("workers", 1, "parallel partition workers")
	statsFlag := flag.Bool("stats", false, "print runtime statistics")
	haltProb := flag.Float64("haltprob", 0, "stock workload: per-event trading-halt probability (drives negation queries)")
	dotFlag := flag.Bool("dot", false, "print the GRETA graph in Graphviz DOT format (small streams, single query)")
	ckDir := flag.String("checkpoint-dir", "", "write watermark-aligned checkpoints into this directory (sequential runs only)")
	ckEvery := flag.Int64("checkpoint-every", 0, "checkpoint boundary interval in event-time units (required with -checkpoint-dir)")
	restoreFlag := flag.Bool("restore", false, "rebuild the runtime from -checkpoint-dir instead of -query flags, replaying only events at or past the checkpoint watermark")
	slack := flag.Int64("slack", 0, "tolerate out-of-order events up to this many time units behind the stream maximum (reorder buffer)")
	batch := flag.Int("batch", 1, "columnar ingest: feed events in batches of up to this many rows (sequential runs only; results are identical)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (\":0\" picks a free port, echoed on stderr)")
	statsInterval := flag.Duration("stats-interval", 0, "print a one-line metrics summary to stderr at this interval")
	linger := flag.Duration("linger", 0, "hold the stream open this long after the last event before flushing (metrics stay live for scraping)")
	flag.Parse()

	if *restoreFlag {
		if *ckDir == "" {
			fmt.Fprintln(os.Stderr, "-restore requires -checkpoint-dir")
			os.Exit(2)
		}
		if len(queries) > 0 || *dotFlag {
			fmt.Fprintln(os.Stderr, "-restore replays the checkpointed statements; drop -query/-dot")
			os.Exit(2)
		}
	} else if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "missing -query")
		flag.Usage()
		os.Exit(2)
	}
	if *ckDir != "" && !*restoreFlag && *ckEvery <= 0 {
		fmt.Fprintln(os.Stderr, "-checkpoint-dir requires a positive -checkpoint-every")
		os.Exit(2)
	}
	if *ckDir != "" && *workers > 1 {
		// Checkpoints ride the sequential ingest path; RunParallel owns
		// the stream without boundary hooks.
		fmt.Fprintln(os.Stderr, "-checkpoint-dir requires -workers 1")
		os.Exit(2)
	}
	if *slack > 0 && *workers > 1 {
		fmt.Fprintln(os.Stderr, "-slack requires -workers 1")
		os.Exit(2)
	}
	if *slack > 0 && *restoreFlag {
		fmt.Fprintln(os.Stderr, "-restore recovers the slack recorded in the checkpoint; drop -slack")
		os.Exit(2)
	}
	if *batch > 1 && *workers > 1 {
		fmt.Fprintln(os.Stderr, "-batch requires -workers 1 (RunParallel owns the stream)")
		os.Exit(2)
	}
	var opts []greta.Option
	if *exact {
		opts = append(opts, greta.WithExactArithmetic())
	}

	var evs []*greta.Event
	var err error
	switch {
	case *csvPath != "":
		evs, err = readCSV(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *workload == "stock":
		cfg := greta.DefaultStock(*events)
		cfg.HaltProb = *haltProb
		evs = greta.StockStream(cfg)
	case *workload == "linearroad":
		evs = greta.LinearRoadStream(greta.DefaultLinearRoad(*events))
	case *workload == "cluster":
		evs = greta.ClusterStream(greta.DefaultCluster(*events))
	default:
		fmt.Fprintln(os.Stderr, "specify -workload stock|linearroad|cluster or -csv file")
		os.Exit(2)
	}

	if *dotFlag {
		if len(queries) != 1 {
			fmt.Fprintln(os.Stderr, "-dot supports a single -query")
			os.Exit(2)
		}
		stmt, err := greta.Compile(queries[0], opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		eng := stmt.NewEngine()
		for _, ev := range evs {
			eng.Process(ev)
		}
		fmt.Print(eng.DOT())
		eng.Flush()
		return
	}

	var rt *greta.Runtime
	var handles []*greta.Handle
	if *restoreFlag {
		ropts := []greta.RuntimeOption{
			greta.WithCheckpointErrors(func(err error) { fmt.Fprintln(os.Stderr, "checkpoint:", err) }),
		}
		if *metricsAddr != "" {
			ropts = append(ropts, greta.WithMetricsAddr(*metricsAddr))
		}
		res, err := greta.Restore(*ckDir, ropts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rt = res.Runtime
		handles = res.Handles
		// Replay only the suffix the checkpoint did not cover; the results
		// below match the uninterrupted run bit for bit.
		replay := make([]*greta.Event, 0, len(evs))
		for _, ev := range evs {
			if ev.Time >= res.ReplayFrom {
				replay = append(replay, ev)
			}
		}
		fmt.Printf("restored %d statement(s) from %s; replaying %d of %d events (time >= %d)\n",
			len(handles), *ckDir, len(replay), len(evs), res.ReplayFrom)
		evs = replay
	} else {
		var ropts []greta.RuntimeOption
		if *ckDir != "" {
			ropts = append(ropts,
				greta.WithCheckpoint(*ckDir, *ckEvery),
				greta.WithCheckpointErrors(func(err error) { fmt.Fprintln(os.Stderr, "checkpoint:", err) }))
		}
		if *slack > 0 {
			ropts = append(ropts, greta.WithReorderSlack(*slack))
		}
		if *metricsAddr != "" {
			ropts = append(ropts, greta.WithMetricsAddr(*metricsAddr))
		}
		rt = greta.NewRuntime(ropts...)
		handles = make([]*greta.Handle, 0, len(queries))
		for _, src := range queries {
			stmt, err := greta.Compile(src, opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			h, err := rt.Register(stmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			handles = append(handles, h)
		}
	}
	// Sharing topology is decided at registration; snapshot it before
	// the run closes the runtime.
	topo := rt.Stats()

	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", rt.MetricsAddr())
	}
	if *statsInterval > 0 {
		stop := startStatsDump(rt, *statsInterval)
		defer close(stop)
	}
	// lingerNow holds the stream open (pre-flush) so live gauges —
	// watermark, lag, checkpoint age — can be scraped before Close
	// tears the statement set down.
	lingerNow := func() {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "lingering %s before flush\n", *linger)
			time.Sleep(*linger)
		}
	}

	ctx := context.Background()
	if *workers > 1 {
		err = rt.RunParallel(ctx, greta.NewSliceStream(evs), *workers)
		lingerNow()
	} else if *batch > 1 {
		var dropped int
		dropped, err = feedBatched(rt, evs, *batch)
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "%d out-of-order drops\n", dropped)
		}
		if err == nil {
			lingerNow()
			err = rt.Close()
		}
	} else {
		// Feed event by event so out-of-order drops surface with their
		// diagnostics (event time vs the violated watermark or reorder
		// horizon) instead of vanishing inside Run.
		const maxWarns = 10
		dropped := 0
		for _, ev := range evs {
			perr := rt.Process(ev)
			if perr == nil {
				continue
			}
			var oe *greta.OrderError
			if errors.As(perr, &oe) {
				dropped++
				if dropped <= maxWarns {
					fmt.Fprintf(os.Stderr, "out-of-order drop: event %d time %d behind watermark %d\n",
						ev.ID, oe.EventTime, oe.Watermark)
				}
				continue
			}
			err = perr
			break
		}
		if dropped > maxWarns {
			fmt.Fprintf(os.Stderr, "... %d more out-of-order drops\n", dropped-maxWarns)
		}
		if err == nil {
			lingerNow()
			err = rt.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("events: %d\n", len(evs))
	if *statsFlag && topo.Statements > 1 {
		fmt.Printf("statements=%d routeGroups=%d sharedStatements=%d sharedGraphs=%d\n",
			topo.Statements, topo.RouteGroups, topo.SharedStatements, topo.SharedGraphs)
	}
	for _, h := range handles {
		tag := ""
		if len(handles) > 1 {
			tag = fmt.Sprintf("[%s] ", h.ID())
		}
		fmt.Printf("\n%squery: %s\n\n", tag, h.Query())
		fmt.Printf("%-20s%-10s%-14s%s\n", "group", "window", "interval", "aggregates")
		// Collect and sort by (group, window): batch output stays
		// deterministic and diffable across engine versions.
		var results []greta.Result
		for r := range h.Results() {
			results = append(results, r)
		}
		slices.SortFunc(results, func(a, b greta.Result) int {
			if c := cmp.Compare(a.Group, b.Group); c != 0 {
				return c
			}
			return cmp.Compare(a.Wid, b.Wid)
		})
		for _, r := range results {
			group := r.Group
			if group == "" {
				group = "(all)"
			}
			vals := make([]string, len(r.Values))
			for i, v := range r.Values {
				vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			fmt.Printf("%-20s%-10d[%d,%d)      %s\n", group, r.Wid, r.WindowStart, r.WindowEnd, strings.Join(vals, ", "))
		}
		if *statsFlag {
			st := h.Stats()
			fmt.Printf("\nevents=%d inserted=%d edges=%d partitions=%d peakVertices=%d peakPayloads=%d results=%d shared=%d\n",
				st.Events, st.Inserted, st.Edges, st.Partitions, st.PeakVertices, st.PeakPayloads, st.Results, st.SharedStatements)
			// Edge-traversal cost split: per-vertex candidate visits vs O(1)
			// summary folds (each covering any number of edges) vs lazy
			// watermark-driven summary rebuilds.
			fmt.Printf("scanVisits=%d summaryFolds=%d summaryRebuilds=%d\n",
				st.ScanVisits, st.SummaryFolds, st.SummaryRebuilds)
		}
	}
}

// startStatsDump prints a one-line metrics summary to stderr every
// interval until the returned channel is closed: cumulative events and
// the instantaneous rate, drops, watermark and lag, the fold/scan
// split, and checkpoint age.
func startStatsDump(rt *greta.Runtime, interval time.Duration) chan struct{} {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastEvents uint64
		lastT := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			m := rt.Metrics()
			now := time.Now()
			rate := float64(m.Events-lastEvents) / now.Sub(lastT).Seconds()
			lastEvents, lastT = m.Events, now
			var folds, scans uint64
			for i := range m.Statements {
				folds += m.Statements[i].Stats.SummaryFolds
				scans += m.Statements[i].Stats.ScanVisits
			}
			line := fmt.Sprintf("stats: events=%d (%.0f/s) dropped=%d watermark=%d lag=%d folds=%d scans=%d",
				m.Events, rate, m.Dropped, m.Watermark, m.WatermarkLag, folds, scans)
			if m.Checkpoint.Armed {
				line += fmt.Sprintf(" ckwrites=%d ckage=%s", m.Checkpoint.Writes, m.Checkpoint.Age.Truncate(time.Millisecond))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}()
	return stop
}

// feedBatched feeds evs through Runtime.ProcessBatch in columnar
// blocks of up to n consecutive same-type events, returning the number
// of out-of-order drops. Events the dense representation cannot hold
// (NaN values, empty strings) fall back to the per-event path; results
// are identical to a per-event feed either way. Each flush hands the
// batch's rows to the runtime, so a fresh batch is allocated per block
// (graphs retain pointers into it while windows stay open).
func feedBatched(rt *greta.Runtime, evs []*greta.Event, n int) (int, error) {
	// One schema per type, with sorted attribute names collected over the
	// whole stream, so every batch of a type binds to one schema.
	type attrSets struct{ num, str map[string]bool }
	sets := map[greta.Type]*attrSets{}
	for _, ev := range evs {
		s := sets[ev.Type]
		if s == nil {
			s = &attrSets{num: map[string]bool{}, str: map[string]bool{}}
			sets[ev.Type] = s
		}
		for a := range ev.Attrs {
			s.num[a] = true
		}
		for a := range ev.Str {
			s.str[a] = true
		}
	}
	schemas := make(map[greta.Type]*greta.Schema, len(sets))
	for typ, s := range sets {
		sch := &greta.Schema{Type: typ}
		for a := range s.num {
			sch.Numeric = append(sch.Numeric, a)
		}
		for a := range s.str {
			sch.Strings = append(sch.Strings, a)
		}
		slices.Sort(sch.Numeric)
		slices.Sort(sch.Strings)
		schemas[typ] = sch
	}

	dropped := 0
	flush := func(b *greta.Batch) error {
		if b == nil || b.Len() == 0 {
			return nil
		}
		acc, err := rt.ProcessBatch(b)
		dropped += b.Len() - acc
		return err
	}
	var cur *greta.Batch
	for _, ev := range evs {
		if cur != nil && (cur.Type() != ev.Type || cur.Len() >= n) {
			if err := flush(cur); err != nil {
				return dropped, err
			}
			cur = nil
		}
		if cur == nil {
			cur = greta.NewBatch(schemas[ev.Type], n)
		}
		if err := cur.AppendEvent(ev); err != nil {
			// Unrepresentable row: flush the block so far and feed this
			// event through the per-event path.
			if err := flush(cur); err != nil {
				return dropped, err
			}
			cur = nil
			if perr := rt.Process(ev); perr != nil {
				if errors.Is(perr, greta.ErrOutOfOrder) {
					dropped++
					continue
				}
				return dropped, perr
			}
		}
	}
	return dropped, flush(cur)
}

// readCSV parses "type,time,key=value,..." lines.
func readCSV(path string) ([]*greta.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []*greta.Event
	sc := bufio.NewScanner(f)
	line := 0
	var id uint64
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		parts := strings.Split(txt, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("%s:%d: need at least type,time", path, line)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad time %q", path, line, parts[1])
		}
		id++
		ev := &greta.Event{
			ID:    id,
			Type:  greta.Type(strings.TrimSpace(parts[0])),
			Time:  t,
			Attrs: map[string]float64{},
			Str:   map[string]string{},
		}
		for _, kv := range parts[2:] {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: bad attribute %q", path, line, kv)
			}
			k, v := strings.TrimSpace(kv[:eq]), strings.TrimSpace(kv[eq+1:])
			if fv, err := strconv.ParseFloat(v, 64); err == nil {
				ev.Attrs[k] = fv
			} else {
				ev.Str[k] = v
			}
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}
