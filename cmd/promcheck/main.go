// Command promcheck validates a Prometheus text exposition on stdin
// and asserts that the series families named as arguments are present.
// It exits non-zero — listing what is missing — when the exposition
// does not parse or an expected family is absent. The CI obs-smoke job
// pipes `curl /metrics` through it:
//
//	curl -s http://127.0.0.1:9090/metrics | promcheck greta_events_total greta_watermark_lag
//
// A name matches exactly, or as a family prefix with a label set or
// histogram suffix (greta_stmt_events_total matches
// `greta_stmt_events_total{stmt="q0"}`).
package main

import (
	"fmt"
	"os"

	"github.com/greta-cep/greta/internal/obs"
)

func main() {
	series, err := obs.ParseProm(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: exposition does not parse:", err)
		os.Exit(1)
	}
	if len(series) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty exposition")
		os.Exit(1)
	}
	missing := 0
	for _, name := range os.Args[1:] {
		if !obs.HasSeries(series, name) {
			fmt.Fprintf(os.Stderr, "promcheck: missing series %s\n", name)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d series parsed, %d expected families present\n", len(series), len(os.Args)-1)
}
