// Command gretagen writes one of the evaluation workloads (paper §10.1)
// as a CSV event file consumable by gretacli -csv, so experiments can
// be repeated on fixed inputs and inspected by external tools.
//
// Usage:
//
//	gretagen -workload stock -events 100000 -seed 7 > events.csv
//	gretacli -query '...' -csv events.csv
//
// CSV format: type,time,key=value,... (numeric values become numeric
// attributes, everything else string attributes).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"

	"github.com/greta-cep/greta"
)

func main() {
	workload := flag.String("workload", "stock", "stock|linearroad|cluster")
	events := flag.Int("events", 10000, "number of events")
	seed := flag.Int64("seed", 1, "generator seed")
	haltProb := flag.Float64("haltprob", 0, "stock: trading-halt probability")
	selectivity := flag.Float64("selectivity", 50, "linearroad: gate selectivity percent")
	groups := flag.Int("groups", 10, "cluster: number of mappers (trend groups)")
	flag.Parse()

	var evs []*greta.Event
	switch *workload {
	case "stock":
		cfg := greta.DefaultStock(*events)
		cfg.Seed = *seed
		cfg.HaltProb = *haltProb
		evs = greta.StockStream(cfg)
	case "linearroad":
		cfg := greta.DefaultLinearRoad(*events)
		cfg.Seed = *seed
		cfg.GateSelectivity = *selectivity
		evs = greta.LinearRoadStream(cfg)
	case "cluster":
		cfg := greta.DefaultCluster(*events)
		cfg.Seed = *seed
		cfg.Mappers = *groups
		evs = greta.ClusterStream(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range evs {
		fmt.Fprintf(w, "%s,%d", e.Type, e.Time)
		// Deterministic attribute order for reproducible files.
		nkeys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			nkeys = append(nkeys, k)
		}
		slices.Sort(nkeys)
		for _, k := range nkeys {
			fmt.Fprintf(w, ",%s=%s", k, strconv.FormatFloat(e.Attrs[k], 'g', -1, 64))
		}
		skeys := make([]string, 0, len(e.Str))
		for k := range e.Str {
			skeys = append(skeys, k)
		}
		slices.Sort(skeys)
		for _, k := range skeys {
			fmt.Fprintf(w, ",%s=%s", k, e.Str[k])
		}
		fmt.Fprintln(w)
	}
}
