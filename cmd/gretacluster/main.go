// Command gretacluster runs the multi-process GRETA cluster: shard
// processes host worker slots behind netstream servers, and one
// coordinator process routes a workload across them, drives the
// per-statement window barriers, and merges the shards' partial
// windows into final aggregates — bit-identical to a single-process
// RunParallel run with the same worker count.
//
// Start shards, then point a coordinator at them:
//
//	gretacluster shard -listen 127.0.0.1:7101 &
//	gretacluster shard -listen 127.0.0.1:7102 &
//	gretacluster coord -shards 127.0.0.1:7101,127.0.0.1:7102 \
//	    -query 'RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E)
//	            WHERE [job, mapper] AND M.load < NEXT(M).load
//	            GROUP-BY mapper WITHIN 60 seconds SLIDE 30 seconds' \
//	    -workload cluster -events 100000
//
// Shards are stateless to configure: every statement, route table, and
// watermark arrives from the coordinator over the wire. A shard serves
// until SIGINT/SIGTERM, then drains its sessions and exits.
package main

import (
	"cmp"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/greta-cep/greta"
	"github.com/greta-cep/greta/cluster"
)

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "shard":
		runShard(os.Args[2:])
	case "coord":
		runCoord(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gretacluster shard -listen ADDR
  gretacluster coord -shards ADDR[,ADDR...] -query '...' [-query '...'] [flags]`)
}

func runShard(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address to serve shard sessions on")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// The coordinator scrapes this line when it spawns shards itself
	// (see examples/cluster); humans read it too.
	fmt.Printf("shard listening on %s\n", ln.Addr())

	srv := cluster.ServeShard()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		if err := srv.Shutdown(context.Background()); err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}
}

func runCoord(args []string) {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	var queries queryList
	fs.Var(&queries, "query", "GRETA query text (repeatable)")
	shards := fs.String("shards", "", "comma-separated shard addresses")
	workload := fs.String("workload", "cluster", "generate events: stock|linearroad|cluster")
	events := fs.Int("events", 100000, "number of generated events")
	exact := fs.Bool("exact", false, "use exact (math/big) aggregate arithmetic")
	statsFlag := fs.Bool("stats", false, "print per-statement statistics")
	metricsAddr := fs.String("metrics", "", "serve the coordinator's /metrics, /metrics.json and /debug/pprof/ on this address (\":0\" picks a free port, echoed on stderr)")
	traceFlag := fs.Bool("trace", false, "print lifecycle trace events (barriers, shard membership) to stderr")
	linger := fs.Duration("linger", 0, "hold the cluster open this long after the last event before closing (metrics stay live for scraping)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *shards == "" || len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "coord requires -shards and at least one -query")
		os.Exit(2)
	}
	var evs []*greta.Event
	switch *workload {
	case "stock":
		evs = greta.StockStream(greta.DefaultStock(*events))
	case "linearroad":
		evs = greta.LinearRoadStream(greta.DefaultLinearRoad(*events))
	case "cluster":
		evs = greta.ClusterStream(greta.DefaultCluster(*events))
	default:
		fmt.Fprintln(os.Stderr, "unknown -workload (want stock|linearroad|cluster)")
		os.Exit(2)
	}

	cfg := cluster.Config{
		Shards:      strings.Split(*shards, ","),
		MetricsAddr: *metricsAddr,
	}
	if *traceFlag {
		cfg.TraceHook = func(te greta.TraceEvent) {
			fmt.Fprintf(os.Stderr, "trace: %s stmt=%s shard=%d boundary=%d watermark=%d dur=%s\n",
				te.Kind, te.Stmt, te.Shard, te.Boundary, te.Watermark, te.Dur)
		}
	}
	co, err := cluster.Connect(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", co.MetricsAddr())
	}
	handles := make([]*cluster.Handle, 0, len(queries))
	for _, src := range queries {
		var opts []cluster.RegisterOption
		if *exact {
			opts = append(opts, cluster.WithExactArithmetic())
		}
		h, err := co.Register(src, opts...)
		if err != nil {
			fatal(err)
		}
		handles = append(handles, h)
	}

	dropped := 0
	for _, ev := range evs {
		if err := co.Process(ev); err != nil {
			if errors.Is(err, greta.ErrOutOfOrder) {
				dropped++
				continue
			}
			fatal(err)
		}
	}
	if *linger > 0 {
		// Pre-close: slot ack lag, barrier RTTs, and the watermarks stay
		// live on the metrics endpoint while we linger.
		fmt.Fprintf(os.Stderr, "lingering %s before close\n", *linger)
		time.Sleep(*linger)
	}
	if err := co.Close(); err != nil {
		fatal(err)
	}
	for _, w := range co.Warnings() {
		fmt.Fprintln(os.Stderr, "warn:", w)
	}

	fmt.Printf("events: %d  shards: %d  slots: %d\n", len(evs), co.Shards(), co.Slots())
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "%d out-of-order drops\n", dropped)
	}
	for _, h := range handles {
		tag := ""
		if len(handles) > 1 {
			tag = fmt.Sprintf("[%s] ", h.ID())
		}
		fmt.Printf("\n%s%-20s%-10s%-14s%s\n", tag, "group", "window", "interval", "aggregates")
		results := h.Results()
		slices.SortFunc(results, func(a, b greta.Result) int {
			if c := cmp.Compare(a.Group, b.Group); c != 0 {
				return c
			}
			return cmp.Compare(a.Wid, b.Wid)
		})
		for _, r := range results {
			group := r.Group
			if group == "" {
				group = "(all)"
			}
			vals := make([]string, len(r.Values))
			for i, v := range r.Values {
				vals[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			fmt.Printf("%-20s%-10d[%d,%d)      %s\n", group, r.Wid, r.WindowStart, r.WindowEnd, strings.Join(vals, ", "))
		}
		if *statsFlag {
			st := h.Stats()
			fmt.Printf("\nevents=%d inserted=%d edges=%d partitions=%d results=%d\n",
				st.Events, st.Inserted, st.Edges, st.Partitions, st.Results)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
