package greta_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/greta-cep/greta"
)

func TestCompileAndRunQ1(t *testing.T) {
	stmt, err := greta.Compile(`
		RETURN sector, COUNT(*)
		PATTERN Stock S+
		WHERE [company, sector] AND S.price > NEXT(S).price
		GROUP-BY sector
		WITHIN 60 seconds SLIDE 20 seconds`)
	if err != nil {
		t.Fatal(err)
	}
	events := greta.StockStream(greta.DefaultStock(5000))
	eng := stmt.NewEngine()
	var streamed int
	eng.OnResult(func(greta.Result) { streamed++ })
	eng.Run(greta.NewSliceStream(events))
	rs := eng.Results()
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if streamed != len(rs) {
		t.Errorf("callback saw %d, collected %d", streamed, len(rs))
	}
	sectors := map[string]bool{}
	for _, r := range rs {
		if !strings.HasPrefix(r.Group, "sec") {
			t.Errorf("group %q is not a sector", r.Group)
		}
		sectors[r.Group] = true
		if r.Values[0] <= 0 {
			t.Errorf("non-positive count %v", r.Values[0])
		}
	}
	if len(sectors) != 2 {
		t.Errorf("sectors = %d, want 2", len(sectors))
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"RETURN COUNT(*)",
		"RETURN COUNT(*) PATTERN NOT A",
		"RETURN COUNT(*) PATTERN A+ WHERE Z.x > 1",
	} {
		if _, err := greta.Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	greta.MustCompile("bogus")
}

func TestExactArithmetic(t *testing.T) {
	// 80 a's: COUNT(*) for A+ is 2^80-1, beyond uint64. Exact mode keeps
	// full precision (extracted as float64 here).
	var b greta.Builder
	for i := 1; i <= 80; i++ {
		b.Add("A", greta.Time(i), nil)
	}
	stmt := greta.MustCompile("RETURN COUNT(*) PATTERN A+", greta.WithExactArithmetic())
	eng := stmt.NewEngine()
	eng.Run(b.Stream())
	rs := eng.Results()
	if len(rs) != 1 {
		t.Fatal("no result")
	}
	want := 1.2089258196146292e24 // 2^80 - 1
	if got := rs[0].Values[0]; got < want*0.999999 || got > want*1.000001 {
		t.Errorf("COUNT(*) = %v, want ≈2^80", got)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	stmt := greta.MustCompile(`
		RETURN mapper, SUM(M.cpu)
		PATTERN SEQ(Start S, Measurement M+, End E)
		WHERE [job, mapper] AND M.load < NEXT(M).load
		GROUP-BY mapper
		WITHIN 20 seconds SLIDE 10 seconds`)
	events := greta.ClusterStream(greta.DefaultCluster(20000))

	seq := stmt.NewEngine()
	seq.Run(greta.NewSliceStream(events))
	par := stmt.NewEngine()
	par.RunParallel(greta.NewSliceStream(events), 4)

	a, b := seq.Results(), par.Results()
	if len(a) != len(b) {
		t.Fatalf("results: seq %d, par %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
			t.Fatalf("result %d keys differ: %v vs %v", i, a[i], b[i])
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Errorf("result %d value %d: %v vs %v", i, j, a[i].Values[j], b[i].Values[j])
			}
		}
	}
}

func TestOutOfOrderDropped(t *testing.T) {
	stmt := greta.MustCompile("RETURN COUNT(*) PATTERN A+")
	eng := stmt.NewEngine()
	eng.Process(&greta.Event{ID: 1, Type: "A", Time: 5})
	eng.Process(&greta.Event{ID: 2, Type: "A", Time: 3}) // late: dropped
	eng.Process(&greta.Event{ID: 3, Type: "A", Time: 6})
	eng.Flush()
	if got := eng.Stats().OutOfOrder; got != 1 {
		t.Errorf("OutOfOrder = %d, want 1", got)
	}
	rs := eng.Results()
	if len(rs) != 1 || rs[0].Values[0] != 3 { // trends over {a5, a6}
		t.Errorf("results = %+v, want count 3", rs)
	}
}

func TestStatementQueryText(t *testing.T) {
	stmt := greta.MustCompile("RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 10 SLIDE 5")
	if !strings.Contains(stmt.Query(), "(SEQ(A+, B))+") {
		t.Errorf("query text = %q", stmt.Query())
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(greta.StockStream(greta.DefaultStock(100))) != 100 {
		t.Error("stock")
	}
	if len(greta.LinearRoadStream(greta.DefaultLinearRoad(100))) != 100 {
		t.Error("linearroad")
	}
	if len(greta.ClusterStream(greta.DefaultCluster(100))) != 100 {
		t.Error("cluster")
	}
}

func TestChannelIngestion(t *testing.T) {
	stmt := greta.MustCompile("RETURN COUNT(*) PATTERN SEQ(A+, B)")
	ch := make(chan *greta.Event, 16)
	rng := rand.New(rand.NewSource(1))
	go func() {
		for i := 1; i <= 50; i++ {
			typ := greta.Type("A")
			if rng.Intn(3) == 0 {
				typ = "B"
			}
			ch <- &greta.Event{ID: uint64(i), Type: typ, Time: greta.Time(i)}
		}
		close(ch)
	}()
	eng := stmt.NewEngine()
	for ev := range ch {
		eng.Process(ev)
	}
	eng.Flush()
	if len(eng.Results()) != 1 {
		t.Fatalf("results = %d", len(eng.Results()))
	}
}
