module github.com/greta-cep/greta

go 1.24.0
