// Checkpoint/restore: serializes a Runtime's full recoverable state —
// statement registrations, shared-entry topology, per-partition graph
// panes with their B-tree structure and watermark-versioned summaries,
// invalidation cursors, result buffers, and watermarks — into the
// versioned body framed by internal/checkpoint's Store.
//
// The contract is bit-identity: restoring a checkpoint written at
// window boundary B and replaying every event with Time >= B yields
// the same results, the same Stats counters, and the same summary
// float folds as the uninterrupted run. To make that hold the exact
// B-tree node structure and each node's summary payload are
// serialized (rebuilding trees would change fold order and rebuild
// counters), and restore fills pooled payloads by direct field
// assignment so no Add/Merge path charges stats twice — GraphStats
// are restored wholesale instead.
//
// Scheduled checkpoints fire inside process before the triggering
// event is applied: every engine is advanced to the boundary B (which
// closes exactly the windows the triggering event would have closed),
// so no event with Time in [B, trigger) exists and the replayed
// suffix starting at the trigger is exactly the unprocessed stream.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	"sort"
	"strings"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
	"github.com/greta-cep/greta/internal/checkpoint"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/reorder"
)

// ckVersion is the core body format version (the Store frames the body
// with magic and checksum; this word versions the body layout).
// Version 2 added the session-meta blob to the header and the reorder
// buffer section (slack, watermarks, pending in-flight events) to the
// body, so a restored runtime rehydrates its disorder window instead
// of silently flushing it.
const ckVersion = 2

// SaveFunc persists one snapshot. replayFrom is the inclusive
// event-time lower bound the feeder must replay after a restore;
// snapshot writes the body bytes. The callback runs with the runtime
// lock held — it must not call back into the Runtime.
type SaveFunc func(replayFrom event.Time, snapshot func(io.Writer) error) error

// ckState is the armed checkpoint schedule.
type ckState struct {
	every event.Time // boundary interval, > 0
	next  event.Time // first event time that triggers a checkpoint
	save  SaveFunc
	onErr func(error) // scheduled-save failures degrade loudly here

	// Observability of the last successful write (runCheckpoint): the
	// fields live here rather than in cells because they are read under
	// rt.mu at snapshot time only.
	lastDur  time.Duration
	lastUnix int64 // wall clock (ns); 0 before the first success
}

// SetCheckpoint arms watermark-aligned checkpointing: before applying
// the first event with Time >= the next multiple of every, the runtime
// advances all engines to that boundary and hands a snapshot to save.
// from < 0 means a fresh runtime (first boundary at every); a restored
// runtime passes its replayFrom so the schedule resumes where it left
// off. Save failures are reported to onErr (may be nil) and do not
// stop ingestion — the previous checkpoint generation remains valid.
func (rt *Runtime) SetCheckpoint(every, from event.Time, save SaveFunc, onErr func(error)) error {
	if every <= 0 {
		return errors.New("greta: checkpoint interval must be positive")
	}
	if save == nil {
		return errors.New("greta: checkpoint save function is nil")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	next := every
	if from >= 0 {
		next = from/every*every + every
	}
	rt.ck = &ckState{every: every, next: next, save: save, onErr: onErr}
	return nil
}

// SetCheckpointMeta registers an opaque session-meta provider: f is
// invoked at snapshot-encode time (runtime lock held — it must not
// call back into the Runtime) and its bytes travel inside the
// checkpoint header, surfacing again as RestoreInfo.Meta. The serving
// layer uses it to persist session identity and sequence cursors next
// to the engine state they describe. nil clears the provider.
func (rt *Runtime) SetCheckpointMeta(f func() []byte) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ckMeta = f
}

// checkpointAtBoundary runs a scheduled checkpoint; rt.mu held, t is
// the triggering (not yet applied) event time.
func (rt *Runtime) checkpointAtBoundary(t event.Time) {
	ck := rt.ck
	b := t / ck.every * ck.every
	// Advance every engine to the boundary: closes the same windows
	// the triggering event would close, flushes transactional batches
	// (their time is < b), and is idempotent for engines shared by
	// several statements.
	for _, st := range rt.stmts {
		st.eng.AdvanceTo(b)
	}
	ck.next = b + ck.every
	err := rt.runCheckpoint(ck, b)
	if err != nil && ck.onErr != nil {
		ck.onErr(err)
	}
}

// countingWriter counts the snapshot bytes flowing to the store.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// runCheckpoint runs one snapshot write (scheduled boundary or manual)
// with full instrumentation: write duration, snapshot bytes, trace
// begin/commit/fail. rt.mu held. Timing and allocation here are fine —
// this is a boundary, not the steady per-event path (the alloc guard's
// measured windows avoid boundaries for exactly this reason).
func (rt *Runtime) runCheckpoint(ck *ckState, replayFrom event.Time) error {
	rt.fireTrace(TraceEvent{Kind: TraceCheckpointBegin, Boundary: replayFrom, Watermark: rt.watermark})
	var cw countingWriter
	start := time.Now()
	err := ck.save(replayFrom, func(w io.Writer) error {
		cw.w, cw.n = w, 0
		return rt.encodeLocked(&cw, replayFrom)
	})
	dur := time.Since(start)
	if err != nil {
		if m := rt.met; m != nil {
			m.ckFails.Inc()
		}
		rt.fireTrace(TraceEvent{Kind: TraceCheckpointFail, Boundary: replayFrom, Watermark: rt.watermark, Dur: dur, Err: err})
		return err
	}
	ck.lastDur = dur
	ck.lastUnix = nowNanos()
	if m := rt.met; m != nil {
		m.ckWrites.Inc()
		m.ckBytes.Add(uint64(cw.n))
		m.ckLastBytes.Set(cw.n)
		m.ckLastBoundary.Set(replayFrom)
		m.ckLastUnix.Set(ck.lastUnix)
		m.ckDur.Observe(dur)
	}
	rt.fireTrace(TraceEvent{Kind: TraceCheckpointCommit, Boundary: replayFrom, Watermark: rt.watermark, Bytes: cw.n, Dur: dur})
	return nil
}

// CheckpointArmed reports whether a scheduled checkpoint cadence is
// armed (SetCheckpoint). Serving layers with frame-granular ingest
// cursors (netstream batch frames) use it to decide whether a snapshot
// can fire mid-frame — in which case they must track per-row progress
// so replay after restore stays exactly-once.
func (rt *Runtime) CheckpointArmed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ck != nil
}

// CheckpointNow persists an immediate snapshot with replayFrom =
// watermark+1. Unlike boundary checkpoints it does not advance
// engines, so the exactness contract is weaker: replay is exact when
// event timestamps strictly increase (or the caller quiesced at a
// timestamp boundary); otherwise events sharing the watermark
// timestamp that arrive after the snapshot are replayed into state
// that already contains their predecessors' windows closed. The
// scheduled path has no such caveat.
func (rt *Runtime) CheckpointNow() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if rt.running {
		return ErrRunning
	}
	ck := rt.ck
	if ck == nil {
		return errors.New("greta: checkpointing is not configured")
	}
	replay := rt.watermark + 1
	return rt.runCheckpoint(ck, replay)
}

// Plan returns the plan the statement registered with.
func (st *Stmt) Plan() *Plan { return st.srcPlan }

// NoRetain reports whether the statement registered in
// drop-on-delivery mode (StmtConfig.NoRetain).
func (st *Stmt) NoRetain() bool { return st.noRetain }

// ---------------------------------------------------------------------
// Event and schema tables
// ---------------------------------------------------------------------

// evTable interns the events referenced by serialized state (vertices,
// transactional batches). The runtime shares one *Event across all
// engines, so deduplication is by pointer; references are assigned in
// first-encounter order while the body is encoded, and the table
// itself is written before the body in the file.
type evTable struct {
	refs    map[*event.Event]uint32
	list    []*event.Event
	schRefs map[*event.Schema]uint32
	schemas []*event.Schema
}

func newEvTable() *evTable {
	return &evTable{refs: map[*event.Event]uint32{}, schRefs: map[*event.Schema]uint32{}}
}

func (t *evTable) ref(ev *event.Event) uint32 {
	if r, ok := t.refs[ev]; ok {
		return r
	}
	r := uint32(len(t.list))
	t.refs[ev] = r
	t.list = append(t.list, ev)
	if ev.Sch != nil {
		if _, ok := t.schRefs[ev.Sch]; !ok {
			t.schRefs[ev.Sch] = uint32(len(t.schemas))
			t.schemas = append(t.schemas, ev.Sch)
		}
	}
	return r
}

func (t *evTable) encode(enc *checkpoint.Encoder) {
	enc.U32(uint32(len(t.schemas)))
	for _, s := range t.schemas {
		enc.String(string(s.Type))
		enc.U32(uint32(len(s.Numeric)))
		for _, a := range s.Numeric {
			enc.String(a)
		}
		enc.U32(uint32(len(s.Strings)))
		for _, a := range s.Strings {
			enc.String(a)
		}
	}
	enc.U32(uint32(len(t.list)))
	for _, ev := range t.list {
		enc.U64(ev.ID)
		enc.String(string(ev.Type))
		enc.I64(ev.Time)
		if ev.Sch != nil && ev.Attrs == nil && ev.Str == nil {
			// Map-free batch row: its dense slots are the only attribute
			// storage. Encode the present slots as the sorted map entries
			// an equivalent map-carried bound event would write — batch
			// rows cannot hold the NaN/"" absence markers as values, so
			// the rendering (and therefore the snapshot bytes) matches
			// the per-event feed exactly, and decode's Bind rebuilds the
			// slots from the maps as usual.
			encodeRowAttrs(enc, ev)
		} else {
			keys := make([]string, 0, len(ev.Attrs))
			for k := range ev.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			enc.U32(uint32(len(keys)))
			for _, k := range keys {
				enc.String(k)
				enc.F64(ev.Attrs[k])
			}
			keys = keys[:0]
			for k := range ev.Str {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			enc.U32(uint32(len(keys)))
			for _, k := range keys {
				enc.String(k)
				enc.String(ev.Str[k])
			}
		}
		if ev.Sch != nil {
			enc.Bool(true)
			enc.U32(t.schRefs[ev.Sch])
		} else {
			enc.Bool(false)
		}
	}
}

// encodeRowAttrs writes a map-free schema-bound row's attributes in
// the exact wire form of a map-carried event: present numeric slots
// (non-NaN) then present string slots (non-""), each sorted by name.
func encodeRowAttrs(enc *checkpoint.Encoder, ev *event.Event) {
	keys := make([]string, 0, len(ev.Num))
	for i, a := range ev.Sch.Numeric {
		if i < len(ev.Num) && !math.IsNaN(ev.Num[i]) {
			keys = append(keys, a)
		}
	}
	sort.Strings(keys)
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.F64(ev.Num[ev.Sch.NumSlot(k)])
	}
	keys = keys[:0]
	for i, a := range ev.Sch.Strings {
		if i < len(ev.StrV) && ev.StrV[i] != "" {
			keys = append(keys, a)
		}
	}
	sort.Strings(keys)
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.String(ev.StrV[ev.Sch.StrSlot(k)])
	}
}

func decodeSchemas(d *checkpoint.Decoder) []*event.Schema {
	n := d.Len(12)
	out := make([]*event.Schema, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		s := &event.Schema{Type: event.Type(d.String())}
		nn := d.Len(4)
		for j := 0; j < nn; j++ {
			s.Numeric = append(s.Numeric, d.String())
		}
		ns := d.Len(4)
		for j := 0; j < ns; j++ {
			s.Strings = append(s.Strings, d.String())
		}
		out = append(out, s)
	}
	return out
}

func decodeEvents(d *checkpoint.Decoder, schemas []*event.Schema) ([]*event.Event, error) {
	n := d.Len(26)
	out := make([]*event.Event, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		ev := &event.Event{ID: d.U64(), Type: event.Type(d.String()), Time: d.I64()}
		na := d.Len(13)
		if na > 0 {
			ev.Attrs = make(map[string]float64, na)
		}
		for j := 0; j < na; j++ {
			k := d.String()
			ev.Attrs[k] = d.F64()
		}
		ns := d.Len(9)
		if ns > 0 {
			ev.Str = make(map[string]string, ns)
		}
		for j := 0; j < ns; j++ {
			k := d.String()
			ev.Str[k] = d.String()
		}
		if d.Bool() {
			si := int(d.U32())
			if d.Err() != nil {
				return nil, d.Err()
			}
			if si >= len(schemas) {
				return nil, d.Corrupt("schema ref %d out of range", si)
			}
			schemas[si].Bind(ev)
		}
		out = append(out, ev)
	}
	return out, d.Err()
}

// ---------------------------------------------------------------------
// Payloads, summaries, results
// ---------------------------------------------------------------------

func encodeBigInt(enc *checkpoint.Encoder, x *big.Int) {
	switch x.Sign() {
	case 0:
		enc.U8(0)
	case 1:
		enc.U8(1)
	default:
		enc.U8(2)
	}
	enc.Bytes(x.Bytes())
}

func decodeBigInt(d *checkpoint.Decoder, x *big.Int) {
	sign := d.U8()
	b := d.Bytes()
	switch sign {
	case 0:
		x.SetInt64(0)
	case 1:
		x.SetBytes(b)
	case 2:
		x.SetBytes(b)
		x.Neg(x)
	default:
		d.Corrupt("invalid big.Int sign byte %d", sign)
	}
}

func encodeBigFloat(enc *checkpoint.Encoder, x *big.Float) {
	b, err := x.GobEncode()
	if err != nil {
		enc.Fail(err)
		return
	}
	enc.Bytes(b)
}

func decodeBigFloat(d *checkpoint.Decoder, x *big.Float) {
	b := d.Bytes()
	if d.Err() != nil {
		return
	}
	if err := x.GobDecode(b); err != nil {
		d.Corrupt("big.Float: %v", err)
	}
}

// encodePayload writes a payload self-describingly (exact-mode big
// slots are flagged), so one codec serves pooled graph payloads and
// standalone result payloads.
func encodePayload(enc *checkpoint.Encoder, p *aggregate.Payload) {
	enc.U64(p.Count)
	enc.Bool(p.XCount != nil)
	if p.XCount != nil {
		encodeBigInt(enc, p.XCount)
	}
	enc.I64(p.MaxStart)
	enc.U32(uint32(len(p.Slots)))
	for i := range p.Slots {
		s := &p.Slots[i]
		enc.U64(s.N)
		enc.F64(s.F)
		enc.Bool(s.X != nil)
		if s.X != nil {
			encodeBigInt(enc, s.X)
		}
		enc.Bool(s.XF != nil)
		if s.XF != nil {
			encodeBigFloat(enc, s.XF)
		}
	}
}

// decodePayloadInto fills a pool-shaped payload in place, validating
// the blob against the definition's shape. No aggregation entry point
// is called, so restore has no stats side effects (GraphStats are
// restored wholesale).
func decodePayloadInto(d *checkpoint.Decoder, p *aggregate.Payload) error {
	p.Count = d.U64()
	hasXC := d.Bool()
	if d.Err() == nil && hasXC != (p.XCount != nil) {
		return d.Corrupt("payload XCount shape mismatch")
	}
	if hasXC {
		decodeBigInt(d, p.XCount)
	}
	p.MaxStart = d.I64()
	n := d.Len(10)
	if d.Err() == nil && n != len(p.Slots) {
		return d.Corrupt("payload has %d slots, definition has %d", n, len(p.Slots))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		s := &p.Slots[i]
		s.N = d.U64()
		s.F = d.F64()
		hasX := d.Bool()
		if d.Err() == nil && hasX != (s.X != nil) {
			return d.Corrupt("slot %d exact-int shape mismatch", i)
		}
		if hasX {
			decodeBigInt(d, s.X)
		}
		hasXF := d.Bool()
		if d.Err() == nil && hasXF != (s.XF != nil) {
			return d.Corrupt("slot %d exact-float shape mismatch", i)
		}
		if hasXF {
			decodeBigFloat(d, s.XF)
		}
	}
	return d.Err()
}

// decodePayloadNew materializes a standalone payload shaped by the
// blob itself (emitted results own their payloads; no pool or def is
// in play).
func decodePayloadNew(d *checkpoint.Decoder) *aggregate.Payload {
	p := &aggregate.Payload{}
	p.Count = d.U64()
	if d.Bool() {
		p.XCount = new(big.Int)
		decodeBigInt(d, p.XCount)
	}
	p.MaxStart = d.I64()
	n := d.Len(10)
	if n > 0 {
		p.Slots = make([]aggregate.SlotVal, n)
	}
	for i := range p.Slots {
		s := &p.Slots[i]
		s.N = d.U64()
		s.F = d.F64()
		if d.Bool() {
			s.X = new(big.Int)
			decodeBigInt(d, s.X)
		}
		if d.Bool() {
			s.XF = new(big.Float)
			decodeBigFloat(d, s.XF)
		}
	}
	return p
}

func encodeResults(enc *checkpoint.Encoder, rs []Result) {
	enc.U32(uint32(len(rs)))
	for i := range rs {
		r := &rs[i]
		enc.String(r.Group)
		enc.I64(r.Wid)
		enc.I64(r.WindowStart)
		enc.I64(r.WindowEnd)
		enc.U32(uint32(len(r.Values)))
		for _, v := range r.Values {
			enc.F64(v)
		}
		enc.Bool(r.Payload != nil)
		if r.Payload != nil {
			encodePayload(enc, r.Payload)
		}
		enc.I64(r.Emitted.UnixNano())
	}
}

func decodeResults(d *checkpoint.Decoder) []Result {
	n := d.Len(41)
	if n == 0 {
		return nil
	}
	out := make([]Result, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		var r Result
		r.Group = d.String()
		r.Wid = d.I64()
		r.WindowStart = d.I64()
		r.WindowEnd = d.I64()
		nv := d.Len(8)
		if nv > 0 {
			r.Values = make([]float64, nv)
		}
		for j := range r.Values {
			r.Values[j] = d.F64()
		}
		if d.Bool() {
			r.Payload = decodePayloadNew(d)
		}
		r.Emitted = time.Unix(0, d.I64())
		out = append(out, r)
	}
	return out
}

func encodeSum(enc *checkpoint.Encoder, s *vertexSum) {
	enc.I64(s.agg.FirstWid)
	enc.U32(uint32(len(s.agg.Sums)))
	for _, p := range s.agg.Sums {
		enc.Bool(p != nil)
		if p != nil {
			encodePayload(enc, p)
		}
	}
	enc.U32(uint32(len(s.agg.Last)))
	for _, v := range s.agg.Last {
		enc.U32(v)
	}
	enc.U32(s.agg.N)
	enc.F64(s.minKey)
	enc.F64(s.maxKey)
	enc.I64(s.minTime)
	enc.I64(s.maxTime)
	enc.U64(s.wmVer)
	enc.U32(s.fallback)
	enc.Bool(s.bad)
}

func decodeSum(d *checkpoint.Decoder, g *Graph) (*vertexSum, error) {
	s := &vertexSum{}
	s.agg.FirstWid = d.I64()
	n := d.Len(1)
	if n > 0 {
		s.agg.Sums = make([]*aggregate.Payload, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		if d.Bool() {
			p := g.cs.pool.Get()
			if err := decodePayloadInto(d, p); err != nil {
				return nil, err
			}
			s.agg.Sums[i] = p
		}
	}
	nl := d.Len(4)
	if d.Err() == nil && nl != n {
		return nil, d.Corrupt("summary Last length %d != window count %d", nl, n)
	}
	if nl > 0 {
		s.agg.Last = make([]uint32, nl)
	}
	for i := range s.agg.Last {
		s.agg.Last[i] = d.U32()
	}
	s.agg.N = d.U32()
	s.minKey = d.F64()
	s.maxKey = d.F64()
	s.minTime = d.I64()
	s.maxTime = d.I64()
	s.wmVer = d.U64()
	s.fallback = d.U32()
	s.bad = d.Bool()
	return s, d.Err()
}

// ---------------------------------------------------------------------
// Vertices and trees
// ---------------------------------------------------------------------

func encodeVertex(enc *checkpoint.Encoder, tab *evTable, v *Vertex) {
	enc.U32(tab.ref(v.Ev))
	enc.I64(v.FirstWid)
	enc.Bool(v.closed)
	enc.U32(uint32(len(v.Aggs)))
	for _, p := range v.Aggs {
		enc.Bool(p != nil)
		if p != nil {
			encodePayload(enc, p)
		}
	}
}

func decodeVertex(d *checkpoint.Decoder, events []*event.Event, g *Graph, state int) (*Vertex, error) {
	ref := int(d.U32())
	firstWid := d.I64()
	closed := d.Bool()
	k := d.Len(1)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if ref >= len(events) {
		return nil, d.Corrupt("event ref %d out of range", ref)
	}
	if k == 0 {
		return nil, d.Corrupt("vertex with zero windows")
	}
	v := g.getVertex(k)
	v.Ev = events[ref]
	v.State = state
	v.FirstWid = firstWid
	v.closed = closed
	for i := 0; i < k && d.Err() == nil; i++ {
		if d.Bool() {
			p := g.cs.pool.Get()
			if err := decodePayloadInto(d, p); err != nil {
				return nil, err
			}
			v.Aggs[i] = p
		}
	}
	return v, d.Err()
}

// encodeTree writes the exact node structure pre-order: item count and
// items, child count, and (augmented trees only) the node summary.
// Serializing structure rather than re-inserting on restore is what
// keeps summary float folds, tree shape, and rebuild counters
// bit-identical to the uninterrupted run.
func encodeTree(enc *checkpoint.Encoder, tab *evTable, tr *vtree, augmented bool) {
	nodes := 0
	tr.DumpNodes(func([]vitem, *vertexSum, int) bool { nodes++; return true })
	enc.U32(uint32(nodes))
	tr.DumpNodes(func(items []vitem, sum *vertexSum, children int) bool {
		enc.U32(uint32(len(items)))
		for i := range items {
			enc.F64(items[i].Key)
			encodeVertex(enc, tab, items[i].Val)
		}
		enc.U32(uint32(children))
		if augmented {
			enc.Bool(sum != nil)
			if sum != nil {
				encodeSum(enc, sum)
			}
		}
		return true
	})
}

func decodeTree(d *checkpoint.Decoder, events []*event.Event, g *Graph, state int, augmented bool) (*vtree, error) {
	nodeCount := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	var aug btree.Summarizer[*Vertex, *vertexSum]
	if augmented {
		aug = g.cs.augs[state]
	}
	if nodeCount == 0 {
		if augmented {
			return btree.NewAugmented(&g.cs.nodeFree, aug), nil
		}
		return btree.NewWithFreeList(&g.cs.nodeFree), nil
	}
	seen := 0
	next := func() ([]vitem, *vertexSum, int, error) {
		if err := d.Err(); err != nil {
			return nil, nil, 0, err
		}
		if seen >= nodeCount {
			return nil, nil, 0, d.Corrupt("tree has more nodes than the %d declared", nodeCount)
		}
		seen++
		nItems := d.Len(22)
		if err := d.Err(); err != nil {
			return nil, nil, 0, err
		}
		items := make([]vitem, 0, nItems)
		for i := 0; i < nItems; i++ {
			key := d.F64()
			v, err := decodeVertex(d, events, g, state)
			if err != nil {
				return nil, nil, 0, err
			}
			items = append(items, vitem{Key: key, ID: v.Ev.ID, Val: v})
		}
		children := int(d.U32())
		var sum *vertexSum
		if augmented && d.Bool() {
			var err error
			if sum, err = decodeSum(d, g); err != nil {
				return nil, nil, 0, err
			}
		}
		return items, sum, children, d.Err()
	}
	tr, err := btree.BuildNodes(&g.cs.nodeFree, aug, next)
	if err != nil {
		return nil, err
	}
	if seen != nodeCount {
		return nil, d.Corrupt("tree has %d nodes, %d declared", seen, nodeCount)
	}
	return tr, nil
}

// ---------------------------------------------------------------------
// Graphs and partitions
// ---------------------------------------------------------------------

func encodeGraph(enc *checkpoint.Encoder, tab *evTable, g *Graph) {
	st := &g.stats
	enc.U64(st.Events)
	enc.U64(st.Vertices)
	enc.U64(st.Inserted)
	enc.U64(st.Edges)
	enc.U64(st.Payloads)
	enc.U64(st.ScanVisits)
	enc.U64(st.SummaryFolds)
	enc.U64(st.SummaryRebuilds)
	enc.I64(g.prevTime)
	enc.U64(g.lastEventID)
	enc.U64(g.wmVer)

	wids := make([]int64, 0, len(g.results))
	for wid := range g.results {
		wids = append(wids, wid)
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	enc.U32(uint32(len(wids)))
	for _, wid := range wids {
		enc.I64(wid)
		encodePayload(enc, g.results[wid])
	}

	wids = wids[:0]
	for wid := range g.endWids {
		wids = append(wids, wid)
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	enc.U32(uint32(len(wids)))
	for _, wid := range wids {
		enc.I64(wid)
	}

	enc.U32(uint32(len(g.deps)))
	for _, l := range g.deps {
		enc.U32(uint32(len(l.pending)))
		for i := range l.pending {
			rec := &l.pending[i]
			enc.I64(rec.end)
			enc.I64(rec.firstWid)
			enc.U32(uint32(len(rec.starts)))
			for _, s := range rec.starts {
				enc.I64(s)
			}
		}
		wids = wids[:0]
		for wid := range l.maxStart {
			wids = append(wids, wid)
		}
		sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
		enc.U32(uint32(len(wids)))
		for _, wid := range wids {
			enc.I64(wid)
			enc.I64(l.maxStart[wid])
		}
		wids = wids[:0]
		for wid := range l.minEnd {
			wids = append(wids, wid)
		}
		sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
		enc.U32(uint32(len(wids)))
		for _, wid := range wids {
			enc.I64(wid)
			enc.I64(l.minEnd[wid])
		}
	}

	enc.U32(uint32(len(g.panes)))
	for _, pn := range g.panes {
		enc.I64(pn.idx)
		states := make([]int, 0, len(pn.trees))
		for s := range pn.trees {
			states = append(states, s)
		}
		sort.Ints(states)
		enc.U32(uint32(len(states)))
		for _, s := range states {
			tr := pn.trees[s]
			enc.U32(uint32(s))
			enc.Bool(tr.Augmented())
			encodeTree(enc, tab, tr, tr.Augmented())
		}
	}
}

func decodeGraph(d *checkpoint.Decoder, events []*event.Event, g *Graph) error {
	st := &g.stats
	st.Events = d.U64()
	st.Vertices = d.U64()
	st.Inserted = d.U64()
	st.Edges = d.U64()
	st.Payloads = d.U64()
	st.ScanVisits = d.U64()
	st.SummaryFolds = d.U64()
	st.SummaryRebuilds = d.U64()
	g.prevTime = d.I64()
	g.lastEventID = d.U64()
	g.wmVer = d.U64()

	nr := d.Len(9)
	if nr > 0 {
		g.results = make(map[int64]*aggregate.Payload, nr)
	}
	for i := 0; i < nr && d.Err() == nil; i++ {
		wid := d.I64()
		p := g.cs.pool.Get()
		if err := decodePayloadInto(d, p); err != nil {
			return err
		}
		g.results[wid] = p
	}

	ne := d.Len(8)
	if ne > 0 {
		g.endWids = make(map[int64]bool, ne)
	}
	for i := 0; i < ne; i++ {
		g.endWids[d.I64()] = true
	}

	nd := d.Len(1)
	if d.Err() == nil && nd != len(g.deps) {
		return d.Corrupt("graph has %d dependency links, plan wires %d", nd, len(g.deps))
	}
	for i := 0; i < nd && d.Err() == nil; i++ {
		l := g.deps[i]
		np := d.Len(16)
		for j := 0; j < np && d.Err() == nil; j++ {
			var rec invalRecord
			rec.end = d.I64()
			rec.firstWid = d.I64()
			ns := d.Len(8)
			if ns > 0 {
				rec.starts = make([]int64, ns)
			}
			for k := range rec.starts {
				rec.starts[k] = d.I64()
			}
			l.pending = append(l.pending, rec)
		}
		nms := d.Len(16)
		for j := 0; j < nms; j++ {
			wid := d.I64()
			l.maxStart[wid] = d.I64()
		}
		nme := d.Len(16)
		for j := 0; j < nme; j++ {
			wid := d.I64()
			l.minEnd[wid] = d.I64()
		}
	}

	np := d.Len(12)
	prevIdx := int64(0)
	for i := 0; i < np && d.Err() == nil; i++ {
		idx := d.I64()
		if i > 0 && idx <= prevIdx {
			return d.Corrupt("pane indices not strictly increasing")
		}
		prevIdx = idx
		pn := &pane{idx: idx, start: idx * g.paneSize, end: (idx + 1) * g.paneSize, trees: map[int]*vtree{}}
		nt := d.Len(6)
		for j := 0; j < nt && d.Err() == nil; j++ {
			state := int(d.U32())
			augmented := d.Bool()
			if err := d.Err(); err != nil {
				return err
			}
			if state < 0 || state >= len(g.cs.augs) {
				return d.Corrupt("tree state %d out of range", state)
			}
			if _, dup := pn.trees[state]; dup {
				return d.Corrupt("duplicate tree for state %d", state)
			}
			if want := g.cs.augs[state] != nil && !g.forceScan; augmented != want {
				return d.Corrupt("tree augmentation mismatch for state %d", state)
			}
			tr, err := decodeTree(d, events, g, state, augmented)
			if err != nil {
				return err
			}
			pn.trees[state] = tr
			pn.vertices += tr.Len()
		}
		g.panes = append(g.panes, pn)
	}
	return d.Err()
}

func encodePartKey(enc *checkpoint.Encoder, pk *partKey) {
	enc.U32(uint32(len(pk.kinds)))
	for i, kind := range pk.kinds {
		enc.U8(kind)
		switch kind {
		case pkNum:
			enc.U64(pk.nums[i])
		case pkStr:
			enc.String(pk.strs[i])
		}
	}
}

func decodePartKey(d *checkpoint.Decoder, want int) (partKey, error) {
	n := d.Len(1)
	if d.Err() == nil && n != want {
		return partKey{}, d.Corrupt("partition key has %d attributes, plan has %d", n, want)
	}
	pk := partKey{}
	if n > 0 {
		pk.kinds = make([]uint8, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		kind := d.U8()
		pk.kinds[i] = kind
		switch kind {
		case pkMissing:
		case pkNum:
			if pk.nums == nil {
				pk.nums = make([]uint64, n)
			}
			pk.nums[i] = d.U64()
		case pkStr:
			if pk.strs == nil {
				pk.strs = make([]string, n)
			}
			pk.strs[i] = d.String()
		default:
			return partKey{}, d.Corrupt("invalid partition key kind %d", kind)
		}
	}
	return pk, d.Err()
}

// ---------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------

func encodeEngine(enc *checkpoint.Encoder, tab *evTable, e *Engine) {
	simple := e.plan.Simple()
	enc.Bool(simple)
	enc.I64(e.prevTime)
	s := &e.stats
	enc.U64(s.Events)
	enc.U64(s.OutOfOrder)
	enc.U64(s.Inserted)
	enc.U64(s.Edges)
	enc.U64(s.ScanVisits)
	enc.U64(s.SummaryFolds)
	enc.U64(s.SummaryRebuilds)
	enc.U64(s.PeakVertices)
	enc.U64(s.PeakPayloads)
	enc.I64(int64(s.Partitions))
	enc.U64(uint64(e.emitted))
	encodeResults(enc, e.results)
	enc.I64(e.batchTime)
	enc.U32(uint32(len(e.batch)))
	for _, ev := range e.batch {
		enc.U32(tab.ref(ev))
	}
	if simple {
		enc.U32(uint32(len(e.partList)))
		for _, p := range e.partList {
			enc.String(p.key)
			encodePartKey(enc, &p.pk)
			for _, g := range p.graphs {
				encodeGraph(enc, tab, g)
			}
		}
	} else {
		enc.U32(uint32(len(e.branchEngines)))
		for _, be := range e.branchEngines {
			encodeEngine(enc, tab, be)
		}
		enc.U32(uint32(len(e.productEngines)))
		for _, pe := range e.productEngines {
			encodeEngine(enc, tab, pe)
		}
	}
}

func decodeEngine(d *checkpoint.Decoder, events []*event.Event, e *Engine) error {
	simple := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if simple != e.plan.Simple() {
		return d.Corrupt("engine shape mismatch (checkpointed plan differs)")
	}
	e.prevTime = d.I64()
	s := &e.stats
	s.Events = d.U64()
	s.OutOfOrder = d.U64()
	s.Inserted = d.U64()
	s.Edges = d.U64()
	s.ScanVisits = d.U64()
	s.SummaryFolds = d.U64()
	s.SummaryRebuilds = d.U64()
	s.PeakVertices = d.U64()
	s.PeakPayloads = d.U64()
	s.Partitions = int(d.I64())
	e.emitted = int(d.U64())
	e.results = decodeResults(d)
	e.batchTime = d.I64()
	nb := d.Len(4)
	for i := 0; i < nb; i++ {
		ref := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if ref >= len(events) {
			return d.Corrupt("batch event ref %d out of range", ref)
		}
		e.batch = append(e.batch, events[ref])
	}
	if simple {
		np := d.Len(8)
		for i := 0; i < np && d.Err() == nil; i++ {
			key := d.String()
			pk, err := decodePartKey(d, len(e.routeAcc))
			if err != nil {
				return err
			}
			p := e.newPartitionFromKey(key, pk)
			h := p.pk.hash()
			e.parts[h] = append(e.parts[h], p)
			e.partList = append(e.partList, p)
			for _, g := range p.graphs {
				if err := decodeGraph(d, events, g); err != nil {
					return err
				}
			}
		}
	} else {
		nbr := d.Len(1)
		if d.Err() == nil && nbr != len(e.branchEngines) {
			return d.Corrupt("engine has %d branches, plan has %d", nbr, len(e.branchEngines))
		}
		for i := 0; i < nbr; i++ {
			if err := decodeEngine(d, events, e.branchEngines[i]); err != nil {
				return err
			}
		}
		npr := d.Len(1)
		if d.Err() == nil && npr != len(e.productEngines) {
			return d.Corrupt("engine has %d products, plan has %d", npr, len(e.productEngines))
		}
		for i := 0; i < npr; i++ {
			if err := decodeEngine(d, events, e.productEngines[i]); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

// ---------------------------------------------------------------------
// Runtime encode
// ---------------------------------------------------------------------

// encodeLocked serializes the full recoverable runtime state; rt.mu
// held. The statement/entry body is encoded into a scratch buffer
// first so event references are assigned before the event table (which
// precedes the body in the file) is written.
func (rt *Runtime) encodeLocked(w io.Writer, replayFrom event.Time) error {
	tab := newEvTable()
	var body bytes.Buffer
	be := checkpoint.NewEncoder(&body)

	var entries []*sharedEntry
	entryRef := map[*sharedEntry]int{}
	for _, st := range rt.stmts {
		if st.entry != nil {
			if _, ok := entryRef[st.entry]; !ok {
				entryRef[st.entry] = len(entries)
				entries = append(entries, st.entry)
			}
		}
	}

	be.U32(uint32(len(rt.stmts)))
	for _, st := range rt.stmts {
		be.String(st.id)
		be.String(st.srcPlan.Query.String())
		be.U8(uint8(st.srcPlan.Mode))
		ref := int64(-1)
		transactional, force := false, false
		if st.entry != nil {
			ref = int64(entryRef[st.entry])
			force = st.entry.force
		} else {
			transactional = st.eng.transactional
			force = st.eng.forceScan
		}
		be.Bool(transactional)
		be.Bool(force)
		be.Bool(st.entry != nil || st.shareNode != nil)
		be.Bool(st.noRetain)
		be.I64(ref)
		be.U64(uint64(st.resultCount))
		encodeResults(be, st.results)
		if ref < 0 {
			encodeEngine(be, tab, st.eng)
		}
	}
	be.U32(uint32(len(entries)))
	for _, e := range entries {
		be.U32(uint32(len(e.subs)))
		encodeEngine(be, tab, e.host.eng)
	}
	// Reorder section: the disorder window travels with the snapshot.
	// Pending events are interned in the event table like any vertex
	// reference, listed in canonical release order (time, arrival). A
	// release in flight (popped from the buffer, not yet applied — it
	// is what fired this boundary) leads the list: it is first in
	// release order and would otherwise vanish from both replay modes.
	if b := rt.reorder; b != nil {
		be.Bool(true)
		s := b.Snapshot()
		pend := s.Pending
		if rt.inflight != nil {
			pend = append([]*event.Event{rt.inflight}, pend...)
		}
		be.I64(s.Slack)
		be.I64(s.MaxSeen)
		be.I64(s.Released)
		be.U64(s.Dropped)
		be.U32(uint32(len(pend)))
		for _, ev := range pend {
			be.U32(tab.ref(ev))
		}
	} else {
		be.Bool(false)
	}
	if err := be.Err(); err != nil {
		return err
	}

	he := checkpoint.NewEncoder(w)
	he.U32(ckVersion)
	he.I64(replayFrom)
	var every event.Time
	if rt.ck != nil {
		every = rt.ck.every
	}
	he.I64(every)
	he.I64(rt.watermark)
	he.U64(uint64(rt.nextID))
	var meta []byte
	if rt.ckMeta != nil {
		meta = rt.ckMeta()
	}
	he.Bytes(meta)
	tab.encode(he)
	if err := he.Err(); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// ---------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------

// RestoreInfo describes a restored checkpoint: the inclusive
// event-time replay bound and the checkpoint interval the runtime was
// armed with when the snapshot was written (0 if none — e.g. a body
// encoded without an armed schedule).
type RestoreInfo struct {
	ReplayFrom event.Time
	Every      event.Time
	// Meta is the opaque session-meta blob the snapshot was written
	// with (SetCheckpointMeta); nil when none.
	Meta []byte
	// ReorderSlack and ReorderPending describe the rehydrated disorder
	// window: the armed slack (0 when off) and how many in-flight
	// events were restored into the buffer.
	ReorderSlack   event.Time
	ReorderPending int
}

// RestoreRuntime rebuilds a Runtime from checkpoint body bytes (as
// returned by checkpoint.Store.Load). It returns the runtime and the
// replay bound: feeding every original event with Time >=
// info.ReplayFrom reproduces the uninterrupted run bit for bit.
// Statement plans are recompiled from their canonical query text;
// shared entries are rebuilt with their original subscriber order so
// union payload slot layouts match; result callbacks are not restored
// (re-register them via Stmt.OnResult), and checkpointing is not
// re-armed (call SetCheckpoint with info.Every). Corrupt input yields
// an error wrapping checkpoint.ErrCorrupt, never a panic.
func RestoreRuntime(data []byte) (*Runtime, RestoreInfo, error) {
	d := checkpoint.NewDecoder(data)
	if v := d.U32(); d.Err() == nil && v != ckVersion {
		return nil, RestoreInfo{}, d.Corrupt("unsupported checkpoint version %d", v)
	}
	replayFrom := d.I64()
	every := d.I64()
	wm := d.I64()
	nextID := d.U64()
	meta := d.Bytes()
	if len(meta) == 0 {
		meta = nil
	} else {
		meta = append([]byte(nil), meta...)
	}
	schemas := decodeSchemas(d)
	events, err := decodeEvents(d, schemas)
	if err != nil {
		return nil, RestoreInfo{}, err
	}

	rt := NewRuntime()
	rt.mu.Lock()
	defer rt.mu.Unlock()

	type pendingEntry struct {
		e    *sharedEntry
		subs []*Stmt
	}
	var entries []*pendingEntry

	nst := d.Len(1)
	for i := 0; i < nst; i++ {
		id := d.String()
		qtext := d.String()
		mode := aggregate.Mode(d.U8())
		transactional := d.Bool()
		force := d.Bool()
		shared := d.Bool()
		noRetain := d.Bool()
		ref := d.I64()
		resultCount := d.U64()
		results := decodeResults(d)
		if err := d.Err(); err != nil {
			return nil, RestoreInfo{}, err
		}
		q, err := query.Parse(qtext)
		if err != nil {
			return nil, RestoreInfo{}, fmt.Errorf("checkpoint: statement %q: %w", id, err)
		}
		plan, err := NewPlan(q, mode)
		if err != nil {
			return nil, RestoreInfo{}, fmt.Errorf("checkpoint: statement %q: %w", id, err)
		}
		cfg := StmtConfig{ID: id, Transactional: transactional, ForceVertexScan: force, Share: shared, NoRetain: noRetain}
		if ref < 0 {
			st := rt.adoptLocked(newStmtEngine(plan, cfg), id)
			st.srcPlan = plan
			st.noRetain = noRetain
			st.results = results
			st.resultCount = int(resultCount)
			if shared && shareable(plan, cfg) {
				st.shareNode = rt.shareIdx.Put(shareKeyOf(plan, cfg), &shareRec{cand: st})
			}
			if err := decodeEngine(d, events, st.eng); err != nil {
				return nil, RestoreInfo{}, err
			}
		} else {
			if ref > int64(len(entries)) {
				return nil, RestoreInfo{}, d.Corrupt("entry ref %d out of order", ref)
			}
			st := &Stmt{rt: rt, srcPlan: plan, noRetain: noRetain, parPrev: -1}
			st.results = results
			st.resultCount = int(resultCount)
			rt.enrollLocked(st, id)
			if ref == int64(len(entries)) {
				e := &sharedEntry{rt: rt, query: plan.Query, mode: mode, force: force}
				e.node = rt.shareIdx.Put(shareKeyOf(plan, cfg), &shareRec{entry: e})
				entries = append(entries, &pendingEntry{e: e})
			}
			pe := entries[ref]
			st.entry = pe.e
			pe.subs = append(pe.subs, st)
		}
	}

	nent := d.Len(5)
	if d.Err() == nil && nent != len(entries) {
		return nil, RestoreInfo{}, d.Corrupt("entry count %d != %d referenced", nent, len(entries))
	}
	for _, pe := range entries {
		nSubs := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, RestoreInfo{}, err
		}
		if nSubs != len(pe.subs) {
			return nil, RestoreInfo{}, d.Corrupt("entry has %d subscribers, %d statements reference it", nSubs, len(pe.subs))
		}
		// Rebuild the union engine with the original subscriber order,
		// replicating attachShared's promote step: the host statement
		// (never enrolled) carries the engine inside its route group.
		eng, def, outs, err := pe.e.buildUnion(pe.subs)
		if err != nil {
			return nil, RestoreInfo{}, fmt.Errorf("checkpoint: rebuild shared entry: %w", err)
		}
		host := &Stmt{rt: rt, id: "~" + pe.e.node.Key(), parPrev: -1}
		sig := strings.Join(eng.partAttrs, "\x1f")
		var grp *routeGroup
		for _, g := range rt.groups {
			if g.sig == sig {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &routeGroup{sig: sig, acc: make([]event.Accessor, len(eng.partAttrs))}
			for i, a := range eng.partAttrs {
				grp.acc[i] = event.NewAccessor(a)
			}
			rt.groups = append(rt.groups, grp)
		}
		grp.members = append(grp.members, host)
		host.grp = grp
		host.eng = eng
		pe.e.host = host
		pe.e.subs = pe.subs
		pe.e.def = def
		for i, sub := range pe.subs {
			sub.outs = outs[i]
			sub.eng = eng
		}
		if err := decodeEngine(d, events, eng); err != nil {
			return nil, RestoreInfo{}, err
		}
	}
	if err := d.Err(); err != nil {
		return nil, RestoreInfo{}, err
	}
	info := RestoreInfo{ReplayFrom: replayFrom, Every: every, Meta: meta}
	if d.Bool() {
		snap := &reorder.Snapshot{
			Slack:    d.I64(),
			MaxSeen:  d.I64(),
			Released: d.I64(),
			Dropped:  d.U64(),
		}
		np := d.Len(4)
		for i := 0; i < np && d.Err() == nil; i++ {
			ref := int(d.U32())
			if d.Err() != nil {
				break
			}
			if ref >= len(events) {
				return nil, RestoreInfo{}, d.Corrupt("reorder pending ref %d out of range", ref)
			}
			snap.Pending = append(snap.Pending, events[ref])
		}
		if err := d.Err(); err != nil {
			return nil, RestoreInfo{}, err
		}
		if snap.Slack <= 0 {
			return nil, RestoreInfo{}, d.Corrupt("reorder section with non-positive slack %d", snap.Slack)
		}
		rt.reorder = reorder.Restore(snap, rt.applyReleased)
		if len(snap.Pending) > 0 {
			rt.replayDedup = make(map[uint64]struct{}, len(snap.Pending))
			for _, ev := range snap.Pending {
				rt.replayDedup[ev.ID] = struct{}{}
			}
		}
		info.ReorderSlack = snap.Slack
		info.ReorderPending = len(snap.Pending)
	}
	if err := d.Err(); err != nil {
		return nil, RestoreInfo{}, err
	}
	if d.Remaining() != 0 {
		return nil, RestoreInfo{}, d.Corrupt("%d trailing bytes after checkpoint body", d.Remaining())
	}

	rt.watermark = wm
	rt.nextID = int(nextID)
	if meta != nil {
		// Re-encoding a restored runtime without a fresh provider keeps
		// the snapshot's blob (round-trip identity); the serving layer
		// overwrites it via SetCheckpointMeta once the session rebinds.
		rt.ckMeta = func() []byte { return meta }
	}
	for _, st := range rt.stmts {
		st.parPrev = wm
	}
	for _, pe := range entries {
		pe.e.host.parPrev = wm
	}
	// Restored graphs are warm by definition: advance the share epoch
	// so none of them accepts new subscribers.
	rt.shareIdx.Advance()
	return rt, info, nil
}
