package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/obs"
	"github.com/greta-cep/greta/internal/reorder"
	"github.com/greta-cep/greta/internal/share"
)

// Sentinel errors returned by Runtime operations.
var (
	// ErrClosed reports an operation on a closed runtime.
	ErrClosed = errors.New("greta: runtime closed")
	// ErrOutOfOrder reports an event older than the runtime watermark;
	// the event was counted and dropped for every registered statement
	// (paper §2 delegates out-of-order repair upstream).
	ErrOutOfOrder = errors.New("greta: out-of-order event dropped")
	// ErrStatementClosed reports an operation on a closed statement.
	ErrStatementClosed = errors.New("greta: statement closed")
	// ErrRunning reports a registration attempt while RunParallel owns
	// the runtime.
	ErrRunning = errors.New("greta: runtime is running in parallel mode")
)

// OrderError is the structured form of an out-of-order drop: the
// offending event's timestamp and the watermark it violated (the
// runtime watermark, or the reorder horizon when slack is armed).
// errors.Is(err, ErrOutOfOrder) matches it, so existing callers keep
// working; errors.As extracts the diagnostics.
type OrderError struct {
	EventTime event.Time
	Watermark event.Time
}

func (e *OrderError) Error() string {
	return fmt.Sprintf("greta: out-of-order event dropped: event time %d < watermark %d",
		e.EventTime, e.Watermark)
}

func (e *OrderError) Unwrap() error { return ErrOutOfOrder }

// Runtime is a long-lived multi-query GRETA host: one shared ingest
// path feeding any number of registered statements. Each event is
// schema-bound upstream, hashed once per distinct partition-attribute
// signature, and fanned out to every registered statement's
// partitions. Statements can be registered and closed at any point
// mid-stream; a statement registered at watermark T sees only events
// at or after T.
//
// Process, Register, Close, and statement Close are safe to call from
// different goroutines (a mutex serializes them); Process itself must
// be called from one goroutine at a time for the in-order invariant to
// be meaningful.
type Runtime struct {
	mu        sync.Mutex
	closed    bool
	running   bool // RunParallel owns the stream
	watermark event.Time

	// groups deduplicate the per-event routing hash: statements whose
	// plans share a partition-attribute signature share one FNV-1a
	// computation (the shared-node idiom of multi-query CEP engines,
	// applied to the ingest path).
	groups []*routeGroup
	// direct holds composite-plan statements (disjunction/conjunction,
	// §9), whose sub-engines route internally.
	direct []*Stmt
	stmts  []*Stmt // all live statements, registration order

	// shareIdx is the shared sub-plan network: statements whose
	// trend-formation signatures match are served by one engine (see
	// share.go). Epochs advance once per processed event, so only
	// provably cold graphs accept new subscribers.
	shareIdx *share.Index[*shareRec]

	nextID int

	// ck is the armed checkpoint schedule, nil when checkpointing is
	// off (see checkpoint.go). The trigger in process is two loads and
	// a compare — nothing on the steady path allocates or syscalls.
	ck *ckState

	// reorder, when non-nil, buffers bounded out-of-order arrivals
	// (SetReorderSlack): Process feeds the buffer, released events flow
	// through applyLocked in time order, and registrations, statement
	// closes, and Runtime.Close act as barriers. Events behind the
	// buffer's horizon are dropped with an OrderError before touching
	// any engine.
	reorder *reorder.Buffer
	// inflight is the released event currently being applied (set only
	// inside a reorder drain): it has been popped from the buffer but
	// has not touched the engines, so a checkpoint fired by its own
	// boundary crossing must still persist it — it leads the snapshot's
	// pending list, first in release order.
	inflight *event.Event
	// replayDedup holds the IDs of events that were pending in the
	// reorder buffer when the restored checkpoint was written: they are
	// already re-buffered, so a time-based replay feeding them again
	// skips them once. Empties itself; nil on non-restored runtimes.
	replayDedup map[uint64]struct{}

	// ckMeta supplies the opaque session-meta blob embedded in each
	// checkpoint header (SetCheckpointMeta); nil writes an empty blob.
	ckMeta func() []byte

	// parDebug captures streaming-merge instrumentation from the last
	// RunParallel (test hook).
	parDebug *parallelDebug

	// met holds the hot-path metric cells (armed by default; nil after
	// DisableMetrics). Every touch on the ingest path is a nil-check
	// plus a plain atomic — see metrics.go for the 0-alloc contract.
	met    *rtMetrics
	obsReg *obs.Registry
	// trace is the lifecycle hook (SetTraceHook); fires under rt.mu on
	// lifecycle paths only, never per event.
	trace func(TraceEvent)
}

// routeGroup is one distinct partition-attribute signature and the
// statements sharing it.
type routeGroup struct {
	sig     string
	acc     []event.Accessor
	members []*Stmt
}

// Stmt is one registered statement: a plan, its engine (exclusive or
// shared), and its lifecycle state inside a Runtime.
type Stmt struct {
	rt  *Runtime
	id  string
	eng *Engine
	grp *routeGroup // nil for composite plans and shared subscribers

	// srcPlan is the plan the statement registered with; the shared
	// network replans its RETURN slots into union definitions.
	srcPlan *Plan

	// Shared-subscriber state: the entry whose engine serves this
	// statement, the statement's RETURN slot mapping into the union
	// payload, its own delivered results (the shared engine retains
	// none), and the stats snapshot frozen when it detaches from a
	// still-running shared graph.
	entry       *sharedEntry
	outs        []share.Output
	results     []Result
	resultCount int
	frozen      *Stats
	// shareNode records an exclusive statement as its signature's
	// attachable candidate.
	shareNode *share.Node[*shareRec]

	noRetain bool
	onRes    func(Result)

	// parPrev is the coordinator's per-statement window-close cursor
	// during RunParallel.
	parPrev event.Time

	closed  bool
	onClose func()
}

// NewRuntime builds an empty runtime. Metrics are armed from birth:
// the cells exist before the first event, so arming costs nothing on
// the hot path beyond the atomics themselves.
func NewRuntime() *Runtime {
	rt := &Runtime{watermark: -1, shareIdx: share.NewIndex[*shareRec]()}
	rt.obsReg = obs.NewRegistry()
	rt.met = newRTMetrics(rt.obsReg)
	rt.registerCollector()
	return rt
}

// StmtConfig carries per-registration options.
type StmtConfig struct {
	// ID names the statement (result tagging); empty picks "q<n>".
	ID string
	// Transactional enables the §7 stream-transaction scheduler for
	// this statement's engine (and disqualifies it from sharing).
	Transactional bool
	// ForceVertexScan disables the summary fast path (differential
	// tests and debugging). Part of the sharing signature: forced and
	// folding statements never share a graph.
	ForceVertexScan bool
	// Share enters the statement into the shared sub-plan network:
	// statements whose trend-formation signatures match (pattern,
	// predicates, window, partition-by, semantics, mode — everything
	// but the RETURN aggregates) are served by one shared graph.
	Share bool
	// NoRetain drops results after delivery (OnResult callback and the
	// per-statement fan-out) instead of retaining them for Results(),
	// bounding memory on unbounded streams. Stats.Results still counts
	// every emission.
	NoRetain bool
}

// Register instantiates an engine for plan and attaches it to the
// shared ingest. The statement sees events from the current watermark
// onward; windows that ended before registration are never emitted.
// With cfg.Share set, the statement may attach to (or become the
// candidate for) a shared graph serving every statement with the same
// trend-formation signature.
func (rt *Runtime) Register(plan *Plan, cfg StmtConfig) (*Stmt, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := rt.registrable(); err != nil {
		return nil, err
	}
	if cfg.ID != "" && rt.hasID(cfg.ID) {
		return nil, fmt.Errorf("greta: statement id %q already registered", cfg.ID)
	}
	// Registration is a reorder barrier: pending buffered events apply
	// first, so the new statement's watermark cut lands after every
	// event that arrived before the registration.
	rt.reorderBarrierLocked()
	if cfg.Share && shareable(plan, cfg) {
		st, err := rt.registerShared(plan, cfg, shareKeyOf(plan, cfg))
		if err == nil {
			rt.fireTrace(TraceEvent{Kind: TraceStatementRegister, Stmt: st.id, Watermark: rt.watermark})
		}
		return st, err
	}
	st := rt.adoptLocked(newStmtEngine(plan, cfg), cfg.ID)
	st.srcPlan = plan
	st.noRetain = cfg.NoRetain
	rt.fireTrace(TraceEvent{Kind: TraceStatementRegister, Stmt: st.id, Watermark: rt.watermark})
	return st, nil
}

// adopt attaches an existing (fresh, never-processed) engine as a
// statement. Engine.RunParallel uses it to run its own engine under
// the runtime's streaming merge.
func (rt *Runtime) adopt(eng *Engine, id string) (*Stmt, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := rt.registrable(); err != nil {
		return nil, err
	}
	if id != "" && rt.hasID(id) {
		return nil, fmt.Errorf("greta: statement id %q already registered", id)
	}
	rt.reorderBarrierLocked()
	st := rt.adoptLocked(eng, id)
	rt.fireTrace(TraceEvent{Kind: TraceStatementRegister, Stmt: st.id, Watermark: rt.watermark})
	return st, nil
}

func (rt *Runtime) registrable() error {
	if rt.closed {
		return ErrClosed
	}
	if rt.running {
		return ErrRunning
	}
	return nil
}

// hasID reports whether a live statement already uses id (a closed
// statement's id is reusable). rt.mu held.
func (rt *Runtime) hasID(id string) bool {
	for _, st := range rt.stmts {
		if st.id == id {
			return true
		}
	}
	return false
}

// enrollLocked assigns the statement's id and adds it to the live set;
// rt.mu held. The caller has already rejected duplicate explicit ids;
// generated ids skip any the user claimed.
func (rt *Runtime) enrollLocked(st *Stmt, id string) {
	for id == "" || rt.hasID(id) {
		id = fmt.Sprintf("q%d", rt.nextID)
		rt.nextID++
	}
	st.id = id
	rt.stmts = append(rt.stmts, st)
}

// adoptLocked wires an engine into the route groups; rt.mu held.
func (rt *Runtime) adoptLocked(eng *Engine, id string) *Stmt {
	if rt.watermark >= 0 {
		eng.setWatermark(rt.watermark)
	}
	st := &Stmt{rt: rt, eng: eng, parPrev: rt.watermark}
	if plan := eng.plan; plan.Simple() {
		sig := strings.Join(eng.partAttrs, "\x1f")
		var grp *routeGroup
		for _, g := range rt.groups {
			if g.sig == sig {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &routeGroup{sig: sig, acc: make([]event.Accessor, len(eng.partAttrs))}
			for i, a := range eng.partAttrs {
				grp.acc[i] = event.NewAccessor(a)
			}
			rt.groups = append(rt.groups, grp)
		}
		grp.members = append(grp.members, st)
		st.grp = grp
	} else {
		rt.direct = append(rt.direct, st)
	}
	rt.enrollLocked(st, id)
	return st
}

// Process offers one event to every registered statement. The routing
// hash is computed once per distinct partition-attribute signature and
// forwarded, so N statements over the same grouping cost one hash.
// Events must arrive in non-decreasing time order: an older event is
// counted and dropped by every statement and ErrOutOfOrder is
// returned. After Close it returns ErrClosed.
func (rt *Runtime) Process(ev *event.Event) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.process(ev)
}

func (rt *Runtime) process(ev *event.Event) error {
	if rt.closed {
		return ErrClosed
	}
	if rt.running {
		return ErrRunning
	}
	if m := rt.met; m != nil {
		m.events.Inc()
	}
	if b := rt.reorder; b != nil {
		// Offered time runs ahead of the released frontier here, so the
		// high-water cell needs the RMW; the direct path below derives
		// the offered maximum from rt.watermark instead.
		if m := rt.met; m != nil {
			m.maxSeen.SetMax(ev.Time)
		}
		// Apply a restored in-flight release (pending at or below the
		// horizon) before considering the incoming event — exactly where
		// the interrupted run left off. A no-op on live buffers.
		b.Settle()
		if len(rt.replayDedup) > 0 {
			if _, ok := rt.replayDedup[ev.ID]; ok {
				// Replay of an event already rehydrated into the buffer.
				delete(rt.replayDedup, ev.ID)
				return nil
			}
		}
		if !b.Push(ev) {
			// Beyond-slack arrival: dropped before reaching any engine
			// (engines only ever see the released, in-order stream), so
			// per-statement OutOfOrder counters do not move — the caller
			// accounts for slack drops, as the netstream layer always has.
			if m := rt.met; m != nil {
				m.drops.Inc()
			}
			return &OrderError{EventTime: ev.Time, Watermark: b.Horizon()}
		}
		return nil
	}
	return rt.applyLocked(ev)
}

// applyLocked applies one in-order (or watermark-checked) event to the
// engines; rt.mu held. This is the landing point for both the direct
// path and reorder-buffer releases.
func (rt *Runtime) applyLocked(ev *event.Event) error {
	// Watermark-aligned checkpoint: the boundary B <= ev.Time is fully
	// determined before ev is applied, so the snapshot plus a replay of
	// events >= B reproduces this run bit for bit (ev itself is the
	// first replayed event).
	if ck := rt.ck; ck != nil && ev.Time >= ck.next {
		rt.checkpointAtBoundary(ev.Time)
	}
	// A new ingest epoch: every engine sees this event (even a dropped
	// one is counted), so no existing graph is cold any more and none
	// may accept new shared subscribers.
	rt.shareIdx.Advance()
	late := ev.Time < rt.watermark
	// Forward even when late: each engine's own cursor rejects the
	// event and counts the drop in its stats, exactly as the
	// single-engine path always has.
	for _, g := range rt.groups {
		if len(g.members) == 0 {
			continue
		}
		h := hashRoute(g.acc, ev)
		for _, st := range g.members {
			st.eng.ProcessRouted(ev, h)
		}
	}
	for _, st := range rt.direct {
		st.eng.Process(ev)
	}
	if late {
		if m := rt.met; m != nil {
			m.drops.Inc()
		}
		return &OrderError{EventTime: ev.Time, Watermark: rt.watermark}
	}
	rt.watermark = ev.Time
	return nil
}

// applyReleased is the reorder buffer's sink: releases are in time
// order and at or past the watermark by construction, so the late path
// cannot trigger; rt.mu is held for the enclosing Push. The event is
// marked in-flight around the application so a boundary checkpoint it
// triggers still captures it (see Runtime.inflight).
func (rt *Runtime) applyReleased(ev *event.Event) {
	rt.inflight = ev
	_ = rt.applyLocked(ev)
	rt.inflight = nil
}

// SetReorderSlack arms a bounded reorder buffer in front of the
// engines: events may arrive up to slack time units behind the maximum
// timestamp seen and are re-sorted (equal timestamps keep arrival
// order) before application; later arrivals are dropped with an
// OrderError. Registrations, statement closes, Barrier, and Close
// flush the buffer first; scheduled checkpoints instead persist the
// pending events inside the snapshot, so a restored runtime rehydrates
// its disorder window. Must be called before the first event; slack 0
// disarms. A runtime with slack armed runs RunParallel sequentially.
func (rt *Runtime) SetReorderSlack(slack event.Time) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if rt.running {
		return ErrRunning
	}
	if slack < 0 {
		return errors.New("greta: reorder slack must be non-negative")
	}
	if rt.watermark >= 0 || (rt.reorder != nil && rt.reorder.Pending() > 0) {
		return errors.New("greta: reorder slack must be configured before the first event")
	}
	if slack == 0 {
		rt.reorder = nil
		return nil
	}
	rt.reorder = reorder.New(slack, rt.applyReleased)
	return nil
}

// ReorderSlack returns the armed slack (0 when off).
func (rt *Runtime) ReorderSlack() event.Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.reorder == nil {
		return 0
	}
	return rt.reorder.Slack()
}

// ReorderPending returns the number of events currently held in the
// reorder buffer.
func (rt *Runtime) ReorderPending() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.reorder == nil {
		return 0
	}
	return rt.reorder.Pending()
}

// Barrier flushes the reorder buffer, applying every pending event in
// order. A no-op without slack. Use it to force alignment before
// reading results mid-stream; lifecycle operations barrier implicitly.
func (rt *Runtime) Barrier() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrClosed
	}
	if rt.running {
		return ErrRunning
	}
	rt.reorderBarrierLocked()
	return nil
}

// reorderBarrierLocked drains the reorder buffer; rt.mu held.
func (rt *Runtime) reorderBarrierLocked() {
	if rt.reorder != nil {
		rt.reorder.Flush()
	}
}

// Run consumes the stream until it is exhausted or ctx is cancelled.
// Out-of-order events are counted and dropped (as Engine.Run always
// did); any other Process error aborts. Run does not close the
// runtime — more statements or streams may follow; call Close to
// flush open windows at end of life.
func (rt *Runtime) Run(ctx context.Context, s event.Stream) error {
	done := ctx.Done()
	for ev := s.Next(); ev != nil; ev = s.Next() {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if err := rt.Process(ev); err != nil && !errors.Is(err, ErrOutOfOrder) {
			return err
		}
	}
	return nil
}

// Watermark returns the largest event time the runtime has accepted
// (-1 before the first event).
func (rt *Runtime) Watermark() event.Time {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.watermark
}

// Statements returns the live statements in registration order.
func (rt *Runtime) Statements() []*Stmt {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*Stmt(nil), rt.stmts...)
}

// RouteGroups returns the number of distinct partition-attribute
// signatures among the registered simple-plan statements — each costs
// one routing hash per event, however many statements share it.
func (rt *Runtime) RouteGroups() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.groups)
}

// RuntimeStats summarizes the runtime's multi-query topology: how many
// statements are registered, how many distinct routing hashes the
// ingest computes per event, and how far the shared sub-plan network
// collapsed the statement set — SharedStatements statements are served
// by SharedGraphs shared graphs (the remaining statements own private
// engines). SharedGraphs < SharedStatements means sharing is engaged.
type RuntimeStats struct {
	Statements       int
	RouteGroups      int
	SharedStatements int
	SharedGraphs     int
}

// Stats reports the runtime's current multi-query topology.
func (rt *Runtime) Stats() RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.statsLocked()
}

func (rt *Runtime) statsLocked() RuntimeStats {
	rs := RuntimeStats{Statements: len(rt.stmts), RouteGroups: len(rt.groups)}
	seen := map[*sharedEntry]bool{}
	for _, st := range rt.stmts {
		if st.entry == nil {
			continue
		}
		rs.SharedStatements++
		if !seen[st.entry] {
			seen[st.entry] = true
			rs.SharedGraphs++
		}
	}
	return rs
}

// ParallelDebug reports streaming-merge instrumentation from the last
// RunParallel: the peak number of simultaneously pending (unmerged)
// windows in the merger, and the total results still buffered in
// worker engines at flush (zero when streaming delivery works).
func (rt *Runtime) ParallelDebug() (maxPendingWindows, workerRetainedResults int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.parDebug == nil {
		return 0, 0
	}
	return rt.parDebug.maxPending, rt.parDebug.workerRetained
}

// Close flushes every registered statement (emitting all open
// windows) and rejects further events. Idempotent.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil
	}
	// End-of-stream barrier: apply the disorder window before the final
	// flush, then reject further events.
	rt.reorderBarrierLocked()
	rt.closed = true
	for _, st := range rt.stmts {
		st.finish()
	}
	rt.stmts = nil
	rt.groups = nil
	rt.direct = nil
	return nil
}

// ID returns the statement's identifier.
func (st *Stmt) ID() string { return st.id }

// Engine exposes the statement's engine (stats, DOT). For a shared
// subscriber this is the shared engine — it retains no results; use
// Stmt.Results and Stmt.Stats for the per-statement view.
func (st *Stmt) Engine() *Engine { return st.eng }

// OnClose registers a hook invoked after the statement's final flush —
// the greta layer uses it to terminate streaming result iterators.
func (st *Stmt) OnClose(f func()) { st.onClose = f }

// OnResult registers the statement's result callback. It survives
// promotion into a shared graph, unlike a callback set directly on the
// statement's (replaceable) engine — always prefer it over
// Engine.OnResult when working through a Runtime.
func (st *Stmt) OnResult(f func(Result)) {
	st.onRes = f
	if st.entry == nil {
		st.eng.OnResult(st.fire)
	}
}

// fire forwards an exclusive engine's emission to the statement
// callback.
func (st *Stmt) fire(r Result) {
	if st.onRes != nil {
		st.onRes(r)
	}
}

// deliver records and forwards one result destined for this statement
// (shared fan-out and detach flush).
func (st *Stmt) deliver(r Result) {
	if !st.noRetain {
		st.results = append(st.results, r)
	}
	st.resultCount++
	if st.onRes != nil {
		st.onRes(r)
	}
}

// Results returns the statement's emitted results sorted by
// (group, wid): the engine's for an exclusive statement, the
// statement's own fan-out buffer for a shared subscriber. Empty when
// the statement registered with NoRetain.
func (st *Stmt) Results() []Result {
	if st.entry != nil {
		return st.results
	}
	return st.eng.Results()
}

// Stats returns the statement's runtime statistics. A shared
// subscriber reports the shared engine's counters — identical to what
// a private engine over the same stream would have accumulated — plus
// its own Results count and the number of statements sharing the
// graph; a subscriber that detached mid-stream reports the snapshot
// frozen at its close.
func (st *Stmt) Stats() Stats {
	if st.frozen != nil {
		return *st.frozen
	}
	s := st.eng.Stats()
	if st.entry != nil {
		s.Results = st.resultCount
		s.SharedStatements = len(st.entry.subs)
	}
	return s
}

// Close detaches the statement from the shared ingest, flushing its
// open windows (their results are emitted through the usual delivery
// path). Other statements are not perturbed — a shared subscriber's
// flush peeks the shared graph without consuming it. Idempotent;
// returns ErrStatementClosed if already closed.
func (st *Stmt) Close() error {
	st.rt.mu.Lock()
	defer st.rt.mu.Unlock()
	if st.closed {
		return ErrStatementClosed
	}
	if st.rt.running {
		return ErrRunning
	}
	// Closing is a reorder barrier: the statement's final windows count
	// every event that arrived before the close.
	st.rt.reorderBarrierLocked()
	if e := st.entry; e != nil {
		if len(e.subs) == 1 {
			// Last subscriber: the shared graph dies with it, so the
			// destructive flush delivers through the ordinary fan-out.
			e.flushFinal()
			e.subs = nil
			st.rt.shareIdx.Retire(e.node)
			if e.host.grp != nil {
				e.host.grp.members = deleteStmt(e.host.grp.members, e.host)
			}
		} else {
			// Survivors remain: emit this subscriber's open windows from a
			// non-destructive peek, then freeze its stats — the shared
			// engine keeps evolving for the others.
			e.detachFlush(st)
			s := st.eng.Stats()
			s.Results = st.resultCount
			s.SharedStatements = len(e.subs)
			st.frozen = &s
			e.subs = deleteStmt(e.subs, st)
		}
		st.rt.stmts = deleteStmt(st.rt.stmts, st)
		st.closed = true
		sortResults(st.results)
		st.rt.fireTrace(TraceEvent{Kind: TraceStatementClose, Stmt: st.id, Watermark: st.rt.watermark})
		if st.onClose != nil {
			st.onClose()
		}
		return nil
	}
	if st.shareNode != nil {
		// The signature's candidate is gone; a later same-signature
		// registration starts fresh.
		st.rt.shareIdx.Retire(st.shareNode)
	}
	if st.grp != nil {
		st.grp.members = deleteStmt(st.grp.members, st)
	} else {
		st.rt.direct = deleteStmt(st.rt.direct, st)
	}
	st.rt.stmts = deleteStmt(st.rt.stmts, st)
	st.finish()
	return nil
}

// finish flushes and marks the statement closed. Caller holds rt.mu
// (or exclusive ownership during Close/RunParallel teardown). Shared
// subscribers flush their entry's engine once — the fan-out delivers
// the final windows to every subscriber still attached.
func (st *Stmt) finish() {
	if st.closed {
		return
	}
	st.closed = true
	if st.entry != nil {
		st.entry.flushFinal()
		sortResults(st.results)
	} else {
		st.eng.Flush()
	}
	st.rt.fireTrace(TraceEvent{Kind: TraceStatementClose, Stmt: st.id, Watermark: st.rt.watermark})
	if st.onClose != nil {
		st.onClose()
	}
}

func deleteStmt(list []*Stmt, st *Stmt) []*Stmt {
	for i, s := range list {
		if s == st {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
