package core

import (
	"sync"

	"github.com/greta-cep/greta/internal/event"
)

// Scheduler implements the time-driven stream-transaction model of
// paper §7 for inter-dependent GRETA graphs: "A stream transaction is a
// sequence of operations triggered by all events with the same time
// stamp on the same GRETA graph. ... our time-driven scheduler waits
// till the processing of all transactions with time stamps smaller
// than t on the graph G and other graphs that G depends upon is
// completed. Then, the scheduler extracts all events with the time
// stamp t, wraps their processing into transactions, and submits them
// for execution."
//
// Graphs are arranged into dependency levels (negative sub-pattern
// graphs before the graphs they constrain); within a level, graphs have
// no mutual dependencies and process a timestamp batch concurrently.
// The sequential Engine path applies the same ordering without
// goroutines; the scheduler exists for partitions whose graph count
// makes concurrency worthwhile and as the faithful realization of §7.
type Scheduler struct {
	levels  [][]*Graph
	pending []*event.Event
	curTime event.Time
}

// NewScheduler arranges the partition's graphs (indexed as in
// Plan.Subs) into dependency levels using the plan's Deps edges.
func NewScheduler(graphs []*Graph, specs []*GraphSpec) *Scheduler {
	depth := make([]int, len(graphs))
	// depth(g) = 1 + max depth of graphs g depends on; negative graphs
	// appear in Deps of their parent, so children must run first.
	var calc func(i int) int
	calc = func(i int) int {
		if depth[i] != 0 {
			return depth[i]
		}
		d := 1
		for _, c := range specs[i].Deps {
			if cd := calc(c) + 1; cd > d {
				d = cd
			}
		}
		depth[i] = d
		return d
	}
	maxDepth := 0
	for i := range graphs {
		if d := calc(i); d > maxDepth {
			maxDepth = d
		}
	}
	s := &Scheduler{levels: make([][]*Graph, maxDepth), curTime: -1}
	// Deeper graphs (larger depth) process earlier: level 0 holds the
	// deepest negative graphs.
	for i, g := range graphs {
		lvl := maxDepth - depth[i]
		s.levels[lvl] = append(s.levels[lvl], g)
	}
	return s
}

// Process submits an event. Events with equal timestamps accumulate
// into one transaction batch; a later timestamp seals and executes the
// previous batch.
func (s *Scheduler) Process(ev *event.Event) {
	if ev.Time != s.curTime && len(s.pending) > 0 {
		s.flushBatch()
	}
	s.curTime = ev.Time
	s.pending = append(s.pending, ev)
}

// Flush executes any sealed batch; call at end of stream.
func (s *Scheduler) Flush() {
	if len(s.pending) > 0 {
		s.flushBatch()
	}
}

// flushBatch runs the pending same-timestamp transaction.
func (s *Scheduler) flushBatch() {
	batch := s.pending
	s.pending = nil
	s.RunBatch(batch)
}

// RunBatch executes one same-timestamp transaction: level by level
// (dependency barrier between levels), graphs within a level in
// parallel.
func (s *Scheduler) RunBatch(batch []*event.Event) {
	for _, level := range s.levels {
		if len(level) == 1 {
			for _, ev := range batch {
				level[0].Process(ev)
			}
			continue
		}
		var wg sync.WaitGroup
		for _, g := range level {
			wg.Add(1)
			go func(g *Graph) {
				defer wg.Done()
				for _, ev := range batch {
					g.Process(ev)
				}
			}(g)
		}
		wg.Wait()
	}
}
