package core_test

import (
	"strings"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/query"
)

func planErr(t *testing.T, qsrc string) error {
	t.Helper()
	q, err := query.Parse(qsrc)
	if err != nil {
		t.Fatalf("parse %q: %v", qsrc, err)
	}
	_, err = core.NewPlan(q, aggregate.ModeNative)
	return err
}

func TestPlanErrors(t *testing.T) {
	cases := []struct {
		qsrc    string
		wantSub string
	}{
		// Conjunction supports COUNT(*) only (paper §9 defines only the
		// count composition).
		{"RETURN SUM(A.x) PATTERN A+ AND B+", "COUNT(*)"},
		// Conjunction is binary.
		{"RETURN COUNT(*) PATTERN A+ AND B+ AND C+", "binary"},
		// Kleene over optional alternatives is not a positive-pattern
		// disjunction.
		{"RETURN COUNT(*) PATTERN (SEQ(A?, B))+", "not expressible"},
		// Disjunction combined with negation is unsupported.
		{"RETURN COUNT(*) PATTERN SEQ(A?, NOT C, B)", "negation"},
		// MINLEN applies to Kleene patterns.
		{"RETURN COUNT(*) PATTERN SEQ(A, B) MINLEN 2", "Kleene"},
	}
	for _, c := range cases {
		err := planErr(t, c.qsrc)
		if err == nil {
			t.Errorf("%q: expected error", c.qsrc)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.qsrc, err, c.wantSub)
		}
	}
}

func TestPlanShapes(t *testing.T) {
	// Simple positive plan: one sub-pattern.
	q := query.MustParse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+")
	p, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Simple() || len(p.Subs) != 1 {
		t.Errorf("simple plan shape: %+v", p)
	}
	// Negation: three sub-patterns for the paper's Example 2.
	q = query.MustParse("RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+")
	p, err = core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subs) != 3 || !p.Subs[1].Negative || !p.Subs[2].Negative {
		t.Errorf("negation plan shape: %d subs", len(p.Subs))
	}
	// Star: two branches plus one product.
	q = query.MustParse("RETURN COUNT(*) PATTERN SEQ(A*, B)")
	p, err = core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if p.Simple() || len(p.Branches) != 2 || len(p.Products) != 1 {
		t.Errorf("star plan: branches=%d products=%d", len(p.Branches), len(p.Products))
	}
	// Three-branch disjunction: 3 branches, 4 subset products (masks of
	// size >= 2 over 3 branches).
	q = query.MustParse("RETURN COUNT(*) PATTERN A+ OR B+ OR C+")
	p, err = core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Branches) != 3 || len(p.Products) != 4 {
		t.Errorf("3-way OR plan: branches=%d products=%d", len(p.Branches), len(p.Products))
	}
}

func TestPlanSortAttrSelection(t *testing.T) {
	// The Vertex Tree sort attribute comes from the range-compilable
	// edge predicate out of each state.
	q := query.MustParse("RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price")
	p, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Subs[0].SortAttr[0]; got != "price" {
		t.Errorf("sort attr = %q, want price", got)
	}
	// No range-compilable predicate: trees fall back to time ordering.
	q = query.MustParse("RETURN COUNT(*) PATTERN Stock S+ WHERE S.price * S.price > NEXT(S).price * NEXT(S).price")
	p, err = core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Subs[0].SortAttr[0]; got != "" {
		t.Errorf("sort attr = %q, want empty (time-ordered)", got)
	}
}

func TestDisjunctionAggregates(t *testing.T) {
	// MIN/MAX over a disjunction fold over branches only (monotone over
	// trend sets); SUM/COUNT use inclusion-exclusion. Cross-validate a
	// concrete case: SEQ(A?, B) over a2(x=3), b5, b9.
	var qb strings.Builder
	qb.WriteString("RETURN COUNT(*), MIN(A.x), SUM(B.y) PATTERN SEQ(A?, B)")
	q := query.MustParse(qb.String())
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	feed(t, eng,
		evt("A", 2, map[string]float64{"x": 3}),
		evt("B", 5, map[string]float64{"y": 10}),
		evt("B", 9, map[string]float64{"y": 1}),
	)
	rs := eng.Results()
	if len(rs) != 1 {
		t.Fatalf("results = %+v", rs)
	}
	// Trends: (b5), (b9), (a2,b5), (a2,b9) -> COUNT 4; MIN(A.x)=3;
	// SUM(B.y) = 10+1+10+1 = 22.
	want := []float64{4, 3, 22}
	for i, w := range want {
		if rs[0].Values[i] != w {
			t.Errorf("agg %d = %v, want %v", i, rs[0].Values[i], w)
		}
	}
}
