package core

import (
	"math"
	"slices"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
)

// Vertex is a GRETA graph vertex: one matched event in one state, with
// one aggregate payload per window the event falls into (paper
// Definition 3 extended with sub-graph sharing, §6).
type Vertex struct {
	Ev       *event.Event
	State    int
	FirstWid int64
	// Aggs[i] is the payload for window FirstWid+i; nil when the vertex
	// carries no trends in that window (or is invalid there).
	Aggs []*aggregate.Payload
	// closed marks vertices that already have an outgoing edge, used by
	// skip-till-next-match semantics (§9): an event extends the first
	// matchable continuation only.
	closed bool
}

// pane is one Time Pane (paper §7): all vertices of a fixed time
// interval, indexed per state by a Vertex Tree. On the summary fast
// path the trees are augmented (see vertexAug): each tree's root
// summary is the pane's per-(state, window) payload summary, and its
// interior nodes support range-bounded subtree folds.
type pane struct {
	idx        int64
	start, end event.Time
	trees      map[int]*vtree
	vertices   int
}

// depKind classifies a graph dependency per paper §5.1.
type depKind uint8

const (
	depCase1 depKind = iota // SEQ(Pi, NOT N, Pj): previous and following
	depCase2                // SEQ(Pi, NOT N): previous only
	depCase3                // SEQ(NOT N, Pj): following only
)

// invalRecord is one finished negative trend batch: all trends of the
// negative graph ending at one END vertex (Definition 5). starts[i] is
// the latest trend start time in window firstWid+i (aggregate.NoStart
// when the window holds no finished trend).
type invalRecord struct {
	end      event.Time
	firstWid int64
	starts   []int64
}

// depLink connects a parent graph to one of its negative graphs and
// accumulates invalidation watermarks (the runtime realization of the
// Graph Dependencies Hash Table, paper §7).
type depLink struct {
	kind depKind
	// prevStates / follStates are state indices in the parent template;
	// nil means "all states" (Cases 2 and 3 invalidate whole events).
	// They point at the shared linkProto maps (read-only at runtime).
	prevStates map[int]bool
	follStates map[int]bool
	// prunable is true when events of the previous states may precede
	// only events of the following states, enabling invalid event
	// pruning (Theorem 5.1).
	prunable bool

	pending []invalRecord
	// maxStart per window: parent events older than this are invalid
	// (Cases 1 and 2). minEnd per window: parent events newer than this
	// are invalid (Case 3).
	maxStart map[int64]int64
	minEnd   map[int64]event.Time
	// startsFree recycles invalRecord.starts slices between the negative
	// graph's END vertices and foldPending, so steady-state invalidation
	// bursts allocate nothing.
	startsFree [][]int64
}

// getStarts returns a recycled (or new) starts slice of length k.
func (d *depLink) getStarts(k int) []int64 {
	if n := len(d.startsFree); n > 0 {
		s := d.startsFree[n-1]
		d.startsFree[n-1] = nil
		d.startsFree = d.startsFree[:n-1]
		if cap(s) >= k {
			return s[:k]
		}
	}
	return make([]int64, k)
}

// putStarts recycles a consumed starts slice.
func (d *depLink) putStarts(s []int64) {
	d.startsFree = append(d.startsFree, s)
}

// GraphStats tracks runtime costs for the evaluation harness. Peaks
// are tracked at the engine level (Engine.samplePeaks), not per graph:
// per-graph peaks occur at different times, so their sum overstates
// the concurrent footprint.
type GraphStats struct {
	Events   uint64 // events offered to the graph
	Vertices uint64 // vertices currently stored
	Inserted uint64 // vertices ever inserted
	Edges    uint64 // logical edges (each exactly once, §7), however aggregated
	// Payloads counts window payloads currently held: one per
	// (vertex, window) the vertex carries trends in, plus the payloads
	// inside the augmented Vertex Trees' subtree summaries — the
	// structural memory of the graph, which the bench harness samples
	// for its footprint estimate.
	Payloads uint64
	// The three counters below split the cost of maintaining Edges:
	//   - ScanVisits counts materialized per-vertex candidate visits
	//     (the per-vertex scan and fold-path boundary descents).
	//   - SummaryFolds counts pane/subtree summary folds that each cover
	//     any number of logical edges in O(1).
	//   - SummaryRebuilds counts in-place pane-summary rebuilds after an
	//     invalidation watermark advance retracted stored contributions
	//     (lazy: paid once per affected pane per advance, not per event).
	ScanVisits      uint64
	SummaryFolds    uint64
	SummaryRebuilds uint64
}

// Graph is a runtime GRETA graph for one sub-pattern in one stream
// partition.
type Graph struct {
	spec     *GraphSpec
	def      *aggregate.Def
	win      window.Spec
	sem      query.Semantics
	paneSize event.Time

	panes []*pane

	// results accumulates final aggregates per window incrementally
	// (Theorem 4.3(2)); graphs with a Case-2 dependency compute finals
	// lazily at window close instead (see closeWindow). Created on first
	// END vertex: most graphs of a heavily partitioned stream never see
	// one between window closes, so creation is deferred off the
	// partition-creation path.
	results   map[int64]*aggregate.Payload
	lazyFinal bool
	// endWids records windows that received at least one END vertex, so
	// lazy finalization knows which windows may have results. Lazily
	// created like results.
	endWids map[int64]bool

	deps       []*depLink // dependencies where this graph is the parent
	parentLink *depLink   // for negative graphs: the parent's depLink

	// wmVer is the graph's invalidation watermark version: bumped by
	// foldPending whenever a maxStart watermark advances. Subtree
	// summaries record the version their filtering is current under
	// (vertexSum.wmVer); a mismatch at fold time triggers lazy
	// revalidation or an in-place rebuild (refreshSummaries) instead of
	// an eager re-summarization on every foldPending.
	wmVer uint64

	prevTime    event.Time // last processed event time
	lastEventID uint64     // previous stream event id (contiguous semantics)

	// doomed is the reusable scratch for pruneInvalid's deferred
	// deletions (collecting during Ascend, deleting after).
	doomed []*Vertex

	// cs is the engine-level compiled form of spec (predicates and
	// accessors), shared by this spec's graphs across all partitions of
	// one engine — see compiledSpec for why that sharing is race-free.
	cs *compiledSpec

	// ins is the insertion scratch state read by scanFn; scanFn,
	// expireFn, and foldFn are created once so per-event tree scans
	// allocate no closures.
	ins      insertState
	scanFn   func(vitem) bool
	expireFn func(vitem) bool
	foldFn   func(*vertexSum) bool

	// forceScan disables the summary fast path for this graph
	// (Engine.SetForceVertexScan): every candidate is visited per
	// vertex, for differential testing against the fold path.
	forceScan bool

	stats GraphStats
}

// edgePred is a compiled edge predicate: the static Edge with its
// expression (and range right-hand side) compiled for schema-slot
// access.
type edgePred struct {
	src  *predicate.Edge
	eval *predicate.Compiled
	rng  *predicate.Range
	rhs  *predicate.Compiled // compiled rng.RHS(); nil when rng is nil
}

// compiledSpec is the per-engine compiled form of one GraphSpec:
// predicate evaluators and attribute accessors whose schema-slot caches
// mutate on evaluation, plus immutable derived tables. It is built once
// per (engine, spec) and shared by that spec's graphs across all
// partitions, so partition creation does not recompile.
//
// Sharing is race-free: within one engine, events are processed
// sequentially, and the §7 scheduler's only concurrency is across
// graphs of *different* specs inside one partition — each with its own
// compiledSpec. Distinct engines (RunParallel workers) build their own.
type compiledSpec struct {
	cVert    [][]*predicate.Compiled // vertex predicates per state
	epsBySrc [][][]*edgePred         // [toState][fromState] applicable edge predicates
	sortAcc  []event.Accessor        // Vertex Tree sort-attribute accessor per state
	slotAcc  []event.Accessor        // aggregate slot attribute accessors
	hasSucc  []bool                  // state has outgoing transitions
	links    map[int]*linkProto      // dependency-link template per child spec index

	// fastScan[toState][fromState] reports that scanCandidates for the
	// transition may fold subtree summaries instead of visiting each
	// candidate: skip-till-any-match semantics and every edge predicate
	// of the transition range-compiled on the Vertex Tree's sort
	// attribute (bit-exact ranges fold directly; inexact linear ranges
	// fold interior subtrees via interval-arithmetic inner bounds and
	// re-check only the boundary band per vertex). Strict time adjacency
	// and degenerate keys are re-checked per fold through vertexSum
	// (maxTime/fallback). Dependency links no longer force per-vertex
	// scans: Case-3 invalidation is handled per insertion (window
	// validity suffix), and Case-1/2 maxStart invalidation through
	// watermark-versioned summaries — but all fast transitions out of
	// one state must agree on the gating dependency set (augDeps), since
	// the state's trees carry one filtered summary; disagreeing states
	// fall back to the per-vertex scan entirely.
	fastScan [][]bool
	// augDeps[fromState] lists the indices (into GraphSpec.Deps order,
	// which matches Graph.deps) of the dependency links whose maxStart
	// watermarks invalidate predecessors on the state's fast
	// transitions: Case-2 links always, Case-1 links when the state is a
	// previous state and the destination a following state. The state's
	// subtree summaries are filtered under exactly this set (see
	// vertexAug.validWindows); empty for dependency-free specs and
	// Case-3-only dependencies.
	augDeps [][]int
	// anyCase3 reports a Case-3 dependency (SEQ(NOT N, Pj)) on the spec:
	// insertions then precompute the new event's per-window validity
	// (Graph.widValidity) before scanning.
	anyCase3 bool
	// augs[state] maintains subtree summaries for the state's Vertex
	// Trees; nil when no transition out of the state can fast-fold.
	augs []*vertexAug

	// cur is the graph currently operating on this spec's trees and
	// pools, published by the graph entry points (Process, Advance,
	// FoldAll, CollectWindow) so the shared vertexAug can read the
	// graph's invalidation watermarks and charge its payload stats.
	// Single-owner like the pools: within one engine, graphs of one spec
	// run sequentially (see the sharing argument above).
	cur *Graph

	// Recycling pools, shared by the spec's graphs across partitions of
	// one engine (sequential access, same argument as above): expired
	// panes return payloads, vertices, panes, and tree nodes here so
	// the steady-state per-event path allocates nothing — and a
	// partition warms up from state another partition expired. Subtree
	// summaries recycle implicitly: they stay attached (emptied) to
	// free-listed tree nodes, their payloads returning to pool.
	pool     aggregate.Pool
	vfree    []*Vertex
	pfree    []*pane
	nodeFree vtreeFree
}

// linkProto is the immutable part of a depLink, computed once per
// (parent spec, child spec) pair instead of per partition.
type linkProto struct {
	kind       depKind
	prevStates map[int]bool
	follStates map[int]bool
	prunable   bool
}

// newCompiledSpec compiles spec against the schema-slot fast path.
func newCompiledSpec(spec *GraphSpec, subs []*GraphSpec, sem query.Semantics) *compiledSpec {
	cs := &compiledSpec{}
	cs.pool.Init(spec.Def)
	n := len(spec.Tmpl.States)
	cs.cVert = make([][]*predicate.Compiled, n)
	for sIdx, vps := range spec.VertexPreds {
		for _, vp := range vps {
			cs.cVert[sIdx] = append(cs.cVert[sIdx], predicate.Compile(vp.Expr))
		}
	}
	// Compile each distinct edge predicate once, then index the compiled
	// form per (destination, source) state pair so the hot path does no
	// label matching.
	compiled := map[*predicate.Edge]*edgePred{}
	cs.epsBySrc = make([][][]*edgePred, n)
	for i := range cs.epsBySrc {
		cs.epsBySrc[i] = make([][]*edgePred, n)
	}
	for toIdx, eps := range spec.EdgePreds {
		for _, ep := range eps {
			ce := compiled[ep]
			if ce == nil {
				ce = &edgePred{src: ep, eval: predicate.Compile(ep.Expr), rng: ep.Range}
				if ep.Range != nil {
					ce.rhs = predicate.Compile(ep.Range.RHS())
				}
				compiled[ep] = ce
			}
			for _, from := range spec.Tmpl.States {
				if hasLabel(from, ep.From) {
					cs.epsBySrc[toIdx][from.Idx] = append(cs.epsBySrc[toIdx][from.Idx], ce)
				}
			}
		}
	}
	cs.sortAcc = make([]event.Accessor, n)
	for sIdx := 0; sIdx < n; sIdx++ {
		cs.sortAcc[sIdx] = event.NewAccessor(spec.SortAttr[sIdx])
	}
	cs.slotAcc = spec.Def.NewAccessors()
	cs.hasSucc = make([]bool, n)
	for _, st := range spec.Tmpl.States {
		for _, p := range st.Preds {
			cs.hasSucc[p] = true
		}
	}
	cs.links = map[int]*linkProto{}
	for _, dep := range spec.Deps {
		cs.links[dep] = buildLinkProto(spec, subs[dep])
	}
	// Summary fast-path eligibility. Skip-till-next-match mutates
	// predecessors during the scan (closed marking) and contiguous
	// semantics checks per-vertex event ids — both force per-vertex
	// scans. Dependency links are handled by the watermark machinery
	// below instead of disqualifying the spec wholesale.
	augOK := sem == query.SkipTillAnyMatch
	cs.fastScan = make([][]bool, n)
	for to := range cs.fastScan {
		cs.fastScan[to] = make([]bool, n)
		for from := range cs.fastScan[to] {
			if !augOK {
				continue
			}
			fast := true
			for _, pe := range cs.epsBySrc[to][from] {
				if pe.rng == nil || pe.rng.Attr != spec.SortAttr[from] {
					fast = false
					break
				}
			}
			cs.fastScan[to][from] = fast
		}
	}
	// Dependency gating: per transition, the set of links whose maxStart
	// watermarks invalidate predecessors (Definition 5: Case 2 always,
	// Case 1 from a previous state into a following state; Case 3
	// invalidates the new event per window, not predecessors, and is
	// handled per insertion). A state's trees carry ONE filtered
	// summary, so all its fast transitions must agree on the set;
	// otherwise the state's scans stay per vertex.
	for _, depIdx := range spec.Deps {
		if cs.links[depIdx].kind == depCase3 {
			cs.anyCase3 = true
		}
	}
	gatingDeps := func(to, from int) []int {
		var deps []int
		for j, depIdx := range spec.Deps {
			lp := cs.links[depIdx]
			switch lp.kind {
			case depCase2:
				deps = append(deps, j)
			case depCase1:
				if lp.prevStates[from] && lp.follStates[to] {
					deps = append(deps, j)
				}
			}
		}
		return deps
	}
	cs.augDeps = make([][]int, n)
	for from := 0; from < n; from++ {
		var common []int
		have, consistent := false, true
		for to := 0; to < n; to++ {
			if !cs.fastScan[to][from] {
				continue
			}
			deps := gatingDeps(to, from)
			if !have {
				common, have = deps, true
			} else if !slices.Equal(common, deps) {
				consistent = false
			}
		}
		if !consistent {
			for to := 0; to < n; to++ {
				cs.fastScan[to][from] = false
			}
			common = nil
		}
		cs.augDeps[from] = common
	}
	// Augment the Vertex Trees of states that at least one transition
	// can fast-fold from; other states skip the maintenance cost.
	cs.augs = make([]*vertexAug, n)
	for _, st := range spec.Tmpl.States {
		for _, from := range st.Preds {
			if cs.fastScan[st.Idx][from] && cs.augs[from] == nil {
				cs.augs[from] = &vertexAug{cs: cs, def: spec.Def, sIdx: from}
			}
		}
	}
	return cs
}

// buildLinkProto classifies the dependency on childSpec per paper §5.1
// and precomputes the state sets of Case-1 links.
func buildLinkProto(spec, childSpec *GraphSpec) *linkProto {
	lp := &linkProto{}
	switch {
	case childSpec.Previous != "" && childSpec.Following != "":
		lp.kind = depCase1
	case childSpec.Previous != "":
		lp.kind = depCase2
	default:
		lp.kind = depCase3
	}
	if lp.kind != depCase1 {
		return lp
	}
	lp.prevStates = map[int]bool{}
	lp.follStates = map[int]bool{}
	for _, st := range spec.Tmpl.States {
		if hasLabel(st, childSpec.Previous) {
			lp.prevStates[st.Idx] = true
		}
		if hasLabel(st, childSpec.Following) {
			lp.follStates[st.Idx] = true
		}
	}
	// Invalid event pruning is safe when previous-state events may
	// precede only following-state events (Theorem 5.1).
	lp.prunable = true
	for prev := range lp.prevStates {
		for _, st := range spec.Tmpl.States {
			for _, ps := range st.Preds {
				if ps == prev && !lp.follStates[st.Idx] {
					lp.prunable = false
				}
			}
		}
	}
	return lp
}

// insertState carries one insertion through the candidate scan.
type insertState struct {
	e        *event.Event
	sIdx     int
	lo, hi   int64
	payloads []*aggregate.Payload // aliases the vertex's Aggs
	eps      []*edgePred          // edge predicates of the current transition
	gotPred  bool
	// rlo/rhi are the current scan's outer key-range bounds (tree range;
	// outward-rounded for inexact linear predicates so no true match is
	// missed). useRange reports whether any compiled range narrowed
	// them.
	rlo, rhi         float64
	rloIncl, rhiIncl bool
	useRange         bool
	// flo/fhi are the inner (fold) bounds: subtree key spans inside them
	// provably satisfy every edge predicate of the transition, so the
	// summary may be folded without per-vertex re-checks. Equal to the
	// outer bounds for bit-exact ranges; inward-rounded for inexact
	// ones. foldable is false when some range cannot certify an inner
	// interval (inexact equality) — the scan then stays per vertex.
	flo, fhi         float64
	floIncl, fhiIncl bool
	foldable         bool
	// augDeps is the current transition's maxStart-gating dependency set
	// (compiledSpec.augDeps of the predecessor state; nil when the scan
	// is not fold-eligible or nothing gates it).
	augDeps []int
	// validFrom/suffixOK describe the new event's per-window Case-3
	// validity over [lo, hi], computed once per insertion
	// (Graph.widValidity): windows below validFrom are invalid for the
	// event, windows from it on are valid. suffixOK is false when the
	// validity pattern is not an invalid-prefix/valid-suffix — the fast
	// path is then disabled for the whole insertion, since the Last
	// histogram can account edges exactly only against a window suffix.
	validFrom int64
	suffixOK  bool
}

// newGraph builds the runtime graph for spec using the engine's
// compiled form cs.
func newGraph(spec *GraphSpec, cs *compiledSpec, win window.Spec, sem query.Semantics) *Graph {
	g := &Graph{
		spec:     spec,
		cs:       cs,
		def:      spec.Def,
		win:      win,
		sem:      sem,
		paneSize: win.PaneSize(),
		prevTime: -1,
	}
	g.scanFn = g.scanVisit
	g.expireFn = g.expireVisit
	g.foldFn = g.foldVisit
	return g
}

// getVertex returns a recycled (or new) vertex with a nil-cleared Aggs
// slice of length k.
func (g *Graph) getVertex(k int) *Vertex {
	var v *Vertex
	if n := len(g.cs.vfree); n > 0 {
		v = g.cs.vfree[n-1]
		g.cs.vfree[n-1] = nil
		g.cs.vfree = g.cs.vfree[:n-1]
	} else {
		v = &Vertex{}
	}
	if cap(v.Aggs) >= k {
		v.Aggs = v.Aggs[:k]
	} else {
		v.Aggs = make([]*aggregate.Payload, k)
	}
	v.closed = false
	return v
}

// putVertex recycles v, returning its remaining payloads to the pool.
func (g *Graph) putVertex(v *Vertex) {
	for i, p := range v.Aggs {
		if p != nil {
			g.cs.pool.Put(p)
			v.Aggs[i] = nil
		}
	}
	v.Ev = nil
	g.cs.vfree = append(g.cs.vfree, v)
}

// Release returns a payload obtained from CollectWindow to the graph's
// pool once the engine has folded it into the merged result.
func (g *Graph) Release(p *aggregate.Payload) {
	g.cs.pool.Put(p)
}

// addDep wires the negative child graph (spec index childIdx) into the
// parent. The link's immutable classification comes from the shared
// linkProto; only the per-partition watermark state is allocated here.
func (g *Graph) addDep(child *Graph, childIdx int) {
	lp := g.cs.links[childIdx]
	link := &depLink{
		kind:       lp.kind,
		prevStates: lp.prevStates,
		follStates: lp.follStates,
		prunable:   lp.prunable,
		maxStart:   map[int64]int64{},
		minEnd:     map[int64]event.Time{},
	}
	if link.kind == depCase2 {
		g.lazyFinal = true
	}
	g.deps = append(g.deps, link)
	child.parentLink = link
}

// Process offers one stream event to the graph. Events must arrive in
// non-decreasing time order. Window results are collected by the
// engine through CollectWindow; the graph only maintains state.
func (g *Graph) Process(e *event.Event) {
	g.cs.cur = g
	g.stats.Events++
	g.foldPending(e.Time)
	g.expire(e.Time)

	states := g.spec.Tmpl.ByType[e.Type]
	if len(states) != 0 {
		lo, hi := g.win.Wids(e.Time)
		for _, sIdx := range states {
			g.insertAt(e, sIdx, lo, hi)
		}
	}
	g.prevTime = e.Time
	g.lastEventID = e.ID
}

// insertAt attempts to insert event e as a vertex of state sIdx
// (Algorithm 2 generalized: per-state, per-window, all aggregates).
// The steady-state path allocates nothing: the vertex, its payloads,
// and its Aggs array come from the graph's recycling pools, and the
// candidate scan runs through the preallocated scanFn closure.
func (g *Graph) insertAt(e *event.Event, sIdx int, lo, hi int64) {
	st := g.spec.Tmpl.States[sIdx]
	for _, cv := range g.cs.cVert[sIdx] {
		if !cv.EvalEvent(e) {
			return
		}
	}
	k := int(hi - lo + 1)
	v := g.getVertex(k)
	ins := &g.ins
	ins.e, ins.sIdx, ins.lo, ins.hi = e, sIdx, lo, hi
	ins.payloads = v.Aggs
	ins.gotPred = false
	ins.validFrom, ins.suffixOK = g.widValidity(e.Time, lo, hi)
	for _, psIdx := range st.Preds {
		g.scanCandidates(psIdx, sIdx)
	}
	ins.e = nil
	if !st.Start && !ins.gotPred {
		// A MID or END event without predecessor events extends no trend
		// and is not inserted (Algorithm 2 line 5).
		g.putVertex(v)
		return
	}
	hasPayload := false
	for i := 0; i < k; i++ {
		wid := lo + int64(i)
		if !g.validWid(wid, e.Time) {
			if v.Aggs[i] != nil {
				g.cs.pool.Put(v.Aggs[i])
				v.Aggs[i] = nil
			}
			continue
		}
		if st.Start {
			if v.Aggs[i] == nil {
				v.Aggs[i] = g.cs.pool.Get()
			}
			g.def.OnStart(v.Aggs[i], e.Time)
		}
		if v.Aggs[i] != nil {
			g.def.OnEventAcc(v.Aggs[i], e, g.cs.slotAcc)
			hasPayload = true
		}
	}
	if !hasPayload {
		g.putVertex(v)
		return
	}
	v.Ev, v.State, v.FirstWid = e, sIdx, lo
	if st.End {
		g.onEndVertex(v, lo, hi)
	}
	// Finished trend pruning (paper §5.2): an END vertex of a negative
	// graph whose state has no outgoing transitions can never extend a
	// trend; it has done its invalidation work and is not stored.
	if g.spec.Negative && st.End && !g.cs.hasSucc[sIdx] {
		g.putVertex(v)
		return
	}
	g.store(v)
}

// validWid reports whether e at time t may carry trends in window wid
// under Case-3 invalidation: the event is unusable in windows
// containing a finished negative trend that ended before it (paper
// Fig. 8(b)).
func (g *Graph) validWid(wid int64, t event.Time) bool {
	for _, d := range g.deps {
		if d.kind != depCase3 {
			continue
		}
		if te, ok := d.minEnd[wid]; ok && te < t {
			return false
		}
	}
	return true
}

// widValidity computes, once per insertion, the Case-3 validity shape
// of the new event's window range [lo, hi]: validFrom is the first
// window of the trailing valid run (hi+1 when every window is invalid),
// and suffixOK reports that every window below validFrom is invalid —
// i.e. the pattern is an invalid prefix followed by a valid suffix.
// Only then can the summary fast path both skip the invalid windows'
// folds and count edges exactly via the Last histogram (EdgesFrom of
// the suffix start); other shapes fall back to the per-vertex scan for
// this insertion. Specs without Case-3 dependencies are always fully
// valid.
func (g *Graph) widValidity(t event.Time, lo, hi int64) (validFrom int64, suffixOK bool) {
	if !g.cs.anyCase3 {
		return lo, true
	}
	from := hi + 1
	for wid := hi; wid >= lo && g.validWid(wid, t); wid-- {
		from = wid
	}
	for wid := from - 1; wid >= lo; wid-- {
		if g.validWid(wid, t) {
			return from, false
		}
	}
	return from, true
}

// invalThreshold returns the maxStart invalidation watermark of window
// wid under the dependency set deps (indices into g.deps):
// predecessors whose event time lies strictly below it are invalid in
// that window (aggregate.NoStart when no watermark applies, which no
// stored time is below).
func (g *Graph) invalThreshold(deps []int, wid int64) int64 {
	thr := int64(aggregate.NoStart)
	for _, j := range deps {
		if ws, ok := g.deps[j].maxStart[wid]; ok && ws > thr {
			thr = ws
		}
	}
	return thr
}

// onEndVertex folds an END vertex into final aggregates (positive
// graphs, Theorem 4.3(2)) or pushes an invalidation record to the
// parent (negative graphs, Definition 5).
func (g *Graph) onEndVertex(v *Vertex, lo, hi int64) {
	if g.spec.Negative {
		if g.parentLink == nil {
			return
		}
		rec := invalRecord{end: v.Ev.Time, firstWid: lo, starts: g.parentLink.getStarts(len(v.Aggs))}
		any := false
		for i, p := range v.Aggs {
			if p == nil || p.Zero() {
				rec.starts[i] = aggregate.NoStart
				continue
			}
			rec.starts[i] = p.MaxStart
			any = true
		}
		if any {
			g.parentLink.pending = append(g.parentLink.pending, rec)
		} else {
			g.parentLink.putStarts(rec.starts)
		}
		return
	}
	for i, p := range v.Aggs {
		if p == nil {
			continue
		}
		wid := lo + int64(i)
		if g.endWids == nil {
			g.endWids = map[int64]bool{}
		}
		g.endWids[wid] = true
		if g.lazyFinal {
			continue
		}
		r := g.results[wid]
		if r == nil {
			r = g.cs.pool.Get()
			if g.results == nil {
				g.results = map[int64]*aggregate.Payload{}
			}
			g.results[wid] = r
		}
		g.def.Merge(r, p)
	}
	_ = hi // window range is implicit in v.Aggs
}

// invalidPred reports whether predecessor p may not contribute to a new
// event at state sIdx in window wid at time t (Definition 5).
func (g *Graph) invalidPred(p *Vertex, sIdx int, wid int64, t event.Time) bool {
	for _, d := range g.deps {
		switch d.kind {
		case depCase1:
			if d.prevStates[p.State] && d.follStates[sIdx] {
				if ws, ok := d.maxStart[wid]; ok && int64(p.Ev.Time) < ws {
					return true
				}
			}
		case depCase2:
			if ws, ok := d.maxStart[wid]; ok && int64(p.Ev.Time) < ws {
				return true
			}
		case depCase3:
			// Case-3 invalidation nulls the vertex's window payloads at
			// insertion; nothing to re-check here.
		}
	}
	return false
}

// foldPending applies invalidation records of finished negative trends
// whose end time lies strictly before t ("events of the following event
// type that will arrive after en.time", Definition 5). A maxStart
// advance bumps the graph's watermark version: stored pane summaries
// become stale lazily and are revalidated or rebuilt on the next
// eligible scan (refreshSummaries), never eagerly here.
func (g *Graph) foldPending(t event.Time) {
	for _, d := range g.deps {
		n := 0
		advanced := false
		for _, rec := range d.pending {
			if rec.end >= t {
				d.pending[n] = rec
				n++
				continue
			}
			for i, s := range rec.starts {
				if s == aggregate.NoStart {
					continue
				}
				wid := rec.firstWid + int64(i)
				if cur, ok := d.maxStart[wid]; !ok || s > cur {
					d.maxStart[wid] = s
					advanced = true
				}
				if cur, ok := d.minEnd[wid]; !ok || rec.end < cur {
					d.minEnd[wid] = rec.end
				}
			}
			d.putStarts(rec.starts)
		}
		d.pending = d.pending[:n]
		if advanced {
			// Bump before pruning: the prune's tree deletions recompute
			// summaries filtered under the just-advanced maps, and the
			// recomputes stamp the version they read here.
			g.wmVer++
			if d.kind == depCase1 && d.prunable {
				g.pruneInvalid(d)
			}
		}
	}
}

// pruneInvalid physically removes previous-state vertices that are
// invalid in every window they belong to (invalid event pruning,
// Theorem 5.1).
func (g *Graph) pruneInvalid(d *depLink) {
	for _, pn := range g.panes {
		for sIdx := range d.prevStates {
			tree := pn.trees[sIdx]
			if tree == nil {
				continue
			}
			doomed := g.doomed[:0]
			tree.Ascend(func(it btree.Item[*Vertex]) bool {
				v := it.Val
				dead := true
				for i := range v.Aggs {
					if v.Aggs[i] == nil {
						continue
					}
					wid := v.FirstWid + int64(i)
					ws, ok := d.maxStart[wid]
					if !ok || int64(v.Ev.Time) >= ws {
						dead = false
						break
					}
				}
				if dead {
					doomed = append(doomed, v)
				}
				return true
			})
			for i, v := range doomed {
				if tree.Delete(g.sortKey(v.State, v.Ev), v.Ev.ID) {
					pn.vertices--
					g.stats.Vertices--
					g.stats.Payloads -= uint64(countPayloads(v))
					g.putVertex(v)
				}
				doomed[i] = nil
			}
			g.doomed = doomed[:0]
		}
	}
}

func countPayloads(v *Vertex) int {
	n := 0
	for _, p := range v.Aggs {
		if p != nil {
			n++
		}
	}
	return n
}

// scanCandidates aggregates stored vertices of state psIdx that may
// precede the event being inserted (g.ins) at state sIdx. On the
// summary fast path (fastScan) it folds subtree summaries — O(1) for a
// fully covered pane tree, O(log n) for a range-bounded one — and only
// descends to per-vertex visits around range boundaries, degenerate
// keys, same-timestamp stragglers, and watermark-mixed subtrees.
// Otherwise it scans per vertex, using the Vertex Tree range for the
// compiled edge predicate when available (paper §7). Both paths are
// zero-allocation: candidate work happens in the preallocated
// scanVisit/foldVisit closures reading g.ins, and forEachCandidate is
// the debug-rendering twin.
func (g *Graph) scanCandidates(psIdx, sIdx int) {
	ins := &g.ins
	e := ins.e
	eps := g.cs.epsBySrc[sIdx][psIdx]
	ins.eps = eps
	fast := !g.forceScan && g.cs.fastScan[sIdx][psIdx] && ins.suffixOK
	if !g.scanBounds(psIdx, eps, e, fast) {
		return
	}
	fast = fast && ins.foldable
	ins.augDeps = nil
	if fast {
		ins.augDeps = g.cs.augDeps[psIdx]
	}
	oldest := g.win.Start(ins.lo)
	for _, pn := range g.panes {
		if pn.end <= oldest || pn.start > e.Time {
			continue
		}
		tree := pn.trees[psIdx]
		if tree == nil {
			continue
		}
		switch {
		case fast && tree.Augmented():
			if len(ins.augDeps) > 0 {
				g.refreshSummaries(tree)
			}
			tree.FoldRange(ins.rlo, ins.rhi, ins.rloIncl, ins.rhiIncl, g.foldFn, g.scanFn)
		case ins.useRange:
			tree.AscendRange(ins.rlo, ins.rhi, ins.rloIncl, ins.rhiIncl, g.scanFn)
		default:
			tree.Ascend(g.scanFn)
		}
	}
}

// scanBounds computes the Vertex Tree range bounds on the predecessor
// sort attribute for an insertion of e, writing them into g.ins: the
// outer scan range (rlo/rhi, outward-rounded for inexact linear
// predicates so the narrowed scan misses no true match) and — when
// fold is set — the inner fold range (flo/fhi, inward-rounded so
// subtree spans inside it provably satisfy every edge predicate; see
// predicate.Range.FoldBoundsOf). It reports false when a compiled
// range proves no predecessor can match; ins.foldable reports whether
// every range certified an inner interval.
func (g *Graph) scanBounds(psIdx int, eps []*edgePred, e *event.Event, fold bool) bool {
	ins := &g.ins
	ins.rlo, ins.rhi = math.Inf(-1), math.Inf(1)
	ins.rloIncl, ins.rhiIncl = true, true
	ins.useRange = false
	ins.foldable = fold
	if g.cs.sortAcc[psIdx].Attr() == "" {
		// Trees without an edge-predicate attribute sort by time; bound
		// the scan by strict adjacency p.time < e.time. The bound is
		// bit-exact, so the fold range coincides.
		ins.rhi, ins.rhiIncl = float64(e.Time), false
		ins.useRange = true
		ins.flo, ins.fhi = ins.rlo, ins.rhi
		ins.floIncl, ins.fhiIncl = ins.rloIncl, ins.rhiIncl
		return true
	}
	ins.flo, ins.fhi = math.Inf(-1), math.Inf(1)
	ins.floIncl, ins.fhiIncl = true, true
	sortAttr := g.spec.SortAttr[psIdx]
	for _, pe := range eps {
		if pe.rng == nil || pe.rng.Attr != sortAttr {
			continue
		}
		rv := pe.rhs.EvalNext(e)
		lo2, hi2, loI, hiI, bok := pe.rng.BoundsOf(rv)
		if !bok {
			return false
		}
		if lo2 > ins.rlo || (lo2 == ins.rlo && !loI) {
			ins.rlo, ins.rloIncl = lo2, loI
		}
		if hi2 < ins.rhi || (hi2 == ins.rhi && !hiI) {
			ins.rhi, ins.rhiIncl = hi2, hiI
		}
		ins.useRange = true
		if !fold {
			continue
		}
		flo2, fhi2, floI, fhiI, fok := pe.rng.FoldBoundsOf(rv)
		if !fok {
			ins.foldable = false
			continue
		}
		if flo2 > ins.flo || (flo2 == ins.flo && !floI) {
			ins.flo, ins.floIncl = flo2, floI
		}
		if fhi2 < ins.fhi || (fhi2 == ins.fhi && !fhiI) {
			ins.fhi, ins.fhiIncl = fhi2, fhiI
		}
	}
	return true
}

// candidateOK applies the per-candidate adjacency filter shared by the
// runtime scan and the DOT renderer: strictly increasing time
// (Definition 1), the event selection semantics, and all edge
// predicates of the transition.
func (g *Graph) candidateOK(p *Vertex, e *event.Event, eps []*edgePred) bool {
	if p.Ev.Time >= e.Time {
		return false
	}
	if g.sem == query.Contiguous && p.Ev.ID != g.lastEventID {
		return false
	}
	if g.sem == query.SkipTillNextMatch && p.closed {
		return false
	}
	for _, pe := range eps {
		if !pe.eval.EvalPair(p.Ev, e) {
			return false
		}
	}
	return true
}

// scanVisit processes one candidate predecessor during scanCandidates
// (installed once as g.scanFn so per-event scans allocate no closure).
func (g *Graph) scanVisit(it vitem) bool {
	ins := &g.ins
	p := it.Val
	e := ins.e
	g.stats.ScanVisits++
	if !g.candidateOK(p, e, ins.eps) {
		return true
	}
	connected := false
	pHi := p.FirstWid + int64(len(p.Aggs)) - 1
	shLo, shHi := ins.lo, pHi
	if shHi > ins.hi {
		shHi = ins.hi
	}
	for wid := shLo; wid <= shHi; wid++ {
		pp := p.Aggs[wid-p.FirstWid]
		if pp == nil || !g.validWid(wid, e.Time) {
			continue
		}
		if g.invalidPred(p, ins.sIdx, wid, e.Time) {
			continue
		}
		i := int(wid - ins.lo)
		if ins.payloads[i] == nil {
			ins.payloads[i] = g.cs.pool.Get()
		}
		g.def.AddPred(ins.payloads[i], pp)
		connected = true
	}
	if connected {
		g.stats.Edges++
		ins.gotPred = true
		if g.sem == query.SkipTillNextMatch {
			p.closed = true
		}
	}
	return true
}

// forEachCandidate visits predecessors of an arbitrary stored event
// for the DOT debug renderer. It shares scanBounds and candidateOK
// with the runtime scan (scanCandidates/scanVisit), so the rendered
// edges cannot drift from what the engine matches; only the closure
// and the lack of payload folding differ.
func (g *Graph) forEachCandidate(e *event.Event, psIdx, sIdx int, loWid int64, visit func(*Vertex)) {
	eps := g.cs.epsBySrc[sIdx][psIdx]
	// Shares the insertion scratch's bound fields; only runs between
	// insertions (debug rendering), never mid-scan.
	if !g.scanBounds(psIdx, eps, e, false) {
		return
	}
	ins := &g.ins
	oldest := g.win.Start(loWid)
	scan := func(it btree.Item[*Vertex]) bool {
		if g.candidateOK(it.Val, e, eps) {
			visit(it.Val)
		}
		return true
	}
	for _, pn := range g.panes {
		if pn.end <= oldest || pn.start > e.Time {
			continue
		}
		tree := pn.trees[psIdx]
		if tree == nil {
			continue
		}
		if ins.useRange {
			tree.AscendRange(ins.rlo, ins.rhi, ins.rloIncl, ins.rhiIncl, scan)
		} else {
			tree.Ascend(scan)
		}
	}
}

// store places a vertex into the Vertex Tree of the current pane.
// Trees of fast-path states are augmented so summary maintenance
// happens inside the insert (and forceScan graphs opt out entirely,
// behaving exactly like the per-vertex engine).
func (g *Graph) store(v *Vertex) {
	pn := g.paneFor(v.Ev.Time)
	tree := pn.trees[v.State]
	if tree == nil {
		if aug := g.cs.augs[v.State]; aug != nil && !g.forceScan {
			tree = btree.NewAugmented(&g.cs.nodeFree, aug)
		} else {
			tree = btree.NewWithFreeList(&g.cs.nodeFree)
		}
		pn.trees[v.State] = tree
	}
	tree.Insert(g.sortKey(v.State, v.Ev), v.Ev.ID, v)
	pn.vertices++
	g.stats.Vertices++
	g.stats.Inserted++
	g.stats.Payloads += uint64(countPayloads(v))
}

// sortKey computes the Vertex Tree key of an event in a state: the
// compiled edge-predicate attribute when one exists, time otherwise.
func (g *Graph) sortKey(sIdx int, e *event.Event) float64 {
	acc := &g.cs.sortAcc[sIdx]
	if acc.Attr() == "" {
		return float64(e.Time)
	}
	if v, ok := acc.Float(e); ok {
		return v
	}
	return 0
}

// paneFor returns (creating or recycling) the pane containing time t.
// Events arrive in order, so t lands in the last pane or a new one.
func (g *Graph) paneFor(t event.Time) *pane {
	idx := t / g.paneSize
	if n := len(g.panes); n > 0 && g.panes[n-1].idx == idx {
		return g.panes[n-1]
	}
	var pn *pane
	if n := len(g.cs.pfree); n > 0 {
		// Expired panes come back with empty trees (nodes already in the
		// free list), so only the bounds need resetting.
		pn = g.cs.pfree[n-1]
		g.cs.pfree[n-1] = nil
		g.cs.pfree = g.cs.pfree[:n-1]
		pn.idx, pn.start, pn.end = idx, idx*g.paneSize, (idx+1)*g.paneSize
	} else {
		pn = &pane{
			idx:   idx,
			start: idx * g.paneSize,
			end:   (idx + 1) * g.paneSize,
			trees: map[int]*vtree{},
		}
	}
	g.panes = append(g.panes, pn)
	return pn
}

// expire drops panes that can no longer contribute to any open window
// (paper §7: "a whole pane with its associated data structures is
// deleted after the pane has contributed to all windows"). Dropped
// panes recycle their vertices, payloads, and tree nodes into the
// graph's pools.
func (g *Graph) expire(t event.Time) {
	oldest := g.win.OldestNeeded(t)
	n := 0
	for _, pn := range g.panes {
		if pn.end <= oldest {
			g.stats.Vertices -= uint64(pn.vertices)
			for _, tree := range pn.trees {
				tree.Ascend(g.expireFn)
				tree.Release()
			}
			pn.vertices = 0
			g.cs.pfree = append(g.cs.pfree, pn)
			continue
		}
		g.panes[n] = pn
		n++
	}
	for i := n; i < len(g.panes); i++ {
		g.panes[i] = nil
	}
	g.panes = g.panes[:n]
}

// expireVisit recycles one vertex of an expiring pane (installed once
// as g.expireFn).
func (g *Graph) expireVisit(it vitem) bool {
	v := it.Val
	g.stats.Payloads -= uint64(countPayloads(v))
	g.putVertex(v)
	return true
}

// CollectWindow computes, removes, and returns the final aggregate of
// one window, or nil when the window holds no finished trends. The
// engine calls it once per window when the stream time passes the
// window's end (or at flush).
func (g *Graph) CollectWindow(wid int64) *aggregate.Payload {
	g.cs.cur = g
	if g.spec.Negative || !g.endWids[wid] {
		return nil
	}
	delete(g.endWids, wid)
	var r *aggregate.Payload
	if g.lazyFinal {
		r = g.lazyResult(wid)
	} else {
		r = g.results[wid]
		delete(g.results, wid)
	}
	if r == nil || r.Zero() {
		return nil
	}
	return r
}

// PeekWindow returns a clone of the window's final aggregate as
// CollectWindow would compute it, without consuming any graph state —
// the window stays open and later events keep extending it. Only valid
// for graphs whose finals are maintained incrementally (no Case-2
// dependency): the shared sub-plan network, its only caller, admits no
// dependency links at all, so the incremental map is always current.
// Returns nil when the window holds no finished trends.
func (g *Graph) PeekWindow(wid int64) *aggregate.Payload {
	if g.spec.Negative || g.lazyFinal || !g.endWids[wid] {
		return nil
	}
	r := g.results[wid]
	if r == nil || r.Zero() {
		return nil
	}
	return g.def.Clone(r)
}

// OpenWids lists windows that still hold uncollected results.
func (g *Graph) OpenWids() []int64 {
	wids := make([]int64, 0, len(g.endWids))
	for wid := range g.endWids {
		wids = append(wids, wid)
	}
	slices.Sort(wids)
	return wids
}

// Advance folds pending invalidations and expires panes as if an event
// at time t had been observed, letting the engine reclaim memory in
// partitions that stop receiving events.
func (g *Graph) Advance(t event.Time) {
	g.cs.cur = g
	g.foldPending(t)
	g.expire(t)
}

// lazyResult recomputes a window's final aggregate by scanning END
// vertices and filtering Case-2 invalidated ones (SEQ(Pi, NOT N): a
// trend of N invalidates all earlier events, paper §5.1 Case 2; the
// final aggregate may only include END events no negative trend
// disqualified).
func (g *Graph) lazyResult(wid int64) *aggregate.Payload {
	// Make sure every record that could affect this window is folded:
	// negative trends inside the window end before the window does.
	g.foldPending(g.win.End(wid))
	var r *aggregate.Payload
	start, end := g.win.Start(wid), g.win.End(wid)
	for _, pn := range g.panes {
		if pn.end <= start || pn.start >= end {
			continue
		}
		for sIdx, tree := range pn.trees {
			if !g.spec.Tmpl.States[sIdx].End {
				continue
			}
			tree.Ascend(func(it btree.Item[*Vertex]) bool {
				v := it.Val
				if wid < v.FirstWid || wid >= v.FirstWid+int64(len(v.Aggs)) {
					return true
				}
				p := v.Aggs[wid-v.FirstWid]
				if p == nil {
					return true
				}
				for _, d := range g.deps {
					if d.kind != depCase2 {
						continue
					}
					if ws, ok := d.maxStart[wid]; ok && int64(v.Ev.Time) < ws {
						return true
					}
				}
				if r == nil {
					r = g.cs.pool.Get()
				}
				g.def.Merge(r, p)
				return true
			})
		}
	}
	return r
}

// FoldAll applies every pending invalidation record; call at end of
// stream before collecting remaining windows.
func (g *Graph) FoldAll() {
	g.cs.cur = g
	g.foldPending(1<<62 - 1)
}

// Stats returns runtime statistics.
func (g *Graph) Stats() GraphStats { return g.stats }
