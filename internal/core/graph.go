package core

import (
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
)

// Vertex is a GRETA graph vertex: one matched event in one state, with
// one aggregate payload per window the event falls into (paper
// Definition 3 extended with sub-graph sharing, §6).
type Vertex struct {
	Ev       *event.Event
	State    int
	FirstWid int64
	// Aggs[i] is the payload for window FirstWid+i; nil when the vertex
	// carries no trends in that window (or is invalid there).
	Aggs []*aggregate.Payload
	// closed marks vertices that already have an outgoing edge, used by
	// skip-till-next-match semantics (§9): an event extends the first
	// matchable continuation only.
	closed bool
}

// pane is one Time Pane (paper §7): all vertices of a fixed time
// interval, indexed per state by a Vertex Tree.
type pane struct {
	idx        int64
	start, end event.Time
	trees      map[int]*btree.Tree[*Vertex]
	vertices   int
}

// depKind classifies a graph dependency per paper §5.1.
type depKind uint8

const (
	depCase1 depKind = iota // SEQ(Pi, NOT N, Pj): previous and following
	depCase2                // SEQ(Pi, NOT N): previous only
	depCase3                // SEQ(NOT N, Pj): following only
)

// invalRecord is one finished negative trend batch: all trends of the
// negative graph ending at one END vertex (Definition 5). starts[i] is
// the latest trend start time in window firstWid+i (aggregate.NoStart
// when the window holds no finished trend).
type invalRecord struct {
	end      event.Time
	firstWid int64
	starts   []int64
}

// depLink connects a parent graph to one of its negative graphs and
// accumulates invalidation watermarks (the runtime realization of the
// Graph Dependencies Hash Table, paper §7).
type depLink struct {
	kind depKind
	// prevStates / follStates are state indices in the parent template;
	// nil means "all states" (Cases 2 and 3 invalidate whole events).
	prevStates map[int]bool
	follStates map[int]bool
	// prunable is true when events of the previous states may precede
	// only events of the following states, enabling invalid event
	// pruning (Theorem 5.1).
	prunable bool

	pending []invalRecord
	// maxStart per window: parent events older than this are invalid
	// (Cases 1 and 2). minEnd per window: parent events newer than this
	// are invalid (Case 3).
	maxStart map[int64]int64
	minEnd   map[int64]event.Time
}

// GraphStats tracks runtime costs for the evaluation harness.
type GraphStats struct {
	Events       uint64 // events offered to the graph
	Vertices     uint64 // vertices currently stored
	PeakVertices uint64
	Inserted     uint64 // vertices ever inserted
	Edges        uint64 // edges traversed (each exactly once, §7)
	Payloads     uint64 // window payloads currently held
	PeakPayloads uint64
}

// Graph is a runtime GRETA graph for one sub-pattern in one stream
// partition.
type Graph struct {
	spec     *GraphSpec
	def      *aggregate.Def
	win      window.Spec
	sem      query.Semantics
	paneSize event.Time

	panes []*pane

	// results accumulates final aggregates per window incrementally
	// (Theorem 4.3(2)); graphs with a Case-2 dependency compute finals
	// lazily at window close instead (see closeWindow).
	results   map[int64]*aggregate.Payload
	lazyFinal bool
	// endWids records windows that received at least one END vertex, so
	// lazy finalization knows which windows may have results.
	endWids map[int64]bool

	deps       []*depLink // dependencies where this graph is the parent
	parentLink *depLink   // for negative graphs: the parent's depLink

	prevTime    event.Time // last processed event time
	lastEventID uint64     // previous stream event id (contiguous semantics)

	stats GraphStats
}

// newGraph builds the runtime graph for spec.
func newGraph(spec *GraphSpec, win window.Spec, sem query.Semantics) *Graph {
	return &Graph{
		spec:     spec,
		def:      spec.Def,
		win:      win,
		sem:      sem,
		paneSize: win.PaneSize(),
		results:  map[int64]*aggregate.Payload{},
		endWids:  map[int64]bool{},
		prevTime: -1,
	}
}

// addDep wires a negative child graph into the parent.
func (g *Graph) addDep(child *Graph, childSpec *GraphSpec) {
	link := &depLink{
		maxStart: map[int64]int64{},
		minEnd:   map[int64]event.Time{},
	}
	switch {
	case childSpec.Previous != "" && childSpec.Following != "":
		link.kind = depCase1
	case childSpec.Previous != "":
		link.kind = depCase2
		g.lazyFinal = true
	default:
		link.kind = depCase3
	}
	if link.kind == depCase1 {
		link.prevStates = map[int]bool{}
		link.follStates = map[int]bool{}
		for _, st := range g.spec.Tmpl.States {
			if hasLabel(st, childSpec.Previous) {
				link.prevStates[st.Idx] = true
			}
			if hasLabel(st, childSpec.Following) {
				link.follStates[st.Idx] = true
			}
		}
		// Invalid event pruning is safe when previous-state events may
		// precede only following-state events (Theorem 5.1).
		link.prunable = true
		for prev := range link.prevStates {
			for _, st := range g.spec.Tmpl.States {
				for _, ps := range st.Preds {
					if ps == prev && !link.follStates[st.Idx] {
						link.prunable = false
					}
				}
			}
		}
	}
	g.deps = append(g.deps, link)
	child.parentLink = link
}

// Process offers one stream event to the graph. Events must arrive in
// non-decreasing time order. Window results are collected by the
// engine through CollectWindow; the graph only maintains state.
func (g *Graph) Process(e *event.Event) {
	g.stats.Events++
	g.foldPending(e.Time)
	g.expire(e.Time)

	states := g.spec.Tmpl.ByType[e.Type]
	if len(states) != 0 {
		lo, hi := g.win.Wids(e.Time)
		for _, sIdx := range states {
			g.insertAt(e, sIdx, lo, hi)
		}
	}
	g.prevTime = e.Time
	g.lastEventID = e.ID
}

// insertAt attempts to insert event e as a vertex of state sIdx
// (Algorithm 2 generalized: per-state, per-window, all aggregates).
func (g *Graph) insertAt(e *event.Event, sIdx int, lo, hi int64) {
	st := g.spec.Tmpl.States[sIdx]
	for _, vp := range g.spec.VertexPreds[sIdx] {
		if !vp.Eval(e) {
			return
		}
	}
	k := int(hi - lo + 1)
	// Case-3 invalidation: the event is unusable in windows containing a
	// finished negative trend that ended before it (paper Fig. 8(b)).
	validWid := func(wid int64) bool {
		for _, d := range g.deps {
			if d.kind != depCase3 {
				continue
			}
			if te, ok := d.minEnd[wid]; ok && te < e.Time {
				return false
			}
		}
		return true
	}
	payloads := make([]*aggregate.Payload, k)
	gotPred := false
	for _, psIdx := range st.Preds {
		g.forEachCandidate(e, psIdx, sIdx, lo, func(p *Vertex) {
			connected := false
			pHi := p.FirstWid + int64(len(p.Aggs)) - 1
			shLo, shHi := lo, pHi
			if shHi > hi {
				shHi = hi
			}
			for wid := shLo; wid <= shHi; wid++ {
				pp := p.Aggs[wid-p.FirstWid]
				if pp == nil || !validWid(wid) {
					continue
				}
				if g.invalidPred(p, sIdx, wid, e.Time) {
					continue
				}
				i := int(wid - lo)
				if payloads[i] == nil {
					payloads[i] = g.def.New()
				}
				g.def.AddPred(payloads[i], pp)
				connected = true
			}
			if connected {
				g.stats.Edges++
				gotPred = true
				if g.sem == query.SkipTillNextMatch {
					p.closed = true
				}
			}
		})
	}
	if !st.Start && !gotPred {
		// A MID or END event without predecessor events extends no trend
		// and is not inserted (Algorithm 2 line 5).
		return
	}
	hasPayload := false
	for i := 0; i < k; i++ {
		wid := lo + int64(i)
		if !validWid(wid) {
			payloads[i] = nil
			continue
		}
		if st.Start {
			if payloads[i] == nil {
				payloads[i] = g.def.New()
			}
			g.def.OnStart(payloads[i], e.Time)
		}
		if payloads[i] != nil {
			g.def.OnEvent(payloads[i], e)
			hasPayload = true
		}
	}
	if !hasPayload {
		return
	}
	v := &Vertex{Ev: e, State: sIdx, FirstWid: lo, Aggs: payloads}
	if st.End {
		g.onEndVertex(v, lo, hi)
	}
	// Finished trend pruning (paper §5.2): an END vertex of a negative
	// graph whose state has no outgoing transitions can never extend a
	// trend; it has done its invalidation work and is not stored.
	if g.spec.Negative && st.End && !g.hasSuccessors(sIdx) {
		return
	}
	g.store(v)
}

// hasSuccessors reports whether any state lists sIdx as a predecessor.
func (g *Graph) hasSuccessors(sIdx int) bool {
	for _, st := range g.spec.Tmpl.States {
		for _, p := range st.Preds {
			if p == sIdx {
				return true
			}
		}
	}
	return false
}

// onEndVertex folds an END vertex into final aggregates (positive
// graphs, Theorem 4.3(2)) or pushes an invalidation record to the
// parent (negative graphs, Definition 5).
func (g *Graph) onEndVertex(v *Vertex, lo, hi int64) {
	if g.spec.Negative {
		if g.parentLink == nil {
			return
		}
		rec := invalRecord{end: v.Ev.Time, firstWid: lo, starts: make([]int64, len(v.Aggs))}
		any := false
		for i, p := range v.Aggs {
			if p == nil || p.Zero() {
				rec.starts[i] = aggregate.NoStart
				continue
			}
			rec.starts[i] = p.MaxStart
			any = true
		}
		if any {
			g.parentLink.pending = append(g.parentLink.pending, rec)
		}
		return
	}
	for i, p := range v.Aggs {
		if p == nil {
			continue
		}
		wid := lo + int64(i)
		g.endWids[wid] = true
		if g.lazyFinal {
			continue
		}
		r := g.results[wid]
		if r == nil {
			r = g.def.New()
			g.results[wid] = r
		}
		g.def.Merge(r, p)
	}
	_ = hi // window range is implicit in v.Aggs
}

// invalidPred reports whether predecessor p may not contribute to a new
// event at state sIdx in window wid at time t (Definition 5).
func (g *Graph) invalidPred(p *Vertex, sIdx int, wid int64, t event.Time) bool {
	for _, d := range g.deps {
		switch d.kind {
		case depCase1:
			if d.prevStates[p.State] && d.follStates[sIdx] {
				if ws, ok := d.maxStart[wid]; ok && int64(p.Ev.Time) < ws {
					return true
				}
			}
		case depCase2:
			if ws, ok := d.maxStart[wid]; ok && int64(p.Ev.Time) < ws {
				return true
			}
		case depCase3:
			// Case-3 invalidation nulls the vertex's window payloads at
			// insertion; nothing to re-check here.
		}
	}
	return false
}

// foldPending applies invalidation records of finished negative trends
// whose end time lies strictly before t ("events of the following event
// type that will arrive after en.time", Definition 5).
func (g *Graph) foldPending(t event.Time) {
	for _, d := range g.deps {
		n := 0
		advanced := false
		for _, rec := range d.pending {
			if rec.end >= t {
				d.pending[n] = rec
				n++
				continue
			}
			for i, s := range rec.starts {
				if s == aggregate.NoStart {
					continue
				}
				wid := rec.firstWid + int64(i)
				if cur, ok := d.maxStart[wid]; !ok || s > cur {
					d.maxStart[wid] = s
					advanced = true
				}
				if cur, ok := d.minEnd[wid]; !ok || rec.end < cur {
					d.minEnd[wid] = rec.end
				}
			}
		}
		d.pending = d.pending[:n]
		if advanced && d.kind == depCase1 && d.prunable {
			g.pruneInvalid(d)
		}
	}
}

// pruneInvalid physically removes previous-state vertices that are
// invalid in every window they belong to (invalid event pruning,
// Theorem 5.1).
func (g *Graph) pruneInvalid(d *depLink) {
	for _, pn := range g.panes {
		for sIdx := range d.prevStates {
			tree := pn.trees[sIdx]
			if tree == nil {
				continue
			}
			var doomed []*Vertex
			tree.Ascend(func(it btree.Item[*Vertex]) bool {
				v := it.Val
				dead := true
				for i := range v.Aggs {
					if v.Aggs[i] == nil {
						continue
					}
					wid := v.FirstWid + int64(i)
					ws, ok := d.maxStart[wid]
					if !ok || int64(v.Ev.Time) >= ws {
						dead = false
						break
					}
				}
				if dead {
					doomed = append(doomed, v)
				}
				return true
			})
			for _, v := range doomed {
				if tree.Delete(g.sortKey(v.State, v.Ev), v.Ev.ID) {
					pn.vertices--
					g.stats.Vertices--
					g.stats.Payloads -= uint64(countPayloads(v))
				}
			}
		}
	}
}

func countPayloads(v *Vertex) int {
	n := 0
	for _, p := range v.Aggs {
		if p != nil {
			n++
		}
	}
	return n
}

// forEachCandidate scans stored vertices of state psIdx that may
// precede event e at state sIdx, using the Vertex Tree range for the
// compiled edge predicate when available (paper §7) and re-checking all
// edge predicates per candidate.
func (g *Graph) forEachCandidate(e *event.Event, psIdx, sIdx int, loWid int64, visit func(*Vertex)) {
	ps := g.spec.Tmpl.States[psIdx]
	sortAttr := g.spec.SortAttr[psIdx]
	// Applicable edge predicates for the transition ps -> s.
	var eps []*predicate.Edge
	for _, ep := range g.spec.EdgePreds[sIdx] {
		if hasLabel(ps, ep.From) {
			eps = append(eps, ep)
		}
	}
	// Range bounds on the predecessor sort attribute.
	rlo, rhi := math.Inf(-1), math.Inf(1)
	rloIncl, rhiIncl := true, true
	useRange := false
	timeSorted := sortAttr == ""
	if timeSorted {
		// Trees without an edge-predicate attribute sort by time; bound
		// the scan by strict adjacency p.time < e.time.
		rhi, rhiIncl = float64(e.Time), false
		useRange = true
	} else {
		for _, pe := range eps {
			r := pe.Range
			if r == nil || r.Attr != sortAttr {
				continue
			}
			lo2, hi2, loI, hiI, ok := r.Bounds(e)
			if !ok {
				return
			}
			if lo2 > rlo || (lo2 == rlo && !loI) {
				rlo, rloIncl = lo2, loI
			}
			if hi2 < rhi || (hi2 == rhi && !hiI) {
				rhi, rhiIncl = hi2, hiI
			}
			useRange = true
		}
	}
	oldest := g.win.Start(loWid)
	for _, pn := range g.panes {
		if pn.end <= oldest || pn.start > e.Time {
			continue
		}
		tree := pn.trees[psIdx]
		if tree == nil {
			continue
		}
		scan := func(it btree.Item[*Vertex]) bool {
			p := it.Val
			if p.Ev.Time >= e.Time {
				// Adjacent trend events have strictly increasing time
				// (Definition 1).
				return true
			}
			if g.sem == query.Contiguous && p.Ev.ID != g.lastEventID {
				return true
			}
			if g.sem == query.SkipTillNextMatch && p.closed {
				return true
			}
			for _, pe := range eps {
				if !pe.Eval(p.Ev, e) {
					return true
				}
			}
			visit(p)
			return true
		}
		if useRange {
			tree.AscendRange(rlo, rhi, rloIncl, rhiIncl, scan)
		} else {
			tree.Ascend(scan)
		}
	}
}

// store places a vertex into the Vertex Tree of the current pane.
func (g *Graph) store(v *Vertex) {
	pn := g.paneFor(v.Ev.Time)
	tree := pn.trees[v.State]
	if tree == nil {
		tree = btree.New[*Vertex]()
		pn.trees[v.State] = tree
	}
	tree.Insert(g.sortKey(v.State, v.Ev), v.Ev.ID, v)
	pn.vertices++
	g.stats.Vertices++
	g.stats.Inserted++
	g.stats.Payloads += uint64(countPayloads(v))
	if g.stats.Vertices > g.stats.PeakVertices {
		g.stats.PeakVertices = g.stats.Vertices
	}
	if g.stats.Payloads > g.stats.PeakPayloads {
		g.stats.PeakPayloads = g.stats.Payloads
	}
}

// sortKey computes the Vertex Tree key of an event in a state: the
// compiled edge-predicate attribute when one exists, time otherwise.
func (g *Graph) sortKey(sIdx int, e *event.Event) float64 {
	attr := g.spec.SortAttr[sIdx]
	if attr == "" {
		return float64(e.Time)
	}
	if v, ok := e.Attrs[attr]; ok {
		return v
	}
	return 0
}

// paneFor returns (creating if needed) the pane containing time t.
// Events arrive in order, so t lands in the last pane or a new one.
func (g *Graph) paneFor(t event.Time) *pane {
	idx := t / g.paneSize
	if n := len(g.panes); n > 0 && g.panes[n-1].idx == idx {
		return g.panes[n-1]
	}
	pn := &pane{
		idx:   idx,
		start: idx * g.paneSize,
		end:   (idx + 1) * g.paneSize,
		trees: map[int]*btree.Tree[*Vertex]{},
	}
	g.panes = append(g.panes, pn)
	return pn
}

// expire drops panes that can no longer contribute to any open window
// (paper §7: "a whole pane with its associated data structures is
// deleted after the pane has contributed to all windows").
func (g *Graph) expire(t event.Time) {
	oldest := g.win.OldestNeeded(t)
	n := 0
	for _, pn := range g.panes {
		if pn.end <= oldest {
			g.stats.Vertices -= uint64(pn.vertices)
			for _, tree := range pn.trees {
				tree.Ascend(func(it btree.Item[*Vertex]) bool {
					g.stats.Payloads -= uint64(countPayloads(it.Val))
					return true
				})
			}
			continue
		}
		g.panes[n] = pn
		n++
	}
	for i := n; i < len(g.panes); i++ {
		g.panes[i] = nil
	}
	g.panes = g.panes[:n]
}

// CollectWindow computes, removes, and returns the final aggregate of
// one window, or nil when the window holds no finished trends. The
// engine calls it once per window when the stream time passes the
// window's end (or at flush).
func (g *Graph) CollectWindow(wid int64) *aggregate.Payload {
	if g.spec.Negative || !g.endWids[wid] {
		return nil
	}
	delete(g.endWids, wid)
	var r *aggregate.Payload
	if g.lazyFinal {
		r = g.lazyResult(wid)
	} else {
		r = g.results[wid]
		delete(g.results, wid)
	}
	if r == nil || r.Zero() {
		return nil
	}
	return r
}

// OpenWids lists windows that still hold uncollected results.
func (g *Graph) OpenWids() []int64 {
	wids := make([]int64, 0, len(g.endWids))
	for wid := range g.endWids {
		wids = append(wids, wid)
	}
	sortInt64s(wids)
	return wids
}

// Advance folds pending invalidations and expires panes as if an event
// at time t had been observed, letting the engine reclaim memory in
// partitions that stop receiving events.
func (g *Graph) Advance(t event.Time) {
	g.foldPending(t)
	g.expire(t)
}

// lazyResult recomputes a window's final aggregate by scanning END
// vertices and filtering Case-2 invalidated ones (SEQ(Pi, NOT N): a
// trend of N invalidates all earlier events, paper §5.1 Case 2; the
// final aggregate may only include END events no negative trend
// disqualified).
func (g *Graph) lazyResult(wid int64) *aggregate.Payload {
	// Make sure every record that could affect this window is folded:
	// negative trends inside the window end before the window does.
	g.foldPending(g.win.End(wid))
	var r *aggregate.Payload
	start, end := g.win.Start(wid), g.win.End(wid)
	for _, pn := range g.panes {
		if pn.end <= start || pn.start >= end {
			continue
		}
		for sIdx, tree := range pn.trees {
			if !g.spec.Tmpl.States[sIdx].End {
				continue
			}
			tree.Ascend(func(it btree.Item[*Vertex]) bool {
				v := it.Val
				if wid < v.FirstWid || wid >= v.FirstWid+int64(len(v.Aggs)) {
					return true
				}
				p := v.Aggs[wid-v.FirstWid]
				if p == nil {
					return true
				}
				for _, d := range g.deps {
					if d.kind != depCase2 {
						continue
					}
					if ws, ok := d.maxStart[wid]; ok && int64(v.Ev.Time) < ws {
						return true
					}
				}
				if r == nil {
					r = g.def.New()
				}
				g.def.Merge(r, p)
				return true
			})
		}
	}
	return r
}

// FoldAll applies every pending invalidation record; call at end of
// stream before collecting remaining windows.
func (g *Graph) FoldAll() {
	g.foldPending(1<<62 - 1)
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Stats returns runtime statistics.
func (g *Graph) Stats() GraphStats { return g.stats }
