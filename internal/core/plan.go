// Package core implements the GRETA runtime (paper §4.2, §5.2, §6, §7):
// the GRETA graph that compactly encodes all event trends of a query
// window, dynamic aggregate propagation along its edges, sliding-window
// sharing of sub-graphs, negation through dependent graphs with
// invalidation watermarks, stream partitioning for grouping, and the
// time-driven scheduler for inter-dependent graphs.
package core

import (
	"fmt"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/template"
	"github.com/greta-cep/greta/internal/window"
)

// GraphSpec is the static configuration of one GRETA graph: the
// template of a positive or negative sub-pattern together with its
// compiled predicates and aggregation definition (the per-sub-pattern
// part of the GRETA configuration, paper Fig. 4).
type GraphSpec struct {
	Idx      int
	Tmpl     *template.Template
	Def      *aggregate.Def
	Negative bool
	// Previous / Following are the connection aliases in the parent
	// graph (paper §5.1): events of the Previous alias arriving before a
	// negative match may no longer connect to events of the Following
	// alias arriving after it. Either may be empty (Cases 2 and 3).
	Previous  string
	Following string
	Parent    int   // index of the parent GraphSpec, -1 for the root
	Deps      []int // negative sub-patterns constraining this graph

	// VertexPreds holds local predicates per state index.
	VertexPreds map[int][]*predicate.Vertex
	// EdgePreds holds edge predicates keyed by destination state index;
	// each entry applies to edges whose source state carries the
	// predicate's From label.
	EdgePreds map[int][]*predicate.Edge
	// SortAttr is the Vertex Tree sort attribute per state index; empty
	// means the tree is sorted by time.
	SortAttr map[int]string
}

// SpecSlot links a RETURN aggregate to its payload slots.
type SpecSlot struct {
	Spec  aggregate.Spec
	Slot  int
	Slot2 int
}

// Plan is the full GRETA configuration of a query: the output of the
// static query analyzer (paper Fig. 4).
type Plan struct {
	Query    *query.Query
	Mode     aggregate.Mode
	Window   window.Spec
	GroupBy  []string
	Specs    []SpecSlot
	Subs     []*GraphSpec // Subs[0] is the root positive graph
	Branches []*Plan      // disjunction branches (Kleene star / optional / OR), nil for simple plans
	Products []*Plan      // inclusion–exclusion intersection plans aligned with subset masks
	Masks    []uint       // subset masks for Products (|mask| >= 2)
	Conjunct bool         // top-level AND composition (paper §9)
	Sem      query.Semantics
}

// NewPlan compiles a parsed query into a GRETA configuration:
// syntactic-sugar expansion (§9), pattern split (§5.1, Algorithm 3),
// template construction (§4.1, Algorithm 1), predicate classification
// (§6), and aggregation slot planning (Theorem 9.1).
func NewPlan(q *query.Query, mode aggregate.Mode) (*Plan, error) {
	if q.MinLen > 1 {
		unrolled, err := pattern.UnrollMinLength(q.Pattern, q.MinLen)
		if err != nil {
			return nil, err
		}
		q2 := *q
		q2.Pattern = unrolled
		q2.MinLen = 0
		q = &q2
	}
	if q.Pattern.Kind == pattern.KindAnd {
		return newConjunctionPlan(q, mode)
	}
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, err
	}
	if len(branches) == 1 {
		return newSimplePlan(q, branches[0], mode)
	}
	return newDisjunctionPlan(q, branches, mode)
}

// newSimplePlan compiles a single sugar-free branch.
func newSimplePlan(q *query.Query, branch *pattern.Node, mode aggregate.Mode) (*Plan, error) {
	p := &Plan{Query: q, Mode: mode, Window: q.Window, GroupBy: q.GroupBy, Sem: q.Semantics}
	subs, err := pattern.Split(branch)
	if err != nil {
		return nil, err
	}
	aliases := patternAliases(q.Pattern)
	cls, err := predicate.Classify(q.Where, aliases)
	if err != nil {
		return nil, err
	}
	rootDef := &aggregate.Def{Mode: mode}
	for _, spec := range q.Aggs {
		s1, s2 := rootDef.Plan(spec)
		p.Specs = append(p.Specs, SpecSlot{spec, s1, s2})
	}
	for i, sub := range subs {
		tmpl, err := template.Build(sub.Pattern)
		if err != nil {
			return nil, err
		}
		gs := &GraphSpec{
			Idx:       i,
			Tmpl:      tmpl,
			Negative:  sub.Negative,
			Previous:  sub.Previous,
			Following: sub.Following,
			Parent:    sub.Parent,
			Deps:      sub.Deps,
		}
		if sub.Negative {
			// Negative graphs only need trend start times to compute
			// invalidation watermarks (Definition 5).
			gs.Def = &aggregate.Def{Mode: mode, TrackStart: true}
		} else {
			gs.Def = rootDef
		}
		attachPredicates(gs, cls)
		p.Subs = append(p.Subs, gs)
	}
	return p, nil
}

// attachPredicates distributes classified predicates onto the states of
// a graph spec and chooses each state's Vertex Tree sort attribute from
// the first range-compilable edge predicate leaving it (paper §7: "we
// utilize a tree index ... sort events by the most selective
// predicate").
func attachPredicates(gs *GraphSpec, cls *predicate.Classified) {
	gs.VertexPreds = map[int][]*predicate.Vertex{}
	gs.EdgePreds = map[int][]*predicate.Edge{}
	gs.SortAttr = map[int]string{}
	for _, st := range gs.Tmpl.States {
		for _, vp := range cls.Vertex {
			if vp.Alias == "" || hasLabel(st, vp.Alias) {
				gs.VertexPreds[st.Idx] = append(gs.VertexPreds[st.Idx], vp)
			}
		}
	}
	for _, ep := range cls.Edge {
		for _, to := range gs.Tmpl.States {
			if !hasLabel(to, ep.To) {
				continue
			}
			applies := false
			for _, fromIdx := range to.Preds {
				if hasLabel(gs.Tmpl.States[fromIdx], ep.From) {
					applies = true
					break
				}
			}
			if applies {
				gs.EdgePreds[to.Idx] = append(gs.EdgePreds[to.Idx], ep)
			}
		}
	}
	// Sort attribute per source state: pick the attribute of a
	// range-compilable edge predicate out of this state.
	for _, from := range gs.Tmpl.States {
		for _, eps := range gs.EdgePreds {
			for _, ep := range eps {
				if ep.Range != nil && hasLabel(from, ep.From) {
					if _, done := gs.SortAttr[from.Idx]; !done {
						gs.SortAttr[from.Idx] = ep.Range.Attr
					}
				}
			}
		}
	}
}

func hasLabel(st *template.State, label string) bool {
	for _, l := range st.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// newDisjunctionPlan compiles a pattern whose expansion has several
// branches: each branch gets its own sub-plan, and every subset of two
// or more branches gets an intersection (product-template) sub-plan so
// final counts can be combined by inclusion–exclusion (paper §9).
func newDisjunctionPlan(q *query.Query, branches []*pattern.Node, mode aggregate.Mode) (*Plan, error) {
	if len(branches) > maxBranches {
		return nil, fmt.Errorf("core: disjunction with %d branches exceeds the supported maximum %d", len(branches), maxBranches)
	}
	for _, b := range branches {
		if !b.IsPositive() {
			return nil, fmt.Errorf("core: disjunction/star/optional combined with negation is not supported (branch %s)", b)
		}
	}
	p := &Plan{Query: q, Mode: mode, Window: q.Window, GroupBy: q.GroupBy, Sem: q.Semantics}
	def := &aggregate.Def{Mode: mode}
	for _, spec := range q.Aggs {
		s1, s2 := def.Plan(spec)
		p.Specs = append(p.Specs, SpecSlot{spec, s1, s2})
	}
	for _, b := range branches {
		bp, err := newSimplePlan(q, b, mode)
		if err != nil {
			return nil, err
		}
		p.Branches = append(p.Branches, bp)
	}
	// Intersection plans for every subset of size >= 2, built by
	// iterated template products.
	tmpls := make([]*template.Template, len(branches))
	for i := range branches {
		tmpls[i] = p.Branches[i].Subs[0].Tmpl
	}
	aliases := patternAliases(q.Pattern)
	cls, err := predicate.Classify(q.Where, aliases)
	if err != nil {
		return nil, err
	}
	for mask := uint(1); mask < 1<<uint(len(branches)); mask++ {
		if popcount(mask) < 2 {
			continue
		}
		var prod *template.Template
		for i := 0; i < len(branches); i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if prod == nil {
				prod = tmpls[i]
			} else {
				prod = template.Product(prod, tmpls[i])
			}
		}
		sub := &Plan{Query: q, Mode: mode, Window: q.Window, GroupBy: q.GroupBy, Sem: q.Semantics, Specs: p.Specs}
		gs := &GraphSpec{Idx: 0, Tmpl: prod, Def: def, Parent: -1}
		attachPredicates(gs, cls)
		sub.Subs = []*GraphSpec{gs}
		p.Products = append(p.Products, sub)
		p.Masks = append(p.Masks, mask)
	}
	return p, nil
}

// maxBranches bounds inclusion–exclusion blow-up (2^maxBranches plans).
const maxBranches = 4

func popcount(x uint) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// newConjunctionPlan compiles a top-level AND of positive patterns
// (paper §9). Counts are composed from the two branch counts and their
// intersection count; only COUNT(*) is defined by the paper for
// conjunction.
func newConjunctionPlan(q *query.Query, mode aggregate.Mode) (*Plan, error) {
	if len(q.Pattern.Children) != 2 {
		return nil, fmt.Errorf("core: conjunction of %d patterns is not supported; use nested binary AND", len(q.Pattern.Children))
	}
	for _, spec := range q.Aggs {
		if spec.Kind != aggregate.CountStar {
			return nil, fmt.Errorf("core: conjunction supports COUNT(*) only, got %s", spec)
		}
	}
	branches := q.Pattern.Children
	p := &Plan{Query: q, Mode: mode, Window: q.Window, GroupBy: q.GroupBy, Sem: q.Semantics, Conjunct: true}
	def := &aggregate.Def{Mode: mode}
	for _, spec := range q.Aggs {
		s1, s2 := def.Plan(spec)
		p.Specs = append(p.Specs, SpecSlot{spec, s1, s2})
	}
	for _, b := range branches {
		if !b.IsPositive() {
			return nil, fmt.Errorf("core: conjunction with negation is not supported")
		}
		bp, err := newSimplePlan(q, b, mode)
		if err != nil {
			return nil, err
		}
		p.Branches = append(p.Branches, bp)
	}
	aliases := patternAliases(q.Pattern)
	cls, err := predicate.Classify(q.Where, aliases)
	if err != nil {
		return nil, err
	}
	prod := template.Product(p.Branches[0].Subs[0].Tmpl, p.Branches[1].Subs[0].Tmpl)
	sub := &Plan{Query: q, Mode: mode, Window: q.Window, GroupBy: q.GroupBy, Sem: q.Semantics, Specs: p.Specs}
	gs := &GraphSpec{Idx: 0, Tmpl: prod, Def: def, Parent: -1}
	attachPredicates(gs, cls)
	sub.Subs = []*GraphSpec{gs}
	p.Products = []*Plan{sub}
	p.Masks = []uint{3}
	return p, nil
}

// Simple reports whether the plan is a single positive-or-negated
// pattern plan (no composition).
func (p *Plan) Simple() bool { return len(p.Branches) == 0 }

// Def returns the aggregation definition of the root positive graph.
func (p *Plan) Def() *aggregate.Def {
	if p.Simple() {
		return p.Subs[0].Def
	}
	return p.Branches[0].Subs[0].Def
}

// patternAliases collects the alias and label names predicates may
// reference: every event leaf's unique alias plus its user-facing label
// (set by pattern rewrites such as minimal-length unrolling).
func patternAliases(p *pattern.Node) map[string]bool {
	aliases := map[string]bool{}
	for _, leaf := range p.EventNodes() {
		aliases[leaf.Alias] = true
		if leaf.Label != "" {
			aliases[leaf.Label] = true
		}
	}
	return aliases
}
