package core_test

import (
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

func newEngine(t *testing.T, qsrc string) *core.Engine {
	t.Helper()
	q, err := query.Parse(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(plan)
}

// TestStreamingEmission: results are emitted as soon as their window
// closes (paper: "instantaneously returned at the end of each window"),
// not only at flush.
func TestStreamingEmission(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10")
	var emitted []int64
	eng.OnResult(func(r core.Result) { emitted = append(emitted, r.Wid) })
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("A", 5, nil)
	b.Add("A", 12, nil) // closes window 0
	b.Add("A", 25, nil) // closes window 1
	for _, ev := range b.Events() {
		eng.Process(ev)
	}
	if len(emitted) != 2 || emitted[0] != 0 || emitted[1] != 1 {
		t.Fatalf("emitted before flush = %v, want [0 1]", emitted)
	}
	eng.Flush()
	if len(emitted) != 3 || emitted[2] != 2 {
		t.Fatalf("after flush = %v, want [0 1 2]", emitted)
	}
}

// TestEmptyWindowsSkipped: windows without matches emit nothing.
func TestEmptyWindowsSkipped(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 5 SLIDE 5")
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("B", 2, nil) // window 0 matches
	b.Add("A", 7, nil) // window 1: A only -> no match
	b.Add("B", 22, nil)
	for _, ev := range b.Events() {
		eng.Process(ev)
	}
	eng.Flush()
	rs := eng.Results()
	if len(rs) != 1 || rs[0].Wid != 0 {
		t.Fatalf("results = %+v, want only window 0", rs)
	}
}

// TestPaneExpiry: with a sliding window over a long stream, expired
// panes are dropped so live vertices stay bounded by the window
// horizon, far below the total insertion count.
func TestPaneExpiry(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 5")
	var b event.Builder
	for i := 0; i < 2000; i++ {
		b.Add("A", event.Time(i), nil)
	}
	eng.Run(b.Stream())
	st := eng.Stats()
	if st.Inserted != 2000 {
		t.Fatalf("inserted = %d", st.Inserted)
	}
	// Window horizon holds at most ~15 ticks of events (within + slide
	// rounding); peak live vertices must be a small multiple of that.
	if st.PeakVertices > 64 {
		t.Errorf("peak vertices = %d, expected bounded by the window horizon", st.PeakVertices)
	}
}

// TestDeterminism: two runs over the same stream give identical results.
func TestDeterminism(t *testing.T) {
	qsrc := "RETURN COUNT(*), SUM(A.x) PATTERN (SEQ(A+, B))+ WHERE A.x < NEXT(A).x WITHIN 12 SLIDE 4"
	rng := rand.New(rand.NewSource(9))
	evs := randStream(rng, 40)
	run1 := newEngine(t, qsrc)
	run1.Run(event.NewSliceStream(evs))
	run2 := newEngine(t, qsrc)
	run2.Run(event.NewSliceStream(evs))
	a, b := run1.Results(), run2.Results()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
			t.Fatalf("keys differ at %d", i)
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("values differ at %d/%d", i, j)
			}
		}
	}
}

// TestEdgeCountFormula: for A+ over n events with distinct timestamps
// and no predicates, each pair is an edge: n(n-1)/2 (each edge
// traversed exactly once, paper §7).
func TestEdgeCountFormula(t *testing.T) {
	for _, n := range []int{1, 2, 10, 50} {
		eng := newEngine(t, "RETURN COUNT(*) PATTERN A+")
		var b event.Builder
		for i := 0; i < n; i++ {
			b.Add("A", event.Time(i+1), nil)
		}
		eng.Run(b.Stream())
		want := uint64(n * (n - 1) / 2)
		if got := eng.Stats().Edges; got != want {
			t.Errorf("n=%d: edges = %d, want %d", n, got, want)
		}
	}
}

// TestEqualTimestampsNoEdge: adjacent trend events need strictly
// increasing timestamps (Definition 1).
func TestEqualTimestampsNoEdge(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN A+")
	var b event.Builder
	b.Add("A", 3, nil)
	b.Add("A", 3, nil)
	b.Add("A", 3, nil)
	eng.Run(b.Stream())
	rs := eng.Results()
	if len(rs) != 1 || rs[0].Values[0] != 3 {
		t.Fatalf("results = %+v, want 3 singleton trends", rs)
	}
	if eng.Stats().Edges != 0 {
		t.Errorf("edges = %d, want 0", eng.Stats().Edges)
	}
}

// TestNegationPruning: Case-1 invalid event pruning (Theorem 5.1)
// physically removes invalidated vertices when previous-state events
// may precede only following-state events.
func TestNegationPruning(t *testing.T) {
	// SEQ(A+, NOT C, B): A may precede A and B. pred(B) = {A} but A also
	// precedes A, so pruning is conservative there. Use SEQ(A, NOT C, B):
	// A precedes only B -> prunable.
	eng := newEngine(t, "RETURN COUNT(*) PATTERN SEQ(A, NOT C, B)")
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("A", 2, nil)
	b.Add("C", 3, nil) // invalidates a1, a2 for b's after 3
	b.Add("B", 5, nil) // no valid predecessors -> not inserted
	eng.Run(b.Stream())
	if rs := eng.Results(); len(rs) != 0 {
		t.Fatalf("results = %+v, want none", rs)
	}
}

// TestDependencyOrdering: nested negation — the deepest negative graph
// must see events first. The Fig. 6(d) fixture covers correctness; this
// checks a same-timestamp race: a negative match and a positive event
// at the same timestamp must not invalidate each other (Definition 5 is
// strict).
func TestDependencyOrderingSameTimestamp(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)")
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("C", 2, nil)
	b.Add("B", 2, nil) // same timestamp as the C match: B at 2 is NOT after C's end
	eng.Run(b.Stream())
	rs := eng.Results()
	// C's trend ends at 2; it only blocks B events with time > 2, so
	// (a1, b2) survives.
	if len(rs) != 1 || rs[0].Values[0] != 1 {
		t.Fatalf("results = %+v, want count 1", rs)
	}
}

// TestGroupMergingAcrossPartitions: equivalence partitions trend
// formation; GROUP-BY controls output granularity (Q1 semantics).
func TestGroupMergingAcrossPartitions(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN A+ WHERE [company, sector] GROUP-BY sector")
	var b event.Builder
	add := func(tm event.Time, company, sector string) {
		b.AddStr("A", tm, nil, map[string]string{"company": company, "sector": sector})
	}
	add(1, "ibm", "tech")
	add(2, "ibm", "tech")  // ibm trends: 3
	add(3, "msft", "tech") // msft trends: 1
	add(4, "shell", "oil") // shell trends: 1
	eng.Run(b.Stream())
	rs := eng.Results()
	if len(rs) != 2 {
		t.Fatalf("results = %+v, want tech and oil", rs)
	}
	byGroup := map[string]float64{}
	for _, r := range rs {
		byGroup[r.Group] = r.Values[0]
	}
	if byGroup["tech"] != 4 || byGroup["oil"] != 1 {
		t.Errorf("groups = %v, want tech=4 oil=1", byGroup)
	}
}

// TestStatsPartitions: the partition count reflects distinct keys.
func TestStatsPartitions(t *testing.T) {
	eng := newEngine(t, "RETURN COUNT(*) PATTERN Stock S+ WHERE [company]")
	evs := gen.Stock(gen.DefaultStock(500))
	eng.Run(event.NewSliceStream(evs))
	if got := eng.Stats().Partitions; got != 10 {
		t.Errorf("partitions = %d, want 10", got)
	}
}

// TestMultiOccurrenceWindowed cross-checks the multi-occurrence pattern
// with sliding windows against the oracle.
func TestMultiOccurrenceWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 25; iter++ {
		evs := randStream(rng, 5+rng.Intn(8))
		checkAgainstOracle(t,
			"RETURN COUNT(*) PATTERN SEQ(A+, B, A, A+, B+) WITHIN 12 SLIDE 6",
			evs, aggregate.ModeNative)
	}
}
