package core_test

import (
	"testing"

	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
)

var nextTestID uint64

// evt builds a test event with an auto-assigned id.
func evt(typ event.Type, t event.Time, attrs map[string]float64) *event.Event {
	nextTestID++
	return &event.Event{ID: nextTestID, Type: typ, Time: t, Attrs: attrs}
}

// feed processes events in order and flushes.
func feed(t *testing.T, eng *core.Engine, evs ...*event.Event) {
	t.Helper()
	for _, e := range evs {
		eng.Process(e)
	}
	eng.Flush()
}
