package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// rcSchema mirrors the stock generator's schema; the workload mixes
// schema-bound and schemaless events so restore covers both access
// paths (restored events re-bind to freshly decoded schemas).
var rcSchema = &event.Schema{
	Type:    "Stock",
	Numeric: []string{"price"},
	Strings: []string{"company"},
}

// rcStream generates the randomized stock workload of the fastpath
// differential: small-integer prices (exact float64 sums), occasional
// Halt and News events, same-timestamp bursts, missing and NaN prices,
// and a mix of schema-bound and schemaless events.
func rcStream(rng *rand.Rand, n int, allowNaN bool, haltDiv, newsDiv int) []*event.Event {
	evs := make([]*event.Event, 0, n)
	t := event.Time(1)
	for i := 0; i < n; i++ {
		if rng.Intn(5) >= 2 {
			t += event.Time(1 + rng.Intn(2))
		}
		typ := event.Type("Stock")
		if rng.Intn(haltDiv) == 0 {
			typ = "Halt"
		} else if newsDiv > 0 && rng.Intn(newsDiv) == 0 {
			typ = "News"
		}
		ev := &event.Event{
			ID:    uint64(i + 1),
			Type:  typ,
			Time:  t,
			Attrs: map[string]float64{},
			Str:   map[string]string{"company": fmt.Sprintf("c%d", rng.Intn(3))},
		}
		switch rng.Intn(20) {
		case 0: // missing price
		case 1:
			if allowNaN {
				ev.Attrs["price"] = math.NaN()
			} else {
				ev.Attrs["price"] = float64(1 + rng.Intn(8))
			}
		default:
			ev.Attrs["price"] = float64(1 + rng.Intn(8))
		}
		if typ == "Stock" && rng.Intn(2) == 0 {
			rcSchema.Bind(ev)
		}
		evs = append(evs, ev)
	}
	return evs
}

// rcJitter pulls event times back by up to slack+2 (clamped at 0):
// bounded disorder for the reorder buffer, occasionally past the slack
// so deterministic drops occur. Arrival order and IDs are unchanged.
func rcJitter(rng *rand.Rand, evs []*event.Event, slack int64) {
	for _, ev := range evs {
		j := event.Time(rng.Intn(int(slack) + 3))
		if ev.Time > j {
			ev.Time -= j
		} else {
			ev.Time = 0
		}
	}
}

// rcSnap is one captured checkpoint.
type rcSnap struct {
	replayFrom event.Time
	data       []byte
}

// rcCapture arms rt to capture every scheduled checkpoint in memory.
func rcCapture(t testing.TB, rt *Runtime, every, from event.Time, snaps *[]rcSnap) {
	t.Helper()
	err := rt.SetCheckpoint(every, from, func(replayFrom event.Time, snapshot func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := snapshot(&buf); err != nil {
			return err
		}
		*snaps = append(*snaps, rcSnap{replayFrom: replayFrom, data: buf.Bytes()})
		return nil
	}, func(err error) { t.Errorf("checkpoint save: %v", err) })
	if err != nil {
		t.Fatal(err)
	}
}

// rcDiscard arms rt with the same boundary schedule but discards the
// snapshots — restored runs re-arm with it so their AdvanceTo cadence
// matches the interrupted run's.
func rcDiscard(t testing.TB, rt *Runtime, every, from event.Time) {
	t.Helper()
	err := rt.SetCheckpoint(every, from,
		func(event.Time, func(io.Writer) error) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func rcFeed(rt *Runtime, evs []*event.Event, from event.Time) {
	for _, ev := range evs {
		if ev.Time >= from {
			rt.Process(ev)
		}
	}
}

// rcState is the observable state of every live statement, by id.
type rcState struct {
	results map[string][]Result
	stats   map[string]Stats
}

func rcCaptureState(stmts []*Stmt) rcState {
	s := rcState{results: map[string][]Result{}, stats: map[string]Stats{}}
	for _, st := range stmts {
		if st.closed {
			continue
		}
		s.results[st.id] = st.Results()
		s.stats[st.id] = st.Stats()
	}
	return s
}

// rcResultsEqual compares result streams bit for bit (float values by
// IEEE bit pattern so NaNs and signed zeros must match), ignoring only
// the wall-clock Emitted stamp and payload pointer identity.
func rcResultsEqual(t *testing.T, ctx string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", ctx, len(a), len(b))
	}
	for i := range a {
		x, y := &a[i], &b[i]
		if x.Group != y.Group || x.Wid != y.Wid ||
			x.WindowStart != y.WindowStart || x.WindowEnd != y.WindowEnd {
			t.Fatalf("%s: result %d keyed (%q,%d,[%d,%d)) vs (%q,%d,[%d,%d))", ctx, i,
				x.Group, x.Wid, x.WindowStart, x.WindowEnd,
				y.Group, y.Wid, y.WindowStart, y.WindowEnd)
		}
		if len(x.Values) != len(y.Values) {
			t.Fatalf("%s: result %d has %d values vs %d", ctx, i, len(x.Values), len(y.Values))
		}
		for j := range x.Values {
			if math.Float64bits(x.Values[j]) != math.Float64bits(y.Values[j]) {
				t.Fatalf("%s: result %d (%q, wid %d) value %d: %v vs %v (bit mismatch)",
					ctx, i, x.Group, x.Wid, j, x.Values[j], y.Values[j])
			}
		}
		if (x.Payload == nil) != (y.Payload == nil) {
			t.Fatalf("%s: result %d payload presence differs", ctx, i)
		}
		if x.Payload != nil && x.Payload.Count != y.Payload.Count {
			t.Fatalf("%s: result %d payload count %d vs %d", ctx, i, x.Payload.Count, y.Payload.Count)
		}
	}
}

func rcStatesEqual(t *testing.T, ctx string, a, b rcState, compareStats bool) {
	t.Helper()
	if len(a.results) != len(b.results) {
		t.Fatalf("%s: %d live statements vs %d", ctx, len(a.results), len(b.results))
	}
	for id, ra := range a.results {
		rb, ok := b.results[id]
		if !ok {
			t.Fatalf("%s: statement %q missing", ctx, id)
		}
		rcResultsEqual(t, fmt.Sprintf("%s: statement %q", ctx, id), ra, rb)
	}
	if !compareStats {
		return
	}
	for id, sa := range a.stats {
		if sb := b.stats[id]; sa != sb {
			t.Fatalf("%s: statement %q stats diverge:\n  %+v\nvs\n  %+v", ctx, id, sa, sb)
		}
	}
}

func rcRegister(t testing.TB, rt *Runtime, id, q string, mode aggregate.Mode, cfg StmtConfig) *Stmt {
	t.Helper()
	plan, err := NewPlan(query.MustParse(q), mode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ID = id
	st, err := rt.Register(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRecoveryDifferential kills and restores a checkpointed runtime at
// every window boundary of each fastpath shape and asserts the restored
// run is bit-identical to the uninterrupted one: same results (IEEE bit
// patterns), same Stats counters, same summary folds. A third,
// checkpoint-free run guards the guard: boundary advancement must not
// change the emitted results either.
func TestRecoveryDifferential(t *testing.T) {
	cases := []struct {
		name             string
		q                string
		mode             aggregate.Mode
		haltDiv, newsDiv int
	}{
		{"stam-range-windowed",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, 0, 0},
		{"stam-range-unbounded",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price >= NEXT(S).price",
			aggregate.ModeNative, 0, 0},
		{"stam-no-predicate",
			"RETURN COUNT(*), MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WITHIN 16 SLIDE 4",
			aggregate.ModeNative, 0, 0},
		{"stam-seq",
			"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, 0, 0},
		{"skip-till-next-match",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5",
			aggregate.ModeNative, 0, 0},
		{"contiguous",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5",
			aggregate.ModeNative, 0, 0},
		{"negation-case2",
			"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
			aggregate.ModeNative, 0, 0},
		{"negation-case3",
			"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
			aggregate.ModeNative, 0, 0},
		{"negation-case2-burst",
			"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, 8, 0},
		{"negation-case1-prunable",
			"RETURN COUNT(*), SUM(B.price) PATTERN SEQ(Stock A, NOT Halt H, Stock B+) WHERE [company] AND B.price > NEXT(B).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, 12, 0},
		{"negation-nested",
			"RETURN COUNT(*) PATTERN SEQ(NOT SEQ(Halt X, NOT News N, Halt Y), Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, 8, 20},
		{"exact-mode",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeExact, 0, 0},
		{"disjunction",
			"RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5",
			aggregate.ModeNative, 8, 0},
		{"transactional",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, 0, 0},
	}
	const every = event.Time(16)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			haltDiv := tc.haltDiv
			if haltDiv == 0 {
				haltDiv = 40
			}
			cfg := StmtConfig{Transactional: tc.name == "transactional"}
			for seed := int64(1); seed <= 2; seed++ {
				evs := rcStream(rand.New(rand.NewSource(seed)), 300,
					tc.mode != aggregate.ModeExact, haltDiv, tc.newsDiv)

				// Run A: no checkpointing (results baseline).
				rtA := NewRuntime()
				stA := rcRegister(t, rtA, "q", tc.q, tc.mode, cfg)
				rcFeed(rtA, evs, 0)
				preA := rcCaptureState([]*Stmt{stA})
				rtA.Close()
				finalA := rcCaptureState([]*Stmt{stA})

				// Run B: checkpointing on, uninterrupted (bit-identity
				// reference — boundary AdvanceTo may split summary folds,
				// so Stats are compared within the checkpointed pair only).
				var snaps []rcSnap
				rtB := NewRuntime()
				stB := rcRegister(t, rtB, "q", tc.q, tc.mode, cfg)
				rcCapture(t, rtB, every, -1, &snaps)
				rcFeed(rtB, evs, 0)
				preB := rcCaptureState([]*Stmt{stB})
				rcStatesEqual(t, fmt.Sprintf("seed %d: plain vs checkpointed", seed), preA, preB, false)
				rtB.Close()
				finalB := rcCaptureState([]*Stmt{stB})
				rcStatesEqual(t, fmt.Sprintf("seed %d: plain vs checkpointed (closed)", seed), finalA, finalB, false)

				if len(snaps) < 5 {
					t.Fatalf("seed %d: only %d checkpoints taken", seed, len(snaps))
				}

				// Kill + restore at every boundary: replay the suffix and
				// demand bit-identity with the uninterrupted run.
				for i, sn := range snaps {
					rtR, info, err := RestoreRuntime(sn.data)
					if err != nil {
						t.Fatalf("seed %d: restore checkpoint %d: %v", seed, i, err)
					}
					replayFrom := info.ReplayFrom
					if replayFrom != sn.replayFrom {
						t.Fatalf("seed %d: checkpoint %d replayFrom %d, serialized %d",
							seed, i, sn.replayFrom, replayFrom)
					}
					if info.Every != every {
						t.Fatalf("seed %d: checkpoint %d interval %d, want %d", seed, i, info.Every, every)
					}
					rcDiscard(t, rtR, every, replayFrom)
					rcFeed(rtR, evs, replayFrom)
					stmts := append([]*Stmt(nil), rtR.stmts...)
					preR := rcCaptureState(stmts)
					rcStatesEqual(t, fmt.Sprintf("seed %d: checkpoint %d restored", seed, i), preB, preR, true)
					rtR.Close()
					finalR := rcCaptureState(stmts)
					rcStatesEqual(t, fmt.Sprintf("seed %d: checkpoint %d restored (closed)", seed, i), finalB, finalR, false)
				}
			}
		})
	}
}

// TestReorderRecoveryDifferential is the disorder-window recovery
// differential: a slack-armed runtime is checkpointed on schedule while
// a jittered stream is in flight, then killed and restored at every
// snapshot; replaying the arrival suffix from the snapshot's meta
// cursor must reproduce the uninterrupted run bit for bit — results,
// Stats, watermark, pending-window size, and drop totals. The cursor is
// written by the meta provider at encode time (inside Process, before
// the trigger event applies), so the test also pins the two contracts
// the serving layer's sequence replay depends on: the cursor points at
// the exact resume spot, and a release in flight when the boundary
// fires survives inside the snapshot (no silent flush).
func TestReorderRecoveryDifferential(t *testing.T) {
	cases := []struct {
		name    string
		queries []string
		slack   int64
		share   bool
	}{
		{"kleene-windowed", []string{
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		}, 4, false},
		{"negation", []string{
			"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
		}, 5, false},
		{"shared-disjunction", []string{
			"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			"RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			"RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5",
		}, 3, true},
	}
	const every = event.Time(16)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				evs := rcStream(rand.New(rand.NewSource(seed)), 300, false, 12, 0)
				rcJitter(rand.New(rand.NewSource(seed^0x5eed)), evs, tc.slack)

				build := func() (*Runtime, []*Stmt) {
					rt := NewRuntime()
					if err := rt.SetReorderSlack(event.Time(tc.slack)); err != nil {
						t.Fatal(err)
					}
					stmts := make([]*Stmt, len(tc.queries))
					for i, q := range tc.queries {
						stmts[i] = rcRegister(t, rt, fmt.Sprintf("q%d", i), q,
							aggregate.ModeNative, StmtConfig{Share: tc.share})
					}
					return rt, stmts
				}
				feed := func(rt *Runtime, evs []*event.Event, onEvent func(int)) int {
					drops := 0
					for i, ev := range evs {
						if err := rt.Process(ev); err != nil {
							var oe *OrderError
							if !errors.As(err, &oe) {
								t.Fatalf("seed %d: event %d: %v", seed, i, err)
							}
							drops++
						}
						if onEvent != nil {
							onEvent(i)
						}
					}
					return drops
				}

				// Baseline A: slack armed, no checkpointing.
				rtA, stA := build()
				dropsA := feed(rtA, evs, nil)

				// Run B: checkpointing armed; the meta cursor counts the
				// events consumed so far, advanced AFTER each Process —
				// a boundary snapshot fired inside Process must still
				// point at the previous event.
				var snaps []rcSnap
				rtB, stB := build()
				cur := 0
				rtB.SetCheckpointMeta(func() []byte { return []byte(strconv.Itoa(cur)) })
				rcCapture(t, rtB, every, -1, &snaps)
				dropsB := feed(rtB, evs, func(i int) { cur = i + 1 })
				nFeed := len(snaps) // Close's barrier below may emit more
				if dropsB == 0 {
					t.Fatalf("seed %d: jitter produced no drops (slack %d); widen the jitter", seed, tc.slack)
				}
				if dropsA != dropsB {
					t.Fatalf("seed %d: baseline dropped %d, checkpointed run %d", seed, dropsA, dropsB)
				}
				preA := rcCaptureState(stA)
				preB := rcCaptureState(stB)
				rcStatesEqual(t, fmt.Sprintf("seed %d: plain vs checkpointed", seed), preA, preB, false)
				pendB := rtB.ReorderPending()
				droppedB := rtB.reorder.Dropped()
				wmB := rtB.watermark

				// Closing flushes the identical disorder window everywhere.
				rtA.Close()
				rtB.Close()
				finalA := rcCaptureState(stA)
				finalB := rcCaptureState(stB)
				rcStatesEqual(t, fmt.Sprintf("seed %d: plain vs checkpointed (closed)", seed), finalA, finalB, false)

				if len(snaps) < 4 {
					t.Fatalf("seed %d: only %d checkpoints taken", seed, len(snaps))
				}

				withPending := 0
				for i, sn := range snaps {
					rtR, info, err := RestoreRuntime(sn.data)
					if err != nil {
						t.Fatalf("seed %d: restore snapshot %d: %v", seed, i, err)
					}
					if info.Every != every || info.ReorderSlack != event.Time(tc.slack) {
						t.Fatalf("seed %d: snapshot %d info %+v, want every %d slack %d",
							seed, i, info, every, tc.slack)
					}
					curR, err := strconv.Atoi(string(info.Meta))
					if err != nil {
						t.Fatalf("seed %d: snapshot %d meta %q: %v", seed, i, info.Meta, err)
					}
					if info.ReorderPending > 0 {
						withPending++
					}
					rcDiscard(t, rtR, every, info.ReplayFrom)
					if i >= nFeed {
						// Emitted by Close's end-of-stream barrier: the
						// cursor already covers the whole stream, so there
						// is nothing to replay — mid-barrier state only has
						// to close into the final state.
						if curR != len(evs) {
							t.Fatalf("seed %d: close-time snapshot %d cursor %d, want %d",
								seed, i, curR, len(evs))
						}
						stmts := append([]*Stmt(nil), rtR.stmts...)
						rtR.Close()
						finalR := rcCaptureState(stmts)
						rcStatesEqual(t, fmt.Sprintf("seed %d: close-time snapshot %d restored (closed)", seed, i), finalB, finalR, false)
						continue
					}
					feed(rtR, evs[curR:], nil)
					stmts := append([]*Stmt(nil), rtR.stmts...)
					preR := rcCaptureState(stmts)
					rcStatesEqual(t, fmt.Sprintf("seed %d: snapshot %d restored", seed, i), preB, preR, true)
					if got := rtR.ReorderPending(); got != pendB {
						t.Fatalf("seed %d: snapshot %d: pending %d after replay, want %d", seed, i, got, pendB)
					}
					if got := rtR.reorder.Dropped(); got != droppedB {
						t.Fatalf("seed %d: snapshot %d: buffer dropped %d, want %d", seed, i, got, droppedB)
					}
					if rtR.watermark != wmB {
						t.Fatalf("seed %d: snapshot %d: watermark %d, want %d", seed, i, rtR.watermark, wmB)
					}
					rtR.Close()
					finalR := rcCaptureState(stmts)
					rcStatesEqual(t, fmt.Sprintf("seed %d: snapshot %d restored (closed)", seed, i), finalB, finalR, false)
				}
				if withPending == 0 {
					t.Fatalf("seed %d: no snapshot carried pending reorder events", seed)
				}
			}
		})
	}
}

// TestRecoveryTopology restores a runtime whose statement topology
// exercises every registration shape at once: a shared entry that
// shrank to one subscriber, a later same-signature candidate from a
// newer epoch, a lone candidate, a transactional exclusive statement,
// and a composite (disjunction) statement. Restores at post-action
// boundaries must reproduce the interrupted run bit for bit, and the
// restored share index must not admit new subscribers into warm graphs.
func TestRecoveryTopology(t *testing.T) {
	const every = event.Time(32)
	const sharedQ = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	const candQ = "RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] WITHIN 24 SLIDE 8"

	// Strictly increasing timestamps so every index maps to one time.
	evs := rcStream(rand.New(rand.NewSource(7)), 280, true, 20, 0)
	tt := event.Time(0)
	for _, ev := range evs {
		tt++
		ev.Time = tt
	}

	type runState struct {
		rt    *Runtime
		stmts map[string]*Stmt
	}
	script := func(t *testing.T, rt *Runtime) runState {
		rs := runState{rt: rt, stmts: map[string]*Stmt{}}
		reg := func(id, q string, cfg StmtConfig) {
			rs.stmts[id] = rcRegister(t, rt, id, q, aggregate.ModeNative, cfg)
		}
		reg("sharedA", sharedQ, StmtConfig{Share: true})
		reg("sharedB", sharedQ, StmtConfig{Share: true})
		reg("txn", "RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price WITHIN 16 SLIDE 4",
			StmtConfig{Transactional: true})
		reg("comp", "RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5", StmtConfig{})
		for _, ev := range evs[:80] {
			rt.Process(ev)
		}
		// New epoch: same signature no longer attaches — C becomes a
		// fresh candidate whose index node shadows the entry's.
		reg("sharedC", sharedQ, StmtConfig{Share: true})
		reg("cand", candQ, StmtConfig{Share: true})
		for _, ev := range evs[80:120] {
			rt.Process(ev)
		}
		// Entry shrinks to a single subscriber (detach flush).
		if err := rs.stmts["sharedB"].Close(); err != nil {
			t.Fatal(err)
		}
		delete(rs.stmts, "sharedB")
		for _, ev := range evs[120:] {
			rt.Process(ev)
		}
		return rs
	}

	live := func(rs runState) []*Stmt {
		out := make([]*Stmt, 0, len(rs.stmts))
		for _, st := range rs.stmts {
			out = append(out, st)
		}
		return out
	}

	// Uninterrupted checkpointed run.
	var snaps []rcSnap
	rtB := NewRuntime()
	rcCapture(t, rtB, every, -1, &snaps)
	rsB := script(t, rtB)
	preB := rcCaptureState(live(rsB))

	// Checkpoint-free baseline (results must match regardless).
	rsA := script(t, NewRuntime())
	preA := rcCaptureState(live(rsA))
	rcStatesEqual(t, "plain vs checkpointed", preA, preB, false)

	if got := preB.stats["sharedA"].SharedStatements; got != 1 {
		t.Fatalf("sharedA shares with %d statements, want 1 (detached entry)", got)
	}

	closeTime := evs[119].Time
	tested := 0
	for i, sn := range snaps {
		if sn.replayFrom <= closeTime {
			continue // mid-script snapshots need the script's actions replayed too
		}
		tested++
		rtR, info, err := RestoreRuntime(sn.data)
		if err != nil {
			t.Fatalf("restore checkpoint %d: %v", i, err)
		}
		replayFrom := info.ReplayFrom
		rcDiscard(t, rtR, every, replayFrom)
		rcFeed(rtR, evs, replayFrom)
		preR := rcCaptureState(rtR.stmts)
		rcStatesEqual(t, fmt.Sprintf("checkpoint %d restored", i), preB, preR, true)

		// Restored graphs are warm: a new same-signature registration
		// must become an exclusive candidate, not a subscriber.
		st := rcRegister(t, rtR, "late", sharedQ, aggregate.ModeNative, StmtConfig{Share: true})
		if st.entry != nil {
			t.Fatalf("checkpoint %d: late registration attached to a restored warm graph", i)
		}
		if st.Stats().SharedStatements != 0 {
			t.Fatalf("checkpoint %d: late registration reports shared statements", i)
		}
	}
	if tested == 0 {
		t.Fatalf("no post-action checkpoints to test (close at %d, %d snaps)", closeTime, len(snaps))
	}
}

// TestCheckpointNow covers the manual path: replayFrom is watermark+1,
// no boundary advancement happens, and on a strictly increasing stream
// the restored run is exact.
func TestCheckpointNow(t *testing.T) {
	const q = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	evs := rcStream(rand.New(rand.NewSource(3)), 200, true, 30, 0)
	tt := event.Time(0)
	for _, ev := range evs {
		tt++
		ev.Time = tt
	}

	var snaps []rcSnap
	rtB := NewRuntime()
	stB := rcRegister(t, rtB, "q", q, aggregate.ModeNative, StmtConfig{})
	if err := rtB.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow succeeded without checkpointing configured")
	}
	rcCapture(t, rtB, 1<<40, -1, &snaps) // interval too long to self-trigger
	for i, ev := range evs {
		rtB.Process(ev)
		if i == 127 {
			if err := rtB.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want exactly the manual one", len(snaps))
	}
	if want := evs[127].Time + 1; snaps[0].replayFrom != want {
		t.Fatalf("manual replayFrom %d, want watermark+1 = %d", snaps[0].replayFrom, want)
	}
	preB := rcCaptureState([]*Stmt{stB})

	rtR, info, err := RestoreRuntime(snaps[0].data)
	if err != nil {
		t.Fatal(err)
	}
	rcFeed(rtR, evs, info.ReplayFrom)
	preR := rcCaptureState(rtR.stmts)
	rcStatesEqual(t, "manual checkpoint restored", preB, preR, true)
}
