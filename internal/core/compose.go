package core

import (
	"math/big"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
)

// composeResults combines branch and product-engine results into final
// results for composite plans (paper §9):
//
//   - Disjunction (and Kleene star / optional, which expand into
//     disjunctions of positive branches): inclusion–exclusion over
//     branch counts — Σ C(branch) − Σ C(pairwise ∩) + Σ C(triple ∩) − …
//     The intersection counts come from product-template engines.
//     MIN/MAX fold over the branches only, since they are monotone over
//     trend sets.
//
//   - Conjunction (Pi AND Pj): pairs of distinct trends. With exclusive
//     counts Ci = COUNT(Pi)−Cij, Cj = COUNT(Pj)−Cij, and Cij the
//     intersection count, COUNT = Ci·Cj + Ci·Cij + Cj·Cij + C(Cij, 2).
func (e *Engine) composeResults() {
	type key struct {
		group string
		wid   int64
	}
	def := e.plan.Def()
	branchRes := make([]map[key]*aggregate.Payload, len(e.branchEngines))
	keys := map[key]bool{}
	for i, be := range e.branchEngines {
		branchRes[i] = map[key]*aggregate.Payload{}
		for _, r := range be.Results() {
			k := key{r.Group, r.Wid}
			branchRes[i][k] = r.Payload
			keys[k] = true
		}
	}
	prodRes := make([]map[key]*aggregate.Payload, len(e.productEngines))
	for i, pe := range e.productEngines {
		prodRes[i] = map[key]*aggregate.Payload{}
		for _, r := range pe.Results() {
			prodRes[i][key{r.Group, r.Wid}] = r.Payload
		}
	}
	for k := range keys {
		var payload *aggregate.Payload
		if e.plan.Conjunct {
			payload = e.composeConjunction(def, branchRes[0][k], branchRes[1][k], prodRes[0][k])
		} else {
			payload = def.New()
			for i := range e.branchEngines {
				def.AddSigned(payload, branchRes[i][k], 1)
			}
			for i, mask := range e.plan.Masks {
				sign := 1
				if popcount(mask)%2 == 0 {
					sign = -1
				}
				def.AddSigned(payload, prodRes[i][k], sign)
			}
		}
		if payload.Zero() {
			continue
		}
		r := Result{
			Group:       k.group,
			Wid:         k.wid,
			WindowStart: e.plan.Window.Start(k.wid),
			WindowEnd:   e.plan.Window.End(k.wid),
			Payload:     payload,
			Emitted:     time.Now(),
		}
		for _, ss := range e.plan.Specs {
			r.Values = append(r.Values, def.Value(payload, ss.Spec, ss.Slot, ss.Slot2))
		}
		e.emitted++
		if !e.noRetain {
			e.results = append(e.results, r)
		}
		if e.onResult != nil {
			e.onResult(r)
		}
	}
	sortResults(e.results)
}

// composeConjunction applies the paper's conjunction count formula.
func (e *Engine) composeConjunction(def *aggregate.Def, pi, pj, pij *aggregate.Payload) *aggregate.Payload {
	out := def.New()
	if def.Mode == aggregate.ModeExact {
		ci := def.ExactCount(pi)
		cj := def.ExactCount(pj)
		cij := def.ExactCount(pij)
		ci.Sub(ci, cij)
		cj.Sub(cj, cij)
		total := new(big.Int).Mul(ci, cj)
		total.Add(total, new(big.Int).Mul(ci, cij))
		total.Add(total, new(big.Int).Mul(cj, cij))
		choose2 := new(big.Int).Mul(cij, new(big.Int).Sub(cij, big.NewInt(1)))
		choose2.Rsh(choose2, 1)
		total.Add(total, choose2)
		out.XCount.Set(total)
		out.Count = total.Uint64()
		return out
	}
	var ci, cj, cij uint64
	if pi != nil {
		ci = pi.Count
	}
	if pj != nil {
		cj = pj.Count
	}
	if pij != nil {
		cij = pij.Count
	}
	ci -= cij
	cj -= cij
	// cij*(cij-1)/2 is C(cij, 2); for cij == 0 the product is zero.
	out.Count = ci*cj + ci*cij + cj*cij + cij*(cij-1)/2
	return out
}
