package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"slices"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/checkpoint"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
)

// This file is the distribution seam: the exported hooks a cluster
// coordinator and its shards need to replicate RunParallel's
// coordinator/worker/merger roles across process boundaries. The
// in-process topology keys everything on worker index and merges
// partial payloads in that order (parallel.go); these hooks expose
// exactly that contract — per-statement window barriers, partial
// export, shard-index-ordered merge, worker stats folding — so a
// multi-process run stays bit-identical to RunParallel with the same
// worker count.

// MarshalPayload serializes a partial (or final) aggregate payload
// with the checkpoint codec: float slots travel as IEEE bit patterns
// and exact-mode big values verbatim, so a merge over the wire is
// bit-identical to an in-process one.
func MarshalPayload(p *aggregate.Payload) ([]byte, error) {
	var buf bytes.Buffer
	enc := checkpoint.NewEncoder(&buf)
	encodePayload(enc, p)
	if err := enc.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPayload reverses MarshalPayload.
func UnmarshalPayload(b []byte) (*aggregate.Payload, error) {
	d := checkpoint.NewDecoder(b)
	p := decodePayloadNew(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// HashRoute exposes the per-route-group FNV-1a partition hash so a
// cluster coordinator computes it once and ships it; shards never
// rehash.
func HashRoute(acc []event.Accessor, ev *event.Event) uint64 {
	return hashRoute(acc, ev)
}

// Partitioned reports whether the statement is a parallel unit: a
// simple plan with at least one partition attribute. RunParallel (and
// the cluster coordinator) distributes exactly these; everything else
// runs inline on the coordinator.
func (st *Stmt) Partitioned() bool {
	return st.grp != nil && len(st.grp.acc) > 0
}

// RouteAttrs returns the statement's partition-attribute signature
// (group-by + equivalence, in plan order).
func (st *Stmt) RouteAttrs() []string {
	return st.eng.partAttrs
}

// RouteAccessors returns the statement's route group's shared
// accessors (nil for unpartitioned statements). The caller must treat
// them as owned by the runtime: pass them to HashRoute, do not mutate.
func (st *Stmt) RouteAccessors() []event.Accessor {
	if st.grp == nil {
		return nil
	}
	return st.grp.acc
}

// WindowSpec returns the statement's window, the coordinator's input
// to the per-statement barrier schedule (window.Spec.ClosedBy).
func (st *Stmt) WindowSpec() window.Spec { return st.eng.plan.Window }

// MergeDef returns the aggregation definition partial payloads merge
// under (aggregate.Def.Merge, in shard-index order).
func (st *Stmt) MergeDef() *aggregate.Def { return st.eng.plan.Def() }

// ForcedVertexScan reports whether the statement's engine runs with
// the summary fast path disabled, so a registration fan-out replicates
// the flag on every shard.
func (st *Stmt) ForcedVertexScan() bool { return st.eng.forceScan }

// EmitWindow materializes and delivers one merged window through the
// statement's own engine — the cluster equivalent of mergeLoop's
// st.eng.emit call. The caller must hold no runtime locks and must
// present windows in the merge order (wid ascending, groups sorted).
func (st *Stmt) EmitWindow(group string, wid int64, p *aggregate.Payload) {
	st.eng.emit(group, wid, p)
}

// FoldRemoteStats folds one remote worker engine's counters into the
// statement's stats, exactly as RunParallel folds its worker engines:
// Events and the graph-cost counters sum; peaks sum as an upper bound
// (workers peak at different instants); OutOfOrder and Results are
// coordinator-side and excluded.
func (st *Stmt) FoldRemoteStats(s Stats) {
	es := &st.eng.stats
	es.Events += s.Events
	es.Inserted += s.Inserted
	es.Edges += s.Edges
	es.ScanVisits += s.ScanVisits
	es.SummaryFolds += s.SummaryFolds
	es.SummaryRebuilds += s.SummaryRebuilds
	es.PeakVertices += s.PeakVertices
	es.PeakPayloads += s.PeakPayloads
	es.Partitions += s.Partitions
}

// AddOutOfOrder charges n coordinator-side out-of-order drops to the
// statement, mirroring the sequential path where every engine counts
// its own late arrivals (the events themselves are not forwarded).
func (st *Stmt) AddOutOfOrder(n uint64) {
	st.eng.stats.OutOfOrder += n
}

// ObserveTime advances the runtime's watermark without offering an
// event, so statements registered mid-stream on a coordinator (whose
// partitioned events are processed elsewhere) still get the correct
// registration watermark stamped on their engines.
func (rt *Runtime) ObserveTime(t event.Time) {
	rt.mu.Lock()
	if t > rt.watermark {
		rt.watermark = t
	}
	rt.mu.Unlock()
}

// ---------------------------------------------------------------------
// ShardHost: one cluster worker slot
// ---------------------------------------------------------------------

// ShardHost hosts the worker engines of one cluster worker slot (one
// of RunParallel's N workers, pinned to a home index that never
// changes even when the slot migrates between shard processes). It
// owns an ordinary Runtime as the registry, but drives engines
// directly with coordinator-routed (group, hash) pairs — the hash
// arrives over the wire, computed once at the coordinator.
//
// A ShardHost is single-goroutine: the serving session calls every
// method under its own lock.
type ShardHost struct {
	rt        *Runtime
	w         int
	units     map[int]*Stmt // unit index → statement
	groups    map[int][]int // route-group index → unit indices
	gi        map[int]int   // unit index → route-group index
	onPartial func(w, si int, r Result)
}

// shardHostMeta is the opaque blob embedded in a host snapshot so an
// adopting shard can rebind the restored statements to their cluster
// unit and route-group indices.
type shardHostMeta struct {
	W     int               `json:"w"`
	Units map[string][2]int `json:"units"` // stmt id → {si, gi}
}

// NewShardHost creates an empty worker slot. onPartial receives every
// partial window the slot's engines release (barrier, flush, close);
// the caller ships them to the coordinator's merger tagged with the
// slot's home index w.
func NewShardHost(w int, onPartial func(w, si int, r Result)) *ShardHost {
	h := &ShardHost{
		rt: NewRuntime(), w: w,
		units: map[int]*Stmt{}, groups: map[int][]int{}, gi: map[int]int{},
		onPartial: onPartial,
	}
	h.rt.SetCheckpointMeta(h.metaBytes)
	return h
}

// W returns the slot's home worker index.
func (h *ShardHost) W() int { return h.w }

// ObserveTime advances the slot's watermark without an event, so a
// mid-stream registration fan-out stamps the coordinator's global
// watermark on the new engine (a slot that happened to receive no
// recent events would otherwise stamp a stale one and re-open windows
// the single-process run skips).
func (h *ShardHost) ObserveTime(t event.Time) {
	if t > h.rt.watermark {
		h.rt.watermark = t
	}
}

// Watermark returns the slot's applied-event frontier.
func (h *ShardHost) Watermark() event.Time {
	return h.rt.watermark
}

func (h *ShardHost) metaBytes() []byte {
	m := shardHostMeta{W: h.w, Units: make(map[string][2]int, len(h.units))}
	for si, st := range h.units {
		m.Units[st.id] = [2]int{si, h.gi[si]}
	}
	b, _ := json.Marshal(m)
	return b
}

// bindUnit flips a registered statement into worker mode — retention
// off, results delivered as partials tagged with the slot's home index
// — exactly how RunParallel configures its worker engines.
func (h *ShardHost) bindUnit(st *Stmt, si, gi int) {
	st.eng.setRetainResults(false)
	st.eng.OnResult(func(r Result) { h.onPartial(h.w, si, r) })
	h.units[si] = st
	h.groups[gi] = append(h.groups[gi], si)
	slices.Sort(h.groups[gi])
	h.gi[si] = gi
}

// Register compiles and registers one fanned-out parallel unit.
// The canonical query text, arithmetic mode, and force-scan flag come
// from the coordinator so every slot builds an identical engine;
// sharing is deliberately off — cluster statements register
// exclusively (the shared sub-plan network is not distributed).
func (h *ShardHost) Register(si, gi int, src, id string, exact, force bool) error {
	if _, dup := h.units[si]; dup {
		return fmt.Errorf("unit %d already registered", si)
	}
	q, err := query.Parse(src)
	if err != nil {
		return err
	}
	mode := aggregate.ModeNative
	if exact {
		mode = aggregate.ModeExact
	}
	plan, err := NewPlan(q, mode)
	if err != nil {
		return err
	}
	st, err := h.rt.Register(plan, StmtConfig{ID: id, ForceVertexScan: force})
	if err != nil {
		return err
	}
	h.bindUnit(st, si, gi)
	return nil
}

// Apply offers one coordinator-routed event: for each targeted route
// group, every unit of that group processes the event under the
// pre-computed hash (ProcessRouted — the slot never rehashes). The
// watermark advances so mid-stream registrations and snapshots cut at
// the right instant.
func (h *ShardHost) Apply(ev *event.Event, gis []int, hs []uint64) {
	for k, gi := range gis {
		for _, si := range h.groups[gi] {
			h.units[si].eng.ProcessRouted(ev, hs[k])
		}
	}
	if ev.Time > h.rt.watermark {
		h.rt.watermark = ev.Time
	}
}

// Barrier releases unit si's windows up to t (exclusive of windows
// still open at t), emitting their partials through onPartial — the
// worker half of RunParallel's pmBarrier.
func (h *ShardHost) Barrier(si int, t event.Time) {
	if st := h.units[si]; st != nil {
		st.eng.AdvanceTo(t)
	}
	if t > h.rt.watermark {
		h.rt.watermark = t
	}
}

// Units returns the registered unit indices, sorted.
func (h *ShardHost) Units() []int {
	sis := make([]int, 0, len(h.units))
	for si := range h.units {
		sis = append(sis, si)
	}
	slices.Sort(sis)
	return sis
}

// FlushUnit releases every open window of unit si (end of stream).
func (h *ShardHost) FlushUnit(si int) {
	if st := h.units[si]; st != nil {
		st.eng.Flush()
	}
}

// UnitStats returns unit si's engine counters for the coordinator's
// stats fold.
func (h *ShardHost) UnitStats(si int) (Stats, bool) {
	st := h.units[si]
	if st == nil {
		return Stats{}, false
	}
	return st.eng.Stats(), true
}

// CloseUnit closes unit si mid-stream: its open windows flush as
// partials through onPartial, its final stats are returned for the
// coordinator's fold, and the statement leaves the slot's runtime.
func (h *ShardHost) CloseUnit(si int) (Stats, error) {
	st := h.units[si]
	if st == nil {
		return Stats{}, fmt.Errorf("unit %d not registered", si)
	}
	if err := st.Close(); err != nil {
		return Stats{}, err
	}
	s := st.eng.Stats()
	gi := h.gi[si]
	sis := h.groups[gi]
	for i, x := range sis {
		if x == si {
			h.groups[gi] = append(sis[:i], sis[i+1:]...)
			break
		}
	}
	delete(h.units, si)
	delete(h.gi, si)
	return s, nil
}

// Snapshot serializes the slot's full engine state (open windows,
// pane summaries, watermark) plus the unit/group binding meta, for a
// rebalance handoff. The caller must have quiesced the slot (no
// events in flight past the snapshot's watermark).
func (h *ShardHost) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	h.rt.mu.Lock()
	err := h.rt.encodeLocked(&buf, h.rt.watermark+1)
	h.rt.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Discard drops the slot without emitting anything: callbacks are
// detached before the runtime closes, so the teardown flush is silent.
// Used after a handoff (the state lives on elsewhere) and at session
// teardown.
func (h *ShardHost) Discard() {
	for _, st := range h.units {
		st.eng.OnResult(nil)
	}
	_ = h.rt.Close()
}

// AdoptShardHost rebuilds a worker slot from a Snapshot blob on a
// different shard: the runtime (engines, open windows, watermark) is
// restored, and every statement is rebound to its unit index in
// worker mode. The slot keeps its original home index, so the
// coordinator's merge and stats fold are undisturbed by the
// migration.
func AdoptShardHost(data []byte, onPartial func(w, si int, r Result)) (*ShardHost, error) {
	rt, info, err := RestoreRuntime(data)
	if err != nil {
		return nil, err
	}
	if info.Meta == nil {
		return nil, fmt.Errorf("greta: snapshot carries no shard-host meta")
	}
	var m shardHostMeta
	if err := json.Unmarshal(info.Meta, &m); err != nil {
		return nil, fmt.Errorf("greta: bad shard-host meta: %w", err)
	}
	h := &ShardHost{
		rt: rt, w: m.W,
		units: map[int]*Stmt{}, groups: map[int][]int{}, gi: map[int]int{},
		onPartial: onPartial,
	}
	for _, st := range rt.Statements() {
		bind, ok := m.Units[st.ID()]
		if !ok {
			return nil, fmt.Errorf("greta: restored statement %q missing from shard-host meta", st.ID())
		}
		h.bindUnit(st, bind[0], bind[1])
	}
	h.rt.SetCheckpointMeta(h.metaBytes)
	return h, nil
}
