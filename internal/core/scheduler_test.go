package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// TestTransactionalMatchesSequential: the §7 stream-transaction
// scheduler must produce exactly the sequential engine's results,
// including for nested negation (inter-dependent graphs) and equal
// timestamps (the case transactions exist for).
func TestTransactionalMatchesSequential(t *testing.T) {
	queries := []string{
		"RETURN COUNT(*) PATTERN (SEQ(A+, B))+",
		"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)",
		"RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
		"RETURN COUNT(*) PATTERN SEQ(A+, NOT E) WITHIN 8 SLIDE 4",
		"RETURN COUNT(*), SUM(A.x) PATTERN A+ WHERE [g] GROUP-BY g WITHIN 10 SLIDE 5",
	}
	rng := rand.New(rand.NewSource(23))
	for _, qsrc := range queries {
		q := query.MustParse(qsrc)
		for iter := 0; iter < 25; iter++ {
			evs := randStream(rng, 6+rng.Intn(14))

			plan, err := core.NewPlan(q, aggregate.ModeNative)
			if err != nil {
				t.Fatal(err)
			}
			seq := core.NewEngine(plan)
			seq.Run(event.NewSliceStream(evs))

			txn := core.NewEngine(plan)
			txn.SetTransactional(true)
			txn.Run(event.NewSliceStream(evs))

			a, b := seq.Results(), txn.Results()
			if len(a) != len(b) {
				t.Fatalf("%s: sequential %d results, transactional %d\nstream %v",
					qsrc, len(a), len(b), evs)
			}
			for i := range a {
				if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
					t.Fatalf("%s: result %d key mismatch", qsrc, i)
				}
				for j := range a[i].Values {
					if a[i].Values[j] != b[i].Values[j] {
						t.Errorf("%s: result %d value %d: %v vs %v\nstream %v",
							qsrc, i, j, a[i].Values[j], b[i].Values[j], evs)
					}
				}
			}
		}
	}
}

// TestTransactionalConcurrentLevels: a pattern with several independent
// negative sub-patterns puts multiple graphs in one dependency level;
// processing them concurrently (run with -race) must stay correct.
func TestTransactionalConcurrentLevels(t *testing.T) {
	qsrc := "RETURN COUNT(*) PATTERN SEQ(A, NOT C, B, NOT D, A, NOT E, B)"
	q := query.MustParse(qsrc)
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 20; iter++ {
		evs := randStream(rng, 14)
		seq := core.NewEngine(plan)
		seq.Run(event.NewSliceStream(evs))
		txn := core.NewEngine(plan)
		txn.SetTransactional(true)
		txn.Run(event.NewSliceStream(evs))
		av, bv := total(seq), total(txn)
		if av != bv {
			t.Fatalf("sequential %v != transactional %v\nstream %v", av, bv, evs)
		}
	}
}

func total(e *core.Engine) string {
	s := ""
	for _, r := range e.Results() {
		s += fmt.Sprintf("%s/%d=%v;", r.Group, r.Wid, r.Values)
	}
	return s
}
