package core

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// allocStockSchema mirrors the stock generator's schema for the
// hot-path allocation tests.
var allocStockSchema = &event.Schema{
	Type:    "Stock",
	Numeric: []string{"price"},
	Strings: []string{"company"},
}

// allocStockEvent builds one schema-bound stock event.
func allocStockEvent(id uint64, t event.Time, company string, price float64) *event.Event {
	ev := &event.Event{
		ID:    id,
		Type:  "Stock",
		Time:  t,
		Attrs: map[string]float64{"price": price},
		Str:   map[string]string{"company": company},
	}
	allocStockSchema.Bind(ev)
	return ev
}

// TestNoHotPathAllocs locks in the zero-allocation steady state of the
// simple-plan Process path: schema-compiled events into an existing
// partition, with the recycling pools pre-warmed by expired panes,
// must not allocate at all. Three disciplines are guarded: the summary
// fast path (subtree folds + augmented-tree maintenance), the forced
// per-vertex scan, and the negation fold path (watermark-versioned
// summaries whose in-place rebuilds after invalidation advances draw
// from the per-spec pools).
func TestNoHotPathAllocs(t *testing.T) {
	t.Run("summary-fold", func(t *testing.T) { testNoHotPathAllocs(t, false) })
	t.Run("vertex-scan", func(t *testing.T) { testNoHotPathAllocs(t, true) })
	t.Run("negation-fold", testNoHotPathAllocsNegation)
	t.Run("multi-statement", testNoHotPathAllocsMultiStatement)
	t.Run("shared-statements", testNoHotPathAllocsSharedStatements)
	t.Run("checkpointing", testNoHotPathAllocsCheckpoint)
	t.Run("reorder-slack", testNoHotPathAllocsReorder)
	t.Run("batch-ingest", testNoHotPathAllocsBatchIngest)
	t.Run("batch-prefilter", testNoHotPathAllocsBatchPrefilter)
}

// allocBatchVolSchema adds a second numeric slot so a vertex predicate
// can compare two columns (S.price <= S.vol).
var allocBatchVolSchema = &event.Schema{
	Type:    "Stock",
	Numeric: []string{"price", "vol"},
	Strings: []string{"company"},
}

// allocFeedBatches pushes n rows through ProcessBatch in blocks of
// size, timestamps from timeOf, prices from price; *id carries the
// event id across calls. Batches hand their rows to the runtime, so
// every block is freshly allocated (outside any measured loop).
func allocFeedBatches(t *testing.T, rt *Runtime, sch *event.Schema, n, size int, id *uint64,
	timeOf func(i int) event.Time, price func(id uint64) float64, vol float64) {
	t.Helper()
	for off := 0; off < n; off += size {
		k := size
		if rest := n - off; rest < k {
			k = rest
		}
		b := event.NewBatch(sch, k)
		for j := 0; j < k; j++ {
			*id++
			num := []float64{price(*id)}
			if len(sch.Numeric) > 1 {
				num = append(num, vol)
			}
			b.Append(*id, timeOf(off+j), num, []string{"c0"})
		}
		if _, err := rt.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
}

// testNoHotPathAllocsBatchIngest extends the zero-allocation guard to
// the columnar ingest path with the pre-filter pass-through (an edge
// predicate cannot be vectorized): run detection, the single hash
// probe per run, and the per-row graph insertions must run entirely
// from warm pools — 0 allocs per batch, amortized.
func testNoHotPathAllocsBatchIngest(t *testing.T) {
	testNoHotPathAllocsBatch(t, false)
}

// testNoHotPathAllocsBatchPrefilter is the same guard with a
// vectorizable vertex predicate: the column evaluation and the pooled
// selection bitmap must also be allocation-free, and rows must really
// take the skip path.
func testNoHotPathAllocsBatchPrefilter(t *testing.T) {
	testNoHotPathAllocsBatch(t, true)
}

func testNoHotPathAllocsBatch(t *testing.T, prefilter bool) {
	src := "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000"
	sch := allocStockSchema
	if prefilter {
		src = "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
			"WHERE [company] AND S.price <= S.vol GROUP-BY company WITHIN 1000 SLIDE 1000"
		sch = allocBatchVolSchema
	}
	plan, err := NewPlan(query.MustParse(src), aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	st, err := rt.Register(plan, StmtConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// price cycles so roughly half the adjacent pairs extend a trend
	// (edge query) and 3 of 7 rows fail price <= vol (prefilter query).
	price := func(id uint64) float64 { return 1000 - float64(id%7) }
	const vol = 997

	// Warmup charges the pools, the run-detect scratch, the pre-filter
	// cache, and its bitmap across two window turnovers.
	id := uint64(0)
	allocFeedBatches(t, rt, sch, 21000, 64, &id,
		func(i int) event.Time { return event.Time(i / 10) }, price, vol)

	// Measured: prebuilt 16-row batches, times inside the open window
	// (no closes, no checkpoint boundaries). One AllocsPerRun iteration
	// is one whole batch — the invariant is 0 allocs amortized per
	// batch, which is stricter than per event.
	const runs = 100
	const rows = 16
	batches := make([]*event.Batch, runs)
	r := 0
	for i := range batches {
		b := event.NewBatch(sch, rows)
		for j := 0; j < rows; j++ {
			id++
			num := []float64{price(id)}
			if prefilter {
				num = append(num, vol)
			}
			b.Append(id, event.Time(2100+r/2), num, []string{"c0"})
			r++
		}
		batches[i] = b
	}
	before := st.Stats()
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		if _, err := rt.ProcessBatch(batches[i]); err != nil {
			panic(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state ProcessBatch allocates %.2f objects/op, want 0", avg)
	}
	// Guard against the guard: rows must really reach the graphs (and,
	// on the prefilter variant, really skip through the bitmap).
	after := st.Stats()
	if got := after.Events - before.Events; got != uint64(runs*rows) {
		t.Fatalf("measured loop counted %d events, want %d", got, runs*rows)
	}
	skips := after.PrefilterSkips - before.PrefilterSkips
	if prefilter {
		if skips == 0 {
			t.Fatal("measured loop never took the pre-filter skip path")
		}
		if got := after.Inserted - before.Inserted; got == 0 || got+skips != uint64(runs*rows) {
			t.Fatalf("inserted %d + skipped %d rows, want them to partition %d", got, skips, runs*rows)
		}
	} else {
		if skips != 0 {
			t.Fatalf("edge-predicate query took %d pre-filter skips, want 0", skips)
		}
		if got := after.Inserted - before.Inserted; got != uint64(runs*rows) {
			t.Fatalf("measured loop inserted %d vertices, want %d", got, runs*rows)
		}
	}
	if after.SummaryFolds == before.SummaryFolds {
		t.Fatal("measured loop took no summary folds")
	}
}

// testNoHotPathAllocsReorder guards the armed-slack ingest path: a
// steady in-order stream through the reorder buffer — heap push, sift,
// release of the event falling behind the horizon, engine apply — must
// not allocate. The heap is implemented inline (container/heap would
// box each entry) and its backing array is warm after the first few
// events, so a session paying for disorder tolerance keeps the
// zero-allocation steady state.
func testNoHotPathAllocsReorder(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000")
	plan, err := NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	if err := rt.SetReorderSlack(8); err != nil {
		t.Fatal(err)
	}
	st, err := rt.Register(plan, StmtConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Warmup charges the engine pools AND the buffer's heap array.
	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	for i := 0; i < 21000; i++ {
		id++
		if err := rt.Process(allocStockEvent(id, event.Time(i/10), "c0", price(id))); err != nil {
			t.Fatal(err)
		}
	}

	const runs = 300
	evs := make([]*event.Event, runs)
	for i := range evs {
		id++
		evs[i] = allocStockEvent(id, event.Time(2100+i), "c0", price(id))
	}
	before := st.Stats()
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		if err := rt.Process(evs[i]); err != nil {
			panic(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state slack-armed Process allocates %.2f objects/op, want 0", avg)
	}
	// Guard against the guard: events must really route through an
	// occupied buffer (slack path, not pass-through) into the engine.
	if rt.ReorderPending() == 0 {
		t.Fatal("reorder buffer empty after measured loop (slack path not exercised)")
	}
	after := st.Stats()
	if got := after.Inserted - before.Inserted; got < runs/2 {
		t.Fatalf("measured loop inserted %d vertices, want >= %d", got, runs/2)
	}
	if after.SummaryFolds == before.SummaryFolds {
		t.Fatal("measured loop took no summary folds")
	}
}

// testNoHotPathAllocsCheckpoint guards the per-event cost of an ARMED
// checkpoint schedule (two loads and a compare on the steady path —
// snapshot encoding runs only at boundaries, which the measured window
// stays clear of), and that a RESTORED runtime returns to the same
// zero-allocation steady state once pane churn has recharged the
// per-spec pools (decoded vertices come from the pools, so expiry
// recycles them exactly as in an uninterrupted run).
func testNoHotPathAllocsCheckpoint(t *testing.T) {
	srcs := []string{
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
			"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000",
		"RETURN MIN(S.price), MAX(S.price) PATTERN Stock S+ " +
			"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000",
	}
	newRT := func() (*Runtime, []*Stmt) {
		rt := NewRuntime()
		stmts := make([]*Stmt, len(srcs))
		for i, src := range srcs {
			plan, err := NewPlan(query.MustParse(src), aggregate.ModeNative)
			if err != nil {
				t.Fatal(err)
			}
			stmts[i], err = rt.Register(plan, StmtConfig{Share: true})
			if err != nil {
				t.Fatal(err)
			}
		}
		return rt, stmts
	}
	measure := func(rt *Runtime, stmts []*Stmt, evs []*event.Event, ctx string) {
		before := stmts[0].Stats()
		i := 0
		avg := testing.AllocsPerRun(len(evs)-1, func() {
			if err := rt.Process(evs[i]); err != nil {
				panic(err)
			}
			i++
		})
		if avg != 0 {
			t.Fatalf("%s: steady-state Process allocates %.2f objects/op, want 0", ctx, avg)
		}
		after := stmts[0].Stats()
		if got := after.Inserted - before.Inserted; got < uint64(len(evs)) {
			t.Fatalf("%s: measured loop inserted %d vertices, want >= %d", ctx, got, len(evs))
		}
		if after.SummaryFolds == before.SummaryFolds {
			t.Fatalf("%s: measured loop took no summary folds", ctx)
		}
	}

	rt, stmts := newRT()
	var snap []byte
	saves := 0
	err := rt.SetCheckpoint(1000, -1, func(_ event.Time, write func(io.Writer) error) error {
		saves++
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return err
		}
		snap = buf.Bytes()
		return nil
	}, func(err error) { t.Errorf("checkpoint save: %v", err) })
	if err != nil {
		t.Fatal(err)
	}

	// Warmup crosses the 1000 and 2000 boundaries: snapshots fire there,
	// panes expire and charge the pools; the measured window (2100..2399)
	// stays below the next boundary at 3000.
	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	for i := 0; i < 21000; i++ {
		id++
		if err := rt.Process(allocStockEvent(id, event.Time(i/10), "c0", price(id))); err != nil {
			t.Fatal(err)
		}
	}
	if saves != 2 {
		t.Fatalf("warmup fired %d checkpoints, want 2", saves)
	}
	const runs = 300
	evs := make([]*event.Event, runs)
	for i := range evs {
		id++
		evs[i] = allocStockEvent(id, event.Time(2100+i), "c0", price(id))
	}
	measure(rt, stmts, evs, "armed")

	// Restore the boundary-2000 snapshot and re-arm the same schedule.
	rtR, info, err := RestoreRuntime(snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayFrom != 2000 {
		t.Fatalf("replay bound %d, want 2000", info.ReplayFrom)
	}
	err = rtR.SetCheckpoint(1000, info.ReplayFrom,
		func(_ event.Time, write func(io.Writer) error) error { return write(io.Discard) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Churn through two more window closes (3000, 4000) so expiring
	// panes recharge the restored runtime's pools, then measure inside
	// the 4200..4499 window — clear of the next boundary at 5000.
	for i := 0; i < 21000; i++ {
		id++
		if err := rtR.Process(allocStockEvent(id, event.Time(2100+i/10), "c0", price(id))); err != nil {
			t.Fatal(err)
		}
	}
	evsR := make([]*event.Event, runs)
	for i := range evsR {
		id++
		evsR[i] = allocStockEvent(id, event.Time(4200+i), "c0", price(id))
	}
	measure(rtR, rtR.Statements(), evsR, "restored")
}

// testNoHotPathAllocsMultiStatement guards the Runtime's shared ingest
// across MANY distinct route signatures: steady-state Process with six
// registered statements over six different partition-attribute lists
// must stay zero-alloc — one hash per signature per event, no per-event
// hash array spilling to the heap, and each statement's engine on its
// own 0-alloc path against untouched per-spec pools.
func testNoHotPathAllocsMultiStatement(t *testing.T) {
	srcs := []string{
		// Six distinct partition-attribute signatures (group-by attrs
		// lead, equivalence attrs follow).
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
			"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000", // [company company]
		"RETURN COUNT(*), MIN(S.price) PATTERN Stock S+ " +
			"WHERE S.price < NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000", // [company]
		"RETURN SUM(S.price) PATTERN Stock S+ " +
			"WHERE [price] AND S.price >= NEXT(S).price WITHIN 1000 SLIDE 1000", // [price]
		"RETURN COUNT(*) PATTERN Stock S+ " +
			"WHERE [price] AND S.price >= NEXT(S).price GROUP-BY price WITHIN 1000 SLIDE 1000", // [price price]
		"RETURN COUNT(*) PATTERN Stock S+ " +
			"WHERE [price] AND S.price >= NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000", // [company price]
		"RETURN COUNT(*) PATTERN Stock S+ " +
			"WHERE S.price > NEXT(S).price WITHIN 1000 SLIDE 1000", // [] (ungrouped)
	}
	rt := NewRuntime()
	stmts := make([]*Stmt, len(srcs))
	for i, src := range srcs {
		plan, err := NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i], err = rt.Register(plan, StmtConfig{})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Six statements, six distinct partition-attribute signatures: one
	// hash each per event, all computed inline (the parallel path's
	// pooled spill for > 4 signatures is covered by
	// TestRuntimeParallelManySignatures).
	if got := rt.RouteGroups(); got != len(srcs) {
		t.Fatalf("route groups = %d, want %d (distinct hashes)", got, len(srcs))
	}

	// Warmup: expire panes so every statement's per-spec pools are
	// charged and the c0 partitions exist.
	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	for i := 0; i < 21000; i++ {
		id++
		if err := rt.Process(allocStockEvent(id, event.Time(i/10), "c0", price(id))); err != nil {
			t.Fatal(err)
		}
	}

	const runs = 300
	evs := make([]*event.Event, runs)
	for i := range evs {
		id++
		evs[i] = allocStockEvent(id, event.Time(2100+i), "c0", price(id))
	}
	before := make([]Stats, len(stmts))
	for i, st := range stmts {
		before[i] = st.Engine().Stats()
	}
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		if err := rt.Process(evs[i]); err != nil {
			panic(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state multi-statement Process allocates %.2f objects/op, want 0", avg)
	}
	// Guard against the guard: every statement must have inserted the
	// measured events and traversed edges.
	for i, st := range stmts {
		after := st.Engine().Stats()
		if got := after.Inserted - before[i].Inserted; got < runs {
			t.Fatalf("statement %d inserted %d vertices in measured loop, want >= %d", i, got, runs)
		}
		if after.Edges == before[i].Edges {
			t.Fatalf("statement %d traversed no edges", i)
		}
	}
}

// testNoHotPathAllocsSharedStatements guards the shared sub-plan
// network's steady state: four statements with divergent RETURN
// clauses collapsed onto ONE shared graph must process events with
// zero allocations — the union-definition payloads come from the same
// per-spec pools, and the per-subscriber fan-out only runs at window
// close, never on the per-event path.
func testNoHotPathAllocsSharedStatements(t *testing.T) {
	rest := "PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000"
	srcs := []string{
		"RETURN COUNT(*) " + rest,
		"RETURN COUNT(*), SUM(S.price) " + rest,
		"RETURN MIN(S.price), MAX(S.price) " + rest,
		"RETURN AVG(S.price) " + rest,
	}
	rt := NewRuntime()
	stmts := make([]*Stmt, len(srcs))
	for i, src := range srcs {
		plan, err := NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i], err = rt.Register(plan, StmtConfig{Share: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	if rs := rt.Stats(); rs.SharedGraphs != 1 || rs.SharedStatements != len(srcs) {
		t.Fatalf("sharing did not engage: %+v", rs)
	}

	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	for i := 0; i < 21000; i++ {
		id++
		if err := rt.Process(allocStockEvent(id, event.Time(i/10), "c0", price(id))); err != nil {
			t.Fatal(err)
		}
	}

	const runs = 300
	evs := make([]*event.Event, runs)
	for i := range evs {
		id++
		evs[i] = allocStockEvent(id, event.Time(2100+i), "c0", price(id))
	}
	before := stmts[0].Stats()
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		if err := rt.Process(evs[i]); err != nil {
			panic(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state shared-statement Process allocates %.2f objects/op, want 0", avg)
	}
	after := stmts[0].Stats()
	if got := after.Inserted - before.Inserted; got < runs {
		t.Fatalf("shared graph inserted %d vertices in measured loop, want >= %d", got, runs)
	}
	if after.Edges == before.Edges {
		t.Fatal("shared graph traversed no edges")
	}
	if after.SummaryFolds == before.SummaryFolds {
		t.Fatal("shared graph took no summary folds (fast path not exercised)")
	}
}

// allocHaltEvent builds one schemaless halt event (the negative
// sub-pattern's type in the negation alloc guard).
func allocHaltEvent(id uint64, t event.Time, company string) *event.Event {
	return &event.Event{
		ID:    id,
		Type:  "Halt",
		Time:  t,
		Attrs: map[string]float64{},
		Str:   map[string]string{"company": company},
	}
}

// testNoHotPathAllocsNegation guards the negation fold path: a Case-2
// dependency (SEQ(Pi, NOT N)) whose maxStart watermark keeps advancing
// during the measured loop, so summary folds, watermark revalidation,
// AND in-place summary rebuilds all run at steady state — with zero
// allocations, because rebuild payloads, invalidation records, and
// vertices all come from the per-spec pools.
func testNoHotPathAllocsNegation(t *testing.T) {
	// A long window (as in the fold/scan subtests) so the measured loop
	// advances time without closing a window, while the warmup still
	// expires panes to charge the pools.
	q := query.MustParse("RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000")
	plan, err := NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(plan)

	// Warmup: expire panes to charge the pools, and run several halts so
	// the invalidation machinery (records, watermark maps, rebuild
	// scratch) reaches its steady footprint.
	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	tick := event.Time(0)
	for i := 0; i < 21000; i++ {
		id++
		tick = event.Time(i / 10)
		eng.Process(allocStockEvent(id, tick, "c0", price(id)))
		if i%500 == 499 {
			id++
			eng.Process(allocHaltEvent(id, tick, "c0"))
		}
	}

	// Steady state: advancing timestamps, one halt every 50 events so
	// watermarks advance (wmVer bumps) and dirty panes rebuild inside
	// the measured loop.
	const runs = 300
	evs := make([]*event.Event, runs)
	base := tick + 1
	for i := range evs {
		id++
		if i%50 == 25 {
			evs[i] = allocHaltEvent(id, base+event.Time(i), "c0")
		} else {
			evs[i] = allocStockEvent(id, base+event.Time(i), "c0", price(id))
		}
	}
	before := eng.Stats()
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		eng.Process(evs[i])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state negation Process allocates %.2f objects/op, want 0", avg)
	}
	// Guard against the guard: the loop must have exercised insertion,
	// summary folds, AND watermark-driven rebuilds.
	after := eng.Stats()
	if got := after.Inserted - before.Inserted; got < runs/2 {
		t.Fatalf("measured loop inserted %d vertices, want >= %d", got, runs/2)
	}
	if folds := after.SummaryFolds - before.SummaryFolds; folds < runs/2 {
		t.Fatalf("measured loop took %d summary folds, want >= %d (negation fold path not exercised)", folds, runs/2)
	}
	if after.SummaryRebuilds == before.SummaryRebuilds {
		t.Fatal("measured loop triggered no summary rebuilds (watermark advances not exercised)")
	}
	if after.Edges == before.Edges {
		t.Fatal("measured loop traversed no edges")
	}
}

func testNoHotPathAllocs(t *testing.T, forceScan bool) {
	// A long window so the measured loop can advance time (keeping
	// summary folds eligible: adjacency needs predecessor time strictly
	// below the event's) without closing a window mid-measurement.
	q := query.MustParse("RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 1000 SLIDE 1000")
	plan, err := NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(plan)
	eng.SetForceVertexScan(forceScan)

	// Warmup: stream enough events through enough windows that panes
	// expire and charge the vertex/payload/node pools (recycled nodes
	// carry their emptied subtree summaries), and the partition
	// (company c0) exists.
	id := uint64(0)
	price := func(i uint64) float64 { return float64(1000 - i%7) }
	for i := 0; i < 21000; i++ {
		id++
		eng.Process(allocStockEvent(id, event.Time(i/10), "c0", price(id)))
	}

	// Steady state: advancing timestamps inside the current window —
	// every Process matches the vertex state, aggregates predecessors
	// (folding pane/subtree summaries unless forced to scan), and
	// stores a pooled vertex into the augmented tree.
	const runs = 300
	evs := make([]*event.Event, runs)
	for i := range evs {
		id++
		evs[i] = allocStockEvent(id, event.Time(2100+i), "c0", price(id))
	}
	before := eng.Stats()
	i := 0
	avg := testing.AllocsPerRun(runs-1, func() {
		eng.Process(evs[i])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Process allocates %.2f objects/op, want 0", avg)
	}
	// Guard against the guard: the measured events must actually have
	// exercised the insertion path (vertex + payload + tree insert), not
	// a filtered no-op — and the intended scan discipline.
	after := eng.Stats()
	if got := after.Inserted - before.Inserted; got < runs {
		t.Fatalf("measured loop inserted %d vertices, want >= %d (test no longer exercises the hot path)", got, runs)
	}
	folds := after.SummaryFolds - before.SummaryFolds
	if forceScan && folds != 0 {
		t.Fatalf("forced vertex scan still took %d summary folds", folds)
	}
	if !forceScan && folds < runs {
		t.Fatalf("measured loop took %d summary folds, want >= %d (fast path no longer exercised)", folds, runs)
	}
	if after.Edges == before.Edges {
		t.Fatal("measured loop traversed no edges")
	}
}

// BenchmarkPartitionRouting measures the hash-first partition lookup in
// isolation: hashing the partitioning attributes of a schema-bound
// event and resolving the partition with collision verification.
func BenchmarkPartitionRouting(b *testing.B) {
	q := query.MustParse("RETURN COUNT(*) PATTERN Stock S+ " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 10 SLIDE 10")
	plan, err := NewPlan(q, aggregate.ModeNative)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(plan)
	const companies = 64
	evs := make([]*event.Event, companies)
	for c := range evs {
		evs[c] = allocStockEvent(uint64(c+1), 0, fmt.Sprintf("co%02d", c), 100)
		eng.Process(evs[c]) // create the partition
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := evs[i%companies]
		h := eng.routeHash(ev)
		if eng.lookupPartition(h, ev) == nil {
			b.Fatal("partition missing")
		}
	}
}

// BenchmarkPayloadPool compares pooled payload recycling against fresh
// allocation, for the payload shape of a COUNT + SUM query.
func BenchmarkPayloadPool(b *testing.B) {
	def := &aggregate.Def{Mode: aggregate.ModeNative}
	def.AddSlot(aggregate.Slot{Kind: aggregate.SlotSum, Type: "Stock", Attr: "price"})
	def.AddSlot(aggregate.Slot{Kind: aggregate.SlotCountE, Type: "Stock"})
	b.Run("pooled", func(b *testing.B) {
		pool := aggregate.NewPool(def)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pool.Get()
			p.Count = 1
			pool.Put(p)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := def.New()
			p.Count = 1
			_ = p
		}
	})
}
