package core

import (
	"context"
	"math"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
)

// RunParallel consumes the stream with parallel workers shared by
// every registered statement (paper §7, "Parallel Processing"):
// partitions are hashed onto workers, so each sub-stream is processed
// independently. Results stream out as windows close — the coordinator
// broadcasts a per-window barrier per statement, each worker releases
// the window (emitting its partial aggregates) and acknowledges, and
// the merger emits the merged result once every worker has passed the
// barrier. Worker result buffers are therefore bounded by the number
// of concurrently open windows, not the stream length.
//
// RunParallel drives the whole stream and closes the runtime at the
// end (all statements flush). It must own the runtime from the start:
// if events were already processed sequentially, or no statement is
// partitioned, or workers <= 1, it falls back to the sequential Run
// followed by Close. Statements cannot be registered or closed while
// it runs. Result callbacks fire from internal goroutines.
func (rt *Runtime) RunParallel(ctx context.Context, s event.Stream, workers int) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	// Snapshot the parallel units: simple partitioned plans, with the
	// subscribers of a shared graph collapsed onto the graph's host
	// statement (the engine runs once per graph, and the fan-out
	// delivers per subscriber). Everything else (composite plans,
	// ungrouped queries) is processed inline on the coordinator,
	// exactly as sequentially.
	var parStmts []*Stmt
	var inline []*Stmt
	groupIdx := map[*routeGroup]int{}
	var groups []*routeGroup
	seenEntry := map[*sharedEntry]bool{}
	for _, st := range rt.stmts {
		unit := st
		if st.entry != nil {
			if seenEntry[st.entry] {
				continue
			}
			seenEntry[st.entry] = true
			unit = st.entry.host
		}
		if unit.grp != nil && len(unit.grp.acc) > 0 {
			if _, ok := groupIdx[unit.grp]; !ok {
				groupIdx[unit.grp] = len(groups)
				groups = append(groups, unit.grp)
			}
			parStmts = append(parStmts, unit)
		} else {
			inline = append(inline, unit)
		}
	}
	// A runtime with reorder slack armed runs sequentially: the
	// buffer's release order is defined over one arrival sequence.
	if workers <= 1 || len(parStmts) == 0 || rt.watermark >= 0 || rt.reorder != nil {
		rt.mu.Unlock()
		if err := rt.Run(ctx, s); err != nil {
			_ = rt.Close()
			return err
		}
		return rt.Close()
	}
	rt.running = true
	rt.mu.Unlock()
	err := rt.runParallel(ctx, s, workers, parStmts, inline, groups, groupIdx)
	rt.mu.Lock()
	rt.running = false
	rt.mu.Unlock()
	if cerr := rt.Close(); err == nil {
		err = cerr
	}
	return err
}

const (
	pmEvent uint8 = iota
	pmBarrier
)

// parMsg is one coordinator→worker message: a routed event (mask
// selects which route groups this worker processes it for) or a
// per-statement window barrier. Per-group routing hashes ride in the
// inline hsArr for up to len(hsArr) groups — the common case, kept
// allocation-free — and spill to a pooled, refcounted hash array
// beyond (shared read-only by every targeted worker, recycled when the
// last one is done — no per-event heap allocation either way). Beyond
// 64 route groups the single mask word no longer covers the fleet and
// the spill additionally carries one group bitset per worker (see
// hashSpill.masks); mask is unused then.
type parMsg struct {
	kind  uint8
	ev    *event.Event
	hsArr [4]uint64
	spill *hashSpill // per-group hashes when len(groups) > len(hsArr)
	mask  uint64     // bit per route group (runs with <= 64 groups)
	si    int        // barrier: statement index
	t     event.Time
	hi    int64 // barrier: highest window id closed by t
}

// hashSpill is a pooled per-event hash array for runs with more route
// groups than parMsg's inline array holds. The coordinator fills it,
// sets refs to the number of targeted workers, and every worker
// releases once after processing; the last release recycles it.
type hashSpill struct {
	hs []uint64
	// masks holds, per worker, the event's route-group bitset
	// (ceil(groups/64) words) for runs with more than 64 groups —
	// parMsg.mask cannot carry them. Each worker reads only its own
	// row, so the shared spill stays write-once per event. nil for
	// <= 64 groups.
	masks [][]uint64
	refs  atomic.Int32
}

// release returns the spill to its pool when the last worker is done.
func (sp *hashSpill) release(pool *sync.Pool) {
	if sp != nil && sp.refs.Add(-1) == 0 {
		pool.Put(sp)
	}
}

// mergeMsg is one worker→merger message: a per-window partial result,
// or a barrier acknowledgement ("this worker has released every window
// of statement si up to hi").
type mergeMsg struct {
	w   int
	si  int
	r   Result
	ack bool
	hi  int64
}

// parallelDebug captures streaming-merge instrumentation for tests.
type parallelDebug struct {
	// maxPending is the largest number of simultaneously pending
	// (unmerged) windows across all statements — the merge buffer bound.
	maxPending int
	// workerRetained sums len(results) across worker engines at flush;
	// the streaming merge keeps it at zero (workers do not buffer).
	workerRetained int
}

func (rt *Runtime) runParallel(ctx context.Context, s event.Stream, workers int,
	parStmts, inline []*Stmt, groups []*routeGroup, groupIdx map[*routeGroup]int) error {
	// Statement index sets per group, and each statement's group bit.
	stmtsOfGroup := make([][]int, len(groups))
	for si, st := range parStmts {
		gi := groupIdx[st.grp]
		stmtsOfGroup[gi] = append(stmtsOfGroup[gi], si)
	}

	mergeCh := make(chan mergeMsg, 1024)
	chans := make([]chan parMsg, workers)
	engines := make([][]*Engine, workers) // [worker][statement]
	// spills recycles the per-event hash arrays of >len(hsArr)-group
	// runs between the coordinator and the workers; fleets past 64
	// groups also carry their per-worker group bitsets here.
	maskWords := (len(groups) + 63) / 64
	spills := &sync.Pool{New: func() any {
		sp := &hashSpill{hs: make([]uint64, len(groups))}
		if len(groups) > 64 {
			sp.masks = make([][]uint64, workers)
			for w := range sp.masks {
				sp.masks[w] = make([]uint64, maskWords)
			}
		}
		return sp
	}}
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		engines[w] = make([]*Engine, len(parStmts))
		for si, st := range parStmts {
			we := NewEngine(st.eng.plan)
			we.SetForceVertexScan(st.eng.forceScan)
			we.setRetainResults(false)
			w, si := w, si
			we.OnResult(func(r Result) { mergeCh <- mergeMsg{w: w, si: si, r: r} })
			engines[w][si] = we
		}
		chans[w] = make(chan parMsg, 1024)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for m := range chans[w] {
				switch m.kind {
				case pmEvent:
					if m.spill != nil && m.spill.masks != nil {
						// > 64 route groups: walk this worker's bitset words,
						// peeling set bits with trailing-zero counts.
						for wi, word := range m.spill.masks[w] {
							for word != 0 {
								bit := bits.TrailingZeros64(word)
								word &^= 1 << uint(bit)
								gi := wi<<6 | bit
								h := m.spill.hs[gi]
								for _, si := range stmtsOfGroup[gi] {
									engines[w][si].ProcessRouted(m.ev, h)
								}
							}
						}
						m.spill.release(spills)
						continue
					}
					for gi := range groups {
						if m.mask&(1<<uint(gi)) == 0 {
							continue
						}
						var h uint64
						if m.spill != nil { // spilled: more groups than hsArr holds
							h = m.spill.hs[gi]
						} else {
							h = m.hsArr[gi]
						}
						for _, si := range stmtsOfGroup[gi] {
							engines[w][si].ProcessRouted(m.ev, h)
						}
					}
					m.spill.release(spills)
				case pmBarrier:
					engines[w][m.si].AdvanceTo(m.t)
					mergeCh <- mergeMsg{w: w, si: m.si, ack: true, hi: m.hi}
				}
			}
			if abort.Load() {
				return
			}
			// End of stream: release every open window, then a final ack.
			for si := range parStmts {
				engines[w][si].Flush()
				mergeCh <- mergeMsg{w: w, si: si, ack: true, hi: math.MaxInt64}
			}
		}(w)
	}

	mergerDone := make(chan struct{})
	var debug parallelDebug
	go mergeLoop(mergeCh, mergerDone, parStmts, workers, &abort, &debug)

	err := feedWorkers(ctx, s, workers, parStmts, inline, groups, chans, spills, &abort, rt.met)

	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	close(mergeCh)
	<-mergerDone

	// Fold worker stats into the statements' engines; the sum of
	// sampled worker peaks is an upper bound on the concurrent peak
	// (see mergeStats).
	for si, st := range parStmts {
		for w := 0; w < workers; w++ {
			we := engines[w][si]
			st.eng.stats.Events += we.stats.Events
			st.eng.mergeStats(we)
			debug.workerRetained += len(we.results)
		}
	}
	rt.parDebug = &debug
	return err
}

// feedWorkers drives the stream: per event it computes one routing
// hash per distinct partition-attribute signature, broadcasts window
// barriers for statements whose windows the event closes, and sends
// the event to the workers owning the targeted partitions.
func feedWorkers(ctx context.Context, s event.Stream, workers int,
	parStmts, inline []*Stmt, groups []*routeGroup, chans []chan parMsg,
	spills *sync.Pool, abort *atomic.Bool, met *rtMetrics) error {
	done := ctx.Done()
	masks := make([]uint64, workers)
	touched := make([]int, 0, workers)
	var watermark event.Time = -1
	var ooo uint64
	defer func() {
		// Out-of-order drops were counted at the coordinator (events are
		// not forwarded); charge them to every statement's stats, as the
		// sequential path does.
		for _, st := range parStmts {
			st.eng.stats.OutOfOrder += ooo
		}
		for _, st := range inline {
			st.eng.stats.OutOfOrder += ooo
		}
	}()
	for ev := s.Next(); ev != nil; ev = s.Next() {
		if done != nil {
			select {
			case <-done:
				abort.Store(true)
				return ctx.Err()
			default:
			}
		}
		// Live gauges: the feed goroutine owns the stream while rt.mu is
		// free, so the cells (not rt.watermark) are what a concurrent
		// scrape observes mid-run. Atomics only — the feed loop shares
		// the hot path's 0-alloc discipline.
		if met != nil {
			met.events.Inc()
			met.maxSeen.SetMax(ev.Time)
		}
		if ev.Time < watermark {
			ooo++
			if met != nil {
				met.drops.Inc()
			}
			continue
		}
		watermark = ev.Time
		if met != nil {
			met.watermark.Set(ev.Time)
		}
		// Window barriers precede the event that closes the window, so
		// every worker releases wid before any post-window event.
		for si, st := range parStmts {
			if _, hi, ok := st.eng.plan.Window.ClosedBy(st.parPrev, ev.Time); ok {
				for w := 0; w < workers; w++ {
					chans[w] <- parMsg{kind: pmBarrier, si: si, t: ev.Time, hi: hi}
				}
			}
			st.parPrev = ev.Time
		}
		// Inline statements run on the coordinator, preserving sequential
		// semantics for unpartitioned and composite plans.
		for _, st := range inline {
			st.eng.Process(ev)
		}
		if len(groups) == 1 {
			h := hashRoute(groups[0].acc, ev)
			msg := parMsg{kind: pmEvent, ev: ev, mask: 1}
			msg.hsArr[0] = h
			chans[int(h%uint64(workers))] <- msg
			continue
		}
		if len(groups) > 64 {
			// Wide fan-out: the single mask word cannot carry the fleet,
			// so the spill doubles as the routing bitmap — one
			// ceil(groups/64)-word row per worker, zeroed lazily on the
			// worker's first touch this event (masks[w] is repurposed as
			// the touch flag). Still no per-event allocation: the spill
			// rows are pooled alongside the hash array.
			spill := spills.Get().(*hashSpill)
			touched = touched[:0]
			for gi, g := range groups {
				h := hashRoute(g.acc, ev)
				spill.hs[gi] = h
				w := int(h % uint64(workers))
				if masks[w] == 0 {
					touched = append(touched, w)
					masks[w] = 1
					row := spill.masks[w]
					for i := range row {
						row[i] = 0
					}
				}
				spill.masks[w][gi>>6] |= 1 << uint(gi&63)
			}
			spill.refs.Store(int32(len(touched)))
			for _, w := range touched {
				chans[w] <- parMsg{kind: pmEvent, ev: ev, spill: spill}
				masks[w] = 0
			}
			continue
		}
		// Multi-signature fan-out: one hash per group, one message per
		// distinct target worker. Up to len(hsArr) groups ride inline;
		// larger fleets share one pooled, refcounted spill array —
		// neither path allocates per event.
		var hsArr [4]uint64
		var spill *hashSpill
		if len(groups) > len(hsArr) {
			spill = spills.Get().(*hashSpill)
		}
		touched = touched[:0]
		for gi, g := range groups {
			h := hashRoute(g.acc, ev)
			if spill != nil {
				spill.hs[gi] = h
			} else {
				hsArr[gi] = h
			}
			w := int(h % uint64(workers))
			if masks[w] == 0 {
				touched = append(touched, w)
			}
			masks[w] |= 1 << uint(gi)
		}
		if spill != nil {
			spill.refs.Store(int32(len(touched)))
		}
		for _, w := range touched {
			chans[w] <- parMsg{kind: pmEvent, ev: ev, hsArr: hsArr, spill: spill, mask: masks[w]}
			masks[w] = 0
		}
	}
	return nil
}

// mergeLoop is the streaming merger: it holds, per statement, the
// per-window partial payloads of each worker, and emits a window the
// moment every worker has released it. Partials are merged in worker
// index order, keeping float aggregation deterministic.
func mergeLoop(mergeCh <-chan mergeMsg, done chan<- struct{},
	parStmts []*Stmt, workers int, abort *atomic.Bool, debug *parallelDebug) {
	defer close(done)
	type widPartial struct {
		groups map[string][]*aggregate.Payload // group → per-worker payloads
	}
	type stMerge struct {
		pending  map[int64]*widPartial
		released []int64 // per worker: highest released wid
	}
	states := make([]*stMerge, len(parStmts))
	for si := range states {
		rel := make([]int64, workers)
		for w := range rel {
			rel[w] = math.MinInt64
		}
		states[si] = &stMerge{pending: map[int64]*widPartial{}, released: rel}
	}
	pendingTotal := 0
	for m := range mergeCh {
		ms := states[m.si]
		if !m.ack {
			wp := ms.pending[m.r.Wid]
			if wp == nil {
				wp = &widPartial{groups: map[string][]*aggregate.Payload{}}
				ms.pending[m.r.Wid] = wp
				pendingTotal++
				if pendingTotal > debug.maxPending {
					debug.maxPending = pendingTotal
				}
			}
			slot := wp.groups[m.r.Group]
			if slot == nil {
				slot = make([]*aggregate.Payload, workers)
				wp.groups[m.r.Group] = slot
			}
			slot[m.w] = m.r.Payload
			continue
		}
		if m.hi <= ms.released[m.w] {
			continue
		}
		ms.released[m.w] = m.hi
		minRel := ms.released[0]
		for _, r := range ms.released[1:] {
			if r < minRel {
				minRel = r
			}
		}
		if len(ms.pending) == 0 || abort.Load() {
			continue
		}
		var ready []int64
		for wid := range ms.pending {
			if wid <= minRel {
				ready = append(ready, wid)
			}
		}
		slices.Sort(ready)
		st := parStmts[m.si]
		def := st.eng.plan.Def()
		for _, wid := range ready {
			wp := ms.pending[wid]
			delete(ms.pending, wid)
			pendingTotal--
			groups := make([]string, 0, len(wp.groups))
			for g := range wp.groups {
				groups = append(groups, g)
			}
			slices.Sort(groups)
			for _, g := range groups {
				var merged *aggregate.Payload
				for _, pl := range wp.groups[g] {
					if pl == nil {
						continue
					}
					if merged == nil {
						merged = pl
					} else {
						def.Merge(merged, pl)
					}
				}
				if merged != nil {
					st.eng.emit(g, wid, merged)
				}
			}
		}
	}
}
