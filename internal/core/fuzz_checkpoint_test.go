package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/checkpoint"
	"github.com/greta-cep/greta/internal/event"
)

// fuzzShapes are the statement mixes the round-trip fuzzer builds
// runtimes from; each exercises a different serialized surface.
var fuzzShapes = []struct {
	name    string
	queries []string
	mode    aggregate.Mode
	txn     bool
	share   bool
	slack   int64 // > 0 arms the reorder buffer (and a session-meta blob)
}{
	{"minmax-nan", []string{ // NaN sort keys in MIN/MAX summary trees
		"RETURN MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WHERE [company] WITHIN 20 SLIDE 5",
	}, aggregate.ModeNative, false, false, 0},
	{"shared-pair", []string{ // one shared graph, union payload slots
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN SUM(S.price), MIN(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
	}, aggregate.ModeNative, false, true, 0},
	{"negation", []string{ // invalidation cursors, wmVer summaries
		"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
		"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] WITHIN 24 SLIDE 8",
	}, aggregate.ModeNative, false, false, 0},
	{"exact", []string{ // big.Int counters, big.Float sums
		"RETURN COUNT(*), SUM(S.price), AVG(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
	}, aggregate.ModeExact, false, false, 0},
	{"txn-disjunction", []string{ // batch buffers + composite engines
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5",
	}, aggregate.ModeNative, true, false, 0},
	{"reorder-meta", []string{ // disorder window + session-meta blob (v2 frame)
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN COUNT(*) PATTERN Stock S+ OR Halt H+ WITHIN 20 SLIDE 5",
	}, aggregate.ModeNative, false, false, 4},
}

// fuzzBuild feeds a randomized workload into a runtime of the given
// shape and captures every scheduled checkpoint plus a final manual
// one.
func fuzzBuild(t testing.TB, shape int, seed int64, nEv int, every event.Time) []rcSnap {
	t.Helper()
	sh := fuzzShapes[shape]
	rt := NewRuntime()
	if sh.slack > 0 {
		if err := rt.SetReorderSlack(event.Time(sh.slack)); err != nil {
			t.Fatal(err)
		}
		rt.SetCheckpointMeta(func() []byte { return []byte(`{"sess":"fuzz","cursor":7}`) })
	}
	for i, q := range sh.queries {
		cfg := StmtConfig{Share: sh.share}
		if sh.txn && i == 0 {
			cfg.Transactional = true
		}
		rcRegister(t, rt, "", q, sh.mode, cfg)
	}
	var snaps []rcSnap
	rcCapture(t, rt, every, -1, &snaps)
	evs := rcStream(rand.New(rand.NewSource(seed)), nEv, sh.mode != aggregate.ModeExact, 8, 20)
	if sh.slack > 0 {
		rcJitter(rand.New(rand.NewSource(seed^0x5eed)), evs, sh.slack)
	}
	rcFeed(rt, evs, 0)
	if err := rt.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// FuzzCheckpointRoundTrip asserts encode → decode → encode is the
// identity on the bytes: every captured snapshot, decoded with
// RestoreRuntime and re-serialized with the same replay bound, must
// reproduce itself bit for bit. The format is deterministic (sorted
// keys, first-encounter event references), so any divergence means
// state was lost or invented in the round trip — including NaN sort
// keys, degenerate-key counters, big.Int/big.Float exact aggregates,
// and shared-entry topology.
func FuzzCheckpointRoundTrip(f *testing.F) {
	for shape := range fuzzShapes {
		f.Add(shape, int64(1), 160, int64(16))
	}
	f.Add(0, int64(7), 300, int64(8))
	f.Add(2, int64(3), 240, int64(48))
	f.Fuzz(func(t *testing.T, shape int, seed int64, nEv int, everyRaw int64) {
		if shape < 0 {
			shape = -shape
		}
		shape %= len(fuzzShapes)
		nEv = 20 + absInt(nEv)%280
		every := event.Time(4 + absInt64(everyRaw)%44)

		snaps := fuzzBuild(t, shape, seed, nEv, every)
		for i, sn := range snaps {
			rtR, info, err := RestoreRuntime(sn.data)
			if err != nil {
				t.Fatalf("snapshot %d: restore: %v", i, err)
			}
			if info.ReplayFrom != sn.replayFrom || info.Every != every {
				t.Fatalf("snapshot %d: info %+v, want replay %d every %d", i, info, sn.replayFrom, every)
			}
			// Arm the same schedule so the re-encoded header carries the
			// same interval, then re-serialize with the original bound.
			rcDiscard(t, rtR, every, info.ReplayFrom)
			var buf bytes.Buffer
			if err := rtR.encodeLocked(&buf, sn.replayFrom); err != nil {
				t.Fatalf("snapshot %d: re-encode: %v", i, err)
			}
			if !bytes.Equal(sn.data, buf.Bytes()) {
				t.Fatalf("snapshot %d: round trip diverges (%d bytes vs %d)",
					i, len(sn.data), len(buf.Bytes()))
			}
		}
	})
}

func absInt(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}

func absInt64(v int64) int64 {
	if v < 0 {
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}

// FuzzRestoreCorrupt asserts RestoreRuntime never panics on arbitrary
// input: it either succeeds or returns an error (structural damage is
// reported as checkpoint.ErrCorrupt). The seed corpus is a set of
// valid bodies, which the fuzzer then mutates into near-valid ones —
// the interesting region where naive decoders index out of range.
func FuzzRestoreCorrupt(f *testing.F) {
	for shape := range fuzzShapes {
		snaps := fuzzBuild(f, shape, 1, 120, 16)
		f.Add(snaps[len(snaps)-1].data)
		f.Add(snaps[0].data)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rt, _, err := RestoreRuntime(data)
		if err != nil {
			if rt != nil {
				t.Fatal("error with non-nil runtime")
			}
			return
		}
		// A successful decode must at least produce a coherent topology.
		if rt.Stats().Statements != len(rt.Statements()) {
			t.Fatal("restored runtime is incoherent")
		}
	})
}

// TestRestoreCorruptErrors pins a few specific corruptions to the
// error (not panic) contract without relying on the fuzz engine.
func TestRestoreCorruptErrors(t *testing.T) {
	snaps := fuzzBuild(t, 1, 1, 120, 16)
	data := snaps[len(snaps)-1].data
	if _, _, err := RestoreRuntime(nil); err == nil {
		t.Fatal("RestoreRuntime(nil) succeeded")
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad-version", func(b []byte) []byte { b[0] = 0xff; return b }},
		{"flipped-mid", func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), data...))
			if _, _, err := RestoreRuntime(mut); err == nil {
				// Flipping one byte mid-body can land in a don't-care slot
				// (e.g. a float payload); only structural mutations must fail.
				if tc.name != "flipped-mid" {
					t.Fatal("corrupt restore succeeded")
				}
			} else if !errors.Is(err, checkpoint.ErrCorrupt) && tc.name != "flipped-mid" {
				// Structural mutations should classify as corruption.
				t.Logf("non-ErrCorrupt error (acceptable): %v", err)
			}
		})
	}
}
