package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/enum"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// randStream builds a random in-order stream over types A..D with a
// numeric attribute x, an equivalence attribute g, and occasional
// duplicate timestamps.
func randStream(rng *rand.Rand, n int) []*event.Event {
	types := []event.Type{"A", "B", "C", "D", "E"}
	var b event.Builder
	t := event.Time(1)
	for i := 0; i < n; i++ {
		if rng.Intn(4) != 0 {
			t += event.Time(rng.Intn(3) + 1)
		}
		typ := types[rng.Intn(len(types))]
		b.AddStr(typ, t,
			map[string]float64{"x": float64(rng.Intn(8))},
			map[string]string{"g": fmt.Sprintf("g%d", rng.Intn(2))})
	}
	return b.Events()
}

// propQueries is the pool of query shapes exercised by the
// cross-validation property: Kleene, nesting, negation (all three
// cases), predicates, grouping, windows, multi-occurrence, sugar.
var propQueries = []string{
	"RETURN COUNT(*) PATTERN A+",
	"RETURN COUNT(*) PATTERN SEQ(A+, B)",
	"RETURN COUNT(*) PATTERN (SEQ(A+, B))+",
	"RETURN COUNT(*) PATTERN SEQ(A, B+, C)",
	"RETURN COUNT(*) PATTERN SEQ(A+, B+)",
	"RETURN COUNT(*), COUNT(A), MIN(A.x), MAX(A.x), SUM(A.x), AVG(A.x) PATTERN (SEQ(A+, B))+",
	"RETURN COUNT(*), SUM(B.x) PATTERN SEQ(A, B+)",
	"RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x",
	"RETURN COUNT(*) PATTERN A+ WHERE A.x > NEXT(A).x",
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x < NEXT(A).x AND A.x >= 2",
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x * 2 <= NEXT(A).x + 3",
	"RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WHERE [g]",
	"RETURN COUNT(*), SUM(A.x) PATTERN A+ WHERE [g] GROUP-BY g",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT SEQ(C, D), B)",
	"RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT E)",
	"RETURN COUNT(*) PATTERN SEQ(NOT E, A+)",
	"RETURN COUNT(*) PATTERN SEQ(A+, B, A, A+, B+)",
	"RETURN COUNT(*) PATTERN SEQ(A, A+)",
	"RETURN COUNT(*) PATTERN SEQ(A*, B)",
	"RETURN COUNT(*) PATTERN SEQ(A?, B+)",
	"RETURN COUNT(*) PATTERN SEQ(A?, A+)",
	"RETURN COUNT(*) PATTERN A+ OR SEQ(A+, B)",
	"RETURN COUNT(*) PATTERN SEQ(A,B) OR SEQ(B,C)",
	"RETURN COUNT(*) PATTERN A+ WITHIN 6 SLIDE 2",
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 8 SLIDE 4",
	"RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 10 SLIDE 3",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) WITHIN 9 SLIDE 3",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT E) WITHIN 8 SLIDE 4",
	"RETURN COUNT(*) PATTERN SEQ(NOT E, A+) WITHIN 8 SLIDE 4",
	"RETURN COUNT(*), MIN(A.x) PATTERN SEQ(A+, NOT SEQ(C, D), B) WITHIN 12 SLIDE 4",
	"RETURN COUNT(*) PATTERN A+ AND B+",
	"RETURN COUNT(*) PATTERN SEQ(A, B) AND SEQ(B, C)",
	"RETURN COUNT(*) PATTERN A+ AND SEQ(A, B)",
	// Cross-type edge predicates (earlier alias ≠ NEXT alias).
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x <= NEXT(B).x",
	"RETURN COUNT(*) PATTERN SEQ(A, B+, C) WHERE B.x > NEXT(C).x AND A.x < NEXT(B).x",
	// Vertex predicate on one alias of a multi-state pattern.
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x >= 3",
	// Predicates inside negative sub-patterns.
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) WHERE C.x > 4",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT SEQ(C, D), B) WHERE C.x < NEXT(D).x",
	// Negation combined with grouping and several aggregates.
	"RETURN COUNT(*), MAX(A.x) PATTERN SEQ(A+, NOT C, B) WHERE [g] GROUP-BY g",
	// Sugar with windows and grouping.
	"RETURN COUNT(*) PATTERN SEQ(A?, B) WHERE [g] GROUP-BY g WITHIN 6 SLIDE 3",
	"RETURN COUNT(*) PATTERN SEQ(A*, B) WITHIN 8 SLIDE 4",
	"RETURN COUNT(*) PATTERN A+ SEMANTICS skip-till-next-match",
	"RETURN COUNT(*) PATTERN SEQ(A+, B) SEMANTICS skip-till-next-match",
	"RETURN COUNT(*) PATTERN (SEQ(A+, B))+ SEMANTICS skip-till-next-match",
	"RETURN COUNT(*), SUM(A.x) PATTERN A+ WHERE A.x > NEXT(A).x SEMANTICS skip-till-next-match",
	"RETURN COUNT(*) PATTERN A+ SEMANTICS contiguous",
	"RETURN COUNT(*) PATTERN SEQ(A, B) SEMANTICS contiguous",
	"RETURN COUNT(*) PATTERN SEQ(A, B+, C) SEMANTICS contiguous",
	"RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x SEMANTICS contiguous",
}

// checkAgainstOracle runs one query in both engines and compares every
// per-group, per-window aggregate.
func checkAgainstOracle(t *testing.T, qsrc string, evs []*event.Event, mode aggregate.Mode) {
	t.Helper()
	q, err := query.Parse(qsrc)
	if err != nil {
		t.Fatalf("parse %q: %v", qsrc, err)
	}
	plan, err := core.NewPlan(q, mode)
	if err != nil {
		t.Fatalf("plan %q: %v", qsrc, err)
	}
	eng := core.NewEngine(plan)
	eng.Run(event.NewSliceStream(evs))
	got := map[string][]float64{}
	for _, r := range eng.Results() {
		got[fmt.Sprintf("%s/%d", r.Group, r.Wid)] = r.Values
	}
	want, err := enum.Run(q, evs)
	if err != nil {
		t.Fatalf("oracle %q: %v", qsrc, err)
	}
	wantMap := map[string][]float64{}
	for _, r := range want {
		if r.Count == 0 {
			continue
		}
		wantMap[fmt.Sprintf("%s/%d", r.Group, r.Wid)] = r.Values
	}
	if len(got) != len(wantMap) {
		t.Errorf("query %q\nstream %v\nresult keys: got %d (%v), want %d (%v)",
			qsrc, evs, len(got), keys(got), len(wantMap), keys(wantMap))
		return
	}
	for k, wv := range wantMap {
		gv, ok := got[k]
		if !ok {
			t.Errorf("query %q\nstream %v\nmissing result %s", qsrc, evs, k)
			continue
		}
		for i := range wv {
			if !almostEqual(gv[i], wv[i]) {
				t.Errorf("query %q\nstream %v\nresult %s aggregate %d: got %v, want %v",
					qsrc, evs, k, i, gv[i], wv[i])
			}
		}
	}
}

func keys(m map[string][]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func almostEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestPropertyGretaMatchesOracle cross-validates the GRETA runtime
// against the brute-force enumerator on random streams for every query
// shape, in both arithmetic modes.
func TestPropertyGretaMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, qsrc := range propQueries {
		qsrc := qsrc
		t.Run(qsrc, func(t *testing.T) {
			for iter := 0; iter < 40; iter++ {
				n := 3 + rng.Intn(10)
				evs := randStream(rng, n)
				checkAgainstOracle(t, qsrc, evs, aggregate.ModeNative)
			}
			evs := randStream(rng, 10)
			checkAgainstOracle(t, qsrc, evs, aggregate.ModeExact)
		})
	}
}

// TestQuickCountMatchesOracle is a testing/quick property: for random
// byte-seeded streams, GRETA's COUNT(*) for (SEQ(A+,B))+ equals the
// enumerated trend count.
func TestQuickCountMatchesOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		evs := randStream(rng, n)
		q := query.MustParse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+")
		plan, err := core.NewPlan(q, aggregate.ModeNative)
		if err != nil {
			return false
		}
		eng := core.NewEngine(plan)
		eng.Run(event.NewSliceStream(evs))
		var got float64
		if rs := eng.Results(); len(rs) > 0 {
			got = rs[0].Values[0]
		}
		trends, err := enum.Trends(q, evs)
		if err != nil {
			return false
		}
		return got == float64(len(trends))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowedCount is a testing/quick property for windowed
// counting with an edge predicate.
func TestQuickWindowedCount(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	qsrc := "RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE A.x < NEXT(A).x WITHIN 8 SLIDE 2"
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 2
		evs := randStream(rng, n)
		q := query.MustParse(qsrc)
		plan, err := core.NewPlan(q, aggregate.ModeNative)
		if err != nil {
			return false
		}
		eng := core.NewEngine(plan)
		eng.Run(event.NewSliceStream(evs))
		got := map[int64]float64{}
		for _, r := range eng.Results() {
			got[r.Wid] = r.Values[0]
		}
		want, err := enum.Run(q, evs)
		if err != nil {
			return false
		}
		wantMap := map[int64]float64{}
		for _, r := range want {
			if r.Count > 0 {
				wantMap[r.Wid] = r.Values[0]
			}
		}
		if len(got) != len(wantMap) {
			return false
		}
		for k, v := range wantMap {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
