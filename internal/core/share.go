package core

import (
	"fmt"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/share"
)

// This file wires the shared sub-plan network (internal/share) into
// the Runtime: statements whose trend-formation signatures match are
// served by ONE engine — vertices, edges, pane summaries, and pools
// maintained once — with per-statement RETURN divergence handled by
// fanning the shared per-window payload out through each subscriber's
// slot mapping at window close.
//
// Lifecycle model. The first registration of a signature stays an
// ordinary exclusive statement and is recorded as a *candidate*. A
// second compatible registration in the same ingest epoch (no event
// processed in between, so both engines are provably cold) *promotes*
// the candidate: a fresh engine is compiled against the union
// aggregation definition of all subscribers and replaces the
// candidate's engine in its route group, hidden behind an internal
// host statement. Further same-epoch registrations rebuild the union
// the same way. Once an event is processed, the node stops accepting
// subscribers (share.Index epochs): a statement registered mid-stream
// opens a NEW candidate — joining a warm graph would hand it history
// its PR-4 watermark contract forbids — seeded at the registration
// watermark exactly like any other mid-stream statement.
//
// What disqualifies sharing: composite plans (disjunction/conjunction
// compose results at flush, not through the per-window emit path),
// negative sub-patterns (a detaching subscriber's flush would have to
// fold invalidation watermarks the surviving subscribers must not see
// yet), and the transactional scheduler (a detaching subscriber's
// flush would run the pending same-timestamp batch early). Those
// statements register exclusively, exactly as before.

// shareRec is the share-index entry: a cold candidate statement, or
// the promoted shared graph it turned into.
type shareRec struct {
	cand  *Stmt
	entry *sharedEntry
}

// sharedEntry is one shared graph and its subscribers.
type sharedEntry struct {
	rt    *Runtime
	query *query.Query // representative query (trend formation only)
	mode  aggregate.Mode
	force bool

	// def is the union aggregation definition: every subscriber's
	// RETURN slots planned into one payload layout.
	def *aggregate.Def
	// host is the internal statement that owns the shared engine inside
	// the route group; it never appears in Runtime.Statements().
	host *Stmt
	subs []*Stmt
	node *share.Node[*shareRec]

	flushed bool
}

// shareable reports whether a plan may enter the shared network under
// the given registration config (see the disqualifier list above).
func shareable(plan *Plan, cfg StmtConfig) bool {
	return plan.Simple() && len(plan.Subs) == 1 && !cfg.Transactional
}

// shareKeyOf renders the sharing signature of a registration.
func shareKeyOf(plan *Plan, cfg StmtConfig) string {
	return share.SignatureOf(plan.Query, plan.Mode, cfg.ForceVertexScan).Key()
}

// registerShared attaches plan through the shared network: it joins an
// attachable node when one exists, otherwise registers exclusively and
// records the statement as the signature's candidate. rt.mu held.
func (rt *Runtime) registerShared(plan *Plan, cfg StmtConfig, key string) (*Stmt, error) {
	if node, ok := rt.shareIdx.Attachable(key); ok {
		st, err := rt.attachShared(node, plan, cfg)
		if err == nil {
			return st, nil
		}
		// Defensive: a rebuild failure (the representative query no
		// longer compiles, which deterministic planning rules out) falls
		// back to an exclusive engine rather than failing registration.
	}
	st := rt.adoptLocked(newStmtEngine(plan, cfg), cfg.ID)
	st.srcPlan = plan
	st.noRetain = cfg.NoRetain
	st.shareNode = rt.shareIdx.Put(key, &shareRec{cand: st})
	return st, nil
}

// newStmtEngine builds a statement's private engine from its config.
func newStmtEngine(plan *Plan, cfg StmtConfig) *Engine {
	eng := NewEngine(plan)
	eng.SetTransactional(cfg.Transactional)
	eng.SetForceVertexScan(cfg.ForceVertexScan)
	eng.setRetainResults(!cfg.NoRetain)
	return eng
}

// attachShared joins an attachable node: promoting its candidate into
// a shared entry if needed, then rebuilding the union engine with the
// new subscriber included. rt.mu held.
func (rt *Runtime) attachShared(node *share.Node[*shareRec], plan *Plan, cfg StmtConfig) (*Stmt, error) {
	rec := node.Val
	st := &Stmt{rt: rt, srcPlan: plan, noRetain: cfg.NoRetain, parPrev: rt.watermark}
	// Prospective subscriber set: the current ones (or the candidate
	// about to be promoted) plus the new statement.
	var subs []*Stmt
	if rec.entry != nil {
		subs = append(subs, rec.entry.subs...)
	} else {
		subs = append(subs, rec.cand)
	}
	subs = append(subs, st)

	e := rec.entry
	if e == nil {
		cand := rec.cand
		e = &sharedEntry{
			rt:    rt,
			query: cand.srcPlan.Query,
			mode:  cand.srcPlan.Mode,
			force: cfg.ForceVertexScan,
			node:  node,
		}
	}
	// Build the union engine before mutating any bookkeeping, so a
	// failure leaves the runtime untouched.
	eng, def, outs, err := e.buildUnion(subs)
	if err != nil {
		return nil, err
	}

	if rec.entry == nil {
		// Promote: hide the shared engine behind an internal host
		// statement occupying the candidate's route-group slot. The
		// candidate's cold private engine is discarded.
		cand := rec.cand
		host := &Stmt{rt: rt, id: "~" + node.Key(), grp: cand.grp, parPrev: rt.watermark}
		e.host = host
		for i, m := range cand.grp.members {
			if m == cand {
				cand.grp.members[i] = host
				break
			}
		}
		cand.grp = nil
		cand.entry = e
		rec.cand, rec.entry = nil, e
	}
	st.entry = e
	e.subs = subs
	e.def = def
	for i, sub := range e.subs {
		sub.outs = outs[i]
		sub.eng = eng
	}
	e.host.eng = eng

	rt.enrollLocked(st, cfg.ID)
	return st, nil
}

// buildUnion compiles a fresh shared engine for the subscriber set:
// one plan from the representative query, its aggregation definition
// extended with every subscriber's RETURN slots, and per-subscriber
// output mappings. Rebuilding from scratch is safe because attach only
// happens while the previous engine is cold (same ingest epoch), and
// cheap for the same reason registration itself is.
func (e *sharedEntry) buildUnion(subs []*Stmt) (*Engine, *aggregate.Def, [][]share.Output, error) {
	plan, err := NewPlan(e.query, e.mode)
	if err != nil {
		return nil, nil, nil, err
	}
	if !plan.Simple() || len(plan.Subs) != 1 {
		return nil, nil, nil, fmt.Errorf("greta: shared plan is not a single positive graph")
	}
	def := plan.Def()
	// The engine computes no values of its own: subscribers extract
	// theirs from the emitted payload through their slot mappings.
	plan.Specs = nil
	outs := make([][]share.Output, len(subs))
	for i, sub := range subs {
		specs := make([]aggregate.Spec, len(sub.srcPlan.Specs))
		for j, ss := range sub.srcPlan.Specs {
			specs[j] = ss.Spec
		}
		outs[i] = share.PlanOutputs(def, specs)
	}
	// Slots are final: compile the engine (its specs snapshot the slot
	// layout) and wire delivery.
	eng := NewEngine(plan)
	eng.SetForceVertexScan(e.force)
	eng.setRetainResults(false)
	eng.OnResult(e.fanout)
	if e.rt.watermark >= 0 {
		eng.setWatermark(e.rt.watermark)
	}
	return eng, def, outs, nil
}

// fanout delivers one shared window result to every subscriber, each
// with its own RETURN values extracted from the shared payload.
func (e *sharedEntry) fanout(r Result) {
	for _, sub := range e.subs {
		rs := r
		rs.Values = share.OutputValues(e.def, r.Payload, sub.outs)
		sub.deliver(rs)
	}
}

// flushFinal flushes the shared engine once, emitting every open
// window to all attached subscribers. Idempotent.
func (e *sharedEntry) flushFinal() {
	if e.flushed {
		return
	}
	e.flushed = true
	e.host.eng.Flush()
}

// detachFlush emits the closing subscriber's open windows without
// consuming shared state: every open window's final payload is peeked
// (cloned), merged per group exactly as closeWindow would, and
// delivered to the one detaching subscriber. The surviving subscribers
// later receive the same windows — grown by post-detach events —
// through the ordinary emit path.
func (e *sharedEntry) detachFlush(st *Stmt) {
	e.host.eng.peekFlushInto(func(group string, wid int64, pl *aggregate.Payload) {
		r := Result{
			Group:       group,
			Wid:         wid,
			WindowStart: e.host.eng.plan.Window.Start(wid),
			WindowEnd:   e.host.eng.plan.Window.End(wid),
			Payload:     pl,
			Emitted:     time.Now(),
			Values:      share.OutputValues(e.def, pl, st.outs),
		}
		st.deliver(r)
	})
}
