package core

import (
	"math"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

// stripSchemas deep-copies a stream without the dense schema binding,
// leaving only the attribute maps (the schemaless fallback path).
func stripSchemas(evs []*event.Event) []*event.Event {
	out := make([]*event.Event, len(evs))
	for i, ev := range evs {
		c := *ev
		c.Sch, c.Num, c.StrV = nil, nil, nil
		out[i] = &c
	}
	return out
}

// runResults executes a query over a stream and returns the results.
func runResults(t *testing.T, qsrc string, evs []*event.Event, mode aggregate.Mode) []Result {
	t.Helper()
	plan, err := NewPlan(query.MustParse(qsrc), mode)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(plan)
	eng.Run(event.NewSliceStream(evs))
	return eng.Results()
}

// compareResults asserts two result sets are identical in every
// query-visible field (group, window, values).
func compareResults(t *testing.T, name string, schema, schemaless []Result) {
	t.Helper()
	if len(schema) != len(schemaless) {
		t.Fatalf("%s: schema path emitted %d results, schemaless %d", name, len(schema), len(schemaless))
	}
	for i := range schema {
		a, b := schema[i], schemaless[i]
		if a.Group != b.Group || a.Wid != b.Wid || a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd {
			t.Fatalf("%s: result %d keys differ: (%q,%d,%d,%d) vs (%q,%d,%d,%d)",
				name, i, a.Group, a.Wid, a.WindowStart, a.WindowEnd, b.Group, b.Wid, b.WindowStart, b.WindowEnd)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s: result %d value counts differ", name, i)
		}
		for j := range a.Values {
			av, bv := a.Values[j], b.Values[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("%s: result %d value %d differs: %v vs %v", name, i, j, av, bv)
			}
		}
	}
}

// TestSchemalessFallbackStock checks that a grouped + equivalence query
// over schemaless events (no dense slots, map fallback everywhere:
// routing, predicates, sort keys, aggregates) produces results
// identical to the schema-compiled path.
func TestSchemalessFallbackStock(t *testing.T) {
	cfg := gen.DefaultStock(4000)
	cfg.Rate = 10
	withSchema := gen.Stock(cfg) // generator binds schemas
	withoutSchema := stripSchemas(withSchema)
	queries := []string{
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 20 SLIDE 5",
		"RETURN COUNT(S), SUM(S.price), MIN(S.price), MAX(S.volume), AVG(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 30 SLIDE 10",
	}
	for _, mode := range []aggregate.Mode{aggregate.ModeNative, aggregate.ModeExact} {
		for _, q := range queries {
			compareResults(t, q+"/"+mode.String(),
				runResults(t, q, withSchema, mode),
				runResults(t, q, withoutSchema, mode))
		}
	}
}

// TestSchemalessFallbackCluster exercises a multi-state SEQ pattern
// with numeric predicates over the cluster stream, schemaless vs
// schema-bound.
func TestSchemalessFallbackCluster(t *testing.T) {
	withSchema := gen.Cluster(gen.DefaultCluster(6000))
	withoutSchema := stripSchemas(withSchema)
	q := "RETURN COUNT(*), SUM(M.cpu) PATTERN SEQ(Start T, Measurement M+, End E) " +
		"WHERE [job, mapper] AND M.load > 50 GROUP-BY mapper WITHIN 2 SLIDE 1"
	compareResults(t, q,
		runResults(t, q, withSchema, aggregate.ModeNative),
		runResults(t, q, withoutSchema, aggregate.ModeNative))
}

// TestSchemalessFallbackNegation covers the negative sub-pattern path
// (invalidation watermarks) and mixed schema/schemaless event types:
// Halt events carry a schema in one run and none in the other.
func TestSchemalessFallbackNegation(t *testing.T) {
	cfg := gen.DefaultStock(3000)
	cfg.Rate = 10
	cfg.HaltProb = 0.01
	withSchema := gen.Stock(cfg)
	withoutSchema := stripSchemas(withSchema)
	q := "RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H, Stock E) " +
		"WHERE [company] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 20 SLIDE 10"
	compareResults(t, q,
		runResults(t, q, withSchema, aggregate.ModeNative),
		runResults(t, q, withoutSchema, aggregate.ModeNative))
}

// TestPartialSchemaFallsBackToMaps binds events to a schema that omits
// attributes the query uses: the accessors must fall back to the
// attribute maps for the unlisted attributes (the dense arrays are a
// cache, not a filter), so grouping and predicates still see them.
func TestPartialSchemaFallsBackToMaps(t *testing.T) {
	cfg := gen.DefaultStock(2000)
	cfg.Rate = 10
	full := gen.Stock(cfg)
	partial := stripSchemas(full)
	partialSchema := &event.Schema{Type: "Stock", Numeric: []string{"price"}} // no company!
	for _, ev := range partial {
		if ev.Type == "Stock" {
			partialSchema.Bind(ev)
		}
	}
	q := "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5"
	compareResults(t, q,
		runResults(t, q, full, aggregate.ModeNative),
		runResults(t, q, partial, aggregate.ModeNative))
}

// TestTypedPartitionIdentity locks in the typed partition-key
// semantics of hash-first routing: a missing attribute, an
// empty-string value, and a numeric value are three distinct partition
// keys (the legacy string rendering conflated missing with "" and
// Str "5" with Attrs 5).
func TestTypedPartitionIdentity(t *testing.T) {
	plan, err := NewPlan(query.MustParse(
		"RETURN COUNT(*) PATTERN A+ WHERE [k] WITHIN 100 SLIDE 100"), aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(plan)
	evs := []*event.Event{
		{ID: 1, Type: "A", Time: 1},                                       // k missing
		{ID: 2, Type: "A", Time: 2, Str: map[string]string{"k": ""}},      // k = ""
		{ID: 3, Type: "A", Time: 3, Str: map[string]string{"k": "5"}},     // k = "5" (string)
		{ID: 4, Type: "A", Time: 4, Attrs: map[string]float64{"k": 5}},    // k = 5 (number)
		{ID: 5, Type: "A", Time: 5},                                       // k missing again
		{ID: 6, Type: "A", Time: 6, Attrs: map[string]float64{"k": 5}},    // k = 5 again
		{ID: 7, Type: "A", Time: 7, Str: map[string]string{"k": "other"}}, // distinct string
	}
	eng.Run(event.NewSliceStream(evs))
	if got := eng.Stats().Partitions; got != 5 {
		t.Fatalf("partitions = %d, want 5 (missing, \"\", \"5\", 5.0, \"other\" all distinct)", got)
	}
	// Trends form only within a partition: the two missing-k events
	// (t=1,5) connect (3 trends), the two numeric-5 events (t=4,6)
	// connect (3 trends), and the three singleton partitions contribute
	// one trend each. COUNT(*) sums to 3+3+1+1+1 = 9.
	rs := eng.Results()
	if len(rs) != 1 {
		t.Fatalf("results = %d, want 1", len(rs))
	}
	if got := rs[0].Values[0]; got != 9 {
		t.Fatalf("COUNT(*) = %v, want 9", got)
	}
}

// TestSchemalessPartialBinding checks a stream mixing schema-bound and
// schemaless events of the same type: the accessors must fall back per
// event, not per stream.
func TestSchemalessPartialBinding(t *testing.T) {
	cfg := gen.DefaultStock(2000)
	cfg.Rate = 10
	full := gen.Stock(cfg)
	mixed := stripSchemas(full)
	for i, ev := range full {
		if i%2 == 0 {
			mixed[i] = ev // keep the schema-bound original
		}
	}
	q := "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5"
	compareResults(t, q,
		runResults(t, q, full, aggregate.ModeNative),
		runResults(t, q, mixed, aggregate.ModeNative))
}
