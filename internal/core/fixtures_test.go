package core_test

import (
	"math"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// fig12Stream is the stream of paper Fig. 3 / Fig. 12:
// I = {a1, b2, a3, a4, b7} with a1.attr=5, a3.attr=6, a4.attr=4.
func fig12Stream() []*event.Event {
	var b event.Builder
	b.Add("A", 1, map[string]float64{"attr": 5})
	b.Add("B", 2, nil)
	b.Add("A", 3, map[string]float64{"attr": 6})
	b.Add("A", 4, map[string]float64{"attr": 4})
	b.Add("B", 7, nil)
	return b.Events()
}

// fig6Stream is the stream of paper Fig. 6 / Fig. 8:
// I = {a1, b2, c2, a3, e3, a4, c5, d6, b7, a8, b9}.
func fig6Stream() []*event.Event {
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("B", 2, nil)
	b.Add("C", 2, nil)
	b.Add("A", 3, nil)
	b.Add("E", 3, nil)
	b.Add("A", 4, nil)
	b.Add("C", 5, nil)
	b.Add("D", 6, nil)
	b.Add("B", 7, nil)
	b.Add("A", 8, nil)
	b.Add("B", 9, nil)
	return b.Events()
}

// run compiles and executes a query over events, returning the single
// global-window result (nil when no trends matched).
func run(t *testing.T, q string, evs []*event.Event, mode aggregate.Mode) *core.Result {
	t.Helper()
	qq, err := query.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	plan, err := core.NewPlan(qq, mode)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	eng := core.NewEngine(plan)
	eng.Run(event.NewSliceStream(evs))
	rs := eng.Results()
	if len(rs) == 0 {
		return nil
	}
	if len(rs) > 1 {
		t.Fatalf("expected one result, got %d: %+v", len(rs), rs)
	}
	return &rs[0]
}

// TestFigure12Aggregates reproduces Example 1 / Example 8 (Fig. 12):
// COUNT(*)=11, COUNT(A)=20, MIN(A.attr)=4, MAX(A.attr)=6,
// SUM(A.attr)=100, AVG(A.attr)=5.
func TestFigure12Aggregates(t *testing.T) {
	for _, mode := range []aggregate.Mode{aggregate.ModeNative, aggregate.ModeExact} {
		q := "RETURN COUNT(*), COUNT(A), MIN(A.attr), MAX(A.attr), SUM(A.attr), AVG(A.attr) PATTERN (SEQ(A+, B))+"
		r := run(t, q, fig12Stream(), mode)
		if r == nil {
			t.Fatalf("mode %v: no result", mode)
		}
		want := []float64{11, 20, 4, 6, 100, 5}
		for i, w := range want {
			if r.Values[i] != w {
				t.Errorf("mode %v: aggregate %d = %v, want %v", mode, i, r.Values[i], w)
			}
		}
	}
}

// TestFigure6Shapes reproduces the final counts of Fig. 6 (a)-(c):
// A+ -> 15, SEQ(A+,B) -> 23, (SEQ(A+,B))+ -> 43 over the Fig. 6 stream.
func TestFigure6Shapes(t *testing.T) {
	cases := []struct {
		pattern string
		want    float64
	}{
		{"A+", 15},
		{"SEQ(A+, B)", 23},
		{"(SEQ(A+, B))+", 43},
	}
	for _, c := range cases {
		r := run(t, "RETURN COUNT(*) PATTERN "+c.pattern, fig6Stream(), aggregate.ModeNative)
		if r == nil {
			t.Fatalf("%s: no result", c.pattern)
		}
		if r.Values[0] != c.want {
			t.Errorf("%s: COUNT(*) = %v, want %v", c.pattern, r.Values[0], c.want)
		}
	}
}

// TestFigure6dNegation reproduces Fig. 6(d) / Examples 2, 4, 5: the
// pattern (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ over the Fig. 6 stream.
// The match e3 of E invalidates c2; the match (c5,d6) of SEQ(C,D)
// invalidates a1, a3, a4 for b's after d6; b7 cannot be inserted; the
// final count is b2 + b9 = 1 + 12 = 13.
func TestFigure6dNegation(t *testing.T) {
	q := "RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+"
	r := run(t, q, fig6Stream(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Values[0] != 13 {
		t.Errorf("COUNT(*) = %v, want 13", r.Values[0])
	}
}

// TestFigure8Negation reproduces Fig. 8: SEQ(A+, NOT E) (Case 2:
// previous connection only) and SEQ(NOT E, A+) (Case 3: following
// connection only) over the Fig. 6 stream.
func TestFigure8Negation(t *testing.T) {
	// Case 2: e3 invalidates earlier a's entirely; trends may not end
	// before e3's start. Valid trends are over {a3, a4, a8} plus (a1,a3):
	// 11 in total.
	r := run(t, "RETURN COUNT(*) PATTERN SEQ(A+, NOT E)", fig6Stream(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("case 2: no result")
	}
	if r.Values[0] != 11 {
		t.Errorf("SEQ(A+, NOT E): COUNT(*) = %v, want 11", r.Values[0])
	}
	// Case 3: e3 invalidates all later a's (a4, a8); trends are over
	// {a1, a3}: 3 in total.
	r = run(t, "RETURN COUNT(*) PATTERN SEQ(NOT E, A+)", fig6Stream(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("case 3: no result")
	}
	if r.Values[0] != 3 {
		t.Errorf("SEQ(NOT E, A+): COUNT(*) = %v, want 3", r.Values[0])
	}
}

// TestFigure13MultiOccurrence reproduces Fig. 13: the pattern
// SEQ(A+, B, A, A+, B+) over I = {a1, b2, a3, a4, b5}. Exactly one
// trend (a1, b2, a3, a4, b5) matches.
func TestFigure13MultiOccurrence(t *testing.T) {
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("B", 2, nil)
	b.Add("A", 3, nil)
	b.Add("A", 4, nil)
	b.Add("B", 5, nil)
	r := run(t, "RETURN COUNT(*) PATTERN SEQ(A+, B, A, A+, B+)", b.Events(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Values[0] != 1 {
		t.Errorf("COUNT(*) = %v, want 1", r.Values[0])
	}
}

// TestAmbiguousMultiOccurrence documents a property of the §9
// multi-occurrence extension (shared with the paper's sketch): when a
// pattern admits several state assignments for one event sequence —
// SEQ(A+, A+) maps (a1,a2,a3) to A1A1A2 and A1A2A2 — the graph counts
// state assignments, not distinct trends. Over three a's the distinct
// sequences with >= 2 events number 4, but the assignment count is 5.
// Unambiguous multi-occurrence patterns (Fig. 13, SEQ(A, A+), ...) are
// unaffected and are cross-validated against the oracle elsewhere.
func TestAmbiguousMultiOccurrence(t *testing.T) {
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("A", 2, nil)
	b.Add("A", 3, nil)
	r := run(t, "RETURN COUNT(*) PATTERN SEQ(A+, A+)", b.Events(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Values[0] != 5 {
		t.Errorf("assignment count = %v, want 5 (4 distinct trends, one counted twice)", r.Values[0])
	}
}

// TestFigure10EdgePredicate reproduces Fig. 10: A+ with the edge
// predicate A.attr < NEXT(A).attr. Over events with attr values
// 5, 6, 4 (the Fig. 12 attr assignment on a1, a3, a4) the increasing
// pairs are (5,6) only, so trends are (a1), (a3), (a4), (a1,a3): 4.
func TestFigure10EdgePredicate(t *testing.T) {
	var b event.Builder
	b.Add("A", 1, map[string]float64{"attr": 5})
	b.Add("A", 3, map[string]float64{"attr": 6})
	b.Add("A", 4, map[string]float64{"attr": 4})
	r := run(t, "RETURN COUNT(*) PATTERN A+ WHERE A.attr < NEXT(A).attr", b.Events(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Values[0] != 4 {
		t.Errorf("COUNT(*) = %v, want 4", r.Values[0])
	}
}

// TestFigure9WindowSharing reproduces Fig. 9: (SEQ(A+,B))+ WITHIN 10
// SLIDE 3 over the Fig. 12-style stream {a1,b2,a3,a4,b7,a8,b9}. Events
// are shared between overlapping windows; each window's count equals
// the count over its events in isolation.
func TestFigure9WindowSharing(t *testing.T) {
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("B", 2, nil)
	b.Add("A", 3, nil)
	b.Add("A", 4, nil)
	b.Add("B", 7, nil)
	b.Add("A", 8, nil)
	b.Add("B", 9, nil)
	qq := query.MustParse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+ WITHIN 10 SLIDE 3")
	plan, err := core.NewPlan(qq, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	eng.Run(b.Stream())
	got := map[int64]float64{}
	for _, r := range eng.Results() {
		got[r.Wid] = r.Values[0]
	}
	// Window 0 = [0,10): all events — the same event sequence as
	// Fig. 6(c), so the count is 43:
	//   a1=1, b2=1, a3=3, a4=6, b7=10, a8=22, b9=32 -> b2+b7+b9 = 43.
	// Window 1 = [3,13): {a3,a4,b7,a8,b9}:
	//   a3=1, a4=2, b7=3, a8=7, b9=10 -> b7+b9 = 13.
	// Window 2 = [6,16): {b7,a8,b9}: b7 dropped (no preds), a8=1, b9=1 -> 1.
	// Window 3 = [9,19): {b9}: dropped -> no result.
	want := map[int64]float64{0: 43, 1: 13, 2: 1}
	for wid, w := range want {
		if got[wid] != w {
			t.Errorf("window %d: COUNT(*) = %v, want %v", wid, got[wid], w)
		}
	}
	if _, ok := got[3]; ok {
		t.Errorf("window 3 should have no result, got %v", got[3])
	}
}

// TestMinMaxEmpty checks MIN/MAX extraction with no matching events.
func TestMinMaxEmpty(t *testing.T) {
	var b event.Builder
	b.Add("B", 1, nil)
	r := run(t, "RETURN MIN(A.attr) PATTERN SEQ(A+, B)", b.Events(), aggregate.ModeNative)
	if r != nil {
		t.Fatalf("expected no result, got %+v", r)
	}
}

// TestAvgNaN checks AVG over zero occurrences yields NaN, not a panic.
func TestAvgNaN(t *testing.T) {
	def := &aggregate.Def{}
	s1, s2 := def.Plan(aggregate.Spec{Kind: aggregate.Avg, Type: "A", Attr: "x"})
	p := def.New()
	v := def.Value(p, aggregate.Spec{Kind: aggregate.Avg, Type: "A", Attr: "x"}, s1, s2)
	if !math.IsNaN(v) {
		t.Errorf("AVG over empty = %v, want NaN", v)
	}
}
