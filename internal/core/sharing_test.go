package core_test

import (
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
)

// TestSharedWindowsEqualReplicated validates the sub-graph sharing of
// paper §6 (Fig. 9): the shared GRETA graph across overlapping sliding
// windows must produce, for every window, exactly the aggregates an
// independent per-window run produces (the naive replication of
// Fig. 9(a)).
func TestSharedWindowsEqualReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []struct{ shared, global string }{
		{
			"RETURN COUNT(*), SUM(A.x), MIN(A.x) PATTERN (SEQ(A+, B))+ WITHIN 10 SLIDE 3",
			"RETURN COUNT(*), SUM(A.x), MIN(A.x) PATTERN (SEQ(A+, B))+",
		},
		{
			"RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x WITHIN 8 SLIDE 2",
			"RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x",
		},
		{
			"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) WITHIN 9 SLIDE 3",
			"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)",
		},
	}
	for _, qc := range queries {
		sharedQ := query.MustParse(qc.shared)
		globalQ := query.MustParse(qc.global)
		spec := sharedQ.Window
		for iter := 0; iter < 20; iter++ {
			evs := randStream(rng, 8+rng.Intn(20))

			plan, err := core.NewPlan(sharedQ, aggregate.ModeNative)
			if err != nil {
				t.Fatal(err)
			}
			eng := core.NewEngine(plan)
			eng.Run(event.NewSliceStream(evs))
			shared := map[int64][]float64{}
			for _, r := range eng.Results() {
				shared[r.Wid] = r.Values
			}

			replicated := map[int64][]float64{}
			for _, wid := range widsCovered(spec, evs) {
				var wevs []*event.Event
				for _, e := range evs {
					if spec.Contains(wid, e.Time) {
						wevs = append(wevs, e)
					}
				}
				gplan, err := core.NewPlan(globalQ, aggregate.ModeNative)
				if err != nil {
					t.Fatal(err)
				}
				geng := core.NewEngine(gplan)
				geng.Run(event.NewSliceStream(wevs))
				if rs := geng.Results(); len(rs) == 1 {
					replicated[wid] = rs[0].Values
				}
			}

			if len(shared) != len(replicated) {
				t.Fatalf("%s: shared %d windows, replicated %d\nstream %v",
					qc.shared, len(shared), len(replicated), evs)
			}
			for wid, want := range replicated {
				got, ok := shared[wid]
				if !ok {
					t.Fatalf("%s: missing window %d", qc.shared, wid)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s: window %d agg %d: shared %v, replicated %v\nstream %v",
							qc.shared, wid, i, got[i], want[i], evs)
					}
				}
			}
		}
	}
}

func widsCovered(spec window.Spec, evs []*event.Event) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, e := range evs {
		lo, hi := spec.Wids(e.Time)
		for w := lo; w <= hi; w++ {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}
