package core_test

import (
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// TestMinLenFixture: A+ MINLEN 3 over five a's counts subsequences of
// length >= 3: C(5,3)+C(5,4)+C(5,5) = 16 (paper §9, "Constraints on
// Minimal Trend Length": A+ with minimum 3 unrolls to SEQ(A, A, A+)).
func TestMinLenFixture(t *testing.T) {
	var b event.Builder
	for i := 1; i <= 5; i++ {
		b.Add("A", event.Time(i), nil)
	}
	r := run(t, "RETURN COUNT(*) PATTERN A+ MINLEN 3", b.Events(), aggregate.ModeNative)
	if r == nil {
		t.Fatal("no result")
	}
	if r.Values[0] != 16 {
		t.Errorf("COUNT(*) = %v, want 16", r.Values[0])
	}
	// MINLEN 1 is the unconstrained pattern: 2^5 - 1 = 31.
	r = run(t, "RETURN COUNT(*) PATTERN A+ MINLEN 1", b.Events(), aggregate.ModeNative)
	if r.Values[0] != 31 {
		t.Errorf("MINLEN 1: COUNT(*) = %v, want 31", r.Values[0])
	}
	// MINLEN 6 over five events: no trends, no result.
	if r := run(t, "RETURN COUNT(*) PATTERN A+ MINLEN 6", b.Events(), aggregate.ModeNative); r != nil {
		t.Errorf("MINLEN 6: expected no result, got %v", r.Values)
	}
}

// TestMinLenWithPredicates: predicates written against the original
// alias attach to every unrolled copy via labels.
func TestMinLenWithPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 30; iter++ {
		evs := randStream(rng, 4+rng.Intn(8))
		checkAgainstOracle(t,
			"RETURN COUNT(*), SUM(A.x) PATTERN A+ WHERE A.x < NEXT(A).x MINLEN 2",
			evs, aggregate.ModeNative)
		checkAgainstOracle(t,
			"RETURN COUNT(*) PATTERN A+ MINLEN 3",
			evs, aggregate.ModeNative)
	}
}

// TestMinLenRejectsNonKleene: unrolling applies to Kleene-plus patterns.
func TestMinLenRejectsNonKleene(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*) PATTERN SEQ(A, B) MINLEN 3")
	if _, err := core.NewPlan(q, aggregate.ModeNative); err == nil {
		t.Error("expected error for MINLEN on non-Kleene pattern")
	}
}
