package core

import (
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
	"github.com/greta-cep/greta/internal/event"
)

// vtree / vtreeFree are the Vertex Tree instantiation used by the
// runtime: *Vertex items summarized by *vertexSum subtree payloads.
type (
	vtree     = btree.Tree[*Vertex, *vertexSum]
	vtreeFree = btree.FreeList[*Vertex, *vertexSum]
	vitem     = btree.Item[*Vertex]
)

// minTime is the maxTime of an empty summary (no event time reaches it).
const minTime = event.Time(math.MinInt64)

// vertexSum is the subtree summary of an augmented Vertex Tree: the
// pane-summary payload fold of the paper's Time Pane structure (§7),
// generalized to every subtree so range-bounded scans fold in
// O(log n) and fully covered panes in O(1).
type vertexSum struct {
	// agg folds the subtree's per-window payloads (and exact logical
	// edge accounting; see aggregate.Summary).
	agg aggregate.Summary
	// minKey/maxKey span the subtree's sort keys; a fold is taken only
	// when the span lies fully inside the scan's compiled key range, so
	// the range predicate provably holds for every folded vertex.
	minKey, maxKey float64
	// maxTime is the newest vertex time in the subtree. A fold is only
	// taken when maxTime < the inserted event's time, because trend
	// adjacency requires strictly increasing timestamps (Definition 1);
	// subtrees holding same-timestamp stragglers fall back to per-item
	// visits.
	maxTime event.Time
	// fallback counts vertices whose tree key is not the genuine sort
	// attribute value (missing / non-numeric / NaN): for them
	// key-in-range is not equivalent to the edge predicate (and a NaN
	// key breaks both ordering and span tracking), so any subtree
	// containing one is scanned per vertex.
	fallback uint32
	// bad marks a window-range mismatch (never expected; folds reject).
	bad bool
}

// vertexAug maintains vertexSum summaries for the Vertex Trees of one
// state of one spec. Like the pools it lives on the compiledSpec and is
// shared by that spec's graphs across partitions of one engine — safe
// for the same reason the pools are (sequential access; see
// compiledSpec).
type vertexAug struct {
	cs   *compiledSpec
	def  *aggregate.Def
	sIdx int
}

var _ btree.Summarizer[*Vertex, *vertexSum] = (*vertexAug)(nil)

// newSum returns an empty summary. Allocation happens only for nodes
// that were never augmented: Clear leaves emptied summaries attached
// to recycled nodes, so the steady state reuses them in place.
func (a *vertexAug) newSum() *vertexSum {
	return &vertexSum{minKey: math.Inf(1), maxKey: math.Inf(-1), maxTime: minTime}
}

// Add folds one stored vertex into s (s may be nil: first use).
func (a *vertexAug) Add(s *vertexSum, it vitem) *vertexSum {
	if s == nil {
		s = a.newSum()
	}
	v := it.Val
	if it.Key < s.minKey {
		s.minKey = it.Key
	}
	if it.Key > s.maxKey {
		s.maxKey = it.Key
	}
	if v.Ev.Time > s.maxTime {
		s.maxTime = v.Ev.Time
	}
	if acc := &a.cs.sortAcc[a.sIdx]; acc.Attr() != "" {
		if f, ok := acc.Float(v.Ev); !ok || math.IsNaN(f) {
			s.fallback++
		}
	}
	if !a.def.SummaryAdd(&a.cs.pool, &s.agg, v.FirstWid, v.Aggs) {
		s.bad = true
	}
	return s
}

// Merge folds src into dst (dst may be nil; src is not modified).
func (a *vertexAug) Merge(dst, src *vertexSum) *vertexSum {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = a.newSum()
	}
	if src.minKey < dst.minKey {
		dst.minKey = src.minKey
	}
	if src.maxKey > dst.maxKey {
		dst.maxKey = src.maxKey
	}
	if src.maxTime > dst.maxTime {
		dst.maxTime = src.maxTime
	}
	dst.fallback += src.fallback
	if src.bad {
		dst.bad = true
	}
	if !a.def.SummaryMerge(&a.cs.pool, &dst.agg, &src.agg) {
		dst.bad = true
	}
	return dst
}

// Clear empties s for reuse, returning its payloads to the spec pool.
func (a *vertexAug) Clear(s *vertexSum) *vertexSum {
	if s == nil {
		return nil
	}
	s.minKey, s.maxKey = math.Inf(1), math.Inf(-1)
	s.maxTime = minTime
	s.fallback = 0
	s.bad = false
	a.def.SummaryClear(&a.cs.pool, &s.agg)
	return s
}

// foldVisit consumes one subtree summary during a fast-path
// scanCandidates fold (installed once as g.foldFn). Returning false
// rejects the wholesale fold; the tree then descends and routes the
// subtree's items through g.scanFn (the per-vertex slow path), so
// rejection is always safe.
func (g *Graph) foldVisit(s *vertexSum) bool {
	if s == nil || s.agg.Empty() {
		return true // empty subtree: nothing to fold
	}
	ins := &g.ins
	if s.bad || s.fallback != 0 || s.maxTime >= ins.e.Time {
		return false
	}
	// The subtree's key span must lie fully inside the compiled range:
	// then the edge predicates (bit-exact with the range; see fastScan)
	// hold for every vertex in it.
	if !(s.minKey > ins.rlo || (ins.rloIncl && s.minKey == ins.rlo)) {
		return false
	}
	if !(s.maxKey < ins.rhi || (ins.rhiIncl && s.maxKey == ins.rhi)) {
		return false
	}
	first := s.agg.FirstWid
	last := first + int64(len(s.agg.Sums)) - 1
	if first > ins.lo || last > ins.hi {
		// A stored predecessor's window range always starts at or before
		// and ends at or before the new event's (times are in order);
		// anything else is unexpected — scan per vertex.
		return false
	}
	if last < ins.lo {
		return true // no shared window: nothing can connect
	}
	// Fast-path eligibility (fastScan) guarantees no dependency links,
	// so validWid and invalidPred checks are vacuous here.
	for wid := ins.lo; wid <= last; wid++ {
		sp := s.agg.Sums[wid-first]
		if sp == nil {
			continue
		}
		i := int(wid - ins.lo)
		if ins.payloads[i] == nil {
			ins.payloads[i] = g.cs.pool.Get()
		}
		g.def.AddPred(ins.payloads[i], sp)
	}
	if edges := s.agg.EdgesFrom(ins.lo); edges > 0 {
		g.stats.Edges += edges
		ins.gotPred = true
	}
	g.stats.SummaryFolds++
	return true
}
