package core

import (
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
	"github.com/greta-cep/greta/internal/event"
)

// vtree / vtreeFree are the Vertex Tree instantiation used by the
// runtime: *Vertex items summarized by *vertexSum subtree payloads.
type (
	vtree     = btree.Tree[*Vertex, *vertexSum]
	vtreeFree = btree.FreeList[*Vertex, *vertexSum]
	vitem     = btree.Item[*Vertex]
)

// minTime is the maxTime of an empty summary (no event time reaches
// it); maxTimeSentinel is the corresponding minTime.
const (
	minTime         = event.Time(math.MinInt64)
	maxTimeSentinel = event.Time(math.MaxInt64)
)

// vertexSum is the subtree summary of an augmented Vertex Tree: the
// pane-summary payload fold of the paper's Time Pane structure (§7),
// generalized to every subtree so range-bounded scans fold in
// O(log n) and fully covered panes in O(1).
type vertexSum struct {
	// agg folds the subtree's per-window payloads (and exact logical
	// edge accounting; see aggregate.Summary). On graphs whose
	// predecessors can be invalidated by maxStart watermarks (paper
	// Definition 5, Cases 1 and 2), the fold is filtered: payloads of
	// (vertex, window) pairs invalid under the watermarks current at
	// build time are excluded (see vertexAug.validWindows), and wmVer
	// records that watermark version.
	agg aggregate.Summary
	// minKey/maxKey span the subtree's sort keys; a fold is taken only
	// when the span lies fully inside the scan's compiled key range, so
	// the range predicate provably holds for every folded vertex.
	minKey, maxKey float64
	// minTime/maxTime span the subtree's vertex times. maxTime gates
	// folds on Definition 1 adjacency (only strictly older subtrees
	// fold; same-timestamp stragglers fall back to per-item visits).
	// minTime supports lazy watermark revalidation: when every vertex
	// time is at or above the current invalidation watermark, no stored
	// payload has been retracted and a stale wmVer can be restamped
	// without rebuilding.
	minTime, maxTime event.Time
	// wmVer is the owning graph's watermark version (Graph.wmVer) the
	// summary's invalidation filtering is current under. Folds on
	// watermark-gated transitions require wmVer to match the graph's
	// (restamping via minTime when the advance provably did not touch
	// this subtree); stale-and-affected trees are rebuilt in place by
	// refreshSummaries before the fold descends. Graphs without
	// maxStart-gated transitions ignore it.
	wmVer uint64
	// fallback counts vertices whose tree key is not the genuine sort
	// attribute value (missing / non-numeric / NaN): for them
	// key-in-range is not equivalent to the edge predicate (and a NaN
	// key breaks both ordering and span tracking), so any subtree
	// containing one is scanned per vertex.
	fallback uint32
	// bad marks a window-range mismatch (never expected; folds reject).
	bad bool
}

// vertexAug maintains vertexSum summaries for the Vertex Trees of one
// state of one spec. Like the pools it lives on the compiledSpec and is
// shared by that spec's graphs across partitions of one engine — safe
// for the same reason the pools are (sequential access; see
// compiledSpec). The graph currently operating is published in
// compiledSpec.cur so Add/Merge/Clear can read its invalidation
// watermarks and charge its payload stats.
type vertexAug struct {
	cs   *compiledSpec
	def  *aggregate.Def
	sIdx int
	// validScratch is the reusable per-window validity mask handed to
	// SummaryAdd on watermark-gated states (nil when all windows are
	// valid, the common case).
	validScratch []bool
}

var _ btree.Summarizer[*Vertex, *vertexSum] = (*vertexAug)(nil)

// newSum returns an empty summary. Allocation happens only for nodes
// that were never augmented: Clear leaves emptied summaries attached
// to recycled nodes, so the steady state reuses them in place.
func (a *vertexAug) newSum() *vertexSum {
	return &vertexSum{minKey: math.Inf(1), maxKey: math.Inf(-1), minTime: maxTimeSentinel, maxTime: minTime}
}

// validWindows computes the per-window validity mask of v under g's
// current maxStart watermarks for this state's gating dependency set
// (compiledSpec.augDeps). It returns nil when every window is valid —
// always the case for states without maxStart-gated transitions, and
// for freshly inserted vertices (watermarks are strictly below the
// current event time), so the mask only materializes during rebuilds.
func (a *vertexAug) validWindows(g *Graph, v *Vertex) []bool {
	if g == nil {
		return nil
	}
	deps := a.cs.augDeps[a.sIdx]
	if len(deps) == 0 || len(g.deps) == 0 {
		return nil
	}
	all := true
	if cap(a.validScratch) < len(v.Aggs) {
		a.validScratch = make([]bool, len(v.Aggs))
	}
	mask := a.validScratch[:len(v.Aggs)]
	for i := range v.Aggs {
		ok := int64(v.Ev.Time) >= g.invalThreshold(deps, v.FirstWid+int64(i))
		mask[i] = ok
		if !ok {
			all = false
		}
	}
	if all {
		return nil
	}
	return mask
}

// Add folds one stored vertex into s (s may be nil: first use).
func (a *vertexAug) Add(s *vertexSum, it vitem) *vertexSum {
	if s == nil {
		s = a.newSum()
	}
	v := it.Val
	if it.Key < s.minKey {
		s.minKey = it.Key
	}
	if it.Key > s.maxKey {
		s.maxKey = it.Key
	}
	if v.Ev.Time > s.maxTime {
		s.maxTime = v.Ev.Time
	}
	if v.Ev.Time < s.minTime {
		s.minTime = v.Ev.Time
	}
	if acc := &a.cs.sortAcc[a.sIdx]; acc.Attr() != "" {
		if f, ok := acc.Float(v.Ev); !ok || math.IsNaN(f) {
			s.fallback++
		}
	}
	g := a.cs.cur
	wasEmpty := s.agg.Empty()
	created, ok := a.def.SummaryAdd(&a.cs.pool, &s.agg, v.FirstWid, v.Aggs, a.validWindows(g, v))
	if !ok {
		s.bad = true
	}
	if g != nil {
		if wasEmpty {
			s.wmVer = g.wmVer
		}
		g.stats.Payloads += uint64(created)
	}
	return s
}

// Merge folds src into dst (dst may be nil; src is not modified). The
// merged watermark version is the older of the two: a stale
// contribution keeps the result stale until revalidated or rebuilt.
func (a *vertexAug) Merge(dst, src *vertexSum) *vertexSum {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = a.newSum()
	}
	if src.minKey < dst.minKey {
		dst.minKey = src.minKey
	}
	if src.maxKey > dst.maxKey {
		dst.maxKey = src.maxKey
	}
	if src.maxTime > dst.maxTime {
		dst.maxTime = src.maxTime
	}
	if src.minTime < dst.minTime {
		dst.minTime = src.minTime
	}
	dst.fallback += src.fallback
	if src.bad {
		dst.bad = true
	}
	if !src.agg.Empty() {
		if dst.agg.Empty() || src.wmVer < dst.wmVer {
			dst.wmVer = src.wmVer
		}
	}
	created, ok := a.def.SummaryMerge(&a.cs.pool, &dst.agg, &src.agg)
	if !ok {
		dst.bad = true
	}
	if g := a.cs.cur; g != nil {
		g.stats.Payloads += uint64(created)
	}
	return dst
}

// Clear empties s for reuse, returning its payloads to the spec pool.
func (a *vertexAug) Clear(s *vertexSum) *vertexSum {
	if s == nil {
		return nil
	}
	s.minKey, s.maxKey = math.Inf(1), math.Inf(-1)
	s.minTime, s.maxTime = maxTimeSentinel, minTime
	s.wmVer = 0
	s.fallback = 0
	s.bad = false
	released := a.def.SummaryClear(&a.cs.pool, &s.agg)
	if g := a.cs.cur; g != nil {
		g.stats.Payloads -= uint64(released)
	}
	return s
}

// refreshSummaries lazily applies pending watermark invalidation to one
// pane tree before a fold-eligible scan: when the tree's root summary
// was built under an older watermark version AND the advance actually
// retracted contributions of this tree (some vertex time fell below the
// new threshold of some window), every node summary is rebuilt in place
// with the invalidated payloads filtered out. Trees the advance did not
// touch are left alone — foldVisit restamps their summaries via the
// minTime check — so foldPending stays O(records) and the rebuild cost
// is paid once per (advance, affected pane), amortized over the events
// in between.
func (g *Graph) refreshSummaries(tree *vtree) {
	s := tree.RootSummary()
	if s == nil || s.agg.Empty() || s.wmVer == g.wmVer {
		return
	}
	deps := g.ins.augDeps
	first := s.agg.FirstWid
	last := first + int64(len(s.agg.Sums)) - 1
	dirty := false
	for wid := first; wid <= last; wid++ {
		if int64(s.minTime) < g.invalThreshold(deps, wid) {
			dirty = true
			break
		}
	}
	if !dirty {
		return
	}
	tree.RebuildSummaries()
	g.stats.SummaryRebuilds++
}

// foldVisit consumes one subtree summary during a fast-path
// scanCandidates fold (installed once as g.foldFn). Returning false
// rejects the wholesale fold; the tree then descends and routes the
// subtree's items through g.scanFn (the per-vertex slow path), so
// rejection is always safe.
func (g *Graph) foldVisit(s *vertexSum) bool {
	if s == nil || s.agg.Empty() {
		return true // empty subtree: nothing to fold
	}
	ins := &g.ins
	if s.bad || s.fallback != 0 || s.maxTime >= ins.e.Time {
		return false
	}
	// The subtree's key span must lie fully inside the compiled fold
	// range: for exact keys that range is the scan range itself, and for
	// inexact linear predicates it is the inward-rounded interval on
	// which the predicate provably holds (predicate.Range.FoldBoundsOf);
	// boundary-band vertices descend to per-item re-checks.
	if !(s.minKey > ins.flo || (ins.floIncl && s.minKey == ins.flo)) {
		return false
	}
	if !(s.maxKey < ins.fhi || (ins.fhiIncl && s.maxKey == ins.fhi)) {
		return false
	}
	first := s.agg.FirstWid
	last := first + int64(len(s.agg.Sums)) - 1
	if first > ins.lo || last > ins.hi {
		// A stored predecessor's window range always starts at or before
		// and ends at or before the new event's (times are in order);
		// anything else is unexpected — scan per vertex.
		return false
	}
	if last < ins.lo {
		return true // no shared window: nothing can connect
	}
	// Watermark version compatibility (Definition 5, Cases 1 and 2): on
	// transitions whose predecessors maxStart watermarks can invalidate,
	// the summary must be filtered under the current version. A stale
	// summary is restamped for free when no vertex of the subtree falls
	// below any current threshold (the advance did not touch it);
	// otherwise the fold declines — refreshSummaries has already rebuilt
	// eligible trees, so this only descends around genuinely mixed
	// subtrees.
	if len(ins.augDeps) > 0 && s.wmVer != g.wmVer {
		for wid := first; wid <= last; wid++ {
			if int64(s.minTime) < g.invalThreshold(ins.augDeps, wid) {
				return false
			}
		}
		s.wmVer = g.wmVer
	}
	// Case-3 invalidation (SEQ(NOT N, Pj)) disqualifies the *new* event
	// from windows holding an already-finished negative trend; those
	// windows form a prefix of the shared range (insertAt verified the
	// suffix shape before enabling the fast path) and are skipped here,
	// exactly as the per-vertex scan's validWid does.
	start := ins.lo
	if ins.validFrom > start {
		start = ins.validFrom
	}
	if start > last {
		return true // every shared window is invalid for the new event
	}
	for wid := start; wid <= last; wid++ {
		sp := s.agg.Sums[wid-first]
		if sp == nil {
			continue
		}
		i := int(wid - ins.lo)
		if ins.payloads[i] == nil {
			ins.payloads[i] = g.cs.pool.Get()
		}
		g.def.AddPred(ins.payloads[i], sp)
	}
	if edges := s.agg.EdgesFrom(start); edges > 0 {
		g.stats.Edges += edges
		ins.gotPred = true
	}
	g.stats.SummaryFolds++
	return true
}
