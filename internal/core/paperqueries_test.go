package core_test

import (
	"fmt"
	"math"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/enum"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

// The paper's three motivating queries (§1), verbatim, with windows
// scaled to the miniature test workloads.
const (
	paperQ1 = `RETURN sector, COUNT(*) PATTERN Stock S+
	           WHERE [company, sector] AND S.price > NEXT(S).price
	           GROUP-BY sector WITHIN 8 SLIDE 4`
	paperQ2 = `RETURN mapper, SUM(M.cpu)
	           PATTERN SEQ(Start S, Measurement M+, End E)
	           WHERE [job, mapper] AND M.load < NEXT(M).load
	           GROUP-BY mapper WITHIN 10 SLIDE 5`
	paperQ3 = `RETURN segment, COUNT(*), AVG(P.speed)
	           PATTERN SEQ(NOT Accident A, Position P+)
	           WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed
	           GROUP-BY segment WITHIN 6 SLIDE 3`
)

// TestPaperQueriesAgainstOracle runs Q1, Q2, and Q3 end to end on
// miniature versions of their workloads and compares every per-group,
// per-window aggregate against the brute-force enumerator.
func TestPaperQueriesAgainstOracle(t *testing.T) {
	cases := []struct {
		name string
		qsrc string
		evs  []*event.Event
	}{
		{
			"Q1/stock",
			paperQ1,
			gen.Stock(gen.StockConfig{
				Events: 120, Companies: 3, Sectors: 2, Rate: 5,
				StartPrice: 100, MaxTick: 2, DownBias: 0.1, Seed: 3,
			}),
		},
		{
			"Q2/cluster",
			paperQ2,
			gen.Cluster(gen.ClusterConfig{
				Events: 120, Mappers: 2, Jobs: 2, Rate: 5,
				LoadLambda: 100, StartEndProb: 0.25, Seed: 3,
			}),
		},
		{
			"Q3/traffic",
			paperQ3,
			gen.LinearRoad(gen.LinearRoadConfig{
				Events: 100, Vehicles: 4, Segments: 2,
				StartRate: 6, EndRate: 6, AccidentProb: 0.08,
				MaxSpeed: 100, GateSelectivity: 50, Seed: 3,
			}),
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q := query.MustParse(c.qsrc)
			plan, err := core.NewPlan(q, aggregate.ModeNative)
			if err != nil {
				t.Fatal(err)
			}
			eng := core.NewEngine(plan)
			eng.Run(event.NewSliceStream(c.evs))
			got := map[string][]float64{}
			for _, r := range eng.Results() {
				got[fmt.Sprintf("%s/%d", r.Group, r.Wid)] = r.Values
			}
			want, err := enum.Run(q, c.evs)
			if err != nil {
				t.Fatal(err)
			}
			wantMap := map[string][]float64{}
			for _, r := range want {
				if r.Count > 0 {
					wantMap[fmt.Sprintf("%s/%d", r.Group, r.Wid)] = r.Values
				}
			}
			if len(wantMap) == 0 {
				t.Fatal("workload produced no matches; test is vacuous")
			}
			if len(got) != len(wantMap) {
				t.Fatalf("results: got %d, oracle %d", len(got), len(wantMap))
			}
			for k, wv := range wantMap {
				gv, ok := got[k]
				if !ok {
					t.Fatalf("missing result %s", k)
				}
				for i := range wv {
					if !feq(gv[i], wv[i]) {
						t.Errorf("%s agg %d: got %v, oracle %v", k, i, gv[i], wv[i])
					}
				}
			}
		})
	}
}

func feq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestPaperQueriesScale smoke-runs the three paper queries at realistic
// scale (50k events each) in every execution mode, checking mode
// agreement and basic result sanity.
func TestPaperQueriesScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large streams")
	}
	cases := []struct {
		name string
		qsrc string
		evs  []*event.Event
	}{
		{"Q1", paperQ1, func() []*event.Event {
			cfg := gen.DefaultStock(50000)
			cfg.Rate = 50
			return gen.Stock(cfg)
		}()},
		{"Q2", paperQ2, func() []*event.Event {
			cfg := gen.DefaultCluster(50000)
			cfg.Rate = 500
			return gen.Cluster(cfg)
		}()},
		{"Q3", paperQ3, func() []*event.Event {
			cfg := gen.DefaultLinearRoad(50000)
			cfg.StartRate, cfg.EndRate = 500, 1000
			return gen.LinearRoad(cfg)
		}()},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q := query.MustParse(c.qsrc)
			plan, err := core.NewPlan(q, aggregate.ModeNative)
			if err != nil {
				t.Fatal(err)
			}
			seq := core.NewEngine(plan)
			seq.Run(event.NewSliceStream(c.evs))
			if len(seq.Results()) == 0 {
				t.Fatal("no results at scale")
			}
			txn := core.NewEngine(plan)
			txn.SetTransactional(true)
			txn.Run(event.NewSliceStream(c.evs))
			par := core.NewEngine(plan)
			par.RunParallel(event.NewSliceStream(c.evs), 4)
			a, b, p := seq.Results(), txn.Results(), par.Results()
			if len(a) != len(b) || len(a) != len(p) {
				t.Fatalf("result counts: seq=%d txn=%d par=%d", len(a), len(b), len(p))
			}
			for i := range a {
				for j := range a[i].Values {
					if !feq(a[i].Values[j], b[i].Values[j]) || !feq(a[i].Values[j], p[i].Values[j]) {
						t.Fatalf("mode disagreement at result %d agg %d", i, j)
					}
				}
			}
			// Windows emitted in order per group.
			for i := 1; i < len(a); i++ {
				if a[i].Group == a[i-1].Group && a[i].Wid <= a[i-1].Wid {
					t.Fatalf("window order violated at %d", i)
				}
			}
		})
	}
}
