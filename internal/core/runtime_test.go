package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// runtimeDiffQueries are the fastpath differential shapes (three
// selection semantics, negation cases, exact ranges, multi-window
// sliding) — the multi-statement runtime must reproduce each of them
// bit-for-bit against a dedicated single-statement engine.
var runtimeDiffQueries = []string{
	"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
	"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price >= NEXT(S).price",
	"RETURN COUNT(*), MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WITHIN 16 SLIDE 4",
	"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8",
	"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND 2 * S.price > NEXT(S).price WITHIN 20 SLIDE 5",
	"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5",
	"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5",
	"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
	"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
	"RETURN COUNT(*), SUM(B.price) PATTERN SEQ(Stock A, NOT Halt H, Stock B+) WHERE [company] AND B.price > NEXT(B).price WITHIN 24 SLIDE 8",
	"RETURN COUNT(*) PATTERN SEQ(NOT SEQ(Halt X, NOT News N, Halt Y), Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
}

func registerAll(t *testing.T, rt *core.Runtime, queries []string, mode aggregate.Mode) []*core.Stmt {
	t.Helper()
	stmts := make([]*core.Stmt, len(queries))
	for i, src := range queries {
		plan, err := core.NewPlan(query.MustParse(src), mode)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{})
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = st
	}
	return stmts
}

// TestRuntimeDifferential locks in the tentpole equivalence: a Runtime
// with N registered statements produces identical Results() and
// Stats() to N independent single-statement engines over the same
// stream, across the fastpath differential query shapes.
func TestRuntimeDifferential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		evs := diffStreamHalts(rand.New(rand.NewSource(seed)), 400, true, 12, 20)

		rt := core.NewRuntime()
		stmts := registerAll(t, rt, runtimeDiffQueries, aggregate.ModeNative)
		for _, ev := range evs {
			if err := rt.Process(ev); err != nil {
				t.Fatalf("seed %d: Process: %v", seed, err)
			}
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("seed %d: Close: %v", seed, err)
		}

		for i, src := range runtimeDiffQueries {
			solo := runDiffEngine(t, query.MustParse(src), aggregate.ModeNative, evs, false)
			shared := stmts[i].Engine()
			compareResults(t, seed, shared.Results(), solo.Results())
			ss, es := shared.Stats(), solo.Stats()
			if ss != es {
				t.Fatalf("seed %d, query %d (%s): stats diverge:\nshared %+v\nsolo   %+v",
					seed, i, src, ss, es)
			}
		}
	}
}

// TestRuntimeMidStreamRegister asserts the registration watermark: a
// statement registered at watermark T sees only events at or after T
// and matches an engine fed exactly the suffix, while statements
// registered at the start are unperturbed.
func TestRuntimeMidStreamRegister(t *testing.T) {
	evs := diffStream(rand.New(rand.NewSource(7)), 400, true)
	q := "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	cut := 200

	rt := core.NewRuntime()
	early := registerAll(t, rt, []string{q}, aggregate.ModeNative)[0]
	for _, ev := range evs[:cut] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	wm := rt.Watermark()
	late := registerAll(t, rt, []string{q}, aggregate.ModeNative)[0]
	for _, ev := range evs[cut:] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// The late statement must match an engine that was seeded to the
	// registration watermark and fed only the suffix.
	plan, err := core.NewPlan(query.MustParse(q), aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	suffixRt := core.NewRuntime()
	// Seed the reference runtime's watermark by replaying the prefix
	// with no statements registered, then register and feed the suffix.
	for _, ev := range evs[:cut] {
		if err := suffixRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := suffixRt.Register(plan, core.StmtConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[cut:] {
		if err := suffixRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := suffixRt.Close(); err != nil {
		t.Fatal(err)
	}
	compareResults(t, 7, late.Engine().Results(), ref.Engine().Results())
	if ls, rs := late.Engine().Stats(), ref.Engine().Stats(); ls != rs {
		t.Fatalf("late stats %+v != suffix reference %+v", ls, rs)
	}
	if got := late.Engine().Stats().Events; got > uint64(len(evs)-cut) {
		t.Fatalf("late statement saw %d events, more than the %d-event suffix", got, len(evs)-cut)
	}
	for _, r := range late.Engine().Results() {
		if r.WindowEnd <= wm {
			t.Fatalf("late statement emitted window [%d,%d) that closed before its registration watermark %d",
				r.WindowStart, r.WindowEnd, wm)
		}
	}

	// The early statement must match a solo engine over the full stream
	// (mid-stream registration of another statement is invisible to it).
	solo := runDiffEngine(t, query.MustParse(q), aggregate.ModeNative, evs, false)
	compareResults(t, 7, early.Engine().Results(), solo.Results())
}

// TestRuntimeMidStreamClose asserts that closing one statement
// mid-stream flushes it exactly once and does not perturb the
// surviving statements' results.
func TestRuntimeMidStreamClose(t *testing.T) {
	evs := diffStream(rand.New(rand.NewSource(11)), 400, true)
	queries := []string{
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
	}
	rt := core.NewRuntime()
	stmts := registerAll(t, rt, queries, aggregate.ModeNative)
	cut := 200
	for _, ev := range evs[:cut] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	closedResults := len(stmts[0].Engine().Results())
	if err := stmts[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushes the statement's open windows.
	if got := len(stmts[0].Engine().Results()); got < closedResults {
		t.Fatalf("close lost results: %d -> %d", closedResults, got)
	}
	if err := stmts[0].Close(); !errors.Is(err, core.ErrStatementClosed) {
		t.Fatalf("second Close = %v, want ErrStatementClosed", err)
	}
	for _, ev := range evs[cut:] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// The closed statement saw only the prefix...
	if got := stmts[0].Engine().Stats().Events; got > uint64(cut) {
		t.Fatalf("closed statement saw %d events after closing at %d", got, cut)
	}
	// ...and the survivor matches a solo engine over the full stream.
	solo := runDiffEngine(t, query.MustParse(queries[1]), aggregate.ModeNative, evs, false)
	compareResults(t, 11, stmts[1].Engine().Results(), solo.Results())
	if ss, es := stmts[1].Engine().Stats(), solo.Stats(); ss != es {
		t.Fatalf("survivor stats %+v != solo %+v", ss, es)
	}
}

// TestRuntimeErrors locks in the error-returning ingest contract:
// out-of-order events return ErrOutOfOrder and are counted per
// statement, Process after Close returns ErrClosed.
func TestRuntimeErrors(t *testing.T) {
	rt := core.NewRuntime()
	stmts := registerAll(t, rt, []string{
		"RETURN COUNT(*) PATTERN A+",
		"RETURN COUNT(*) PATTERN A+ WITHIN 10 SLIDE 10",
	}, aggregate.ModeNative)
	ev := func(id uint64, tm event.Time) *event.Event {
		return &event.Event{ID: id, Type: "A", Time: tm}
	}
	if err := rt.Process(ev(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(ev(2, 3)); !errors.Is(err, core.ErrOutOfOrder) {
		t.Fatalf("late event: err = %v, want ErrOutOfOrder", err)
	}
	if err := rt.Process(ev(3, 6)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Process(ev(4, 7)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("closed runtime: err = %v, want ErrClosed", err)
	}
	for i, st := range stmts {
		s := st.Engine().Stats()
		if s.OutOfOrder != 1 {
			t.Errorf("statement %d: OutOfOrder = %d, want 1", i, s.OutOfOrder)
		}
		if s.Events != 2 {
			t.Errorf("statement %d: Events = %d, want 2", i, s.Events)
		}
	}
	if _, err := rt.Register(nil, core.StmtConfig{}); !errors.Is(err, core.ErrClosed) {
		// Register on a closed runtime must fail before touching the plan.
		t.Fatalf("Register after Close: err = %v, want ErrClosed", err)
	}
}

// TestRuntimeSharedHash asserts the shared-ingest coalescing: N
// statements over the same partition attributes share one route group
// (one hash per event), while a different signature gets its own.
func TestRuntimeSharedHash(t *testing.T) {
	rt := core.NewRuntime()
	registerAll(t, rt, []string{
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 100 SLIDE 100",
		"RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] GROUP-BY company WITHIN 50 SLIDE 50",
		"RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] GROUP-BY company WITHIN 100 SLIDE 100",
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [sector] GROUP-BY sector WITHIN 100 SLIDE 100",
	}, aggregate.ModeNative)
	if got := rt.RouteGroups(); got != 2 {
		t.Fatalf("route groups = %d, want 2 (three [company] statements share one hash)", got)
	}
}

// TestRuntimeParallelStreamingMerge asserts the per-window barrier
// merge: a multi-statement RunParallel matches the sequential runtime
// bit-for-bit, workers retain no results (bounded buffers), and the
// merger's pending-window buffer stays bounded by the number of
// concurrently open windows instead of growing with the stream.
func TestRuntimeParallelStreamingMerge(t *testing.T) {
	evs := diffStreamHalts(rand.New(rand.NewSource(3)), 12000, false, 25, 0)
	queries := []string{
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
		// Ungrouped: processed inline on the coordinator.
		"RETURN COUNT(*) PATTERN Stock S+ WITHIN 16 SLIDE 4",
	}

	seqRt := core.NewRuntime()
	seqStmts := registerAll(t, seqRt, queries, aggregate.ModeNative)
	for _, ev := range evs {
		if err := seqRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	parRt := core.NewRuntime()
	parStmts := registerAll(t, parRt, queries, aggregate.ModeNative)
	var streamed int
	parStmts[0].Engine().OnResult(func(core.Result) { streamed++ })
	if err := parRt.RunParallel(context.Background(), event.NewSliceStream(evs), 4); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		compareResults(t, 3, parStmts[i].Engine().Results(), seqStmts[i].Engine().Results())
	}
	if streamed != len(parStmts[0].Engine().Results()) {
		t.Fatalf("streaming callback saw %d results, collected %d",
			streamed, len(parStmts[0].Engine().Results()))
	}

	maxPending, retained := parRt.ParallelDebug()
	if retained != 0 {
		t.Fatalf("workers retained %d results at flush; streaming merge requires 0", retained)
	}
	// Boundedness: the merger may hold at most the windows a lagging
	// worker's bounded channel can span (a scheduling-dependent
	// constant), while an end-of-stream merge would hold every window
	// of the stream at once. Assert the peak stays well below the
	// stream's window count.
	totalWindows := 0
	seenWids := map[[2]int64]bool{}
	for i, st := range parStmts[:2] {
		for _, r := range st.Engine().Results() {
			k := [2]int64{int64(i), r.Wid}
			if !seenWids[k] {
				seenWids[k] = true
				totalWindows++
			}
		}
	}
	if maxPending == 0 {
		t.Fatal("merger never held a pending window; barrier path not exercised")
	}
	if maxPending > totalWindows/3 {
		t.Fatalf("merger held %d of %d windows pending at peak; merge is not streaming",
			maxPending, totalWindows)
	}

	// Registration is rejected while closed (RunParallel closed it).
	if _, err := parRt.Register(nil, core.StmtConfig{}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Register after RunParallel: err = %v, want ErrClosed", err)
	}
}

// TestRuntimeParallelContextCancel asserts that a cancelled context
// aborts RunParallel promptly with ctx.Err and leaves the runtime
// closed.
func TestRuntimeParallelContextCancel(t *testing.T) {
	rt := core.NewRuntime()
	registerAll(t, rt, []string{
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 20 SLIDE 5",
	}, aggregate.ModeNative)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	s := event.FuncStream(func() *event.Event {
		n++
		if n == 1000 {
			cancel()
		}
		return &event.Event{ID: uint64(n), Type: "Stock", Time: event.Time(n),
			Str: map[string]string{"company": "c0"}}
	})
	err := rt.RunParallel(ctx, s, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if perr := rt.Process(&event.Event{ID: 1, Type: "Stock", Time: 1}); !errors.Is(perr, core.ErrClosed) {
		t.Fatalf("runtime not closed after cancelled RunParallel: %v", perr)
	}
}
