package core_test

import (
	"context"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// sharedDiffShapes are the fastpath trend-formation shapes the shared
// sub-plan network must serve: for each, N statements with DIVERGENT
// RETURN clauses register into one runtime, collapse onto one shared
// graph, and must each reproduce a dedicated solo engine bit-for-bit —
// results AND stats (modulo the sharing counters).
var sharedDiffShapes = []struct {
	name string
	rest string // the query after the RETURN clause
	mode aggregate.Mode
}{
	{"stam-range-windowed",
		"PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		aggregate.ModeNative},
	{"stam-range-unbounded",
		"PATTERN Stock S+ WHERE S.price >= NEXT(S).price",
		aggregate.ModeNative},
	{"stam-no-predicate",
		"PATTERN Stock S+ WITHIN 16 SLIDE 4",
		aggregate.ModeNative},
	{"stam-seq",
		"PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8",
		aggregate.ModeNative},
	{"stam-inexact-range",
		"PATTERN Stock S+ WHERE [company] AND 2 * S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		aggregate.ModeNative},
	{"skip-till-next-match",
		"PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5",
		aggregate.ModeNative},
	{"contiguous",
		"PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5",
		aggregate.ModeNative},
	{"grouped",
		"PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
		aggregate.ModeNative},
	{"exact-mode",
		"PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		aggregate.ModeExact},
}

// sharedDiffReturns are the divergent RETURN clauses registered per
// shape: the shared union definition must carry every subscriber's
// slots while each statement reads back only its own.
var sharedDiffReturns = []string{
	"COUNT(*)",
	"COUNT(*), SUM(S.price)",
	"MIN(S.price), MAX(S.price), AVG(S.price)",
}

func registerSharing(t *testing.T, rt *core.Runtime, queries []string, mode aggregate.Mode) []*core.Stmt {
	t.Helper()
	stmts := make([]*core.Stmt, len(queries))
	for i, src := range queries {
		plan, err := core.NewPlan(query.MustParse(src), mode)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{Share: true})
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = st
	}
	return stmts
}

// compareSharedToSolo asserts a shared subscriber reproduces a solo
// engine bit-for-bit: identical results and identical stats once the
// sharing counters are masked out.
func compareSharedToSolo(t *testing.T, seed int64, label string, st *core.Stmt, solo *core.Engine, wantShared int) {
	t.Helper()
	compareResults(t, seed, st.Results(), solo.Results())
	ss, es := st.Stats(), solo.Stats()
	if ss.SharedStatements != wantShared {
		t.Fatalf("seed %d, %s: SharedStatements = %d, want %d", seed, label, ss.SharedStatements, wantShared)
	}
	ss.SharedStatements = 0
	if ss != es {
		t.Fatalf("seed %d, %s: stats diverge (modulo sharing counters):\nshared %+v\nsolo   %+v",
			seed, label, ss, es)
	}
}

// TestSharedStatementsDifferential locks in the tentpole equivalence:
// N statements registered through the shared sub-plan network — one
// shared graph per trend-formation signature, RETURN clauses fanned
// out per subscriber — produce results and stats bit-identical to N
// dedicated solo engines, across the fastpath shapes.
func TestSharedStatementsDifferential(t *testing.T) {
	for _, shape := range sharedDiffShapes {
		t.Run(shape.name, func(t *testing.T) {
			queries := make([]string, len(sharedDiffReturns))
			for i, ret := range sharedDiffReturns {
				queries[i] = "RETURN " + ret + " " + shape.rest
			}
			for seed := int64(1); seed <= 3; seed++ {
				evs := diffStreamHalts(rand.New(rand.NewSource(seed)), 400,
					shape.mode != aggregate.ModeExact, 12, 0)

				rt := core.NewRuntime()
				stmts := registerSharing(t, rt, queries, shape.mode)
				if rs := rt.Stats(); rs.SharedGraphs != 1 || rs.SharedStatements != len(queries) {
					t.Fatalf("seed %d: sharing did not engage: %+v", seed, rs)
				}
				for _, ev := range evs {
					if err := rt.Process(ev); err != nil {
						t.Fatal(err)
					}
				}
				if err := rt.Close(); err != nil {
					t.Fatal(err)
				}
				for i, src := range queries {
					solo := runDiffEngine(t, query.MustParse(src), shape.mode, evs, false)
					compareSharedToSolo(t, seed, src, stmts[i], solo, len(queries))
				}
			}
		})
	}
}

// TestSharedStatementsDisqualified pins the sharing disqualifiers:
// negation and transactional statements register exclusively (the
// network must not absorb them) and still match solo engines.
func TestSharedStatementsDisqualified(t *testing.T) {
	evs := diffStreamHalts(rand.New(rand.NewSource(5)), 400, true, 12, 0)
	negQ := "RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10"
	txnQ := "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"

	rt := core.NewRuntime()
	var stmts []*core.Stmt
	for _, src := range []string{negQ, negQ} {
		plan, err := core.NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{Share: true})
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	for _, src := range []string{txnQ, txnQ} {
		plan, err := core.NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{Share: true, Transactional: true})
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	if rs := rt.Stats(); rs.SharedGraphs != 0 || rs.SharedStatements != 0 {
		t.Fatalf("disqualified statements entered the shared network: %+v", rs)
	}
	for _, ev := range evs {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i, st := range stmts[:2] {
		solo := runDiffEngine(t, query.MustParse(negQ), aggregate.ModeNative, evs, false)
		compareSharedToSolo(t, 5, "negation", stmts[i], solo, 0)
		_ = st
	}
}

// TestSharedStatementsMidStream pins the attach/detach lifecycle
// around a warm shared graph: a statement registered mid-stream never
// inherits the warm graph's history (it opens a new shared graph
// seeded at its registration watermark, which same-position
// registrations share), and a subscriber detaching from a warm shared
// graph flushes its open windows without perturbing the survivors.
func TestSharedStatementsMidStream(t *testing.T) {
	evs := diffStream(rand.New(rand.NewSource(9)), 400, true)
	q1 := "RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	q2 := "RETURN MIN(S.price), MAX(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5"
	cut, cut2 := 150, 280

	rt := core.NewRuntime()
	early := registerSharing(t, rt, []string{q1, q2}, aggregate.ModeNative)
	if rs := rt.Stats(); rs.SharedGraphs != 1 {
		t.Fatalf("early statements not shared: %+v", rs)
	}
	for _, ev := range evs[:cut] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-stream registrations: the warm graph must NOT accept them —
	// they share a new graph seeded at the current watermark.
	late := registerSharing(t, rt, []string{q1, q2}, aggregate.ModeNative)
	if rs := rt.Stats(); rs.SharedGraphs != 2 || rs.SharedStatements != 4 {
		t.Fatalf("mid-stream registrations misrouted: %+v", rs)
	}
	if early[0].Engine() == late[0].Engine() {
		t.Fatal("mid-stream registration attached to a warm shared graph")
	}
	for _, ev := range evs[cut:cut2] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Detach one subscriber from the (warm) early graph: it flushes its
	// open windows; the survivor keeps the graph undisturbed.
	if err := early[1].Close(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[cut2:] {
		if err := rt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	// The detached subscriber matches a solo engine over the prefix it
	// saw, flushed at its close point.
	soloDetach := runDiffEngine(t, query.MustParse(q2), aggregate.ModeNative, evs[:cut2], false)
	compareSharedToSolo(t, 9, "detached", early[1], soloDetach, 2)

	// The surviving early subscriber matches a solo engine over the
	// full stream: the detach did not perturb the shared graph.
	soloFull := runDiffEngine(t, query.MustParse(q1), aggregate.ModeNative, evs, false)
	compareSharedToSolo(t, 9, "survivor", early[0], soloFull, 1)

	// The late subscribers match solo engines registered at the same
	// watermark and fed only the suffix.
	for i, src := range []string{q1, q2} {
		suffixRt := core.NewRuntime()
		for _, ev := range evs[:cut] {
			if err := suffixRt.Process(ev); err != nil {
				t.Fatal(err)
			}
		}
		plan, err := core.NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := suffixRt.Register(plan, core.StmtConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs[cut:] {
			if err := suffixRt.Process(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := suffixRt.Close(); err != nil {
			t.Fatal(err)
		}
		compareSharedToSolo(t, 9, "late "+src, late[i], ref.Engine(), 2)
	}
}

// TestRuntimeParallelManySignatures drives RunParallel with six
// distinct partition-attribute signatures — more than parMsg's inline
// hash array holds — so every event's routing hashes travel through
// the pooled, refcounted spill (hashSpill). Results must match the
// sequential runtime bit-for-bit: a recycled spill handed to workers
// too early would route events into the wrong partitions.
func TestRuntimeParallelManySignatures(t *testing.T) {
	evs := diffStreamHalts(rand.New(rand.NewSource(6)), 8000, false, 40, 0)
	queries := []string{
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",                  // [company]
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5", // [company company]
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [price] AND S.price >= NEXT(S).price WITHIN 20 SLIDE 5",                   // [price]
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [price] AND S.price >= NEXT(S).price GROUP-BY price WITHIN 20 SLIDE 5",    // [price price]
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [price] AND S.price >= NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",  // [company price]
		"RETURN MIN(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY price WITHIN 20 SLIDE 5", // [price company]
	}

	seqRt := core.NewRuntime()
	seqStmts := registerAll(t, seqRt, queries, aggregate.ModeNative)
	for _, ev := range evs {
		if err := seqRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	parRt := core.NewRuntime()
	parStmts := registerAll(t, parRt, queries, aggregate.ModeNative)
	if got := parRt.RouteGroups(); got != len(queries) {
		t.Fatalf("route groups = %d, want %d (spill path needs > 4)", got, len(queries))
	}
	if err := parRt.RunParallel(context.Background(), event.NewSliceStream(evs), 4); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		compareResults(t, 6, parStmts[i].Results(), seqStmts[i].Results())
	}
}

// TestSharedStatementsParallel asserts RunParallel treats a shared
// graph as one parallel unit: the fan-out still delivers bit-identical
// per-subscriber results, matching the sequential runtime.
func TestSharedStatementsParallel(t *testing.T) {
	evs := diffStreamHalts(rand.New(rand.NewSource(4)), 6000, false, 25, 0)
	queries := []string{
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		"RETURN MIN(S.price), AVG(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
	}
	seqRt := core.NewRuntime()
	seqStmts := registerSharing(t, seqRt, queries, aggregate.ModeNative)
	for _, ev := range evs {
		if err := seqRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	parRt := core.NewRuntime()
	parStmts := registerSharing(t, parRt, queries, aggregate.ModeNative)
	if rs := parRt.Stats(); rs.SharedGraphs != 1 {
		t.Fatalf("parallel statements not shared: %+v", rs)
	}
	if err := parRt.RunParallel(context.Background(), event.NewSliceStream(evs), 4); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		compareResults(t, 4, parStmts[i].Results(), seqStmts[i].Results())
	}
}
