package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// diffSchema mirrors the stock generator for schema-bound events; the
// workload mixes bound and schemaless events to exercise both access
// paths under the summary fold.
var diffSchema = &event.Schema{
	Type:    "Stock",
	Numeric: []string{"price"},
	Strings: []string{"company"},
}

// diffStream generates a randomized stock-like stream: mostly Stock
// events with small-integer prices (keeping float64 sums exact so the
// two scan disciplines must agree bit-for-bit), occasional Halt events
// (negation), same-timestamp bursts (adjacency boundaries), missing
// and NaN prices (sort-key fallbacks), and a mix of schema-bound and
// schemaless events.
func diffStream(rng *rand.Rand, n int, allowNaN bool) []*event.Event {
	return diffStreamHalts(rng, n, allowNaN, 40, 0)
}

// diffStreamHalts is diffStream with the Halt frequency (1 in haltDiv
// events) and an optional News frequency (1 in newsDiv; 0 disables)
// exposed: dense halts drive watermark advances mid-pane and
// same-timestamp invalidation bursts, News events feed nested
// negation's innermost sub-pattern.
func diffStreamHalts(rng *rand.Rand, n int, allowNaN bool, haltDiv, newsDiv int) []*event.Event {
	evs := make([]*event.Event, 0, n)
	t := event.Time(1)
	for i := 0; i < n; i++ {
		// ~40% same-timestamp follow-ups.
		if rng.Intn(5) >= 2 {
			t += event.Time(1 + rng.Intn(2))
		}
		typ := event.Type("Stock")
		if rng.Intn(haltDiv) == 0 {
			typ = "Halt"
		} else if newsDiv > 0 && rng.Intn(newsDiv) == 0 {
			typ = "News"
		}
		ev := &event.Event{
			ID:    uint64(i + 1),
			Type:  typ,
			Time:  t,
			Attrs: map[string]float64{},
			Str:   map[string]string{"company": fmt.Sprintf("c%d", rng.Intn(3))},
		}
		switch rng.Intn(20) {
		case 0: // missing price
		case 1:
			if allowNaN {
				// NaN price: predicates reject, sort keys degenerate.
				ev.Attrs["price"] = math.NaN()
			} else {
				ev.Attrs["price"] = float64(1 + rng.Intn(8))
			}
		default:
			ev.Attrs["price"] = float64(1 + rng.Intn(8))
		}
		if typ == "Stock" && rng.Intn(2) == 0 {
			diffSchema.Bind(ev)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestFastPathDifferential runs randomized workloads through the
// summary fast path and a forced per-vertex scan and asserts identical
// results — values, groups, windows — and identical logical edge and
// insertion counts. Queries cover all three event selection semantics,
// negation, exact and inexact compiled ranges, multi-window sliding,
// equivalence partitioning, and schemaless events.
func TestFastPathDifferential(t *testing.T) {
	cases := []struct {
		name string
		q    string
		mode aggregate.Mode
		// fast reports whether the summary path must actually engage
		// (guards against the fast path silently dying).
		fast bool
		// haltDiv/newsDiv override the stream's Halt and News frequencies
		// (0 = defaults: 1-in-40 halts, no News).
		haltDiv, newsDiv int
	}{
		{"stam-range-windowed",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, true, 0, 0},
		{"stam-range-unbounded",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price >= NEXT(S).price",
			aggregate.ModeNative, true, 0, 0},
		{"stam-no-predicate",
			"RETURN COUNT(*), MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WITHIN 16 SLIDE 4",
			aggregate.ModeNative, true, 0, 0},
		{"stam-seq",
			"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 0, 0},
		{"stam-inexact-range", // 2*price folds via interval-arithmetic inner bounds
			"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND 2 * S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, true, 0, 0},
		{"skip-till-next-match",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5",
			aggregate.ModeNative, false, 0, 0},
		{"contiguous",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5",
			aggregate.ModeNative, false, 0, 0},
		{"negation-case3", // SEQ(NOT N, Pj): per-insert window-validity suffix
			"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
			aggregate.ModeNative, true, 0, 0},
		{"negation-case2", // SEQ(Pi, NOT N): maxStart watermark-versioned summaries
			"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
			aggregate.ModeNative, true, 0, 0},
		{"negation-case2-unwindowed",
			"RETURN COUNT(*) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price >= NEXT(S).price",
			aggregate.ModeNative, true, 0, 0},
		{"negation-case3-unwindowed",
			"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price",
			aggregate.ModeNative, true, 0, 0},
		// Dense halts: watermark advances land mid-pane and in
		// same-timestamp bursts, exercising lazy revalidation and
		// in-place rebuilds between folds.
		{"negation-case2-burst",
			"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 8, 0},
		{"negation-case3-burst",
			"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 8, 0},
		// Case 1 with a Kleene previous state: A→A is ungated while A→B
		// is maxStart-gated, so state A's trees opt out (inconsistent
		// gating) and only B→B folds — the differential still covers the
		// mixed discipline.
		{"negation-case1-mixed",
			"RETURN COUNT(*) PATTERN SEQ(Stock A+, NOT Halt H, Stock B+) WHERE [company] AND A.price > NEXT(A).price AND B.price > NEXT(B).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 12, 0},
		// Case 1 with a single previous event: every fast transition out
		// of A is gated by the same link, so A's trees stay augmented,
		// fold under watermark versions, and prune invalid events
		// (Theorem 5.1 — the link is prunable).
		{"negation-case1-prunable",
			"RETURN COUNT(*), SUM(B.price) PATTERN SEQ(Stock A, NOT Halt H, Stock B+) WHERE [company] AND B.price > NEXT(B).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 12, 0},
		// Nested negation: the root's Case-3 guard is itself guarded by a
		// Case-1 link inside the negative graph (News invalidates the
		// halt pair).
		{"negation-nested",
			"RETURN COUNT(*) PATTERN SEQ(NOT SEQ(Halt X, NOT News N, Halt Y), Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true, 8, 20},
		{"exact-mode",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeExact, true, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustParse(tc.q)
			haltDiv := tc.haltDiv
			if haltDiv == 0 {
				haltDiv = 40
			}
			for seed := int64(1); seed <= 4; seed++ {
				// Exact mode cannot aggregate NaN attributes (big.Float has
				// no NaN); keep them to the native-mode workloads.
				evs := diffStreamHalts(rand.New(rand.NewSource(seed)), 300,
					tc.mode != aggregate.ModeExact, haltDiv, tc.newsDiv)
				fastEng := runDiffEngine(t, q, tc.mode, evs, false)
				scanEng := runDiffEngine(t, q, tc.mode, evs, true)
				compareResults(t, seed, fastEng.Results(), scanEng.Results())
				fs, ss := fastEng.Stats(), scanEng.Stats()
				if fs.Inserted != ss.Inserted {
					t.Fatalf("seed %d: inserted %d (fast) vs %d (scan)", seed, fs.Inserted, ss.Inserted)
				}
				if fs.Edges != ss.Edges {
					t.Fatalf("seed %d: logical edges %d (fast) vs %d (scan)", seed, fs.Edges, ss.Edges)
				}
				if ss.SummaryFolds != 0 {
					t.Fatalf("seed %d: forced scan took %d summary folds", seed, ss.SummaryFolds)
				}
				if tc.fast && fs.SummaryFolds == 0 {
					t.Fatalf("seed %d: summary fast path never engaged", seed)
				}
				if !tc.fast && fs.SummaryFolds != 0 {
					t.Fatalf("seed %d: ineligible query took %d summary folds", seed, fs.SummaryFolds)
				}
			}
		})
	}
}

func runDiffEngine(t *testing.T, q *query.Query, mode aggregate.Mode, evs []*event.Event, forceScan bool) *core.Engine {
	t.Helper()
	plan, err := core.NewPlan(q, mode)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	eng.SetForceVertexScan(forceScan)
	eng.Run(event.NewSliceStream(evs))
	return eng
}

func compareResults(t *testing.T, seed int64, a, b []core.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d: %d results (fast) vs %d (scan)", seed, len(a), len(b))
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
			t.Fatalf("seed %d: result %d keyed (%q, %d) vs (%q, %d)",
				seed, i, a[i].Group, a[i].Wid, b[i].Group, b[i].Wid)
		}
		for j := range a[i].Values {
			av, bv := a[i].Values[j], b[i].Values[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("seed %d: result %d (%q, wid %d) value %d: %v (fast) vs %v (scan)",
					seed, i, a[i].Group, a[i].Wid, j, av, bv)
			}
		}
	}
}

// negFuzzQueries are the negation shapes the fuzzer drives: one per
// dependency case of paper §5.1 plus a nested split.
var negFuzzQueries = []string{
	"RETURN COUNT(*), SUM(S.price) PATTERN SEQ(Stock S+, NOT Halt H) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
	"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
	"RETURN COUNT(*), SUM(B.price) PATTERN SEQ(Stock A, NOT Halt H, Stock B+) WHERE [company] AND B.price > NEXT(B).price WITHIN 24 SLIDE 8",
	"RETURN COUNT(*) PATTERN SEQ(NOT SEQ(Halt X, NOT News N, Halt Y), Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 24 SLIDE 8",
}

// FuzzNegationWatermarks drives randomized streams — the fuzzer picks
// the seed, the halt density (watermark advance cadence, down to every
// other event), and the query shape — through the watermark-versioned
// fold path and the forced per-vertex scan, asserting identical
// results and identical logical edge and insertion counts. Seeds cover
// each query at sparse and dense halt rates.
func FuzzNegationWatermarks(f *testing.F) {
	for qIdx := range negFuzzQueries {
		f.Add(int64(1), uint8(8), uint8(qIdx))
		f.Add(int64(2), uint8(2), uint8(qIdx))
	}
	f.Fuzz(func(t *testing.T, seed int64, haltDiv, qIdx uint8) {
		q := query.MustParse(negFuzzQueries[int(qIdx)%len(negFuzzQueries)])
		hd := 2 + int(haltDiv)%24
		evs := diffStreamHalts(rand.New(rand.NewSource(seed)), 200, true, hd, 16)
		fastEng := runDiffEngine(t, q, aggregate.ModeNative, evs, false)
		scanEng := runDiffEngine(t, q, aggregate.ModeNative, evs, true)
		compareResults(t, seed, fastEng.Results(), scanEng.Results())
		fs, ss := fastEng.Stats(), scanEng.Stats()
		if fs.Inserted != ss.Inserted {
			t.Fatalf("seed %d: inserted %d (fast) vs %d (scan)", seed, fs.Inserted, ss.Inserted)
		}
		if fs.Edges != ss.Edges {
			t.Fatalf("seed %d: logical edges %d (fast) vs %d (scan)", seed, fs.Edges, ss.Edges)
		}
	})
}
