package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// diffSchema mirrors the stock generator for schema-bound events; the
// workload mixes bound and schemaless events to exercise both access
// paths under the summary fold.
var diffSchema = &event.Schema{
	Type:    "Stock",
	Numeric: []string{"price"},
	Strings: []string{"company"},
}

// diffStream generates a randomized stock-like stream: mostly Stock
// events with small-integer prices (keeping float64 sums exact so the
// two scan disciplines must agree bit-for-bit), occasional Halt events
// (negation), same-timestamp bursts (adjacency boundaries), missing
// and NaN prices (sort-key fallbacks), and a mix of schema-bound and
// schemaless events.
func diffStream(rng *rand.Rand, n int, allowNaN bool) []*event.Event {
	evs := make([]*event.Event, 0, n)
	t := event.Time(1)
	for i := 0; i < n; i++ {
		// ~40% same-timestamp follow-ups.
		if rng.Intn(5) >= 2 {
			t += event.Time(1 + rng.Intn(2))
		}
		typ := event.Type("Stock")
		if rng.Intn(40) == 0 {
			typ = "Halt"
		}
		ev := &event.Event{
			ID:    uint64(i + 1),
			Type:  typ,
			Time:  t,
			Attrs: map[string]float64{},
			Str:   map[string]string{"company": fmt.Sprintf("c%d", rng.Intn(3))},
		}
		switch rng.Intn(20) {
		case 0: // missing price
		case 1:
			if allowNaN {
				// NaN price: predicates reject, sort keys degenerate.
				ev.Attrs["price"] = math.NaN()
			} else {
				ev.Attrs["price"] = float64(1 + rng.Intn(8))
			}
		default:
			ev.Attrs["price"] = float64(1 + rng.Intn(8))
		}
		if typ == "Stock" && rng.Intn(2) == 0 {
			diffSchema.Bind(ev)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestFastPathDifferential runs randomized workloads through the
// summary fast path and a forced per-vertex scan and asserts identical
// results — values, groups, windows — and identical logical edge and
// insertion counts. Queries cover all three event selection semantics,
// negation, exact and inexact compiled ranges, multi-window sliding,
// equivalence partitioning, and schemaless events.
func TestFastPathDifferential(t *testing.T) {
	cases := []struct {
		name string
		q    string
		mode aggregate.Mode
		// fast reports whether the summary path must actually engage
		// (guards against the fast path silently dying).
		fast bool
	}{
		{"stam-range-windowed",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, true},
		{"stam-range-unbounded",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price >= NEXT(S).price",
			aggregate.ModeNative, true},
		{"stam-no-predicate",
			"RETURN COUNT(*), MIN(S.price), MAX(S.price), AVG(S.price) PATTERN Stock S+ WITHIN 16 SLIDE 4",
			aggregate.ModeNative, true},
		{"stam-seq",
			"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price < NEXT(S).price WITHIN 24 SLIDE 8",
			aggregate.ModeNative, true},
		{"stam-inexact-range", // 2*price is not an exact key: per-vertex
			"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND 2 * S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeNative, false},
		{"skip-till-next-match",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price SEMANTICS skip-till-next-match WITHIN 20 SLIDE 5",
			aggregate.ModeNative, false},
		{"contiguous",
			"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price SEMANTICS contiguous WITHIN 20 SLIDE 5",
			aggregate.ModeNative, false},
		{"negation",
			"RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price WITHIN 30 SLIDE 10",
			aggregate.ModeNative, false},
		{"exact-mode",
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
			aggregate.ModeExact, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustParse(tc.q)
			for seed := int64(1); seed <= 4; seed++ {
				// Exact mode cannot aggregate NaN attributes (big.Float has
				// no NaN); keep them to the native-mode workloads.
				evs := diffStream(rand.New(rand.NewSource(seed)), 300, tc.mode != aggregate.ModeExact)
				fastEng := runDiffEngine(t, q, tc.mode, evs, false)
				scanEng := runDiffEngine(t, q, tc.mode, evs, true)
				compareResults(t, seed, fastEng.Results(), scanEng.Results())
				fs, ss := fastEng.Stats(), scanEng.Stats()
				if fs.Inserted != ss.Inserted {
					t.Fatalf("seed %d: inserted %d (fast) vs %d (scan)", seed, fs.Inserted, ss.Inserted)
				}
				if fs.Edges != ss.Edges {
					t.Fatalf("seed %d: logical edges %d (fast) vs %d (scan)", seed, fs.Edges, ss.Edges)
				}
				if ss.SummaryFolds != 0 {
					t.Fatalf("seed %d: forced scan took %d summary folds", seed, ss.SummaryFolds)
				}
				if tc.fast && fs.SummaryFolds == 0 {
					t.Fatalf("seed %d: summary fast path never engaged", seed)
				}
				if !tc.fast && fs.SummaryFolds != 0 {
					t.Fatalf("seed %d: ineligible query took %d summary folds", seed, fs.SummaryFolds)
				}
			}
		})
	}
}

func runDiffEngine(t *testing.T, q *query.Query, mode aggregate.Mode, evs []*event.Event, forceScan bool) *core.Engine {
	t.Helper()
	plan, err := core.NewPlan(q, mode)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	eng.SetForceVertexScan(forceScan)
	eng.Run(event.NewSliceStream(evs))
	return eng
}

func compareResults(t *testing.T, seed int64, a, b []core.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d: %d results (fast) vs %d (scan)", seed, len(a), len(b))
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
			t.Fatalf("seed %d: result %d keyed (%q, %d) vs (%q, %d)",
				seed, i, a[i].Group, a[i].Wid, b[i].Group, b[i].Wid)
		}
		for j := range a[i].Values {
			av, bv := a[i].Values[j], b[i].Values[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("seed %d: result %d (%q, wid %d) value %d: %v (fast) vs %v (scan)",
					seed, i, a[i].Group, a[i].Wid, j, av, bv)
			}
		}
	}
}
