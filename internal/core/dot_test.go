package core_test

import (
	"strings"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// TestDOTFig6c renders the Fig. 6(c) graph and checks the vertices and
// intermediate counts the paper shows: a1:1 b2:1 a3:3 a4:6 b7:10 a8:22
// b9:32 (over the a/b projection of the Fig. 6 stream).
func TestDOTFig6c(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*) PATTERN (SEQ(A+, B))+")
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("B", 2, nil)
	b.Add("A", 3, nil)
	b.Add("A", 4, nil)
	b.Add("B", 7, nil)
	b.Add("A", 8, nil)
	b.Add("B", 9, nil)
	for _, ev := range b.Events() {
		eng.Process(ev)
	}
	dot := eng.DOT()
	for _, want := range []string{
		"a1 : 1", "b2 : 1", "a3 : 3", "a4 : 6", "b7 : 10", "a8 : 22", "b9 : 32",
		"->", "digraph greta",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// END vertices (B state) are double-bordered.
	if !strings.Contains(dot, "peripheries=2") {
		t.Error("END vertices should have double borders")
	}
}

func TestSnapshot(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B) WHERE [g]")
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	var b event.Builder
	b.AddStr("A", 1, nil, map[string]string{"g": "x"})
	b.AddStr("A", 2, nil, map[string]string{"g": "y"})
	for _, ev := range b.Events() {
		eng.Process(ev)
	}
	snaps := eng.Snapshot()
	// Two partitions x two graphs (positive + negative).
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d, want 4: %+v", len(snaps), snaps)
	}
	positives := 0
	for _, s := range snaps {
		if !s.Negative {
			positives++
			if s.Vertices != 1 {
				t.Errorf("positive graph of %q has %d vertices, want 1", s.Partition, s.Vertices)
			}
		}
	}
	if positives != 2 {
		t.Errorf("positives = %d", positives)
	}
}

func TestDOTComposite(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*) PATTERN SEQ(A?, B)")
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	dot := eng.DOT()
	if !strings.Contains(dot, "composite plan") {
		t.Errorf("composite DOT = %q", dot)
	}
}
