// Runtime observability: pre-registered atomic cells on the ingest
// path, sampled snapshots and collectors off it.
//
// The hot-path contract mirrors the engine's own 0-alloc discipline
// (TestNoHotPathAllocs runs with metrics armed): every per-event
// metric update is a nil-check plus a plain atomic on a cell that was
// allocated when the runtime was built. Durations (checkpoint writes)
// are measured only at watermark boundaries — the same places the
// engine already pays for snapshot encoding, which the alloc guard's
// measured windows deliberately avoid. Everything derivable from
// existing structures (engine Stats, reorder depth, topology) is not
// mirrored into cells at all: a render-time collector samples it under
// rt.mu, so the hot path pays nothing for it.
package core

import (
	"fmt"
	"time"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/obs"
)

// rtMetrics are the runtime's hot-path cells. All counters count
// offered events (before engine-level drop accounting), so they are
// meaningful during RunParallel too, when per-engine stats are owned
// by worker goroutines.
type rtMetrics struct {
	events    *obs.Counter // events offered through any ingest path
	drops     *obs.Counter // out-of-order drops (watermark or reorder horizon)
	batches   *obs.Counter // ProcessBatch calls
	batchRows *obs.Counter // rows offered through ProcessBatch

	// watermark and maxSeen are unregistered cells, written only where
	// rt.mu cannot cover the frontier: the RunParallel feed loop (which
	// owns the stream with the lock free) and the reorder offer path
	// (where offered time runs ahead of the released frontier). The
	// sequential direct path pays nothing for them — rt.watermark under
	// rt.mu is the truth there, and the snapshot/collector derive the
	// greta_watermark / greta_event_time_max series from whichever
	// source is current.
	watermark *obs.Gauge // parallel-feed accepted frontier (-1 before the first)
	maxSeen   *obs.Gauge // max offered time ahead of rt.watermark (-1 when unused)

	ckWrites       *obs.Counter   // successful checkpoint writes
	ckFails        *obs.Counter   // failed checkpoint writes
	ckBytes        *obs.Counter   // total snapshot bytes written
	ckLastBytes    *obs.Gauge     // size of the last successful snapshot
	ckLastBoundary *obs.Gauge     // boundary/replay bound of the last successful snapshot
	ckLastUnix     *obs.Gauge     // wall clock (ns) of the last successful snapshot
	ckDur          *obs.Histogram // checkpoint write latency
}

// newRTMetrics registers the runtime's static cells.
func newRTMetrics(reg *obs.Registry) *rtMetrics {
	m := &rtMetrics{
		events:         reg.Counter("greta_events_total", "events offered to the runtime through any ingest path", ""),
		drops:          reg.Counter("greta_events_dropped_total", "events dropped out of order (behind the watermark or reorder horizon)", ""),
		batches:        reg.Counter("greta_batches_total", "columnar batches offered via ProcessBatch", ""),
		batchRows:      reg.Counter("greta_batch_rows_total", "rows offered via ProcessBatch", ""),
		watermark:      &obs.Gauge{},
		maxSeen:        &obs.Gauge{},
		ckWrites:       reg.Counter("greta_checkpoint_writes_total", "successful checkpoint snapshots", ""),
		ckFails:        reg.Counter("greta_checkpoint_failures_total", "failed checkpoint snapshots", ""),
		ckBytes:        reg.Counter("greta_checkpoint_bytes_total", "total checkpoint snapshot bytes written", ""),
		ckLastBytes:    reg.Gauge("greta_checkpoint_last_bytes", "size of the most recent checkpoint snapshot", ""),
		ckLastBoundary: reg.Gauge("greta_checkpoint_last_boundary", "event-time boundary of the most recent checkpoint", ""),
		ckLastUnix:     reg.Gauge("greta_checkpoint_last_unix_nanos", "wall-clock time of the most recent checkpoint (unix ns)", ""),
		ckDur:          reg.Histogram("greta_checkpoint_write_seconds", "checkpoint write latency", ""),
	}
	m.watermark.Set(-1)
	m.maxSeen.Set(-1)
	m.ckLastBoundary.Set(-1)
	return m
}

// MetricsRegistry returns the runtime's obs registry (static cells
// plus the sampled collector) for mounting on an HTTP listener.
// Rendering takes rt.mu — never call it while holding the lock (e.g.
// from a trace hook or checkpoint error callback).
func (rt *Runtime) MetricsRegistry() *obs.Registry { return rt.obsReg }

// DisableMetrics detaches the hot-path cells: subsequent events skip
// every metric update (the benchmark baseline for measuring armed
// overhead). Must be called before the first event; the sampled
// collector keeps working, cell-backed series simply stop moving.
func (rt *Runtime) DisableMetrics() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.met = nil
}

// CheckpointMetrics is the checkpoint section of a metrics snapshot.
type CheckpointMetrics struct {
	Armed        bool
	Every        event.Time // boundary interval (0 when unarmed)
	NextBoundary event.Time // first event time that triggers the next snapshot
	Writes       uint64
	Failures     uint64
	TotalBytes   uint64
	LastBytes    uint64
	LastBoundary event.Time    // replay bound of the last successful snapshot (-1 if none)
	LastDuration time.Duration // write latency of the last successful snapshot
	Age          time.Duration // wall-clock age of the last successful snapshot (0 if none)
}

// StatementMetrics is one live statement's identity and counters.
type StatementMetrics struct {
	ID     string
	Shared bool // served by a shared graph
	Stats  Stats
}

// MetricsSnapshot is a consistent point-in-time view of the runtime's
// observability counters, taken under the runtime lock. Per-statement
// engine stats are omitted while RunParallel owns the stream (worker
// goroutines own the engines then) and after Close (the statement set
// is torn down); every cell-backed counter remains live in both cases.
type MetricsSnapshot struct {
	Events    uint64 // events offered through any ingest path
	Dropped   uint64 // out-of-order drops
	Batches   uint64 // ProcessBatch calls
	BatchRows uint64 // rows offered via ProcessBatch

	Watermark    event.Time // largest accepted event time (-1 before the first)
	MaxEventTime event.Time // largest offered event time (-1 before the first)
	WatermarkLag event.Time // MaxEventTime - Watermark (the disorder window in flight)

	ReorderSlack   event.Time // armed slack (0 when off)
	ReorderPending int        // events held in the reorder buffer
	ReorderDropped uint64     // beyond-slack drops counted by the buffer

	Runtime    RuntimeStats
	Statements []StatementMetrics
	Checkpoint CheckpointMetrics
}

// Metrics returns a consistent snapshot of the runtime's counters.
// Safe to call concurrently with ingestion (including RunParallel and
// after Close); see MetricsSnapshot for what each mode omits.
func (rt *Runtime) Metrics() MetricsSnapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.metricsLocked()
}

func (rt *Runtime) metricsLocked() MetricsSnapshot {
	snap := MetricsSnapshot{Watermark: rt.watermark, MaxEventTime: rt.watermark}
	if m := rt.met; m != nil {
		snap.Events = m.events.Load()
		snap.Dropped = m.drops.Load()
		snap.Batches = m.batches.Load()
		snap.BatchRows = m.batchRows.Load()
		// During RunParallel the feed goroutine owns the stream and syncs
		// rt.watermark only at the end, so its cell is what a concurrent
		// scrape observes; everywhere else rt.watermark (read under
		// rt.mu) is the truth. maxSeen only ever runs ahead of the
		// released frontier (reorder offers, parallel feed), so the
		// larger of the two sources is the offered maximum.
		if rt.running {
			snap.Watermark = m.watermark.Load()
		}
		if t := m.maxSeen.Load(); t > snap.MaxEventTime {
			snap.MaxEventTime = t
		}
		if snap.Watermark > snap.MaxEventTime {
			snap.MaxEventTime = snap.Watermark
		}
		snap.Checkpoint.Writes = m.ckWrites.Load()
		snap.Checkpoint.Failures = m.ckFails.Load()
		snap.Checkpoint.TotalBytes = m.ckBytes.Load()
		snap.Checkpoint.LastBytes = uint64(m.ckLastBytes.Load())
		snap.Checkpoint.LastBoundary = m.ckLastBoundary.Load()
	}
	if snap.MaxEventTime > snap.Watermark {
		snap.WatermarkLag = snap.MaxEventTime - snap.Watermark
	}
	if b := rt.reorder; b != nil {
		snap.ReorderSlack = b.Slack()
		snap.ReorderPending = b.Pending()
		snap.ReorderDropped = b.Dropped()
	}
	if ck := rt.ck; ck != nil {
		snap.Checkpoint.Armed = true
		snap.Checkpoint.Every = ck.every
		snap.Checkpoint.NextBoundary = ck.next
		snap.Checkpoint.LastDuration = ck.lastDur
		if ck.lastUnix > 0 {
			snap.Checkpoint.Age = time.Duration(nowNanos() - ck.lastUnix)
		}
	} else if m := rt.met; m != nil && m.ckLastUnix.Load() > 0 {
		snap.Checkpoint.Age = time.Duration(nowNanos() - m.ckLastUnix.Load())
	}
	snap.Runtime = rt.statsLocked()
	if !rt.running && !rt.closed {
		snap.Statements = make([]StatementMetrics, 0, len(rt.stmts))
		for _, st := range rt.stmts {
			snap.Statements = append(snap.Statements,
				StatementMetrics{ID: st.id, Shared: st.entry != nil, Stats: st.Stats()})
		}
	}
	return snap
}

// nowNanos is a test seam for wall-clock reads on the sampling path.
var nowNanos = func() int64 { return time.Now().UnixNano() }

// registerCollector wires the render-time sampler: everything the
// snapshot derives from live structures (lag, reorder depth, topology,
// per-statement engine stats, checkpoint age) is published as series
// without any hot-path mirroring. Runs under rt.mu at scrape time.
func (rt *Runtime) registerCollector() {
	rt.obsReg.Collect(func(e obs.Emitter) {
		snap := rt.Metrics()
		e.Emit("greta_watermark", "largest accepted event time (-1 before the first event)", obs.KindGauge, "", float64(snap.Watermark))
		e.Emit("greta_event_time_max", "largest event time offered (-1 before the first event)", obs.KindGauge, "", float64(snap.MaxEventTime))
		e.Emit("greta_watermark_lag", "event-time distance between the maximum offered and accepted timestamps", obs.KindGauge, "", float64(snap.WatermarkLag))
		e.Emit("greta_reorder_slack", "armed reorder slack (0 when off)", obs.KindGauge, "", float64(snap.ReorderSlack))
		e.Emit("greta_reorder_pending", "events held in the reorder buffer", obs.KindGauge, "", float64(snap.ReorderPending))
		e.Emit("greta_reorder_dropped_total", "beyond-slack drops counted by the reorder buffer", obs.KindCounter, "", float64(snap.ReorderDropped))
		e.Emit("greta_checkpoint_age_seconds", "wall-clock age of the most recent successful checkpoint", obs.KindGauge, "", snap.Checkpoint.Age.Seconds())
		e.Emit("greta_statements", "live registered statements", obs.KindGauge, "", float64(snap.Runtime.Statements))
		e.Emit("greta_route_groups", "distinct partition-attribute routing signatures", obs.KindGauge, "", float64(snap.Runtime.RouteGroups))
		e.Emit("greta_shared_statements", "statements served by shared graphs", obs.KindGauge, "", float64(snap.Runtime.SharedStatements))
		e.Emit("greta_shared_graphs", "distinct shared graphs", obs.KindGauge, "", float64(snap.Runtime.SharedGraphs))
		for i := range snap.Statements {
			sm := &snap.Statements[i]
			l := fmt.Sprintf("stmt=%q", sm.ID)
			st := &sm.Stats
			e.Emit("greta_stmt_events_total", "events seen by the statement's engine", obs.KindCounter, l, float64(st.Events))
			e.Emit("greta_stmt_out_of_order_total", "events the statement's engine dropped as late", obs.KindCounter, l, float64(st.OutOfOrder))
			e.Emit("greta_stmt_inserted_total", "vertices inserted into the statement's graphs", obs.KindCounter, l, float64(st.Inserted))
			e.Emit("greta_stmt_edges_total", "edges traversed by the statement's graphs", obs.KindCounter, l, float64(st.Edges))
			e.Emit("greta_stmt_scan_visits_total", "per-vertex candidate visits (scan path)", obs.KindCounter, l, float64(st.ScanVisits))
			e.Emit("greta_stmt_summary_folds_total", "O(1) summary folds (fast path)", obs.KindCounter, l, float64(st.SummaryFolds))
			e.Emit("greta_stmt_summary_rebuilds_total", "lazy watermark-driven summary rebuilds", obs.KindCounter, l, float64(st.SummaryRebuilds))
			e.Emit("greta_stmt_prefilter_skips_total", "rows skipped by the vectorized batch pre-filter", obs.KindCounter, l, float64(st.PrefilterSkips))
			e.Emit("greta_stmt_peak_vertices", "peak live vertices across the statement's graphs", obs.KindGauge, l, float64(st.PeakVertices))
			e.Emit("greta_stmt_peak_payloads", "peak pooled payloads across the statement's graphs", obs.KindGauge, l, float64(st.PeakPayloads))
			e.Emit("greta_stmt_partitions", "partitions materialized by the statement", obs.KindGauge, l, float64(st.Partitions))
			e.Emit("greta_stmt_results_total", "results emitted to the statement", obs.KindCounter, l, float64(st.Results))
		}
	})
}

// TraceKind labels a lifecycle trace event.
type TraceKind uint8

const (
	// TraceStatementRegister fires after a statement registers.
	TraceStatementRegister TraceKind = iota + 1
	// TraceStatementClose fires after a statement's final flush.
	TraceStatementClose
	// TraceCheckpointBegin fires when a snapshot starts (boundary
	// crossed or CheckpointNow).
	TraceCheckpointBegin
	// TraceCheckpointCommit fires after a successful snapshot write.
	TraceCheckpointCommit
	// TraceCheckpointFail fires after a failed snapshot write.
	TraceCheckpointFail
	// TraceSessionResume fires when a netstream session re-attaches
	// after a connection loss (serving layers).
	TraceSessionResume
	// TraceBarrierEmit fires when a cluster coordinator fans out a
	// window-close barrier (serving layers).
	TraceBarrierEmit
	// TraceShardAdd fires when a cluster shard joins (serving layers).
	TraceShardAdd
	// TraceShardDrain fires when a cluster shard drains its slots away
	// (serving layers).
	TraceShardDrain
)

// String names the kind for log lines.
func (k TraceKind) String() string {
	switch k {
	case TraceStatementRegister:
		return "statement-register"
	case TraceStatementClose:
		return "statement-close"
	case TraceCheckpointBegin:
		return "checkpoint-begin"
	case TraceCheckpointCommit:
		return "checkpoint-commit"
	case TraceCheckpointFail:
		return "checkpoint-fail"
	case TraceSessionResume:
		return "session-resume"
	case TraceBarrierEmit:
		return "barrier-emit"
	case TraceShardAdd:
		return "shard-add"
	case TraceShardDrain:
		return "shard-drain"
	default:
		return fmt.Sprintf("trace-kind-%d", uint8(k))
	}
}

// TraceEvent is one structured lifecycle event. Fields beyond Kind are
// populated where they make sense: Stmt for statement events, Boundary
// Bytes/Dur for checkpoints, Session for serving-layer session events,
// Shard for cluster membership events.
type TraceEvent struct {
	Kind      TraceKind
	Stmt      string
	Session   string
	Shard     int
	Boundary  event.Time
	Watermark event.Time
	Bytes     int64
	Dur       time.Duration
	Err       error
}

// SetTraceHook installs the lifecycle trace hook (nil clears it). The
// hook fires on the path that caused the event with the runtime lock
// held — it must return quickly and must not call back into the
// Runtime or its statements. Statement registration/close and
// checkpoint begin/commit/fail fire here; serving layers add their own
// kinds through their own hook options.
func (rt *Runtime) SetTraceHook(fn func(TraceEvent)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.trace = fn
}

// fireTrace invokes the hook if set; rt.mu held.
func (rt *Runtime) fireTrace(te TraceEvent) {
	if rt.trace != nil {
		rt.trace(te)
	}
}
