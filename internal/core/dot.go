package core

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/btree"
)

// DOT renders the current GRETA graph(s) of an engine in Graphviz DOT
// format, reproducing the paper's figure style: one box per vertex
// labeled "type+time : count" (Fig. 6), grouped per state, with edges
// between adjacent trend events. Intended for debugging and teaching on
// small streams — edges are recomputed by predecessor queries, which is
// quadratic.
//
// Only simple (non-composite) plans render; composite plans return a
// comment noting the branch count.
func (e *Engine) DOT() string {
	var b strings.Builder
	b.WriteString("digraph greta {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	if !e.plan.Simple() {
		fmt.Fprintf(&b, "  // composite plan: %d branches, %d products — render branches individually\n",
			len(e.branchEngines), len(e.productEngines))
		b.WriteString("}\n")
		return b.String()
	}
	parts := append([]*partition{}, e.partList...)
	slices.SortFunc(parts, func(a, b *partition) int { return cmp.Compare(a.key, b.key) })
	for pi, part := range parts {
		for gi, g := range part.graphs {
			name := "positive"
			if g.spec.Negative {
				name = fmt.Sprintf("negative %d", gi)
			}
			label := name
			if part.key != "" {
				label = fmt.Sprintf("%s [%s]", name, strings.ReplaceAll(part.key, "\x1f", ","))
			}
			fmt.Fprintf(&b, "  subgraph cluster_%d_%d {\n    label=%q;\n", pi, gi, label)
			g.dotVertices(&b, fmt.Sprintf("p%dg%d", pi, gi))
			b.WriteString("  }\n")
			g.dotEdges(&b, fmt.Sprintf("p%dg%d", pi, gi))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID returns a stable node identifier.
func dotID(prefix string, v *Vertex) string {
	return fmt.Sprintf("%s_s%d_e%d", prefix, v.State, v.Ev.ID)
}

// dotVertices emits one node per stored vertex, labeled like the
// paper's figures; END-state vertices get a double border (peripheries).
func (g *Graph) dotVertices(b *strings.Builder, prefix string) {
	g.forEachVertex(func(v *Vertex) {
		st := g.spec.Tmpl.States[v.State]
		count := "-"
		if len(v.Aggs) > 0 && v.Aggs[0] != nil {
			p := v.Aggs[0]
			if g.def.Mode == aggregate.ModeExact {
				count = g.def.ExactCount(p).String()
			} else {
				count = fmt.Sprintf("%d", p.Count)
			}
		}
		peri := 1
		if st.End {
			peri = 2
		}
		fmt.Fprintf(b, "    %s [label=\"%s%d : %s\", peripheries=%d];\n",
			dotID(prefix, v), strings.ToLower(string(st.Type)), v.Ev.Time, count, peri)
	})
}

// dotEdges re-runs the predecessor query per stored vertex and emits
// the adjacency edges.
func (g *Graph) dotEdges(b *strings.Builder, prefix string) {
	g.forEachVertex(func(v *Vertex) {
		st := g.spec.Tmpl.States[v.State]
		lo, _ := g.win.Wids(v.Ev.Time)
		for _, psIdx := range st.Preds {
			g.forEachCandidate(v.Ev, psIdx, v.State, lo, func(p *Vertex) {
				fmt.Fprintf(b, "  %s -> %s;\n", dotID(prefix, p), dotID(prefix, v))
			})
		}
	})
}

// forEachVertex visits all stored vertices in (pane, state, key) order.
func (g *Graph) forEachVertex(visit func(*Vertex)) {
	for _, pn := range g.panes {
		states := make([]int, 0, len(pn.trees))
		for s := range pn.trees {
			states = append(states, s)
		}
		slices.Sort(states)
		for _, s := range states {
			pn.trees[s].Ascend(func(it btree.Item[*Vertex]) bool {
				visit(it.Val)
				return true
			})
		}
	}
}

// GraphSnapshot summarizes the live graph state for inspection.
type GraphSnapshot struct {
	Partition string
	Negative  bool
	Vertices  int
	Panes     int
}

// Snapshot lists the live graphs of the engine.
func (e *Engine) Snapshot() []GraphSnapshot {
	var out []GraphSnapshot
	parts := append([]*partition{}, e.partList...)
	slices.SortFunc(parts, func(a, b *partition) int { return cmp.Compare(a.key, b.key) })
	for _, part := range parts {
		for _, g := range part.graphs {
			n := 0
			g.forEachVertex(func(*Vertex) { n++ })
			out = append(out, GraphSnapshot{
				Partition: part.key,
				Negative:  g.spec.Negative,
				Vertices:  n,
				Panes:     len(g.panes),
			})
		}
	}
	return out
}
