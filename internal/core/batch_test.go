package core_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// Batch differential fixtures: every event is schema-bound and every
// attribute value is batch-representable (no NaN, no empty string), so
// AppendEvent never rejects a row and the checkpoint encoder takes the
// same dense form on both sides of the differential.
var (
	batchStockSchema = &event.Schema{Type: "Stock", Numeric: []string{"price", "vol"}, Strings: []string{"company"}}
	batchHaltSchema  = &event.Schema{Type: "Halt", Strings: []string{"company"}}
	batchNewsSchema  = &event.Schema{Type: "News", Strings: []string{"company"}}
	batchSchemas     = map[event.Type]*event.Schema{
		"Stock": batchStockSchema,
		"Halt":  batchHaltSchema,
		"News":  batchNewsSchema,
	}
)

// batchDiffStream mirrors diffStreamHalts' shape (Stock runs broken by
// occasional Halt/News, heavy timestamp collisions, occasional missing
// price) but binds every event and keeps values batch-representable.
func batchDiffStream(rng *rand.Rand, n, haltDiv, newsDiv int) []*event.Event {
	evs := make([]*event.Event, 0, n)
	t := event.Time(1)
	for i := 0; i < n; i++ {
		if rng.Intn(5) >= 2 {
			t += event.Time(1 + rng.Intn(2))
		}
		typ := event.Type("Stock")
		if rng.Intn(haltDiv) == 0 {
			typ = "Halt"
		} else if newsDiv > 0 && rng.Intn(newsDiv) == 0 {
			typ = "News"
		}
		ev := &event.Event{
			ID:    uint64(i + 1),
			Type:  typ,
			Time:  t,
			Attrs: map[string]float64{},
			Str:   map[string]string{"company": fmt.Sprintf("c%d", rng.Intn(3))},
		}
		if typ == "Stock" {
			if rng.Intn(20) != 0 {
				ev.Attrs["price"] = float64(1 + rng.Intn(8))
			}
			ev.Attrs["vol"] = float64(1 + rng.Intn(6))
		}
		batchSchemas[typ].Bind(ev)
		evs = append(evs, ev)
	}
	return evs
}

// batchDiffQueries are the differential shapes: the runtime fastpath
// shapes plus vertex-predicate-only shapes that exercise the column
// pre-filter (const and attr right-hand sides).
var batchDiffQueries = append(append([]string{}, runtimeDiffQueries...),
	"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price <= S.vol GROUP-BY company WITHIN 20 SLIDE 5",
	"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price < 5 WITHIN 16 SLIDE 4",
)

// feedEach offers events one at a time, counting accepted events and
// swallowing out-of-order drops (the batch path accounts them the same
// way).
func feedEach(t *testing.T, rt *core.Runtime, evs []*event.Event) int {
	t.Helper()
	accepted := 0
	for _, ev := range evs {
		switch err := rt.Process(ev); {
		case err == nil:
			accepted++
		case errors.Is(err, core.ErrOutOfOrder):
		default:
			t.Fatal(err)
		}
	}
	return accepted
}

// feedBatches replays evs through ProcessBatch in columnar blocks of up
// to size consecutive same-type rows, splitting blocks at type changes,
// internal time inversions (so each batch is sorted), and hook points.
// A hook at index i runs after all rows < i are flushed and before row
// i is buffered — the stream position a per-event caller would see.
// Rows AppendEvent rejects fall back to Process, as ingest layers do.
func feedBatches(t *testing.T, rt *core.Runtime, evs []*event.Event, size int, hooks map[int]func()) int {
	t.Helper()
	accepted := 0
	var cur *event.Batch
	var last event.Time
	flush := func() {
		if cur == nil {
			return
		}
		acc, err := rt.ProcessBatch(cur)
		if err != nil {
			t.Fatal(err)
		}
		accepted += acc
		cur = nil
	}
	for i, ev := range evs {
		if h, ok := hooks[i]; ok {
			flush()
			h()
		}
		if cur != nil && (cur.Type() != ev.Type || cur.Len() >= size || ev.Time < last) {
			flush()
		}
		if cur == nil {
			n := size
			if rest := len(evs) - i; n > rest {
				n = rest
			}
			cur = event.NewBatch(batchSchemas[ev.Type], n)
		}
		if err := cur.AppendEvent(ev); err != nil {
			flush()
			switch perr := rt.Process(ev); {
			case perr == nil:
				accepted++
			case errors.Is(perr, core.ErrOutOfOrder):
			default:
				t.Fatal(perr)
			}
			continue
		}
		last = ev.Time
	}
	flush()
	return accepted
}

// registerCollect registers queries in drop-on-delivery mode
// (NoRetain), collecting emissions through OnResult. Snapshot-comparing
// runs use it: retained results carry a wall-clock Emitted stamp, the
// one snapshot field that legitimately differs between two otherwise
// identical runs.
func registerCollect(t *testing.T, rt *core.Runtime, queries []string) ([]*core.Stmt, []*[]core.Result) {
	t.Helper()
	stmts := make([]*core.Stmt, len(queries))
	got := make([]*[]core.Result, len(queries))
	for i, src := range queries {
		plan, err := core.NewPlan(query.MustParse(src), aggregate.ModeNative)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{NoRetain: true})
		if err != nil {
			t.Fatal(err)
		}
		rs := &[]core.Result{}
		st.OnResult(func(r core.Result) { *rs = append(*rs, r) })
		stmts[i] = st
		got[i] = rs
	}
	return stmts, got
}

// armSnapshots schedules checkpoints every 25 ticks, capturing each
// snapshot's bytes.
func armSnapshots(t *testing.T, rt *core.Runtime, snaps *[][]byte) {
	t.Helper()
	err := rt.SetCheckpoint(25, -1, func(_ event.Time, snapshot func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := snapshot(&buf); err != nil {
			return err
		}
		*snaps = append(*snaps, buf.Bytes())
		return nil
	}, func(err error) { t.Errorf("checkpoint: %v", err) })
	if err != nil {
		t.Fatal(err)
	}
}

func compareSnaps(t *testing.T, label string, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d snapshots vs %d per-event", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: snapshot %d differs from the per-event run (%d vs %d bytes)",
				label, i, len(got[i]), len(want[i]))
		}
	}
}

// compareStmtStats asserts per-statement stats are identical modulo
// PrefilterSkips, the only counter the batch path is allowed to move.
func compareStmtStats(t *testing.T, label string, i int, got, want core.Stats) {
	t.Helper()
	got.PrefilterSkips = 0
	want.PrefilterSkips = 0
	if got != want {
		t.Fatalf("%s: statement %d stats diverge:\nbatch:     %+v\nper-event: %+v", label, i, got, want)
	}
}

// TestBatchIngestDifferential locks in the tentpole invariant: a
// Runtime fed through ProcessBatch — any batch size, mixed with
// per-event fallback rows — produces bit-identical results, statement
// stats, and checkpoint bytes at every boundary to the same statements
// fed one event at a time. The vertex-predicate shapes must also
// actually engage the column pre-filter.
func TestBatchIngestDifferential(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		evs := batchDiffStream(rand.New(rand.NewSource(seed)), 400, 12, 20)

		refRt := core.NewRuntime()
		var refSnaps [][]byte
		armSnapshots(t, refRt, &refSnaps)
		refStmts, refResults := registerCollect(t, refRt, batchDiffQueries)
		refAccepted := feedEach(t, refRt, evs)
		if err := refRt.Close(); err != nil {
			t.Fatal(err)
		}
		if len(refSnaps) == 0 {
			t.Fatal("reference run produced no snapshots; checkpoint comparison is vacuous")
		}

		for _, size := range []int{1, 7, 64, len(evs)} {
			label := fmt.Sprintf("seed %d size %d", seed, size)
			rt := core.NewRuntime()
			var snaps [][]byte
			armSnapshots(t, rt, &snaps)
			stmts, results := registerCollect(t, rt, batchDiffQueries)
			accepted := feedBatches(t, rt, evs, size, nil)
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			if accepted != refAccepted {
				t.Fatalf("%s: accepted %d events vs %d per-event", label, accepted, refAccepted)
			}
			for i := range stmts {
				compareResults(t, seed, *results[i], *refResults[i])
				compareStmtStats(t, label, i, stmts[i].Stats(), refStmts[i].Stats())
			}
			compareSnaps(t, label, snaps, refSnaps)
			// Guard the guard: the vertex-predicate shapes (the last two)
			// must skip rows through the pre-filter, and the reference run
			// must not know the counter exists.
			for _, i := range []int{len(stmts) - 2, len(stmts) - 1} {
				if n := stmts[i].Stats().PrefilterSkips; n == 0 {
					t.Errorf("%s: statement %d: pre-filter never engaged", label, i)
				}
				if n := refStmts[i].Stats().PrefilterSkips; n != 0 {
					t.Errorf("seed %d: per-event statement %d counted %d PrefilterSkips", seed, i, n)
				}
			}
		}
	}
}

// TestBatchIngestTransactionalDifferential covers the §7 transactional
// scheduler: batches degrade to the per-row transactional discipline
// and must stay bit-identical.
func TestBatchIngestTransactionalDifferential(t *testing.T) {
	queries := []string{
		batchDiffQueries[0],
		"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price <= S.vol GROUP-BY company WITHIN 20 SLIDE 5",
	}
	evs := batchDiffStream(rand.New(rand.NewSource(4)), 300, 15, 0)

	refRt := core.NewRuntime()
	refStmts := registerAll(t, refRt, queries, aggregate.ModeNative)
	for _, st := range refStmts {
		st.Engine().SetTransactional(true)
	}
	feedEach(t, refRt, evs)
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}

	rt := core.NewRuntime()
	stmts := registerAll(t, rt, queries, aggregate.ModeNative)
	for _, st := range stmts {
		st.Engine().SetTransactional(true)
	}
	feedBatches(t, rt, evs, 64, nil)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		compareResults(t, 4, stmts[i].Results(), refStmts[i].Results())
		compareStmtStats(t, "transactional", i, stmts[i].Stats(), refStmts[i].Stats())
		if n := stmts[i].Stats().PrefilterSkips; n != 0 {
			t.Errorf("transactional statement %d took the pre-filter skip path (%d rows)", i, n)
		}
	}
}

// TestBatchIngestMidBatchClose closes a statement at a stream position
// that lands inside a would-be batch: the feeder must flush, close,
// and continue, reproducing the per-event run for both the closed and
// the surviving statements.
func TestBatchIngestMidBatchClose(t *testing.T) {
	queries := []string{
		batchDiffQueries[0],
		batchDiffQueries[2],
		"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price < 5 WITHIN 16 SLIDE 4",
	}
	evs := batchDiffStream(rand.New(rand.NewSource(3)), 300, 12, 20)
	const cut = 137

	refRt := core.NewRuntime()
	refStmts := registerAll(t, refRt, queries, aggregate.ModeNative)
	feedEach(t, refRt, evs[:cut])
	if err := refStmts[1].Close(); err != nil {
		t.Fatal(err)
	}
	feedEach(t, refRt, evs[cut:])
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}

	rt := core.NewRuntime()
	stmts := registerAll(t, rt, queries, aggregate.ModeNative)
	feedBatches(t, rt, evs, 64, map[int]func(){cut: func() {
		if err := stmts[1].Close(); err != nil {
			t.Fatal(err)
		}
	}})
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range stmts {
		compareResults(t, 3, stmts[i].Results(), refStmts[i].Results())
		compareStmtStats(t, "mid-batch close", i, stmts[i].Stats(), refStmts[i].Stats())
	}
}

// TestBatchReorderDifferential drives a slack-armed runtime with a
// disordered arrival sequence through both ingest paths. Without a
// checkpoint schedule the batch path takes the columnar merge (sorted
// prefix applied in bulk, stragglers through the buffer); with one it
// degrades to per-row. Both must reproduce the per-event run exactly —
// results, stats, drop counts, and snapshot bytes.
func TestBatchReorderDifferential(t *testing.T) {
	const slack = 6
	base := batchDiffStream(rand.New(rand.NewSource(5)), 500, 15, 0)
	// Jittered arrival: mostly sorted, disorder bounded by the jitter
	// span so only a few arrivals exceed the slack and drop.
	rng := rand.New(rand.NewSource(99))
	keys := make([]float64, len(base))
	for i, ev := range base {
		keys[i] = float64(ev.Time) + rng.Float64()*8
	}
	idx := make([]int, len(base))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	arr := make([]*event.Event, len(base))
	for i, j := range idx {
		arr[i] = base[j]
	}

	queries := []string{
		batchDiffQueries[0],
		batchDiffQueries[2],
		"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price < 5 WITHIN 16 SLIDE 4",
	}
	for _, withCk := range []bool{false, true} {
		name := "columnar-merge"
		if withCk {
			name = "checkpoint-fallback"
		}
		t.Run(name, func(t *testing.T) {
			refRt := core.NewRuntime()
			var refSnaps [][]byte
			if withCk {
				armSnapshots(t, refRt, &refSnaps)
			}
			if err := refRt.SetReorderSlack(slack); err != nil {
				t.Fatal(err)
			}
			refStmts, refResults := registerCollect(t, refRt, queries)
			refAccepted := feedEach(t, refRt, arr)
			if err := refRt.Close(); err != nil {
				t.Fatal(err)
			}
			if refAccepted == len(arr) {
				t.Fatal("no arrival exceeded the slack; drop accounting is untested")
			}

			rt := core.NewRuntime()
			var snaps [][]byte
			if withCk {
				armSnapshots(t, rt, &snaps)
			}
			if err := rt.SetReorderSlack(slack); err != nil {
				t.Fatal(err)
			}
			stmts, results := registerCollect(t, rt, queries)
			accepted := feedBatches(t, rt, arr, 16, nil)
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			if accepted != refAccepted {
				t.Fatalf("accepted %d events vs %d per-event", accepted, refAccepted)
			}
			for i := range stmts {
				compareResults(t, 5, *results[i], *refResults[i])
				compareStmtStats(t, name, i, stmts[i].Stats(), refStmts[i].Stats())
			}
			if withCk {
				compareSnaps(t, name, snaps, refSnaps)
			}
		})
	}
}

// TestBatchUnsortedFallback feeds a batch whose rows are internally
// out of order: ProcessBatch must degrade to per-row semantics (late
// rows dropped against the watermark), not reject or reorder.
func TestBatchUnsortedFallback(t *testing.T) {
	queries := []string{batchDiffQueries[0]}

	mk := func() (*core.Runtime, []*core.Stmt) {
		rt := core.NewRuntime()
		return rt, registerAll(t, rt, queries, aggregate.ModeNative)
	}
	times := []event.Time{5, 7, 6, 9, 8, 8, 12}
	evs := make([]*event.Event, len(times))
	for i, tm := range times {
		evs[i] = &event.Event{
			ID: uint64(i + 1), Type: "Stock", Time: tm,
			Attrs: map[string]float64{"price": float64(9 - i), "vol": 1},
			Str:   map[string]string{"company": "c0"},
		}
		batchStockSchema.Bind(evs[i])
	}

	refRt, refStmts := mk()
	refAccepted := feedEach(t, refRt, evs)
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}
	if refAccepted == len(evs) {
		t.Fatal("fixture has no late rows")
	}

	rt, stmts := mk()
	b := event.NewBatch(batchStockSchema, len(evs))
	for _, ev := range evs {
		if err := b.AppendEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	accepted, err := rt.ProcessBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if accepted != refAccepted {
		t.Fatalf("unsorted batch accepted %d rows, per-event accepted %d", accepted, refAccepted)
	}
	compareResults(t, 0, stmts[0].Results(), refStmts[0].Results())
	compareStmtStats(t, "unsorted", 0, stmts[0].Stats(), refStmts[0].Stats())
}

// TestRuntimeParallelWideRouteGroups registers more partition-attribute
// signatures than a 64-bit mask holds, forcing RunParallel's per-event
// fan-out through the spilled bitset path. Results must match the
// sequential runtime bit-for-bit.
func TestRuntimeParallelWideRouteGroups(t *testing.T) {
	const nSig = 68
	queries := make([]string, nSig)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"RETURN COUNT(*), SUM(S.price) PATTERN Stock S+ WHERE [a%d] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5", i)
	}
	rng := rand.New(rand.NewSource(8))
	evs := make([]*event.Event, 2000)
	tm := event.Time(1)
	for i := range evs {
		if rng.Intn(3) > 0 {
			tm++
		}
		attrs := map[string]float64{"price": float64(1 + rng.Intn(8))}
		for j := 0; j < nSig; j++ {
			attrs[fmt.Sprintf("a%d", j)] = float64(rng.Intn(3))
		}
		evs[i] = &event.Event{ID: uint64(i + 1), Type: "Stock", Time: tm, Attrs: attrs}
	}

	seqRt := core.NewRuntime()
	seqStmts := registerAll(t, seqRt, queries, aggregate.ModeNative)
	for _, ev := range evs {
		if err := seqRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := seqRt.Close(); err != nil {
		t.Fatal(err)
	}

	parRt := core.NewRuntime()
	parStmts := registerAll(t, parRt, queries, aggregate.ModeNative)
	if got := parRt.RouteGroups(); got != nSig {
		t.Fatalf("route groups = %d, want %d (> 64 to exercise the wide bitset)", got, nSig)
	}
	if err := parRt.RunParallel(context.Background(), event.NewSliceStream(evs), 4); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		compareResults(t, 8, parStmts[i].Results(), seqStmts[i].Results())
	}
}
