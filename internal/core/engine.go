package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
)

// Result is one final aggregate: per group, per window (paper
// Definition 2: "These trends are grouped by the values of G. An
// aggregate is computed per group"; §6: "Final aggregate is computed
// per window").
//
// Group carries the GROUP-BY attribute values. Equivalence attributes
// ([company, sector]) partition trend formation but do not appear in
// the output grouping unless they are also GROUP-BY attributes: Q1
// forms down-trends per company yet reports one count per sector.
type Result struct {
	Group       string
	Wid         int64
	WindowStart event.Time
	WindowEnd   event.Time
	// Values holds one value per RETURN aggregate, in query order.
	Values []float64
	// Payload is the raw final payload (exact values in ModeExact).
	Payload *aggregate.Payload
	// Emitted is the wall-clock emission instant, used by the harness to
	// measure latency.
	Emitted time.Time
}

// Stats aggregates runtime statistics over all partitions and graphs.
type Stats struct {
	Events       uint64
	OutOfOrder   uint64 // events dropped for violating time order
	Inserted     uint64
	Edges        uint64
	PeakVertices uint64
	PeakPayloads uint64
	Partitions   int
	Results      int
}

// partition holds the dependent GRETA graphs of one stream partition
// (one combination of grouping and equivalence attribute values).
type partition struct {
	graphs []*Graph
	// group is the output grouping key (GROUP-BY attributes only).
	group string
	// sched executes stream transactions concurrently when the engine
	// runs in transactional mode (paper §7); nil otherwise.
	sched *Scheduler
}

// Engine executes a compiled Plan over an in-order event stream
// (the GRETA Runtime, paper Fig. 4).
type Engine struct {
	plan *Plan

	// simple plan state
	parts map[string]*partition
	order []int // graph processing order: negatives before parents

	// composite plan state (disjunction / conjunction, §9)
	branchEngines  []*Engine
	productEngines []*Engine

	partAttrs []string // partition key attributes (group-by + equivalence)

	prevTime event.Time // window-close cursor

	// transactional enables the §7 stream-transaction scheduler: events
	// sharing a timestamp are batched and executed as one transaction
	// per partition, with dependency levels processed concurrently.
	transactional bool
	batch         []*event.Event
	batchTime     event.Time

	onResult func(Result)
	results  []Result

	stats Stats
}

// NewEngine builds an engine for plan.
func NewEngine(plan *Plan) *Engine {
	e := &Engine{plan: plan, parts: map[string]*partition{}, prevTime: -1}
	e.partAttrs = append(append([]string{}, plan.GroupBy...), plan.Query.Equivalence...)
	if !plan.Simple() {
		for _, bp := range plan.Branches {
			e.branchEngines = append(e.branchEngines, NewEngine(bp))
		}
		for _, pp := range plan.Products {
			e.productEngines = append(e.productEngines, NewEngine(pp))
		}
		return e
	}
	// Dependency order: deeper (negative) graphs first. Split appends
	// children after parents, so descending index order processes every
	// negative graph before the graphs that depend on it — the static
	// equivalent of the time-driven scheduler of §7.
	for i := len(plan.Subs) - 1; i >= 0; i-- {
		e.order = append(e.order, i)
	}
	return e
}

// OnResult registers a callback invoked for every emitted result (as
// soon as the window closes). Results are also collected for Results().
func (e *Engine) OnResult(f func(Result)) { e.onResult = f }

// SetTransactional switches the engine to the stream-transaction
// scheduler of paper §7: same-timestamp events execute as one
// transaction per partition with concurrent dependency levels. Call
// before the first Process. Results are identical to the sequential
// mode; only the execution strategy differs.
func (e *Engine) SetTransactional(on bool) {
	e.transactional = on
	for _, be := range e.branchEngines {
		be.SetTransactional(on)
	}
	for _, pe := range e.productEngines {
		pe.SetTransactional(on)
	}
}

// attrKey concatenates the named attribute values of an event.
func attrKey(ev *event.Event, attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if s, ok := ev.Str[a]; ok {
			b.WriteString(s)
		} else if v, ok := ev.Attrs[a]; ok {
			fmt.Fprintf(&b, "%g", v)
		}
	}
	return b.String()
}

// newPartition instantiates the graphs of one partition and wires
// dependencies.
func (e *Engine) newPartition(ev *event.Event) *partition {
	p := &partition{
		graphs: make([]*Graph, len(e.plan.Subs)),
		group:  attrKey(ev, e.plan.GroupBy),
	}
	for i, spec := range e.plan.Subs {
		p.graphs[i] = newGraph(spec, e.plan.Window, e.plan.Sem)
	}
	for i, spec := range e.plan.Subs {
		for _, dep := range spec.Deps {
			p.graphs[i].addDep(p.graphs[dep], e.plan.Subs[dep])
		}
	}
	return p
}

// Process offers one event to the engine. Events must arrive in
// non-decreasing time order (paper §2: out-of-order handling is
// delegated to upstream mechanisms); a late event would corrupt
// already-propagated aggregates, so it is counted and dropped.
func (e *Engine) Process(ev *event.Event) {
	if ev.Time < e.prevTime {
		e.stats.OutOfOrder++
		return
	}
	e.stats.Events++
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			be.Process(ev)
		}
		for _, pe := range e.productEngines {
			pe.Process(ev)
		}
		e.prevTime = ev.Time
		return
	}
	if e.transactional {
		// Seal and execute the previous same-timestamp transaction before
		// the clock advances.
		if len(e.batch) > 0 && ev.Time != e.batchTime {
			e.runBatch()
		}
		e.closeUpTo(ev.Time)
		e.batch = append(e.batch, ev)
		e.batchTime = ev.Time
		return
	}
	e.closeUpTo(ev.Time)

	key := attrKey(ev, e.partAttrs)
	p := e.parts[key]
	if p == nil {
		p = e.newPartition(ev)
		e.parts[key] = p
	}
	// Dependency-ordered processing: all graphs a graph depends on see
	// the event first (stream-transaction ordering, §7).
	for _, idx := range e.order {
		p.graphs[idx].Process(ev)
	}
}

// closeUpTo closes windows that ended before t, across all partitions,
// merging partition payloads per output group.
func (e *Engine) closeUpTo(t event.Time) {
	if lo, hi, ok := e.plan.Window.ClosedBy(e.prevTime, t); ok {
		for wid := lo; wid <= hi; wid++ {
			e.closeWindow(wid)
		}
		// Let idle partitions reclaim expired panes.
		for _, p := range e.parts {
			for _, g := range p.graphs {
				g.Advance(t)
			}
		}
	}
	e.prevTime = t
}

// runBatch executes the pending stream transaction: the batch is split
// per partition (preserving order) and each partition's scheduler runs
// it with concurrent dependency levels.
func (e *Engine) runBatch() {
	byPart := map[*partition][]*event.Event{}
	var order []*partition
	for _, ev := range e.batch {
		key := attrKey(ev, e.partAttrs)
		p := e.parts[key]
		if p == nil {
			p = e.newPartition(ev)
			p.sched = NewScheduler(p.graphs, e.plan.Subs)
			e.parts[key] = p
		}
		if p.sched == nil {
			p.sched = NewScheduler(p.graphs, e.plan.Subs)
		}
		if _, seen := byPart[p]; !seen {
			order = append(order, p)
		}
		byPart[p] = append(byPart[p], ev)
	}
	e.batch = e.batch[:0]
	for _, p := range order {
		p.sched.RunBatch(byPart[p])
	}
}

// closeWindow collects window wid from every partition, merges per
// output group, and emits.
func (e *Engine) closeWindow(wid int64) {
	def := e.plan.Def()
	merged := map[string]*aggregate.Payload{}
	for _, p := range e.parts {
		pl := p.graphs[0].CollectWindow(wid)
		if pl == nil {
			continue
		}
		if cur := merged[p.group]; cur == nil {
			merged[p.group] = def.Clone(pl)
		} else {
			def.Merge(cur, pl)
		}
	}
	groups := make([]string, 0, len(merged))
	for g := range merged {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		e.emit(g, wid, merged[g])
	}
}

// emit materializes a Result from a final payload.
func (e *Engine) emit(group string, wid int64, payload *aggregate.Payload) {
	def := e.plan.Def()
	r := Result{
		Group:       group,
		Wid:         wid,
		WindowStart: e.plan.Window.Start(wid),
		WindowEnd:   e.plan.Window.End(wid),
		Payload:     payload,
		Emitted:     time.Now(),
	}
	for _, ss := range e.plan.Specs {
		r.Values = append(r.Values, def.Value(payload, ss.Spec, ss.Slot, ss.Slot2))
	}
	e.results = append(e.results, r)
	if e.onResult != nil {
		e.onResult(r)
	}
}

// Run consumes an entire stream and flushes.
func (e *Engine) Run(s event.Stream) {
	for ev := s.Next(); ev != nil; ev = s.Next() {
		e.Process(ev)
	}
	e.Flush()
}

// RunParallel consumes the stream with the given number of workers,
// hashing partitions onto workers (paper §7, "Parallel Processing":
// sub-streams are processed in parallel independently from each other).
// Results are merged afterwards. Only valid for grouped queries.
func (e *Engine) RunParallel(s event.Stream, workers int) {
	if workers <= 1 || len(e.partAttrs) == 0 || !e.plan.Simple() {
		e.Run(s)
		return
	}
	subEngines := make([]*Engine, workers)
	chans := make([]chan *event.Event, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		subEngines[w] = NewEngine(e.plan)
		chans[w] = make(chan *event.Event, 1024)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ev := range chans[w] {
				subEngines[w].Process(ev)
			}
			subEngines[w].Flush()
		}(w)
	}
	for ev := s.Next(); ev != nil; ev = s.Next() {
		w := int(hashString(attrKey(ev, e.partAttrs)) % uint64(workers))
		chans[w] <- ev
	}
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	// Merge per (group, wid) across workers: an output group can span
	// workers when the partition key is finer than the group key.
	def := e.plan.Def()
	type gw struct {
		group string
		wid   int64
	}
	merged := map[gw]*aggregate.Payload{}
	for _, se := range subEngines {
		for _, r := range se.results {
			k := gw{r.Group, r.Wid}
			if cur := merged[k]; cur == nil {
				merged[k] = def.Clone(r.Payload)
			} else {
				def.Merge(cur, r.Payload)
			}
		}
		e.stats.Events += se.stats.Events
		e.mergeStats(se)
	}
	for k, pl := range merged {
		e.emit(k.group, k.wid, pl)
	}
	sortResults(e.results)
}

func hashString(s string) uint64 {
	// FNV-1a
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Flush closes all open windows in all partitions.
func (e *Engine) Flush() {
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			be.Flush()
		}
		for _, pe := range e.productEngines {
			pe.Flush()
		}
		e.composeResults()
		return
	}
	if e.transactional && len(e.batch) > 0 {
		e.runBatch()
	}
	widSet := map[int64]bool{}
	for _, p := range e.parts {
		for _, g := range p.graphs {
			g.FoldAll()
		}
		for _, wid := range p.graphs[0].OpenWids() {
			widSet[wid] = true
		}
	}
	wids := make([]int64, 0, len(widSet))
	for wid := range widSet {
		wids = append(wids, wid)
	}
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	for _, wid := range wids {
		e.closeWindow(wid)
	}
	sortResults(e.results)
}

// Results returns all emitted results sorted by (group, wid).
func (e *Engine) Results() []Result {
	return e.results
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Group != rs[j].Group {
			return rs[i].Group < rs[j].Group
		}
		return rs[i].Wid < rs[j].Wid
	})
}

// Stats returns accumulated runtime statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			bs := be.Stats()
			s.Inserted += bs.Inserted
			s.Edges += bs.Edges
			s.PeakVertices += bs.PeakVertices
			s.PeakPayloads += bs.PeakPayloads
			s.Partitions += bs.Partitions
		}
		for _, pe := range e.productEngines {
			ps := pe.Stats()
			s.Inserted += ps.Inserted
			s.Edges += ps.Edges
			s.PeakVertices += ps.PeakVertices
			s.PeakPayloads += ps.PeakPayloads
		}
		s.Results = len(e.results)
		return s
	}
	s.Partitions = len(e.parts)
	for _, p := range e.parts {
		for _, g := range p.graphs {
			gs := g.Stats()
			s.Inserted += gs.Inserted
			s.Edges += gs.Edges
			s.PeakVertices += gs.PeakVertices
			s.PeakPayloads += gs.PeakPayloads
		}
	}
	s.Results = len(e.results)
	return s
}

func (e *Engine) mergeStats(se *Engine) {
	ss := se.Stats()
	e.stats.Inserted += ss.Inserted
	e.stats.Edges += ss.Edges
	e.stats.PeakVertices += ss.PeakVertices
	e.stats.PeakPayloads += ss.PeakPayloads
	e.stats.Partitions += ss.Partitions
}
