package core

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"strings"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
)

// Result is one final aggregate: per group, per window (paper
// Definition 2: "These trends are grouped by the values of G. An
// aggregate is computed per group"; §6: "Final aggregate is computed
// per window").
//
// Group carries the GROUP-BY attribute values. Equivalence attributes
// ([company, sector]) partition trend formation but do not appear in
// the output grouping unless they are also GROUP-BY attributes: Q1
// forms down-trends per company yet reports one count per sector.
type Result struct {
	Group       string
	Wid         int64
	WindowStart event.Time
	WindowEnd   event.Time
	// Values holds one value per RETURN aggregate, in query order.
	Values []float64
	// Payload is the raw final payload (exact values in ModeExact).
	Payload *aggregate.Payload
	// Emitted is the wall-clock emission instant, used by the harness to
	// measure latency.
	Emitted time.Time
}

// Stats aggregates runtime statistics over all partitions and graphs.
// PeakVertices/PeakPayloads are the engine-level concurrent peaks,
// sampled at window boundaries (and at flush): the true maximum of
// simultaneously stored state, not the sum of per-partition peaks that
// occurred at different times. After RunParallel they are the sum of
// the workers' sampled peaks — an upper bound, since workers run
// concurrently but peak at different instants.
type Stats struct {
	Events     uint64
	OutOfOrder uint64 // events dropped for violating time order
	Inserted   uint64
	Edges      uint64 // logical edges, however aggregated
	// ScanVisits / SummaryFolds / SummaryRebuilds split the cost of
	// maintaining Edges into materialized per-vertex visits, O(1)
	// summary folds (each fold covers any number of logical edges), and
	// lazy in-place pane-summary rebuilds after invalidation watermark
	// advances; see GraphStats.
	ScanVisits      uint64
	SummaryFolds    uint64
	SummaryRebuilds uint64
	PeakVertices    uint64
	PeakPayloads    uint64
	// PrefilterSkips counts batch-ingest rows the vectorized predicate
	// pre-filter proved unable to match any state, skipping partition
	// graph insertion entirely (the row is still counted in Events and
	// advances every clock, so results and all other counters are
	// bit-identical to the per-event path). Not serialized in
	// checkpoints: the batch segmentation of a replay may differ from
	// the original run's, and checkpoint bytes must not.
	PrefilterSkips uint64
	Partitions     int
	// Results counts emitted results. It is a counter, not len(results):
	// a statement registered without retention still reports every
	// emission here.
	Results int
	// SharedStatements is the number of statements served by this
	// statement's graph through the shared sub-plan network, including
	// itself; 0 for a statement owning its engine exclusively. Set at
	// the statement level (Stmt.Stats) — engines do not know their
	// subscribers.
	SharedStatements int
}

// partition holds the dependent GRETA graphs of one stream partition
// (one combination of grouping and equivalence attribute values).
type partition struct {
	graphs []*Graph
	// group is the output grouping key (GROUP-BY attributes only).
	group string
	// key is the interned display form of the partition key, built once
	// at creation (debug rendering and deterministic iteration order).
	key string
	// pk holds the typed partition-key values for hash-collision
	// verification: routing is hash-first, so two distinct keys landing
	// on the same 64-bit hash are told apart by comparing against pk.
	pk partKey
	// sched executes stream transactions concurrently when the engine
	// runs in transactional mode (paper §7); nil otherwise.
	sched *Scheduler
}

// partKey is the typed identity of a partition: one entry per
// partitioning attribute, tagged by kind. Numbers compare by bit
// pattern (matching the hash), strings by value.
type partKey struct {
	kinds []uint8 // pkMissing, pkNum, or pkStr per attribute
	nums  []uint64
	strs  []string
}

const (
	pkMissing uint8 = iota
	pkNum
	pkStr
)

// Engine executes a compiled Plan over an in-order event stream
// (the GRETA Runtime, paper Fig. 4).
type Engine struct {
	plan *Plan

	// simple plan state: hash-first partition routing. parts maps the
	// 64-bit partition-key hash to its (almost always singleton)
	// collision chain; partList keeps creation order for iteration.
	parts    map[uint64][]*partition
	partList []*partition
	order    []int // graph processing order: negatives before parents

	// routeAcc reads the partitioning attributes (schema-compiled when
	// events carry schemas); single-owner per engine.
	routeAcc []event.Accessor

	// cspecs holds the per-engine compiled form of each plan sub-spec,
	// shared by that spec's graphs across all partitions.
	cspecs []*compiledSpec

	// prefilters caches the per-schema vectorized predicate pre-filter
	// of the batch ingest path, including its pooled selection bitmaps
	// (one entry per distinct batch schema seen; linear scan — batch
	// sources use a handful of schemas at most). See batch.go.
	prefilters []*batchPrefilter

	// partCache is the batch path's direct-mapped memo in front of the
	// e.parts probe, exploiting partition-key locality within a batch.
	// Partitions are never removed, so entries stay valid for the
	// engine's lifetime; a hit is proven by exact key words or verified
	// value-for-value, so fingerprint collisions fall through to the
	// chain probe. Lazily allocated on the first processSegment; never
	// serialized (pure cache).
	partCache []partCacheEnt

	// routeSlotCaches resolves routeAcc against each batch schema seen
	// (see routeSlotsFor; linear scan like prefilters).
	routeSlotCaches []routeSlotCache

	// composite plan state (disjunction / conjunction, §9)
	branchEngines  []*Engine
	productEngines []*Engine

	partAttrs []string // partition key attributes (group-by + equivalence)

	prevTime event.Time // window-close cursor

	// transactional enables the §7 stream-transaction scheduler: events
	// sharing a timestamp are batched and executed as one transaction
	// per partition, with dependency levels processed concurrently.
	transactional bool
	batch         []*event.Event
	batchTime     event.Time

	// forceScan disables the summary fast path in all graphs (see
	// SetForceVertexScan).
	forceScan bool

	// noRetain drops emitted results after the OnResult callback instead
	// of collecting them in results — RunParallel workers stream their
	// per-window partials to the merger and must not buffer the whole
	// run (bounded worker buffers).
	noRetain bool

	onResult func(Result)
	results  []Result
	// emitted counts emissions independently of retention (Stats.Results
	// must not collapse to zero when noRetain drops the slice).
	emitted int

	stats Stats
}

// NewEngine builds an engine for plan.
func NewEngine(plan *Plan) *Engine {
	e := &Engine{plan: plan, parts: map[uint64][]*partition{}, prevTime: -1}
	e.partAttrs = append(append([]string{}, plan.GroupBy...), plan.Query.Equivalence...)
	e.routeAcc = make([]event.Accessor, len(e.partAttrs))
	for i, a := range e.partAttrs {
		e.routeAcc[i] = event.NewAccessor(a)
	}
	if !plan.Simple() {
		for _, bp := range plan.Branches {
			e.branchEngines = append(e.branchEngines, NewEngine(bp))
		}
		for _, pp := range plan.Products {
			e.productEngines = append(e.productEngines, NewEngine(pp))
		}
		return e
	}
	// Dependency order: deeper (negative) graphs first. Split appends
	// children after parents, so descending index order processes every
	// negative graph before the graphs that depend on it — the static
	// equivalent of the time-driven scheduler of §7.
	for i := len(plan.Subs) - 1; i >= 0; i-- {
		e.order = append(e.order, i)
	}
	// Compile each sub-spec once per engine; partitions share the result.
	e.cspecs = make([]*compiledSpec, len(plan.Subs))
	for i, spec := range plan.Subs {
		e.cspecs[i] = newCompiledSpec(spec, plan.Subs, plan.Sem)
	}
	return e
}

// SetForceVertexScan disables the pane-summary/subtree-fold fast path:
// every candidate predecessor is visited per vertex, as if the trees
// were unaugmented. Results are identical either way (the differential
// tests lock this in); the knob exists for those tests and for
// debugging. Call before the first Process.
func (e *Engine) SetForceVertexScan(on bool) {
	e.forceScan = on
	for _, be := range e.branchEngines {
		be.SetForceVertexScan(on)
	}
	for _, pe := range e.productEngines {
		pe.SetForceVertexScan(on)
	}
}

// OnResult registers a callback invoked for every emitted result (as
// soon as the window closes). Results are also collected for Results().
func (e *Engine) OnResult(f func(Result)) { e.onResult = f }

// SetTransactional switches the engine to the stream-transaction
// scheduler of paper §7: same-timestamp events execute as one
// transaction per partition with concurrent dependency levels. Call
// before the first Process. Results are identical to the sequential
// mode; only the execution strategy differs.
func (e *Engine) SetTransactional(on bool) {
	e.transactional = on
	for _, be := range e.branchEngines {
		be.SetTransactional(on)
	}
	for _, pe := range e.productEngines {
		pe.SetTransactional(on)
	}
}

// attrKey concatenates the named attribute values of an event. Map
// probes come first (legacy rendering, including its NaN form); a
// map-free batch row falls through to its dense schema slots, which
// render identically for every value a batch can represent (AppendEvent
// rejects the NaN/"" collisions), so a partition keyed by a batch row
// interns the same display key a map-carried event would.
func attrKey(ev *event.Event, attrs []string) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if s, ok := ev.Str[a]; ok {
			b.WriteString(s)
		} else if v, ok := ev.Attrs[a]; ok {
			fmt.Fprintf(&b, "%g", v)
		} else if ev.Sch != nil {
			if si := ev.Sch.StrSlot(a); si >= 0 && si < len(ev.StrV) && ev.StrV[si] != "" {
				b.WriteString(ev.StrV[si])
			} else if ni := ev.Sch.NumSlot(a); ni >= 0 && ni < len(ev.Num) && !math.IsNaN(ev.Num[ni]) {
				fmt.Fprintf(&b, "%g", ev.Num[ni])
			}
		}
	}
	return b.String()
}

// newPartition instantiates the graphs of one partition and wires
// dependencies. The display key and group strings are interned here,
// once per partition — never on the per-event path.
func (e *Engine) newPartition(ev *event.Event) *partition {
	return e.newPartitionFromKey(attrKey(ev, e.partAttrs), e.buildPartKey(ev))
}

// newPartitionFromKey builds a partition from an already-materialized
// key (checkpoint restore rebuilds partitions from serialized keys, no
// event in hand; newPartition derives both from the triggering event).
func (e *Engine) newPartitionFromKey(key string, pk partKey) *partition {
	p := &partition{
		graphs: make([]*Graph, len(e.plan.Subs)),
		group:  groupPrefix(key, len(e.plan.GroupBy), len(e.partAttrs)),
		key:    key,
		pk:     pk,
	}
	for i, spec := range e.plan.Subs {
		p.graphs[i] = newGraph(spec, e.cspecs[i], e.plan.Window, e.plan.Sem)
		p.graphs[i].forceScan = e.forceScan
	}
	for i, spec := range e.plan.Subs {
		for _, dep := range spec.Deps {
			p.graphs[i].addDep(p.graphs[dep], dep)
		}
	}
	return p
}

// groupPrefix returns the prefix of the interned partition key that
// covers its first n of total \x1f-separated segments — the GROUP-BY
// attributes lead the partition-attribute list, so the group string is
// a substring of the key (no extra interning).
func groupPrefix(key string, n, total int) string {
	if n == 0 {
		return ""
	}
	if n >= total {
		return key
	}
	seen := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x1f' {
			seen++
			if seen == n {
				return key[:i]
			}
		}
	}
	return key
}

// routeHash computes the 64-bit partition-routing hash of an event
// directly from its attribute values (FNV-1a over kind-tagged values) —
// no key string is built. Events bound to a schema are read by dense
// slot; schemaless events fall back to map probes.
//
// Partition identity is typed (see partKey): a missing attribute, an
// empty-string value, and a numeric value are three distinct keys.
// This is deliberately stricter than the legacy string rendering,
// which conflated missing with "" and Str "5" with Attrs 5 — those
// degenerate keys no longer share a partition
// (TestTypedPartitionIdentity locks this in).
func (e *Engine) routeHash(ev *event.Event) uint64 {
	return hashRoute(e.routeAcc, ev)
}

// hashRoute is routeHash over an explicit accessor set: the Runtime
// computes it once per distinct partition-attribute signature and
// forwards the hash to every engine sharing that signature.
func hashRoute(acc []event.Accessor, ev *event.Event) uint64 {
	h := uint64(14695981039346656037)
	for i := range acc {
		a := &acc[i]
		if s, ok := a.Str(ev); ok {
			h = hashByte(h, pkStr)
			for j := 0; j < len(s); j++ {
				h = hashByte(h, s[j])
			}
		} else if f, ok := a.Float(ev); ok {
			h = hashByte(h, pkNum)
			h = hashU64(h, math.Float64bits(f))
		} else {
			h = hashByte(h, pkMissing)
		}
	}
	return h
}

// hash recomputes the routing hash of an already-captured partition
// key. It must stay byte-for-byte equivalent to hashRoute so restored
// partitions land in the same chain a live event would probe.
func (pk *partKey) hash() uint64 {
	h := uint64(14695981039346656037)
	for i, kind := range pk.kinds {
		switch kind {
		case pkStr:
			h = hashByte(h, pkStr)
			s := pk.strs[i]
			for j := 0; j < len(s); j++ {
				h = hashByte(h, s[j])
			}
		case pkNum:
			h = hashByte(h, pkNum)
			h = hashU64(h, pk.nums[i])
		default:
			h = hashByte(h, pkMissing)
		}
	}
	return h
}

func hashByte(h uint64, b uint8) uint64 {
	h ^= uint64(b)
	h *= 1099511628211
	return h
}

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, uint8(v))
		v >>= 8
	}
	return h
}

// buildPartKey captures the typed partition-key values of ev (partition
// creation only).
func (e *Engine) buildPartKey(ev *event.Event) partKey {
	k := partKey{kinds: make([]uint8, len(e.routeAcc))}
	for i := range e.routeAcc {
		a := &e.routeAcc[i]
		if s, ok := a.Str(ev); ok {
			if k.strs == nil {
				k.strs = make([]string, len(e.routeAcc))
			}
			k.kinds[i], k.strs[i] = pkStr, s
		} else if f, ok := a.Float(ev); ok {
			if k.nums == nil {
				k.nums = make([]uint64, len(e.routeAcc))
			}
			k.kinds[i], k.nums[i] = pkNum, math.Float64bits(f)
		}
	}
	return k
}

// keyMatches verifies that ev carries exactly the partition-key values
// of pk (collision check after the hash lookup). Allocation-free.
func (e *Engine) keyMatches(pk *partKey, ev *event.Event) bool {
	for i := range e.routeAcc {
		a := &e.routeAcc[i]
		if s, ok := a.Str(ev); ok {
			if pk.kinds[i] != pkStr || pk.strs[i] != s {
				return false
			}
		} else if f, ok := a.Float(ev); ok {
			if pk.kinds[i] != pkNum || pk.nums[i] != math.Float64bits(f) {
				return false
			}
		} else if pk.kinds[i] != pkMissing {
			return false
		}
	}
	return true
}

// lookupPartition resolves the partition of ev given its routing hash,
// or nil when it does not exist yet.
func (e *Engine) lookupPartition(h uint64, ev *event.Event) *partition {
	for _, p := range e.parts[h] {
		if e.keyMatches(&p.pk, ev) {
			return p
		}
	}
	return nil
}

// partitionFor returns (creating if needed) the partition of ev.
func (e *Engine) partitionFor(h uint64, ev *event.Event) *partition {
	p := e.lookupPartition(h, ev)
	if p == nil {
		p = e.newPartition(ev)
		e.parts[h] = append(e.parts[h], p)
		e.partList = append(e.partList, p)
	}
	return p
}

// Process offers one event to the engine. Events must arrive in
// non-decreasing time order (paper §2: out-of-order handling is
// delegated to upstream mechanisms); a late event would corrupt
// already-propagated aggregates, so it is counted and dropped.
func (e *Engine) Process(ev *event.Event) {
	if !e.plan.Simple() {
		if ev.Time < e.prevTime {
			e.stats.OutOfOrder++
			return
		}
		e.stats.Events++
		for _, be := range e.branchEngines {
			be.Process(ev)
		}
		for _, pe := range e.productEngines {
			pe.Process(ev)
		}
		e.prevTime = ev.Time
		return
	}
	var h uint64
	if !e.transactional {
		// The transactional path batches first and hashes in runBatch.
		h = e.routeHash(ev)
	}
	e.ProcessRouted(ev, h)
}

// ProcessRouted is Process with the partition-routing hash already
// computed (RunParallel hashes once to pick a worker and forwards the
// hash with the event, so workers do not recompute it). Only valid for
// simple plans; the hash must equal routeHash(ev) (it is ignored in
// transactional mode, where runBatch hashes per batch).
func (e *Engine) ProcessRouted(ev *event.Event, h uint64) {
	if ev.Time < e.prevTime {
		e.stats.OutOfOrder++
		return
	}
	e.stats.Events++
	if e.transactional {
		// Seal and execute the previous same-timestamp transaction before
		// the clock advances.
		if len(e.batch) > 0 && ev.Time != e.batchTime {
			e.runBatch()
		}
		e.closeUpTo(ev.Time)
		e.batch = append(e.batch, ev)
		e.batchTime = ev.Time
		return
	}
	e.closeUpTo(ev.Time)
	e.dispatch(ev, h)
}

// dispatch routes one event into its partition's graphs.
func (e *Engine) dispatch(ev *event.Event, h uint64) {
	p := e.partitionFor(h, ev)
	// Dependency-ordered processing: all graphs a graph depends on see
	// the event first (stream-transaction ordering, §7).
	for _, idx := range e.order {
		p.graphs[idx].Process(ev)
	}
}

// closeUpTo closes windows that ended before t, across all partitions,
// merging partition payloads per output group.
func (e *Engine) closeUpTo(t event.Time) {
	if lo, hi, ok := e.plan.Window.ClosedBy(e.prevTime, t); ok {
		// Window boundaries are the natural sampling points for the
		// engine-level memory peak: state is maximal just before expiry.
		e.samplePeaks()
		for wid := lo; wid <= hi; wid++ {
			e.closeWindow(wid)
		}
		// Let idle partitions reclaim expired panes.
		for _, p := range e.partList {
			for _, g := range p.graphs {
				g.Advance(t)
			}
		}
	}
	e.prevTime = t
}

// samplePeaks updates the engine-level concurrent peak of stored
// vertices and payloads. Summing per-graph peaks would overstate the
// true peak (partitions peak at different times), so the engine samples
// the actual concurrent totals at window boundaries.
func (e *Engine) samplePeaks() {
	var verts, pays uint64
	for _, p := range e.partList {
		for _, g := range p.graphs {
			verts += g.stats.Vertices
			pays += g.stats.Payloads
		}
	}
	if verts > e.stats.PeakVertices {
		e.stats.PeakVertices = verts
	}
	if pays > e.stats.PeakPayloads {
		e.stats.PeakPayloads = pays
	}
}

// runBatch executes the pending stream transaction: the batch is split
// per partition (preserving order) and each partition's scheduler runs
// it with concurrent dependency levels.
func (e *Engine) runBatch() {
	byPart := map[*partition][]*event.Event{}
	var order []*partition
	for _, ev := range e.batch {
		p := e.partitionFor(e.routeHash(ev), ev)
		if p.sched == nil {
			p.sched = NewScheduler(p.graphs, e.plan.Subs)
		}
		if _, seen := byPart[p]; !seen {
			order = append(order, p)
		}
		byPart[p] = append(byPart[p], ev)
	}
	e.batch = e.batch[:0]
	for _, p := range order {
		p.sched.RunBatch(byPart[p])
	}
}

// closeWindow collects window wid from every partition, merges per
// output group, and emits.
func (e *Engine) closeWindow(wid int64) {
	def := e.plan.Def()
	merged := map[string]*aggregate.Payload{}
	for _, p := range e.partList {
		pl := p.graphs[0].CollectWindow(wid)
		if pl == nil {
			continue
		}
		if cur := merged[p.group]; cur == nil {
			// CollectWindow transfers ownership, so the first payload of a
			// group becomes the merge target directly (no clone).
			merged[p.group] = pl
		} else {
			def.Merge(cur, pl)
			p.graphs[0].Release(pl)
		}
	}
	groups := make([]string, 0, len(merged))
	for g := range merged {
		groups = append(groups, g)
	}
	slices.Sort(groups)
	for _, g := range groups {
		e.emit(g, wid, merged[g])
	}
}

// emit materializes a Result from a final payload.
func (e *Engine) emit(group string, wid int64, payload *aggregate.Payload) {
	def := e.plan.Def()
	r := Result{
		Group:       group,
		Wid:         wid,
		WindowStart: e.plan.Window.Start(wid),
		WindowEnd:   e.plan.Window.End(wid),
		Payload:     payload,
		Emitted:     time.Now(),
	}
	if len(e.plan.Specs) > 0 {
		r.Values = make([]float64, 0, len(e.plan.Specs))
	}
	for _, ss := range e.plan.Specs {
		r.Values = append(r.Values, def.Value(payload, ss.Spec, ss.Slot, ss.Slot2))
	}
	e.emitted++
	if !e.noRetain {
		e.results = append(e.results, r)
	}
	if e.onResult != nil {
		e.onResult(r)
	}
}

// setRetainResults controls whether emitted results are collected for
// Results() in addition to the OnResult callback. RunParallel workers
// disable retention so their buffers stay bounded by the number of
// open windows.
func (e *Engine) setRetainResults(on bool) { e.noRetain = !on }

// setWatermark seeds the engine's time cursor: events strictly older
// than t are dropped as out-of-order, and windows that ended at or
// before t are never emitted. The Runtime calls this when a statement
// registers mid-stream, so the statement sees only events from its
// registration watermark onward.
func (e *Engine) setWatermark(t event.Time) {
	e.prevTime = t
	for _, be := range e.branchEngines {
		be.setWatermark(t)
	}
	for _, pe := range e.productEngines {
		pe.setWatermark(t)
	}
}

// AdvanceTo advances the engine's clock to t without offering an
// event: pending stream transactions older than t are executed and
// windows that ended at or before t close and emit. RunParallel
// workers run it on window barriers so partitions that received no
// recent events still release their windows to the streaming merge.
func (e *Engine) AdvanceTo(t event.Time) {
	if t <= e.prevTime {
		return
	}
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			be.AdvanceTo(t)
		}
		for _, pe := range e.productEngines {
			pe.AdvanceTo(t)
		}
		e.prevTime = t
		return
	}
	if e.transactional && len(e.batch) > 0 && e.batchTime < t {
		e.runBatch()
	}
	e.closeUpTo(t)
}

// Run consumes an entire stream and flushes.
func (e *Engine) Run(s event.Stream) {
	for ev := s.Next(); ev != nil; ev = s.Next() {
		e.Process(ev)
	}
	e.Flush()
}

// RunParallel consumes the stream with the given number of workers,
// hashing partitions onto workers (paper §7, "Parallel Processing":
// sub-streams are processed in parallel independently from each other).
// Results stream out as windows close (per-window barrier merge in the
// Runtime). Only valid for grouped queries.
//
// Deprecated: RunParallel is a shim over a one-statement Runtime; use
// Runtime.RunParallel, which shares the parallel workers across every
// registered statement.
func (e *Engine) RunParallel(s event.Stream, workers int) {
	rt := NewRuntime()
	if _, err := rt.adopt(e, ""); err != nil {
		panic(err) // fresh runtime: cannot be closed or running
	}
	_ = rt.RunParallel(context.Background(), s, workers)
}

// Flush closes all open windows in all partitions.
func (e *Engine) Flush() {
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			be.Flush()
		}
		for _, pe := range e.productEngines {
			pe.Flush()
		}
		e.composeResults()
		return
	}
	if e.transactional && len(e.batch) > 0 {
		e.runBatch()
	}
	e.samplePeaks()
	widSet := map[int64]bool{}
	for _, p := range e.partList {
		for _, g := range p.graphs {
			g.FoldAll()
		}
		for _, wid := range p.graphs[0].OpenWids() {
			widSet[wid] = true
		}
	}
	wids := make([]int64, 0, len(widSet))
	for wid := range widSet {
		wids = append(wids, wid)
	}
	slices.Sort(wids)
	for _, wid := range wids {
		e.closeWindow(wid)
	}
	sortResults(e.results)
}

// peekFlushInto visits every open window's final aggregate without
// consuming engine state: window payloads are peeked (cloned) per
// partition, merged per output group exactly as closeWindow would, and
// handed to fan in (wid, group) order. A shared subscriber detaching
// mid-stream flushes through it, so the surviving subscribers see the
// graph — open windows, pane state, watermarks — completely untouched.
// Only valid for simple dependency-free plans (the only ones the
// shared network admits): those have no pending invalidation records
// to fold and no lazy finals to compute, so the peek is exact.
func (e *Engine) peekFlushInto(fan func(group string, wid int64, payload *aggregate.Payload)) {
	if !e.plan.Simple() {
		return
	}
	def := e.plan.Def()
	widSet := map[int64]bool{}
	for _, p := range e.partList {
		for _, wid := range p.graphs[0].OpenWids() {
			widSet[wid] = true
		}
	}
	wids := make([]int64, 0, len(widSet))
	for wid := range widSet {
		wids = append(wids, wid)
	}
	slices.Sort(wids)
	for _, wid := range wids {
		merged := map[string]*aggregate.Payload{}
		for _, p := range e.partList {
			pl := p.graphs[0].PeekWindow(wid)
			if pl == nil {
				continue
			}
			if cur := merged[p.group]; cur == nil {
				merged[p.group] = pl
			} else {
				def.Merge(cur, pl)
			}
		}
		groups := make([]string, 0, len(merged))
		for g := range merged {
			groups = append(groups, g)
		}
		slices.Sort(groups)
		for _, g := range groups {
			fan(g, wid, merged[g])
		}
	}
}

// Results returns all emitted results sorted by (group, wid).
func (e *Engine) Results() []Result {
	return e.results
}

func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		if c := cmp.Compare(a.Group, b.Group); c != 0 {
			return c
		}
		return cmp.Compare(a.Wid, b.Wid)
	})
}

// Stats returns accumulated runtime statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	if !e.plan.Simple() {
		for _, be := range e.branchEngines {
			bs := be.Stats()
			s.Inserted += bs.Inserted
			s.Edges += bs.Edges
			s.ScanVisits += bs.ScanVisits
			s.SummaryFolds += bs.SummaryFolds
			s.SummaryRebuilds += bs.SummaryRebuilds
			s.PeakVertices += bs.PeakVertices
			s.PeakPayloads += bs.PeakPayloads
			s.Partitions += bs.Partitions
		}
		for _, pe := range e.productEngines {
			ps := pe.Stats()
			s.Inserted += ps.Inserted
			s.Edges += ps.Edges
			s.ScanVisits += ps.ScanVisits
			s.SummaryFolds += ps.SummaryFolds
			s.SummaryRebuilds += ps.SummaryRebuilds
			s.PeakVertices += ps.PeakVertices
			s.PeakPayloads += ps.PeakPayloads
		}
		s.Results = e.emitted
		return s
	}
	// Live partitions plus any folded in from worker engines
	// (RunParallel's mergeStats, the cluster's remote stats fold) —
	// each partition lives on exactly one worker, so the sum is the
	// true total.
	s.Partitions = e.stats.Partitions + len(e.partList)
	// Engine-level peaks are sampled at window boundaries (samplePeaks);
	// fold in the current totals so an engine that never closed a window
	// still reports its live state.
	var verts, pays uint64
	for _, p := range e.partList {
		for _, g := range p.graphs {
			gs := g.Stats()
			s.Inserted += gs.Inserted
			s.Edges += gs.Edges
			s.ScanVisits += gs.ScanVisits
			s.SummaryFolds += gs.SummaryFolds
			s.SummaryRebuilds += gs.SummaryRebuilds
			verts += gs.Vertices
			pays += gs.Payloads
		}
	}
	if verts > s.PeakVertices {
		s.PeakVertices = verts
	}
	if pays > s.PeakPayloads {
		s.PeakPayloads = pays
	}
	s.Results = e.emitted
	return s
}

// mergeStats folds a RunParallel worker's stats into the parent.
// Workers run concurrently, so the sum of their sampled peaks is an
// upper bound on the true concurrent peak (the workers' individual
// peaks need not coincide in time); it is not the per-partition-sum
// overstatement the sequential engine avoids, but callers should read
// parallel-run peaks as a bound, not an exact maximum.
func (e *Engine) mergeStats(se *Engine) {
	ss := se.Stats()
	e.stats.Inserted += ss.Inserted
	e.stats.Edges += ss.Edges
	e.stats.ScanVisits += ss.ScanVisits
	e.stats.SummaryFolds += ss.SummaryFolds
	e.stats.SummaryRebuilds += ss.SummaryRebuilds
	e.stats.PeakVertices += ss.PeakVertices
	e.stats.PeakPayloads += ss.PeakPayloads
	e.stats.Partitions += ss.Partitions
}
