// Columnar batch ingest: Runtime.ProcessBatch applies a whole
// event.Batch with per-event overhead amortized three ways —
//
//   - one routing hash per maximal run of adjacent rows sharing a
//     partition key (instead of one per row per route group),
//   - a vectorized predicate pre-filter evaluating the vectorizable
//     vertex predicates (predicate.Column) over the batch's dense
//     numeric columns into a pooled selection bitmap, so rows that
//     cannot match any state skip graph insertion entirely,
//   - the runtime watermark advanced once per batch tail.
//
// The path is semantically invisible: results, Stats counters (modulo
// the new PrefilterSkips), checkpoint boundary placement, and summary
// fold order are bit-identical to feeding the same rows through
// Process one at a time. Everything that cannot be proven invisible
// falls back to the per-event path row by row — unsorted batches,
// replay deduplication after a restore, and a slack-armed runtime with
// checkpointing on.
package core

import (
	"errors"
	"math"
	"math/bits"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/predicate"
)

// ProcessBatch offers every row of b to the registered statements and
// returns the number of rows accepted in order (rows behind the
// watermark — or, with reorder slack armed, behind the reorder
// horizon — are counted, dropped, and excluded from the count, exactly
// as the per-event path drops them). The error is nil unless the
// runtime rejects the batch wholesale (ErrClosed, ErrRunning).
//
// Rows must be in non-decreasing time order for the columnar path; an
// unsorted batch degrades to the per-event path internally, with
// identical semantics. The batch's rows transfer to the runtime (see
// event.Batch): the caller must not Reset or reuse the batch while any
// window that saw its rows is open.
//
// With reorder slack armed, the batch splits: the in-order prefix at
// or below the reorder horizon is applied columnar, interleaved in
// (time, arrival) order with pending buffered releases, and the
// straggler tail enters the reorder buffer to be released by later
// arrivals. A runtime with both slack and a checkpoint schedule armed
// feeds rows individually (a mid-batch snapshot must capture the exact
// per-arrival buffer state).
func (rt *Runtime) ProcessBatch(b *event.Batch) (int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrClosed
	}
	if rt.running {
		return 0, ErrRunning
	}
	n := b.Len()
	if n == 0 {
		return 0, nil
	}
	if m := rt.met; m != nil {
		m.batches.Inc()
		m.batchRows.Add(uint64(n))
	}
	rows := b.Rows()
	for i := 1; i < n; i++ {
		if rows[i].Time < rows[i-1].Time {
			return rt.processBatchFallback(rows)
		}
	}
	if rt.reorder != nil {
		if rt.ck != nil || len(rt.replayDedup) > 0 {
			return rt.processBatchFallback(rows)
		}
		return rt.processBatchReorder(b, rows)
	}
	// Sorted, no reorder: rows behind the initial watermark form a
	// prefix (each is still forwarded so every engine counts the drop,
	// exactly as applyLocked forwards late events).
	accepted := n
	for _, ev := range rows {
		if ev.Time >= rt.watermark {
			break
		}
		accepted--
	}
	rt.applyBatch(b, rows, 0, n)
	if last := rows[n-1].Time; last > rt.watermark {
		rt.watermark = last
	}
	if m := rt.met; m != nil {
		// rt.watermark now covers the batch maximum (rows are sorted), so
		// the frontier cells stay untouched — the snapshot derives both
		// series from rt.watermark under rt.mu.
		m.events.Add(uint64(n))
		m.drops.Add(uint64(n - accepted))
	}
	return accepted, nil
}

// processBatchFallback feeds rows through the per-event path one at a
// time — the landing spot for every batch shape the columnar path
// cannot reproduce bit for bit; rt.mu held.
func (rt *Runtime) processBatchFallback(rows []*event.Event) (int, error) {
	accepted := 0
	for _, ev := range rows {
		err := rt.process(ev)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOutOfOrder):
		default:
			return accepted, err
		}
	}
	return accepted, nil
}

// applyBatch applies sorted rows [lo, hi) to the engines, splitting
// into segments at scheduled checkpoint boundaries: the snapshot fires
// before the first row at or past ck.next, exactly where the per-event
// path fires it; rt.mu held.
func (rt *Runtime) applyBatch(b *event.Batch, rows []*event.Event, lo, hi int) {
	for lo < hi {
		ck := rt.ck
		if ck == nil {
			rt.applySegment(b, rows, lo, hi)
			return
		}
		if rows[lo].Time >= ck.next {
			rt.checkpointAtBoundary(rows[lo].Time)
		}
		end := lo + 1
		for end < hi && rows[end].Time < ck.next {
			end++
		}
		rt.applySegment(b, rows, lo, end)
		// Advance the watermark segment by segment: the next boundary's
		// snapshot must capture the watermark the per-event path would
		// hold there (the last applied row's time), not the pre-batch one.
		if t := rows[end-1].Time; t > rt.watermark {
			rt.watermark = t
		}
		lo = end
	}
}

// applySegment applies boundary-free sorted rows [lo, hi): every
// member engine sweeps the segment in one columnar pass (run tracking,
// partition memo, pre-filter skips fused); rt.mu held. Engines are
// independent, so the engine-major order (all rows for one engine,
// then the next) emits the same per-statement results as the
// per-event row-major order.
func (rt *Runtime) applySegment(b *event.Batch, rows []*event.Event, lo, hi int) {
	// Every row is an ingest epoch, exactly as applyLocked advances
	// once per event (registration cannot interleave: rt.mu is held).
	rt.shareIdx.AdvanceN(uint64(hi - lo))
	for _, g := range rt.groups {
		for _, st := range g.members {
			st.eng.processSegment(b, rows, lo, hi)
		}
	}
	for _, st := range rt.direct {
		for i := lo; i < hi; i++ {
			st.eng.Process(rows[i])
		}
	}
}

// routeSlot is one partition-key attribute resolved against a batch
// schema: dense slot indexes (or -1), mirroring Accessor's reads.
type routeSlot struct{ ns, ss int }

// sameKeyAt reports whether batch row i carries the same partition key
// as row i-1 — kind and value, in Accessor precedence order (string
// presence wins over numeric, ""/NaN mark absence, exactly as
// hashRoute reads a row).
func sameKeyAt(slots []routeSlot, num []float64, nw int, strv []string, sw, i int) bool {
	for _, s := range slots {
		var v, pv string
		if s.ss >= 0 {
			v, pv = strv[i*sw+s.ss], strv[(i-1)*sw+s.ss]
		}
		if v != "" || pv != "" {
			if v != pv {
				return false
			}
			continue
		}
		if s.ns >= 0 {
			f, g := num[i*nw+s.ns], num[(i-1)*nw+s.ns]
			if math.IsNaN(f) != math.IsNaN(g) {
				return false
			}
			if !math.IsNaN(f) && math.Float64bits(f) != math.Float64bits(g) {
				return false
			}
		}
	}
	return true
}

// keyWordsAt reads batch row i's partition key into at most two packed
// slot words plus a memo fingerprint folded over every slot. Words are
// prefix-faithful — equal keys always produce equal words, so a word
// mismatch is a definitive key mismatch. When exact is true (at most
// two slots, each a string of six or fewer bytes or absent) the words
// are also injective: equal words of two exact rows PROVE equal keys,
// and the memo and run tracking skip value verification entirely.
// Longer strings, numeric slots, and wider keys clear exact and fall
// back to the exact compares (sameKeyAt, matchKeyAt). A string slot
// word packs length<<56 | kind<<48 | up to six leading bytes; numeric
// slots use the raw float bits XOR a kind marker (fingerprint-only —
// float bits can mimic any pattern, hence inexact); absent slots use
// the bare kind marker (top byte zero, disjoint from every string).
func keyWordsAt(slots []routeSlot, num []float64, nw int, strv []string, sw, i int) (fp, w0, w1 uint64, exact bool) {
	const mix = 0x9E3779B97F4A7C15
	fp = 0x2545F4914F6CDD1D
	exact = len(slots) <= 2
	for k, s := range slots {
		w := uint64(pkMissing)
		if s.ss >= 0 && strv[i*sw+s.ss] != "" {
			v := strv[i*sw+s.ss]
			w = uint64(len(v))<<56 | uint64(pkStr)<<48
			for j := 0; j < len(v) && j < 6; j++ {
				w |= uint64(v[j]) << (8 * j)
			}
			if len(v) > 6 {
				exact = false
			}
		} else if s.ns >= 0 && !math.IsNaN(num[i*nw+s.ns]) {
			w = math.Float64bits(num[i*nw+s.ns]) ^ uint64(pkNum)<<48
			exact = false
		}
		fp = (fp ^ w) * mix
		if k == 0 {
			w0 = w
		} else if k == 1 {
			w1 = w
		}
	}
	// Fold the high half down: multiplication only carries differences
	// upward, and the memo indexes by the low bits.
	return fp ^ fp>>32, w0, w1, exact
}

// hashRowAt is hashRoute for batch row i read straight off the dense
// columns; must hash exactly the bytes hashRoute hashes. The batch
// path only needs it on a partition-memo miss (partition chains are
// keyed by this hash, shared with the per-event path).
func hashRowAt(slots []routeSlot, num []float64, nw int, strv []string, sw, i int) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range slots {
		if s.ss >= 0 {
			if v := strv[i*sw+s.ss]; v != "" {
				h = hashByte(h, pkStr)
				for j := 0; j < len(v); j++ {
					h = hashByte(h, v[j])
				}
				continue
			}
		}
		if s.ns >= 0 {
			if f := num[i*nw+s.ns]; !math.IsNaN(f) {
				h = hashByte(h, pkNum)
				h = hashU64(h, math.Float64bits(f))
				continue
			}
		}
		h = hashByte(h, pkMissing)
	}
	return h
}

// processBatchReorder merges a sorted batch into a slack-armed
// runtime: everything at or below the final horizon (the horizon after
// the whole batch has arrived) releases during this call, interleaved
// with pending buffered events in (time, arrival) order — pending
// events win timestamp ties, their arrival stamps predate every batch
// row — and the straggler tail enters the buffer. Checkpointing is
// off on this path (ProcessBatch falls back per-row otherwise), so no
// mid-merge snapshot can observe the shortcut; rt.mu held.
func (rt *Runtime) processBatchReorder(b *event.Batch, rows []*event.Event) (int, error) {
	buf := rt.reorder
	// Apply a restored in-flight release first, as process does.
	buf.Settle()
	n := len(rows)
	// Rows behind the horizon drop without touching any engine. For a
	// sorted batch the horizon the per-event feed would test each row
	// against can only be the initial one (later rows only raise it by
	// at most their own timestamp), so the drops form a prefix.
	lo := 0
	for lo < n && rows[lo].Time < buf.Horizon() {
		lo++
	}
	if lo > 0 {
		buf.NoteDropped(uint64(lo))
	}
	finalHorizon := buf.Horizon()
	if h := rows[n-1].Time - buf.Slack(); h > finalHorizon {
		finalHorizon = h
	}
	i := lo
	for i < n && rows[i].Time <= finalHorizon {
		pt, pending := buf.PeekTime()
		if pending && pt <= rows[i].Time {
			// Pending event first: pt <= rows[i].Time <= finalHorizon.
			rt.applyReleased(buf.PopRelease())
			continue
		}
		// Maximal chunk of batch rows strictly ahead of the next pending
		// event, applied columnar.
		limit := finalHorizon
		if pending && pt-1 < limit {
			limit = pt - 1
		}
		j := i + 1
		for j < n && rows[j].Time <= limit {
			j++
		}
		rt.applyBatch(b, rows, i, j)
		if t := rows[j-1].Time; t > rt.watermark {
			rt.watermark = t
		}
		buf.Bypass(rows[j-1].Time)
		i = j
	}
	// Pending events at or below the final horizon outlasting the batch
	// rows release now — per-event they'd release as the straggler tail
	// raised maxSeen.
	for {
		pt, ok := buf.PeekTime()
		if !ok || pt > finalHorizon {
			break
		}
		rt.applyReleased(buf.PopRelease())
	}
	// The tail stays inside the disorder window: every time is above
	// the final horizon, so the pushes drop nothing and release nothing.
	for ; i < n; i++ {
		buf.Push(rows[i])
	}
	if m := rt.met; m != nil {
		// The buffered tail stays ahead of the released frontier, so only
		// the offered high-water cell moves; the released watermark is
		// rt.watermark under rt.mu.
		m.events.Add(uint64(n))
		m.drops.Add(uint64(lo))
		m.maxSeen.SetMax(rows[n-1].Time)
	}
	return n - lo, nil
}

// processSegment sweeps one segment of sorted rows through the engine
// in a single columnar pass: per row the packed key words both track
// partition-key runs (a word change breaks the run; exact words prove
// continuation without a compare) and resolve the partition through
// the direct-mapped memo (the FNV-1a routing hash is computed only on
// a memo miss), and rows the pre-filter proves unable to match any
// state take the skip path — the same clock advances and Events
// counts as a full Graph.Process whose insertAt fails every vertex
// predicate, with no graph work. Only called for simple plans
// (route-group members).
func (e *Engine) processSegment(b *event.Batch, rows []*event.Event, lo, hi int) {
	if lo >= hi {
		return
	}
	if e.transactional {
		// The §7 scheduler batches by timestamp internally; feed it
		// row by row. ProcessRouted ignores the forwarded hash in
		// transactional mode (runBatch hashes per batch), so no
		// routing hash is computed here.
		for i := lo; i < hi; i++ {
			e.ProcessRouted(rows[i], 0)
		}
		return
	}
	pf := e.prefilterFor(b, lo, hi)
	if e.partCache == nil {
		e.partCache = make([]partCacheEnt, partCacheSize)
	}
	slots := e.routeSlotsFor(b.Schema())
	num, nw := b.NumColumn()
	strv, sw := b.StrColumn()
	var p *partition
	var pw0, pw1 uint64
	pexact := false
	for i := lo; i < hi; i++ {
		fp, w0, w1, exact := keyWordsAt(slots, num, nw, strv, sw, i)
		if p != nil && (w0 != pw0 || w1 != pw1 ||
			!(exact && pexact) && !sameKeyAt(slots, num, nw, strv, sw, i)) {
			p = nil // run break: the key provably changed
		}
		pw0, pw1, pexact = w0, w1, exact
		ev := rows[i]
		if ev.Time < e.prevTime {
			e.stats.OutOfOrder++
			continue
		}
		e.stats.Events++
		e.closeUpTo(ev.Time)
		if p == nil {
			// One lookup per run; created even when every row of the
			// run is filtered, as the per-event dispatch would. The
			// direct-mapped memo front-runs the chain probe —
			// partitions are never removed, so a hit (two exact words,
			// or word-verified against the stored key off the columns)
			// is always the partition the probe would return; only a
			// miss pays the routing hash.
			ent := &e.partCache[fp&(partCacheSize-1)]
			if ent.p != nil && ent.w0 == w0 && ent.w1 == w1 &&
				(exact && ent.exact || matchKeyAt(&ent.p.pk, slots, num, nw, strv, sw, i)) {
				p = ent.p
			} else {
				p = e.partitionFor(hashRowAt(slots, num, nw, strv, sw, i), ev)
				ent.w0, ent.w1, ent.exact, ent.p = w0, w1, exact, p
			}
		}
		if pf != nil && pf.skip(i-lo) {
			// Mirror the effects of a Graph.Process whose predicates
			// all fail: the event is counted and both graph clocks
			// advance (prevTime for ordering, lastEventID for
			// contiguous semantics), nothing else moves. Pre-filter
			// eligibility guarantees a single dependency-free graph,
			// whose foldPending/expire are no-ops between the window
			// closes closeUpTo just handled.
			g := p.graphs[0]
			g.stats.Events++
			g.prevTime = ev.Time
			g.lastEventID = ev.ID
			e.stats.PrefilterSkips++
			// Bulk the rest of the skip span: while consecutive rows
			// stay pre-filtered and their runs' partitions are memo
			// hits (pure reads — nothing is created), the per-row
			// engine work collapses to one counter add and one close
			// at the span tail. Sorted rows guarantee no span row is
			// late, and window closes never read the graph clocks, so
			// the interleaving is unobservable; a memo miss or a
			// passing row ends the span and resumes per-row handling.
			spanEnd := lo + pf.passEnd(i+1-lo, hi-lo)
			j := i + 1
			for j < spanEnd {
				fpj, w0j, w1j, exj := keyWordsAt(slots, num, nw, strv, sw, j)
				if w0j != pw0 || w1j != pw1 ||
					!(exj && pexact) && !sameKeyAt(slots, num, nw, strv, sw, j) {
					ent := &e.partCache[fpj&(partCacheSize-1)]
					if ent.p == nil || ent.w0 != w0j || ent.w1 != w1j ||
						!(exj && ent.exact) && !matchKeyAt(&ent.p.pk, slots, num, nw, strv, sw, j) {
						break
					}
					p = ent.p
					g = p.graphs[0]
				}
				pw0, pw1, pexact = w0j, w1j, exj
				rj := rows[j]
				g.stats.Events++
				g.prevTime = rj.Time
				g.lastEventID = rj.ID
				j++
			}
			if n := uint64(j - i - 1); n > 0 {
				e.stats.Events += n
				e.stats.PrefilterSkips += n
				e.closeUpTo(rows[j-1].Time)
			}
			i = j - 1
			continue
		}
		for _, idx := range e.order {
			p.graphs[idx].Process(ev)
		}
	}
}

// partCacheSize is the direct-mapped partition-memo size (power of
// two; 32KB per engine that has seen batch ingest — sized so the
// Linear Road shapes' ~1k live partitions mostly stay resident).
const partCacheSize = 1024

// partCacheEnt is one (key words → partition) memo entry, indexed by
// the fingerprint's low bits. exact records whether the filling row's
// words were injective (see keyWordsAt): a probe whose words match an
// exact entry exactly is a proven hit, no key compare needed.
type partCacheEnt struct {
	w0, w1 uint64
	exact  bool
	p      *partition
}

// routeSlotCache is the engine's partition-key slot resolution for one
// batch schema (one entry per distinct schema seen, like prefilters).
type routeSlotCache struct {
	sch   *event.Schema
	slots []routeSlot
}

// routeSlotsFor resolves (caching per schema) the engine's routing
// accessors against a batch schema.
func (e *Engine) routeSlotsFor(sch *event.Schema) []routeSlot {
	for _, c := range e.routeSlotCaches {
		if c.sch == sch {
			return c.slots
		}
	}
	slots := make([]routeSlot, len(e.routeAcc))
	for i := range e.routeAcc {
		a := e.routeAcc[i].Attr()
		slots[i] = routeSlot{ns: sch.NumSlot(a), ss: sch.StrSlot(a)}
	}
	e.routeSlotCaches = append(e.routeSlotCaches, routeSlotCache{sch: sch, slots: slots})
	return slots
}

// matchKeyAt is keyMatches for batch row i read straight off the dense
// columns — same kind precedence, same absence markers.
func matchKeyAt(pk *partKey, slots []routeSlot, num []float64, nw int, strv []string, sw, i int) bool {
	for k, s := range slots {
		if s.ss >= 0 {
			if v := strv[i*sw+s.ss]; v != "" {
				if pk.kinds[k] != pkStr || pk.strs[k] != v {
					return false
				}
				continue
			}
		}
		if s.ns >= 0 {
			if f := num[i*nw+s.ns]; !math.IsNaN(f) {
				if pk.kinds[k] != pkNum || pk.nums[k] != math.Float64bits(f) {
					return false
				}
				continue
			}
		}
		if pk.kinds[k] != pkMissing {
			return false
		}
	}
	return true
}

// Batch pre-filter
// ---------------------------------------------------------------------

type pfMode uint8

const (
	// pfPass: no provably-equivalent vectorized form — every row goes
	// through the full insertion path.
	pfPass pfMode = iota
	// pfSkipAll: the batch's event type matches no pattern state; every
	// row takes the skip path without evaluating anything.
	pfSkipAll
	// pfCols: evaluate the column predicates into the selection bitmap.
	pfCols
)

// pfPred is one vectorizable vertex predicate with its slots resolved
// against the batch schema (rs < 0 when the right-hand side is the
// constant in col.Const).
type pfPred struct {
	col    predicate.Column
	ls, rs int
}

// batchPrefilter is the per-(engine, schema) vectorized pre-filter:
// recognized vertex predicates evaluated straight off the batch's
// dense numeric columns into a pooled selection bitmap. Built once per
// schema per engine and cached (Engine.prefilters) with its bitmaps,
// so steady-state batch ingest allocates nothing.
type batchPrefilter struct {
	sch  *event.Schema
	mode pfMode
	// preds, flattened per matching state: state k's predicates are
	// preds[stateOff[k]:stateOff[k+1]]. A row must be fully processed
	// when every predicate of at least one state passes.
	preds    []pfPred
	stateOff []int
	// pass is the pooled selection bitmap (bit i set: row lo+i may
	// match and takes the full path); tmp is the per-state AND scratch.
	pass []uint64
	tmp  []uint64
}

// prefilterFor resolves (building and caching on first encounter) the
// engine's pre-filter for b's schema and evaluates it over rows
// [lo, hi). A nil return means no filtering applies (pass-through).
func (e *Engine) prefilterFor(b *event.Batch, lo, hi int) *batchPrefilter {
	sch := b.Schema()
	var pf *batchPrefilter
	for _, p := range e.prefilters {
		if p.sch == sch {
			pf = p
			break
		}
	}
	if pf == nil {
		pf = e.buildPrefilter(sch)
		e.prefilters = append(e.prefilters, pf)
	}
	switch pf.mode {
	case pfPass:
		return nil
	case pfCols:
		pf.eval(b, lo, hi)
	}
	return pf
}

// buildPrefilter derives the pre-filter of one batch schema. The skip
// path replicates a predicate-failing Graph.Process only for a single
// dependency-free graph (no negation bookkeeping, no sibling graphs),
// and every vertex predicate of every matching state must have a
// provably-equivalent column form — anything else is pass-through.
func (e *Engine) buildPrefilter(sch *event.Schema) *batchPrefilter {
	pf := &batchPrefilter{sch: sch, mode: pfPass}
	if e.transactional || !e.plan.Simple() || len(e.plan.Subs) != 1 {
		return pf
	}
	spec := e.plan.Subs[0]
	states := spec.Tmpl.ByType[sch.Type]
	if len(states) == 0 {
		pf.mode = pfSkipAll
		return pf
	}
	pf.stateOff = append(pf.stateOff, 0)
	for _, sIdx := range states {
		vps := spec.VertexPreds[sIdx]
		if len(vps) == 0 {
			// The state matches unconditionally; no row can be skipped.
			return &batchPrefilter{sch: sch, mode: pfPass}
		}
		for _, vp := range vps {
			c := predicate.ColumnOf(vp.Expr)
			if c == nil {
				return &batchPrefilter{sch: sch, mode: pfPass}
			}
			ls, rs, ok := c.Slots(sch)
			if !ok {
				return &batchPrefilter{sch: sch, mode: pfPass}
			}
			pf.preds = append(pf.preds, pfPred{col: *c, ls: ls, rs: rs})
		}
		pf.stateOff = append(pf.stateOff, len(pf.preds))
	}
	pf.mode = pfCols
	return pf
}

// eval fills the selection bitmap for rows [lo, hi): bit i set means
// row lo+i passes at least one state's full predicate conjunction.
func (pf *batchPrefilter) eval(b *event.Batch, lo, hi int) {
	n := hi - lo
	words := (n + 63) / 64
	if cap(pf.pass) < words {
		pf.pass = make([]uint64, words)
		pf.tmp = make([]uint64, words)
	}
	pass := pf.pass[:words]
	tmp := pf.tmp[:words]
	for i := range pass {
		pass[i] = 0
	}
	col, stride := b.NumColumn()
	for s := 0; s < len(pf.stateOff)-1; s++ {
		for i := range tmp {
			tmp[i] = ^uint64(0)
		}
		if r := n & 63; r != 0 {
			tmp[words-1] = 1<<uint(r) - 1
		}
		for pi := pf.stateOff[s]; pi < pf.stateOff[s+1]; pi++ {
			applyPred(&pf.preds[pi], col, stride, lo, n, tmp)
		}
		for i := range pass {
			pass[i] |= tmp[i]
		}
	}
}

// applyPred ANDs one column predicate into the state bitmap, sweeping
// the strided numeric column once. EvalVals matches the scalar
// evaluator bit for bit (NaN marks absence and fails every comparison
// but !=, exactly as Compiled.EvalEvent behaves on map-free rows).
func applyPred(p *pfPred, col []float64, stride, lo, n int, tmp []uint64) {
	base := lo*stride + p.ls
	if p.rs < 0 {
		c := p.col.Const
		for i := 0; i < n; i++ {
			if tmp[i>>6]&(1<<uint(i&63)) == 0 {
				continue
			}
			if !p.col.EvalVals(col[base+i*stride], c) {
				tmp[i>>6] &^= 1 << uint(i&63)
			}
		}
		return
	}
	d := p.rs - p.ls
	for i := 0; i < n; i++ {
		if tmp[i>>6]&(1<<uint(i&63)) == 0 {
			continue
		}
		l := col[base+i*stride]
		if !p.col.EvalVals(l, col[base+i*stride+d]) {
			tmp[i>>6] &^= 1 << uint(i&63)
		}
	}
}

// skip reports whether row lo+i (relative to the eval window) cannot
// match any state and may take the skip path.
func (pf *batchPrefilter) skip(i int) bool {
	if pf.mode == pfSkipAll {
		return true
	}
	return pf.pass[i>>6]&(1<<uint(i&63)) == 0
}

// passEnd returns the first row index in [from, n) whose pass bit is
// set, or n — the exclusive end of the skip span starting at from,
// found a bitmap word at a time.
func (pf *batchPrefilter) passEnd(from, n int) int {
	if pf.mode == pfSkipAll {
		return n
	}
	i := from
	for i < n {
		w := pf.pass[i>>6] >> uint(i&63)
		if w != 0 {
			i += bits.TrailingZeros64(w)
			if i > n {
				return n
			}
			return i
		}
		i = (i>>6 + 1) << 6
	}
	return n
}
