package pattern

import "fmt"

// Kleene star and optional sub-patterns are syntactic sugar (paper §9):
//
//	SEQ(Pi*, Pj) = SEQ(Pi+, Pj) ∨ Pj
//	SEQ(Pi?, Pj) = SEQ(Pi, Pj) ∨ Pj
//
// Expand rewrites a pattern containing * and ? into the equivalent set
// of sugar-free branches whose disjunction equals the original pattern.
// A pattern without sugar expands to itself. The empty branch (ε) that
// arises when every component of the pattern is optional is dropped,
// since trends are never empty (Lemma 1).
//
// Branches may overlap (the same trend can match several branches); the
// runtime combines branch counts with inclusion–exclusion over product
// templates (see internal/core compose).

// MaxExpandBranches bounds the number of branches Expand may produce;
// beyond it the pattern is considered pathological.
const MaxExpandBranches = 32

// epsilon is a sentinel marking the empty branch during expansion.
var epsilon = &Node{Kind: KindSeq}

// Expand returns the sugar-free branches of p. Each returned branch
// contains only KindEvent, KindSeq, KindPlus, and KindNot nodes. OR at
// the top level contributes its branches directly; AND is not expanded
// here (the runtime composes conjunction counts separately).
func Expand(p *Node) ([]*Node, error) {
	bs, err := expand(p)
	if err != nil {
		return nil, err
	}
	var out []*Node
	for _, b := range bs {
		if b == epsilon {
			continue
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pattern: %s matches only the empty trend", p)
	}
	return out, nil
}

func expand(p *Node) ([]*Node, error) {
	switch p.Kind {
	case KindEvent:
		return []*Node{p.Clone()}, nil
	case KindPlus:
		inner, err := expand(p.Children[0])
		if err != nil {
			return nil, err
		}
		// (b1 | b2 | ...)+ is not a disjunction of bi+ when branches can
		// interleave across iterations; only the single-branch case is a
		// sound rewrite.
		if len(inner) != 1 {
			return nil, fmt.Errorf("pattern: Kleene plus over optional/starred alternatives (%s) is not expressible as a disjunction of positive patterns", p)
		}
		if inner[0] == epsilon {
			return nil, fmt.Errorf("pattern: (ε)+ in %s", p)
		}
		return []*Node{Plus(inner[0])}, nil
	case KindStar:
		inner, err := expand(p.Children[0])
		if err != nil {
			return nil, err
		}
		if len(inner) != 1 || inner[0] == epsilon {
			return nil, fmt.Errorf("pattern: Kleene star over optional/starred alternatives (%s) is not expressible as a disjunction of positive patterns", p)
		}
		return []*Node{Plus(inner[0]), epsilon}, nil
	case KindOpt:
		inner, err := expand(p.Children[0])
		if err != nil {
			return nil, err
		}
		return append(inner, epsilon), nil
	case KindNot:
		inner, err := expand(p.Children[0])
		if err != nil {
			return nil, err
		}
		if len(inner) != 1 || inner[0] == epsilon {
			return nil, fmt.Errorf("pattern: NOT over optional/starred alternatives (%s) is not supported", p)
		}
		return []*Node{Not(inner[0])}, nil
	case KindSeq:
		branches := []*Node{epsilon}
		for _, c := range p.Children {
			cb, err := expand(c)
			if err != nil {
				return nil, err
			}
			var next []*Node
			for _, b := range branches {
				for _, n := range cb {
					next = append(next, seqAppend(b, n))
					if len(next) > MaxExpandBranches {
						return nil, fmt.Errorf("pattern: expansion of %s exceeds %d branches", p, MaxExpandBranches)
					}
				}
			}
			branches = next
		}
		out := make([]*Node, 0, len(branches))
		for _, b := range branches {
			out = append(out, normalizeSeq(b))
		}
		return out, nil
	case KindOr:
		var out []*Node
		for _, c := range p.Children {
			cb, err := expand(c)
			if err != nil {
				return nil, err
			}
			out = append(out, cb...)
			if len(out) > MaxExpandBranches {
				return nil, fmt.Errorf("pattern: expansion of %s exceeds %d branches", p, MaxExpandBranches)
			}
		}
		return out, nil
	case KindAnd:
		return nil, fmt.Errorf("pattern: AND inside a larger pattern is not supported; use AND only at the top level")
	}
	return nil, fmt.Errorf("pattern: unknown kind %v", p.Kind)
}

// seqAppend concatenates two (possibly ε, possibly SEQ) branches.
func seqAppend(a, b *Node) *Node {
	if a == epsilon {
		return b
	}
	if b == epsilon {
		return a
	}
	var kids []*Node
	if a.Kind == KindSeq && a != epsilon {
		kids = append(kids, a.Children...)
	} else {
		kids = append(kids, a)
	}
	if b.Kind == KindSeq {
		kids = append(kids, b.Children...)
	} else {
		kids = append(kids, b)
	}
	return &Node{Kind: KindSeq, Children: kids}
}

func normalizeSeq(n *Node) *Node {
	if n == epsilon {
		return epsilon
	}
	if n.Kind == KindSeq && len(n.Children) == 1 {
		return n.Children[0]
	}
	return n
}

// UnrollMinLength rewrites a Kleene-plus pattern so that its matches
// contain at least minLen iterations of the repeated sub-pattern
// (paper §9, "Constraints on Minimal Trend Length"): A+ with minimum 3
// becomes SEQ(A, A, A+). The result has fresh unique aliases.
func UnrollMinLength(p *Node, minLen int) (*Node, error) {
	if minLen <= 1 {
		return p.Clone(), nil
	}
	if p.Kind != KindPlus {
		return nil, fmt.Errorf("pattern: minimal trend length unrolling applies to a Kleene plus pattern, got %s", p)
	}
	body := p.Children[0]
	kids := make([]*Node, 0, minLen)
	for i := 0; i < minLen-1; i++ {
		kids = append(kids, body.Clone())
	}
	kids = append(kids, Plus(body.Clone()))
	out := Seq(kids...)
	// Copies reuse aliases; rename them to keep state identities unique,
	// keeping the original alias as a label so predicates written
	// against it attach to every copy.
	for _, l := range out.EventNodes() {
		if l.Label == "" {
			l.Label = l.Alias
		}
		l.Alias = ""
	}
	EnsureAliases(out)
	return out, nil
}
