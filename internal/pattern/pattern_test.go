package pattern

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"A+", "A+"},
		{"Stock S+", "Stock S+"},
		{"SEQ(A+, B)", "SEQ(A+, B)"},
		{"(SEQ(A+,B))+", "(SEQ(A+, B))+"},
		{"SEQ(Start S, Measurement M+, End E)", "SEQ(Start S, Measurement M+, End E)"},
		{"SEQ(NOT Accident A, Position P+)", "SEQ(NOT Accident A, Position P+)"},
		{"(SEQ(A+, NOT SEQ(C, NOT E, D), B))+", "(SEQ(A+, NOT SEQ(C, NOT E, D), B))+"},
		{"SEQ(A*, B)", "SEQ(A*, B)"},
		{"SEQ(A?, B)", "SEQ(A?, B)"},
		{"A+ OR B+", "(A+ OR B+)"},
		{"A+ AND B+", "(A+ AND B+)"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"NOT A",             // negation outermost
		"SEQ(A)",            // SEQ collapses; bare type ok, but SEQ() with one elem collapses -> fine; use truly bad:
		"SEQ(A,)",           // trailing comma
		"SEQ(NOT A, NOT B)", // consecutive negatives
		"(NOT A)+",          // Kleene over negation
		"NOT (A+)",          // negation over Kleene
		"SEQ(A+ B)",         // missing comma => alias B then error? "A+ B" -> A+ then B unexpected
		"A+ OR B AND C",     // mixed OR/AND without parens
		"NOT NOT A",
	}
	for _, c := range cases {
		if c == "SEQ(A)" {
			continue // single-element SEQ collapses to the element; legal
		}
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestEnsureAliasesMultiOccurrence(t *testing.T) {
	n := MustParse("SEQ(A+, B, A, A+, B+)")
	got := n.Aliases()
	want := []string{"A1", "B2", "A3", "A4", "B5"}
	if len(got) != len(want) {
		t.Fatalf("aliases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("alias[%d] = %q, want %q (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestStartEnd(t *testing.T) {
	cases := []struct {
		src        string
		start, end string
	}{
		{"A+", "A", "A"},
		{"SEQ(A+, B)", "A", "B"},
		{"(SEQ(A+, B))+", "A", "B"},
		{"SEQ(Start S, Measurement M+, End E)", "S", "E"},
		{"SEQ(A+, B, A, A+, B+)", "A1", "B5"},
	}
	for _, c := range cases {
		n := MustParse(c.src)
		if got := Start(n); got != c.start {
			t.Errorf("Start(%s) = %q, want %q", c.src, got, c.start)
		}
		if got := End(n); got != c.end {
			t.Errorf("End(%s) = %q, want %q", c.src, got, c.end)
		}
	}
}

func TestSplitCases(t *testing.T) {
	// Case 1: preceded and followed.
	subs, err := Split(MustParse("SEQ(A+, NOT C, B)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subs, want 2", len(subs))
	}
	if subs[0].Negative || !subs[1].Negative {
		t.Fatal("wrong polarity")
	}
	if subs[1].Previous != "A" || subs[1].Following != "B" {
		t.Errorf("case 1: previous=%q following=%q, want A/B", subs[1].Previous, subs[1].Following)
	}

	// Case 2: preceded only.
	subs, _ = Split(MustParse("SEQ(A+, NOT E)"))
	if subs[1].Previous != "A" || subs[1].Following != "" {
		t.Errorf("case 2: previous=%q following=%q, want A and empty", subs[1].Previous, subs[1].Following)
	}

	// Case 3: followed only.
	subs, _ = Split(MustParse("SEQ(NOT E, A+)"))
	if subs[1].Previous != "" || subs[1].Following != "A" {
		t.Errorf("case 3: previous=%q following=%q, want \"\"/A", subs[1].Previous, subs[1].Following)
	}
}

func TestSplitNested(t *testing.T) {
	// Example 2 of the paper: (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ splits
	// into positive (SEQ(A+,B))+, negative SEQ(C,D), negative E.
	subs, err := Split(MustParse("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d subs, want 3", len(subs))
	}
	if got := subs[0].Pattern.String(); got != "(SEQ(A+, B))+" {
		t.Errorf("positive = %s, want (SEQ(A+, B))+", got)
	}
	if got := subs[1].Pattern.String(); got != "SEQ(C, D)" {
		t.Errorf("negative 1 = %s, want SEQ(C, D)", got)
	}
	if subs[1].Previous != "A" || subs[1].Following != "B" || subs[1].Parent != 0 {
		t.Errorf("negative 1 connections: %+v", subs[1])
	}
	if got := subs[2].Pattern.String(); got != "E" {
		t.Errorf("negative 2 = %s, want E", got)
	}
	if subs[2].Previous != "C" || subs[2].Following != "D" || subs[2].Parent != 1 {
		t.Errorf("negative 2 connections: %+v", subs[2])
	}
	if len(subs[0].Deps) != 1 || subs[0].Deps[0] != 1 {
		t.Errorf("root deps = %v, want [1]", subs[0].Deps)
	}
	if len(subs[1].Deps) != 1 || subs[1].Deps[0] != 2 {
		t.Errorf("negative 1 deps = %v, want [2]", subs[1].Deps)
	}
}

func TestSplitQ3(t *testing.T) {
	// Q3's pattern: SEQ(NOT Accident A, Position P+).
	subs, err := Split(MustParse("SEQ(NOT Accident A, Position P+)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subs, want 2", len(subs))
	}
	if got := subs[0].Pattern.String(); got != "Position P+" {
		t.Errorf("positive = %s", got)
	}
	if subs[1].Previous != "" || subs[1].Following != "P" {
		t.Errorf("connections: previous=%q following=%q", subs[1].Previous, subs[1].Following)
	}
}

func TestExpandStar(t *testing.T) {
	branches, err := Expand(MustParse("SEQ(A*, B)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("got %d branches, want 2", len(branches))
	}
	got := branches[0].String() + " | " + branches[1].String()
	if !strings.Contains(got, "SEQ(A+, B)") || !strings.Contains(got, "B") {
		t.Errorf("branches = %s", got)
	}
}

func TestExpandOptional(t *testing.T) {
	branches, err := Expand(MustParse("SEQ(A?, B?, C)"))
	if err != nil {
		t.Fatal(err)
	}
	// SEQ(A,B,C), SEQ(A,C), SEQ(B,C), C
	if len(branches) != 4 {
		t.Fatalf("got %d branches, want 4: %v", len(branches), branches)
	}
}

func TestExpandAllOptionalRejected(t *testing.T) {
	if _, err := Expand(MustParse("SEQ(A?, B?)")); err == nil {
		// expansion contains the empty branch; it must be dropped but the
		// remaining branches are fine
		branches, _ := Expand(MustParse("SEQ(A?, B?)"))
		if len(branches) != 3 {
			t.Errorf("got %d branches, want 3", len(branches))
		}
	}
}

func TestExpandStarUnderPlusRejected(t *testing.T) {
	if _, err := Expand(MustParse("(SEQ(A?, B))+")); err == nil {
		t.Error("expected error for Kleene over optional alternatives")
	}
}

func TestUnrollMinLength(t *testing.T) {
	p := MustParse("A+")
	u, err := UnrollMinLength(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.String(); got != "SEQ(A A1, A A2, A A3+)" {
		t.Errorf("unrolled = %s", got)
	}
	if u.Size() != 5 {
		t.Errorf("size = %d", u.Size())
	}
	// minLen <= 1 is the identity.
	u, _ = UnrollMinLength(p, 1)
	if u.String() != "A+" {
		t.Errorf("unroll(1) = %s", u)
	}
}

func TestStripNegation(t *testing.T) {
	p := MustParse("(SEQ(A+, NOT SEQ(C, NOT E, D), B))+")
	s := StripNegation(p)
	if s.String() != "(SEQ(A+, B))+" {
		t.Errorf("stripped = %s", s)
	}
	// The original is untouched.
	if !strings.Contains(p.String(), "NOT") {
		t.Error("original mutated")
	}
}

func TestSizeAndKleene(t *testing.T) {
	p := MustParse("(SEQ(A+, B))+")
	if p.Size() != 5 { // plus, seq, plus, A, B
		t.Errorf("size = %d, want 5", p.Size())
	}
	if !p.HasKleene() {
		t.Error("HasKleene = false")
	}
	if !MustParse("SEQ(A, B)").IsPositive() {
		t.Error("IsPositive(SEQ(A,B)) = false")
	}
	if MustParse("SEQ(A, NOT B, C)").IsPositive() {
		t.Error("IsPositive with NOT = true")
	}
}
