package pattern

import "fmt"

// SubPattern is one of the sub-patterns produced by splitting a pattern
// with nested negation (paper §5.1, Algorithm 3).
//
// The root sub-pattern (index 0) is positive. Every other sub-pattern is
// negative: a match of it invalidates events in its parent's GRETA
// graph. Previous and Following name the connection points *in the
// parent sub-pattern*:
//
//   - Previous is the end alias of the positive sub-pattern immediately
//     preceding the negation (events of this alias are invalidated).
//     Empty for Case 3, SEQ(NOT N, Pj).
//   - Following is the start alias of the positive sub-pattern
//     immediately following the negation (connections into this alias
//     are blocked). Empty for Case 2, SEQ(Pi, NOT N).
type SubPattern struct {
	Pattern   *Node // negation-free pattern of this sub-graph
	Negative  bool
	Previous  string
	Following string
	Parent    int   // index of the parent sub-pattern; -1 for the root
	Deps      []int // indices of negative sub-patterns constraining this one
}

// Split separates pattern p into its positive root and negative
// sub-patterns per Algorithm 3. Index 0 of the result is always the
// root positive sub-pattern (p with all negation stripped); subsequent
// entries are negative sub-patterns in discovery order, each itself
// negation-free, with nested negations split recursively (a negative
// sub-pattern may depend on further negative sub-patterns, as in
// (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ which splits into the positive
// (SEQ(A+,B))+, the negative SEQ(C,D), and the negative E).
func Split(p *Node) ([]*SubPattern, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	root := &SubPattern{Pattern: StripNegation(p), Parent: -1}
	if root.Pattern == nil {
		return nil, fmt.Errorf("pattern: %s has no positive part", p)
	}
	subs := []*SubPattern{root}
	if err := split(p, 0, "", "", &subs); err != nil {
		return nil, err
	}
	return subs, nil
}

// split walks the original (negation-carrying) pattern of sub-pattern
// parentIdx, tracking the previous/following aliases inherited from the
// enclosing context, and registers each NOT child it encounters.
func split(n *Node, parentIdx int, prevCtx, follCtx string, subs *[]*SubPattern) error {
	switch n.Kind {
	case KindEvent:
		return nil
	case KindPlus, KindStar, KindOpt:
		// Negation inside a Kleene constrains each iteration's preceding
		// and following positive parts; the loop-back edge adds no new
		// negation context (paper Fig. 7(a)).
		return split(n.Children[0], parentIdx, prevCtx, follCtx, subs)
	case KindSeq:
		for i, c := range n.Children {
			prev := prevCtx
			for j := i - 1; j >= 0; j-- {
				if n.Children[j].Kind != KindNot {
					prev = End(StripNegation(n.Children[j]))
					break
				}
			}
			foll := follCtx
			for j := i + 1; j < len(n.Children); j++ {
				if n.Children[j].Kind != KindNot {
					foll = Start(StripNegation(n.Children[j]))
					break
				}
			}
			if c.Kind == KindNot {
				inner := c.Children[0]
				neg := &SubPattern{
					Pattern:   StripNegation(inner),
					Negative:  true,
					Previous:  prev,
					Following: foll,
					Parent:    parentIdx,
				}
				if neg.Pattern == nil {
					return fmt.Errorf("pattern: negative sub-pattern %s has no positive part", inner)
				}
				*subs = append(*subs, neg)
				idx := len(*subs) - 1
				(*subs)[parentIdx].Deps = append((*subs)[parentIdx].Deps, idx)
				// Nested negations inside the negative sub-pattern live in
				// the negative graph; their context starts fresh there.
				if err := split(inner, idx, "", "", subs); err != nil {
					return err
				}
			} else {
				if err := split(c, parentIdx, prev, foll, subs); err != nil {
					return err
				}
			}
		}
		return nil
	case KindNot:
		// Outermost NOT is rejected by Validate; NOT reached here only
		// via SEQ handling above.
		return fmt.Errorf("pattern: unexpected NOT outside SEQ")
	case KindOr, KindAnd:
		for _, c := range n.Children {
			if err := split(c, parentIdx, prevCtx, follCtx, subs); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("pattern: unknown kind %v", n.Kind)
}
