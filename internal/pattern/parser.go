package pattern

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/greta-cep/greta/internal/event"
)

// Parse parses the paper's PATTERN clause surface syntax (Fig. 2 plus
// the §9 sugar):
//
//	P := EventType [Alias] | P '+' | P '*' | P '?' | NOT P
//	   | SEQ(P, P, ...) | (P) | P OR P | P AND P
//
// Examples from the paper:
//
//	Stock S+
//	SEQ(Start S, Measurement M+, End E)
//	SEQ(NOT Accident A, Position P+)
//	(SEQ(A+, NOT SEQ(C, NOT E, D), B))+
//
// Parse assigns unique aliases (EnsureAliases) and validates the
// structural rules of §2.
func Parse(src string) (*Node, error) {
	p := &parser{toks: lex(src), src: src}
	n, err := p.parseOrAnd()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("pattern: unexpected %q after pattern in %q", p.peek().text, src)
	}
	EnsureAliases(n)
	if err := Validate(n); err != nil {
		return nil, err
	}
	return n, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokStar
	tokQuest
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+"})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*"})
			i++
		case c == '?':
			toks = append(toks, token{tokQuest, "?"})
			i++
		default:
			j := i
			for j < len(src) && (isIdentRune(rune(src[j]))) {
				j++
			}
			if j == i {
				toks = append(toks, token{tokEOF, string(c)})
				return toks
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }
func (p *parser) isKw(k string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, k)
}

// parseOrAnd handles the lowest-precedence binary operators OR and AND.
// Mixing OR and AND without parentheses is rejected to avoid silent
// precedence surprises.
func (p *parser) parseOrAnd() (*Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var op string
	children := []*Node{first}
	for p.isKw("OR") || p.isKw("AND") {
		t := strings.ToUpper(p.next().text)
		if op == "" {
			op = t
		} else if op != t {
			return nil, fmt.Errorf("pattern: mixing OR and AND requires parentheses in %q", p.src)
		}
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, n)
	}
	if op == "" {
		return first, nil
	}
	if op == "OR" {
		return Or(children...), nil
	}
	return And(children...), nil
}

// parseUnary parses a primary followed by any number of postfix +, *, ?.
func (p *parser) parseUnary() (*Node, error) {
	n, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokPlus:
			p.next()
			n = Plus(n)
		case tokStar:
			p.next()
			n = Star(n)
		case tokQuest:
			p.next()
			n = Opt(n)
		default:
			return n, nil
		}
	}
}

func (p *parser) parsePrimary() (*Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		n, err := p.parseOrAnd()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("pattern: missing ')' in %q", p.src)
		}
		p.next()
		return n, nil
	case p.isKw("NOT"):
		p.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(n), nil
	case p.isKw("SEQ"):
		p.next()
		if p.peek().kind != tokLParen {
			return nil, fmt.Errorf("pattern: SEQ requires '(' in %q", p.src)
		}
		p.next()
		var kids []*Node
		for {
			n, err := p.parseOrAnd()
			if err != nil {
				return nil, err
			}
			kids = append(kids, n)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("pattern: missing ')' closing SEQ in %q", p.src)
		}
		p.next()
		if len(kids) == 1 {
			return kids[0], nil
		}
		return Seq(kids...), nil
	case t.kind == tokIdent:
		if !isNameStart(t.text) {
			return nil, fmt.Errorf("pattern: event type %q must start with a letter or underscore", t.text)
		}
		p.next()
		typ := event.Type(t.text)
		// Optional alias: a following identifier that is not a keyword.
		if nt := p.peek(); nt.kind == tokIdent && !isKeyword(nt.text) {
			if !isNameStart(nt.text) {
				return nil, fmt.Errorf("pattern: alias %q must start with a letter or underscore", nt.text)
			}
			p.next()
			return EventAs(typ, nt.text), nil
		}
		return &Node{Kind: KindEvent, Type: typ}, nil
	default:
		return nil, fmt.Errorf("pattern: unexpected %q in %q", t.text, p.src)
	}
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SEQ", "NOT", "OR", "AND":
		return true
	}
	return false
}

// isNameStart reports whether s is a valid type/alias name: it must
// begin with a letter or underscore so names survive the predicate
// grammar (a digit-leading name would lex as a number there).
func isNameStart(s string) bool {
	if s == "" {
		return false
	}
	r := rune(s[0])
	return unicode.IsLetter(r) || r == '_'
}
