// Package pattern implements the Kleene pattern model of GRETA (paper
// §2 Definition 1): event types, event sequence (SEQ), Kleene plus, and
// negation (NOT), plus the syntactic-sugar operators of §9 (Kleene star,
// optional, disjunction, conjunction) which are rewritten away before
// execution.
//
// It also implements the pattern split algorithm (paper §5.1,
// Algorithm 3) that separates a pattern with nested negation into a
// positive root sub-pattern and a forest of negative sub-patterns, each
// annotated with its previous and following connection points.
package pattern

import (
	"fmt"
	"strings"

	"github.com/greta-cep/greta/internal/event"
)

// Kind discriminates pattern AST nodes.
type Kind uint8

// Pattern node kinds. KindEvent..KindNot are the core operators of
// Definition 1; KindStar, KindOpt, KindOr, KindAnd are the §9 extensions.
const (
	KindEvent Kind = iota
	KindSeq
	KindPlus
	KindNot
	KindStar
	KindOpt
	KindOr
	KindAnd
)

func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "EVENT"
	case KindSeq:
		return "SEQ"
	case KindPlus:
		return "PLUS"
	case KindNot:
		return "NOT"
	case KindStar:
		return "STAR"
	case KindOpt:
		return "OPT"
	case KindOr:
		return "OR"
	case KindAnd:
		return "AND"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is a pattern AST node.
//
// KindEvent uses Type and Alias (Alias defaults to the type name and is
// made unique by EnsureAliases when a type occurs more than once, per
// the §9 multi-occurrence extension). KindSeq, KindOr, and KindAnd use
// Children (n-ary); KindPlus, KindStar, KindOpt, and KindNot use
// Children[0].
type Node struct {
	Kind  Kind
	Type  event.Type
	Alias string
	// Label optionally carries a user-facing alias distinct from the
	// (unique) Alias: pattern rewrites that copy leaves (minimal trend
	// length unrolling, §9) keep the original alias here so predicates
	// written against it still attach to every copy.
	Label    string
	Children []*Node
}

// Event returns an event-type leaf with the alias defaulting to the
// type name.
func Event(t event.Type) *Node { return &Node{Kind: KindEvent, Type: t, Alias: string(t)} }

// EventAs returns an event-type leaf with an explicit alias, as in the
// paper's "PATTERN Stock S+" (type Stock, alias S).
func EventAs(t event.Type, alias string) *Node {
	return &Node{Kind: KindEvent, Type: t, Alias: alias}
}

// Seq returns SEQ(children...).
func Seq(children ...*Node) *Node { return &Node{Kind: KindSeq, Children: children} }

// Plus returns p+.
func Plus(p *Node) *Node { return &Node{Kind: KindPlus, Children: []*Node{p}} }

// Star returns p* (syntactic sugar, §9).
func Star(p *Node) *Node { return &Node{Kind: KindStar, Children: []*Node{p}} }

// Opt returns p? (syntactic sugar, §9).
func Opt(p *Node) *Node { return &Node{Kind: KindOpt, Children: []*Node{p}} }

// Not returns NOT p.
func Not(p *Node) *Node { return &Node{Kind: KindNot, Children: []*Node{p}} }

// Or returns (children[0] OR children[1] OR ...), §9 disjunction.
func Or(children ...*Node) *Node { return &Node{Kind: KindOr, Children: children} }

// And returns (children[0] AND children[1] AND ...), §9 conjunction.
func And(children ...*Node) *Node { return &Node{Kind: KindAnd, Children: children} }

// String renders the pattern in the paper's surface syntax.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	switch n.Kind {
	case KindEvent:
		if n.Alias != "" && n.Alias != string(n.Type) {
			return fmt.Sprintf("%s %s", n.Type, n.Alias)
		}
		return string(n.Type)
	case KindSeq:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return "SEQ(" + strings.Join(parts, ", ") + ")"
	case KindPlus:
		return wrap(n.Children[0]) + "+"
	case KindStar:
		return wrap(n.Children[0]) + "*"
	case KindOpt:
		return wrap(n.Children[0]) + "?"
	case KindNot:
		return "NOT " + n.Children[0].String()
	case KindOr:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	case KindAnd:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = c.String()
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	}
	return "?"
}

func wrap(n *Node) string {
	if n.Kind == KindEvent {
		return n.String()
	}
	return "(" + n.String() + ")"
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Type: n.Type, Alias: n.Alias, Label: n.Label}
	if n.Children != nil {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Size is the number of event types and operators in the pattern
// (paper Definition 1).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// HasKleene reports whether the pattern contains at least one Kleene
// plus (or star), i.e., whether it is a Kleene pattern per Definition 1.
func (n *Node) HasKleene() bool {
	if n == nil {
		return false
	}
	if n.Kind == KindPlus || n.Kind == KindStar {
		return true
	}
	for _, c := range n.Children {
		if c.HasKleene() {
			return true
		}
	}
	return false
}

// IsPositive reports whether the pattern contains no negation.
func (n *Node) IsPositive() bool {
	if n == nil {
		return true
	}
	if n.Kind == KindNot {
		return false
	}
	for _, c := range n.Children {
		if !c.IsPositive() {
			return false
		}
	}
	return true
}

// EventNodes appends all KindEvent leaves in left-to-right order.
func (n *Node) EventNodes() []*Node {
	var out []*Node
	n.walk(func(m *Node) {
		if m.Kind == KindEvent {
			out = append(out, m)
		}
	})
	return out
}

func (n *Node) walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}

// Aliases returns the aliases of all event leaves in order.
func (n *Node) Aliases() []string {
	nodes := n.EventNodes()
	out := make([]string, len(nodes))
	for i, m := range nodes {
		out[i] = m.Alias
	}
	return out
}

// EnsureAliases makes every event leaf carry a unique alias. Leaves that
// already have distinct aliases are untouched; when the same alias (or
// bare type) occurs several times, occurrences are renamed by appending
// their 1-based position among all event leaves, following the §9
// convention where SEQ(A+,B,A,A+,B+) becomes SEQ(A1+,B2,A3,A4+,B5+).
func EnsureAliases(n *Node) {
	leaves := n.EventNodes()
	for _, l := range leaves {
		if l.Alias == "" {
			l.Alias = string(l.Type)
		}
	}
	count := map[string]int{}
	for _, l := range leaves {
		count[l.Alias]++
	}
	for i, l := range leaves {
		if count[l.Alias] > 1 {
			l.Alias = fmt.Sprintf("%s%d", l.Alias, i+1)
		}
	}
}

// Validate enforces the structural assumptions of paper §2:
//   - negation appears within an event sequence (never outermost),
//   - negation applies to an event sequence or an event type (never to
//     a Kleene or another negation, since NOT(P+) ≡ (NOT P)+ ≡ NOT P),
//   - no two consecutive negative sub-patterns inside a SEQ (equivalent
//     to NOT SEQ(Pi,Pj)),
//   - aliases of event leaves are unique (call EnsureAliases first),
//   - every operator node has the right arity.
func Validate(n *Node) error {
	if n == nil {
		return fmt.Errorf("pattern: empty pattern")
	}
	if n.Kind == KindNot {
		return fmt.Errorf("pattern: negation may not be the outermost operator")
	}
	seen := map[string]bool{}
	for _, l := range n.EventNodes() {
		if l.Alias == "" {
			return fmt.Errorf("pattern: event type %s has no alias", l.Type)
		}
		if seen[l.Alias] {
			return fmt.Errorf("pattern: duplicate alias %q (call EnsureAliases)", l.Alias)
		}
		seen[l.Alias] = true
	}
	return validate(n)
}

func validate(n *Node) error {
	switch n.Kind {
	case KindEvent:
		if n.Type == "" {
			return fmt.Errorf("pattern: event leaf with empty type")
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("pattern: event leaf with children")
		}
		return nil
	case KindSeq:
		if len(n.Children) < 2 {
			return fmt.Errorf("pattern: SEQ requires at least two sub-patterns, got %d", len(n.Children))
		}
		prevNeg := false
		for i, c := range n.Children {
			neg := c.Kind == KindNot
			if neg && prevNeg {
				return fmt.Errorf("pattern: consecutive negative sub-patterns in SEQ (position %d); rewrite as NOT SEQ(...)", i)
			}
			prevNeg = neg
			if err := validate(c); err != nil {
				return err
			}
		}
		return nil
	case KindPlus, KindStar, KindOpt:
		if len(n.Children) != 1 {
			return fmt.Errorf("pattern: %s requires exactly one sub-pattern", n.Kind)
		}
		if n.Children[0].Kind == KindNot {
			return fmt.Errorf("pattern: (NOT P)%s is equivalent to NOT P and not allowed", map[Kind]string{KindPlus: "+", KindStar: "*", KindOpt: "?"}[n.Kind])
		}
		return validate(n.Children[0])
	case KindNot:
		if len(n.Children) != 1 {
			return fmt.Errorf("pattern: NOT requires exactly one sub-pattern")
		}
		inner := n.Children[0]
		switch inner.Kind {
		case KindEvent, KindSeq:
			return validate(inner)
		case KindNot:
			return fmt.Errorf("pattern: NOT NOT P is not allowed")
		default:
			return fmt.Errorf("pattern: NOT applies to an event sequence or event type, not %s (NOT(P+) ≡ NOT P)", inner.Kind)
		}
	case KindOr, KindAnd:
		if len(n.Children) < 2 {
			return fmt.Errorf("pattern: %s requires at least two sub-patterns", n.Kind)
		}
		for _, c := range n.Children {
			if !c.IsPositive() {
				return fmt.Errorf("pattern: %s branches must be positive patterns", n.Kind)
			}
			if err := validate(c); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("pattern: unknown node kind %d", n.Kind)
}

// Start returns the start alias of a positive pattern per Algorithm 1
// lines 10–14: the alias of the first event type reachable at a trend's
// beginning. Negative children of a SEQ are skipped because they do not
// contribute events to the parent's trends.
func Start(n *Node) string {
	switch n.Kind {
	case KindEvent:
		return n.Alias
	case KindPlus, KindStar, KindOpt:
		return Start(n.Children[0])
	case KindSeq:
		for _, c := range n.Children {
			if c.Kind != KindNot {
				return Start(c)
			}
		}
	}
	return ""
}

// End returns the end alias of a positive pattern per Algorithm 1
// lines 15–19.
func End(n *Node) string {
	switch n.Kind {
	case KindEvent:
		return n.Alias
	case KindPlus, KindStar, KindOpt:
		return End(n.Children[0])
	case KindSeq:
		for i := len(n.Children) - 1; i >= 0; i-- {
			if n.Children[i].Kind != KindNot {
				return End(n.Children[i])
			}
		}
	}
	return ""
}

// StripNegation returns a copy of the pattern with all NOT children of
// SEQ nodes removed. A SEQ left with a single child collapses to that
// child. The result is the positive sub-pattern used to build the
// parent GRETA template.
func StripNegation(n *Node) *Node {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case KindEvent:
		return n.Clone()
	case KindSeq:
		var kids []*Node
		for _, c := range n.Children {
			if c.Kind == KindNot {
				continue
			}
			kids = append(kids, StripNegation(c))
		}
		switch len(kids) {
		case 0:
			return nil
		case 1:
			return kids[0]
		default:
			return &Node{Kind: KindSeq, Children: kids}
		}
	default:
		c := &Node{Kind: n.Kind, Type: n.Type, Alias: n.Alias, Label: n.Label}
		for _, ch := range n.Children {
			sc := StripNegation(ch)
			if sc != nil {
				c.Children = append(c.Children, sc)
			}
		}
		return c
	}
}
