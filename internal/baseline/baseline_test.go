package baseline_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline"
	"github.com/greta-cep/greta/internal/baseline/cet"
	"github.com/greta-cep/greta/internal/baseline/enum"
	"github.com/greta-cep/greta/internal/baseline/flat"
	"github.com/greta-cep/greta/internal/baseline/sase"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

func randStream(rng *rand.Rand, n int) []*event.Event {
	types := []event.Type{"A", "B", "C", "D"}
	var b event.Builder
	t := event.Time(1)
	for i := 0; i < n; i++ {
		if rng.Intn(4) != 0 {
			t += event.Time(rng.Intn(3) + 1)
		}
		b.AddStr(types[rng.Intn(len(types))], t,
			map[string]float64{"x": float64(rng.Intn(8))},
			map[string]string{"g": fmt.Sprintf("g%d", rng.Intn(2))})
	}
	return b.Events()
}

type resMap map[string][]float64

func key(group string, wid int64) string { return fmt.Sprintf("%s/%d", group, wid) }

func eq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func compare(t *testing.T, name, qsrc string, evs []*event.Event, got, want resMap) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s on %q: %d results, want %d\nstream %v\ngot %v\nwant %v",
			name, qsrc, len(got), len(want), evs, got, want)
		return
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Errorf("%s on %q: missing %s", name, qsrc, k)
			continue
		}
		for i := range wv {
			if !eq(gv[i], wv[i]) {
				t.Errorf("%s on %q: %s agg %d = %v, want %v\nstream %v",
					name, qsrc, k, i, gv[i], wv[i], evs)
			}
		}
	}
}

var crossQueries = []string{
	"RETURN COUNT(*) PATTERN A+",
	"RETURN COUNT(*) PATTERN SEQ(A+, B)",
	"RETURN COUNT(*), COUNT(A), MIN(A.x), MAX(A.x), SUM(A.x), AVG(A.x) PATTERN (SEQ(A+, B))+",
	"RETURN COUNT(*) PATTERN A+ WHERE A.x < NEXT(A).x",
	"RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)",
	"RETURN COUNT(*) PATTERN SEQ(A+, B) WITHIN 8 SLIDE 4",
	"RETURN COUNT(*), SUM(A.x) PATTERN A+ WHERE [g] GROUP-BY g",
}

// TestBaselinesMatchOracle cross-validates SASE, CET, and flattening
// against the enumerator (and hence transitively against GRETA, which
// the core tests validate against the same oracle).
func TestBaselinesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, qsrc := range crossQueries {
		q := query.MustParse(qsrc)
		for iter := 0; iter < 25; iter++ {
			evs := randStream(rng, 3+rng.Intn(9))
			oracle, err := enum.Run(q, evs)
			if err != nil {
				t.Fatal(err)
			}
			want := resMap{}
			for _, r := range oracle {
				if r.Count > 0 {
					want[key(r.Group, r.Wid)] = r.Values
				}
			}
			sr, _, err := sase.Run(q, evs, sase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := resMap{}
			for _, r := range sr {
				got[key(r.Group, r.Wid)] = r.Values
			}
			compare(t, "sase", qsrc, evs, got, want)

			cr, _, err := cet.Run(q, evs, cet.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got = resMap{}
			for _, r := range cr {
				got[key(r.Group, r.Wid)] = r.Values
			}
			compare(t, "cet", qsrc, evs, got, want)

			fr, fstats, err := flat.Run(q, evs, flat.Options{MaxLen: len(evs) + 1})
			if err != nil {
				t.Fatal(err)
			}
			if fstats.Truncated {
				t.Fatalf("flat truncated with MaxLen=%d", len(evs)+1)
			}
			got = resMap{}
			for _, r := range fr {
				got[key(r.Group, r.Wid)] = r.Values
			}
			compare(t, "flat", qsrc, evs, got, want)
		}
	}
}

// TestFlatTruncation: with a cap below the longest trend, flattening
// must flag the miss.
func TestFlatTruncation(t *testing.T) {
	var b event.Builder
	for i := 1; i <= 6; i++ {
		b.Add("A", event.Time(i), map[string]float64{"x": 1})
	}
	q := query.MustParse("RETURN COUNT(*) PATTERN A+")
	_, stats, err := flat.Run(q, b.Events(), flat.Options{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Error("expected truncation flag with MaxLen=3 over 6 a's")
	}
	// Full coverage yields 2^6-1 = 63 trends.
	res, stats2, err := flat.Run(q, b.Events(), flat.Options{MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Truncated {
		t.Error("unexpected truncation with MaxLen=6")
	}
	if len(res) != 1 || res[0].Values[0] != 63 {
		t.Errorf("count = %v, want 63", res)
	}
	if stats2.Queries == 0 {
		t.Error("no flattened queries recorded")
	}
}

// TestSASECap: the trend cap keeps exponential runs finite.
func TestSASECap(t *testing.T) {
	var b event.Builder
	for i := 1; i <= 20; i++ {
		b.Add("A", event.Time(i), nil)
	}
	q := query.MustParse("RETURN COUNT(*) PATTERN A+")
	_, stats, err := sase.Run(q, b.Events(), sase.Options{MaxTrends: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated || stats.Trends != 1000 {
		t.Errorf("cap not applied: %+v", stats)
	}
}

// TestCETCostProfile: CET materializes every sub-trend (node count =
// sum of per-vertex counts), far exceeding SASE's stored state.
func TestCETCostProfile(t *testing.T) {
	var b event.Builder
	for i := 1; i <= 10; i++ {
		b.Add("A", event.Time(i), nil)
	}
	q := query.MustParse("RETURN COUNT(*) PATTERN A+")
	_, cstats, err := cet.Run(q, b.Events(), cet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sub-trends ending at a_i number 2^(i-1); total = 2^10 - 1 = 1023.
	if cstats.Trends != 1023 {
		t.Errorf("CET nodes = %d, want 1023", cstats.Trends)
	}
	// GRETA stores 10 vertices and touches 45 edges for the same stream.
	plan, err := core.NewPlan(q, aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(plan)
	eng.Run(b.Stream())
	gs := eng.Stats()
	if gs.Inserted != 10 || gs.Edges != 45 {
		t.Errorf("GRETA inserted=%d edges=%d, want 10/45", gs.Inserted, gs.Edges)
	}
	if r := eng.Results(); len(r) != 1 || r[0].Values[0] != 1023 {
		t.Errorf("GRETA count = %v, want 1023", r)
	}
}

// TestBaselineStatsMonotone: more events → at least as many trends.
func TestBaselineStatsMonotone(t *testing.T) {
	q := query.MustParse("RETURN COUNT(*) PATTERN SEQ(A+, B)")
	rng := rand.New(rand.NewSource(5))
	evs := randStream(rng, 12)
	_, s1, err := sase.Run(q, evs[:6], sase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := sase.Run(q, evs, sase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Trends < s1.Trends {
		t.Errorf("trends decreased: %d -> %d", s1.Trends, s2.Trends)
	}
	_ = baseline.Stats{}
}
