// Package sase implements the SASE-style two-step baseline (paper
// §10.1): "(1) Each event e is stored in a stack and pointers to e's
// previous events in a trend are stored. For each window, a DFS-based
// algorithm traverses these pointers to construct all trends. (2) These
// trends are aggregated."
//
// The DFS re-computes every sub-trend for each longer trend containing
// it, so latency grows exponentially with the number of events, while
// memory stays low: only the stacks, the pointers, and the single trend
// currently under construction are held (the 50-fold-less-than-CET
// memory profile of the paper's Fig. 14(b)).
package sase

import (
	"github.com/greta-cep/greta/internal/baseline"
	"github.com/greta-cep/greta/internal/baseline/matchgraph"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
)

// Options bounds a run so benchmarks can cap exponential blow-up.
type Options struct {
	// MaxTrends aborts a window after this many constructed trends
	// (0 = unlimited). The paper's SASE fails to terminate beyond 500k
	// events; the cap makes sweeps finite.
	MaxTrends uint64
}

// Run executes the query with the two-step SASE strategy.
func Run(q *query.Query, evs []*event.Event, opt Options) ([]baseline.Result, baseline.Stats, error) {
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, baseline.Stats{}, err
	}
	var stats baseline.Stats
	type gw struct {
		group string
		wid   int64
	}
	aggs := map[gw]*baseline.TrendAgg{}
	for _, part := range baseline.Partition(q, evs) {
		group := baseline.GroupOf(q, part)
		for _, wid := range baseline.Wids(q, part) {
			wevs := baseline.InWindow(q, wid, part)
			agg := aggs[gw{group, wid}]
			if agg == nil {
				agg = baseline.NewTrendAgg(q, len(branches) > 1)
				aggs[gw{group, wid}] = agg
			}
			var windowTrends uint64
			for _, b := range branches {
				// Step 1a: build stacks and predecessor pointers.
				g, err := matchgraph.BuildForBranch(q, b, wevs, part)
				if err != nil {
					return nil, stats, err
				}
				stats.StoredEdges += uint64(g.CountEdges())
				// Step 1b + 2: DFS constructs each trend, then the trend is
				// aggregated and discarded.
				g.WalkTrends(func(path []matchgraph.VertexRef) bool {
					if opt.MaxTrends > 0 && windowTrends >= opt.MaxTrends {
						stats.Truncated = true
						return false
					}
					windowTrends++
					stats.Trends++
					stats.TrendNodes += uint64(len(path))
					if uint64(len(path))*16 > stats.StoredBytes {
						// Peak memory: one trend at a time.
						stats.StoredBytes = uint64(len(path)) * 16
					}
					tr := make([]*event.Event, len(path))
					for i, v := range path {
						tr[i] = v.Ev
					}
					agg.Add(tr)
					return true
				})
			}
		}
	}
	var out []baseline.Result
	for k, agg := range aggs {
		if vals, _, ok := agg.Finish(); ok {
			out = append(out, baseline.Result{Group: k.group, Wid: k.wid, Values: vals})
		}
	}
	baseline.SortResults(out)
	return out, stats, nil
}
