// Package baseline defines the shared result and statistics types of
// the state-of-the-art two-step engines the paper evaluates against
// (§10.1): SASE, CET, and Flink-style flattening. Each engine lives in
// its own sub-package; all construct event trends explicitly before
// aggregating them, which is exactly the exponential cost GRETA avoids.
package baseline

import (
	"fmt"
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// Result is one per-group, per-window aggregate.
type Result struct {
	Group  string
	Wid    int64
	Values []float64 // aligned with the query's RETURN aggregates
}

// Stats captures the cost profile of a two-step run.
type Stats struct {
	// Trends is the number of trends constructed (paths walked or
	// sequences materialized).
	Trends uint64
	// TrendNodes is the total length of all constructed trends — the
	// dominant memory term for CET and Flink, and the dominant time term
	// for SASE.
	TrendNodes uint64
	// StoredEdges counts stored predecessor pointers (SASE stacks).
	StoredEdges uint64
	// StoredBytes approximates peak bytes of trend storage.
	StoredBytes uint64
	// Queries is the number of flattened sub-queries executed (Flink).
	Queries uint64
	// Truncated reports matches dropped by a length cap (Flink's
	// fixed-length rewriting cannot cover unbounded Kleene).
	Truncated bool
}

// TrendAgg accumulates the RETURN aggregates of a query over trends
// supplied one at a time — the "aggregate afterwards" step shared by
// all two-step engines.
type TrendAgg struct {
	q      *query.Query
	vals   []float64
	avgAux []avgPair
	n      uint64
	seen   map[string]bool // dedup across disjunction branches, nil if single branch
}

// NewTrendAgg returns an accumulator for q. dedup enables cross-branch
// trend deduplication (needed when a pattern expands into overlapping
// branches).
func NewTrendAgg(q *query.Query, dedup bool) *TrendAgg {
	a := &TrendAgg{q: q, vals: make([]float64, len(q.Aggs)), avgAux: make([]avgPair, len(q.Aggs))}
	for i, spec := range q.Aggs {
		switch spec.Kind {
		case aggregate.Min:
			a.vals[i] = math.Inf(1)
		case aggregate.Max:
			a.vals[i] = math.Inf(-1)
		}
	}
	if dedup {
		a.seen = map[string]bool{}
	}
	return a
}

// Add folds one materialized trend into the aggregates.
func (a *TrendAgg) Add(tr []*event.Event) {
	if a.seen != nil {
		key := trendKey(tr)
		if a.seen[key] {
			return
		}
		a.seen[key] = true
	}
	a.n++
	for i, spec := range a.q.Aggs {
		switch spec.Kind {
		case aggregate.CountStar:
			a.vals[i]++
		case aggregate.CountType:
			for _, e := range tr {
				if e.Type == spec.Type {
					a.vals[i]++
				}
			}
		case aggregate.Min, aggregate.Max:
			for _, e := range tr {
				if e.Type != spec.Type {
					continue
				}
				if v, ok := e.Attrs[spec.Attr]; ok {
					if spec.Kind == aggregate.Min && v < a.vals[i] || spec.Kind == aggregate.Max && v > a.vals[i] {
						a.vals[i] = v
					}
				}
			}
		case aggregate.Sum:
			for _, e := range tr {
				if e.Type == spec.Type {
					a.vals[i] += e.Attrs[spec.Attr]
				}
			}
		case aggregate.Avg:
			for _, e := range tr {
				if e.Type == spec.Type {
					a.avgAux[i].sum += e.Attrs[spec.Attr]
					a.avgAux[i].n++
				}
			}
		}
	}
}

// Finish returns the aggregate values (resolving AVG) and the trend
// count. ok is false when no trend was added.
func (a *TrendAgg) Finish() (vals []float64, count uint64, ok bool) {
	if a.n == 0 {
		return nil, 0, false
	}
	out := make([]float64, len(a.vals))
	copy(out, a.vals)
	for i, spec := range a.q.Aggs {
		if spec.Kind != aggregate.Avg {
			continue
		}
		if a.avgAux[i].n == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = a.avgAux[i].sum / float64(a.avgAux[i].n)
	}
	return out, a.n, true
}

// avgAux tracks AVG numerators/denominators per RETURN position.
type avgPair struct {
	sum float64
	n   uint64
}

func trendKey(tr []*event.Event) string {
	b := make([]byte, 0, len(tr)*4)
	for _, e := range tr {
		id := e.ID
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ',')
	}
	return string(b)
}

// Partition splits events by grouping and equivalence attributes in
// stream order (shared by all two-step engines).
func Partition(q *query.Query, evs []*event.Event) map[string][]*event.Event {
	attrs := append(append([]string{}, q.GroupBy...), q.Equivalence...)
	out := map[string][]*event.Event{}
	for _, e := range evs {
		key := ""
		for i, a := range attrs {
			if i > 0 {
				key += "\x1f"
			}
			if s, ok := e.Str[a]; ok {
				key += s
			} else if v, ok := e.Attrs[a]; ok {
				key += formatNum(v)
			}
		}
		out[key] = append(out[key], e)
	}
	return out
}

func formatNum(v float64) string {
	return fmt.Sprintf("%g", v)
}

// GroupOf computes the output grouping key (GROUP-BY attributes only)
// of a partition, per Definition 2: equivalence attributes partition
// trend formation but are not part of the output grouping.
func GroupOf(q *query.Query, part []*event.Event) string {
	if len(part) == 0 || len(q.GroupBy) == 0 {
		return ""
	}
	e := part[0]
	key := ""
	for i, a := range q.GroupBy {
		if i > 0 {
			key += "\x1f"
		}
		if s, ok := e.Str[a]; ok {
			key += s
		} else if v, ok := e.Attrs[a]; ok {
			key += formatNum(v)
		}
	}
	return key
}

// Wids lists all window ids any event of part falls into, ascending.
func Wids(q *query.Query, part []*event.Event) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, e := range part {
		lo, hi := q.Window.Wids(e.Time)
		for wid := lo; wid <= hi; wid++ {
			if !seen[wid] {
				seen[wid] = true
				out = append(out, wid)
			}
		}
	}
	SortInt64s(out)
	return out
}

// InWindow filters part to the events of window wid.
func InWindow(q *query.Query, wid int64, part []*event.Event) []*event.Event {
	var out []*event.Event
	for _, e := range part {
		if q.Window.Contains(wid, e.Time) {
			out = append(out, e)
		}
	}
	return out
}

// SortInt64s sorts in place (insertion sort; wid lists are short).
func SortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// SortResults orders results by (group, wid).
func SortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := &rs[j-1], &rs[j]
			if a.Group < b.Group || (a.Group == b.Group && a.Wid <= b.Wid) {
				break
			}
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}
