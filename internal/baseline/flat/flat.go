// Package flat implements the Flink-style flattening baseline (paper
// §10.1): industrial streaming systems without Kleene closure simulate
// a Kleene query by "a set of fixed-length event sequence queries that
// cover all possible lengths from 1 to l", where l is the length of the
// longest match. Each sub-query constructs and stores all its matching
// event sequences before aggregation, so both the query workload and
// the materialized sequences blow up — the paper's Flink fails beyond
// 100k events per window with ~1 GB of stored sequences.
package flat

import (
	"github.com/greta-cep/greta/internal/baseline"
	"github.com/greta-cep/greta/internal/baseline/matchgraph"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
)

// Options configures the flattening.
type Options struct {
	// MaxLen is l: the longest sequence length covered. Trends longer
	// than MaxLen are missed (Truncated is set when the cap bites),
	// mirroring the fundamental limitation the paper points out: "this
	// approach is possible only if the maximal length of a trend is
	// known apriori".
	MaxLen int
	// MaxSequences aborts a window after storing this many sequences
	// (0 = unlimited).
	MaxSequences uint64
}

// DefaultMaxLen is used when Options.MaxLen is zero.
const DefaultMaxLen = 12

// Run executes the query by flattening it into fixed-length sequence
// queries.
func Run(q *query.Query, evs []*event.Event, opt Options) ([]baseline.Result, baseline.Stats, error) {
	if opt.MaxLen <= 0 {
		opt.MaxLen = DefaultMaxLen
	}
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, baseline.Stats{}, err
	}
	var stats baseline.Stats
	type gw struct {
		group string
		wid   int64
	}
	aggs := map[gw]*baseline.TrendAgg{}
	for _, part := range baseline.Partition(q, evs) {
		group := baseline.GroupOf(q, part)
		for _, wid := range baseline.Wids(q, part) {
			wevs := baseline.InWindow(q, wid, part)
			agg := aggs[gw{group, wid}]
			if agg == nil {
				agg = baseline.NewTrendAgg(q, true) // dedup across lengths & branches
				aggs[gw{group, wid}] = agg
			}
			var stored [][]*event.Event
			// The flattening runs MaxLen fixed-length sub-queries; their
			// union of matches equals one length-bounded walk, which is how
			// we execute it (each stored sequence still belongs to exactly
			// one sub-query). The work cap bounds the exponential walk
			// itself, not just the stored matches.
			var walked uint64
			for _, b := range branches {
				g, err := matchgraph.BuildForBranch(q, b, wevs, part)
				if err != nil {
					return nil, stats, err
				}
				stats.Queries += uint64(opt.MaxLen)
				g.WalkTrendsMaxLen(opt.MaxLen, func(path []matchgraph.VertexRef) bool {
					walked++
					if opt.MaxSequences > 0 && walked > opt.MaxSequences {
						stats.Truncated = true
						return false
					}
					// Flink materializes the sequence before aggregation.
					seq := make([]*event.Event, len(path))
					for i, v := range path {
						seq[i] = v.Ev
					}
					stored = append(stored, seq)
					stats.Trends++
					stats.TrendNodes += uint64(len(seq))
					return true
				})
				if !stats.Truncated && g.HasLongerTrends(opt.MaxLen) {
					stats.Truncated = true
				}
			}
			stats.StoredBytes += uint64(len(stored)) * 24
			for _, seq := range stored {
				stats.StoredBytes += uint64(len(seq)) * 8
				agg.Add(seq)
			}
		}
	}
	var out []baseline.Result
	for k, agg := range aggs {
		if vals, _, ok := agg.Finish(); ok {
			out = append(out, baseline.Result{Group: k.group, Wid: k.wid, Values: vals})
		}
	}
	baseline.SortResults(out)
	return out, stats, nil
}
