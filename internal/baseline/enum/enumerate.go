package enum

import (
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/matchgraph"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
)

// EnumerateBranch enumerates the trends of one sugar-free branch over
// the events wevs (one window of one partition). fullPart is the whole
// partition in stream order, needed by the contiguous semantics to
// check stream adjacency.
func EnumerateBranch(q *query.Query, branch *pattern.Node, wevs, fullPart []*event.Event) ([]Trend, error) {
	g, err := matchgraph.BuildForBranch(q, branch, wevs, fullPart)
	if err != nil {
		return nil, err
	}
	var out []Trend
	g.WalkTrends(func(path []matchgraph.VertexRef) bool {
		tr := make(Trend, len(path))
		for i, v := range path {
			tr[i] = v.Ev
		}
		out = append(out, tr)
		return true
	})
	return out, nil
}

// aggregateResults folds enumerated trends into per-group, per-window
// aggregates aligned with the query's RETURN clause.
func aggregateResults(q *query.Query, results map[string]map[int64]map[string]Trend) []Result {
	var out []Result
	for group, wids := range results {
		for wid, trends := range wids {
			r := Result{Group: group, Wid: wid}
			r.Count = uint64(len(trends))
			r.Trends = len(trends)
			vals := make([]float64, len(q.Aggs))
			for vi, spec := range q.Aggs {
				vals[vi] = aggregateTrends(spec, trends)
			}
			r.Values = vals
			out = append(out, r)
		}
	}
	sortResults(out)
	return out
}

func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := &rs[j-1], &rs[j]
			if a.Group < b.Group || (a.Group == b.Group && a.Wid <= b.Wid) {
				break
			}
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// aggregateTrends computes one RETURN aggregate over materialized
// trends — the "aggregation step" of the two-step approach.
func aggregateTrends(spec aggregate.Spec, trends map[string]Trend) float64 {
	switch spec.Kind {
	case aggregate.CountStar:
		return float64(len(trends))
	case aggregate.CountType:
		n := 0
		for _, tr := range trends {
			for _, e := range tr {
				if e.Type == spec.Type {
					n++
				}
			}
		}
		return float64(n)
	case aggregate.Min, aggregate.Max:
		best := math.Inf(1)
		if spec.Kind == aggregate.Max {
			best = math.Inf(-1)
		}
		for _, tr := range trends {
			for _, e := range tr {
				if e.Type != spec.Type {
					continue
				}
				if v, ok := e.Attrs[spec.Attr]; ok {
					if spec.Kind == aggregate.Min && v < best || spec.Kind == aggregate.Max && v > best {
						best = v
					}
				}
			}
		}
		return best
	case aggregate.Sum:
		s := 0.0
		for _, tr := range trends {
			for _, e := range tr {
				if e.Type == spec.Type {
					s += e.Attrs[spec.Attr]
				}
			}
		}
		return s
	case aggregate.Avg:
		s, n := 0.0, 0
		for _, tr := range trends {
			for _, e := range tr {
				if e.Type == spec.Type {
					s += e.Attrs[spec.Attr]
					n++
				}
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return s / float64(n)
	}
	return math.NaN()
}

// runConjunction enumerates both conjunct sets and applies the paper's
// pair-count formula (§9).
func runConjunction(q *query.Query, evs []*event.Event) ([]Result, error) {
	qi := *q
	qi.Pattern = q.Pattern.Children[0]
	qj := *q
	qj.Pattern = q.Pattern.Children[1]
	type key struct {
		group string
		wid   int64
	}
	sets := func(sub *query.Query) (map[key]map[string]bool, error) {
		branches, err := pattern.Expand(sub.Pattern)
		if err != nil {
			return nil, err
		}
		out := map[key]map[string]bool{}
		for _, part := range partition(q, evs) {
			group := groupOf(q, part)
			for _, wid := range widsOf(q.Window, part) {
				wevs := inWindow(q.Window, wid, part)
				for _, b := range branches {
					trends, err := EnumerateBranch(q, b, wevs, part)
					if err != nil {
						return nil, err
					}
					for _, tr := range trends {
						k := key{group, wid}
						if out[k] == nil {
							out[k] = map[string]bool{}
						}
						out[k][tr.Key()] = true
					}
				}
			}
		}
		return out, nil
	}
	setA, err := sets(&qi)
	if err != nil {
		return nil, err
	}
	setB, err := sets(&qj)
	if err != nil {
		return nil, err
	}
	keys := map[key]bool{}
	for k := range setA {
		keys[k] = true
	}
	for k := range setB {
		keys[k] = true
	}
	var out []Result
	for k := range keys {
		a, b := setA[k], setB[k]
		var cij uint64
		for t := range a {
			if b[t] {
				cij++
			}
		}
		ci := uint64(len(a)) - cij
		cj := uint64(len(b)) - cij
		count := ci*cj + ci*cij + cj*cij + cij*(cij-1)/2
		if count == 0 {
			continue
		}
		out = append(out, Result{Group: k.group, Wid: k.wid, Count: count, Values: []float64{float64(count)}, Trends: int(count)})
	}
	sortResults(out)
	return out, nil
}
