// Package enum implements a brute-force event trend enumerator: the
// reference oracle that materializes every trend matched by a query
// (Definition 1 semantics, with the operational negation rules of paper
// §5) and aggregates them one by one. Its cost is exponential in the
// number of events, so it is usable only on small streams; the test
// suite cross-validates the GRETA runtime against it.
package enum

import (
	"fmt"
	"slices"
	"strings"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/window"
)

// Result is one per-group, per-window aggregate computed by
// enumeration.
type Result struct {
	Group  string
	Wid    int64
	Count  uint64
	Values []float64 // aligned with the query's RETURN aggregates
	Trends int       // distinct trends (== Count; kept for clarity)
}

// Trend is a materialized trend: the matched events in order.
type Trend []*event.Event

// Key is the identity of a trend (its event id sequence).
func (t Trend) Key() string {
	var b strings.Builder
	for i, e := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e.ID)
	}
	return b.String()
}

func (t Trend) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Run enumerates and aggregates all trends of q over evs.
func Run(q *query.Query, evs []*event.Event) ([]Result, error) {
	if q.Pattern.Kind == pattern.KindAnd {
		return runConjunction(q, evs)
	}
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, err
	}
	// Trends are formed per partition (group-by + equivalence attributes)
	// and aggregated per output group (GROUP-BY attributes only),
	// matching Definition 2.
	results := map[string]map[int64]map[string]Trend{} // group -> wid -> trendKey -> trend
	for _, part := range partition(q, evs) {
		group := groupOf(q, part)
		for _, wid := range widsOf(q.Window, part) {
			wevs := inWindow(q.Window, wid, part)
			for _, b := range branches {
				trends, err := EnumerateBranch(q, b, wevs, part)
				if err != nil {
					return nil, err
				}
				for _, tr := range trends {
					if q.MinLen > 1 && len(tr) < q.MinLen {
						continue
					}
					if results[group] == nil {
						results[group] = map[int64]map[string]Trend{}
					}
					if results[group][wid] == nil {
						results[group][wid] = map[string]Trend{}
					}
					results[group][wid][tr.Key()] = tr
				}
			}
		}
	}
	return aggregateResults(q, results), nil
}

// groupOf computes the output grouping key of a partition.
func groupOf(q *query.Query, part []*event.Event) string {
	if len(part) == 0 || len(q.GroupBy) == 0 {
		return ""
	}
	e := part[0]
	var b strings.Builder
	for i, a := range q.GroupBy {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if s, ok := e.Str[a]; ok {
			b.WriteString(s)
		} else if v, ok := e.Attrs[a]; ok {
			fmt.Fprintf(&b, "%g", v)
		}
	}
	return b.String()
}

// Trends enumerates the distinct trends of q over evs in the global
// window (no windowing), for tests that inspect trends directly.
func Trends(q *query.Query, evs []*event.Event) ([]Trend, error) {
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, err
	}
	seen := map[string]Trend{}
	for group, part := range partition(q, evs) {
		_ = group
		for _, b := range branches {
			trends, err := EnumerateBranch(q, b, part, part)
			if err != nil {
				return nil, err
			}
			for _, tr := range trends {
				seen[tr.Key()] = tr
			}
		}
	}
	out := make([]Trend, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out, nil
}

// partition splits events by grouping and equivalence attributes, in
// stream order (the oracle twin of the runtime partitioner).
func partition(q *query.Query, evs []*event.Event) map[string][]*event.Event {
	attrs := append(append([]string{}, q.GroupBy...), q.Equivalence...)
	out := map[string][]*event.Event{}
	for _, e := range evs {
		var b strings.Builder
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte('\x1f')
			}
			if s, ok := e.Str[a]; ok {
				b.WriteString(s)
			} else if v, ok := e.Attrs[a]; ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		out[b.String()] = append(out[b.String()], e)
	}
	return out
}

// widsOf lists all window ids any event of part falls into.
func widsOf(w window.Spec, part []*event.Event) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, e := range part {
		lo, hi := w.Wids(e.Time)
		for wid := lo; wid <= hi; wid++ {
			if !seen[wid] {
				seen[wid] = true
				out = append(out, wid)
			}
		}
	}
	slices.Sort(out)
	return out
}

func inWindow(w window.Spec, wid int64, part []*event.Event) []*event.Event {
	var out []*event.Event
	for _, e := range part {
		if w.Contains(wid, e.Time) {
			out = append(out, e)
		}
	}
	return out
}
