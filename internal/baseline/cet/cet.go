// Package cet implements the CET-style two-step baseline (paper
// §10.1): the state-of-the-art event trend *detection* approach that
// "stores and reuses partial event trends while constructing the final
// event trends", extended — as the paper's authors did for their
// experiments — to aggregate event trends upon their construction.
//
// Sub-trends are shared via parent pointers: each node represents one
// distinct sub-trend ending at its vertex and is built exactly once in
// O(1) from its parent, which avoids the DFS re-computation of SASE
// (roughly the 2× speed-up of the paper's Fig. 14(a)). The price is
// that every sub-trend is materialized, so memory grows with the total
// number of sub-trends — exponential in the number of events (the
// 3-orders-of-magnitude memory gap of Fig. 14(b)).
package cet

import (
	"math"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline"
	"github.com/greta-cep/greta/internal/baseline/matchgraph"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
)

// Options bounds a run so benchmarks can cap exponential blow-up.
type Options struct {
	// MaxNodes aborts a window after materializing this many sub-trend
	// nodes (0 = unlimited).
	MaxNodes uint64
}

// node is one shared sub-trend: the event-vertex it ends at plus a
// parent pointer, with cumulative per-trend statistics so completed
// trends aggregate in O(1).
type node struct {
	vert   int
	parent *node
	length uint32
	// Cumulative per-trend values aligned with the query aggregates:
	// running count/sum/min/max of the trend's own events.
	vals []float64
}

// Run executes the query with the CET strategy.
func Run(q *query.Query, evs []*event.Event, opt Options) ([]baseline.Result, baseline.Stats, error) {
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		return nil, baseline.Stats{}, err
	}
	if len(branches) > 1 {
		// Cross-branch dedup would require materializing keys; the paper's
		// CET evaluation uses single-branch Kleene queries.
		return nil, baseline.Stats{}, errMultiBranch
	}
	var stats baseline.Stats
	type gw struct {
		group string
		wid   int64
	}
	accs := map[gw]*acc{}
	for _, part := range baseline.Partition(q, evs) {
		group := baseline.GroupOf(q, part)
		for _, wid := range baseline.Wids(q, part) {
			wevs := baseline.InWindow(q, wid, part)
			g, err := matchgraph.BuildForBranch(q, branches[0], wevs, part)
			if err != nil {
				return nil, stats, err
			}
			a, truncated := runWindow(q, g, opt, &stats)
			stats.Truncated = stats.Truncated || truncated
			if a.count == 0 {
				continue
			}
			k := gw{group, wid}
			if cur := accs[k]; cur == nil {
				accs[k] = a
			} else {
				cur.merge(q, a)
			}
		}
	}
	var out []baseline.Result
	for k, a := range accs {
		out = append(out, baseline.Result{Group: k.group, Wid: k.wid, Values: a.finish(q)})
	}
	baseline.SortResults(out)
	return out, stats, nil
}

// acc accumulates window aggregates so partitions of one output group
// can be merged.
type acc struct {
	count  uint64
	finals []float64
	avgSum []float64
	avgDen []float64
}

func (a *acc) merge(q *query.Query, b *acc) {
	a.count += b.count
	for i, spec := range q.Aggs {
		switch spec.Kind {
		case aggregate.CountStar, aggregate.CountType, aggregate.Sum:
			a.finals[i] += b.finals[i]
		case aggregate.Min:
			if b.finals[i] < a.finals[i] {
				a.finals[i] = b.finals[i]
			}
		case aggregate.Max:
			if b.finals[i] > a.finals[i] {
				a.finals[i] = b.finals[i]
			}
		case aggregate.Avg:
			a.avgSum[i] += b.avgSum[i]
			a.avgDen[i] += b.avgDen[i]
		}
	}
}

func (a *acc) finish(q *query.Query) []float64 {
	out := make([]float64, len(a.finals))
	copy(out, a.finals)
	for i, spec := range q.Aggs {
		if spec.Kind != aggregate.Avg {
			continue
		}
		if a.avgDen[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = a.avgSum[i] / a.avgDen[i]
		}
	}
	return out
}

var errMultiBranch = errorString("cet: disjunctive patterns are not supported by the CET baseline")

type errorString string

func (e errorString) Error() string { return string(e) }

// runWindow builds the shared sub-trend nodes in stream order and folds
// completed trends into a window accumulator.
func runWindow(q *query.Query, g *matchgraph.Graph, opt Options, stats *baseline.Stats) (*acc, bool) {
	// lists[i] holds all sub-trend nodes ending at vertex i.
	lists := make([][]*node, len(g.Verts))
	finals := make([]float64, len(q.Aggs))
	avgSum := make([]float64, len(q.Aggs))
	for i, spec := range q.Aggs {
		switch spec.Kind {
		case aggregate.Min:
			finals[i] = math.Inf(1)
		case aggregate.Max:
			finals[i] = math.Inf(-1)
		}
	}
	var count uint64
	var nodes uint64
	truncated := false

	complete := func(n *node) {
		count++
		for i, spec := range q.Aggs {
			switch spec.Kind {
			case aggregate.CountStar:
				finals[i]++
			case aggregate.CountType, aggregate.Sum:
				finals[i] += n.vals[i]
			case aggregate.Min:
				if n.vals[i] < finals[i] {
					finals[i] = n.vals[i]
				}
			case aggregate.Max:
				if n.vals[i] > finals[i] {
					finals[i] = n.vals[i]
				}
			case aggregate.Avg:
				avgSum[i] += n.vals[i]
			}
		}
	}

	newNode := func(vert int, parent *node) *node {
		nodes++
		stats.Trends++ // every node is one distinct (sub-)trend
		stats.TrendNodes++
		n := &node{vert: vert, parent: parent, length: 1}
		ev := g.Verts[vert].Ev
		n.vals = make([]float64, len(q.Aggs))
		if parent != nil {
			n.length = parent.length + 1
			copy(n.vals, parent.vals)
		} else {
			for i, spec := range q.Aggs {
				switch spec.Kind {
				case aggregate.Min:
					n.vals[i] = math.Inf(1)
				case aggregate.Max:
					n.vals[i] = math.Inf(-1)
				}
			}
		}
		for i, spec := range q.Aggs {
			if spec.Kind == aggregate.CountStar || ev.Type != spec.Type {
				continue
			}
			switch spec.Kind {
			case aggregate.CountType:
				n.vals[i]++
			case aggregate.Sum, aggregate.Avg:
				n.vals[i] += ev.Attrs[spec.Attr]
			case aggregate.Min:
				if v := ev.Attrs[spec.Attr]; v < n.vals[i] {
					n.vals[i] = v
				}
			case aggregate.Max:
				if v := ev.Attrs[spec.Attr]; v > n.vals[i] {
					n.vals[i] = v
				}
			}
		}
		return n
	}

	// Vertices are in stream order (buildVertices iterates events in
	// order), so predecessors of a vertex are materialized before it.
	for i := range g.Verts {
		if opt.MaxNodes > 0 && nodes > opt.MaxNodes {
			truncated = true
			break
		}
		if g.IsStart(i) {
			lists[i] = append(lists[i], newNode(i, nil))
		}
		for _, p := range g.Pred[i] {
			for _, pn := range lists[p] {
				if opt.MaxNodes > 0 && nodes > opt.MaxNodes {
					truncated = true
					break
				}
				lists[i] = append(lists[i], newNode(i, pn))
			}
		}
		if g.EndAllowed(i) {
			for _, n := range lists[i] {
				complete(n)
			}
		}
	}
	stats.StoredBytes += nodes * 48 // node struct + vals approximation

	// AVG denominators (occurrences of the target type over completed
	// trends) come from a parallel shared-node pass.
	avgD := make([]float64, len(q.Aggs))
	for i, spec := range q.Aggs {
		if spec.Kind == aggregate.Avg {
			avgD[i] = avgDen(q, g, i)
		}
	}
	return &acc{count: count, finals: finals, avgSum: avgSum, avgDen: avgD}, truncated
}

// avgDen recomputes the AVG denominator (occurrences of the target type
// over all completed trends) with a second shared-node pass that tracks
// per-trend type counts.
func avgDen(q *query.Query, g *matchgraph.Graph, aggIdx int) float64 {
	spec := q.Aggs[aggIdx]
	type cnode struct {
		c float64
	}
	lists := make([][]cnode, len(g.Verts))
	den := 0.0
	for i := range g.Verts {
		ev := g.Verts[i].Ev
		self := 0.0
		if ev.Type == spec.Type {
			self = 1
		}
		if g.IsStart(i) {
			lists[i] = append(lists[i], cnode{self})
		}
		for _, p := range g.Pred[i] {
			for _, pn := range lists[p] {
				lists[i] = append(lists[i], cnode{pn.c + self})
			}
		}
		if g.EndAllowed(i) {
			for _, n := range lists[i] {
				den += n.c
			}
		}
	}
	return den
}
