// Package matchgraph builds the explicit match graph used by the
// two-step baselines (SASE, CET, Flink-style flattening) and the
// brute-force oracle: every usable (event, state) pair becomes a vertex
// and every allowed adjacency becomes a stored edge. This is the
// state-of-the-art architecture the paper compares against (Fig. 1):
// trend construction traverses these edges explicitly, whereas GRETA
// never materializes them.
package matchgraph

import (
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/template"
)

// VertexRef is an (event, state) pair usable in trends.
type VertexRef struct {
	Ev    *event.Event
	State int
}

// NegSpan is a finished negative trend's start and end times.
type NegSpan struct{ Start, End event.Time }

// DepFilter carries the operational invalidation rules of paper §5 for
// one negative sub-pattern (see internal/core for the incremental
// realization):
//
//	Kind 1 (prev, foll): an edge from a prev-labeled event p to a
//	  foll-labeled event f is forbidden iff some negative trend (s..t)
//	  has p.time < s and t < f.time.
//	Kind 2 (prev only): the edge rule applies to every edge, and a trend
//	  may not end at v with v.time < s for any negative trend.
//	Kind 3 (foll only): an event x is unusable iff some negative trend
//	  ends before x.time.
type DepFilter struct {
	Kind  int
	Prev  string
	Foll  string
	Spans []NegSpan
}

// Graph is the materialized match graph of one sub-pattern over one
// window of one partition.
type Graph struct {
	Q       *query.Query
	Tmpl    *template.Template
	Cls     *predicate.Classified
	Filters []*DepFilter

	Verts []VertexRef
	// Succ[i] lists indices of vertices reachable from Verts[i] in one
	// step; Pred[i] is the reverse (the SASE stack pointers).
	Succ [][]int
	Pred [][]int

	fullPart []*event.Event
}

// Build constructs the match graph for sub-pattern idx of subs,
// recursively enumerating negative sub-pattern trends to derive the
// invalidation filters.
func Build(q *query.Query, subs []*pattern.SubPattern, idx int, wevs, fullPart []*event.Event) (*Graph, error) {
	sub := subs[idx]
	var filters []*DepFilter
	for _, depIdx := range sub.Deps {
		dep := subs[depIdx]
		depGraph, err := Build(q, subs, depIdx, wevs, fullPart)
		if err != nil {
			return nil, err
		}
		f := &DepFilter{Prev: dep.Previous, Foll: dep.Following}
		switch {
		case dep.Previous != "" && dep.Following != "":
			f.Kind = 1
		case dep.Previous != "":
			f.Kind = 2
		default:
			f.Kind = 3
		}
		depGraph.WalkTrends(func(tr []VertexRef) bool {
			f.Spans = append(f.Spans, NegSpan{tr[0].Ev.Time, tr[len(tr)-1].Ev.Time})
			return true
		})
		filters = append(filters, f)
	}
	tmpl, err := template.Build(sub.Pattern)
	if err != nil {
		return nil, err
	}
	aliases := map[string]bool{}
	for _, leaf := range q.Pattern.EventNodes() {
		aliases[leaf.Alias] = true
	}
	cls, err := predicate.Classify(q.Where, aliases)
	if err != nil {
		return nil, err
	}
	g := &Graph{Q: q, Tmpl: tmpl, Cls: cls, Filters: filters, fullPart: fullPart}
	g.buildVertices(wevs)
	g.buildEdges()
	return g, nil
}

// BuildForBranch builds the match graph of one sugar-free branch.
func BuildForBranch(q *query.Query, branch *pattern.Node, wevs, fullPart []*event.Event) (*Graph, error) {
	subs, err := pattern.Split(branch)
	if err != nil {
		return nil, err
	}
	return Build(q, subs, 0, wevs, fullPart)
}

func hasLabel(st *template.State, label string) bool {
	for _, l := range st.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Usable applies vertex predicates and Kind-3 invalidation.
func (g *Graph) Usable(e *event.Event, st *template.State) bool {
	for _, vp := range g.Cls.Vertex {
		if vp.Alias != "" && !hasLabel(st, vp.Alias) {
			continue
		}
		if !vp.Eval(e) {
			return false
		}
	}
	for _, f := range g.Filters {
		if f.Kind != 3 {
			continue
		}
		for _, sp := range f.Spans {
			if sp.End < e.Time {
				return false
			}
		}
	}
	return true
}

func (g *Graph) buildVertices(wevs []*event.Event) {
	for _, e := range wevs {
		for _, sIdx := range g.Tmpl.ByType[e.Type] {
			st := g.Tmpl.States[sIdx]
			if g.Usable(e, st) {
				g.Verts = append(g.Verts, VertexRef{e, sIdx})
			}
		}
	}
}

// EdgeAllowed checks transition existence, strict time order, edge
// predicates, Kind-1/2 invalidation, and the selection semantics.
func (g *Graph) EdgeAllowed(p, f VertexRef) bool {
	if p.Ev.Time >= f.Ev.Time {
		return false
	}
	fst := g.Tmpl.States[f.State]
	ok := false
	for _, pr := range fst.Preds {
		if pr == p.State {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	pst := g.Tmpl.States[p.State]
	for _, ep := range g.Cls.Edge {
		if !hasLabel(pst, ep.From) || !hasLabel(fst, ep.To) {
			continue
		}
		if !ep.Eval(p.Ev, f.Ev) {
			return false
		}
	}
	for _, flt := range g.Filters {
		switch flt.Kind {
		case 1:
			if !hasLabel(pst, flt.Prev) || !hasLabel(fst, flt.Foll) {
				continue
			}
			for _, sp := range flt.Spans {
				if p.Ev.Time < sp.Start && sp.End < f.Ev.Time {
					return false
				}
			}
		case 2:
			for _, sp := range flt.Spans {
				if p.Ev.Time < sp.Start && sp.End < f.Ev.Time {
					return false
				}
			}
		}
	}
	if g.Q.Semantics == query.Contiguous {
		for i := 0; i+1 < len(g.fullPart); i++ {
			if g.fullPart[i].ID == p.Ev.ID {
				return g.fullPart[i+1].ID == f.Ev.ID
			}
		}
		return false
	}
	return true
}

// buildEdges materializes adjacency (and reverse adjacency) lists.
// Skip-till-next-match replays the runtime's rule: events arrive in
// order and extend only vertices without an outgoing edge yet.
func (g *Graph) buildEdges() {
	g.Succ = make([][]int, len(g.Verts))
	g.Pred = make([][]int, len(g.Verts))
	if g.Q.Semantics == query.SkipTillNextMatch {
		closed := make([]bool, len(g.Verts))
		for j, f := range g.Verts {
			for i, p := range g.Verts {
				if closed[i] || !g.EdgeAllowed(p, f) {
					continue
				}
				g.Succ[i] = append(g.Succ[i], j)
				g.Pred[j] = append(g.Pred[j], i)
				closed[i] = true
			}
		}
		return
	}
	for i, p := range g.Verts {
		for j, f := range g.Verts {
			if g.EdgeAllowed(p, f) {
				g.Succ[i] = append(g.Succ[i], j)
				g.Pred[j] = append(g.Pred[j], i)
			}
		}
	}
}

// EndAllowed reports whether a trend may end at vertex i (END state and
// Kind-2 final filter).
func (g *Graph) EndAllowed(i int) bool {
	v := g.Verts[i]
	if !g.Tmpl.States[v.State].End {
		return false
	}
	for _, f := range g.Filters {
		if f.Kind != 2 {
			continue
		}
		for _, sp := range f.Spans {
			if v.Ev.Time < sp.Start {
				return false
			}
		}
	}
	return true
}

// IsStart reports whether a trend may begin at vertex i.
func (g *Graph) IsStart(i int) bool {
	return g.Tmpl.States[g.Verts[i].State].Start
}

// WalkTrends DFS-enumerates every trend (START→END path), invoking
// visit with the path's vertices. The slice is reused; copy it to
// retain. visit returns false to abort the walk — trend caps must stop
// the exponential DFS itself, not just the accounting. This is the
// "trend construction" step of the two-step approach — exponential in
// the number of events.
func (g *Graph) WalkTrends(visit func(tr []VertexRef) bool) {
	path := make([]VertexRef, 0, 16)
	var dfs func(i int) bool
	dfs = func(i int) bool {
		path = append(path, g.Verts[i])
		defer func() { path = path[:len(path)-1] }()
		if g.EndAllowed(i) && !visit(path) {
			return false
		}
		for _, j := range g.Succ[i] {
			if !dfs(j) {
				return false
			}
		}
		return true
	}
	for i := range g.Verts {
		if g.IsStart(i) && !dfs(i) {
			return
		}
	}
}

// WalkTrendsMaxLen is WalkTrends bounded to paths of at most maxLen
// vertices, used by the Flink-style flattening baseline. visit returns
// false to abort.
func (g *Graph) WalkTrendsMaxLen(maxLen int, visit func(tr []VertexRef) bool) {
	path := make([]VertexRef, 0, maxLen)
	var dfs func(i int) bool
	dfs = func(i int) bool {
		path = append(path, g.Verts[i])
		defer func() { path = path[:len(path)-1] }()
		if g.EndAllowed(i) && !visit(path) {
			return false
		}
		if len(path) < maxLen {
			for _, j := range g.Succ[i] {
				if !dfs(j) {
					return false
				}
			}
		}
		return true
	}
	for i := range g.Verts {
		if g.IsStart(i) && !dfs(i) {
			return
		}
	}
}

// HasLongerTrends conservatively reports whether the flattening up to
// maxLen may have missed matches: it returns true as soon as any path
// of maxLen+1 vertices exists (the DFS is depth-bounded so the check
// never explores more than the flattened queries themselves would).
func (g *Graph) HasLongerTrends(maxLen int) bool {
	var path int
	var dfs func(i int) bool
	dfs = func(i int) bool {
		path++
		defer func() { path-- }()
		if path > maxLen {
			return true
		}
		for _, j := range g.Succ[i] {
			if dfs(j) {
				return true
			}
		}
		return false
	}
	for i := range g.Verts {
		if g.IsStart(i) && dfs(i) {
			return true
		}
	}
	return false
}

// CountEdges returns the number of stored edges (pointer memory of the
// two-step approaches).
func (g *Graph) CountEdges() int {
	n := 0
	for _, s := range g.Succ {
		n += len(s)
	}
	return n
}
