package matchgraph

import (
	"testing"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/query"
)

func stream(types string) []*event.Event {
	var b event.Builder
	for i, c := range types {
		b.Add(event.Type(string(c)), event.Time(i+1), map[string]float64{"x": float64(i)})
	}
	return b.Events()
}

func build(t *testing.T, qsrc string, evs []*event.Event) *Graph {
	t.Helper()
	q := query.MustParse(qsrc)
	branches, err := pattern.Expand(q.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildForBranch(q, branches[0], evs, evs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func countTrends(g *Graph) int {
	n := 0
	g.WalkTrends(func([]VertexRef) bool { n++; return true })
	return n
}

func TestFig6Counts(t *testing.T) {
	evs := stream("ABAA") // a1 b2 a3 a4
	cases := []struct {
		q    string
		want int
	}{
		{"RETURN COUNT(*) PATTERN A+", 7},         // subsets of 3 a's
		{"RETURN COUNT(*) PATTERN SEQ(A+, B)", 1}, // (a1, b2)
		{"RETURN COUNT(*) PATTERN (SEQ(A+,B))+", 1},
	}
	for _, c := range cases {
		g := build(t, c.q, evs)
		if got := countTrends(g); got != c.want {
			t.Errorf("%s: trends = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestEdgeAllowedStrictTime(t *testing.T) {
	var b event.Builder
	b.Add("A", 3, nil)
	b.Add("A", 3, nil)
	g := build(t, "RETURN COUNT(*) PATTERN A+", b.Events())
	if g.CountEdges() != 0 {
		t.Errorf("edges = %d, want 0 for equal timestamps", g.CountEdges())
	}
	if got := countTrends(g); got != 2 {
		t.Errorf("trends = %d, want 2 singletons", got)
	}
}

func TestWalkAbort(t *testing.T) {
	g := build(t, "RETURN COUNT(*) PATTERN A+", stream("AAAAAAAAAA"))
	visits := 0
	g.WalkTrends(func([]VertexRef) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("visits = %d, want abort at 5", visits)
	}
	// Bounded walk: at most length 2 -> n + n(n-1)/2 paths.
	n := 0
	g.WalkTrendsMaxLen(2, func(tr []VertexRef) bool {
		if len(tr) > 2 {
			t.Fatalf("path of length %d escaped the bound", len(tr))
		}
		n++
		return true
	})
	if n != 10+45 {
		t.Errorf("bounded paths = %d, want 55", n)
	}
}

func TestHasLongerTrends(t *testing.T) {
	g := build(t, "RETURN COUNT(*) PATTERN A+", stream("AAAA"))
	if !g.HasLongerTrends(3) {
		t.Error("4 chained a's exceed length 3")
	}
	if g.HasLongerTrends(4) {
		t.Error("no trend exceeds length 4")
	}
}

func TestNegationFilters(t *testing.T) {
	// SEQ(A+, NOT C, B): c3 blocks a1,a2 -> b4.
	var b event.Builder
	b.Add("A", 1, nil)
	b.Add("A", 2, nil)
	b.Add("C", 3, nil)
	b.Add("B", 4, nil)
	g := build(t, "RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)", b.Events())
	if got := countTrends(g); got != 0 {
		t.Errorf("trends = %d, want 0 (all blocked)", got)
	}
	// Without the negative match, 3 trends: (a1,b4),(a2,b4),(a1,a2,b4).
	var b2 event.Builder
	b2.Add("A", 1, nil)
	b2.Add("A", 2, nil)
	b2.Add("B", 4, nil)
	g = build(t, "RETURN COUNT(*) PATTERN SEQ(A+, NOT C, B)", b2.Events())
	if got := countTrends(g); got != 3 {
		t.Errorf("trends = %d, want 3", got)
	}
}

func TestSemanticsEdgeShapes(t *testing.T) {
	evs := stream("AAA")
	// Skip-till-next-match: each vertex keeps at most one outgoing edge.
	g := build(t, "RETURN COUNT(*) PATTERN A+ SEMANTICS skip-till-next-match", evs)
	for i, succ := range g.Succ {
		if len(succ) > 1 {
			t.Errorf("vertex %d has %d successors under STNM", i, len(succ))
		}
	}
	// Contiguous: only stream-adjacent pairs connect.
	g = build(t, "RETURN COUNT(*) PATTERN A+ SEMANTICS contiguous", evs)
	if g.CountEdges() != 2 {
		t.Errorf("contiguous edges = %d, want 2", g.CountEdges())
	}
}
