package window

import (
	"testing"
	"testing/quick"
)

func TestWids(t *testing.T) {
	// WITHIN 10 SLIDE 3: windows [0,10), [3,13), [6,16), [9,19), ...
	s := Spec{Within: 10, Slide: 3}
	cases := []struct {
		t      int64
		lo, hi int64
	}{
		{0, 0, 0},
		{2, 0, 0},
		{3, 0, 1},
		{9, 0, 3},
		{10, 1, 3},
		{12, 1, 4},
		{13, 2, 4},
	}
	for _, c := range cases {
		lo, hi := s.Wids(c.t)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Wids(%d) = (%d,%d), want (%d,%d)", c.t, lo, hi, c.lo, c.hi)
		}
	}
}

func TestContains(t *testing.T) {
	s := Spec{Within: 10, Slide: 3}
	if !s.Contains(1, 3) || !s.Contains(1, 12) || s.Contains(1, 13) || s.Contains(1, 2) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestK(t *testing.T) {
	if k := (Spec{Within: 10, Slide: 3}).K(); k != 4 {
		t.Errorf("K = %d, want 4", k)
	}
	if k := (Spec{Within: 600, Slide: 10}).K(); k != 60 {
		t.Errorf("K = %d, want 60", k)
	}
	if k := Global.K(); k != 1 {
		t.Errorf("K = %d, want 1", k)
	}
}

func TestClosedBy(t *testing.T) {
	s := Spec{Within: 10, Slide: 3}
	// At t=10 window 0 ([0,10)) closes.
	lo, hi, ok := s.ClosedBy(-1, 10)
	if !ok || lo != 0 || hi != 0 {
		t.Errorf("ClosedBy(-1,10) = (%d,%d,%v)", lo, hi, ok)
	}
	// Nothing closes between 10 and 12.
	if _, _, ok := s.ClosedBy(10, 12); ok {
		t.Error("ClosedBy(10,12) should be empty")
	}
	// At t=20 windows 1 ([3,13)), 2 ([6,16)), 3 ([9,19)) close.
	lo, hi, ok = s.ClosedBy(12, 20)
	if !ok || lo != 1 || hi != 3 {
		t.Errorf("ClosedBy(12,20) = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestPaneSize(t *testing.T) {
	if p := (Spec{Within: 10, Slide: 3}).PaneSize(); p != 1 {
		t.Errorf("pane = %d, want 1 (gcd)", p)
	}
	if p := (Spec{Within: 600, Slide: 10}).PaneSize(); p != 10 {
		t.Errorf("pane = %d, want 10", p)
	}
	if p := (Spec{Within: 12, Slide: 8}).PaneSize(); p != 4 {
		t.Errorf("pane = %d, want 4", p)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{Within: 10, Slide: 3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Spec{Within: 5, Slide: 10}).Validate(); err == nil {
		t.Error("slide > within should fail")
	}
	if err := (Spec{Within: 5, Slide: 0}).Validate(); err == nil {
		t.Error("zero slide should fail")
	}
	if err := Global.Validate(); err != nil {
		t.Error(err)
	}
}

// TestQuickWidsConsistent: for any event time, Contains(wid, t) holds
// exactly for the wids in [lo, hi] returned by Wids.
func TestQuickWidsConsistent(t *testing.T) {
	f := func(tRaw uint16, withinRaw, slideRaw uint8) bool {
		within := int64(withinRaw%50) + 1
		slide := int64(slideRaw%50) + 1
		if slide > within {
			slide, within = within, slide
		}
		s := Spec{Within: within, Slide: slide}
		tm := int64(tRaw % 2000)
		lo, hi := s.Wids(tm)
		if lo > hi {
			return false
		}
		for wid := lo - 2; wid <= hi+2; wid++ {
			in := wid >= lo && wid <= hi
			if wid >= 0 && s.Contains(wid, tm) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickPaneAlignment: every window is an integral union of panes.
func TestQuickPaneAlignment(t *testing.T) {
	f := func(withinRaw, slideRaw uint8) bool {
		within := int64(withinRaw%60) + 1
		slide := int64(slideRaw%60) + 1
		if slide > within {
			slide, within = within, slide
		}
		s := Spec{Within: within, Slide: slide}
		p := s.PaneSize()
		return within%p == 0 && slide%p == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOldestNeeded(t *testing.T) {
	s := Spec{Within: 10, Slide: 3}
	// At t=12, open windows are 1..4; window 1 starts at 3.
	if got := s.OldestNeeded(12); got != 3 {
		t.Errorf("OldestNeeded(12) = %d, want 3", got)
	}
	if got := Global.OldestNeeded(1 << 40); got != 0 {
		t.Errorf("global OldestNeeded = %d, want 0", got)
	}
}
