// Package window implements the sliding-window arithmetic of the
// WITHIN/SLIDE clause (paper §6): window identifiers (wids), the set of
// windows an event falls into, pane sizing (paper §7, Time Panes), and
// window close detection.
//
// Window wid covers the half-open time interval
// [wid*Slide, wid*Slide+Within). An event at time t falls into
// k = Within/Slide windows in the steady state.
package window

import (
	"fmt"

	"github.com/greta-cep/greta/internal/event"
)

// Spec is a WITHIN/SLIDE window specification. A zero Spec (Within ==
// 0) means a single unbounded window covering the whole stream.
type Spec struct {
	Within event.Time
	Slide  event.Time
}

// Global is the unbounded single-window spec.
var Global = Spec{}

// Unbounded reports whether the spec is the single global window.
func (s Spec) Unbounded() bool { return s.Within <= 0 }

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Unbounded() {
		return nil
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: SLIDE must be positive, got %d", s.Slide)
	}
	if s.Slide > s.Within {
		return fmt.Errorf("window: SLIDE %d larger than WITHIN %d creates gaps; events between windows would be dropped", s.Slide, s.Within)
	}
	return nil
}

// Start returns the start time of window wid.
func (s Spec) Start(wid int64) event.Time {
	if s.Unbounded() {
		return 0
	}
	return wid * s.Slide
}

// End returns the exclusive end time of window wid.
func (s Spec) End(wid int64) event.Time {
	if s.Unbounded() {
		return 1<<63 - 1
	}
	return wid*s.Slide + s.Within
}

// K returns the maximum number of windows an event can fall into.
func (s Spec) K() int {
	if s.Unbounded() {
		return 1
	}
	return int((s.Within + s.Slide - 1) / s.Slide)
}

// Wids returns the inclusive range [lo, hi] of window ids containing
// time t. With an unbounded spec the range is [0, 0].
func (s Spec) Wids(t event.Time) (lo, hi int64) {
	if s.Unbounded() {
		return 0, 0
	}
	hi = floorDiv(t, s.Slide)
	lo = floorDiv(t-s.Within, s.Slide) + 1
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// Contains reports whether window wid contains time t.
func (s Spec) Contains(wid int64, t event.Time) bool {
	if s.Unbounded() {
		return true
	}
	return s.Start(wid) <= t && t < s.End(wid)
}

// ClosedBy returns the inclusive range [lo, hi] of window ids that are
// closed by the arrival of an event at time t: windows with End <= t
// that were still open at the previous observed time prev (exclusive).
// Returns ok == false when no window closes. Use prev = -1 initially.
func (s Spec) ClosedBy(prev, t event.Time) (lo, hi int64, ok bool) {
	if s.Unbounded() {
		return 0, 0, false
	}
	// Window wid closed iff wid*Slide + Within <= t.
	hi = floorDiv(t-s.Within, s.Slide)
	lo = floorDiv(prev-s.Within, s.Slide) + 1
	if prev < 0 {
		lo = 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}

// OldestNeeded returns the earliest time that can still contribute to
// any window open at time t; events (and panes) strictly older can be
// expired (paper §7, pane purge).
func (s Spec) OldestNeeded(t event.Time) event.Time {
	if s.Unbounded() {
		return 0
	}
	lo, _ := s.Wids(t)
	return s.Start(lo)
}

// PaneSize returns the duration of a Time Pane: gcd(Within, Slide),
// the largest interval such that every window is an integral union of
// panes (paper §7, citing Li et al.'s paired-window panes).
func (s Spec) PaneSize() event.Time {
	if s.Unbounded() {
		return 1 << 30
	}
	return gcd(s.Within, s.Slide)
}

func gcd(a, b event.Time) event.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b event.Time) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
