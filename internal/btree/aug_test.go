package btree

import (
	"math"
	"math/rand"
	"testing"
)

// testSum is a toy subtree summary: item count, value sum, key span.
type testSum struct {
	n        int
	total    int
	min, max float64
}

// testAug implements Summarizer[int, *testSum] and counts allocations
// so tests can verify recycling.
type testAug struct {
	free  []*testSum
	alloc int
}

func (a *testAug) get() *testSum {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	a.alloc++
	return &testSum{min: math.Inf(1), max: math.Inf(-1)}
}

func (a *testAug) Add(s *testSum, it Item[int]) *testSum {
	if s == nil {
		s = a.get()
	}
	s.n++
	s.total += it.Val
	if it.Key < s.min {
		s.min = it.Key
	}
	if it.Key > s.max {
		s.max = it.Key
	}
	return s
}

func (a *testAug) Merge(dst, src *testSum) *testSum {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = a.get()
	}
	dst.n += src.n
	dst.total += src.total
	if src.min < dst.min {
		dst.min = src.min
	}
	if src.max > dst.max {
		dst.max = src.max
	}
	return dst
}

func (a *testAug) Clear(s *testSum) *testSum {
	if s == nil {
		return nil
	}
	s.n, s.total = 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
	return s
}

// checkSums verifies the summary invariant at every node: sum equals
// the fold of the node's items plus its children's sums.
func checkSums(t *testing.T, tr *Tree[int, *testSum], n *node[int, *testSum]) (cnt, total int) {
	t.Helper()
	if n == nil {
		return 0, 0
	}
	for _, it := range n.items {
		cnt++
		total += it.Val
	}
	for _, c := range n.children {
		cc, ct := checkSums(t, tr, c)
		cnt += cc
		total += ct
	}
	if n.sum == nil {
		t.Fatalf("node with %d items has nil summary", len(n.items))
	}
	if n.sum.n != cnt || n.sum.total != total {
		t.Fatalf("subtree summary (n=%d, total=%d) != recomputed (n=%d, total=%d)",
			n.sum.n, n.sum.total, cnt, total)
	}
	return cnt, total
}

// TestAugmentedMaintenance drives random inserts and deletes through an
// augmented tree and revalidates every node's summary after each
// batch: splits, borrows, merges, and root shrinks must all maintain
// the fold.
func TestAugmentedMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aug := &testAug{}
	fl := NewFreeList[int, *testSum]()
	tr := NewAugmented(fl, aug)
	type kv struct {
		key float64
		id  uint64
	}
	var live []kv
	id := uint64(0)
	for round := 0; round < 60; round++ {
		for i := 0; i < 40; i++ {
			id++
			k := kv{float64(rng.Intn(50)), id}
			tr.Insert(k.key, k.id, int(k.id))
			live = append(live, k)
		}
		dels := rng.Intn(30)
		for i := 0; i < dels && len(live) > 0; i++ {
			j := rng.Intn(len(live))
			k := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if !tr.Delete(k.key, k.id) {
				t.Fatalf("round %d: delete (%v, %d) missing", round, k.key, k.id)
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: len %d, want %d", round, tr.Len(), len(live))
		}
		if tr.root != nil {
			checkSums(t, tr, tr.root)
		}
	}
}

// TestFoldRangeEquivalence checks that any accept/decline policy of the
// fold callback yields exactly the per-item range semantics: folded
// subtree summaries plus individually visited items must together
// cover the AscendRange result set, with nothing double counted.
func TestFoldRangeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	aug := &testAug{}
	tr := NewAugmented(NewFreeList[int, *testSum](), aug)
	for i := 0; i < 500; i++ {
		tr.Insert(float64(rng.Intn(100)), uint64(i+1), 1)
	}
	bounds := []struct {
		lo, hi         float64
		loIncl, hiIncl bool
	}{
		{math.Inf(-1), math.Inf(1), true, true},
		{20, 70, true, false},
		{20, 70, false, true},
		{33, 33, true, true},
		{math.Inf(-1), 55, true, false},
		{80, math.Inf(1), false, true},
	}
	for _, b := range bounds {
		want := 0
		tr.AscendRange(b.lo, b.hi, b.loIncl, b.hiIncl, func(Item[int]) bool {
			want++
			return true
		})
		// Policy: accept a subtree iff its key span is inside the range
		// (the runtime's containment rule) — randomly declining some
		// accepts must not change the total either.
		for _, flaky := range []bool{false, true} {
			got := 0
			tr.FoldRange(b.lo, b.hi, b.loIncl, b.hiIncl, func(s *testSum) bool {
				if s == nil || s.n == 0 {
					return true
				}
				okLo := s.min > b.lo || (b.loIncl && s.min == b.lo)
				okHi := s.max < b.hi || (b.hiIncl && s.max == b.hi)
				if !okLo || !okHi || (flaky && rng.Intn(2) == 0) {
					return false
				}
				got += s.n
				return true
			}, func(Item[int]) bool {
				got++
				return true
			})
			if got != want {
				t.Fatalf("bounds %+v flaky=%v: fold total %d, want %d", b, flaky, got, want)
			}
		}
	}
}

// TestAugmentedRecycling verifies that released nodes carry their
// cleared summaries back through the free list, so a steady
// release/rebuild cycle stops allocating summaries.
func TestAugmentedRecycling(t *testing.T) {
	aug := &testAug{}
	fl := NewFreeList[int, *testSum]()
	build := func() *Tree[int, *testSum] {
		tr := NewAugmented(fl, aug)
		for i := 0; i < 300; i++ {
			tr.Insert(float64(i%37), uint64(i+1), i)
		}
		checkSums(t, tr, tr.root)
		return tr
	}
	tr := build()
	tr.Release()
	allocAfterFirst := aug.alloc
	for i := 0; i < 5; i++ {
		tr = build()
		tr.Release()
	}
	if aug.alloc != allocAfterFirst {
		t.Fatalf("rebuild cycles allocated %d new summaries (had %d)", aug.alloc-allocAfterFirst, allocAfterFirst)
	}
}

// TestRebuildSummaries drives the in-place rebuild the runtime uses
// after an invalidation watermark advance: corrupt every node's
// summary, rebuild, and the invariant must hold again at every node —
// with the summaries recycled in place (no fresh allocations).
func TestRebuildSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	aug := &testAug{}
	tr := NewAugmented(NewFreeList[int, *testSum](), aug)
	for i := 0; i < 800; i++ {
		tr.Insert(float64(rng.Intn(100)), uint64(i+1), 1+rng.Intn(5))
	}
	if rs := tr.RootSummary(); rs == nil || rs.n != tr.Len() {
		t.Fatalf("root summary n = %v, want %d", rs, tr.Len())
	}
	var corrupt func(n *node[int, *testSum])
	corrupt = func(n *node[int, *testSum]) {
		n.sum.n += 1000
		n.sum.total = -1
		for _, c := range n.children {
			corrupt(c)
		}
	}
	corrupt(tr.root)
	allocsBefore := aug.alloc
	tr.RebuildSummaries()
	if aug.alloc != allocsBefore {
		t.Fatalf("rebuild allocated %d summaries, want 0 (in-place reuse)", aug.alloc-allocsBefore)
	}
	checkSums(t, tr, tr.root)
	if rs := tr.RootSummary(); rs.n != tr.Len() {
		t.Fatalf("rebuilt root summary n = %d, want %d", rs.n, tr.Len())
	}
	// Unaugmented and empty trees are no-ops.
	plain := New[int]()
	plain.Insert(1, 1, 1)
	plain.RebuildSummaries()
	empty := NewAugmented(NewFreeList[int, *testSum](), aug)
	empty.RebuildSummaries()
	if s := empty.RootSummary(); s != nil {
		t.Fatalf("empty tree root summary = %v, want nil", s)
	}
}
