package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAscend(t *testing.T) {
	tr := New[int]()
	for i := 99; i >= 0; i-- {
		tr.Insert(float64(i), uint64(i), i)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	var got []int
	tr.Ascend(func(it Item[int]) bool {
		got = append(got, it.Val)
		return true
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i%10), uint64(i), i)
	}
	count := 0
	tr.AscendRange(3, 6, true, false, func(it Item[int]) bool {
		if it.Key < 3 || it.Key >= 6 {
			t.Fatalf("key %v outside [3,6)", it.Key)
		}
		count++
		return true
	})
	if count != 15 { // keys 3,4,5 each appear 5 times
		t.Errorf("count = %d, want 15", count)
	}
	// Early stop.
	n := 0
	tr.AscendRange(math.Inf(-1), math.Inf(1), true, true, func(Item[int]) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestGetDelete(t *testing.T) {
	tr := New[string]()
	tr.Insert(1, 10, "a")
	tr.Insert(1, 11, "b")
	tr.Insert(2, 12, "c")
	if v, ok := tr.Get(1, 11); !ok || v != "b" {
		t.Fatalf("Get(1,11) = %v %v", v, ok)
	}
	if !tr.Delete(1, 11) {
		t.Fatal("Delete(1,11) = false")
	}
	if tr.Delete(1, 11) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tr.Get(1, 11); ok {
		t.Fatal("deleted item still present")
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestDeleteAllRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int]()
	const n = 1000
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Insert(float64(i/3), uint64(i), i)
	}
	perm2 := rng.Perm(n)
	for k, i := range perm2 {
		if !tr.Delete(float64(i/3), uint64(i)) {
			t.Fatalf("delete %d failed at step %d", i, k)
		}
		if tr.Len() != n-k-1 {
			t.Fatalf("len = %d, want %d", tr.Len(), n-k-1)
		}
	}
}

// TestQuickTreeMatchesSortedSlice: a B-tree loaded with random items
// must agree with a sorted reference slice on full scans and range
// scans, including after deletions.
func TestQuickTreeMatchesSortedSlice(t *testing.T) {
	type op struct {
		Key float64
		ID  uint64
	}
	f := func(seed int64, nRaw uint8, loRaw, hiRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%60 + 1
		tr := New[int]()
		var ref []op
		for i := 0; i < n; i++ {
			k := float64(rng.Intn(12))
			id := uint64(i)
			tr.Insert(k, id, i)
			ref = append(ref, op{k, id})
		}
		// Delete a random third.
		for i := 0; i < n/3; i++ {
			j := rng.Intn(len(ref))
			tr.Delete(ref[j].Key, ref[j].ID)
			ref = append(ref[:j], ref[j+1:]...)
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Key != ref[j].Key {
				return ref[i].Key < ref[j].Key
			}
			return ref[i].ID < ref[j].ID
		})
		var scan []op
		tr.Ascend(func(it Item[int]) bool {
			scan = append(scan, op{it.Key, it.ID})
			return true
		})
		if len(scan) != len(ref) || tr.Len() != len(ref) {
			return false
		}
		for i := range ref {
			if scan[i] != ref[i] {
				return false
			}
		}
		lo, hi := float64(loRaw%12), float64(hiRaw%12)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []op
		for _, r := range ref {
			if r.Key >= lo && r.Key < hi {
				want = append(want, r)
			}
		}
		var got []op
		tr.AscendRange(lo, hi, true, false, func(it Item[int]) bool {
			got = append(got, op{it.Key, it.ID})
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatal("empty len")
	}
	tr.Ascend(func(Item[int]) bool { t.Fatal("visited empty"); return false })
	if tr.Delete(1, 1) {
		t.Fatal("delete on empty succeeded")
	}
	if _, ok := tr.Get(1, 1); ok {
		t.Fatal("get on empty succeeded")
	}
}
