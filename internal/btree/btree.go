// Package btree implements the Vertex Tree of the GRETA runtime data
// structure (paper §7): an in-memory B-tree ordered by a float64 sort
// key (the most selective edge-predicate attribute) with a uint64
// tiebreaker (the event id). It supports logarithmic insertion and
// deletion and ascending range scans, which the runtime uses to find
// predecessor events satisfying a compiled edge-predicate range in
// O(log_b m + m') time.
package btree

// degree is the minimum number of children of an internal node. Nodes
// hold between degree-1 and 2*degree-1 items.
const degree = 16

const maxItems = 2*degree - 1

// Item is a keyed entry. Ordering is by (Key, ID).
type Item[V any] struct {
	Key float64
	ID  uint64
	Val V
}

func lessKey(k1 float64, id1 uint64, k2 float64, id2 uint64) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

type node[V any] struct {
	items    []Item[V]
	children []*node[V] // nil for leaves
}

func (n *node[V]) leaf() bool { return len(n.children) == 0 }

// Tree is a B-tree. The zero value is an empty tree ready to use.
type Tree[V any] struct {
	root *node[V]
	size int
	free *FreeList[V]
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// FreeList recycles tree nodes. All Vertex Trees of one graph share a
// free list, so nodes released when a pane expires are reused by later
// insertions instead of allocated. Single-owner state: not safe for
// concurrent use.
type FreeList[V any] struct {
	nodes []*node[V]
}

// NewFreeList returns an empty free list.
func NewFreeList[V any]() *FreeList[V] { return &FreeList[V]{} }

// NewWithFreeList returns an empty tree drawing nodes from f.
func NewWithFreeList[V any](f *FreeList[V]) *Tree[V] { return &Tree[V]{free: f} }

func (t *Tree[V]) newNode() *node[V] {
	if t.free != nil {
		if n := len(t.free.nodes); n > 0 {
			nd := t.free.nodes[n-1]
			t.free.nodes[n-1] = nil
			t.free.nodes = t.free.nodes[:n-1]
			return nd
		}
	}
	return &node[V]{}
}

func (t *Tree[V]) putNode(n *node[V]) {
	if t.free == nil {
		return
	}
	n.items = n.items[:0]
	n.children = n.children[:0]
	t.free.nodes = append(t.free.nodes, n)
}

// Release empties the tree, returning every node to the free list.
func (t *Tree[V]) Release() {
	if t.root != nil {
		t.releaseNode(t.root)
	}
	t.root = nil
	t.size = 0
}

func (t *Tree[V]) releaseNode(n *node[V]) {
	for _, c := range n.children {
		t.releaseNode(c)
	}
	t.putNode(n)
}

// Len returns the number of items.
func (t *Tree[V]) Len() int { return t.size }

// Insert adds an item. Duplicate (Key, ID) pairs are allowed and kept
// adjacent; the runtime never produces them because event ids are
// unique per graph.
func (t *Tree[V]) Insert(key float64, id uint64, val V) {
	it := Item[V]{key, id, val}
	if t.root == nil {
		t.root = t.newNode()
		t.root.items = append(t.root.items, it)
		t.size = 1
		return
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = t.newNode()
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
	}
	t.insertInto(t.root, it)
	t.size++
}

// findSlot returns the index of the first item in n not less than
// (key, id).
func (n *node[V]) findSlot(key float64, id uint64) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if lessKey(n.items[mid].Key, n.items[mid].ID, key, id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitChild splits the full child at index i, lifting the median item
// into n.
func (t *Tree[V]) splitChild(n *node[V], i int) {
	child := n.children[i]
	mid := degree - 1
	median := child.items[mid]
	right := t.newNode()
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	n.items = append(n.items, Item[V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (t *Tree[V]) insertInto(n *node[V], it Item[V]) {
	i := n.findSlot(it.Key, it.ID)
	if n.leaf() {
		n.items = append(n.items, Item[V]{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return
	}
	if len(n.children[i].items) == maxItems {
		t.splitChild(n, i)
		if lessKey(n.items[i].Key, n.items[i].ID, it.Key, it.ID) {
			i++
		}
	}
	t.insertInto(n.children[i], it)
}

// AscendRange visits items with keys in the interval defined by lo/hi
// in ascending (Key, ID) order. Inclusive bounds are controlled by
// loIncl/hiIncl; use math.Inf for unbounded sides. The visit function
// returns false to stop early.
func (t *Tree[V]) AscendRange(lo, hi float64, loIncl, hiIncl bool, visit func(Item[V]) bool) {
	if t.root == nil {
		return
	}
	t.root.ascend(lo, hi, loIncl, hiIncl, visit)
}

func (n *node[V]) ascend(lo, hi float64, loIncl, hiIncl bool, visit func(Item[V]) bool) bool {
	i := 0
	if lo > negInf {
		// Skip children that hold only keys below the lower bound.
		if loIncl {
			i = n.findSlot(lo, 0)
		} else {
			i = n.findSlotAfterKey(lo)
		}
	}
	for ; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, loIncl, hiIncl, visit) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		it := n.items[i]
		if inLo(it.Key, lo, loIncl) {
			if !inHi(it.Key, hi, hiIncl) {
				return false
			}
			if !visit(it) {
				return false
			}
		} else if it.Key > hi {
			return false
		}
	}
	return true
}

// findSlotAfterKey returns the index of the first item with Key
// strictly greater than key.
func (n *node[V]) findSlotAfterKey(key float64) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].Key <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

const negInf = -1.7976931348623157e308 // ~ -MaxFloat64 sentinel comparisons use >

func inLo(k, lo float64, incl bool) bool {
	if incl {
		return k >= lo
	}
	return k > lo
}

func inHi(k, hi float64, incl bool) bool {
	if incl {
		return k <= hi
	}
	return k < hi
}

// Ascend visits all items in ascending order.
func (t *Tree[V]) Ascend(visit func(Item[V]) bool) {
	if t.root == nil {
		return
	}
	t.root.ascendAll(visit)
}

func (n *node[V]) ascendAll(visit func(Item[V]) bool) bool {
	for i := 0; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascendAll(visit) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		if !visit(n.items[i]) {
			return false
		}
	}
	return true
}

// Get returns the value stored under (key, id).
func (t *Tree[V]) Get(key float64, id uint64) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i := n.findSlot(key, id)
		if i < len(n.items) && n.items[i].Key == key && n.items[i].ID == id {
			return n.items[i].Val, true
		}
		if n.leaf() {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Delete removes the item with exactly (key, id) and reports whether it
// was present.
func (t *Tree[V]) Delete(key float64, id uint64) bool {
	if t.root == nil {
		return false
	}
	ok := t.deleteFrom(t.root, key, id)
	if len(t.root.items) == 0 {
		old := t.root
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
		t.putNode(old)
	}
	if ok {
		t.size--
	}
	return ok
}

func (t *Tree[V]) deleteFrom(n *node[V], key float64, id uint64) bool {
	i := n.findSlot(key, id)
	found := i < len(n.items) && n.items[i].Key == key && n.items[i].ID == id
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor (max of left subtree), then delete it
		// from the left subtree.
		left := n.children[i]
		if len(left.items) >= degree {
			pred := left.max()
			n.items[i] = pred
			return t.deleteFrom(left, pred.Key, pred.ID)
		}
		right := n.children[i+1]
		if len(right.items) >= degree {
			succ := right.min()
			n.items[i] = succ
			return t.deleteFrom(right, succ.Key, succ.ID)
		}
		// Merge left, median, right into left and recurse.
		t.mergeAt(n, i)
		return t.deleteFrom(n.children[i], key, id)
	}
	// Descend into children[i], topping it up first if minimal. fill may
	// merge the last child into its left sibling, shifting the target
	// child index down by one.
	if len(n.children[i].items) < degree {
		t.fill(n, i)
		if i > len(n.children)-1 {
			i = len(n.children) - 1
		}
	}
	return t.deleteFrom(n.children[i], key, id)
}

func (n *node[V]) min() Item[V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node[V]) max() Item[V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// mergeAt folds children[i], items[i], children[i+1] into children[i].
func (t *Tree[V]) mergeAt(n *node[V], i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	t.putNode(right)
}

// fill ensures children[i] has at least degree items by borrowing from
// a sibling or merging.
func (t *Tree[V]) fill(n *node[V], i int) {
	if i > 0 && len(n.children[i-1].items) >= degree {
		// Borrow from left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, Item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		right.items = right.items[:len(right.items)-1]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
		}
		return
	}
	if i < len(n.children)-1 {
		t.mergeAt(n, i)
	} else {
		t.mergeAt(n, i-1)
	}
}
