// Package btree implements the Vertex Tree of the GRETA runtime data
// structure (paper §7): an in-memory B-tree ordered by a float64 sort
// key (the most selective edge-predicate attribute) with a uint64
// tiebreaker (the event id). It supports logarithmic insertion and
// deletion and ascending range scans, which the runtime uses to find
// predecessor events satisfying a compiled edge-predicate range in
// O(log_b m + m') time.
//
// Trees can additionally be augmented with per-subtree summaries
// (NewAugmented): every node carries a Summarizer-maintained fold of
// its whole subtree, kept incrementally through insert, delete, split,
// merge, and node recycling. FoldRange then aggregates a key range by
// merging O(log_b m) subtree summaries instead of visiting each item,
// which the runtime uses to fold all predecessor payloads of a range
// in logarithmic — and for a fully covered tree, constant — time.
package btree

// degree is the minimum number of children of an internal node. Nodes
// hold between degree-1 and 2*degree-1 items.
const degree = 16

const maxItems = 2*degree - 1

// Item is a keyed entry. Ordering is by (Key, ID).
type Item[V any] struct {
	Key float64
	ID  uint64
	Val V
}

// Summarizer maintains per-subtree summaries of type S for an
// augmented tree. S is typically a pointer type whose zero value means
// "empty"; Add and Merge take and return the summary so an
// implementation can allocate (or recycle) one lazily on first use.
// Merge must not mutate src. Clear empties a summary for reuse,
// releasing any pooled resources it holds.
type Summarizer[V, S any] interface {
	Add(s S, it Item[V]) S
	Merge(dst, src S) S
	Clear(s S) S
}

func lessKey(k1 float64, id1 uint64, k2 float64, id2 uint64) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

type node[V, S any] struct {
	items    []Item[V]
	children []*node[V, S] // nil for leaves
	// sum is the Summarizer fold over the whole subtree rooted here;
	// only maintained when the owning tree is augmented.
	sum S
}

func (n *node[V, S]) leaf() bool { return len(n.children) == 0 }

// Tree is a B-tree. The zero value is an empty tree ready to use. The
// second type parameter is the subtree-summary type of augmented trees;
// plain trees instantiate it with struct{} (see New).
type Tree[V, S any] struct {
	root *node[V, S]
	size int
	free *FreeList[V, S]
	aug  Summarizer[V, S]
}

// New returns an empty, unaugmented tree.
func New[V any]() *Tree[V, struct{}] { return &Tree[V, struct{}]{} }

// FreeList recycles tree nodes. All Vertex Trees of one graph share a
// free list, so nodes released when a pane expires are reused by later
// insertions instead of allocated. Single-owner state: not safe for
// concurrent use. Augmented and plain trees may share a free list as
// long as they agree on S; recycled nodes keep their (cleared) summary
// so its backing storage is reused too.
type FreeList[V, S any] struct {
	nodes []*node[V, S]
}

// NewFreeList returns an empty free list.
func NewFreeList[V, S any]() *FreeList[V, S] { return &FreeList[V, S]{} }

// NewWithFreeList returns an empty tree drawing nodes from f.
func NewWithFreeList[V, S any](f *FreeList[V, S]) *Tree[V, S] { return &Tree[V, S]{free: f} }

// NewAugmented returns an empty tree drawing nodes from f that
// maintains per-subtree summaries through aug.
func NewAugmented[V, S any](f *FreeList[V, S], aug Summarizer[V, S]) *Tree[V, S] {
	return &Tree[V, S]{free: f, aug: aug}
}

// Augmented reports whether the tree maintains subtree summaries.
func (t *Tree[V, S]) Augmented() bool { return t.aug != nil }

func (t *Tree[V, S]) newNode() *node[V, S] {
	if t.free != nil {
		if n := len(t.free.nodes); n > 0 {
			nd := t.free.nodes[n-1]
			t.free.nodes[n-1] = nil
			t.free.nodes = t.free.nodes[:n-1]
			return nd
		}
	}
	return &node[V, S]{}
}

func (t *Tree[V, S]) putNode(n *node[V, S]) {
	if t.aug != nil {
		// Release pooled summary resources even when the node itself is
		// not recycled; the emptied summary stays attached for reuse.
		n.sum = t.aug.Clear(n.sum)
	}
	if t.free == nil {
		return
	}
	n.items = n.items[:0]
	n.children = n.children[:0]
	t.free.nodes = append(t.free.nodes, n)
}

// recompute rebuilds n's subtree summary from its items and its
// children's (already correct) summaries.
func (t *Tree[V, S]) recompute(n *node[V, S]) {
	n.sum = t.aug.Clear(n.sum)
	for _, it := range n.items {
		n.sum = t.aug.Add(n.sum, it)
	}
	for _, c := range n.children {
		n.sum = t.aug.Merge(n.sum, c.sum)
	}
}

// RootSummary returns the summary covering the whole tree — the §7
// pane summary when the tree holds one Time Pane's vertices — or the
// zero S when the tree is empty or unaugmented. Callers use it to
// inspect staleness before a FoldRange (e.g. watermark-version checks)
// without descending.
func (t *Tree[V, S]) RootSummary() S {
	var zero S
	if t.root == nil || t.aug == nil {
		return zero
	}
	return t.root.sum
}

// RebuildSummaries recomputes every node's subtree summary from the
// stored items, bottom-up and in place (summaries and their pooled
// resources are recycled through the Summarizer's Clear, not
// reallocated). The runtime calls it when an external condition the
// Summarizer folds over has changed for already-stored items — e.g.
// when an invalidation watermark advance retracts stored payload
// contributions — making the incremental summaries stale wholesale.
// O(m) in the number of stored items, amortized against the event
// batches between such changes.
func (t *Tree[V, S]) RebuildSummaries() {
	if t.aug == nil || t.root == nil {
		return
	}
	t.rebuildNode(t.root)
}

func (t *Tree[V, S]) rebuildNode(n *node[V, S]) {
	for _, c := range n.children {
		t.rebuildNode(c)
	}
	t.recompute(n)
}

// Release empties the tree, returning every node to the free list.
func (t *Tree[V, S]) Release() {
	if t.root != nil {
		t.releaseNode(t.root)
	}
	t.root = nil
	t.size = 0
}

func (t *Tree[V, S]) releaseNode(n *node[V, S]) {
	for _, c := range n.children {
		t.releaseNode(c)
	}
	t.putNode(n)
}

// Len returns the number of items.
func (t *Tree[V, S]) Len() int { return t.size }

// Insert adds an item. Duplicate (Key, ID) pairs are allowed and kept
// adjacent; the runtime never produces them because event ids are
// unique per graph.
func (t *Tree[V, S]) Insert(key float64, id uint64, val V) {
	it := Item[V]{key, id, val}
	if t.root == nil {
		t.root = t.newNode()
		t.root.items = append(t.root.items, it)
		t.size = 1
		if t.aug != nil {
			t.root.sum = t.aug.Add(t.root.sum, it)
		}
		return
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = t.newNode()
		t.root.children = append(t.root.children, old)
		t.splitChild(t.root, 0)
		if t.aug != nil {
			// The fresh root starts with an empty summary; rebuild it from
			// the median item and the two (just recomputed) halves.
			t.recompute(t.root)
		}
	}
	t.insertInto(t.root, it)
	t.size++
}

// findSlot returns the index of the first item in n not less than
// (key, id).
func (n *node[V, S]) findSlot(key float64, id uint64) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if lessKey(n.items[mid].Key, n.items[mid].ID, key, id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitChild splits the full child at index i, lifting the median item
// into n. n's own summary is unchanged (its subtree keeps the same
// contents); the two halves are recomputed.
func (t *Tree[V, S]) splitChild(n *node[V, S], i int) {
	child := n.children[i]
	mid := degree - 1
	median := child.items[mid]
	right := t.newNode()
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if !child.leaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	n.items = append(n.items, Item[V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if t.aug != nil {
		t.recompute(child)
		t.recompute(right)
	}
}

func (t *Tree[V, S]) insertInto(n *node[V, S], it Item[V]) {
	if t.aug != nil {
		// Every node on the descent path gains the item in its subtree.
		n.sum = t.aug.Add(n.sum, it)
	}
	i := n.findSlot(it.Key, it.ID)
	if n.leaf() {
		n.items = append(n.items, Item[V]{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return
	}
	if len(n.children[i].items) == maxItems {
		t.splitChild(n, i)
		if lessKey(n.items[i].Key, n.items[i].ID, it.Key, it.ID) {
			i++
		}
	}
	t.insertInto(n.children[i], it)
}

// AscendRange visits items with keys in the interval defined by lo/hi
// in ascending (Key, ID) order. Inclusive bounds are controlled by
// loIncl/hiIncl; use math.Inf for unbounded sides. The visit function
// returns false to stop early.
func (t *Tree[V, S]) AscendRange(lo, hi float64, loIncl, hiIncl bool, visit func(Item[V]) bool) {
	if t.root == nil {
		return
	}
	t.root.ascend(lo, hi, loIncl, hiIncl, visit)
}

func (n *node[V, S]) ascend(lo, hi float64, loIncl, hiIncl bool, visit func(Item[V]) bool) bool {
	i := 0
	if lo > negInf {
		// Skip children that hold only keys below the lower bound.
		if loIncl {
			i = n.findSlot(lo, 0)
		} else {
			i = n.findSlotAfterKey(lo)
		}
	}
	for ; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, loIncl, hiIncl, visit) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		it := n.items[i]
		if inLo(it.Key, lo, loIncl) {
			if !inHi(it.Key, hi, hiIncl) {
				return false
			}
			if !visit(it) {
				return false
			}
		} else if it.Key > hi {
			return false
		}
	}
	return true
}

// FoldRange aggregates the key range over an augmented tree. Walking
// top-down, every subtree's summary is first offered to fold; fold
// returns true to consume the whole subtree in O(1) and false to
// decline (typically because the summary's key span is not fully
// inside the caller's range, or the subtree needs per-item checks) —
// the subtree is then descended, deeper summaries are offered again,
// and items of nodes that are never consumed wholesale go through
// visit with exactly AscendRange's in-range filtering. visit returns
// false to stop the whole fold early.
//
// The containment decision lives entirely in the Summarizer's data
// (e.g. a tracked min/max key), which keeps FoldRange agnostic to the
// caller's range semantics. On an unaugmented tree FoldRange degrades
// to AscendRange.
func (t *Tree[V, S]) FoldRange(lo, hi float64, loIncl, hiIncl bool, fold func(S) bool, visit func(Item[V]) bool) {
	if t.root == nil {
		return
	}
	if t.aug == nil {
		t.root.ascend(lo, hi, loIncl, hiIncl, visit)
		return
	}
	t.foldNode(t.root, lo, hi, loIncl, hiIncl, fold, visit)
}

// foldNode recursively folds n's subtree: wholesale when the caller
// accepts its summary, per child/item otherwise.
func (t *Tree[V, S]) foldNode(n *node[V, S], lo, hi float64, loIncl, hiIncl bool, fold func(S) bool, visit func(Item[V]) bool) bool {
	if fold(n.sum) {
		return true
	}
	i := 0
	if lo > negInf {
		// Skip children that hold only keys below the lower bound.
		if loIncl {
			i = n.findSlot(lo, 0)
		} else {
			i = n.findSlotAfterKey(lo)
		}
	}
	for ; i <= len(n.items); i++ {
		if !n.leaf() {
			if !t.foldNode(n.children[i], lo, hi, loIncl, hiIncl, fold, visit) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		it := n.items[i]
		if inLo(it.Key, lo, loIncl) {
			if !inHi(it.Key, hi, hiIncl) {
				return false
			}
			if !visit(it) {
				return false
			}
		} else if it.Key > hi {
			return false
		}
	}
	return true
}

// findSlotAfterKey returns the index of the first item with Key
// strictly greater than key.
func (n *node[V, S]) findSlotAfterKey(key float64) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.items[mid].Key <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

const negInf = -1.7976931348623157e308 // ~ -MaxFloat64 sentinel comparisons use >

func inLo(k, lo float64, incl bool) bool {
	if incl {
		return k >= lo
	}
	return k > lo
}

func inHi(k, hi float64, incl bool) bool {
	if incl {
		return k <= hi
	}
	return k < hi
}

// Ascend visits all items in ascending order.
func (t *Tree[V, S]) Ascend(visit func(Item[V]) bool) {
	if t.root == nil {
		return
	}
	t.root.ascendAll(visit)
}

func (n *node[V, S]) ascendAll(visit func(Item[V]) bool) bool {
	for i := 0; i <= len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascendAll(visit) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		if !visit(n.items[i]) {
			return false
		}
	}
	return true
}

// Get returns the value stored under (key, id).
func (t *Tree[V, S]) Get(key float64, id uint64) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i := n.findSlot(key, id)
		if i < len(n.items) && n.items[i].Key == key && n.items[i].ID == id {
			return n.items[i].Val, true
		}
		if n.leaf() {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Delete removes the item with exactly (key, id) and reports whether it
// was present.
func (t *Tree[V, S]) Delete(key float64, id uint64) bool {
	if t.root == nil {
		return false
	}
	ok := t.deleteFrom(t.root, key, id)
	if len(t.root.items) == 0 {
		old := t.root
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
		old.children = old.children[:0]
		t.putNode(old)
	}
	if ok {
		t.size--
	}
	return ok
}

func (t *Tree[V, S]) deleteFrom(n *node[V, S], key float64, id uint64) bool {
	i := n.findSlot(key, id)
	found := i < len(n.items) && n.items[i].Key == key && n.items[i].ID == id
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		if t.aug != nil {
			t.recompute(n)
		}
		return true
	}
	ok := false
	if found {
		// Replace with predecessor (max of left subtree), then delete it
		// from the left subtree.
		left := n.children[i]
		if len(left.items) >= degree {
			pred := left.max()
			n.items[i] = pred
			ok = t.deleteFrom(left, pred.Key, pred.ID)
		} else if right := n.children[i+1]; len(right.items) >= degree {
			succ := right.min()
			n.items[i] = succ
			ok = t.deleteFrom(right, succ.Key, succ.ID)
		} else {
			// Merge left, median, right into left and recurse.
			t.mergeAt(n, i)
			ok = t.deleteFrom(n.children[i], key, id)
		}
	} else {
		// Descend into children[i], topping it up first if minimal. fill
		// may merge the last child into its left sibling, shifting the
		// target child index down by one.
		if len(n.children[i].items) < degree {
			t.fill(n, i)
			if i > len(n.children)-1 {
				i = len(n.children) - 1
			}
		}
		ok = t.deleteFrom(n.children[i], key, id)
	}
	if ok && t.aug != nil {
		t.recompute(n)
	}
	return ok
}

func (n *node[V, S]) min() Item[V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node[V, S]) max() Item[V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// mergeAt folds children[i], items[i], children[i+1] into children[i].
func (t *Tree[V, S]) mergeAt(n *node[V, S], i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	right.children = right.children[:0]
	t.putNode(right)
	if t.aug != nil {
		t.recompute(left)
	}
}

// fill ensures children[i] has at least degree items by borrowing from
// a sibling or merging.
func (t *Tree[V, S]) fill(n *node[V, S], i int) {
	if i > 0 && len(n.children[i-1].items) >= degree {
		// Borrow from left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, Item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		if t.aug != nil {
			t.recompute(left)
			t.recompute(child)
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		right.items = right.items[:len(right.items)-1]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
		}
		if t.aug != nil {
			t.recompute(right)
			t.recompute(child)
		}
		return
	}
	if i < len(n.children)-1 {
		t.mergeAt(n, i)
	} else {
		t.mergeAt(n, i-1)
	}
}
