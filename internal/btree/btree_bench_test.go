package btree

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1000, uint64(i), i)
	}
}

func BenchmarkRangeScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(rng.Float64()*1000, uint64(i), i)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 990
		tr.AscendRange(lo, lo+10, true, false, func(Item[int]) bool {
			total++
			return true
		})
	}
	_ = total
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, b.N)
	tr := New[int]()
	for i := 0; i < b.N; i++ {
		keys[i] = rng.Float64() * 1000
		tr.Insert(keys[i], uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Delete(keys[i], uint64(i))
	}
}
