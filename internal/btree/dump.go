package btree

import (
	"errors"
	"fmt"
)

// DumpNodes walks the tree's nodes in pre-order, calling visit once per
// node with the node's items, its subtree summary, and its child count
// (0 for leaves, len(items)+1 otherwise). Children follow their parent
// in the same pre-order, so a reader that records child counts can
// reconstruct the exact node topology with BuildNodes. visit returns
// false to stop early.
//
// Checkpointing uses this to serialize a Vertex Tree bit-identically:
// re-inserting items would rebuild summaries in a different fold order
// and a different node shape, changing float results and traversal
// stats on resume.
func (t *Tree[V, S]) DumpNodes(visit func(items []Item[V], sum S, children int) bool) {
	if t.root == nil {
		return
	}
	t.root.dump(visit)
}

func (n *node[V, S]) dump(visit func(items []Item[V], sum S, children int) bool) bool {
	if !visit(n.items, n.sum, len(n.children)) {
		return false
	}
	for _, c := range n.children {
		if !c.dump(visit) {
			return false
		}
	}
	return true
}

// maxBuildDepth bounds BuildNodes' recursion. A degree-16 B-tree of
// depth 40 holds at least 16^39 items; any deeper input is corrupt.
const maxBuildDepth = 40

// BuildNodes reconstructs a tree from the pre-order node sequence
// produced by DumpNodes. next is called once per node and returns the
// node's items, its subtree summary (assigned directly, never folded —
// the caller owns summary fidelity), and its child count. Nodes are
// drawn from f, so restore feeds the same recycling pools as live
// operation. aug may be nil for an unaugmented tree.
//
// Structural invariants are validated (item counts, child counts,
// depth) so that corrupt input yields an error, never a panic or a
// runaway allocation. Key ordering is NOT validated; the checkpoint
// layer's checksum owns integrity.
func BuildNodes[V, S any](f *FreeList[V, S], aug Summarizer[V, S], next func() ([]Item[V], S, int, error)) (*Tree[V, S], error) {
	t := &Tree[V, S]{free: f, aug: aug}
	root, count, err := t.buildNode(next, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.size = count
	return t, nil
}

func (t *Tree[V, S]) buildNode(next func() ([]Item[V], S, int, error), depth int) (*node[V, S], int, error) {
	if depth > maxBuildDepth {
		return nil, 0, errors.New("btree: node depth exceeds bound (corrupt input)")
	}
	items, sum, children, err := next()
	if err != nil {
		return nil, 0, err
	}
	if len(items) == 0 || len(items) > maxItems {
		return nil, 0, fmt.Errorf("btree: node has %d items, want 1..%d", len(items), maxItems)
	}
	if children != 0 && children != len(items)+1 {
		return nil, 0, fmt.Errorf("btree: node has %d children for %d items, want 0 or %d",
			children, len(items), len(items)+1)
	}
	n := t.newNode()
	n.items = append(n.items, items...)
	n.sum = sum
	count := len(items)
	for i := 0; i < children; i++ {
		c, cc, err := t.buildNode(next, depth+1)
		if err != nil {
			// Abandon the partial subtree to the garbage collector: putNode
			// would Clear caller-owned summaries, and this path only runs
			// on corrupt input that the caller discards wholesale.
			return nil, 0, err
		}
		n.children = append(n.children, c)
		count += cc
	}
	return n, count, nil
}
