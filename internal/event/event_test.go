package event

import (
	"testing"
)

func TestBuilderAndStream(t *testing.T) {
	var b Builder
	b.Add("A", 1, map[string]float64{"x": 5})
	b.AddStr("B", 2, nil, map[string]string{"g": "g1"})
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].ID != 1 || evs[1].ID != 2 {
		t.Errorf("ids = %d, %d", evs[0].ID, evs[1].ID)
	}
	s := b.Stream()
	if s.Len() != 2 {
		t.Fatalf("stream len = %d", s.Len())
	}
	got := Collect(s)
	if len(got) != 2 {
		t.Fatalf("collected %d", len(got))
	}
	s.Reset()
	if e := s.Next(); e == nil || e.Type != "A" {
		t.Error("reset failed")
	}
}

func TestAttrAccess(t *testing.T) {
	e := &Event{Type: "A", Time: 3, Attrs: map[string]float64{"x": 1}, Str: map[string]string{"c": "IBM"}}
	if v, ok := e.Attr("x"); !ok || v != 1 {
		t.Error("Attr")
	}
	if _, ok := e.Attr("y"); ok {
		t.Error("missing Attr should not be ok")
	}
	if s, ok := e.StrAttr("c"); !ok || s != "IBM" {
		t.Error("StrAttr")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Event{Type: "A", Time: 7}
	if e.String() != "a7" {
		t.Errorf("short form = %q", e.String())
	}
	e = &Event{Type: "Stock", Time: 7, ID: 3}
	if e.String() != "Stock@7#3" {
		t.Errorf("long form = %q", e.String())
	}
}

func TestValidateOrder(t *testing.T) {
	var b Builder
	b.Add("A", 5, nil)
	b.Add("A", 3, nil)
	if err := Validate(b.Events()); err == nil {
		t.Error("expected out-of-order error")
	}
	var b2 Builder
	b2.Add("A", 1, nil)
	b2.Add("A", 1, nil)
	b2.Add("B", 2, nil)
	if err := Validate(b2.Events()); err != nil {
		t.Errorf("equal timestamps are in order: %v", err)
	}
	if !Sorted(b2.Events()) {
		t.Error("Sorted = false")
	}
}

func TestChanStream(t *testing.T) {
	ch := make(chan *Event, 2)
	ch <- &Event{Type: "A", Time: 1}
	ch <- &Event{Type: "B", Time: 2}
	close(ch)
	s := &ChanStream{C: ch}
	evs := Collect(s)
	if len(evs) != 2 || evs[1].Type != "B" {
		t.Errorf("collected %v", evs)
	}
}
