package event

import (
	"fmt"
	"math"
)

// Batch is a columnar block of schema-bound events of one type: dense
// per-attribute values laid out in schema slot order, materialized as
// Event rows whose Num/StrV slices alias the batch's backing arrays.
// Appending never probes attribute maps — a batch row carries nil
// Attrs/Str maps, so its dense slots fully determine every attribute
// read (NaN marks an absent numeric value, "" an absent string, the
// same markers Schema.Bind writes).
//
// That absence convention is the batch contract: a batch cannot
// represent a *present* NaN attribute (it reads as absent) or a
// present empty-string attribute (it reads as missing for partition
// identity). Sources with such values must fall back to the per-event
// path for those events.
//
// A batch handed to Runtime.ProcessBatch transfers ownership of its
// rows to the runtime: graphs retain pointers into the batch's Event
// array, so the caller must not Reset or reuse the batch while any
// window that saw its rows is still open. Ingest loops that recycle
// batches should allocate a fresh one per ProcessBatch call or rotate
// through enough batches to outlive the window span.
type Batch struct {
	sch *Schema
	// evs is the materialized row storage; rows aliases it as the
	// *Event view the engines consume.
	evs  []Event
	rows []*Event
	// num and strv are the dense backing arrays, row-major with strides
	// len(sch.Numeric) and len(sch.Strings): row i's numeric slots are
	// num[i*nw : (i+1)*nw]. Row-major keeps each Event's Num/StrV a
	// contiguous sub-slice while column access stays a strided walk.
	num  []float64
	strv []string
	n    int
}

// NewBatch returns an empty batch bound to sch with capacity for n
// rows. The schema must not be nil; its Type stamps every row.
func NewBatch(sch *Schema, n int) *Batch {
	if sch == nil {
		panic("event: NewBatch requires a schema")
	}
	b := &Batch{sch: sch}
	b.grow(n)
	return b
}

func (b *Batch) grow(n int) {
	if n <= cap(b.evs) {
		return
	}
	nw, sw := len(b.sch.Numeric), len(b.sch.Strings)
	evs := make([]Event, n)
	rows := make([]*Event, n)
	num := make([]float64, n*nw)
	strv := make([]string, n*sw)
	copy(evs, b.evs[:b.n])
	copy(num, b.num[:b.n*nw])
	copy(strv, b.strv[:b.n*sw])
	b.evs, b.rows, b.num, b.strv = evs, rows, num, strv
	// Re-slice moved rows onto the new backing arrays.
	for i := 0; i < b.n; i++ {
		b.wire(i)
	}
}

// wire points row i's Event at its dense sub-slices.
func (b *Batch) wire(i int) {
	nw, sw := len(b.sch.Numeric), len(b.sch.Strings)
	ev := &b.evs[i]
	ev.Sch = b.sch
	if nw > 0 {
		ev.Num = b.num[i*nw : (i+1)*nw : (i+1)*nw]
	}
	if sw > 0 {
		ev.StrV = b.strv[i*sw : (i+1)*sw : (i+1)*sw]
	}
	b.rows[i] = ev
}

// Append adds one row. num and strs are in schema slot order
// (Schema.Numeric / Schema.Strings); nil or short slices leave the
// remaining slots absent (NaN / ""). The row's ID must follow the
// stream's sequence-number discipline and its Time the batch's
// non-decreasing order for the fast ingest path to accept it.
func (b *Batch) Append(id uint64, t Time, num []float64, strs []string) {
	i := b.n
	b.grow(growCap(i + 1))
	b.n = i + 1
	nw, sw := len(b.sch.Numeric), len(b.sch.Strings)
	ev := &b.evs[i]
	*ev = Event{ID: id, Type: b.sch.Type, Time: t}
	b.wire(i)
	for j := 0; j < nw; j++ {
		if j < len(num) {
			ev.Num[j] = num[j]
		} else {
			ev.Num[j] = math.NaN()
		}
	}
	for j := 0; j < sw; j++ {
		if j < len(strs) {
			ev.StrV[j] = strs[j]
		} else {
			ev.StrV[j] = ""
		}
	}
}

// growCap doubles capacity with a small floor, amortizing Append.
func growCap(need int) int {
	c := 16
	for c < need {
		c *= 2
	}
	return c
}

// AppendEvent copies a map-carried event of the batch's type into the
// next row, binding it to the batch schema. It returns an error when
// the event cannot round-trip through the dense representation: a type
// mismatch, an attribute the schema does not list, a NaN numeric
// value, or an empty-string value (the latter two collide with the
// absence markers). Callers route such events through the per-event
// path instead.
func (b *Batch) AppendEvent(ev *Event) error {
	if ev.Type != b.sch.Type {
		return fmt.Errorf("event: batch type %q cannot hold %q", b.sch.Type, ev.Type)
	}
	for a, v := range ev.Attrs {
		if b.sch.NumSlot(a) < 0 {
			return fmt.Errorf("event: attribute %q not in batch schema", a)
		}
		if math.IsNaN(v) {
			return fmt.Errorf("event: NaN value for %q collides with the absence marker", a)
		}
	}
	for a, v := range ev.Str {
		if b.sch.StrSlot(a) < 0 {
			return fmt.Errorf("event: string attribute %q not in batch schema", a)
		}
		if v == "" {
			return fmt.Errorf("event: empty string for %q collides with the absence marker", a)
		}
	}
	i := b.n
	b.Append(ev.ID, ev.Time, nil, nil)
	row := &b.evs[i]
	for j, a := range b.sch.Numeric {
		if v, ok := ev.Attrs[a]; ok {
			row.Num[j] = v
		}
	}
	for j, a := range b.sch.Strings {
		row.StrV[j] = ev.Str[a]
	}
	return nil
}

// Schema returns the schema every row is bound to.
func (b *Batch) Schema() *Schema { return b.sch }

// Type returns the event type of every row.
func (b *Batch) Type() Type { return b.sch.Type }

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Rows returns the materialized row view, one *Event per appended row,
// aliasing the batch's dense storage.
func (b *Batch) Rows() []*Event { return b.rows[:b.n] }

// Row returns row i.
func (b *Batch) Row(i int) *Event { return b.rows[i] }

// NumColumn returns a strided accessor for the numeric attribute in
// slot s: the value of row i is col[i*stride + s]. It returns the
// backing array and stride rather than copying a column out.
func (b *Batch) NumColumn() (col []float64, stride int) {
	return b.num, len(b.sch.Numeric)
}

// StrColumn returns a strided accessor for the string attribute in
// slot s: the value of row i is col[i*stride + s]. It returns the
// backing array and stride rather than copying a column out.
func (b *Batch) StrColumn() (col []string, stride int) {
	return b.strv, len(b.sch.Strings)
}

// Reset empties the batch for reuse. Only safe once no engine retains
// the previous rows (see the ownership note on Batch).
func (b *Batch) Reset() { b.n = 0 }
