package event

import "math"

// Accessor reads one named attribute of events, resolving the dense
// schema slot once per schema and reusing it for every subsequent event
// of that schema. Steady-state reads are two array indexings — no map
// probe, no allocation. The dense arrays are a cache over the
// attribute maps, which stay the source of truth: attributes the
// schema does not list, and slot values marking absence (NaN / ""),
// fall back to the maps, so an Accessor is always correct to use —
// including on events bound to a partial schema.
//
// The slot cache is mutated on schema change, so an Accessor must not
// be shared between goroutines; the runtime keeps one set per graph.
type Accessor struct {
	attr string
	sch  *Schema // schema the cached slots were resolved against
	num  int
	str  int
}

// NewAccessor returns an accessor for the named attribute.
func NewAccessor(attr string) Accessor {
	return Accessor{attr: attr, num: -1, str: -1}
}

// Attr returns the attribute name the accessor reads.
func (a *Accessor) Attr() string { return a.attr }

// resolve points the slot cache at e's schema. Returns false when the
// event is schemaless and the maps must be used.
func (a *Accessor) resolve(e *Event) bool {
	if e.Sch == nil {
		return false
	}
	if e.Sch != a.sch {
		a.sch = e.Sch
		a.num = e.Sch.NumSlot(a.attr)
		a.str = e.Sch.StrSlot(a.attr)
	}
	return true
}

// Float returns the numeric value of the attribute and whether it is
// present. A NaN dense slot marks absence at Bind; both that case and
// attributes outside the schema re-check the map, so a stored NaN or a
// partial schema read the same as the schemaless fallback.
func (a *Accessor) Float(e *Event) (float64, bool) {
	if a.resolve(e) && a.num >= 0 && a.num < len(e.Num) {
		if v := e.Num[a.num]; !math.IsNaN(v) {
			return v, true
		}
	}
	v, ok := e.Attrs[a.attr]
	return v, ok
}

// Str returns the string value of the attribute and whether it is
// present. An empty dense slot marks absence at Bind; both that case
// and attributes outside the schema re-check the map, so a stored
// empty string or a partial schema read the same as the schemaless
// fallback.
func (a *Accessor) Str(e *Event) (string, bool) {
	if a.resolve(e) && a.str >= 0 && a.str < len(e.StrV) {
		if s := e.StrV[a.str]; s != "" {
			return s, true
		}
	}
	s, ok := e.Str[a.attr]
	return s, ok
}
