// Package event defines the GRETA data model: typed events with
// application timestamps and attribute maps, arriving on an in-order
// stream (paper §2).
//
// Time is a linearly ordered set of points. The paper models T ⊆ Q+; we
// use int64 ticks (the unit is left to the application: seconds in the
// paper's workloads). Events must arrive in non-decreasing timestamp
// order; out-of-order handling is delegated to upstream mechanisms as in
// the paper.
package event

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"
)

// Time is an application timestamp (a point in the paper's linearly
// ordered time domain T).
type Time = int64

// Type identifies an event type E. A type is described by a Schema.
type Type string

// Event is a single stream message: something of interest that happened
// in the real world at Time, of a given Type, carrying named attributes.
//
// ID is a per-stream sequence number assigned by the source; it breaks
// ties between events that share a timestamp and serves as a stable
// identity for graph vertices.
type Event struct {
	ID    uint64
	Type  Type
	Time  Time
	Attrs map[string]float64
	// Str holds string-valued attributes (e.g. company, sector) used by
	// equivalence predicates and grouping. Numeric attributes live in
	// Attrs so predicate evaluation stays allocation-free.
	Str map[string]string

	// Sch, Num, and StrV are the schema-compiled dense representation:
	// when Sch is non-nil, Num is aligned with Sch.Numeric (NaN marks an
	// absent value) and StrV with Sch.Strings ("" marks an absent value).
	// The runtime reads attributes through these arrays by precompiled
	// slot index instead of probing the maps, keeping the per-event hot
	// path free of hashing. Populate them once at ingest with
	// Schema.Bind; events without a schema fall back to the maps.
	Sch  *Schema
	Num  []float64
	StrV []string
}

// Attr returns the numeric attribute named name and whether it exists.
func (e *Event) Attr(name string) (float64, bool) {
	v, ok := e.Attrs[name]
	return v, ok
}

// StrAttr returns the string attribute named name and whether it exists.
func (e *Event) StrAttr(name string) (string, bool) {
	v, ok := e.Str[name]
	return v, ok
}

// String renders the event as "a1", "b7" style when the type is a single
// letter (as in the paper's figures), otherwise "Type@time#id".
func (e *Event) String() string {
	t := string(e.Type)
	if len(t) == 1 {
		return fmt.Sprintf("%s%d", strings.ToLower(t), e.Time)
	}
	return fmt.Sprintf("%s@%d#%d", t, e.Time, e.ID)
}

// Schema describes the attributes of an event type. Generators attach
// schemas so tooling can introspect workloads, and the runtime compiles
// attribute access against them: events bound to a schema (Schema.Bind)
// carry dense slot arrays that replace map probes on the hot path.
type Schema struct {
	Type    Type
	Numeric []string
	Strings []string
}

// NumSlot returns the dense slot index of a numeric attribute, or -1.
// Attribute counts are small, so a linear scan beats a map and needs no
// precomputed state (keeping Schema values safe for concurrent reads).
func (s *Schema) NumSlot(name string) int {
	for i, n := range s.Numeric {
		if n == name {
			return i
		}
	}
	return -1
}

// StrSlot returns the dense slot index of a string attribute, or -1.
func (s *Schema) StrSlot(name string) int {
	for i, n := range s.Strings {
		if n == name {
			return i
		}
	}
	return -1
}

// Bind attaches the schema to e and populates its dense slot arrays
// from the attribute maps. Absent numeric attributes read as NaN,
// absent strings as "". Call once per event at ingest; concurrent
// consumers may then read the arrays freely.
func (s *Schema) Bind(e *Event) {
	e.Sch = s
	if len(s.Numeric) > 0 {
		if cap(e.Num) >= len(s.Numeric) {
			e.Num = e.Num[:len(s.Numeric)]
		} else {
			e.Num = make([]float64, len(s.Numeric))
		}
		for i, n := range s.Numeric {
			if v, ok := e.Attrs[n]; ok {
				e.Num[i] = v
			} else {
				e.Num[i] = math.NaN()
			}
		}
	}
	if len(s.Strings) > 0 {
		if cap(e.StrV) >= len(s.Strings) {
			e.StrV = e.StrV[:len(s.Strings)]
		} else {
			e.StrV = make([]string, len(s.Strings))
		}
		for i, n := range s.Strings {
			e.StrV[i] = e.Str[n]
		}
	}
}

// BindAll binds each event whose type has a schema in schemas; events
// of other types are left schemaless (the runtime falls back to map
// access for them).
func BindAll(evs []*Event, schemas []*Schema) {
	for _, ev := range evs {
		for _, s := range schemas {
			if s.Type == ev.Type {
				s.Bind(ev)
				break
			}
		}
	}
}

// Stream is a finite, in-order sequence of events. The runtime consumes
// streams through iteration so that channel-fed, generator-fed, and
// slice-backed streams share one interface.
type Stream interface {
	// Next returns the next event, or nil when the stream is exhausted.
	Next() *Event
}

// SliceStream adapts a []*Event to Stream.
type SliceStream struct {
	events []*Event
	pos    int
}

// NewSliceStream returns a Stream over evs. It does not copy evs.
func NewSliceStream(evs []*Event) *SliceStream {
	return &SliceStream{events: evs}
}

// Next implements Stream.
func (s *SliceStream) Next() *Event {
	if s.pos >= len(s.events) {
		return nil
	}
	e := s.events[s.pos]
	s.pos++
	return e
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of events in the stream.
func (s *SliceStream) Len() int { return len(s.events) }

// FuncStream adapts a generator function to Stream: each Next calls f,
// and the stream ends when f returns nil. Useful for synthetic and
// unbounded sources.
type FuncStream func() *Event

// Next implements Stream.
func (f FuncStream) Next() *Event { return f() }

// ChanStream adapts a receive channel to Stream, enabling live ingestion
// from concurrent producers.
type ChanStream struct {
	C <-chan *Event
}

// Next implements Stream. It blocks until an event is available and
// returns nil once the channel is closed.
func (s *ChanStream) Next() *Event {
	e, ok := <-s.C
	if !ok {
		return nil
	}
	return e
}

// Collect drains a stream into a slice.
func Collect(s Stream) []*Event {
	var out []*Event
	for e := s.Next(); e != nil; e = s.Next() {
		out = append(out, e)
	}
	return out
}

// Sorted reports whether evs is in non-decreasing time order with
// strictly increasing IDs among equal timestamps.
func Sorted(evs []*Event) bool {
	return slices.IsSortedFunc(evs, func(a, b *Event) int {
		if c := cmp.Compare(a.Time, b.Time); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// Validate checks in-order arrival (paper §2 assumes in-order streams)
// and returns a descriptive error on the first violation.
func Validate(evs []*Event) error {
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			return fmt.Errorf("event: out-of-order timestamp at index %d: %d after %d",
				i, evs[i].Time, evs[i-1].Time)
		}
	}
	return nil
}

// Builder constructs in-order test and example streams with automatic
// IDs. The zero value is ready to use.
type Builder struct {
	evs    []*Event
	nextID uint64
}

// Add appends an event of the given type and time with optional numeric
// attributes supplied as alternating name, value pairs.
func (b *Builder) Add(typ Type, t Time, attrs map[string]float64) *Builder {
	b.nextID++
	b.evs = append(b.evs, &Event{ID: b.nextID, Type: typ, Time: t, Attrs: attrs})
	return b
}

// AddStr appends an event carrying both numeric and string attributes.
func (b *Builder) AddStr(typ Type, t Time, attrs map[string]float64, strs map[string]string) *Builder {
	b.nextID++
	b.evs = append(b.evs, &Event{ID: b.nextID, Type: typ, Time: t, Attrs: attrs, Str: strs})
	return b
}

// Events returns the accumulated events. The builder remains usable.
func (b *Builder) Events() []*Event { return b.evs }

// Stream returns a SliceStream over the accumulated events.
func (b *Builder) Stream() *SliceStream { return NewSliceStream(b.evs) }
