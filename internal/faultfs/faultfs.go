// Package faultfs is a fault-injection harness for the checkpoint
// store: a checkpoint.FS decorator that can tear writes after a byte
// budget, fail with ENOSPC, fail fsync, and crash during rename
// (leaving the temp file behind, as a real crash between rename
// scheduling and durability would). It drives the recovery tests —
// torn writes, full disks, corrupt files, and interrupted renames must
// all degrade to the previous checkpoint generation, loudly, never to
// silent data loss.
package faultfs

import (
	"errors"
	"os"
	"syscall"

	"github.com/greta-cep/greta/internal/checkpoint"
)

// ErrInjected marks failures produced by the harness (wrapped around
// the specific errno where one applies).
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner checkpoint.FS with programmable faults. The zero
// fault configuration passes everything through. Not safe for
// concurrent mutation of the fault fields while a Store call runs.
type FS struct {
	Inner checkpoint.FS

	// FailWriteAfter tears writes: after this many bytes have been
	// written (across all files since the last reset), every Write
	// returns an injected ENOSPC. < 0 disables.
	FailWriteAfter int64
	// FailSync makes File.Sync fail.
	FailSync bool
	// FailRename makes Rename fail, leaving the temp file behind —
	// the on-disk state of a crash during rename.
	FailRename bool
	// FailSyncDir makes SyncDir fail.
	FailSyncDir bool

	written int64
	// Writes counts File.Write calls (diagnostics).
	Writes int
}

// New returns a pass-through FS over the real filesystem.
func New() *FS { return &FS{Inner: checkpoint.OSFS{}, FailWriteAfter: -1} }

// Reset clears the written-byte budget counter.
func (f *FS) Reset() { f.written = 0 }

func (f *FS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FS) Create(name string) (checkpoint.File, error) {
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if f.FailRename {
		return errors.Join(ErrInjected, syscall.EIO)
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.Inner.Remove(name) }

func (f *FS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

func (f *FS) ReadFile(name string) ([]byte, error) { return f.Inner.ReadFile(name) }

func (f *FS) SyncDir(dir string) error {
	if f.FailSyncDir {
		return errors.Join(ErrInjected, syscall.EIO)
	}
	return f.Inner.SyncDir(dir)
}

type file struct {
	fs    *FS
	inner checkpoint.File
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.Writes++
	if lim := w.fs.FailWriteAfter; lim >= 0 {
		room := lim - w.fs.written
		if room <= 0 {
			return 0, errors.Join(ErrInjected, syscall.ENOSPC)
		}
		if int64(len(p)) > room {
			// Torn write: part of the payload lands, then the disk is full.
			n, err := w.inner.Write(p[:room])
			w.fs.written += int64(n)
			if err != nil {
				return n, err
			}
			return n, errors.Join(ErrInjected, syscall.ENOSPC)
		}
	}
	n, err := w.inner.Write(p)
	w.fs.written += int64(n)
	return n, err
}

func (w *file) Sync() error {
	if w.fs.FailSync {
		return errors.Join(ErrInjected, syscall.EIO)
	}
	return w.inner.Sync()
}

func (w *file) Close() error { return w.inner.Close() }

// Corrupt flips one byte in the named file at the given offset
// (negative offsets count from the end), simulating bit rot that the
// checkpoint checksum must catch.
func Corrupt(name string, offset int64) error {
	data, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += int64(len(data))
	}
	if offset < 0 || offset >= int64(len(data)) {
		return errors.New("faultfs: corrupt offset out of range")
	}
	data[offset] ^= 0xff
	return os.WriteFile(name, data, 0o644)
}

// Truncate cuts the named file to n bytes (negative n removes -n bytes
// from the end), simulating a torn tail.
func Truncate(name string, n int64) error {
	info, err := os.Stat(name)
	if err != nil {
		return err
	}
	if n < 0 {
		n += info.Size()
	}
	if n < 0 {
		n = 0
	}
	return os.Truncate(name, n)
}
