// Package share implements the shared sub-plan network that lets a
// Runtime serve many statements from one GRETA graph (the Rete
// insight applied to event trend aggregation: statements whose
// trend-formation plans coincide reuse one alpha/beta network instead
// of evaluating private copies).
//
// The package owns the three mechanisms that make sharing safe and
// the runtime composes:
//
//   - Signature: the canonical trend-formation identity of a compiled
//     statement — pattern shape, predicate set, window WITHIN/SLIDE,
//     partition-by attributes, event selection semantics, arithmetic
//     mode, and scan discipline. Two statements with equal signatures
//     form bit-identical trend sets over any stream; only their RETURN
//     aggregates may diverge.
//
//   - Index: an epoch-gated intern table from signature keys to share
//     nodes. A node is attachable only while the ingest epoch it was
//     created in is still current (no event has been processed since):
//     a statement registered mid-stream must never join a warm graph,
//     because its PR-4 watermark contract says it sees only events
//     from its registration watermark on — it opens a new node (a new
//     shared graph seeded at that watermark) instead.
//
//   - Output fan-out: per-subscriber RETURN aggregates planned into
//     the shared graph's union aggregation definition. The shared
//     graph maintains one payload per (vertex, window) covering the
//     union of all subscribers' slots; at window close each
//     subscriber's final values are extracted from the same payload
//     through its own slot mapping.
//
// The package deliberately knows nothing about engines or graphs (the
// core package instantiates Index with its own entry type), so the
// sharing policy is testable in isolation.
package share

import (
	"strconv"
	"strings"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/query"
)

// Signature is the canonical trend-formation identity of a statement:
// everything that influences which trends form and how they are
// scanned, and nothing that only influences what is returned per
// trend set. Statements with equal signatures may share one graph;
// their RETURN clauses fan out through Output mappings.
type Signature struct {
	// Pattern is the canonical pattern text (aliases included: two
	// patterns spelled with different aliases conservatively do not
	// share, since predicates reference aliases).
	Pattern string
	// Where is the canonical predicate conjunction, in query order
	// (conservative: reordered conjuncts change the Vertex Tree sort
	// attribute selection and therefore the scan stats).
	Where string
	// Equiv and GroupBy are the partition-by attribute lists, in query
	// order (their concatenation is the routing signature).
	Equiv   string
	GroupBy string
	// Within and Slide identify the window plan.
	Within, Slide int64
	// Semantics is the event selection semantics.
	Semantics string
	// MinLen is the minimal-trend-length constraint (unrolled into the
	// pattern by the planner, so it shapes the template).
	MinLen int
	// Mode is the aggregation arithmetic (native or exact).
	Mode uint8
	// ForceScan pins the scan discipline: a forced per-vertex engine
	// and a summary-folding engine produce identical results but
	// different traversal stats, so they do not share.
	ForceScan bool
}

// SignatureOf canonicalizes a parsed query (plus the per-registration
// knobs that shape execution) into its sharing signature.
func SignatureOf(q *query.Query, mode aggregate.Mode, forceScan bool) Signature {
	sig := Signature{
		Pattern:   q.Pattern.String(),
		Equiv:     strings.Join(q.Equivalence, ","),
		GroupBy:   strings.Join(q.GroupBy, ","),
		Within:    int64(q.Window.Within),
		Slide:     int64(q.Window.Slide),
		Semantics: q.Semantics.String(),
		MinLen:    q.MinLen,
		Mode:      uint8(mode),
		ForceScan: forceScan,
	}
	if q.Where != nil {
		sig.Where = q.Where.String()
	}
	return sig
}

// Key renders the signature as an intern-table key.
func (s Signature) Key() string {
	var b strings.Builder
	b.Grow(len(s.Pattern) + len(s.Where) + len(s.Equiv) + len(s.GroupBy) + 32)
	for i, part := range []string{s.Pattern, s.Where, s.Equiv, s.GroupBy, s.Semantics} {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(part)
	}
	b.WriteByte('\x1f')
	b.WriteString(strconv.FormatInt(s.Within, 10))
	b.WriteByte('\x1f')
	b.WriteString(strconv.FormatInt(s.Slide, 10))
	b.WriteByte('\x1f')
	b.WriteString(strconv.Itoa(s.MinLen))
	b.WriteByte('\x1f')
	b.WriteString(strconv.Itoa(int(s.Mode)))
	if s.ForceScan {
		b.WriteString("\x1fforce")
	}
	return b.String()
}

// Node is one interned sub-plan: the shared network's handle on a
// candidate or promoted shared graph of type E.
type Node[E any] struct {
	key     string
	seq     uint64
	retired bool
	// Val is the caller's entry (the core package stores its candidate
	// statement or shared-engine record here).
	Val E
}

// Key returns the node's signature key.
func (n *Node[E]) Key() string { return n.key }

// Index is the epoch-gated intern table of the shared sub-plan
// network. Advance marks the start of a new ingest epoch (an event was
// processed); nodes interned in earlier epochs stop being attachable —
// their graphs are warm, and a warm graph's history would violate a
// newly registered statement's watermark contract. Warm nodes keep
// serving their existing subscribers; they simply stop accepting new
// ones, and a later registration with the same signature interns a
// fresh node over the stale slot.
type Index[E any] struct {
	seq   uint64
	nodes map[string]*Node[E]
}

// NewIndex returns an empty index at epoch zero.
func NewIndex[E any]() *Index[E] {
	return &Index[E]{nodes: map[string]*Node[E]{}}
}

// Advance starts a new ingest epoch, making previously interned nodes
// non-attachable. Call once per processed event (including dropped
// ones: an engine that counted a drop already diverges from a fresh
// engine's stats).
func (ix *Index[E]) Advance() { ix.seq++ }

// AdvanceN advances the epoch by n ingest events at once (the batch
// ingest path's bulk equivalent of n Advance calls).
func (ix *Index[E]) AdvanceN(n uint64) { ix.seq += n }

// Seq returns the current epoch (diagnostics).
func (ix *Index[E]) Seq() uint64 { return ix.seq }

// Attachable returns the node interned under key if it is still
// attachable: interned in the current epoch and not retired.
func (ix *Index[E]) Attachable(key string) (*Node[E], bool) {
	n := ix.nodes[key]
	if n == nil || n.retired || n.seq != ix.seq {
		return nil, false
	}
	return n, true
}

// Put interns val under key at the current epoch, replacing any stale
// node occupying the slot (the stale node's subscribers keep their
// pointer; only the index forgets it).
func (ix *Index[E]) Put(key string, val E) *Node[E] {
	n := &Node[E]{key: key, seq: ix.seq, Val: val}
	ix.nodes[key] = n
	return n
}

// Retire removes a node from the index (its last subscriber detached,
// or its graph was flushed). Idempotent; a nil node is ignored.
func (ix *Index[E]) Retire(n *Node[E]) {
	if n == nil || n.retired {
		return
	}
	n.retired = true
	if ix.nodes[n.key] == n {
		delete(ix.nodes, n.key)
	}
}

// Output maps one RETURN aggregate of a subscriber onto the shared
// graph's union aggregation definition: the aggregate spec plus its
// slot indices in the union payload (Slot2 carries AVG's count slot).
type Output struct {
	Spec  aggregate.Spec
	Slot  int
	Slot2 int
}

// PlanOutputs plans a subscriber's RETURN aggregates into the shared
// union definition, registering any slots the union does not carry yet
// (AddSlot deduplicates, so overlapping subscribers reuse slots). Must
// run before the shared engine is compiled against def: compiled specs
// snapshot the slot layout.
func PlanOutputs(def *aggregate.Def, specs []aggregate.Spec) []Output {
	outs := make([]Output, len(specs))
	for i, sp := range specs {
		s1, s2 := def.Plan(sp)
		outs[i] = Output{Spec: sp, Slot: s1, Slot2: s2}
	}
	return outs
}

// OutputValues extracts one subscriber's final values from a shared
// union payload. Slot arithmetic is independent per slot, so the
// values are bit-identical to what a private engine carrying only the
// subscriber's slots would produce.
func OutputValues(def *aggregate.Def, p *aggregate.Payload, outs []Output) []float64 {
	if len(outs) == 0 {
		return nil
	}
	vals := make([]float64, len(outs))
	for i, o := range outs {
		vals[i] = def.Value(p, o.Spec, o.Slot, o.Slot2)
	}
	return vals
}
