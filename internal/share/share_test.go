package share_test

import (
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/query"
	"github.com/greta-cep/greta/internal/share"
)

func key(t *testing.T, src string, mode aggregate.Mode, force bool) string {
	t.Helper()
	return share.SignatureOf(query.MustParse(src), mode, force).Key()
}

// TestSignatureKeys pins the sharing policy: RETURN divergence shares,
// every trend-formation difference does not.
func TestSignatureKeys(t *testing.T) {
	base := "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5"
	same := []string{
		// Different RETURN aggregates over the same trend set.
		"RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
		"RETURN COUNT(*), MIN(S.price), AVG(S.price) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
	}
	diff := []string{
		// Pattern shape.
		"RETURN COUNT(*) PATTERN SEQ(Halt H, Stock S+) WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
		// Predicate set.
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price < NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
		// Equivalence attributes.
		"RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5",
		// Grouping.
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 20 SLIDE 5",
		// Window plan.
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 10",
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company",
		// Selection semantics.
		"RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price GROUP-BY company WITHIN 20 SLIDE 5 SEMANTICS skip-till-next-match",
		// Alias renaming (conservative: predicates reference aliases).
		"RETURN COUNT(*) PATTERN Stock T+ WHERE [company] AND T.price > NEXT(T).price GROUP-BY company WITHIN 20 SLIDE 5",
	}
	bk := key(t, base, aggregate.ModeNative, false)
	for _, src := range same {
		if got := key(t, src, aggregate.ModeNative, false); got != bk {
			t.Errorf("RETURN-divergent statement has different key:\n%s\nvs\n%s", got, bk)
		}
	}
	for _, src := range diff {
		if got := key(t, src, aggregate.ModeNative, false); got == bk {
			t.Errorf("trend-formation-divergent statement %q shares the key", src)
		}
	}
	// Arithmetic mode and scan discipline split the key too.
	if key(t, base, aggregate.ModeExact, false) == bk {
		t.Error("exact-mode statement shares the native key")
	}
	if key(t, base, aggregate.ModeNative, true) == bk {
		t.Error("forced-scan statement shares the folding key")
	}
}

// TestIndexEpochs pins the attach window: nodes accept subscribers
// only until the next event is processed; stale slots are replaced.
func TestIndexEpochs(t *testing.T) {
	ix := share.NewIndex[int]()
	n1 := ix.Put("k", 1)
	if got, ok := ix.Attachable("k"); !ok || got != n1 {
		t.Fatal("fresh node must be attachable")
	}
	ix.Advance() // an event was processed: the graph is warm
	if _, ok := ix.Attachable("k"); ok {
		t.Fatal("warm node must not be attachable")
	}
	// A new registration interns a fresh node over the stale slot; the
	// stale node keeps existing for its subscribers.
	n2 := ix.Put("k", 2)
	if got, ok := ix.Attachable("k"); !ok || got != n2 {
		t.Fatal("replacement node must be attachable")
	}
	ix.Retire(n2)
	if _, ok := ix.Attachable("k"); ok {
		t.Fatal("retired node must not be attachable")
	}
	// Retiring the stale node must not disturb the slot's current owner.
	n3 := ix.Put("k", 3)
	ix.Retire(n1)
	if got, ok := ix.Attachable("k"); !ok || got != n3 {
		t.Fatal("retiring a stale node evicted the current one")
	}
}

// TestOutputFanout pins the union-definition fan-out: subscribers with
// divergent RETURN clauses read their own slots from one payload, and
// overlapping slots are shared rather than duplicated.
func TestOutputFanout(t *testing.T) {
	def := &aggregate.Def{Mode: aggregate.ModeNative}
	subA := share.PlanOutputs(def, []aggregate.Spec{
		{Kind: aggregate.CountStar},
		{Kind: aggregate.Sum, Type: "Stock", Attr: "price"},
	})
	subB := share.PlanOutputs(def, []aggregate.Spec{
		{Kind: aggregate.Sum, Type: "Stock", Attr: "price"},
		{Kind: aggregate.Min, Type: "Stock", Attr: "price"},
	})
	if len(def.Slots) != 2 {
		t.Fatalf("union def has %d slots, want 2 (SUM shared, MIN added)", len(def.Slots))
	}
	if subA[1].Slot != subB[0].Slot {
		t.Fatalf("overlapping SUM slot not shared: %d vs %d", subA[1].Slot, subB[0].Slot)
	}
	p := def.New()
	p.Count = 7
	p.Slots[subA[1].Slot].F = 42.5
	p.Slots[subB[1].Slot].F = 3.25
	if got := share.OutputValues(def, p, subA); got[0] != 7 || got[1] != 42.5 {
		t.Errorf("subscriber A values = %v, want [7 42.5]", got)
	}
	if got := share.OutputValues(def, p, subB); got[0] != 42.5 || got[1] != 3.25 {
		t.Errorf("subscriber B values = %v, want [42.5 3.25]", got)
	}
}
