package faultnet

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// pipe returns a wrapped client conn talking to a raw server conn over
// loopback TCP.
func pipe(t *testing.T, f *Faults) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { raw.Close(); server.Close() })
	return f.Conn(raw), server
}

func TestCutAfterWritesTearsAndResets(t *testing.T) {
	f := New()
	f.CutAfterWrites(10)
	c, s := pipe(t, f)

	if n, err := c.Write([]byte("eightby!")); n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// 2 bytes of budget remain: the next write tears after a prefix.
	n, err := c.Write([]byte("hello"))
	if n != 2 {
		t.Fatalf("torn write landed %d bytes, want 2", n)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("torn write error = %v, want injected ECONNRESET", err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write error = %v, want injected", err)
	}
	// The peer sees exactly the 10 budgeted bytes, then EOF.
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if string(got) != "eightby!he" {
		t.Fatalf("peer got %q, want %q", got, "eightby!he")
	}
	if f.BytesWritten() != 10 {
		t.Fatalf("BytesWritten = %d, want 10", f.BytesWritten())
	}
}

func TestCutWakesBlockedRead(t *testing.T) {
	f := New()
	c, _ := pipe(t, f)
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := c.Read(buf)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read block
	f.Cut()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("read error after Cut = %v, want injected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not wake after Cut")
	}
}

func TestMaxWriteChunksButDelivers(t *testing.T) {
	f := New()
	f.SetMaxWrite(3)
	c, s := pipe(t, f)
	msg := []byte("fragmented across many small packets\n")
	if n, err := c.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	c.Close()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("peer got %q, want %q", got, msg)
	}
}

func TestBlackholeSwallowsWrites(t *testing.T) {
	f := New()
	f.SetBlackhole(true)
	c, s := pipe(t, f)
	if n, err := c.Write([]byte("into the void")); n != 13 || err != nil {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	_ = s.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := s.Read(buf); n != 0 || err == nil {
		t.Fatalf("peer received %d bytes (%v), want none", n, err)
	}
	if f.BytesWritten() != 13 {
		t.Fatalf("BytesWritten = %d, want 13 (writer believed it delivered)", f.BytesWritten())
	}
}

func TestLatencyDelaysOps(t *testing.T) {
	f := New()
	f.SetLatency(30 * time.Millisecond)
	c, s := pipe(t, f)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 30ms", d)
	}
	buf := make([]byte, 1)
	if _, err := s.Read(buf); err != nil {
		t.Fatal(err)
	}
}

func TestCutAfterReads(t *testing.T) {
	f := New()
	f.CutAfterReads(4)
	c, s := pipe(t, f)
	if _, err := s.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("budgeted read: n=%d err=%v, want 4 bytes clean", n, err)
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget read error = %v, want injected", err)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	f := New()
	f.CutAfterWrites(5)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := f.Listener(ln)
	defer wrapped.Close()
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			return
		}
		_, _ = c.Write([]byte("0123456789")) // tears at 5
		c.Close()
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, _ := io.ReadAll(cl)
	if string(got) != "01234" {
		t.Fatalf("client got %q, want %q", got, "01234")
	}
}
