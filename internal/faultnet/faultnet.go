// Package faultnet is a fault-injection harness for network sessions:
// net.Conn/net.Listener decorators with programmable faults —
// connection reset after a byte budget (torn mid-line), an explicit
// Cut that severs a live connection, bounded per-Write chunking
// (packet-boundary fragmentation), added latency, and a blackhole mode
// whose writes vanish without error (a dead peer absorbed by TCP
// buffering). It mirrors internal/faultfs for the wire: netstream's
// resume tests kill the connection at every event boundary and must
// recover exactly-once results, loudly, never silently diverging.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"time"
)

// ErrInjected marks failures produced by the harness (joined with the
// specific errno where one applies), so tests can tell an injected
// fault from a real one.
var ErrInjected = errors.New("faultnet: injected fault")

func errReset() error { return errors.Join(ErrInjected, syscall.ECONNRESET) }

// Faults is a programmable fault plan shared by every connection
// wrapped through it. The zero budgets pass everything through; all
// methods are safe for concurrent use (Cut races live reads/writes by
// design — that is the fault being injected).
type Faults struct {
	mu           sync.Mutex
	cutWriteLeft int64 // remaining write-byte budget; <0 disables
	cutReadLeft  int64 // remaining read-byte budget; <0 disables
	maxWrite     int   // chunk underlying writes to at most this many bytes
	latency      time.Duration
	blackhole    bool
	cut          bool
	bytesRead    int64
	bytesWritten int64
	conns        []net.Conn
}

// New returns a pass-through fault plan.
func New() *Faults { return &Faults{cutWriteLeft: -1, cutReadLeft: -1} }

// CutAfterWrites arms a write budget: after n more bytes have been
// written across all wrapped connections, the write tears (a prefix
// lands, the rest is lost) and every further operation fails with an
// injected ECONNRESET. n = 0 severs on the next write.
func (f *Faults) CutAfterWrites(n int64) {
	f.mu.Lock()
	f.cutWriteLeft = n
	f.mu.Unlock()
}

// CutAfterReads arms the equivalent read budget.
func (f *Faults) CutAfterReads(n int64) {
	f.mu.Lock()
	f.cutReadLeft = n
	f.mu.Unlock()
}

// SetLatency delays every read and write by d.
func (f *Faults) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// SetMaxWrite chunks each underlying write to at most n bytes,
// exercising line reassembly across arbitrary packet boundaries.
// 0 disables.
func (f *Faults) SetMaxWrite(n int) {
	f.mu.Lock()
	f.maxWrite = n
	f.mu.Unlock()
}

// SetBlackhole makes writes report success while delivering nothing —
// the peer is gone but TCP buffering hides it, the failure mode
// heartbeats exist to expose. Reads are unaffected (they block, as
// they would against a silent peer).
func (f *Faults) SetBlackhole(on bool) {
	f.mu.Lock()
	f.blackhole = on
	f.mu.Unlock()
}

// Cut severs every wrapped connection now: in-flight blocked reads
// wake with an error, and every further operation fails with an
// injected ECONNRESET.
func (f *Faults) Cut() {
	f.mu.Lock()
	f.tripLocked()
	f.mu.Unlock()
}

// tripLocked marks the plan severed and closes the underlying
// connections so blocked peers notice.
func (f *Faults) tripLocked() {
	if f.cut {
		return
	}
	f.cut = true
	for _, c := range f.conns {
		_ = c.Close()
	}
}

// BytesWritten reports the bytes successfully written through wrapped
// connections (blackholed bytes count — the writer believed them
// delivered).
func (f *Faults) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesWritten
}

// BytesRead reports the bytes read through wrapped connections.
func (f *Faults) BytesRead() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesRead
}

// Conn wraps one established connection under the plan.
func (f *Faults) Conn(c net.Conn) net.Conn {
	f.mu.Lock()
	f.conns = append(f.conns, c)
	cut := f.cut
	f.mu.Unlock()
	if cut {
		_ = c.Close()
	}
	return &conn{Conn: c, f: f}
}

// Listener wraps a listener so every accepted connection is under the
// plan (server-side injection).
func (f *Faults) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, f: f}
}

type listener struct {
	net.Listener
	f *Faults
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.Conn(c), nil
}

type conn struct {
	net.Conn
	f *Faults
}

func (c *conn) delay() {
	c.f.mu.Lock()
	d := c.f.latency
	c.f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func (c *conn) Write(p []byte) (int, error) {
	c.delay()
	f := c.f
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return 0, errReset()
	}
	if f.blackhole {
		f.bytesWritten += int64(len(p))
		f.mu.Unlock()
		return len(p), nil
	}
	torn := false
	n := len(p)
	if f.cutWriteLeft >= 0 {
		if int64(n) >= f.cutWriteLeft {
			// Torn write: the budgeted prefix lands, then the reset.
			n = int(f.cutWriteLeft)
			torn = true
		}
		f.cutWriteLeft -= int64(n)
	}
	chunk := f.maxWrite
	f.mu.Unlock()

	written := 0
	for written < n {
		end := n
		if chunk > 0 && written+chunk < n {
			end = written + chunk
		}
		m, err := c.Conn.Write(p[written:end])
		written += m
		if err != nil {
			f.mu.Lock()
			f.bytesWritten += int64(written)
			f.mu.Unlock()
			return written, err
		}
	}
	f.mu.Lock()
	f.bytesWritten += int64(written)
	if torn {
		f.tripLocked()
	}
	f.mu.Unlock()
	if torn {
		return written, errReset()
	}
	return written, nil
}

func (c *conn) Read(p []byte) (int, error) {
	c.delay()
	f := c.f
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return 0, errReset()
	}
	torn := false
	if f.cutReadLeft >= 0 {
		if f.cutReadLeft == 0 {
			f.tripLocked()
			f.mu.Unlock()
			return 0, errReset()
		}
		if int64(len(p)) > f.cutReadLeft {
			p = p[:f.cutReadLeft]
			torn = true // this read may exhaust the budget
		}
	}
	f.mu.Unlock()

	n, err := c.Conn.Read(p)

	f.mu.Lock()
	f.bytesRead += int64(n)
	if f.cutReadLeft >= 0 {
		f.cutReadLeft -= int64(n)
		if torn && f.cutReadLeft == 0 {
			f.tripLocked()
		}
	}
	cut := f.cut
	f.mu.Unlock()
	if err != nil && cut {
		// A read severed mid-flight (Cut closed the conn under us)
		// surfaces as the injected reset, not a bare use-after-close.
		return n, errReset()
	}
	return n, err
}

func (c *conn) Close() error {
	return c.Conn.Close()
}
