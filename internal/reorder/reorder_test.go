package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/event"
)

func mk(id uint64, t event.Time) *event.Event {
	return &event.Event{ID: id, Type: "A", Time: t}
}

func TestInOrderPassThrough(t *testing.T) {
	var got []event.Time
	b := New(0, func(e *event.Event) { got = append(got, e.Time) })
	for i := 1; i <= 5; i++ {
		b.Push(mk(uint64(i), event.Time(i)))
	}
	b.Flush()
	for i, tm := range got {
		if tm != event.Time(i+1) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestReordersWithinSlack(t *testing.T) {
	var got []event.Time
	b := New(5, func(e *event.Event) { got = append(got, e.Time) })
	for _, tm := range []event.Time{3, 1, 2, 7, 5, 4, 10, 9} {
		b.Push(mk(uint64(tm), tm))
	}
	b.Flush()
	want := []event.Time{1, 2, 3, 4, 5, 7, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestDropsBeyondSlack(t *testing.T) {
	var got []event.Time
	b := New(2, func(e *event.Event) { got = append(got, e.Time) })
	b.Push(mk(1, 10)) // maxSeen 10, horizon 8
	b.Push(mk(2, 20)) // horizon 18: releases 10
	b.Push(mk(3, 5))  // before released horizon 10: dropped
	b.Flush()
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
	if len(got) != 2 {
		t.Errorf("released %v", got)
	}
}

// TestQuickOrdered: whatever the arrival permutation within slack, the
// output is non-decreasing in time.
func TestQuickOrdered(t *testing.T) {
	f := func(seed int64, nRaw uint8, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		slack := event.Time(slackRaw % 20)
		var prev event.Time = -1
		ok := true
		b := New(slack, func(e *event.Event) {
			if e.Time < prev {
				ok = false
			}
			prev = e.Time
		})
		base := event.Time(0)
		for i := 0; i < n; i++ {
			base += event.Time(rng.Intn(3))
			jitter := event.Time(rng.Intn(int(slack) + 1))
			tm := base - jitter
			if tm < 0 {
				tm = 0
			}
			b.Push(mk(uint64(i), tm))
			if !ok {
				return false
			}
		}
		b.Flush()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPending(t *testing.T) {
	b := New(100, func(*event.Event) {})
	b.Push(mk(1, 1))
	b.Push(mk(2, 2))
	if b.Pending() != 2 {
		t.Errorf("pending = %d", b.Pending())
	}
	b.Flush()
	if b.Pending() != 0 {
		t.Errorf("pending after flush = %d", b.Pending())
	}
}
