package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/event"
)

func mk(id uint64, t event.Time) *event.Event {
	return &event.Event{ID: id, Type: "A", Time: t}
}

func TestInOrderPassThrough(t *testing.T) {
	var got []event.Time
	b := New(0, func(e *event.Event) { got = append(got, e.Time) })
	for i := 1; i <= 5; i++ {
		b.Push(mk(uint64(i), event.Time(i)))
	}
	b.Flush()
	for i, tm := range got {
		if tm != event.Time(i+1) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestReordersWithinSlack(t *testing.T) {
	var got []event.Time
	b := New(5, func(e *event.Event) { got = append(got, e.Time) })
	for _, tm := range []event.Time{3, 1, 2, 7, 5, 4, 10, 9} {
		b.Push(mk(uint64(tm), tm))
	}
	b.Flush()
	want := []event.Time{1, 2, 3, 4, 5, 7, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

func TestDropsBeyondSlack(t *testing.T) {
	var got []event.Time
	b := New(2, func(e *event.Event) { got = append(got, e.Time) })
	b.Push(mk(1, 10)) // maxSeen 10, horizon 8
	b.Push(mk(2, 20)) // horizon 18: releases 10
	b.Push(mk(3, 5))  // before released horizon 10: dropped
	b.Flush()
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
	if len(got) != 2 {
		t.Errorf("released %v", got)
	}
}

// TestQuickOrdered: whatever the arrival permutation within slack, the
// output is non-decreasing in time.
func TestQuickOrdered(t *testing.T) {
	f := func(seed int64, nRaw uint8, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		slack := event.Time(slackRaw % 20)
		var prev event.Time = -1
		ok := true
		b := New(slack, func(e *event.Event) {
			if e.Time < prev {
				ok = false
			}
			prev = e.Time
		})
		base := event.Time(0)
		for i := 0; i < n; i++ {
			base += event.Time(rng.Intn(3))
			jitter := event.Time(rng.Intn(int(slack) + 1))
			tm := base - jitter
			if tm < 0 {
				tm = 0
			}
			b.Push(mk(uint64(i), tm))
			if !ok {
				return false
			}
		}
		b.Flush()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPending(t *testing.T) {
	b := New(100, func(*event.Event) {})
	b.Push(mk(1, 1))
	b.Push(mk(2, 2))
	if b.Pending() != 2 {
		t.Errorf("pending = %d", b.Pending())
	}
	b.Flush()
	if b.Pending() != 0 {
		t.Errorf("pending after flush = %d", b.Pending())
	}
}

// TestEqualTimestampArrivalOrder pins the arrival tiebreak: events
// sharing a timestamp drain in the order they arrived, regardless of
// their IDs (before the arrival counter the heap tie-broke on ID, so
// same-timestamp events could drain in ID order, not arrival order).
func TestEqualTimestampArrivalOrder(t *testing.T) {
	var got []uint64
	b := New(10, func(e *event.Event) { got = append(got, e.ID) })
	// Descending IDs with equal timestamps: arrival order 9,7,5; an
	// ID-ordered heap would emit 5,7,9.
	b.Push(mk(9, 3))
	b.Push(mk(7, 3))
	b.Push(mk(5, 3))
	b.Push(mk(1, 2)) // earlier time, later arrival: still drains first
	b.Flush()
	want := []uint64{1, 9, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

// TestFlushMidDisorder: a barrier Flush in the middle of a disordered
// burst releases everything buffered, in order, and the buffer keeps
// working afterwards.
func TestFlushMidDisorder(t *testing.T) {
	var got []event.Time
	b := New(10, func(e *event.Event) { got = append(got, e.Time) })
	for _, tm := range []event.Time{8, 3, 6} {
		b.Push(mk(uint64(tm), tm))
	}
	b.Flush() // barrier: 3, 6, 8 out even though slack would hold them
	if len(got) != 3 || got[0] != 3 || got[1] != 6 || got[2] != 8 {
		t.Fatalf("after barrier flush: %v", got)
	}
	// The flush advanced released to 8 but the horizon stays maxSeen -
	// slack: a later event at 5 is still within slack of maxSeen 8.
	if !b.Push(mk(9, 5)) {
		t.Fatal("event within slack rejected after barrier flush")
	}
	b.Push(mk(10, 20))
	b.Flush()
	if len(got) != 5 || got[3] != 5 || got[4] != 20 {
		t.Fatalf("after resume: %v", got)
	}
	if b.Dropped() != 0 {
		t.Errorf("dropped = %d", b.Dropped())
	}
}

// TestDroppedAccounting: drops accumulate across slack boundaries as
// the horizon advances, and accepted events never count.
func TestDroppedAccounting(t *testing.T) {
	b := New(5, func(*event.Event) {})
	b.Push(mk(1, 100)) // horizon 95
	if b.Push(mk(2, 94)) {
		t.Fatal("event below horizon accepted")
	}
	if b.Push(mk(3, 90)) {
		t.Fatal("event below horizon accepted")
	}
	if !b.Push(mk(4, 95)) {
		t.Fatal("event at horizon rejected")
	}
	b.Push(mk(5, 200)) // horizon 195
	if b.Push(mk(6, 100)) {
		t.Fatal("event below advanced horizon accepted")
	}
	if b.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", b.Dropped())
	}
	if b.Horizon() != 195 {
		t.Errorf("horizon = %d, want 195", b.Horizon())
	}
}

// TestZeroSlackPassthrough: slack 0 releases every event as soon as a
// newer timestamp arrives and drops anything strictly older than the
// maximum seen.
func TestZeroSlackPassthrough(t *testing.T) {
	var got []event.Time
	b := New(0, func(e *event.Event) { got = append(got, e.Time) })
	b.Push(mk(1, 1))
	b.Push(mk(2, 2))
	b.Push(mk(3, 2)) // tie with maxSeen: accepted, released immediately
	if b.Push(mk(4, 1)) {
		t.Fatal("stale event accepted at zero slack")
	}
	b.Flush()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", b.Dropped())
	}
}

// oracleDrain replays an arrival sequence through the drop rule and a
// stable sort — the specification the heap must match: accepted events
// come out sorted by time, ties in arrival order.
func oracleDrain(evs []*event.Event, slack event.Time) (out []*event.Event, dropped uint64) {
	maxSeen := event.Time(-1)
	type rec struct {
		ev  *event.Event
		arr int
	}
	var kept []rec
	for i, e := range evs {
		if e.Time < maxSeen-slack {
			dropped++
			continue
		}
		kept = append(kept, rec{e, i})
		if e.Time > maxSeen {
			maxSeen = e.Time
		}
	}
	sortStable := func(i, j int) bool {
		if kept[i].ev.Time != kept[j].ev.Time {
			return kept[i].ev.Time < kept[j].ev.Time
		}
		return kept[i].arr < kept[j].arr
	}
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && sortStable(j, j-1); j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	for _, r := range kept {
		out = append(out, r.ev)
	}
	return out, dropped
}

// TestQuickOracle pins the full drain order (not just monotonicity)
// against the sort-based oracle, including equal-timestamp ties and
// drop accounting.
func TestQuickOracle(t *testing.T) {
	f := func(seed int64, nRaw uint8, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		slack := event.Time(slackRaw % 12)
		evs := make([]*event.Event, n)
		base := event.Time(0)
		for i := 0; i < n; i++ {
			base += event.Time(rng.Intn(3))
			// Jitter past the slack sometimes, to exercise drops.
			tm := base - event.Time(rng.Intn(int(slack)+4))
			if tm < 0 {
				tm = 0
			}
			evs[i] = mk(uint64(rng.Intn(16)), tm) // colliding IDs on purpose
		}
		want, wantDropped := oracleDrain(evs, slack)
		var got []*event.Event
		b := New(slack, func(e *event.Event) { got = append(got, e) })
		for _, e := range evs {
			b.Push(e)
		}
		b.Flush()
		if b.Dropped() != wantDropped || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRestore: a restored buffer releases the pending events in
// the original order and treats an arrival suffix exactly as the
// original would have — including drops decided by the restored
// horizon — and Snapshot of a restored buffer is canonical (identical
// pending order).
func TestSnapshotRestore(t *testing.T) {
	feedPrefix := func(b *Buffer) {
		for i, tm := range []event.Time{10, 4, 7, 7, 20, 15, 18} {
			b.Push(mk(uint64(i)+1, tm))
		}
	}
	var ref []event.Time
	orig := New(8, func(e *event.Event) { ref = append(ref, e.Time) })
	feedPrefix(orig)

	snap := orig.Snapshot()
	if snap.MaxSeen != 20 || snap.Slack != 8 {
		t.Fatalf("snapshot watermarks: %+v", snap)
	}
	if len(snap.Pending) == 0 {
		t.Fatal("expected pending events in snapshot")
	}
	resnap := Restore(snap, func(*event.Event) {}).Snapshot()
	if len(resnap.Pending) != len(snap.Pending) {
		t.Fatalf("round-trip pending %d != %d", len(resnap.Pending), len(snap.Pending))
	}
	for i := range snap.Pending {
		if resnap.Pending[i] != snap.Pending[i] {
			t.Fatalf("round-trip pending order differs at %d", i)
		}
	}

	var res []event.Time
	restored := Restore(snap, func(e *event.Event) { res = append(res, e.Time) })
	suffix := []event.Time{11, 25, 19, 30} // 11 < horizon 12: dropped in both
	for _, tm := range suffix {
		orig.Push(mk(uint64(tm)+100, tm))
		restored.Push(mk(uint64(tm)+100, tm))
	}
	orig.Flush()
	restored.Flush()
	// The restored run replays only the suffix; the original's full
	// output is prefix releases + the same tail.
	tail := ref[len(ref)-len(res):]
	for i := range res {
		if res[i] != tail[i] {
			t.Fatalf("restored tail %v, want %v", res, tail)
		}
	}
	if restored.Dropped() != orig.Dropped() {
		t.Fatalf("dropped %d != %d", restored.Dropped(), orig.Dropped())
	}
}
