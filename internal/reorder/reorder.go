// Package reorder implements bounded out-of-order event handling: a
// slack-based reorder buffer in the spirit of the out-of-order stream
// processing literature the paper delegates to (§2, citing Li et al.
// and Liu et al.): "we assume that events arrive in-order by time
// stamps. Otherwise, an existing approach to handle out-of-order events
// can be employed."
//
// The buffer holds events until the observed maximum timestamp exceeds
// their timestamp by at least the configured slack, then releases them
// in (time, id) order. Events arriving later than the already-released
// horizon are reported as dropped.
package reorder

import (
	"container/heap"

	"github.com/greta-cep/greta/internal/event"
)

// Buffer is a slack-based reorderer. The zero value is unusable; use
// New.
type Buffer struct {
	slack    event.Time
	h        eventHeap
	maxSeen  event.Time
	released event.Time
	dropped  uint64
	out      func(*event.Event)
}

// New returns a buffer that delays events by up to slack time units and
// delivers them in order to out.
func New(slack event.Time, out func(*event.Event)) *Buffer {
	return &Buffer{slack: slack, maxSeen: -1, released: -1, out: out}
}

// Push offers an event in arrival order. Events whose timestamp is
// already behind the released horizon are dropped (counted in
// Dropped()); everything else is buffered and released once safe.
func (b *Buffer) Push(e *event.Event) {
	if e.Time < b.released {
		b.dropped++
		return
	}
	heap.Push(&b.h, e)
	if e.Time > b.maxSeen {
		b.maxSeen = e.Time
	}
	b.drain(b.maxSeen - b.slack)
}

// drain releases all buffered events with time <= horizon.
func (b *Buffer) drain(horizon event.Time) {
	for b.h.Len() > 0 && b.h[0].Time <= horizon {
		e := heap.Pop(&b.h).(*event.Event)
		if e.Time > b.released {
			b.released = e.Time
		}
		b.out(e)
	}
}

// Flush releases every buffered event in order; call at end of stream.
func (b *Buffer) Flush() {
	b.drain(1<<62 - 1)
}

// Pending returns the number of buffered events.
func (b *Buffer) Pending() int { return b.h.Len() }

// Dropped returns the number of events that arrived too late (beyond
// the slack) and were discarded.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// eventHeap orders by (Time, ID).
type eventHeap []*event.Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].ID < h[j].ID
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event.Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
