// Package reorder implements bounded out-of-order event handling: a
// slack-based reorder buffer in the spirit of the out-of-order stream
// processing literature the paper delegates to (§2, citing Li et al.
// and Liu et al.): "we assume that events arrive in-order by time
// stamps. Otherwise, an existing approach to handle out-of-order events
// can be employed."
//
// The buffer holds events until the observed maximum timestamp exceeds
// their timestamp by at least the configured slack, then releases them
// in (time, arrival) order — the arrival tiebreak makes the drain order
// of equal-timestamp events deterministic. Events arriving more than
// slack behind the maximum observed timestamp (the horizon) are
// reported as dropped. Both decisions are pure functions of the arrival
// prefix — never of drain timing — so a buffer rebuilt from a Snapshot
// accepts, drops, and releases exactly as the original would have.
package reorder

import (
	"sort"

	"github.com/greta-cep/greta/internal/event"
)

// Buffer is a slack-based reorderer. The zero value is unusable; use
// New or Restore.
type Buffer struct {
	slack    event.Time
	h        []entry // binary min-heap on (time, arrival)
	arr      uint64  // monotone arrival counter (equal-time tiebreak)
	maxSeen  event.Time
	released event.Time
	dropped  uint64
	out      func(*event.Event)
}

// entry is one buffered event stamped with its arrival order.
type entry struct {
	ev  *event.Event
	arr uint64
}

// New returns a buffer that delays events by up to slack time units and
// delivers them in order to out.
func New(slack event.Time, out func(*event.Event)) *Buffer {
	return &Buffer{slack: slack, maxSeen: -1, released: -1, out: out}
}

// Push offers an event in arrival order. Events whose timestamp is
// already behind the horizon (maxSeen - slack) are dropped, counted in
// Dropped(), and reported with a false return; everything else is
// buffered and released once safe. The drop check uses the horizon, not
// the released watermark, so acceptance depends only on what has
// arrived — a restored buffer mid-drain decides identically.
func (b *Buffer) Push(e *event.Event) bool {
	if e.Time < b.maxSeen-b.slack {
		b.dropped++
		return false
	}
	b.push(entry{ev: e, arr: b.arr})
	b.arr++
	if e.Time > b.maxSeen {
		b.maxSeen = e.Time
	}
	b.drain(b.maxSeen - b.slack)
	return true
}

// drain releases all buffered events with time <= horizon.
func (b *Buffer) drain(horizon event.Time) {
	for len(b.h) > 0 && b.h[0].ev.Time <= horizon {
		e := b.pop()
		if e.Time > b.released {
			b.released = e.Time
		}
		b.out(e)
	}
}

// Flush releases every buffered event in order; call at end of stream
// or as a lifecycle barrier.
func (b *Buffer) Flush() {
	b.drain(1<<62 - 1)
}

// Settle releases any buffered events already at or below the horizon.
// A live buffer is always settled (Push drains as it goes); a restored
// one may hold the release that was in flight when its snapshot was
// written, which must apply before any further arrival is considered.
func (b *Buffer) Settle() {
	b.drain(b.maxSeen - b.slack)
}

// PeekTime returns the timestamp of the next event the buffer would
// release, without releasing it. ok is false when nothing is pending.
// The batch ingest path merges a sorted batch against the pending heap
// by peeking here: pending events win timestamp ties (their arrival
// stamps are older than any batch row's).
func (b *Buffer) PeekTime() (event.Time, bool) {
	if len(b.h) == 0 {
		return 0, false
	}
	return b.h[0].ev.Time, true
}

// PopRelease removes and returns the next pending event in release
// order, advancing the released watermark exactly as drain would — but
// without invoking the out callback, so a caller interleaving releases
// with directly-applied batch rows controls the application itself.
// Only valid when Pending() > 0.
func (b *Buffer) PopRelease() *event.Event {
	e := b.pop()
	if e.Time > b.released {
		b.released = e.Time
	}
	return e
}

// Bypass records that events up to time t were applied directly,
// without passing through the buffer: the released watermark advances
// so a later Snapshot is byte-identical to one taken after the same
// events had been pushed and drained. maxSeen is untouched — it only
// tracks arrivals that were actually offered to Push.
func (b *Buffer) Bypass(t event.Time) {
	if t > b.released {
		b.released = t
	}
}

// NoteDropped charges n events dropped outside the buffer (a batch
// prefix already behind the horizon is rejected without pushing each
// row) so Dropped() matches the per-event feed.
func (b *Buffer) NoteDropped(n uint64) { b.dropped += n }

// Pending returns the number of buffered events.
func (b *Buffer) Pending() int { return len(b.h) }

// Dropped returns the number of events that arrived too late (beyond
// the slack) and were discarded.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Horizon returns the drop threshold: events with Time < Horizon() are
// rejected. It only advances as larger timestamps arrive.
func (b *Buffer) Horizon() event.Time { return b.maxSeen - b.slack }

// Slack returns the configured slack.
func (b *Buffer) Slack() event.Time { return b.slack }

// Snapshot captures the buffer's recoverable state: configuration,
// watermarks, drop count, and the pending events in release order
// (time, then arrival). Restore on the snapshot yields a buffer that
// behaves identically on any arrival suffix, and whose own Snapshot
// re-encodes byte-for-byte (pending order is canonical).
type Snapshot struct {
	Slack    event.Time
	MaxSeen  event.Time
	Released event.Time
	Dropped  uint64
	Pending  []*event.Event
}

// Snapshot captures the buffer state; the buffer is not perturbed.
func (b *Buffer) Snapshot() *Snapshot {
	s := &Snapshot{Slack: b.slack, MaxSeen: b.maxSeen, Released: b.released, Dropped: b.dropped}
	if len(b.h) == 0 {
		return s
	}
	ents := append([]entry(nil), b.h...)
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].ev.Time != ents[j].ev.Time {
			return ents[i].ev.Time < ents[j].ev.Time
		}
		return ents[i].arr < ents[j].arr
	})
	s.Pending = make([]*event.Event, len(ents))
	for i, e := range ents {
		s.Pending[i] = e.ev
	}
	return s
}

// Restore rebuilds a buffer from a snapshot, delivering to out. The
// pending events keep their snapshot (release) order as the arrival
// order, so equal-timestamp ties drain exactly as they would have.
func Restore(s *Snapshot, out func(*event.Event)) *Buffer {
	b := &Buffer{slack: s.Slack, maxSeen: s.MaxSeen, released: s.Released, dropped: s.Dropped, out: out}
	for _, ev := range s.Pending {
		b.push(entry{ev: ev, arr: b.arr})
		b.arr++
	}
	return b
}

// push/pop implement the heap inline (container/heap would box each
// entry into an interface, allocating on the steady ingest path).

func (b *Buffer) less(i, j int) bool {
	if b.h[i].ev.Time != b.h[j].ev.Time {
		return b.h[i].ev.Time < b.h[j].ev.Time
	}
	return b.h[i].arr < b.h[j].arr
}

func (b *Buffer) push(e entry) {
	b.h = append(b.h, e)
	i := len(b.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !b.less(i, p) {
			break
		}
		b.h[i], b.h[p] = b.h[p], b.h[i]
		i = p
	}
}

func (b *Buffer) pop() *event.Event {
	top := b.h[0].ev
	n := len(b.h) - 1
	b.h[0] = b.h[n]
	b.h[n] = entry{}
	b.h = b.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && b.less(l, s) {
			s = l
		}
		if r < n && b.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		b.h[i], b.h[s] = b.h[s], b.h[i]
		i = s
	}
	return top
}
