package bench

import (
	"fmt"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

// lowSelLinearRoad is the Fig. 16 low-selectivity workload (sel=10).
func lowSelLinearRoad(n int) []*event.Event {
	cfg := gen.DefaultLinearRoad(n)
	cfg.StartRate, cfg.EndRate = 50, 200
	cfg.GateSelectivity = 10
	return gen.LinearRoad(cfg)
}

// batchify groups consecutive same-type, time-sorted events into
// columnar batches of up to size rows. The generators emit only
// batch-representable values, so AppendEvent must never reject.
func batchify(tb testing.TB, evs []*event.Event, schemas []*event.Schema, size int) []*event.Batch {
	tb.Helper()
	bySch := map[event.Type]*event.Schema{}
	for _, s := range schemas {
		bySch[s.Type] = s
	}
	var out []*event.Batch
	var cur *event.Batch
	var last event.Time
	for _, ev := range evs {
		if cur != nil && (cur.Type() != ev.Type || cur.Len() >= size || ev.Time < last) {
			out = append(out, cur)
			cur = nil
		}
		if cur == nil {
			sch := bySch[ev.Type]
			if sch == nil {
				tb.Fatalf("no schema for event type %q", ev.Type)
			}
			n := size
			cur = event.NewBatch(sch, n)
		}
		if err := cur.AppendEvent(ev); err != nil {
			tb.Fatalf("generated event rejected by AppendEvent: %v", err)
		}
		last = ev.Time
	}
	if cur != nil {
		out = append(out, cur)
	}
	return out
}

// TestBatchPrefilterEngagement is the perf-smoke guard for columnar
// ingest: on the Fig. 16 low-selectivity workload the vectorized
// pre-filter must actually skip the bulk of the rows (PrefilterSkips
// covering most of the ~90% that fail the gate), while reproducing the
// per-event results exactly.
func TestBatchPrefilterEngagement(t *testing.T) {
	evs := lowSelLinearRoad(2000)
	plan, err := core.NewPlan(query.MustParse(Q3SelectivityVertex), aggregate.ModeNative)
	if err != nil {
		t.Fatal(err)
	}

	refRt := core.NewRuntime()
	refSt, err := refRt.Register(plan, core.StmtConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := refRt.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := refRt.Close(); err != nil {
		t.Fatal(err)
	}
	if refSt.Stats().PrefilterSkips != 0 {
		t.Fatalf("per-event run counted PrefilterSkips: %+v", refSt.Stats())
	}

	rt := core.NewRuntime()
	st, err := rt.Register(plan, core.StmtConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batchify(t, evs, gen.LinearRoadSchemas(), 256) {
		if _, err := rt.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	stats := st.Stats()
	if stats.PrefilterSkips == 0 {
		t.Fatalf("pre-filter never engaged on the low-selectivity workload: %+v", stats)
	}
	if min := uint64(len(evs)) / 2; stats.PrefilterSkips < min {
		t.Fatalf("pre-filter skipped %d of %d rows, want >= %d (sel=10 fails ~90%%)",
			stats.PrefilterSkips, len(evs), min)
	}

	a, b := st.Results(), refSt.Results()
	if len(a) != len(b) {
		t.Fatalf("%d batch results vs %d per-event", len(a), len(b))
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Wid != b[i].Wid {
			t.Fatalf("result %d keyed (%q,%d) vs (%q,%d)", i, a[i].Group, a[i].Wid, b[i].Group, b[i].Wid)
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("result %d value %d: %v batch vs %v per-event", i, j, a[i].Values[j], b[i].Values[j])
			}
		}
	}
}

// BenchmarkBatchSelectivity compares columnar against per-event ingest
// on the pre-filter showcase inside the bench package's own harness
// (the root BenchmarkBatchIngest covers the public API).
func BenchmarkBatchSelectivity(b *testing.B) {
	evs := lowSelLinearRoad(4000)
	plan, err := core.NewPlan(query.MustParse(Q3SelectivityVertex), aggregate.ModeNative)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("per-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := core.NewRuntime()
			if _, err := rt.Register(plan, core.StmtConfig{}); err != nil {
				b.Fatal(err)
			}
			for _, ev := range evs {
				if err := rt.Process(ev); err != nil {
					b.Fatal(err)
				}
			}
			if err := rt.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, size := range []int{64, 1024} {
		batches := batchify(b, evs, gen.LinearRoadSchemas(), size)
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := core.NewRuntime()
				if _, err := rt.Register(plan, core.StmtConfig{}); err != nil {
					b.Fatal(err)
				}
				for _, bt := range batches {
					if _, err := rt.ProcessBatch(bt); err != nil {
						b.Fatal(err)
					}
				}
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
