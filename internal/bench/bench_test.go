package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestOracleCheck(t *testing.T) {
	if err := OracleCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	any, next, contig := rows[0].Trends, rows[1].Trends, rows[2].Trends
	// Skip-till-any-match detects the most trends (exponential), the
	// restrictive semantics detect progressively fewer (Table 1).
	if !(any > next && next >= contig) {
		t.Errorf("trend ordering violated: any=%d next=%d contiguous=%d", any, next, contig)
	}
	// The §2 example: the long down-trend (10,9,8,7,6,5,4,3) exists only
	// under skip-till-any-match; with 8 strictly-down events interleaved
	// the any-match count is large.
	if any < 100 {
		t.Errorf("any-match trends = %d, expected an exponential count", any)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "skip-till-any-match") {
		t.Error("table rendering missing semantics")
	}
}

func TestGrowthShape(t *testing.T) {
	pts, err := Growth([]int{4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Edges grow ~quadratically: n(n-1)/2 for A+ with no predicate.
	for _, p := range pts {
		want := uint64(p.N * (p.N - 1) / 2)
		if p.Edges != want {
			t.Errorf("n=%d: edges = %d, want %d", p.N, p.Edges, want)
		}
	}
	// Trends grow exponentially: 2^n - 1.
	if pts[1].Trends != "255" {
		t.Errorf("n=8 trends = %v, want 255", pts[1].Trends)
	}
	// n=32 exceeds 12 digits? 2^32-1 = 4294967295 (10 digits): plain.
	if pts[3].Trends != "4294967295" {
		t.Errorf("n=32 trends = %v, want 4294967295", pts[3].Trends)
	}
	var buf bytes.Buffer
	PrintGrowth(&buf, pts)
	if buf.Len() == 0 {
		t.Error("empty growth rendering")
	}
}

// TestTinySweep runs a miniature Fig.14-shaped sweep end to end,
// checking that engine results agree where all engines finish and that
// rendering works.
func TestTinySweep(t *testing.T) {
	sc := Scale{
		EventSweep:  []float64{60, 120},
		FixedEvents: 120,
		Budget:      5 * time.Second,
		Caps:        Caps{MaxTrends: 500_000, FlatMaxLen: 20},
	}
	fig, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Where finished, the sanity aggregate must agree across engines.
	for i := range fig.Series[0].Points {
		var ref float64
		refSet := false
		for _, s := range fig.Series {
			m := s.Points[i].M
			if m.DNF {
				continue
			}
			if !refSet {
				ref, refSet = m.Check, true
				continue
			}
			if m.Check != ref {
				t.Errorf("x=%v: %s check %v != %v", s.Points[i].X, s.Name, m.Check, ref)
			}
		}
	}
	var buf bytes.Buffer
	Print(&buf, fig)
	out := buf.String()
	for _, want := range []string{"Latency", "Memory", "Throughput", "GRETA", "SASE", "CET", "Flink"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	var csv bytes.Buffer
	CSV(&csv, fig)
	if !strings.Contains(csv.String(), "GRETA_latency_ms") {
		t.Error("csv rendering broken")
	}
}

// TestFig16and17Tiny exercises the other two experiment builders at
// trivial scale.
func TestFig16and17Tiny(t *testing.T) {
	sc := Scale{FixedEvents: 150, Budget: 5 * time.Second, Caps: Caps{MaxTrends: 200_000, FlatMaxLen: 12}}
	fig, err := Fig16(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Points) != 9 {
		t.Errorf("fig16 points = %d", len(fig.Series[0].Points))
	}
	fig, err = Fig17(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Points) != 6 {
		t.Errorf("fig17 points = %d", len(fig.Series[0].Points))
	}
}

func TestFig15Tiny(t *testing.T) {
	sc := Scale{EventSweep: []float64{80}, Budget: 5 * time.Second, Caps: Caps{MaxTrends: 200_000, FlatMaxLen: 16}}
	fig, err := Fig15(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
}
