package bench

import (
	"fmt"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

// The shared-statements workload: k statements over ONE sub-pattern —
// identical trend formation, rotating RETURN clauses — against the
// Fig. 14 stock stream. Shared registration collapses them onto one
// GRETA graph; unshared registration maintains k private graphs.
const sharedStmtPattern = "PATTERN Stock S+ WHERE [company] AND S.price > NEXT(S).price WITHIN 60 SLIDE 30"

var sharedStmtReturns = []string{
	"COUNT(*)",
	"COUNT(*), SUM(S.price)",
	"MIN(S.price), MAX(S.price)",
	"AVG(S.price)",
}

func sharedStmtQuery(i int) string {
	return "RETURN " + sharedStmtReturns[i%len(sharedStmtReturns)] + " " + sharedStmtPattern
}

// registerSharedStmts registers k rotating-RETURN statements.
func registerSharedStmts(tb testing.TB, rt *core.Runtime, k int, share bool) []*core.Stmt {
	tb.Helper()
	stmts := make([]*core.Stmt, k)
	for i := 0; i < k; i++ {
		plan, err := core.NewPlan(query.MustParse(sharedStmtQuery(i)), aggregate.ModeNative)
		if err != nil {
			tb.Fatal(err)
		}
		st, err := rt.Register(plan, core.StmtConfig{Share: share})
		if err != nil {
			tb.Fatal(err)
		}
		stmts[i] = st
	}
	return stmts
}

// BenchmarkSharedStatements measures the multi-query collapse: ingest
// cost of k identical-sub-pattern statements with and without the
// shared sub-plan network. Shared cost must grow sub-linearly in k
// (one graph plus per-window fan-out), unshared linearly.
func BenchmarkSharedStatements(b *testing.B) {
	cfg := gen.DefaultStock(4000)
	cfg.Rate = 10
	evs := gen.Stock(cfg)
	for _, k := range []int{1, 4, 16} {
		for _, m := range []struct {
			name  string
			share bool
		}{{"shared", true}, {"unshared", false}} {
			b.Run(fmt.Sprintf("%s/k=%d", m.name, k), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rt := core.NewRuntime()
					registerSharedStmts(b, rt, k, m.share)
					for _, ev := range evs {
						if err := rt.Process(ev); err != nil {
							b.Fatal(err)
						}
					}
					if err := rt.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if b.Elapsed() > 0 {
					b.ReportMetric(float64(len(evs))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
				}
			})
		}
	}
}

// TestSharingEngagement is the perf-smoke guard: on the benchmark
// workload the shared sub-plan network must actually engage
// (SharedGraphs < Statements — k statements on one graph), and the
// shared registration must reproduce the unshared results exactly.
func TestSharingEngagement(t *testing.T) {
	cfg := gen.DefaultStock(800)
	cfg.Rate = 10
	evs := gen.Stock(cfg)
	const k = 16

	shared := core.NewRuntime()
	sharedStmts := registerSharedStmts(t, shared, k, true)
	rs := shared.Stats()
	if rs.Statements != k || rs.SharedGraphs < 1 || rs.SharedGraphs >= rs.Statements {
		t.Fatalf("sharing not engaged on the benchmark workload: %+v (want SharedGraphs in [1, Statements))", rs)
	}
	if rs.SharedStatements != k || rs.SharedGraphs != 1 {
		t.Fatalf("benchmark workload should collapse %d statements onto 1 graph: %+v", k, rs)
	}

	solo := core.NewRuntime()
	soloStmts := registerSharedStmts(t, solo, k, false)
	for _, ev := range evs {
		if err := shared.Process(ev); err != nil {
			t.Fatal(err)
		}
		if err := solo.Process(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range sharedStmts {
		a, b := sharedStmts[i].Results(), soloStmts[i].Results()
		if len(a) != len(b) {
			t.Fatalf("statement %d: %d shared vs %d unshared results", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Group != b[j].Group || a[j].Wid != b[j].Wid {
				t.Fatalf("statement %d result %d: (%q,%d) vs (%q,%d)",
					i, j, a[j].Group, a[j].Wid, b[j].Group, b[j].Wid)
			}
			for v := range a[j].Values {
				if a[j].Values[v] != b[j].Values[v] {
					t.Fatalf("statement %d result %d value %d: %v shared vs %v unshared",
						i, j, v, a[j].Values[v], b[j].Values[v])
				}
			}
		}
	}
}
