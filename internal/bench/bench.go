// Package bench is the evaluation harness: it regenerates every figure
// and table of the paper's performance evaluation (§10) at laptop
// scale — the events-per-window sweep for positive patterns (Fig. 14)
// and patterns with negation (Fig. 15), the edge-predicate selectivity
// sweep (Fig. 16), the trend-group sweep (Fig. 17), and the event
// selection semantics table (Table 1) — comparing GRETA against the
// three two-step baselines (SASE, CET, Flink-style flattening).
//
// Absolute numbers differ from the paper's 16-core/128 GB Java testbed;
// the reproduction target is the shape: who wins, growth curves, and
// where engines stop terminating. Two-step engines are bounded by trend
// caps derived from a per-point time budget; a capped run is reported
// as DNF, mirroring the paper's "fails to terminate".
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/cet"
	"github.com/greta-cep/greta/internal/baseline/flat"
	"github.com/greta-cep/greta/internal/baseline/sase"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/query"
)

// Metric is one measured run.
type Metric struct {
	LatencyMS  float64 // wall-clock of the full run (peak window latency proxy)
	Throughput float64 // events per second
	MemBytes   float64 // peak working-state bytes (structural estimate)
	HeapBytes  float64 // allocation delta observed by the Go runtime
	DNF        bool    // did not finish within caps
	Check      float64 // first aggregate of the first result, for sanity
}

// Point is one sweep point of one engine.
type Point struct {
	X float64
	M Metric
}

// Series is one engine's sweep.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated evaluation figure: three panels (latency,
// memory, throughput) over a shared X axis.
type Figure struct {
	Title  string
	XLabel string
	Series []Series
}

// EngineKind selects an engine.
type EngineKind int

// Engines under evaluation (paper §10.1 Methodology).
const (
	Greta EngineKind = iota
	GretaExact
	Sase
	Cet
	Flat
)

func (k EngineKind) String() string {
	switch k {
	case Greta:
		return "GRETA"
	case GretaExact:
		return "GRETA(exact)"
	case Sase:
		return "SASE"
	case Cet:
		return "CET"
	case Flat:
		return "Flink"
	}
	return "?"
}

// Caps bounds two-step runs.
type Caps struct {
	MaxTrends  uint64 // SASE / CET node cap
	FlatMaxLen int    // Flink flattening length
}

// DefaultCaps keeps exponential engines finite at laptop scale.
var DefaultCaps = Caps{MaxTrends: 3_000_000, FlatMaxLen: 10}

// RunEngine executes the query with one engine over evs and measures.
func RunEngine(kind EngineKind, q *query.Query, evs []*event.Event, caps Caps) (Metric, error) {
	var m Metric
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	switch kind {
	case Greta, GretaExact:
		mode := aggregate.ModeNative
		if kind == GretaExact {
			mode = aggregate.ModeExact
		}
		plan, err := core.NewPlan(q, mode)
		if err != nil {
			return m, err
		}
		eng := core.NewEngine(plan)
		eng.Run(event.NewSliceStream(evs))
		st := eng.Stats()
		// Structural peak memory: vertices (event pointer, state, window
		// base) + per-window payloads (count, countE/sum/min/max slots).
		m.MemBytes = float64(st.PeakVertices)*56 + float64(st.PeakPayloads)*72
		if rs := eng.Results(); len(rs) > 0 {
			m.Check = rs[0].Values[0]
		}
	case Sase:
		rs, st, err := sase.Run(q, evs, sase.Options{MaxTrends: caps.MaxTrends})
		if err != nil {
			return m, err
		}
		m.MemBytes = float64(st.StoredEdges)*16 + float64(st.StoredBytes)
		m.DNF = st.Truncated
		if len(rs) > 0 {
			m.Check = rs[0].Values[0]
		}
	case Cet:
		rs, st, err := cet.Run(q, evs, cet.Options{MaxNodes: caps.MaxTrends})
		if err != nil {
			return m, err
		}
		m.MemBytes = float64(st.StoredBytes)
		m.DNF = st.Truncated
		if len(rs) > 0 {
			m.Check = rs[0].Values[0]
		}
	case Flat:
		rs, st, err := flat.Run(q, evs, flat.Options{MaxLen: caps.FlatMaxLen, MaxSequences: caps.MaxTrends})
		if err != nil {
			return m, err
		}
		m.MemBytes = float64(st.StoredBytes)
		m.DNF = st.Truncated
		if len(rs) > 0 {
			m.Check = rs[0].Values[0]
		}
	}
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	m.HeapBytes = float64(ms1.TotalAlloc - ms0.TotalAlloc)
	m.LatencyMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		m.Throughput = float64(len(evs)) / elapsed.Seconds()
	}
	return m, nil
}

// Sweep runs all engines over a parameterized workload.
//
// makeInput returns the query and events for one x value. budget is a
// soft per-point wall-clock limit. When monotone is true, difficulty
// grows with x: once an engine exceeds the budget (or hits its caps) at
// some x, larger x values are reported DNF without running — the
// two-step engines are exponential, and running them to completion at
// every x would take the hours the paper reports. With monotone false
// (the Fig. 17 group sweep, where more groups mean shorter trends)
// every point runs.
func Sweep(engines []EngineKind, xs []float64, makeInput func(x float64) (*query.Query, []*event.Event), caps Caps, budget time.Duration, monotone bool) (Figure, error) {
	var fig Figure
	for _, kind := range engines {
		s := Series{Name: kind.String()}
		blown := false
		for _, x := range xs {
			q, evs := makeInput(x)
			if blown {
				s.Points = append(s.Points, Point{X: x, M: Metric{DNF: true}})
				continue
			}
			m, err := RunEngine(kind, q, evs, caps)
			if err != nil {
				return fig, fmt.Errorf("%s at x=%v: %w", kind, x, err)
			}
			s.Points = append(s.Points, Point{X: x, M: m})
			if monotone && budget > 0 && (time.Duration(m.LatencyMS)*time.Millisecond > budget || m.DNF) {
				blown = true
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Print renders the figure as three aligned text panels.
func Print(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "== %s ==\n", fig.Title)
	panels := []struct {
		name string
		get  func(Metric) float64
		unit string
	}{
		{"Latency", func(m Metric) float64 { return m.LatencyMS }, "ms"},
		{"Memory", func(m Metric) float64 { return m.MemBytes }, "bytes"},
		{"Throughput", func(m Metric) float64 { return m.Throughput }, "events/s"},
	}
	for _, p := range panels {
		fmt.Fprintf(w, "\n-- %s (%s) --\n", p.name, p.unit)
		fmt.Fprintf(w, "%-12s", fig.XLabel)
		for _, s := range fig.Series {
			fmt.Fprintf(w, "%16s", s.Name)
		}
		fmt.Fprintln(w)
		if len(fig.Series) == 0 {
			continue
		}
		for i := range fig.Series[0].Points {
			fmt.Fprintf(w, "%-12s", formatX(fig.Series[0].Points[i].X))
			for _, s := range fig.Series {
				m := s.Points[i].M
				if m.DNF {
					fmt.Fprintf(w, "%16s", "DNF")
				} else {
					fmt.Fprintf(w, "%16s", formatVal(p.get(m)))
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

func formatX(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func formatVal(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// CSV renders the figure as comma-separated values for plotting.
func CSV(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "x")
	for _, s := range fig.Series {
		n := strings.ReplaceAll(s.Name, ",", "_")
		fmt.Fprintf(w, ",%s_latency_ms,%s_mem_bytes,%s_throughput", n, n, n)
	}
	fmt.Fprintln(w)
	if len(fig.Series) == 0 {
		return
	}
	for i := range fig.Series[0].Points {
		fmt.Fprintf(w, "%g", fig.Series[0].Points[i].X)
		for _, s := range fig.Series {
			m := s.Points[i].M
			if m.DNF {
				fmt.Fprintf(w, ",,,")
			} else {
				fmt.Fprintf(w, ",%.3f,%.0f,%.0f", m.LatencyMS, m.MemBytes, m.Throughput)
			}
		}
		fmt.Fprintln(w)
	}
}
