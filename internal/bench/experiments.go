package bench

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/baseline/enum"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/gen"
	"github.com/greta-cep/greta/internal/query"
)

// Scale configures experiment sizes. Quick() is suitable for CI; Full()
// takes minutes and shows the exponential blow-up more dramatically.
type Scale struct {
	// Fig14/15 events-per-window sweep values.
	EventSweep []float64
	// Fig16/17 fixed window size.
	FixedEvents int
	// Per-point soft time budget for two-step engines.
	Budget time.Duration
	Caps   Caps
}

// Quick returns a CI-friendly scale.
func Quick() Scale {
	return Scale{
		EventSweep:  []float64{50, 100, 250, 500, 1000, 2000, 4000},
		FixedEvents: 4000,
		Budget:      2 * time.Second,
		Caps:        Caps{MaxTrends: 200_000, FlatMaxLen: 8},
	}
}

// Full returns the default experiment scale. Caps keep the exponential
// engines within laptop memory: a capped run is a DNF data point, and
// raising the caps only lengthens the run before the inevitable DNF.
func Full() Scale {
	return Scale{
		EventSweep:  []float64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000},
		FixedEvents: 10000,
		Budget:      15 * time.Second,
		Caps:        Caps{MaxTrends: 1_000_000, FlatMaxLen: 10},
	}
}

// Q1Positive is the Fig. 14 query: the paper's Q1 down-trend count per
// company/sector (evaluated per window over the whole sweep window).
const Q1Positive = `RETURN COUNT(*) PATTERN Stock S+
WHERE [company, sector] AND S.price > NEXT(S).price`

// Q1Negation is the Fig. 15 variant: the same down-trend aggregation
// guarded by a negative sub-pattern (no trading halt before the trend).
const Q1Negation = `RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+)
WHERE [company, sector] AND S.price > NEXT(S).price`

// Q3Selectivity is the Fig. 16 query over the Linear Road stream: the
// edge predicate P.sel <= NEXT(P).gate matches exactly the configured
// selectivity percentage of event pairs.
const Q3Selectivity = `RETURN COUNT(*) PATTERN Position P+
WHERE [vehicle, segment] AND P.sel <= NEXT(P).gate`

// Q3SelectivityVertex is the Fig. 16 aggregation with the gate moved
// from the edge to the vertex: P.sel <= P.gate prunes single events
// instead of event pairs, so at GateSelectivity x only ~x% of Position
// rows enter the graph at all. It is the batch pre-filter's showcase
// query — the edge form cannot be vectorized (NEXT reads two rows),
// the vertex form skips whole columns.
const Q3SelectivityVertex = `RETURN COUNT(*) PATTERN Position P+
WHERE [vehicle, segment] AND P.sel <= P.gate`

// Q2Groups is the Fig. 17 query: Q2's CPU aggregation over increasing
// load trends, grouped by mapper.
const Q2Groups = `RETURN COUNT(*), SUM(M.cpu)
PATTERN SEQ(Start S, Measurement M+, End E)
WHERE [job, mapper] AND M.load < NEXT(M).load
GROUP-BY mapper`

// Fig14 regenerates Figure 14: positive patterns over the stock stream
// while varying the number of events per window.
func Fig14(sc Scale) (Figure, error) {
	q := query.MustParse(Q1Positive)
	fig, err := Sweep(
		[]EngineKind{Greta, Sase, Cet, Flat},
		sc.EventSweep,
		func(x float64) (*query.Query, []*event.Event) {
			cfg := gen.DefaultStock(int(x))
			// ~1 event per company per second so adjacency is non-trivial
			// (adjacent trend events need strictly increasing timestamps).
			cfg.Rate = 10
			return q, gen.Stock(cfg)
		},
		sc.Caps, sc.Budget, true)
	fig.Title = "Figure 14: positive patterns (stock data), varying events per window"
	fig.XLabel = "events"
	return fig, err
}

// Fig15 regenerates Figure 15: the same sweep with a negative
// sub-pattern. Negation shrinks the graphs/stacks, so all engines speed
// up relative to Fig. 14, while the exponential engines still blow up.
func Fig15(sc Scale) (Figure, error) {
	q := query.MustParse(Q1Negation)
	fig, err := Sweep(
		[]EngineKind{Greta, Sase, Cet, Flat},
		sc.EventSweep,
		func(x float64) (*query.Query, []*event.Event) {
			cfg := gen.DefaultStock(int(x))
			cfg.Rate = 10
			cfg.HaltProb = 0.002
			return q, gen.Stock(cfg)
		},
		sc.Caps, sc.Budget, true)
	fig.Title = "Figure 15: patterns with negative sub-patterns (stock data)"
	fig.XLabel = "events"
	return fig, err
}

// Fig16 regenerates Figure 16: edge-predicate selectivity sweep over
// the Linear Road stream at a fixed window size.
func Fig16(sc Scale) (Figure, error) {
	q := query.MustParse(Q3Selectivity)
	fig, err := Sweep(
		[]EngineKind{Greta, Sase, Cet, Flat},
		[]float64{10, 20, 30, 40, 50, 60, 70, 80, 90},
		func(x float64) (*query.Query, []*event.Event) {
			cfg := gen.DefaultLinearRoad(sc.FixedEvents)
			// ~1 report per vehicle per second.
			cfg.StartRate, cfg.EndRate = 50, 200
			cfg.GateSelectivity = x
			return q, gen.LinearRoad(cfg)
		},
		sc.Caps, sc.Budget, true)
	fig.Title = "Figure 16: selectivity of edge predicates (Linear Road data)"
	fig.XLabel = "selectivity %"
	return fig, err
}

// Fig17 regenerates Figure 17: number of event trend groups sweep over
// the cluster monitoring stream at a fixed window size.
func Fig17(sc Scale) (Figure, error) {
	q := query.MustParse(Q2Groups)
	fig, err := Sweep(
		[]EngineKind{Greta, Sase, Cet, Flat},
		[]float64{1, 2, 5, 10, 20, 50},
		func(x float64) (*query.Query, []*event.Event) {
			cfg := gen.DefaultCluster(sc.FixedEvents)
			// ~2 measurements per (job, mapper) pair per second.
			cfg.Rate = 200
			cfg.Mappers = int(x)
			return q, gen.Cluster(cfg)
		},
		sc.Caps, sc.Budget, false)
	fig.Title = "Figure 17: number of event trend groups (cluster monitoring data)"
	fig.XLabel = "groups"
	return fig, err
}

// Table1Row is one row of the event-selection-semantics table.
type Table1Row struct {
	Semantics string
	Skipped   string
	Trends    uint64
}

// Table1 regenerates Table 1 over the paper's §2 example: the price
// stream {10,2,9,8,7,1,6,5,4,3} with pattern S+ and predicate
// price > NEXT(price). Skip-till-any-match detects exponentially many
// trends; the restrictive semantics detect few.
func Table1() ([]Table1Row, error) {
	var b event.Builder
	prices := []float64{10, 2, 9, 8, 7, 1, 6, 5, 4, 3}
	for i, p := range prices {
		b.Add("S", event.Time(i+1), map[string]float64{"price": p})
	}
	rows := []Table1Row{
		{Semantics: "skip-till-any-match", Skipped: "any"},
		{Semantics: "skip-till-next-match", Skipped: "irrelevant"},
		{Semantics: "contiguous", Skipped: "none"},
	}
	for i := range rows {
		q := query.MustParse(fmt.Sprintf(
			"RETURN COUNT(*) PATTERN S+ WHERE S.price > NEXT(S).price SEMANTICS %s",
			rows[i].Semantics))
		plan, err := core.NewPlan(q, aggregate.ModeNative)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(plan)
		eng.Run(b.Stream())
		if rs := eng.Results(); len(rs) > 0 {
			rows[i].Trends = uint64(rs[0].Values[0])
		}
		b.Stream().Reset()
	}
	return rows, nil
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "== Table 1: event selection semantics ==")
	fmt.Fprintf(w, "%-24s%-14s%10s\n", "Semantics", "Skipped", "#trends")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s%-14s%10d\n", r.Semantics, r.Skipped, r.Trends)
	}
	fmt.Fprintln(w)
}

// ComplexityGrowth measures how GRETA's work scales with window size:
// traversed edges must grow ~quadratically (Theorem 8.1) while the
// trend count (what two-step engines enumerate) grows exponentially.
type GrowthPoint struct {
	N      int
	Edges  uint64
	Trends string // exact count, exponent form for large values
}

// Growth runs the complexity measurement over a's-only streams.
func Growth(ns []int) ([]GrowthPoint, error) {
	var out []GrowthPoint
	for _, n := range ns {
		var b event.Builder
		for i := 0; i < n; i++ {
			b.Add("A", event.Time(i+1), nil)
		}
		q := query.MustParse("RETURN COUNT(*) PATTERN A+")
		plan, err := core.NewPlan(q, aggregate.ModeExact)
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(plan)
		eng.Run(b.Stream())
		trends := "0"
		if rs := eng.Results(); len(rs) > 0 {
			trends = formatBig(plan.Def().ExactCount(rs[0].Payload))
		}
		out = append(out, GrowthPoint{N: n, Edges: eng.Stats().Edges, Trends: trends})
	}
	return out, nil
}

// PrintGrowth renders the growth measurement.
func PrintGrowth(w io.Writer, pts []GrowthPoint) {
	fmt.Fprintln(w, "== Complexity growth (Theorems 8.1/8.2): edges ~ n^2, trends ~ 2^n ==")
	fmt.Fprintf(w, "%8s%12s%16s\n", "n", "edges", "trends")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d%12d%16s\n", p.N, p.Edges, p.Trends)
	}
	fmt.Fprintln(w)
}

// OracleCheck cross-checks GRETA against the enumerator on a small
// slice of each workload, so harness runs carry their own correctness
// evidence.
func OracleCheck() error {
	checks := []struct {
		qsrc string
		evs  []*event.Event
	}{
		{Q1Positive, gen.Stock(gen.StockConfig{Events: 60, Companies: 3, Sectors: 2, Rate: 10, StartPrice: 100, MaxTick: 2, Seed: 5})},
		{Q3Selectivity, gen.LinearRoad(gen.LinearRoadConfig{Events: 60, Vehicles: 4, Segments: 2, StartRate: 10, EndRate: 10, MaxSpeed: 100, GateSelectivity: 50, Seed: 5})},
		{Q2Groups, gen.Cluster(gen.ClusterConfig{Events: 60, Mappers: 2, Jobs: 2, Rate: 10, LoadLambda: 100, StartEndProb: 0.2, Seed: 5})},
	}
	for _, c := range checks {
		q := query.MustParse(c.qsrc)
		plan, err := core.NewPlan(q, aggregate.ModeNative)
		if err != nil {
			return err
		}
		eng := core.NewEngine(plan)
		eng.Run(event.NewSliceStream(c.evs))
		want, err := enum.Run(q, c.evs)
		if err != nil {
			return err
		}
		wantTotal := 0.0
		for _, r := range want {
			if r.Count > 0 {
				wantTotal += r.Values[0]
			}
		}
		gotTotal := 0.0
		for _, r := range eng.Results() {
			gotTotal += r.Values[0]
		}
		if gotTotal != wantTotal {
			return fmt.Errorf("oracle check failed for %q: got %v, want %v", c.qsrc, gotTotal, wantTotal)
		}
	}
	return nil
}

// formatBig renders a big integer compactly (exponent form when long).
func formatBig(x *big.Int) string {
	s := x.String()
	if len(s) <= 12 {
		return s
	}
	return fmt.Sprintf("%s.%se%d", s[:1], s[1:4], len(s)-1)
}
