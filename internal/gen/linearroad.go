package gen

import (
	"fmt"
	"math/rand"

	"github.com/greta-cep/greta/internal/event"
)

// LinearRoadConfig parameterizes the traffic stream standing in for the
// Linear Road benchmark's position reports (paper §10.1): vehicles
// emitting second-granularity position reports with speeds, plus
// occasional accident events, on a set of road segments. The event
// rate ramps up linearly, mirroring the benchmark's increasing load.
type LinearRoadConfig struct {
	Events   int
	Vehicles int
	Segments int
	// StartRate/EndRate are events per second at the beginning and end
	// of the stream (linear ramp; the benchmark ramps to 4k ev/s).
	StartRate int
	EndRate   int
	// AccidentProb is the per-event probability of an accident report.
	AccidentProb float64
	// MaxSpeed bounds speeds; vehicles alternate slowing and recovering
	// episodes, creating the decreasing-speed trends Q3 aggregates.
	MaxSpeed float64
	// GateSelectivity in (0,100]: every position report carries
	// sel ~ U[0,100) and gate = GateSelectivity, so the edge predicate
	// P.sel <= NEXT(P).gate matches GateSelectivity percent of pairs —
	// the direct control used by the Fig. 16 selectivity sweep.
	GateSelectivity float64
	Seed            int64
}

// DefaultLinearRoad mirrors the benchmark's shape at laptop scale.
func DefaultLinearRoad(events int) LinearRoadConfig {
	return LinearRoadConfig{
		Events:          events,
		Vehicles:        50,
		Segments:        5,
		StartRate:       1000,
		EndRate:         4000,
		AccidentProb:    0.001,
		MaxSpeed:        100,
		GateSelectivity: 50,
		Seed:            1,
	}
}

// LinearRoad generates the position-report stream.
func LinearRoad(cfg LinearRoadConfig) []*event.Event {
	if cfg.StartRate <= 0 {
		cfg.StartRate = 1000
	}
	if cfg.EndRate < cfg.StartRate {
		cfg.EndRate = cfg.StartRate
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type vstate struct {
		speed   float64
		slowing bool
		segment int
		pos     float64
	}
	vs := make([]vstate, cfg.Vehicles)
	for i := range vs {
		vs[i] = vstate{
			speed:   20 + rng.Float64()*(cfg.MaxSpeed-20),
			slowing: rng.Intn(2) == 0,
			segment: rng.Intn(cfg.Segments),
		}
	}
	evs := make([]*event.Event, 0, cfg.Events)
	t := event.Time(0)
	emitted := 0
	for emitted < cfg.Events {
		// Linear rate ramp.
		frac := float64(emitted) / float64(cfg.Events)
		rate := cfg.StartRate + int(frac*float64(cfg.EndRate-cfg.StartRate))
		for r := 0; r < rate && emitted < cfg.Events; r++ {
			v := rng.Intn(cfg.Vehicles)
			st := &vs[v]
			if rng.Float64() < 0.05 {
				st.slowing = !st.slowing
			}
			delta := rng.Float64() * 5
			if st.slowing {
				st.speed = Clamp(st.speed-delta, 0, cfg.MaxSpeed)
			} else {
				st.speed = Clamp(st.speed+delta, 0, cfg.MaxSpeed)
			}
			st.pos += st.speed
			emitted++
			if rng.Float64() < cfg.AccidentProb {
				ev := &event.Event{
					ID:   uint64(emitted),
					Type: "Accident",
					Time: t,
					Str: map[string]string{
						"segment": fmt.Sprintf("seg%d", st.segment),
					},
				}
				accidentSchema.Bind(ev)
				evs = append(evs, ev)
				continue
			}
			ev := &event.Event{
				ID:   uint64(emitted),
				Type: "Position",
				Time: t,
				Attrs: map[string]float64{
					"speed":    st.speed,
					"position": st.pos,
					"sel":      rng.Float64() * 100,
					"gate":     cfg.GateSelectivity,
				},
				Str: map[string]string{
					"vehicle": fmt.Sprintf("v%03d", v),
					"segment": fmt.Sprintf("seg%d", st.segment),
				},
			}
			positionSchema.Bind(ev)
			evs = append(evs, ev)
		}
		t++
	}
	return evs
}

// positionSchema / accidentSchema are the ingest schemas.
var (
	positionSchema = &event.Schema{
		Type:    "Position",
		Numeric: []string{"speed", "position", "sel", "gate"},
		Strings: []string{"vehicle", "segment"},
	}
	accidentSchema = &event.Schema{Type: "Accident", Strings: []string{"segment"}}
)

// LinearRoadSchemas describes the generated event types (stable
// pointers; see StockSchemas).
func LinearRoadSchemas() []*event.Schema {
	return []*event.Schema{positionSchema, accidentSchema}
}
