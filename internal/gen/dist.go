// Package gen implements the three evaluation workloads of the paper
// (§10.1): a stock-transaction stream standing in for the real NYSE
// data set, a Linear Road-style position-report stream, and a Hadoop
// cluster monitoring stream following Table 2's attribute
// distributions. All generators are deterministic given a seed and
// produce in-order streams.
package gen

import (
	"math"
	"math/rand"
)

// Poisson draws a Poisson-distributed value with mean lambda using
// Knuth's multiplicative method (exact; adequate for λ ≤ a few
// hundred, which covers Table 2's λ=100 load distribution).
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// UniformInt draws an integer uniformly from [lo, hi].
func UniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
