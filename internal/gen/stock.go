package gen

import (
	"fmt"
	"math/rand"

	"github.com/greta-cep/greta/internal/event"
)

// StockConfig parameterizes the synthetic NYSE-style transaction
// stream. The paper uses the real NYSE data set (225k transactions of
// 10 companies, replicated 10×); this generator reproduces its schema
// (volume, price, second timestamps, buy/sell type, company, sector,
// transaction id) with a random-walk price process, so per-company
// sub-streams exhibit the local fluctuations that drive Kleene match
// explosion.
type StockConfig struct {
	Events    int
	Companies int
	Sectors   int
	// Rate is events per second (timestamp granularity is seconds, as in
	// the paper's data set).
	Rate int
	// StartPrice and MaxTick control the random walk: each transaction
	// moves the company price by a uniform tick in [-MaxTick, +MaxTick].
	StartPrice float64
	MaxTick    float64
	// DownBias in [0,1) skews the walk downward, producing longer
	// down-trends for Q1-style queries.
	DownBias float64
	// HaltProb is the per-event probability of a trading-halt event
	// (type Halt) for the same company, used by queries with negative
	// sub-patterns (the Fig. 15 experiment).
	HaltProb float64
	Seed     int64
}

// DefaultStock mirrors the paper's setup: 10 companies, 2 sectors.
func DefaultStock(events int) StockConfig {
	return StockConfig{
		Events:     events,
		Companies:  10,
		Sectors:    2,
		Rate:       500,
		StartPrice: 100,
		MaxTick:    2,
		DownBias:   0.1,
		Seed:       1,
	}
}

// Stock generates the transaction stream.
func Stock(cfg StockConfig) []*event.Event {
	if cfg.Rate <= 0 {
		cfg.Rate = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	price := make([]float64, cfg.Companies)
	for i := range price {
		price[i] = cfg.StartPrice
	}
	evs := make([]*event.Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		c := rng.Intn(cfg.Companies)
		if cfg.HaltProb > 0 && rng.Float64() < cfg.HaltProb {
			ev := &event.Event{
				ID:   uint64(i + 1),
				Type: "Halt",
				Time: event.Time(i / cfg.Rate),
				Str: map[string]string{
					"company": fmt.Sprintf("co%02d", c),
					"sector":  fmt.Sprintf("sec%d", c%cfg.Sectors),
				},
			}
			haltSchema.Bind(ev)
			evs = append(evs, ev)
			continue
		}
		tick := (rng.Float64()*2 - 1 - cfg.DownBias) * cfg.MaxTick
		price[c] = Clamp(price[c]+tick, 1, 10*cfg.StartPrice)
		side := "sell"
		if rng.Intn(2) == 0 {
			side = "buy"
		}
		ev := &event.Event{
			ID:   uint64(i + 1),
			Type: "Stock",
			Time: event.Time(i / cfg.Rate),
			Attrs: map[string]float64{
				"price":  price[c],
				"volume": float64(UniformInt(rng, 1, 1000)),
			},
			Str: map[string]string{
				"company": fmt.Sprintf("co%02d", c),
				"sector":  fmt.Sprintf("sec%d", c%cfg.Sectors),
				"side":    side,
			},
		}
		stockSchema.Bind(ev)
		evs = append(evs, ev)
	}
	return evs
}

// stockSchema / haltSchema are the ingest schemas: generated events are
// bound to them so the runtime reads attributes by dense slot.
var (
	stockSchema = &event.Schema{
		Type:    "Stock",
		Numeric: []string{"price", "volume"},
		Strings: []string{"company", "sector", "side"},
	}
	haltSchema = &event.Schema{
		Type:    "Halt",
		Strings: []string{"company", "sector"},
	}
)

// StockSchemas describes the generated event types. The pointers are
// stable package-level schemas (the same ones Bind attaches), so they
// feed greta.BindSchemas directly and keep accessor slot caches warm.
func StockSchemas() []*event.Schema {
	return []*event.Schema{stockSchema, haltSchema}
}
