package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/event"
)

func TestPoissonMoments(t *testing.T) {
	// Table 2: load ~ Poisson(λ=100). Sample mean and variance must be
	// close to λ.
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := float64(Poisson(rng, 100))
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-100) > 1 {
		t.Errorf("mean = %v, want ≈100", mean)
	}
	if math.Abs(variance-100) > 6 {
		t.Errorf("variance = %v, want ≈100", variance)
	}
}

func TestPoissonEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Poisson(rng, 0) != 0 {
		t.Error("λ=0 must yield 0")
	}
	if Poisson(rng, -5) != 0 {
		t.Error("λ<0 must yield 0")
	}
}

func TestStockStream(t *testing.T) {
	cfg := DefaultStock(5000)
	evs := Stock(cfg)
	if len(evs) != 5000 {
		t.Fatalf("len = %d", len(evs))
	}
	if err := event.Validate(evs); err != nil {
		t.Fatal(err)
	}
	companies := map[string]bool{}
	sectors := map[string]bool{}
	for _, e := range evs {
		if e.Type != "Stock" {
			t.Fatalf("type = %s", e.Type)
		}
		if e.Attrs["price"] <= 0 {
			t.Fatalf("price = %v", e.Attrs["price"])
		}
		if v := e.Attrs["volume"]; v < 1 || v > 1000 {
			t.Fatalf("volume = %v", v)
		}
		companies[e.Str["company"]] = true
		sectors[e.Str["sector"]] = true
	}
	if len(companies) != cfg.Companies {
		t.Errorf("companies = %d, want %d", len(companies), cfg.Companies)
	}
	if len(sectors) != cfg.Sectors {
		t.Errorf("sectors = %d, want %d", len(sectors), cfg.Sectors)
	}
	// Deterministic given the seed.
	evs2 := Stock(cfg)
	if evs[42].Attrs["price"] != evs2[42].Attrs["price"] {
		t.Error("not deterministic")
	}
}

func TestLinearRoadStream(t *testing.T) {
	cfg := DefaultLinearRoad(8000)
	evs := LinearRoad(cfg)
	if len(evs) != 8000 {
		t.Fatalf("len = %d", len(evs))
	}
	if err := event.Validate(evs); err != nil {
		t.Fatal(err)
	}
	accidents, positions := 0, 0
	for _, e := range evs {
		switch e.Type {
		case "Accident":
			accidents++
		case "Position":
			positions++
			if s := e.Attrs["speed"]; s < 0 || s > cfg.MaxSpeed {
				t.Fatalf("speed = %v", s)
			}
			if g := e.Attrs["gate"]; g != cfg.GateSelectivity {
				t.Fatalf("gate = %v", g)
			}
		default:
			t.Fatalf("type = %s", e.Type)
		}
	}
	if accidents == 0 {
		t.Error("no accidents generated")
	}
	if positions < accidents {
		t.Error("positions should dominate")
	}
}

// TestTable2Distributions checks the cluster generator against the
// paper's Table 2: ids uniform 0–10, cpu/memory uniform 0–1k, load
// Poisson λ=100 within 0–10k.
func TestTable2Distributions(t *testing.T) {
	cfg := DefaultCluster(30000)
	evs := Cluster(cfg)
	if err := event.Validate(evs); err != nil {
		t.Fatal(err)
	}
	var loadSum float64
	var cpuSum float64
	mappers := map[string]bool{}
	jobs := map[string]bool{}
	for _, e := range evs {
		if v := e.Attrs["cpu"]; v < 0 || v > 1000 {
			t.Fatalf("cpu = %v outside 0–1000", v)
		}
		if v := e.Attrs["memory"]; v < 0 || v > 1000 {
			t.Fatalf("memory = %v", v)
		}
		if v := e.Attrs["load"]; v < 0 || v > 10000 {
			t.Fatalf("load = %v outside 0–10000", v)
		}
		loadSum += e.Attrs["load"]
		cpuSum += e.Attrs["cpu"]
		mappers[e.Str["mapper"]] = true
		jobs[e.Str["job"]] = true
	}
	n := float64(len(evs))
	if m := loadSum / n; math.Abs(m-100) > 2 {
		t.Errorf("mean load = %v, want ≈100 (Poisson λ=100)", m)
	}
	if m := cpuSum / n; math.Abs(m-500) > 15 {
		t.Errorf("mean cpu = %v, want ≈500 (uniform 0–1000)", m)
	}
	if len(mappers) != cfg.Mappers {
		t.Errorf("mappers = %d, want %d", len(mappers), cfg.Mappers)
	}
	if len(jobs) != cfg.Jobs {
		t.Errorf("jobs = %d, want %d", len(jobs), cfg.Jobs)
	}
}

func TestClusterEpisodes(t *testing.T) {
	evs := Cluster(DefaultCluster(20000))
	// Per (job, mapper): events follow Start (Measurement* End Start)*...
	type key struct{ j, m string }
	state := map[key]string{}
	for _, e := range evs {
		k := key{e.Str["job"], e.Str["mapper"]}
		prev := state[k]
		switch e.Type {
		case "Start":
			if prev == "Start" || prev == "Measurement" {
				t.Fatalf("Start after %s for %v", prev, k)
			}
		case "Measurement", "End":
			if prev != "Start" && prev != "Measurement" {
				t.Fatalf("%s after %q for %v", e.Type, prev, k)
			}
		}
		if e.Type == "End" {
			state[k] = ""
		} else {
			state[k] = string(e.Type)
		}
		if e.Type == "Measurement" {
			state[k] = "Measurement"
		}
	}
}

// TestQuickGateSelectivity: the fraction of position pairs satisfying
// sel <= gate tracks the configured selectivity.
func TestQuickGateSelectivity(t *testing.T) {
	f := func(selRaw uint8) bool {
		sel := float64(selRaw%91) + 5 // 5..95
		cfg := DefaultLinearRoad(4000)
		cfg.GateSelectivity = sel
		cfg.AccidentProb = 0
		evs := LinearRoad(cfg)
		match := 0
		for _, e := range evs {
			if e.Attrs["sel"] <= sel {
				match++
			}
		}
		got := 100 * float64(match) / float64(len(evs))
		return math.Abs(got-sel) < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSchemas(t *testing.T) {
	if len(StockSchemas()) != 2 || len(LinearRoadSchemas()) != 2 || len(ClusterSchemas()) != 3 {
		t.Error("schema counts wrong")
	}
	for _, schemas := range [][]*event.Schema{StockSchemas(), LinearRoadSchemas(), ClusterSchemas()} {
		for _, s := range schemas {
			if s.Type == "" {
				t.Error("schema missing type")
			}
		}
	}
}
