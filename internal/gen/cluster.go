package gen

import (
	"fmt"
	"math/rand"

	"github.com/greta-cep/greta/internal/event"
)

// ClusterConfig parameterizes the Hadoop cluster monitoring stream
// (paper §10.1, Table 2): job start/end events and mapper performance
// measurements with mapper id and job id uniform in 0–10, CPU and
// memory uniform in 0–1000, and load Poisson with λ=100 (range
// 0–10000). The stream rate is 3k events per second.
type ClusterConfig struct {
	Events int
	// Mappers/Jobs bound the uniform id ranges (Table 2: 0–10). For the
	// Fig. 17 group sweep, Mappers is the number of trend groups.
	Mappers int
	Jobs    int
	Rate    int
	// LoadLambda is the Poisson mean of the load attribute (Table 2:
	// λ = 100).
	LoadLambda float64
	// StartEndProb is the per-event probability of emitting a job
	// Start/End pair boundary instead of a measurement.
	StartEndProb float64
	Seed         int64
}

// DefaultCluster mirrors Table 2.
func DefaultCluster(events int) ClusterConfig {
	return ClusterConfig{
		Events:       events,
		Mappers:      10,
		Jobs:         10,
		Rate:         3000,
		LoadLambda:   100,
		StartEndProb: 0.02,
		Seed:         1,
	}
}

// Cluster generates the monitoring stream. Each (job, mapper) pair
// cycles through Start, Measurement+, End episodes so Q2's pattern
// SEQ(Start S, Measurement M+, End E) finds complete trends.
type jobPhase uint8

const (
	phaseIdle jobPhase = iota
	phaseRunning
)

// Cluster generates the monitoring stream.
func Cluster(cfg ClusterConfig) []*event.Event {
	if cfg.Rate <= 0 {
		cfg.Rate = 3000
	}
	if cfg.Mappers <= 0 {
		cfg.Mappers = 10
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type key struct{ job, mapper int }
	phase := map[key]jobPhase{}
	evs := make([]*event.Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		k := key{UniformInt(rng, 0, cfg.Jobs-1), UniformInt(rng, 0, cfg.Mappers-1)}
		t := event.Time(i / cfg.Rate)
		strs := map[string]string{
			"job":    fmt.Sprintf("job%02d", k.job),
			"mapper": fmt.Sprintf("m%02d", k.mapper),
		}
		attrs := map[string]float64{
			"cpu":    float64(UniformInt(rng, 0, 1000)),
			"memory": float64(UniformInt(rng, 0, 1000)),
			"load":   Clamp(float64(Poisson(rng, cfg.LoadLambda)), 0, 10000),
		}
		var typ event.Type
		switch phase[k] {
		case phaseIdle:
			typ = "Start"
			phase[k] = phaseRunning
		case phaseRunning:
			if rng.Float64() < cfg.StartEndProb {
				typ = "End"
				phase[k] = phaseIdle
			} else {
				typ = "Measurement"
			}
		}
		ev := &event.Event{
			ID:    uint64(i + 1),
			Type:  typ,
			Time:  t,
			Attrs: attrs,
			Str:   strs,
		}
		clusterSchemas[typ].Bind(ev)
		evs = append(evs, ev)
	}
	return evs
}

// clusterSchemas are the ingest schemas, one per event type.
var clusterSchemas = func() map[event.Type]*event.Schema {
	num := []string{"cpu", "memory", "load"}
	strs := []string{"job", "mapper"}
	m := map[event.Type]*event.Schema{}
	for _, t := range []event.Type{"Start", "Measurement", "End"} {
		m[t] = &event.Schema{Type: t, Numeric: num, Strings: strs}
	}
	return m
}()

// ClusterSchemas describes the generated event types (stable pointers;
// see StockSchemas).
func ClusterSchemas() []*event.Schema {
	return []*event.Schema{
		clusterSchemas["Start"],
		clusterSchemas["Measurement"],
		clusterSchemas["End"],
	}
}
