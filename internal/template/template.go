// Package template implements the static GRETA template (paper §4.1,
// Algorithm 1): the finite-state-automaton representation of a positive
// Kleene pattern that guides runtime graph construction.
//
// States correspond to event leaves of the pattern (identified by
// alias, which equals the event type unless the type occurs several
// times — the §9 multi-occurrence extension). Transitions correspond to
// the SEQ and Kleene-plus operators and define predecessor
// relationships between states.
package template

import (
	"fmt"
	"slices"
	"strings"

	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
)

// State is a template state: one event leaf of the pattern.
type State struct {
	Idx   int
	Alias string
	Type  event.Type
	// Labels lists the pattern aliases this state represents. For plain
	// templates it is {Alias}; for product templates (Product) it is the
	// union of the component states' labels, so predicates written
	// against pattern aliases can be attached to product states.
	Labels []string
	// Start marks states of type start(P): events of this state may
	// begin a trend. End marks end(P) states: events of this state may
	// finish a trend.
	Start bool
	End   bool
	// Preds lists indices of predecessor states (states whose events may
	// immediately precede events of this state in a trend).
	Preds []int
}

// Transition is an automaton transition labeled "SEQ" or "+"
// (Algorithm 1 lines 3–8).
type Transition struct {
	From, To int
	Label    string
}

// Template is the automaton-based representation T = (S, T) of a
// positive pattern.
type Template struct {
	States      []*State
	Transitions []Transition
	ByAlias     map[string]int
	ByType      map[event.Type][]int
	StartIdx    int // index of the unique start(P) state (Theorem 4.1)
	EndIdx      int // index of the unique end(P) state
}

// Build constructs the GRETA template for a positive pattern per
// Algorithm 1. The pattern must be negation-free and sugar-free (run
// pattern.StripNegation / pattern.Expand first) with unique aliases.
func Build(p *pattern.Node) (*Template, error) {
	if p == nil {
		return nil, fmt.Errorf("template: nil pattern")
	}
	if !p.IsPositive() {
		return nil, fmt.Errorf("template: pattern %s contains negation; split it first", p)
	}
	t := &Template{ByAlias: map[string]int{}, ByType: map[event.Type][]int{}}
	for _, leaf := range p.EventNodes() {
		if _, dup := t.ByAlias[leaf.Alias]; dup {
			return nil, fmt.Errorf("template: duplicate alias %q", leaf.Alias)
		}
		labels := []string{leaf.Alias}
		if leaf.Label != "" && leaf.Label != leaf.Alias {
			labels = append(labels, leaf.Label)
		}
		s := &State{Idx: len(t.States), Alias: leaf.Alias, Type: leaf.Type, Labels: labels}
		t.States = append(t.States, s)
		t.ByAlias[s.Alias] = s.Idx
		t.ByType[s.Type] = append(t.ByType[s.Type], s.Idx)
	}
	if len(t.States) == 0 {
		return nil, fmt.Errorf("template: pattern %s has no event types", p)
	}
	if err := t.addTransitions(p); err != nil {
		return nil, err
	}
	startAlias, endAlias := pattern.Start(p), pattern.End(p)
	t.StartIdx = t.ByAlias[startAlias]
	t.EndIdx = t.ByAlias[endAlias]
	t.States[t.StartIdx].Start = true
	t.States[t.EndIdx].End = true
	for _, tr := range t.Transitions {
		t.States[tr.To].Preds = append(t.States[tr.To].Preds, tr.From)
	}
	for _, s := range t.States {
		slices.Sort(s.Preds)
		s.Preds = dedupInts(s.Preds)
	}
	return t, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(p *pattern.Node) *Template {
	t, err := Build(p)
	if err != nil {
		panic(err)
	}
	return t
}

// addTransitions walks the pattern adding one transition per operator
// (Algorithm 1 lines 3–8): end(Pi) → start(Pj) labeled "SEQ" for each
// sequence pair, and end(Pi) → start(Pi) labeled "+" for each Kleene.
func (t *Template) addTransitions(n *pattern.Node) error {
	switch n.Kind {
	case pattern.KindEvent:
		return nil
	case pattern.KindSeq:
		for i := 0; i+1 < len(n.Children); i++ {
			from := pattern.End(n.Children[i])
			to := pattern.Start(n.Children[i+1])
			t.Transitions = append(t.Transitions, Transition{t.ByAlias[from], t.ByAlias[to], "SEQ"})
		}
		for _, c := range n.Children {
			if err := t.addTransitions(c); err != nil {
				return err
			}
		}
		return nil
	case pattern.KindPlus:
		from := pattern.End(n.Children[0])
		to := pattern.Start(n.Children[0])
		t.Transitions = append(t.Transitions, Transition{t.ByAlias[from], t.ByAlias[to], "+"})
		return t.addTransitions(n.Children[0])
	default:
		return fmt.Errorf("template: operator %v must be rewritten before template construction", n.Kind)
	}
}

// PredAliases returns the aliases of the predecessor states of the
// state with the given alias (P.predTypes in the paper).
func (t *Template) PredAliases(alias string) []string {
	idx, ok := t.ByAlias[alias]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(t.States[idx].Preds))
	for _, p := range t.States[idx].Preds {
		out = append(out, t.States[p].Alias)
	}
	return out
}

// Mid returns the aliases of states that are neither start nor end.
func (t *Template) Mid() []string {
	var out []string
	for _, s := range t.States {
		if !s.Start && !s.End {
			out = append(out, s.Alias)
		}
	}
	return out
}

// String renders the template compactly for debugging, e.g.
// "A[start] B[end]; A-(+)->A A-(SEQ)->B B-(+)->A".
func (t *Template) String() string {
	var b strings.Builder
	for i, s := range t.States {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Alias)
		var marks []string
		if s.Start {
			marks = append(marks, "start")
		}
		if s.End {
			marks = append(marks, "end")
		}
		if len(marks) > 0 {
			b.WriteString("[" + strings.Join(marks, ",") + "]")
		}
	}
	b.WriteString(";")
	for _, tr := range t.Transitions {
		fmt.Fprintf(&b, " %s-(%s)->%s", t.States[tr.From].Alias, tr.Label, t.States[tr.To].Alias)
	}
	return b.String()
}

func unionLabels(a, b []string) []string {
	out := append([]string{}, a...)
	for _, x := range b {
		dup := false
		for _, y := range out {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Product builds the intersection template of t1 and t2 (paper §9,
// disjunction/conjunction support): its trends are exactly the trends
// matched by both source patterns. States are pairs (s1, s2) with equal
// event types; transitions advance both components simultaneously. The
// result generally has several states per event type, which the runtime
// supports via the multi-occurrence extension.
func Product(t1, t2 *Template) *Template {
	type pair struct{ a, b int }
	idx := map[pair]int{}
	t := &Template{ByAlias: map[string]int{}, ByType: map[event.Type][]int{}}
	var pairs []pair
	for _, s1 := range t1.States {
		for _, s2 := range t2.States {
			if s1.Type != s2.Type {
				continue
			}
			p := pair{s1.Idx, s2.Idx}
			alias := s1.Alias + "×" + s2.Alias
			st := &State{
				Idx:    len(t.States),
				Alias:  alias,
				Type:   s1.Type,
				Labels: unionLabels(s1.Labels, s2.Labels),
				Start:  s1.Start && s2.Start,
				End:    s1.End && s2.End,
			}
			idx[p] = st.Idx
			pairs = append(pairs, p)
			t.States = append(t.States, st)
			t.ByAlias[alias] = st.Idx
			t.ByType[st.Type] = append(t.ByType[st.Type], st.Idx)
		}
	}
	edge := func(tt *Template, from, to int) bool {
		for _, tr := range tt.Transitions {
			if tr.From == from && tr.To == to {
				return true
			}
		}
		return false
	}
	for _, p := range pairs {
		for _, q := range pairs {
			if edge(t1, p.a, q.a) && edge(t2, p.b, q.b) {
				t.Transitions = append(t.Transitions, Transition{idx[p], idx[q], "SEQ"})
			}
		}
	}
	for _, tr := range t.Transitions {
		t.States[tr.To].Preds = append(t.States[tr.To].Preds, tr.From)
	}
	for _, s := range t.States {
		slices.Sort(s.Preds)
		s.Preds = dedupInts(s.Preds)
	}
	// StartIdx/EndIdx are not unique in a product; mark -1 and rely on
	// the per-state Start/End flags.
	t.StartIdx, t.EndIdx = -1, -1
	return t
}
