package template

import (
	"testing"

	"github.com/greta-cep/greta/internal/pattern"
)

func TestBuildFig5(t *testing.T) {
	// Paper Fig. 5: template for (SEQ(A+, B))+ has states A (start) and
	// B (end) with transitions A-+->A, A-SEQ->B, B-+->A, and
	// predTypes(A) = {A, B}, predTypes(B) = {A}.
	tm := MustBuild(pattern.MustParse("(SEQ(A+, B))+"))
	if len(tm.States) != 2 {
		t.Fatalf("states = %d", len(tm.States))
	}
	a, b := tm.States[tm.ByAlias["A"]], tm.States[tm.ByAlias["B"]]
	if !a.Start || a.End {
		t.Errorf("A flags: start=%v end=%v", a.Start, a.End)
	}
	if b.Start || !b.End {
		t.Errorf("B flags: start=%v end=%v", b.Start, b.End)
	}
	predA := tm.PredAliases("A")
	if len(predA) != 2 {
		t.Errorf("predTypes(A) = %v, want {A,B}", predA)
	}
	predB := tm.PredAliases("B")
	if len(predB) != 1 || predB[0] != "A" {
		t.Errorf("predTypes(B) = %v, want {A}", predB)
	}
	if len(tm.Transitions) != 3 {
		t.Errorf("transitions = %v", tm.Transitions)
	}
}

func TestBuildSingleType(t *testing.T) {
	// A+ : A is both start and end, with a self-loop.
	tm := MustBuild(pattern.MustParse("A+"))
	a := tm.States[0]
	if !a.Start || !a.End {
		t.Error("A should be both start and end")
	}
	if len(a.Preds) != 1 || a.Preds[0] != 0 {
		t.Errorf("preds = %v", a.Preds)
	}
}

func TestBuildQ2(t *testing.T) {
	tm := MustBuild(pattern.MustParse("SEQ(Start S, Measurement M+, End E)"))
	if len(tm.States) != 3 {
		t.Fatalf("states = %d", len(tm.States))
	}
	if tm.States[tm.StartIdx].Alias != "S" || tm.States[tm.EndIdx].Alias != "E" {
		t.Errorf("start/end = %s/%s", tm.States[tm.StartIdx].Alias, tm.States[tm.EndIdx].Alias)
	}
	mids := tm.Mid()
	if len(mids) != 1 || mids[0] != "M" {
		t.Errorf("mid = %v", mids)
	}
	// M's predecessors: S (SEQ) and M (Kleene).
	preds := tm.PredAliases("M")
	if len(preds) != 2 {
		t.Errorf("predTypes(M) = %v", preds)
	}
}

func TestBuildMultiOccurrence(t *testing.T) {
	// Fig. 13: SEQ(A1+, B2, A3, A4+, B5+).
	tm := MustBuild(pattern.MustParse("SEQ(A+, B, A, A+, B+)"))
	if len(tm.States) != 5 {
		t.Fatalf("states = %d", len(tm.States))
	}
	if len(tm.ByType["A"]) != 3 || len(tm.ByType["B"]) != 2 {
		t.Errorf("ByType = %v", tm.ByType)
	}
	if tm.States[tm.StartIdx].Alias != "A1" {
		t.Errorf("start = %s", tm.States[tm.StartIdx].Alias)
	}
	if tm.States[tm.EndIdx].Alias != "B5" {
		t.Errorf("end = %s", tm.States[tm.EndIdx].Alias)
	}
}

func TestBuildRejectsNegation(t *testing.T) {
	if _, err := Build(pattern.MustParse("SEQ(A+, NOT C, B)")); err == nil {
		t.Error("expected error for negated pattern")
	}
}

func TestBuildRejectsSugar(t *testing.T) {
	if _, err := Build(pattern.MustParse("SEQ(A*, B)")); err == nil {
		t.Error("expected error for starred pattern")
	}
}

func TestProduct(t *testing.T) {
	// Product of A+ with SEQ(A+, B): trends matched by both must
	// contain a B after a's — impossible for A+ trends, so the product
	// has no state that is both start and end reachable... but the
	// state structure is still well-formed: A×A with self loop.
	t1 := MustBuild(pattern.MustParse("A+"))
	t2 := MustBuild(pattern.MustParse("SEQ(A+, B)"))
	p := Product(t1, t2)
	if len(p.States) != 1 {
		t.Fatalf("product states = %d, want 1 (A×A)", len(p.States))
	}
	st := p.States[0]
	if !st.Start {
		t.Error("A×A should be a start state")
	}
	if st.End {
		t.Error("A×A must not be an end state (B missing)")
	}
	// Self-loop: both components allow A->A.
	if len(st.Preds) != 1 {
		t.Errorf("preds = %v", st.Preds)
	}
	if len(st.Labels) != 1 || st.Labels[0] != "A" {
		t.Errorf("labels = %v", st.Labels)
	}
}

func TestProductIdentical(t *testing.T) {
	// P ∩ P should accept exactly P's trends: same state structure.
	t1 := MustBuild(pattern.MustParse("SEQ(A+, B)"))
	t2 := MustBuild(pattern.MustParse("SEQ(A+, B)"))
	p := Product(t1, t2)
	if len(p.States) != 2 {
		t.Fatalf("states = %d", len(p.States))
	}
	starts, ends := 0, 0
	for _, s := range p.States {
		if s.Start {
			starts++
		}
		if s.End {
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Errorf("starts=%d ends=%d", starts, ends)
	}
}

func TestString(t *testing.T) {
	tm := MustBuild(pattern.MustParse("(SEQ(A+, B))+"))
	s := tm.String()
	if s == "" {
		t.Error("empty string rendering")
	}
}
