// Package checkpoint implements the durable-runtime on-disk format:
// little-endian primitive codecs with sticky error handling, and an
// atomic, checksummed, generational Store (temp file + fsync + rename)
// with newest-valid-first recovery, per ROADMAP direction 3 and the
// partially-constrained-log recovery discipline (arXiv:1901.06491).
//
// Format invariants (see ROADMAP "Durability architecture"):
//
//   - every file starts with the 8-byte magic "GRETACK1" and ends with
//     a CRC32-Castagnoli of everything before it (magic included);
//   - all integers are little-endian fixed width; all collections are
//     length-prefixed and key-ordered, so encoding is deterministic:
//     encode(decode(encode(x))) == encode(x) byte for byte;
//   - the body is versioned by the producing layer (internal/core
//     writes its own version word first), so the Store never needs to
//     understand body contents.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt reports structurally invalid checkpoint bytes. Decoders
// return it (wrapped) instead of panicking on any malformed input.
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// Encoder writes little-endian primitives to an io.Writer with sticky
// error handling: after the first write error every later call is a
// no-op and Err returns the failure.
type Encoder struct {
	w       io.Writer
	scratch [8]byte
	err     error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

// Fail injects an error into the encoder (used when a value being
// serialized fails to marshal); later writes become no-ops.
func (e *Encoder) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

func (e *Encoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) {
	e.scratch[0] = v
	e.write(e.scratch[:1])
}

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	binary.LittleEndian.PutUint32(e.scratch[:4], v)
	e.write(e.scratch[:4])
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], v)
	e.write(e.scratch[:8])
}

// I64 writes a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bit pattern (NaN payloads and
// signed zeros round-trip exactly).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.write(b)
}

// Decoder reads the Encoder's format from an in-memory buffer with
// sticky error handling. All length prefixes are validated against the
// remaining input, so corrupt data yields ErrCorrupt instead of a
// panic or an attacker-controlled allocation.
type Decoder struct {
	buf []byte
	pos int
	err error
}

// NewDecoder returns a Decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Corrupt records (and returns) a corruption error with context; later
// reads become no-ops.
func (d *Decoder) Corrupt(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), d.pos)
	}
	return d.err
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.Corrupt("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting bytes other than 0 and 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Corrupt("invalid bool byte")
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a u32 length prefix for elements occupying at least
// elemSize bytes each, validating it against the remaining input so a
// corrupt count cannot drive a huge allocation.
func (d *Decoder) Len(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n > d.Remaining()/elemSize {
		d.Corrupt("length %d exceeds remaining input", n)
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice (a copy, safe to retain).
func (d *Decoder) Bytes() []byte {
	n := d.Len(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
