package checkpoint_test

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/greta-cep/greta/internal/checkpoint"
	"github.com/greta-cep/greta/internal/faultfs"
)

func body(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func genPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%08d.gck", gen))
}

// mustLoad asserts Load succeeds with the given body and generation.
func mustLoad(t *testing.T, s *checkpoint.Store, wantBody string, wantGen uint64) {
	t.Helper()
	got, gen, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(got) != wantBody || gen != wantGen {
		t.Fatalf("Load = %q gen %d, want %q gen %d", got, gen, wantBody, wantGen)
	}
}

// listDir returns the sorted names in dir (empty for a missing dir).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestStoreWriteLoadPrune(t *testing.T) {
	dir := t.TempDir()
	s := &checkpoint.Store{Dir: dir}

	for i, b := range []string{"alpha", "beta", "gamma"} {
		gen, err := s.Write(body(b))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if gen != uint64(i+1) {
			t.Fatalf("write %d assigned generation %d, want %d", i, gen, i+1)
		}
		mustLoad(t, s, b, gen)
	}
	// Default Keep is 2: generation 1 was pruned, 2 and 3 survive.
	want := []string{"ckpt-00000002.gck", "ckpt-00000003.gck"}
	if got := listDir(t, dir); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dir = %v, want %v", got, want)
	}
}

func TestStoreKeep(t *testing.T) {
	dir := t.TempDir()
	s := &checkpoint.Store{Dir: dir, Keep: 3}
	for i := 0; i < 5; i++ {
		if _, err := s.Write(body(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := listDir(t, dir); len(got) != 3 {
		t.Fatalf("Keep=3 left %v", got)
	}
	mustLoad(t, s, "b4", 5)
}

func TestLoadEmpty(t *testing.T) {
	s := &checkpoint.Store{Dir: filepath.Join(t.TempDir(), "never-created")}
	if _, _, err := s.Load(); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Load(missing dir) = %v, want ErrNoCheckpoint", err)
	}
	s = &checkpoint.Store{Dir: t.TempDir()}
	if _, _, err := s.Load(); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Load(empty dir) = %v, want ErrNoCheckpoint", err)
	}
}

// TestStoreTornWrite fills the disk mid-body: the write must fail
// loudly, leave no temp file, and keep the previous generation as the
// newest valid one.
func TestStoreTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	s := &checkpoint.Store{Dir: dir, FS: ffs}
	if _, err := s.Write(body("good")); err != nil {
		t.Fatal(err)
	}

	ffs.Reset()
	ffs.FailWriteAfter = 10 // tears inside the body (magic is 8 bytes)
	_, err := s.Write(body(strings.Repeat("x", 4096)))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	ffs.FailWriteAfter = -1
	for _, name := range listDir(t, dir) {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("torn write left temp file %s", name)
		}
	}
	mustLoad(t, s, "good", 1)
}

// TestStoreWriteFaults drives each fail point that aborts before the
// rename: the previous generation must stay the newest valid one.
func TestStoreWriteFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(*faultfs.FS)
	}{
		{"enospc-at-once", func(f *faultfs.FS) { f.FailWriteAfter = 0 }},
		{"fsync", func(f *faultfs.FS) { f.FailSync = true }},
		{"rename", func(f *faultfs.FS) { f.FailRename = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New()
			s := &checkpoint.Store{Dir: dir, FS: ffs}
			if _, err := s.Write(body("good")); err != nil {
				t.Fatal(err)
			}
			ffs.Reset()
			tc.arm(ffs)
			if _, err := s.Write(body("doomed")); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("faulted write error = %v, want ErrInjected", err)
			}
			*ffs = *faultfs.New()
			mustLoad(t, s, "good", 1)
			// The store recovers on the next write; the aborted write
			// consumed no generation number.
			if _, err := s.Write(body("after")); err != nil {
				t.Fatal(err)
			}
			mustLoad(t, s, "after", 2)
		})
	}
}

// TestStoreSyncDirFault fails the directory fsync after the rename:
// the error must surface (degrade loudly — durability of the rename is
// not yet guaranteed), but the renamed file itself is complete, so a
// Load that does see it gets a verified checkpoint either way.
func TestStoreSyncDirFault(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	ffs.FailSyncDir = true
	s := &checkpoint.Store{Dir: dir, FS: ffs}
	if _, err := s.Write(body("racy")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatal("sync-dir failure did not surface")
	}
	mustLoad(t, s, "racy", 1)
}

// TestStoreCrashDuringRename simulates the crash the atomic protocol
// defends against: a stray temp file left under the final name's
// sibling. Load must ignore it and Write must proceed past it.
func TestStoreCrashDuringRename(t *testing.T) {
	dir := t.TempDir()
	s := &checkpoint.Store{Dir: dir}
	if _, err := s.Write(body("good")); err != nil {
		t.Fatal(err)
	}
	stray := genPath(dir, 2) + ".tmp"
	if err := os.WriteFile(stray, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustLoad(t, s, "good", 1)
	if gen, err := s.Write(body("next")); err != nil || gen != 2 {
		t.Fatalf("Write past stray temp = gen %d, %v", gen, err)
	}
	mustLoad(t, s, "next", 2)
}

// TestStoreCorruptFallback flips one byte in the newest generation:
// the checksum must catch it and Load must fall back to the previous
// generation; with every generation corrupt, Load reports corruption
// (not ErrNoCheckpoint — the caller must know data existed and died).
func TestStoreCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	s := &checkpoint.Store{Dir: dir}
	if _, err := s.Write(body("old")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(body("new")); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.Corrupt(genPath(dir, 2), -5); err != nil {
		t.Fatal(err)
	}
	mustLoad(t, s, "old", 1)

	if err := faultfs.Corrupt(genPath(dir, 1), int64(len(checkpoint.Magic))); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Load()
	if err == nil || errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Load(all corrupt) = %v, want corruption error", err)
	}
	if !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("Load(all corrupt) = %v, want ErrCorrupt", err)
	}
}

// TestStoreTruncatedFallback cuts bytes off the newest generation's
// tail — both a sliced checksum and a file shorter than the frame.
func TestStoreTruncatedFallback(t *testing.T) {
	for _, cut := range []int64{-3, 5} {
		t.Run(fmt.Sprintf("cut_%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := &checkpoint.Store{Dir: dir}
			if _, err := s.Write(body("old")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Write(body("new")); err != nil {
				t.Fatal(err)
			}
			if err := faultfs.Truncate(genPath(dir, 2), cut); err != nil {
				t.Fatal(err)
			}
			mustLoad(t, s, "old", 1)
		})
	}
}

func TestVerify(t *testing.T) {
	dir := t.TempDir()
	s := &checkpoint.Store{Dir: dir}
	if _, err := s.Write(body("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(genPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Verify(data)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Verify = %q, %v", got, err)
	}
	if _, err := checkpoint.Verify(data[:4]); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("Verify(short) = %v", err)
	}
	bad := append([]byte("NOTMAGIC"), data[8:]...)
	if _, err := checkpoint.Verify(bad); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("Verify(bad magic) = %v", err)
	}
}
