package checkpoint

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the filesystem operations the Store needs, so the fault
// injection harness (internal/faultfs) can interpose torn writes,
// ENOSPC, failed syncs, and crash-during-rename without touching real
// disks. OSFS is the production implementation.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates/creates the named file for writing.
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir lists the names (not paths) of the entries in dir.
	ReadDir(dir string) ([]string, error)
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs the directory itself so a completed rename is
	// durable.
	SyncDir(dir string) error
}

// File is a writable checkpoint file handle.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS implements FS on the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Directory fsync failures are reported; the caller decides whether
	// the checkpoint still counts.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
