package checkpoint

import (
	"bufio"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Magic opens every checkpoint file: "GRETACK" plus the format
// generation digit.
const Magic = "GRETACK1"

// crcTable is CRC32-Castagnoli, hardware-accelerated on most targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint reports a Load against a directory holding no
// checkpoint files at all (as opposed to only corrupt ones).
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// Store manages a directory of generational checkpoint files named
// ckpt-%08d.gck. Writes are atomic — temp file, fsync, rename, fsync
// of the directory — so a crash at any point leaves either the
// previous generation or the new one fully intact, never a torn file
// under the final name. Load picks the newest generation whose
// checksum verifies, falling back to earlier generations so a corrupt
// or truncated newest file degrades to the previous checkpoint rather
// than to nothing.
type Store struct {
	// Dir is the checkpoint directory (created on first Write).
	Dir string
	// FS is the filesystem; nil means the real one.
	FS FS
	// Keep bounds how many generations survive a Write's pruning;
	// values < 1 mean the default of 2 (current + one fallback).
	Keep int
}

func (s *Store) fs() FS {
	if s.FS == nil {
		return OSFS{}
	}
	return s.FS
}

func (s *Store) keep() int {
	if s.Keep < 1 {
		return 2
	}
	return s.Keep
}

func genName(gen uint64) string { return fmt.Sprintf("ckpt-%08d.gck", gen) }

// parseGen extracts the generation from a checkpoint file name,
// reporting ok == false for anything that is not a final checkpoint
// file (temp files, strangers).
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".gck") {
		return 0, false
	}
	mid := name[len("ckpt-") : len(name)-len(".gck")]
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// generations lists the existing checkpoint generations in ascending
// order. A missing directory is an empty store.
func (s *Store) generations() ([]uint64, error) {
	names, err := s.fs().ReadDir(s.Dir)
	if err != nil {
		return nil, nil
	}
	var gens []uint64
	for _, name := range names {
		if gen, ok := parseGen(name); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w io.Writer
	h hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.h.Write(p[:n])
	return n, err
}

// Write persists one checkpoint as the next generation. write receives
// the body writer (buffered; the Store frames it with magic and
// checksum) and produces the body bytes. On any failure the temp file
// is removed and the previous generation remains the newest valid one.
// Returns the generation number written.
func (s *Store) Write(write func(io.Writer) error) (uint64, error) {
	fsys := s.fs()
	if err := fsys.MkdirAll(s.Dir); err != nil {
		return 0, fmt.Errorf("checkpoint: mkdir: %w", err)
	}
	gens, _ := s.generations()
	gen := uint64(1)
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	final := filepath.Join(s.Dir, genName(gen))
	tmp := final + ".tmp"

	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	cleanup := func(err error) (uint64, error) {
		f.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	cw := &crcWriter{w: buf, h: crc32.New(crcTable)}
	if _, err := io.WriteString(cw, Magic); err != nil {
		return cleanup(fmt.Errorf("checkpoint: write header: %w", err))
	}
	if err := write(cw); err != nil {
		return cleanup(fmt.Errorf("checkpoint: write body: %w", err))
	}
	var trailer [4]byte
	sum := cw.h.Sum32()
	trailer[0] = byte(sum)
	trailer[1] = byte(sum >> 8)
	trailer[2] = byte(sum >> 16)
	trailer[3] = byte(sum >> 24)
	if _, err := buf.Write(trailer[:]); err != nil {
		return cleanup(fmt.Errorf("checkpoint: write checksum: %w", err))
	}
	if err := buf.Flush(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: flush: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: fsync: %w", err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := fsys.SyncDir(s.Dir); err != nil {
		return 0, fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	s.prune(gens)
	return gen, nil
}

// prune removes the oldest generations beyond Keep-1 of the ones that
// existed before this Write (the new generation is the Keep'th).
// Removal failures are ignored: stale files only cost disk.
func (s *Store) prune(prior []uint64) {
	excess := len(prior) - (s.keep() - 1)
	for i := 0; i < excess; i++ {
		s.fs().Remove(filepath.Join(s.Dir, genName(prior[i])))
	}
}

// Verify frames-checks one checkpoint file's bytes and returns the
// body on success.
func Verify(data []byte) ([]byte, error) {
	if len(data) < len(Magic)+4 {
		return nil, fmt.Errorf("%w: file too short (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return body[len(Magic):], nil
}

// Load returns the body of the newest checkpoint generation whose
// checksum verifies, along with its generation number. Corrupt or
// truncated generations are skipped (newest first), so a crash that
// damaged the latest file falls back to the previous one. Returns
// ErrNoCheckpoint when no checkpoint files exist at all; if files
// exist but none verifies, the last corruption error is returned.
func (s *Store) Load() ([]byte, uint64, error) {
	gens, _ := s.generations()
	if len(gens) == 0 {
		return nil, 0, ErrNoCheckpoint
	}
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		name := filepath.Join(s.Dir, genName(gens[i]))
		data, err := s.fs().ReadFile(name)
		if err != nil {
			lastErr = fmt.Errorf("checkpoint: read %s: %w", name, err)
			continue
		}
		body, err := Verify(data)
		if err != nil {
			lastErr = fmt.Errorf("checkpoint: %s: %w", name, err)
			continue
		}
		return body, gens[i], nil
	}
	return nil, 0, lastErr
}
