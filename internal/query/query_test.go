package query

import (
	"strings"
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
)

// The paper's three motivating queries (§1).
const (
	q1 = `RETURN sector, COUNT(*) PATTERN Stock S+
	      WHERE [company, sector] AND S.price > NEXT(S).price
	      GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds`
	q2 = `RETURN mapper, SUM(M.cpu)
	      PATTERN SEQ(Start S, Measurement M+, End E)
	      WHERE [job, mapper] AND M.load < NEXT(M).load
	      GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds`
	q3 = `RETURN segment, COUNT(*), AVG(P.speed)
	      PATTERN SEQ(NOT Accident A, Position P+)
	      WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed
	      GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute`
)

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != aggregate.CountStar {
		t.Errorf("aggs = %v", q.Aggs)
	}
	if len(q.ReturnAttrs) != 1 || q.ReturnAttrs[0] != "sector" {
		t.Errorf("return attrs = %v", q.ReturnAttrs)
	}
	if got := q.Pattern.String(); got != "Stock S+" {
		t.Errorf("pattern = %s", got)
	}
	if len(q.Equivalence) != 2 || q.Equivalence[0] != "company" || q.Equivalence[1] != "sector" {
		t.Errorf("equivalence = %v", q.Equivalence)
	}
	if q.Where == nil || !strings.Contains(q.Where.String(), "S.price > NEXT(S).price") {
		t.Errorf("where = %v", q.Where)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "sector" {
		t.Errorf("group-by = %v", q.GroupBy)
	}
	if q.Window.Within != 600 || q.Window.Slide != 10 {
		t.Errorf("window = %+v", q.Window)
	}
}

func TestParseQ2(t *testing.T) {
	q, err := Parse(q2)
	if err != nil {
		t.Fatal(err)
	}
	// SUM(M.cpu): M is the alias for type Measurement and must resolve.
	if q.Aggs[0].Kind != aggregate.Sum || q.Aggs[0].Type != "Measurement" || q.Aggs[0].Attr != "cpu" {
		t.Errorf("agg = %+v", q.Aggs[0])
	}
	if q.Window.Within != 60 || q.Window.Slide != 30 {
		t.Errorf("window = %+v", q.Window)
	}
}

func TestParseQ3(t *testing.T) {
	q, err := Parse(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 2 {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	if q.Aggs[1].Kind != aggregate.Avg || q.Aggs[1].Type != "Position" {
		t.Errorf("avg agg = %+v", q.Aggs[1])
	}
	if !q.Pattern.IsPositive() == false && q.Pattern.IsPositive() {
		t.Error("pattern should contain negation")
	}
	if q.Window.Within != 300 || q.Window.Slide != 60 {
		t.Errorf("window = %+v", q.Window)
	}
	// [P.vehicle, segment]: the alias qualifier is stripped.
	if len(q.Equivalence) != 2 || q.Equivalence[0] != "vehicle" {
		t.Errorf("equivalence = %v", q.Equivalence)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("RETURN COUNT(*), COUNT(A), MIN(A.x), MAX(A.x), SUM(A.x), AVG(A.x) PATTERN A+")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []aggregate.SpecKind{
		aggregate.CountStar, aggregate.CountType, aggregate.Min,
		aggregate.Max, aggregate.Sum, aggregate.Avg,
	}
	if len(q.Aggs) != len(kinds) {
		t.Fatalf("aggs = %v", q.Aggs)
	}
	for i, k := range kinds {
		if q.Aggs[i].Kind != k {
			t.Errorf("agg %d kind = %v, want %v", i, q.Aggs[i].Kind, k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"PATTERN A+",                          // missing RETURN
		"RETURN COUNT(*)",                     // missing PATTERN
		"RETURN sector PATTERN A+",            // no aggregate
		"RETURN COUNT(*) PATTERN A+ WITHIN 5", // WITHIN without SLIDE
		"RETURN COUNT(*) PATTERN A+ WITHIN 5 SLIDE 10",   // slide > within
		"RETURN COUNT(*) PATTERN A+ WITHIN 5 SLIDE 0",    // zero slide
		"RETURN SUM(x) PATTERN A+",                       // SUM without Type.Attr
		"RETURN COUNT(*) PATTERN A+ WHERE Z.a > 1",       // unknown alias
		"RETURN SUM(Z.x) PATTERN A+",                     // unknown agg target
		"RETURN COUNT(*) PATTERN A+ SEMANTICS bogus",     // unknown semantics
		"RETURN COUNT(*) PATTERN A+ PATTERN B+",          // duplicate clause
		"bogus RETURN COUNT(*) PATTERN A+",               // leading junk
		"RETURN COUNT(*) PATTERN SEQ(A+, B) WHERE x > 1", // ambiguous bare attr
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestBareAttrSingleAlias(t *testing.T) {
	// With a single alias, bare attribute references resolve to it.
	q, err := Parse("RETURN COUNT(*) PATTERN A+ WHERE price > NEXT(A).price")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Where.String(), "A.price") {
		t.Errorf("where = %v", q.Where)
	}
}

func TestTypeNameInPredicate(t *testing.T) {
	// A predicate may use the type name when the type has one alias.
	q, err := Parse("RETURN COUNT(*) PATTERN Stock S+ WHERE Stock.price > 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Where.String(), "S.price") {
		t.Errorf("where = %v", q.Where)
	}
}

func TestDurations(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"RETURN COUNT(*) PATTERN A+ WITHIN 10 seconds SLIDE 5 seconds", 10},
		{"RETURN COUNT(*) PATTERN A+ WITHIN 2 minutes SLIDE 1 minute", 120},
		{"RETURN COUNT(*) PATTERN A+ WITHIN 1 hour SLIDE 30 minutes", 3600},
		{"RETURN COUNT(*) PATTERN A+ WITHIN 42 SLIDE 7", 42},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if q.Window.Within != c.want {
			t.Errorf("%q: within = %d, want %d", c.src, q.Window.Within, c.want)
		}
	}
}

func TestSemanticsClause(t *testing.T) {
	q := MustParse("RETURN COUNT(*) PATTERN A+ SEMANTICS skip-till-next-match")
	if q.Semantics != SkipTillNextMatch {
		t.Errorf("semantics = %v", q.Semantics)
	}
	q = MustParse("RETURN COUNT(*) PATTERN A+ SEMANTICS contiguous")
	if q.Semantics != Contiguous {
		t.Errorf("semantics = %v", q.Semantics)
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParse(q1)
	s := q.String()
	q2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if q2.Window != q.Window || len(q2.Aggs) != len(q.Aggs) {
		t.Errorf("round trip mismatch: %q vs %q", s, q2.String())
	}
}
