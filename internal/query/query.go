// Package query implements the event trend aggregation query model of
// GRETA (paper §2, Definition 2 and the grammar of Fig. 2):
//
//	q := RETURN Attributes <A> PATTERN <P> (WHERE <θ>)?
//	     (GROUP-BY Attributes)? (WITHIN Duration SLIDE Duration)?
//	A := COUNT(*|EventType) | (MIN|MAX|SUM|AVG)(EventType.Attribute)
//
// plus two documented extensions: an optional SEMANTICS clause choosing
// the event selection semantics of Table 1, and equivalence predicates
// in WHERE written with the paper's bracket notation [attr, attr, ...].
package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/event"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/window"
)

// Semantics selects the event selection semantics (paper §9, Table 1).
type Semantics uint8

// Event selection semantics. SkipTillAnyMatch is the paper's focus and
// the default: any event may be skipped, all trends are detected.
const (
	SkipTillAnyMatch Semantics = iota
	SkipTillNextMatch
	Contiguous
)

func (s Semantics) String() string {
	switch s {
	case SkipTillAnyMatch:
		return "skip-till-any-match"
	case SkipTillNextMatch:
		return "skip-till-next-match"
	case Contiguous:
		return "contiguous"
	}
	return "?"
}

// Query is a parsed event trend aggregation query (Definition 2).
type Query struct {
	Raw         string
	ReturnAttrs []string // non-aggregate RETURN items (grouping attributes)
	Aggs        []aggregate.Spec
	Pattern     *pattern.Node
	Where       predicate.Expr // conjunction without equivalence groups
	Equivalence []string       // [a, b] equivalence attributes
	GroupBy     []string
	Window      window.Spec
	Semantics   Semantics
	// MinLen is the minimal trend length constraint (paper §9): the
	// planner unrolls the Kleene pattern so matches contain at least
	// MinLen iterations. 0 or 1 means unconstrained.
	MinLen int
}

// Parse parses a query. Clauses may appear on one line or many; clause
// keywords are case-insensitive.
func Parse(src string) (*Query, error) {
	clauses, err := splitClauses(src)
	if err != nil {
		return nil, err
	}
	q := &Query{Raw: src}
	if txt, ok := clauses["RETURN"]; ok {
		if err := q.parseReturn(txt); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("query: missing RETURN clause")
	}
	txt, ok := clauses["PATTERN"]
	if !ok {
		return nil, fmt.Errorf("query: missing PATTERN clause")
	}
	p, err := pattern.Parse(txt)
	if err != nil {
		return nil, err
	}
	q.Pattern = p
	if txt, ok := clauses["WHERE"]; ok {
		if err := q.parseWhere(txt); err != nil {
			return nil, err
		}
	}
	if txt, ok := clauses["GROUP-BY"]; ok {
		for _, a := range strings.Split(txt, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("query: empty GROUP-BY attribute")
			}
			q.GroupBy = append(q.GroupBy, a)
		}
	}
	within, hasWithin := clauses["WITHIN"]
	slide, hasSlide := clauses["SLIDE"]
	if hasWithin != hasSlide {
		return nil, fmt.Errorf("query: WITHIN and SLIDE must be specified together")
	}
	if hasWithin {
		w, err := parseDuration(within)
		if err != nil {
			return nil, err
		}
		s, err := parseDuration(slide)
		if err != nil {
			return nil, err
		}
		q.Window = window.Spec{Within: w, Slide: s}
		if err := q.Window.Validate(); err != nil {
			return nil, err
		}
	}
	if txt, ok := clauses["MINLEN"]; ok {
		n, err := strconv.Atoi(strings.TrimSpace(txt))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("query: MINLEN requires a positive integer, got %q", txt)
		}
		q.MinLen = n
	}
	if txt, ok := clauses["SEMANTICS"]; ok {
		switch strings.ToLower(strings.TrimSpace(txt)) {
		case "skip-till-any-match", "any":
			q.Semantics = SkipTillAnyMatch
		case "skip-till-next-match", "next":
			q.Semantics = SkipTillNextMatch
		case "contiguous":
			q.Semantics = Contiguous
		default:
			return nil, fmt.Errorf("query: unknown semantics %q", txt)
		}
	}
	if err := q.resolveAliases(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

var clauseKeywords = []string{"RETURN", "PATTERN", "WHERE", "GROUP-BY", "GROUPBY", "WITHIN", "SLIDE", "SEMANTICS", "MINLEN"}

// splitClauses cuts the query text at clause keywords that appear at
// the top level (outside parentheses, brackets, and strings).
func splitClauses(src string) (map[string]string, error) {
	type mark struct {
		kw    string
		start int // index after the keyword
		kwPos int
	}
	var marks []mark
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr != 0:
			if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '\'':
			inStr = c
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		case depth == 0 && (i == 0 || isSpace(src[i-1])):
			for _, kw := range clauseKeywords {
				if matchKeyword(src, i, kw) {
					marks = append(marks, mark{kw, i + len(kw), i})
					i += len(kw) - 1
					break
				}
			}
		}
	}
	if len(marks) == 0 {
		return nil, fmt.Errorf("query: no clauses found in %q", src)
	}
	if strings.TrimSpace(src[:marks[0].kwPos]) != "" {
		return nil, fmt.Errorf("query: unexpected text %q before first clause", strings.TrimSpace(src[:marks[0].kwPos]))
	}
	out := map[string]string{}
	for i, m := range marks {
		end := len(src)
		if i+1 < len(marks) {
			end = marks[i+1].kwPos
		}
		kw := m.kw
		if kw == "GROUPBY" {
			kw = "GROUP-BY"
		}
		if _, dup := out[kw]; dup {
			return nil, fmt.Errorf("query: duplicate %s clause", kw)
		}
		out[kw] = strings.TrimSpace(src[m.start:end])
	}
	return out, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func matchKeyword(src string, i int, kw string) bool {
	if i+len(kw) > len(src) {
		return false
	}
	if !strings.EqualFold(src[i:i+len(kw)], kw) {
		return false
	}
	// keyword must end at a word boundary
	j := i + len(kw)
	return j == len(src) || isSpace(src[j]) || src[j] == '('
}

// parseReturn parses the RETURN item list: grouping attributes and
// aggregate specifications.
func (q *Query) parseReturn(txt string) error {
	for _, item := range splitTop(txt, ',') {
		item = strings.TrimSpace(item)
		if item == "" {
			return fmt.Errorf("query: empty RETURN item")
		}
		up := strings.ToUpper(item)
		var kind aggregate.SpecKind
		var isAgg = true
		switch {
		case strings.HasPrefix(up, "COUNT("):
			kind = aggregate.CountStar
		case strings.HasPrefix(up, "MIN("):
			kind = aggregate.Min
		case strings.HasPrefix(up, "MAX("):
			kind = aggregate.Max
		case strings.HasPrefix(up, "SUM("):
			kind = aggregate.Sum
		case strings.HasPrefix(up, "AVG("):
			kind = aggregate.Avg
		default:
			isAgg = false
		}
		if !isAgg {
			q.ReturnAttrs = append(q.ReturnAttrs, item)
			continue
		}
		open := strings.IndexByte(item, '(')
		if !strings.HasSuffix(item, ")") {
			return fmt.Errorf("query: malformed aggregate %q", item)
		}
		arg := strings.TrimSpace(item[open+1 : len(item)-1])
		spec := aggregate.Spec{Kind: kind}
		switch kind {
		case aggregate.CountStar:
			if arg != "*" {
				if arg == "" {
					return fmt.Errorf("query: COUNT requires * or an event type")
				}
				spec.Kind = aggregate.CountType
				spec.Type = event.Type(arg)
			}
		default:
			dot := strings.IndexByte(arg, '.')
			if dot < 0 {
				return fmt.Errorf("query: %s requires EventType.Attribute, got %q", kind, arg)
			}
			spec.Type = event.Type(strings.TrimSpace(arg[:dot]))
			spec.Attr = strings.TrimSpace(arg[dot+1:])
			if spec.Type == "" || spec.Attr == "" {
				return fmt.Errorf("query: %s requires EventType.Attribute, got %q", kind, arg)
			}
		}
		q.Aggs = append(q.Aggs, spec)
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("query: RETURN clause has no aggregation function")
	}
	return nil
}

// parseWhere parses the WHERE clause, separating bracketed equivalence
// groups ([company, sector]) from ordinary predicate conjuncts.
func (q *Query) parseWhere(txt string) error {
	var conjuncts []string
	for _, part := range splitTopAnd(txt) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.HasPrefix(part, "[") && strings.HasSuffix(part, "]") {
			for _, a := range strings.Split(part[1:len(part)-1], ",") {
				a = strings.TrimSpace(a)
				// Strip an alias qualifier: [P.vehicle, segment] means the
				// attribute values are equal across all trend events, so
				// the qualifier is informational.
				if dot := strings.IndexByte(a, '.'); dot >= 0 {
					a = a[dot+1:]
				}
				if a == "" {
					return fmt.Errorf("query: empty attribute in equivalence predicate %q", part)
				}
				q.Equivalence = append(q.Equivalence, a)
			}
			continue
		}
		conjuncts = append(conjuncts, part)
	}
	if len(conjuncts) == 0 {
		return nil
	}
	expr, err := predicate.Parse(strings.Join(conjuncts, " AND "))
	if err != nil {
		return err
	}
	q.Where = expr
	return nil
}

// splitTop splits s on sep at parenthesis depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitTopAnd splits on the keyword AND at depth zero.
func splitTopAnd(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		default:
			if depth == 0 && (i == 0 || isSpace(s[i-1])) && matchKeyword(s, i, "AND") {
				out = append(out, s[start:i])
				start = i + 3
				i += 2
			}
		}
	}
	return append(out, s[start:])
}

// parseDuration parses "10 minutes", "30 seconds", "2 hours", or a bare
// tick count, into time ticks (seconds in the paper's workloads).
func parseDuration(txt string) (event.Time, error) {
	fields := strings.Fields(txt)
	if len(fields) == 0 {
		return 0, fmt.Errorf("query: empty duration")
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad duration %q: %v", txt, err)
	}
	if len(fields) == 1 {
		return n, nil
	}
	unit := strings.ToLower(strings.TrimSuffix(fields[1], "s"))
	switch unit {
	case "tick", "second", "sec":
		return n, nil
	case "minute", "min":
		return n * 60, nil
	case "hour", "hr":
		return n * 3600, nil
	}
	return 0, fmt.Errorf("query: unknown duration unit %q", fields[1])
}

// resolveAliases maps alias names used in RETURN aggregates and WHERE
// predicates to pattern aliases, and resolves bare attribute references
// when the pattern has a single alias.
func (q *Query) resolveAliases() error {
	aliases := map[string]bool{}
	aliasType := map[string]event.Type{}
	typeCount := map[event.Type]int{}
	for _, leaf := range q.Pattern.EventNodes() {
		aliases[leaf.Alias] = true
		aliasType[leaf.Alias] = leaf.Type
		typeCount[leaf.Type]++
	}
	// RETURN aggregate targets may be written with the alias (SUM(M.cpu)
	// where M aliases Measurement) or the type name.
	for i := range q.Aggs {
		sp := &q.Aggs[i]
		if sp.Kind == aggregate.CountStar {
			continue
		}
		name := string(sp.Type)
		if t, ok := aliasType[name]; ok {
			sp.Type = t
			continue
		}
		if typeCount[sp.Type] > 0 {
			continue
		}
		return fmt.Errorf("query: aggregate %s references unknown type or alias %q", sp, name)
	}
	if q.Where != nil {
		if len(aliases) == 1 {
			var only string
			for a := range aliases {
				only = a
			}
			q.Where = predicate.ResolveBareRefs(q.Where, only)
		}
		for _, r := range predicate.Refs(q.Where) {
			if r.Alias == "" {
				return fmt.Errorf("query: bare attribute %q is ambiguous; qualify it with a pattern alias", r.Attr)
			}
			if !aliases[r.Alias] {
				// Allow the underlying type name as a stand-in for a
				// uniquely aliased type.
				if cnt := typeCount[event.Type(r.Alias)]; cnt == 1 {
					var al string
					for a, t := range aliasType {
						if t == event.Type(r.Alias) {
							al = a
						}
					}
					q.Where = renameAlias(q.Where, r.Alias, al)
					continue
				}
				return fmt.Errorf("query: predicate references unknown alias %q", r.Alias)
			}
		}
	}
	return nil
}

func renameAlias(e predicate.Expr, from, to string) predicate.Expr {
	switch n := e.(type) {
	case predicate.Ref:
		if n.Alias == from {
			return predicate.Ref{Alias: to, Attr: n.Attr, Next: n.Next}
		}
		return n
	case predicate.Binary:
		return predicate.Binary{Op: n.Op, L: renameAlias(n.L, from, to), R: renameAlias(n.R, from, to)}
	}
	return e
}

// String reconstructs a canonical query text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("RETURN ")
	var items []string
	items = append(items, q.ReturnAttrs...)
	for _, a := range q.Aggs {
		items = append(items, a.String())
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(" PATTERN ")
	b.WriteString(q.Pattern.String())
	if q.Where != nil || len(q.Equivalence) > 0 {
		b.WriteString(" WHERE ")
		var parts []string
		if len(q.Equivalence) > 0 {
			parts = append(parts, "["+strings.Join(q.Equivalence, ", ")+"]")
		}
		if q.Where != nil {
			parts = append(parts, q.Where.String())
		}
		b.WriteString(strings.Join(parts, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP-BY " + strings.Join(q.GroupBy, ", "))
	}
	if !q.Window.Unbounded() {
		fmt.Fprintf(&b, " WITHIN %d SLIDE %d", q.Window.Within, q.Window.Slide)
	}
	if q.MinLen > 1 {
		fmt.Fprintf(&b, " MINLEN %d", q.MinLen)
	}
	if q.Semantics != SkipTillAnyMatch {
		b.WriteString(" SEMANTICS " + q.Semantics.String())
	}
	return b.String()
}
