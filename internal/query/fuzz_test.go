package query_test

import (
	"testing"

	"github.com/greta-cep/greta/internal/aggregate"
	"github.com/greta-cep/greta/internal/core"
	"github.com/greta-cep/greta/internal/pattern"
	"github.com/greta-cep/greta/internal/predicate"
	"github.com/greta-cep/greta/internal/query"
)

// FuzzParseQuery: the query parser must never panic and accepted
// queries must render to text that re-parses.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"RETURN COUNT(*) PATTERN A+",
		"RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
		"RETURN mapper, SUM(M.cpu) PATTERN SEQ(Start S, Measurement M+, End E) WHERE [job, mapper] AND M.load < NEXT(M).load GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds",
		"RETURN segment, COUNT(*), AVG(P.speed) PATTERN SEQ(NOT Accident A, Position P+) WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute",
		"RETURN COUNT(*) PATTERN (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ MINLEN 2 SEMANTICS contiguous",
		"RETURN COUNT(*) PATTERN A+ OR SEQ(B, C?)",
		"RETURN MIN(A.x), MAX(A.x) PATTERN SEQ(A*, B) WITHIN 7 SLIDE 7",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		// Round trip: canonical text must re-parse.
		if _, err := query.Parse(q.String()); err != nil {
			t.Fatalf("canonical text %q of %q does not re-parse: %v", q.String(), src, err)
		}
		// Planning must not panic on any accepted query; plan errors are
		// fine (unsupported combinations are rejected gracefully).
		_, _ = core.NewPlan(q, aggregate.ModeNative)
	})
}

// FuzzParsePattern: the pattern parser must never panic; accepted
// patterns validate and round-trip.
func FuzzParsePattern(f *testing.F) {
	for _, s := range []string{
		"A+", "SEQ(A+, B)", "(SEQ(A+, NOT SEQ(C, NOT E, D), B))+",
		"Stock S+", "A? OR B*", "SEQ(A, B, C, D, E)", "A+ AND B+",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := pattern.Parse(src)
		if err != nil {
			return
		}
		if err := pattern.Validate(p); err != nil {
			t.Fatalf("accepted pattern %q fails validation: %v", src, err)
		}
		if _, err := pattern.Parse(p.String()); err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", p.String(), src, err)
		}
	})
}

// FuzzParsePredicate: the predicate parser must never panic; accepted
// expressions round-trip.
func FuzzParsePredicate(f *testing.F) {
	for _, s := range []string{
		"S.price > NEXT(S).price",
		"S.a * 2 + 1 <= NEXT(S).b / 3 AND S.c != 0",
		`S.company = "IBM" OR S.x % 2 = 1`,
		"-S.x < 5",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := predicate.Parse(src)
		if err != nil {
			return
		}
		if _, err := predicate.Parse(e.String()); err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", e.String(), src, err)
		}
	})
}
