package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseProm is a minimal Prometheus text-format (0.0.4) parser used by
// the test suite and the obs-smoke CI job to assert that an exposition
// is well-formed and that expected series are present. It returns a
// map from full series name (labels included, exactly as rendered) to
// value, and an error on the first malformed line. It understands
// exactly what WriteProm emits: `# HELP`/`# TYPE` comments, blank
// lines, and `series value` samples — enough to validate our own
// output and catch drift, not a general scrape parser.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	typed := make(map[string]string)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# TYPE name kind" / "# HELP name text..."
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typed[fields[2]] = fields[3]
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		// Split the sample into series and value. The series may contain
		// spaces only inside a label value, so scan for the last space
		// outside quotes.
		cut := -1
		inQuote := false
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case '\\':
				if inQuote {
					i++
				}
			case ' ', '\t':
				if !inQuote {
					cut = i
				}
			}
		}
		if cut <= 0 || cut == len(line)-1 {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:cut])
		valStr := strings.TrimSpace(line[cut+1:])
		if brace := strings.IndexByte(name, '{'); brace == 0 {
			return nil, fmt.Errorf("line %d: missing metric name in %q", lineNo, line)
		} else if brace > 0 && !strings.HasSuffix(name, "}") {
			return nil, fmt.Errorf("line %d: unbalanced labels in %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", lineNo, name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// HasSeries reports whether any parsed series matches name exactly or
// is name followed by a label set / histogram suffix — the assertion
// primitive for the smoke tests ("some series of this family exists").
func HasSeries(parsed map[string]float64, name string) bool {
	if _, ok := parsed[name]; ok {
		return true
	}
	for k := range parsed {
		if strings.HasPrefix(k, name) {
			rest := k[len(name):]
			if strings.HasPrefix(rest, "{") ||
				strings.HasPrefix(rest, "_bucket{") ||
				rest == "_sum" || rest == "_count" ||
				strings.HasPrefix(rest, "_sum{") || strings.HasPrefix(rest, "_count{") {
				return true
			}
		}
	}
	return false
}
