package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCellsBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(-7)
	g.Add(10)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	g.SetMax(2)
	if got := g.Load(); got != 3 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)  // bucket 0 (<=50µs)
	h.Observe(700 * time.Microsecond) // <=1ms
	h.Observe(3 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamped to 0, bucket 0
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	wantSum := 10*time.Microsecond + 700*time.Microsecond + 3*time.Second
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if got := h.Max(); got != 3*time.Second {
		t.Fatalf("max = %v, want %v", got, 3*time.Second)
	}
	if got := h.buckets[0].Load(); got != 2 {
		t.Fatalf("bucket[0] = %d, want 2", got)
	}
	if got := h.buckets[NumBuckets-1].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
}

func TestRegistryRenderAndParse(t *testing.T) {
	r := NewRegistry()
	ev := r.Counter("greta_events_total", "events offered", "")
	ev.Add(1234)
	wm := r.Gauge("greta_watermark", "current watermark", "")
	wm.Set(99)
	ck := r.Histogram("greta_checkpoint_write_seconds", "checkpoint write latency", "")
	ck.Observe(2 * time.Millisecond)
	ck.Observe(80 * time.Millisecond)
	perStmt := r.Counter("greta_stmt_events_total", "per-statement events", `stmt="q1"`)
	perStmt.Add(7)
	r.Collect(func(e Emitter) {
		e.Emit("greta_watermark_lag", "event-time lag", KindGauge, "", 5)
		e.Emit("greta_slot_ack_lag", "per-slot ack lag", KindGauge, `slot="0"`, 3)
		e.Emit("greta_slot_ack_lag", "per-slot ack lag", KindGauge, `slot="1"`, 11)
	})

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	parsed, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm on own output: %v\n%s", err, text)
	}
	checks := map[string]float64{
		"greta_events_total":                   1234,
		"greta_watermark":                      99,
		`greta_stmt_events_total{stmt="q1"}`:   7,
		"greta_watermark_lag":                  5,
		`greta_slot_ack_lag{slot="0"}`:         3,
		`greta_slot_ack_lag{slot="1"}`:         11,
		"greta_checkpoint_write_seconds_count": 2,
	}
	for name, want := range checks {
		got, ok := parsed[name]
		if !ok {
			t.Fatalf("series %q missing from exposition:\n%s", name, text)
		}
		if got != want {
			t.Fatalf("series %q = %g, want %g", name, got, want)
		}
	}
	// Histogram buckets cumulative: the +Inf bucket equals _count.
	inf, ok := parsed[`greta_checkpoint_write_seconds_bucket{le="+Inf"}`]
	if !ok || inf != 2 {
		t.Fatalf("+Inf bucket = %g, want 2 (present=%v)", inf, ok)
	}
	lo := parsed[`greta_checkpoint_write_seconds_bucket{le="0.0025"}`]
	if lo != 1 {
		t.Fatalf("le=0.0025 bucket = %g, want 1", lo)
	}
	sum := parsed["greta_checkpoint_write_seconds_sum"]
	if want := (82 * time.Millisecond).Seconds(); sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
	if !HasSeries(parsed, "greta_checkpoint_write_seconds") {
		t.Fatal("HasSeries should find histogram family")
	}
	if !HasSeries(parsed, "greta_slot_ack_lag") {
		t.Fatal("HasSeries should find labelled family")
	}
	if HasSeries(parsed, "greta_nonexistent") {
		t.Fatal("HasSeries found a ghost")
	}

	// TYPE lines present and correct.
	for _, want := range []string{
		"# TYPE greta_events_total counter",
		"# TYPE greta_watermark gauge",
		"# TYPE greta_checkpoint_write_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"greta_events_total",       // no value
		"greta_events_total abc",   // bad value
		`{x="y"} 3`,                // no name
		"a 1\na 2\n",               // duplicate series
		"# TYPE x notakind\nx 1\n", // unknown type
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseProm accepted malformed input %q", bad)
		}
	}
}

func TestJSONViewStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b", "").Add(2)
	r.Counter("a_total", "a", "").Add(1)
	var first string
	for i := 0; i < 3; i++ {
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
			if !strings.Contains(first, `"a_total": 1`) || !strings.Contains(first, `"b_total": 2`) {
				t.Fatalf("JSON view missing series: %s", first)
			}
			// Keys sorted.
			if strings.Index(first, "a_total") > strings.Index(first, "b_total") {
				t.Fatalf("JSON keys not sorted: %s", first)
			}
			continue
		}
		if b.String() != first {
			t.Fatalf("JSON view unstable:\n%s\nvs\n%s", first, b.String())
		}
	}
	if s := r.String(); !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		t.Fatalf("expvar String() not a JSON object: %q", s)
	}
}

func TestConcurrentCells(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", "")
	h := r.Histogram("h_seconds", "h", "")
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(time.Duration(i%5) * time.Millisecond)
			}
		}()
	}
	// Concurrent scrapes while incrementing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteProm(&b); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseProm(strings.NewReader(b.String())); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
}
