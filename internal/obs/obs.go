// Package obs is the zero-allocation metrics core shared by the
// runtime, netstream, and cluster layers.
//
// The design splits every metric into two halves:
//
//   - Hot-path cells — Counter, Gauge, Histogram — are padded atomic
//     words registered once, before the stream starts. An armed
//     increment is a single atomic add on a pre-existing cell: no
//     locks, no maps, no interface calls, no allocation. They are safe
//     to hit from the 0-alloc ingest path guarded by
//     TestNoHotPathAllocs.
//
//   - Scrape-time work — label rendering, family grouping, derived
//     gauges sampled from live structures under their owner's lock —
//     happens only inside WriteProm/WriteJSON, off the ingest path,
//     where allocation is fine.
//
// A Registry owns the declared metric families and renders them in
// Prometheus text exposition format and as JSON (the latter doubles as
// the expvar view). Collectors let an owner publish values that live
// in existing structures (engine Stats, reorder depth, slot ack
// frontiers) without mirroring them into cells on the hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing cell. The trailing pad keeps
// independently-updated cells on distinct cache lines so hot loops on
// different cores do not false-share.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the value (restore/rebase only — not for the hot path).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a cell holding a signed instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger (monotone high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// histBounds are the fixed latency bucket upper bounds. They span the
// observed range of the instrumented paths: barrier round trips and
// frame encodes (tens of µs to ms) up to checkpoint writes and
// handoffs (ms to seconds). Fixed at compile time so Observe is a
// branchless-ish scan plus two atomic adds — no allocation ever.
var histBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
}

// NumBuckets is the number of histogram buckets including +Inf.
const NumBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram. Buckets are
// non-cumulative internally and summed at render time.
type Histogram struct {
	buckets  [NumBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Uint64
	maxNanos Gauge
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(uint64(d))
	h.maxNanos.SetMax(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Max returns the largest observation seen.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNanos.Load()) }

// Kind tags a metric family for exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) promType() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a family; exactly one of the cell
// pointers is set for static series, val is used for collected ones.
type series struct {
	labels  string // rendered label pairs without braces: `stmt="q1"`
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	kind   Kind
	series []series
}

// Registry owns declared metric families and renders them. Families
// and static series are registered up front (registration locks and
// allocates; increments on the returned cells never do). Collectors
// run at render time only.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func(Emitter)
}

// Emitter receives collector samples at render time. Each call emits
// one sample of the named family; families appear in first-emission
// order after the static families. labels is either empty or rendered
// pairs without braces (`slot="3"`).
type Emitter interface {
	Emit(name, help string, kind Kind, labels string, value float64)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) fam(name, help string, kind Kind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	return f
}

// Counter registers (or extends) a counter family and returns the new
// series' cell. labels is empty or rendered pairs without braces.
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	f := r.fam(name, help, KindCounter)
	f.series = append(f.series, series{labels: labels, counter: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the cell.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{}
	f := r.fam(name, help, KindGauge)
	f.series = append(f.series, series{labels: labels, gauge: g})
	return g
}

// Histogram registers (or extends) a histogram family and returns the cell.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := &Histogram{}
	f := r.fam(name, help, KindHistogram)
	f.series = append(f.series, series{labels: labels, hist: h})
	return h
}

// Collect registers a render-time sampler. fn runs on every scrape,
// off the ingest path; it may take locks and allocate, but must not
// block indefinitely.
func (r *Registry) Collect(fn func(Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// sample is one rendered data point.
type sample struct {
	labels string
	value  float64
	hist   *Histogram // histogram series render expanded
}

type renderFam struct {
	name, help string
	kind       Kind
	samples    []sample
}

type gatherer struct {
	fams   []*renderFam
	byName map[string]*renderFam
}

func (g *gatherer) family(name, help string, kind Kind) *renderFam {
	f := g.byName[name]
	if f == nil {
		f = &renderFam{name: name, help: help, kind: kind}
		g.byName[name] = f
		g.fams = append(g.fams, f)
	}
	return f
}

func (g *gatherer) Emit(name, help string, kind Kind, labels string, value float64) {
	f := g.family(name, help, kind)
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// gather snapshots static families and runs collectors into one
// ordered render set.
func (r *Registry) gather() *gatherer {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	collectors := make([]func(Emitter), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	g := &gatherer{byName: make(map[string]*renderFam)}
	for _, f := range fams {
		rf := g.family(f.name, f.help, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				rf.samples = append(rf.samples, sample{labels: s.labels, value: float64(s.counter.Load())})
			case s.gauge != nil:
				rf.samples = append(rf.samples, sample{labels: s.labels, value: float64(s.gauge.Load())})
			case s.hist != nil:
				rf.samples = append(rf.samples, sample{labels: s.labels, hist: s.hist})
			}
		}
	}
	for _, fn := range collectors {
		fn(g)
	}
	return g
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WriteProm renders the registry in Prometheus text exposition format
// (version 0.0.4). Histogram sums are emitted in seconds, following
// the Prometheus convention for *_seconds families.
func (r *Registry) WriteProm(w io.Writer) error {
	g := r.gather()
	var b strings.Builder
	for _, f := range g.fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.samples {
			if s.hist == nil {
				fmt.Fprintf(&b, "%s %s\n", seriesName(f.name, s.labels), formatValue(s.value))
				continue
			}
			cum := uint64(0)
			for i, bound := range histBounds {
				cum += s.hist.buckets[i].Load()
				le := fmt.Sprintf(`le="%g"`, bound.Seconds())
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", joinLabels(s.labels, le)), cum)
			}
			cum += s.hist.buckets[NumBuckets-1].Load()
			fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`)), cum)
			fmt.Fprintf(&b, "%s %s\n", seriesName(f.name+"_sum", s.labels), formatValue(s.hist.Sum().Seconds()))
			fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", s.labels), s.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders a flat JSON object mapping series names (labels
// included) to values; histograms contribute _count, _sum (seconds),
// and _max_seconds entries. Keys are sorted, so the output is stable.
func (r *Registry) WriteJSON(w io.Writer) error {
	g := r.gather()
	flat := make(map[string]float64)
	for _, f := range g.fams {
		for _, s := range f.samples {
			if s.hist == nil {
				flat[seriesName(f.name, s.labels)] = s.value
				continue
			}
			flat[seriesName(f.name+"_count", s.labels)] = float64(s.hist.Count())
			flat[seriesName(f.name+"_sum", s.labels)] = s.hist.Sum().Seconds()
			flat[seriesName(f.name+"_max_seconds", s.labels)] = s.hist.Max().Seconds()
		}
	}
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%q: %s", k, formatValue(flat[k]))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String implements expvar.Var: the JSON view as one value.
func (r *Registry) String() string {
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		return "{}"
	}
	return strings.TrimSpace(b.String())
}

// Handler serves the Prometheus text view.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// JSONHandler serves the JSON view.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
