package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// muxSeq numbers expvar publications: expvar.Publish panics on a
// duplicate name and offers no unpublish, so each mux registers its
// registry under a fresh "greta.metrics.<n>" name. The canonical name
// maps to the first registry published in the process.
var muxSeq atomic.Uint64

// NewMux builds the observability HTTP surface for one registry:
//
//	/metrics       Prometheus text exposition (0.0.4)
//	/metrics.json  flat JSON view of the same series
//	/debug/vars    expvar (the registry is published as an expvar.Var)
//	/debug/pprof/  the standard runtime profiles
//
// The registry is also published to the process-global expvar table so
// any expvar consumer sees it; the first mux claims "greta.metrics",
// later ones get numbered names.
func NewMux(reg *Registry) *http.ServeMux {
	name := "greta.metrics"
	if n := muxSeq.Add(1); n > 1 {
		name = fmt.Sprintf("greta.metrics.%d", n)
	}
	expvar.Publish(name, reg)

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves NewMux(reg) in a background goroutine.
// Close the returned listener to stop serving; the caller owns its
// lifetime. Scraping renders under the registry's collectors, so the
// owner must not hold locks those collectors take while closing.
func Serve(addr string, reg *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go srv.Serve(ln)
	return ln, nil
}
