package aggregate

// Summary is the mergeable fold of many vertex payload sets: per
// window, the AddPred-combination of every contributing payload, plus
// the bookkeeping needed to account logical graph edges exactly when a
// whole summary is folded at once (paper §7 Time Panes, generalized to
// arbitrary subtree summaries of a Vertex Tree).
//
// All vertices folded into one Summary must share the same window
// range [FirstWid, FirstWid+k): the runtime guarantees this because a
// Vertex Tree holds the vertices of one Time Pane, and a pane never
// straddles a window boundary (pane size divides gcd(Within, Slide)).
// SummaryAdd/SummaryMerge report a shape mismatch instead of folding
// garbage, so callers can fall back to per-vertex scanning.
//
// Summaries are mergeable but not subtractable: Min/Max slots (and
// MaxStart) are monotone folds with no inverse. Callers that need
// signed composition of additive fields use Def.AddSigned instead;
// summary maintenance therefore only ever adds, merges, or rebuilds —
// when invalidation watermarks (paper Definition 5) retract stored
// contributions, the runtime rebuilds the affected summaries in place
// instead of subtracting (see core's watermark-versioned fold path).
//
// SummaryAdd optionally takes a per-window validity mask so a rebuild
// under invalidation watermarks folds only the payloads that are still
// valid; Last/N then count last *valid* contributing windows, keeping
// EdgesFrom exact for the filtered contents.
type Summary struct {
	FirstWid int64
	// Sums[i] is the AddPred-fold of all contributing payloads of
	// window FirstWid+i; nil when no vertex contributes there.
	Sums []*Payload
	// Last[i] counts vertices whose newest contributing window is
	// FirstWid+i. Because an event's candidate window range always ends
	// at or after the range of any stored predecessor, the number of
	// predecessors connecting to an event whose range starts at window
	// FirstWid+j is exactly sum(Last[j:]) — the logical edge count.
	Last []uint32
	// N is the total number of vertices folded in (sum of Last).
	N uint32
}

// Empty reports whether no vertex has been folded in.
func (s *Summary) Empty() bool { return len(s.Sums) == 0 }

// shape prepares s to accept vertices of window range
// [firstWid, firstWid+k), reusing backing arrays. It reports false on
// a range mismatch with already-folded contents.
func (s *Summary) shape(firstWid int64, k int) bool {
	if len(s.Sums) == 0 {
		s.FirstWid = firstWid
		if cap(s.Sums) >= k {
			s.Sums = s.Sums[:k]
			s.Last = s.Last[:k]
			for i := 0; i < k; i++ {
				s.Sums[i] = nil
				s.Last[i] = 0
			}
		} else {
			s.Sums = make([]*Payload, k)
			s.Last = make([]uint32, k)
		}
		return true
	}
	return s.FirstWid == firstWid && len(s.Sums) == k
}

// SummaryAdd folds one vertex's per-window payloads into s, drawing
// payload storage from pool. valid, when non-nil, masks the vertex's
// windows: payloads of windows with valid[i] == false are skipped (the
// vertex is invalidated there by a watermark), and Last/N account only
// the windows that were folded. It reports ok == false when the
// vertex's window range does not match the summary's (the caller must
// then treat the summary as unusable); created is the number of
// payloads newly drawn from pool, so callers can account summary
// storage.
func (d *Def) SummaryAdd(pool *Pool, s *Summary, firstWid int64, aggs []*Payload, valid []bool) (created int, ok bool) {
	if !s.shape(firstWid, len(aggs)) {
		return 0, false
	}
	last := -1
	for i, p := range aggs {
		if p == nil || (valid != nil && !valid[i]) {
			continue
		}
		sp := s.Sums[i]
		if sp == nil {
			sp = pool.Get()
			s.Sums[i] = sp
			created++
		}
		d.AddPred(sp, p)
		last = i
	}
	if last >= 0 {
		s.Last[last]++
		s.N++
	}
	return created, true
}

// SummaryMerge folds src into dst (dst takes storage from pool; src is
// not modified). It reports ok == false on a window-range mismatch;
// created counts payloads newly drawn from pool.
func (d *Def) SummaryMerge(pool *Pool, dst, src *Summary) (created int, ok bool) {
	if src.Empty() {
		return 0, true
	}
	if !dst.shape(src.FirstWid, len(src.Sums)) {
		return 0, false
	}
	for i, sp := range src.Sums {
		if sp == nil {
			continue
		}
		dp := dst.Sums[i]
		if dp == nil {
			dp = pool.Get()
			dst.Sums[i] = dp
			created++
		}
		d.AddPred(dp, sp)
	}
	for i, c := range src.Last {
		dst.Last[i] += c
	}
	dst.N += src.N
	return created, true
}

// SummaryClear empties s, returning its payloads to pool and keeping
// the backing arrays for reuse. It returns the number of payloads
// released, mirroring SummaryAdd/SummaryMerge's created counts.
func (d *Def) SummaryClear(pool *Pool, s *Summary) (released int) {
	for i, sp := range s.Sums {
		if sp != nil {
			pool.Put(sp)
			s.Sums[i] = nil
			released++
		}
	}
	s.Sums = s.Sums[:0]
	s.Last = s.Last[:0]
	s.N = 0
	return released
}

// EdgesFrom returns the number of folded vertices that contribute at
// least one payload in windows >= wid (see Last).
func (s *Summary) EdgesFrom(wid int64) uint64 {
	i := int(wid - s.FirstWid)
	if i < 0 {
		i = 0
	}
	var n uint64
	for ; i < len(s.Last); i++ {
		n += uint64(s.Last[i])
	}
	return n
}
