package aggregate

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/event"
)

func defWithAll(mode Mode) (*Def, map[SpecKind][2]int) {
	d := &Def{Mode: mode}
	slots := map[SpecKind][2]int{}
	for _, k := range []SpecKind{CountStar, CountType, Min, Max, Sum, Avg} {
		s1, s2 := d.Plan(Spec{Kind: k, Type: "A", Attr: "x"})
		slots[k] = [2]int{s1, s2}
	}
	return d, slots
}

func TestSlotDedup(t *testing.T) {
	d := &Def{}
	a, _ := d.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
	b, _ := d.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
	if a != b {
		t.Errorf("duplicate slots %d, %d", a, b)
	}
	c, _ := d.Plan(Spec{Kind: Sum, Type: "A", Attr: "y"})
	if c == a {
		t.Error("different attrs share a slot")
	}
}

// TestTheorem91Hand replays the Fig. 12 hand computation at the payload
// level: a1(attr=5) -> b2 -> a3(attr=6) -> a4(attr=4) -> b7 for
// (SEQ(A+,B))+.
func TestTheorem91Hand(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeExact} {
		d, slots := defWithAll(mode)
		evA := func(tm event.Time, x float64) *event.Event {
			return &event.Event{Type: "A", Time: tm, Attrs: map[string]float64{"x": x}}
		}
		evB := func(tm event.Time) *event.Event { return &event.Event{Type: "B", Time: tm} }

		a1 := d.New()
		d.OnStart(a1, 1)
		d.OnEvent(a1, evA(1, 5))

		b2 := d.New()
		d.AddPred(b2, a1)
		d.OnEvent(b2, evB(2))

		a3 := d.New()
		d.AddPred(a3, a1)
		d.AddPred(a3, b2)
		d.OnStart(a3, 3)
		d.OnEvent(a3, evA(3, 6))

		a4 := d.New()
		for _, p := range []*Payload{a1, b2, a3} {
			d.AddPred(a4, p)
		}
		d.OnStart(a4, 4)
		d.OnEvent(a4, evA(4, 4))

		if a4.Count != 6 {
			t.Fatalf("mode %v: a4.count = %d, want 6", mode, a4.Count)
		}

		b7 := d.New()
		for _, p := range []*Payload{a1, a3, a4} {
			d.AddPred(b7, p)
		}
		d.OnEvent(b7, evB(7))
		if b7.Count != 10 {
			t.Fatalf("mode %v: b7.count = %d, want 10", mode, b7.Count)
		}

		final := d.New()
		d.Merge(final, b2)
		d.Merge(final, b7)
		if final.Count != 11 {
			t.Errorf("mode %v: COUNT(*) = %d, want 11", mode, final.Count)
		}
		countA := Spec{Kind: CountType, Type: "A"}
		if got := d.Value(final, countA, slots[CountType][0], -1); got != 20 {
			t.Errorf("mode %v: COUNT(A) = %v, want 20", mode, got)
		}
		if got := d.Value(final, Spec{Kind: Min, Type: "A", Attr: "x"}, slots[Min][0], -1); got != 4 {
			t.Errorf("mode %v: MIN = %v, want 4", mode, got)
		}
		if got := d.Value(final, Spec{Kind: Max, Type: "A", Attr: "x"}, slots[Max][0], -1); got != 6 {
			t.Errorf("mode %v: MAX = %v, want 6", mode, got)
		}
		if got := d.Value(final, Spec{Kind: Sum, Type: "A", Attr: "x"}, slots[Sum][0], -1); got != 100 {
			t.Errorf("mode %v: SUM = %v, want 100", mode, got)
		}
		if got := d.Value(final, Spec{Kind: Avg, Type: "A", Attr: "x"}, slots[Avg][0], slots[Avg][1]); got != 5 {
			t.Errorf("mode %v: AVG = %v, want 5", mode, got)
		}
	}
}

func TestMaxStartTracking(t *testing.T) {
	d := &Def{TrackStart: true}
	p := d.New()
	if p.MaxStart != NoStart {
		t.Fatal("fresh payload has a start")
	}
	d.OnStart(p, 7)
	if p.MaxStart != 7 {
		t.Fatalf("MaxStart = %d", p.MaxStart)
	}
	q := d.New()
	d.OnStart(q, 3)
	d.AddPred(q, p)
	if q.MaxStart != 7 {
		t.Errorf("MaxStart after fold = %d, want 7", q.MaxStart)
	}
}

func TestExactCountBigNumbers(t *testing.T) {
	// 200 chained doublings exceed uint64; exact mode must not.
	d := &Def{Mode: ModeExact}
	p := d.New()
	d.OnStart(p, 0)
	for i := 0; i < 200; i++ {
		q := d.New()
		d.AddPred(q, p)
		d.AddPred(q, p)
		p = q
	}
	want := new(big.Int).Lsh(big.NewInt(1), 200)
	if d.ExactCount(p).Cmp(want) != 0 {
		t.Errorf("exact count = %v, want 2^200", d.ExactCount(p))
	}
}

func TestAddSigned(t *testing.T) {
	d := &Def{}
	slot, _ := d.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
	mslot, _ := d.Plan(Spec{Kind: Min, Type: "A", Attr: "x"})
	a := d.New()
	d.OnStart(a, 1)
	d.OnEvent(a, &event.Event{Type: "A", Time: 1, Attrs: map[string]float64{"x": 5}})
	b := d.New()
	d.OnStart(b, 2)
	d.OnEvent(b, &event.Event{Type: "A", Time: 2, Attrs: map[string]float64{"x": 3}})

	u := d.New()
	d.AddSigned(u, a, 1)
	d.AddSigned(u, b, 1)
	d.AddSigned(u, b, -1)
	if u.Count != 1 {
		t.Errorf("count = %d, want 1", u.Count)
	}
	if u.Slots[slot].F != 5 {
		t.Errorf("sum = %v, want 5", u.Slots[slot].F)
	}
	// min folded from positive terms only: min(5,3) = 3 remains.
	if u.Slots[mslot].F != 3 {
		t.Errorf("min = %v, want 3", u.Slots[mslot].F)
	}
}

func TestZero(t *testing.T) {
	d := &Def{}
	p := d.New()
	if !p.Zero() {
		t.Error("fresh payload not zero")
	}
	d.OnStart(p, 1)
	if p.Zero() {
		t.Error("started payload is zero")
	}
	var nilP *Payload
	if !nilP.Zero() {
		t.Error("nil payload not zero")
	}
}

// TestValueExtractionBothModes covers Value for every spec kind in
// both arithmetic modes, including empty payloads.
func TestValueExtractionBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeExact} {
		d, slots := defWithAll(mode)
		p := d.New()
		d.OnStart(p, 1)
		d.OnEvent(p, &event.Event{Type: "A", Time: 1, Attrs: map[string]float64{"x": 7}})
		cases := []struct {
			kind SpecKind
			want float64
		}{
			{CountStar, 1}, {CountType, 1}, {Min, 7}, {Max, 7}, {Sum, 7}, {Avg, 7},
		}
		for _, c := range cases {
			spec := Spec{Kind: c.kind, Type: "A", Attr: "x"}
			got := d.Value(p, spec, slots[c.kind][0], slots[c.kind][1])
			if got != c.want {
				t.Errorf("mode %v %v = %v, want %v", mode, c.kind, got, c.want)
			}
		}
		// Nil payload: zero counts, Inf min/max, NaN avg.
		if v := d.Value(nil, Spec{Kind: CountStar}, -1, -1); v != 0 {
			t.Errorf("mode %v nil COUNT(*) = %v", mode, v)
		}
		if v := d.Value(nil, Spec{Kind: Avg, Type: "A", Attr: "x"}, slots[Avg][0], slots[Avg][1]); !math.IsNaN(v) {
			t.Errorf("mode %v nil AVG = %v", mode, v)
		}
	}
}

// TestCloneIndependence: clones do not alias exact-mode big values.
func TestCloneIndependence(t *testing.T) {
	d, slots := defWithAll(ModeExact)
	p := d.New()
	d.OnStart(p, 1)
	d.OnEvent(p, &event.Event{Type: "A", Time: 1, Attrs: map[string]float64{"x": 2}})
	c := d.Clone(p)
	d.OnStart(p, 2)
	d.OnEvent(p, &event.Event{Type: "A", Time: 2, Attrs: map[string]float64{"x": 9}})
	if got := d.Value(c, Spec{Kind: CountStar}, -1, -1); got != 1 {
		t.Errorf("clone count = %v, want 1", got)
	}
	if got := d.Value(c, Spec{Kind: Sum, Type: "A", Attr: "x"}, slots[Sum][0], -1); got != 2 {
		t.Errorf("clone sum = %v, want 2", got)
	}
	if got := d.ExactSlotInt(c, slots[CountType][0]); got.Int64() != 1 {
		t.Errorf("clone countE = %v", got)
	}
}

// TestAddSignedExact mirrors TestAddSigned in exact mode.
func TestAddSignedExact(t *testing.T) {
	d := &Def{Mode: ModeExact}
	slot, _ := d.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
	cslot, _ := d.Plan(Spec{Kind: CountType, Type: "A"})
	a := d.New()
	d.OnStart(a, 1)
	d.OnEvent(a, &event.Event{Type: "A", Time: 1, Attrs: map[string]float64{"x": 5}})
	u := d.New()
	d.AddSigned(u, a, 1)
	d.AddSigned(u, a, 1)
	d.AddSigned(u, a, -1)
	if u.XCount.Int64() != 1 {
		t.Errorf("exact count = %v", u.XCount)
	}
	if got := d.ExactSlotInt(u, cslot); got.Int64() != 1 {
		t.Errorf("exact countE = %v", got)
	}
	f, _ := u.Slots[slot].XF.Float64()
	if f != 5 {
		t.Errorf("exact sum = %v", f)
	}
	// AddSigned with nil src is a no-op.
	d.AddSigned(u, nil, -1)
	if u.XCount.Int64() != 1 {
		t.Error("nil AddSigned changed the payload")
	}
}

// TestSpecStrings covers rendering.
func TestSpecStrings(t *testing.T) {
	cases := map[string]Spec{
		"COUNT(*)": {Kind: CountStar},
		"COUNT(A)": {Kind: CountType, Type: "A"},
		"MIN(A.x)": {Kind: Min, Type: "A", Attr: "x"},
		"MAX(A.x)": {Kind: Max, Type: "A", Attr: "x"},
		"SUM(A.x)": {Kind: Sum, Type: "A", Attr: "x"},
		"AVG(A.x)": {Kind: Avg, Type: "A", Attr: "x"},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("%+v renders %q, want %q", spec, got, want)
		}
	}
	if ModeExact.String() != "exact" || ModeNative.String() != "native" {
		t.Error("mode strings")
	}
}

// TestQuickNativeMatchesExact: random fold sequences give identical
// results in native and exact mode while counts stay within uint64.
func TestQuickNativeMatchesExact(t *testing.T) {
	f := func(ops []uint8) bool {
		dn := &Def{Mode: ModeNative}
		dx := &Def{Mode: ModeExact}
		sn, _ := dn.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
		sx, _ := dx.Plan(Spec{Kind: Sum, Type: "A", Attr: "x"})
		if sn != sx {
			return false
		}
		var npool, xpool []*Payload
		pn, px := dn.New(), dx.New()
		tm := event.Time(0)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				tm++
				dn.OnStart(pn, tm)
				dx.OnStart(px, tm)
			case 1:
				e := &event.Event{Type: "A", Time: tm, Attrs: map[string]float64{"x": float64(op % 7)}}
				dn.OnEvent(pn, e)
				dx.OnEvent(px, e)
			case 2:
				npool = append(npool, dn.Clone(pn))
				xpool = append(xpool, dx.Clone(px))
			case 3:
				if len(npool) > 0 {
					i := int(op) % len(npool)
					dn.AddPred(pn, npool[i])
					dx.AddPred(px, xpool[i])
				}
			}
		}
		exact, _ := new(big.Float).SetInt(dx.ExactCount(px)).Float64()
		if float64(pn.Count) != exact {
			return false
		}
		xf, _ := px.Slots[sx].XF.Float64()
		return math.Abs(pn.Slots[sn].F-xf) < 1e-6*(1+math.Abs(xf))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSummaryFilteredFolds covers the watermark-filtered summary path:
// a validity mask skips invalidated windows, Last/N account only valid
// contributions (keeping EdgesFrom exact), and the created/released
// counts balance so callers can track summary storage.
func TestSummaryFilteredFolds(t *testing.T) {
	d := &Def{Mode: ModeNative}
	slot := d.AddSlot(Slot{SlotSum, "A", "v"})
	pool := NewPool(d)
	mk := func(count uint64, sum float64) *Payload {
		p := pool.Get()
		p.Count = count
		p.Slots[slot].F = sum
		return p
	}

	var s Summary
	created := 0
	// Vertex 1 contributes to windows 0 and 1; window 1 filtered out.
	c, ok := d.SummaryAdd(pool, &s, 0, []*Payload{mk(2, 10), mk(3, 30)}, []bool{true, false})
	if !ok {
		t.Fatal("SummaryAdd rejected matching shape")
	}
	created += c
	// Vertex 2 contributes to both windows unfiltered.
	c, ok = d.SummaryAdd(pool, &s, 0, []*Payload{mk(1, 1), mk(5, 50)}, nil)
	if !ok {
		t.Fatal("SummaryAdd rejected matching shape")
	}
	created += c
	// Vertex 3 is fully filtered: it must not count toward Last/N.
	c, ok = d.SummaryAdd(pool, &s, 0, []*Payload{mk(7, 70), nil}, []bool{false, true})
	if !ok {
		t.Fatal("SummaryAdd rejected matching shape")
	}
	created += c

	if s.N != 2 {
		t.Fatalf("N = %d, want 2 (fully filtered vertex counted)", s.N)
	}
	if s.Last[0] != 1 || s.Last[1] != 1 {
		t.Fatalf("Last = %v, want [1 1]", s.Last)
	}
	if got := s.EdgesFrom(1); got != 1 {
		t.Fatalf("EdgesFrom(1) = %d, want 1", got)
	}
	if s.Sums[0].Count != 3 || s.Sums[0].Slots[slot].F != 11 {
		t.Fatalf("window 0 fold = (%d, %g), want (3, 11)", s.Sums[0].Count, s.Sums[0].Slots[slot].F)
	}
	if s.Sums[1].Count != 5 || s.Sums[1].Slots[slot].F != 50 {
		t.Fatalf("window 1 fold = (%d, %g), want (5, 50)", s.Sums[1].Count, s.Sums[1].Slots[slot].F)
	}
	if created != 2 {
		t.Fatalf("created = %d, want 2 (one payload per window)", created)
	}

	// Merge into a fresh summary and verify counts flow through.
	var dst Summary
	c, ok = d.SummaryMerge(pool, &dst, &s)
	if !ok || c != 2 {
		t.Fatalf("SummaryMerge = (%d, %v), want (2, true)", c, ok)
	}
	if dst.N != s.N || dst.Sums[0].Count != 3 {
		t.Fatalf("merged summary diverges: N=%d Sums[0].Count=%d", dst.N, dst.Sums[0].Count)
	}

	// Shape mismatch is rejected, releases balance creations.
	if _, ok := d.SummaryAdd(pool, &s, 1, []*Payload{mk(1, 1)}, nil); ok {
		t.Fatal("SummaryAdd accepted mismatched window range")
	}
	if rel := d.SummaryClear(pool, &s); rel != 2 {
		t.Fatalf("SummaryClear released %d, want 2", rel)
	}
	if rel := d.SummaryClear(pool, &dst); rel != 2 {
		t.Fatalf("SummaryClear released %d, want 2", rel)
	}
}
