package aggregate

import (
	"math"

	"github.com/greta-cep/greta/internal/event"
)

// Pool recycles Payloads (and their Slots backing arrays) of one Def.
// The graph runtime creates one payload per vertex per window; without
// recycling, every event allocates. Panes return their payloads here
// when they expire, so the steady-state per-event path reuses instead
// of allocating. A Pool is single-owner state (one per graph): it must
// not be shared between goroutines.
type Pool struct {
	def  *Def
	free []*Payload
}

// NewPool returns an empty pool producing payloads for def.
func NewPool(def *Def) *Pool { return &Pool{def: def} }

// Init prepares a zero-value Pool (for embedding without a separate
// allocation).
func (p *Pool) Init(def *Def) { p.def = def }

// Get returns a zeroed payload, recycling a free one when available.
func (p *Pool) Get() *Payload {
	if n := len(p.free); n > 0 {
		pl := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.def.Reset(pl)
		return pl
	}
	return p.def.New()
}

// Put returns a payload to the pool. nil is ignored. The caller must
// not retain references to pl.
func (p *Pool) Put(pl *Payload) {
	if pl != nil {
		p.free = append(p.free, pl)
	}
}

// Len reports the number of pooled payloads (for tests and stats).
func (p *Pool) Len() int { return len(p.free) }

// Reset reinitializes p to the zero state of the definition, reusing
// the Slots array and any exact-mode big numbers in place. The payload
// must have been produced by d.New (slot layout matches d.Slots).
func (d *Def) Reset(p *Payload) {
	p.Count = 0
	p.MaxStart = NoStart
	for i, s := range d.Slots {
		sv := &p.Slots[i]
		sv.N = 0
		switch s.Kind {
		case SlotMin:
			sv.F = math.Inf(1)
		case SlotMax:
			sv.F = math.Inf(-1)
		default:
			sv.F = 0
		}
		if d.Mode == ModeExact {
			switch s.Kind {
			case SlotCountE:
				sv.X.SetInt64(0)
			case SlotSum:
				sv.XF.SetInt64(0)
			}
		}
	}
	if d.Mode == ModeExact {
		p.XCount.SetInt64(0)
	}
}

// NewAccessors returns one attribute accessor per slot of the
// definition, for use with OnEventAcc. Accessors cache schema slots and
// are not safe for concurrent use: allocate one set per graph.
func (d *Def) NewAccessors() []event.Accessor {
	if len(d.Slots) == 0 {
		return nil
	}
	acc := make([]event.Accessor, len(d.Slots))
	for i, s := range d.Slots {
		acc[i] = event.NewAccessor(s.Attr)
	}
	return acc
}

// OnEventAcc is OnEvent reading slot attributes through the accessors
// returned by NewAccessors (dense schema slots instead of map probes).
func (d *Def) OnEventAcc(dst *Payload, e *event.Event, acc []event.Accessor) {
	for i, s := range d.Slots {
		if s.Type != e.Type {
			continue
		}
		attr, ok := 0.0, true
		if s.Kind != SlotCountE {
			attr, ok = acc[i].Float(e)
		}
		if !ok {
			continue
		}
		d.applySelf(dst, i, s.Kind, attr)
	}
}
