// Package aggregate implements the intermediate and final aggregates of
// GRETA (paper Theorem 4.3 for COUNT(*) and Theorem 9.1 for COUNT(E),
// MIN, MAX, SUM, AVG). Each graph vertex carries one Payload per window
// it falls into; payloads of predecessor events are folded into the new
// event's payload during graph construction, and END-event payloads are
// folded into final per-window results.
//
// Two arithmetic modes are provided. ModeNative uses uint64 counters
// with silent wrap-around and float64 sums — the number of trends is
// Θ(2ⁿ) in the number of events, so exact machine-word counting is
// impossible at realistic window sizes; wrap-around matches the cost
// model of the paper's Java implementation (long arithmetic). ModeExact
// uses math/big integers/floats and is used by correctness tests that
// compare GRETA against a brute-force trend enumerator.
package aggregate

import (
	"fmt"
	"math"
	"math/big"

	"github.com/greta-cep/greta/internal/event"
)

// Mode selects the arithmetic implementation.
type Mode uint8

// Arithmetic modes.
const (
	ModeNative Mode = iota
	ModeExact
)

func (m Mode) String() string {
	if m == ModeExact {
		return "exact"
	}
	return "native"
}

// SlotKind identifies a per-type aggregate maintained alongside the
// trend count.
type SlotKind uint8

// Slot kinds per Theorem 9.1.
const (
	SlotCountE SlotKind = iota // number of occurrences of events of Type in all trends
	SlotSum                    // Σ attr over occurrences
	SlotMin                    // min attr over occurrences
	SlotMax                    // max attr over occurrences
)

func (k SlotKind) String() string {
	switch k {
	case SlotCountE:
		return "COUNT"
	case SlotSum:
		return "SUM"
	case SlotMin:
		return "MIN"
	case SlotMax:
		return "MAX"
	}
	return "?"
}

// Slot declares one attribute aggregate: Kind over Attr of events of
// Type. SlotCountE ignores Attr.
type Slot struct {
	Kind SlotKind
	Type event.Type
	Attr string
}

// Def is the aggregation definition shared by all payloads of a graph:
// the arithmetic mode, the attribute slots, and whether trend start
// times are tracked (needed by negative sub-pattern graphs to compute
// invalidation watermarks, paper Definition 5).
type Def struct {
	Mode       Mode
	Slots      []Slot
	TrackStart bool
}

// AddSlot registers a slot, deduplicating, and returns its index.
func (d *Def) AddSlot(s Slot) int {
	for i, x := range d.Slots {
		if x == s {
			return i
		}
	}
	d.Slots = append(d.Slots, s)
	return len(d.Slots) - 1
}

// NoStart is the MaxStart value of a payload with no trends.
const NoStart = math.MinInt64

// SlotVal is the runtime value of one slot. CountE uses N (native) or X
// (exact); Sum uses F (native) or XF (exact); Min/Max always use F.
type SlotVal struct {
	N  uint64
	F  float64
	X  *big.Int
	XF *big.Float
}

// Payload carries the intermediate aggregates of one vertex in one
// window: the trend count (Theorem 4.3), the attribute slots
// (Theorem 9.1), and the latest trend start time (negation support).
type Payload struct {
	Count    uint64
	XCount   *big.Int
	MaxStart int64
	Slots    []SlotVal
}

// New returns a zero payload for the definition.
func (d *Def) New() *Payload {
	p := &Payload{MaxStart: NoStart}
	if len(d.Slots) > 0 {
		p.Slots = make([]SlotVal, len(d.Slots))
	}
	for i, s := range d.Slots {
		switch s.Kind {
		case SlotMin:
			p.Slots[i].F = math.Inf(1)
		case SlotMax:
			p.Slots[i].F = math.Inf(-1)
		}
	}
	if d.Mode == ModeExact {
		p.XCount = new(big.Int)
		for i, s := range d.Slots {
			switch s.Kind {
			case SlotCountE:
				p.Slots[i].X = new(big.Int)
			case SlotSum:
				p.Slots[i].XF = new(big.Float).SetPrec(sumPrec)
			}
		}
	}
	return p
}

// sumPrec is the mantissa precision of exact-mode sums. 256 bits keep
// test streams exact while bounding memory.
const sumPrec = 256

// AddPred folds a predecessor payload into dst:
// dst.count += p.count, dst.countE += p.countE, dst.sum += p.sum,
// dst.min = min(dst.min, p.min), dst.max = max(dst.max, p.max)
// (the Σ / min / max terms of Theorems 4.3 and 9.1).
func (d *Def) AddPred(dst, p *Payload) {
	dst.Count += p.Count
	if d.Mode == ModeExact {
		dst.XCount.Add(dst.XCount, p.XCount)
	}
	if p.MaxStart > dst.MaxStart {
		dst.MaxStart = p.MaxStart
	}
	for i, s := range d.Slots {
		dv, pv := &dst.Slots[i], &p.Slots[i]
		switch s.Kind {
		case SlotCountE:
			dv.N += pv.N
			if d.Mode == ModeExact {
				dv.X.Add(dv.X, pv.X)
			}
		case SlotSum:
			dv.F += pv.F
			if d.Mode == ModeExact {
				dv.XF.Add(dv.XF, pv.XF)
			}
		case SlotMin:
			if pv.F < dv.F {
				dv.F = pv.F
			}
		case SlotMax:
			if pv.F > dv.F {
				dv.F = pv.F
			}
		}
	}
}

// OnStart accounts for the event starting a new trend: count += 1
// (Theorem 4.3) and MaxStart tracking.
func (d *Def) OnStart(dst *Payload, t event.Time) {
	dst.Count++
	if d.Mode == ModeExact {
		dst.XCount.Add(dst.XCount, bigOne)
	}
	if d.TrackStart && int64(t) > dst.MaxStart {
		dst.MaxStart = int64(t)
	}
}

var bigOne = big.NewInt(1)

// OnEvent applies the self-contribution of the new event e to each slot
// whose Type matches (Theorem 9.1):
// countE += count; sum += attr*count; min/max fold in attr.
// Must be called after all AddPred calls and after OnStart, because the
// self terms use the event's final trend count.
func (d *Def) OnEvent(dst *Payload, e *event.Event) {
	for i, s := range d.Slots {
		if s.Type != e.Type {
			continue
		}
		attr, ok := e.Attrs[s.Attr]
		if s.Kind == SlotCountE {
			attr, ok = 0, true
		}
		if !ok {
			continue
		}
		d.applySelf(dst, i, s.Kind, attr)
	}
}

// applySelf folds the self-contribution of one event into slot i.
func (d *Def) applySelf(dst *Payload, i int, kind SlotKind, attr float64) {
	dv := &dst.Slots[i]
	switch kind {
	case SlotCountE:
		dv.N += dst.Count
		if d.Mode == ModeExact {
			dv.X.Add(dv.X, dst.XCount)
		}
	case SlotSum:
		dv.F += attr * float64(dst.Count)
		if d.Mode == ModeExact {
			t := new(big.Float).SetPrec(sumPrec).SetInt(dst.XCount)
			t.Mul(t, big.NewFloat(attr))
			dv.XF.Add(dv.XF, t)
		}
	case SlotMin:
		if attr < dv.F {
			dv.F = attr
		}
	case SlotMax:
		if attr > dv.F {
			dv.F = attr
		}
	}
}

// Merge folds src into dst; it is the final-aggregate combination over
// END events (identical arithmetic to AddPred).
func (d *Def) Merge(dst, src *Payload) { d.AddPred(dst, src) }

// AddSigned folds src into dst with a sign, used by the
// inclusion–exclusion composition of disjunction counts (paper §9):
// additive fields (count, countE, sum) are added or subtracted;
// min/max, which are monotone over trend sets, fold only on positive
// terms (MIN over a union is the MIN over the covering branches).
func (d *Def) AddSigned(dst, src *Payload, sign int) {
	if src == nil {
		return
	}
	if sign >= 0 {
		d.AddPred(dst, src)
		return
	}
	dst.Count -= src.Count
	if d.Mode == ModeExact {
		dst.XCount.Sub(dst.XCount, src.XCount)
	}
	for i, s := range d.Slots {
		dv, sv := &dst.Slots[i], &src.Slots[i]
		switch s.Kind {
		case SlotCountE:
			dv.N -= sv.N
			if d.Mode == ModeExact {
				dv.X.Sub(dv.X, sv.X)
			}
		case SlotSum:
			dv.F -= sv.F
			if d.Mode == ModeExact {
				dv.XF.Sub(dv.XF, sv.XF)
			}
		}
	}
}

// Clone returns a deep copy of p.
func (d *Def) Clone(p *Payload) *Payload {
	c := &Payload{Count: p.Count, MaxStart: p.MaxStart}
	if p.Slots != nil {
		c.Slots = make([]SlotVal, len(p.Slots))
		copy(c.Slots, p.Slots)
	}
	if d.Mode == ModeExact {
		c.XCount = new(big.Int).Set(p.XCount)
		for i, s := range d.Slots {
			switch s.Kind {
			case SlotCountE:
				c.Slots[i].X = new(big.Int).Set(p.Slots[i].X)
			case SlotSum:
				c.Slots[i].XF = new(big.Float).SetPrec(sumPrec).Set(p.Slots[i].XF)
			}
		}
	}
	return c
}

// Zero reports whether the payload carries no trends.
func (p *Payload) Zero() bool {
	if p == nil {
		return true
	}
	if p.XCount != nil {
		return p.XCount.Sign() == 0
	}
	return p.Count == 0
}

// Spec is a RETURN-clause aggregate request.
type Spec struct {
	Kind SpecKind
	Type event.Type // target event type for COUNT(E)/MIN/MAX/SUM/AVG
	Attr string
}

// SpecKind enumerates RETURN aggregates (paper Definition 2).
type SpecKind uint8

// RETURN aggregate kinds.
const (
	CountStar SpecKind = iota
	CountType
	Min
	Max
	Sum
	Avg
)

func (k SpecKind) String() string {
	switch k {
	case CountStar:
		return "COUNT(*)"
	case CountType:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	}
	return "?"
}

func (s Spec) String() string {
	switch s.Kind {
	case CountStar:
		return "COUNT(*)"
	case CountType:
		return fmt.Sprintf("COUNT(%s)", s.Type)
	case Avg:
		return fmt.Sprintf("AVG(%s.%s)", s.Type, s.Attr)
	default:
		return fmt.Sprintf("%s(%s.%s)", s.Kind, s.Type, s.Attr)
	}
}

// Plan registers the slots spec needs on d and returns the slot indices
// (primary, secondary). AVG uses two slots (sum, countE); COUNT(*) uses
// none (-1, -1).
func (d *Def) Plan(spec Spec) (int, int) {
	switch spec.Kind {
	case CountStar:
		return -1, -1
	case CountType:
		return d.AddSlot(Slot{SlotCountE, spec.Type, ""}), -1
	case Min:
		return d.AddSlot(Slot{SlotMin, spec.Type, spec.Attr}), -1
	case Max:
		return d.AddSlot(Slot{SlotMax, spec.Type, spec.Attr}), -1
	case Sum:
		return d.AddSlot(Slot{SlotSum, spec.Type, spec.Attr}), -1
	case Avg:
		return d.AddSlot(Slot{SlotSum, spec.Type, spec.Attr}),
			d.AddSlot(Slot{SlotCountE, spec.Type, ""})
	}
	return -1, -1
}

// Value extracts the final value of spec from a result payload given
// the slot indices returned by Plan. Exact-mode counts that exceed
// float64 range saturate; use ExactValue for full precision.
func (d *Def) Value(p *Payload, spec Spec, slot, slot2 int) float64 {
	if p == nil {
		p = d.New()
	}
	switch spec.Kind {
	case CountStar:
		if d.Mode == ModeExact {
			f, _ := new(big.Float).SetInt(p.XCount).Float64()
			return f
		}
		return float64(p.Count)
	case CountType:
		if d.Mode == ModeExact {
			f, _ := new(big.Float).SetInt(p.Slots[slot].X).Float64()
			return f
		}
		return float64(p.Slots[slot].N)
	case Min, Max:
		return p.Slots[slot].F
	case Sum:
		if d.Mode == ModeExact {
			f, _ := p.Slots[slot].XF.Float64()
			return f
		}
		return p.Slots[slot].F
	case Avg:
		sum := d.Value(p, Spec{Kind: Sum, Type: spec.Type, Attr: spec.Attr}, slot, -1)
		cnt := d.Value(p, Spec{Kind: CountType, Type: spec.Type}, slot2, -1)
		if cnt == 0 {
			return math.NaN()
		}
		return sum / cnt
	}
	return math.NaN()
}

// ExactCount returns the exact trend count of p in ModeExact, or the
// native count promoted to big.Int otherwise.
func (d *Def) ExactCount(p *Payload) *big.Int {
	if p == nil {
		return new(big.Int)
	}
	if d.Mode == ModeExact {
		return new(big.Int).Set(p.XCount)
	}
	return new(big.Int).SetUint64(p.Count)
}

// ExactSlotInt returns the exact integer value of a CountE slot.
func (d *Def) ExactSlotInt(p *Payload, slot int) *big.Int {
	if p == nil {
		return new(big.Int)
	}
	if d.Mode == ModeExact {
		return new(big.Int).Set(p.Slots[slot].X)
	}
	return new(big.Int).SetUint64(p.Slots[slot].N)
}
