package predicate

import (
	"fmt"
	"math"

	"github.com/greta-cep/greta/internal/event"
)

// Vertex is a compiled vertex predicate: a local filter on single events
// of one alias (paper §6, "Local predicates ... purge irrelevant events
// early"). An empty Alias applies to every event.
type Vertex struct {
	Alias string
	Expr  Expr
}

// Eval reports whether event e satisfies the vertex predicate.
func (v *Vertex) Eval(e *event.Event) bool {
	return Eval(v.Expr, Binding{Prev: e, Next: e}).Truthy()
}

// Edge is a compiled edge predicate between adjacent trend events
// (paper §6). From/To name the aliases of the earlier and later event;
// in the common Kleene case they coincide (S.price > NEXT(S).price has
// From = To = S). If a Range is available the runtime uses it to narrow
// the Vertex Tree scan; Expr is always re-checked on candidates.
type Edge struct {
	From, To string
	Expr     Expr
	Range    *Range
}

// Eval reports whether the pair (prev, next) satisfies the predicate.
func (e *Edge) Eval(prev, next *event.Event) bool {
	return Eval(e.Expr, Binding{Prev: prev, Next: next}).Truthy()
}

// Range describes the compiled form a*prev.Attr + b CMP rhs(next): given
// the later event it yields bounds on the predecessor's sort attribute,
// enabling a B-tree range scan (paper §7, Vertex Tree).
type Range struct {
	Attr string // predecessor attribute the Vertex Tree is sorted by
	a, b float64
	op   Op   // comparison with prev-linear side on the left
	rhs  Expr // expression over the later event only
}

// RHS returns the right-hand-side expression over the later event,
// for callers that precompile it (see Compiled).
func (r *Range) RHS() Expr { return r.rhs }

// ExactKey reports whether the compiled bounds are bit-exact with the
// original predicate: the left side is the bare attribute (a == 1,
// b == 0), so solving for it introduces no floating-point rounding.
// Exact ranges replace per-candidate re-evaluation outright (the
// summary fast path folds any subtree inside them). Inexact ranges are
// handled by interval arithmetic: Bounds widens them outward so a scan
// never misses a true match, and FoldBounds shrinks them inward so
// interior subtrees may still be folded wholesale, leaving only the
// boundary band to per-candidate re-checks.
func (r *Range) ExactKey() bool { return r.a == 1 && r.b == 0 }

// slackOf bounds the divergence between the compiled linear model
// a*x + b and the predicate's own floating-point evaluation around the
// solved boundary x for right-hand value v. The relative factor 2^-40
// leaves ~8000 ulps of headroom over the handful of roundings the
// linearizer and the expression evaluator can each introduce; the
// absolute term keeps the band non-degenerate around zero (products
// can underflow to zero and flip a strict comparison). The band is a
// perf trade only — events inside it are re-checked per vertex — so
// generous is safe and still folds virtually everything.
func (r *Range) slackOf(x, v float64) float64 {
	s := math.Abs(x)
	if t := (math.Abs(v) + math.Abs(r.b)) / math.Abs(r.a); t > s {
		s = t
	}
	return s*0x1p-40 + 0x1p-1000
}

// Bounds returns the half-open/closed interval [lo, hi] of predecessor
// Attr values compatible with next. Unbounded sides are ±Inf. ok is
// false when the right-hand side does not evaluate to a number.
func (r *Range) Bounds(next *event.Event) (lo, hi float64, loIncl, hiIncl, ok bool) {
	return r.BoundsOf(Eval(r.rhs, Binding{Next: next}))
}

// BoundsOf is Bounds with the right-hand side already evaluated,
// letting the runtime reuse a compiled rhs evaluator. For inexact
// ranges (a != 1 or b != 0) the bounds are rounded outward by slackOf,
// so the narrowed scan provably contains every event the original
// predicate accepts; candidates are re-checked against the predicate,
// so outward rounding never admits a wrong match.
func (r *Range) BoundsOf(v Value) (lo, hi float64, loIncl, hiIncl, ok bool) {
	if v.Str || math.IsNaN(v.F) {
		return 0, 0, false, false, false
	}
	// Solve a*x + b  op  v  for x.
	x := (v.F - r.b) / r.a
	op := r.op
	if r.a < 0 {
		op = flip(op)
	}
	slack := 0.0
	if !r.ExactKey() {
		slack = r.slackOf(x, v.F)
	}
	lo, hi = math.Inf(-1), math.Inf(1)
	switch op {
	case OpEq:
		return x - slack, x + slack, true, true, true
	case OpGt:
		return x - slack, hi, false, false, true
	case OpGe:
		return x - slack, hi, true, false, true
	case OpLt:
		return lo, x + slack, false, false, true
	case OpLe:
		return lo, x + slack, false, true, true
	}
	return lo, hi, false, false, false
}

// FoldBoundsOf returns the inner (conservative) interval of predecessor
// Attr values for which the original predicate provably holds given the
// evaluated right-hand side: subtree summaries whose key span lies
// inside it may be folded without re-evaluating the predicate per
// vertex. For exact keys it equals BoundsOf (no slack). For inexact
// ranges the solved boundary is rounded inward by slackOf; equality
// predicates have no inner interval then (ok == false — equality
// within rounding error cannot be certified), and the caller falls
// back to a per-vertex scan over the outward-rounded Bounds.
func (r *Range) FoldBoundsOf(v Value) (lo, hi float64, loIncl, hiIncl, ok bool) {
	if v.Str || math.IsNaN(v.F) {
		return 0, 0, false, false, false
	}
	x := (v.F - r.b) / r.a
	op := r.op
	if r.a < 0 {
		op = flip(op)
	}
	if r.ExactKey() {
		return r.BoundsOf(v)
	}
	if op == OpEq {
		return 0, 0, false, false, false
	}
	slack := r.slackOf(x, v.F)
	lo, hi = math.Inf(-1), math.Inf(1)
	switch op {
	case OpGt, OpGe:
		// Strict beyond the band: any key past x + slack satisfies the
		// predicate under either >= or >.
		return x + slack, hi, false, false, true
	case OpLt, OpLe:
		return lo, x - slack, false, false, true
	}
	return lo, hi, false, false, false
}

func flip(op Op) Op {
	switch op {
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	}
	return op
}

func reverse(op Op) Op {
	// a op b  <=>  b reverse(op) a
	switch op {
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	}
	return op // = and != are symmetric
}

// Classified is the result of classifying a WHERE clause.
type Classified struct {
	// Equivalence lists attributes that must carry equal values across
	// all events of a trend ([company, sector] notation, paper §6); the
	// runtime partitions the stream by them.
	Equivalence []string
	// Vertex holds local single-event predicates keyed per alias.
	Vertex []*Vertex
	// Edge holds adjacent-pair predicates.
	Edge []*Edge
}

// Conjuncts splits e on top-level AND.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Classify splits the WHERE expression into vertex and edge predicates
// (paper §6). aliases is the set of valid pattern aliases; bare
// attribute references (no alias) are rejected here — the query planner
// resolves them before classification.
func Classify(where Expr, aliases map[string]bool) (*Classified, error) {
	c := &Classified{}
	if where == nil {
		return c, nil
	}
	for _, conj := range Conjuncts(where) {
		refs := Refs(conj)
		var plain, next map[string]bool
		plain, next = map[string]bool{}, map[string]bool{}
		for _, r := range refs {
			if r.Alias == "" {
				return nil, fmt.Errorf("predicate: unresolved bare attribute %q in %s", r.Attr, conj)
			}
			if !aliases[r.Alias] {
				return nil, fmt.Errorf("predicate: unknown alias %q in %s", r.Alias, conj)
			}
			if r.Next {
				next[r.Alias] = true
			} else {
				plain[r.Alias] = true
			}
		}
		switch {
		case len(plain) == 0 && len(next) == 0:
			// Constant conjunct: fold into a vertex predicate on all events.
			c.Vertex = append(c.Vertex, &Vertex{Expr: conj})
		case len(next) == 0 && len(plain) == 1:
			c.Vertex = append(c.Vertex, &Vertex{Alias: one(plain), Expr: conj})
		case len(plain) == 0 && len(next) == 1:
			// Only NEXT references: a vertex predicate in disguise.
			al := one(next)
			c.Vertex = append(c.Vertex, &Vertex{Alias: al, Expr: stripNext(conj)})
		case len(plain) == 1 && len(next) == 1:
			e := &Edge{From: one(plain), To: one(next), Expr: conj}
			e.Range = compileRange(conj)
			c.Edge = append(c.Edge, e)
		default:
			return nil, fmt.Errorf("predicate: %s references more than two events; only vertex and adjacent-pair (edge) predicates are supported", conj)
		}
	}
	return c, nil
}

func one(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// stripNext rewrites NEXT(X).a references to X.a so a NEXT-only conjunct
// can be evaluated as a vertex predicate.
func stripNext(e Expr) Expr {
	switch n := e.(type) {
	case Ref:
		if n.Next {
			return Ref{Alias: n.Alias, Attr: n.Attr}
		}
		return n
	case Binary:
		return Binary{n.Op, stripNext(n.L), stripNext(n.R)}
	}
	return e
}

// compileRange recognizes conjuncts of the form
//
//	linear(prev.attr) CMP expr(next)   or   expr(next) CMP linear(prev.attr)
//
// and returns the Range enabling B-tree scans, or nil when the shape
// does not match (the predicate is then evaluated per candidate).
func compileRange(e Expr) *Range {
	b, ok := e.(Binary)
	if !ok {
		return nil
	}
	switch b.Op {
	case OpEq, OpGt, OpGe, OpLt, OpLe:
	default:
		return nil
	}
	if lin, ok := linearize(b.L); ok && nextOnly(b.R) {
		if lin.attr == "" || lin.a == 0 {
			return nil
		}
		return &Range{Attr: lin.attr, a: lin.a, b: lin.b, op: b.Op, rhs: b.R}
	}
	if lin, ok := linearize(b.R); ok && nextOnly(b.L) {
		if lin.attr == "" || lin.a == 0 {
			return nil
		}
		return &Range{Attr: lin.attr, a: lin.a, b: lin.b, op: reverse(b.Op), rhs: b.L}
	}
	return nil
}

// linear represents a*attr + b over plain (predecessor) references.
type linear struct {
	a, b float64
	attr string
}

// linearize extracts a linear form over exactly one plain attribute
// reference; constants have attr == "".
func linearize(e Expr) (linear, bool) {
	switch n := e.(type) {
	case Const:
		return linear{0, n.V, ""}, true
	case Ref:
		if n.Next {
			return linear{}, false
		}
		return linear{1, 0, n.Attr}, true
	case Binary:
		l, okL := linearize(n.L)
		r, okR := linearize(n.R)
		if !okL || !okR {
			return linear{}, false
		}
		switch n.Op {
		case OpAdd:
			return combine(l, r, 1)
		case OpSub:
			return combine(l, r, -1)
		case OpMul:
			if l.attr == "" {
				return linear{l.b * r.a, l.b * r.b, r.attr}, true
			}
			if r.attr == "" {
				return linear{l.a * r.b, l.b * r.b, l.attr}, true
			}
			return linear{}, false
		case OpDiv:
			if r.attr == "" && r.b != 0 {
				return linear{l.a / r.b, l.b / r.b, l.attr}, true
			}
			return linear{}, false
		}
		return linear{}, false
	}
	return linear{}, false
}

func combine(l, r linear, sign float64) (linear, bool) {
	switch {
	case l.attr == "":
		return linear{sign * r.a, l.b + sign*r.b, r.attr}, true
	case r.attr == "":
		return linear{l.a, l.b + sign*r.b, l.attr}, true
	case l.attr == r.attr:
		return linear{l.a + sign*r.a, l.b + sign*r.b, l.attr}, true
	}
	return linear{}, false
}

// nextOnly reports whether e references only NEXT(...) attributes (or
// constants), i.e., is evaluable given the later event alone.
func nextOnly(e Expr) bool {
	for _, r := range Refs(e) {
		if !r.Next {
			return false
		}
	}
	return true
}

// ResolveBareRefs rewrites Ref nodes with empty aliases to the given
// default alias. Queries over single-type patterns may omit the alias.
func ResolveBareRefs(e Expr, alias string) Expr {
	switch n := e.(type) {
	case Ref:
		if n.Alias == "" {
			return Ref{Alias: alias, Attr: n.Attr, Next: n.Next}
		}
		return n
	case Binary:
		return Binary{n.Op, ResolveBareRefs(n.L, alias), ResolveBareRefs(n.R, alias)}
	}
	return e
}
