// Compiled predicate evaluation: an Expr is compiled once per graph
// into a closure tree whose Ref leaves hold schema-resolving attribute
// accessors (event.Accessor). Evaluation is semantically identical to
// the interpreting Eval — the schemaless map path remains the fallback
// — but schema-bound events are read by dense slot index, with no map
// probes and no allocation on the steady-state path.
package predicate

import (
	"math"

	"github.com/greta-cep/greta/internal/event"
)

// Compiled is an allocation-free evaluator for one Expr. The embedded
// accessors cache schema slots, so a Compiled must not be shared
// between goroutines; compile one per graph.
type Compiled struct {
	f evalFn
}

type evalFn func(b Binding) Value

// Compile builds the evaluator. The result of Eval matches the
// interpreting Eval for every binding.
func Compile(e Expr) *Compiled {
	return &Compiled{f: compileNode(e)}
}

// Eval evaluates the compiled expression under b.
func (c *Compiled) Eval(b Binding) Value { return c.f(b) }

// EvalEvent evaluates the expression as a vertex predicate: the same
// event bound to both sides.
func (c *Compiled) EvalEvent(e *event.Event) bool {
	return c.f(Binding{Prev: e, Next: e}).Truthy()
}

// EvalPair evaluates the expression as an edge predicate over an
// adjacent (prev, next) pair.
func (c *Compiled) EvalPair(prev, next *event.Event) bool {
	return c.f(Binding{Prev: prev, Next: next}).Truthy()
}

// EvalNext evaluates the expression with only the later event bound
// (used for compiled Range right-hand sides).
func (c *Compiled) EvalNext(next *event.Event) Value {
	return c.f(Binding{Next: next})
}

func compileNode(e Expr) evalFn {
	switch n := e.(type) {
	case Const:
		v := num(n.V)
		return func(Binding) Value { return v }
	case StrConst:
		v := str(n.V)
		return func(Binding) Value { return v }
	case Ref:
		if n.Attr == "time" {
			if n.Next {
				return func(b Binding) Value {
					if b.Next == nil {
						return num(math.NaN())
					}
					return num(float64(b.Next.Time))
				}
			}
			return func(b Binding) Value {
				if b.Prev == nil {
					return num(math.NaN())
				}
				return num(float64(b.Prev.Time))
			}
		}
		acc := event.NewAccessor(n.Attr)
		if n.Next {
			return func(b Binding) Value { return loadValue(&acc, b.Next) }
		}
		return func(b Binding) Value { return loadValue(&acc, b.Prev) }
	case Binary:
		l := compileNode(n.L)
		switch n.Op {
		case OpAnd:
			r := compileNode(n.R)
			return func(b Binding) Value {
				if !l(b).Truthy() {
					return boolVal(false)
				}
				return boolVal(r(b).Truthy())
			}
		case OpOr:
			r := compileNode(n.R)
			return func(b Binding) Value {
				if l(b).Truthy() {
					return boolVal(true)
				}
				return boolVal(r(b).Truthy())
			}
		}
		r := compileNode(n.R)
		op := n.Op
		return func(b Binding) Value {
			lv, rv := l(b), r(b)
			if lv.Str || rv.Str {
				return evalStr(op, lv, rv)
			}
			switch op {
			case OpAdd:
				return num(lv.F + rv.F)
			case OpSub:
				return num(lv.F - rv.F)
			case OpMul:
				return num(lv.F * rv.F)
			case OpDiv:
				return num(lv.F / rv.F)
			case OpMod:
				return num(math.Mod(lv.F, rv.F))
			case OpEq:
				return boolVal(lv.F == rv.F)
			case OpNeq:
				return boolVal(lv.F != rv.F)
			case OpGt:
				return boolVal(lv.F > rv.F)
			case OpGe:
				return boolVal(lv.F >= rv.F)
			case OpLt:
				return boolVal(lv.F < rv.F)
			case OpLe:
				return boolVal(lv.F <= rv.F)
			}
			return num(math.NaN())
		}
	}
	return func(Binding) Value { return num(math.NaN()) }
}

// loadValue mirrors the Ref case of Eval: numeric attributes win over
// strings, and a missing attribute is NaN.
func loadValue(a *event.Accessor, ev *event.Event) Value {
	if ev == nil {
		return num(math.NaN())
	}
	if v, ok := a.Float(ev); ok {
		return num(v)
	}
	if s, ok := a.Str(ev); ok {
		return str(s)
	}
	return num(math.NaN())
}
