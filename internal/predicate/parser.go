package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a θ expression, e.g.
//
//	S.price > NEXT(S).price
//	M.load < NEXT(M).load AND M.cpu >= 10
//	S.price * 1.05 < NEXT(S).price
//	S.company = "IBM"
//
// Attribute references are written alias.attr; NEXT(alias).attr binds to
// the later event of an adjacent pair. A bare identifier (no dot) is
// shorthand for a reference to attribute attr of the contextual alias
// and is resolved by the query planner; here it parses as Ref with an
// empty alias.
func Parse(src string) (Expr, error) {
	p := &eparser{toks: elex(src), src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("predicate: unexpected %q after expression in %q", p.peek().text, src)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type etokKind uint8

const (
	etIdent etokKind = iota
	etNumber
	etString
	etOp
	etLParen
	etRParen
	etDot
	etEOF
)

type etok struct {
	kind etokKind
	text string
}

func elex(src string) []etok {
	var toks []etok
	i := 0
	emit := func(k etokKind, s string) { toks = append(toks, etok{k, s}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			emit(etLParen, "(")
			i++
		case c == ')':
			emit(etRParen, ")")
			i++
		case c == '.':
			// distinguish attribute dot from a leading-dot number
			if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				j := i + 1
				for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
					j++
				}
				emit(etNumber, src[i:j])
				i = j
			} else {
				emit(etDot, ".")
				i++
			}
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				emit(etEOF, "unterminated string")
				return toks
			}
			emit(etString, src[i+1:j])
			i = j + 1
		case strings.ContainsRune("+-*/%", rune(c)):
			emit(etOp, string(c))
			i++
		case c == '=':
			emit(etOp, "=")
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(etOp, "!=")
				i += 2
			} else {
				emit(etEOF, "!")
				return toks
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(etOp, "<=")
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				emit(etOp, "!=")
				i += 2
			} else {
				emit(etOp, "<")
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(etOp, ">=")
				i += 2
			} else {
				emit(etOp, ">")
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			// Scientific notation: 1e9, 2.5E-3, 1e+22.
			if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < len(src) && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < len(src) && src[k] >= '0' && src[k] <= '9' {
					for k < len(src) && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			emit(etNumber, src[i:j])
			i = j
		default:
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			if j == i {
				emit(etEOF, string(c))
				return toks
			}
			emit(etIdent, src[i:j])
			i = j
		}
	}
	emit(etEOF, "")
	return toks
}

type eparser struct {
	toks []etok
	pos  int
	src  string
}

func (p *eparser) peek() etok { return p.toks[p.pos] }
func (p *eparser) next() etok { t := p.toks[p.pos]; p.pos++; return t }
func (p *eparser) eof() bool  { return p.peek().kind == etEOF }
func (p *eparser) isKw(k string) bool {
	t := p.peek()
	return t.kind == etIdent && strings.EqualFold(t.text, k)
}

func (p *eparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{OpOr, l, r}
	}
	return l, nil
}

func (p *eparser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.isKw("AND") {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{OpAnd, l, r}
	}
	return l, nil
}

var cmpOps = map[string]Op{"=": OpEq, "!=": OpNeq, ">": OpGt, ">=": OpGe, "<": OpLt, "<=": OpLe}

func (p *eparser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == etOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *eparser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != etOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			l = Binary{OpAdd, l, r}
		} else {
			l = Binary{OpSub, l, r}
		}
	}
}

func (p *eparser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != etOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "*":
			l = Binary{OpMul, l, r}
		case "/":
			l = Binary{OpDiv, l, r}
		case "%":
			l = Binary{OpMod, l, r}
		}
	}
}

func (p *eparser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == etOp && t.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Binary{OpSub, Const{0}, e}, nil
	}
	return p.parsePrimary()
}

func (p *eparser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case etNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("predicate: bad number %q in %q", t.text, p.src)
		}
		return Const{v}, nil
	case etString:
		p.next()
		return StrConst{t.text}, nil
	case etLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != etRParen {
			return nil, fmt.Errorf("predicate: missing ')' in %q", p.src)
		}
		p.next()
		return e, nil
	case etIdent:
		if strings.EqualFold(t.text, "NEXT") {
			p.next()
			if p.peek().kind != etLParen {
				return nil, fmt.Errorf("predicate: NEXT requires '(' in %q", p.src)
			}
			p.next()
			al := p.next()
			if al.kind != etIdent {
				return nil, fmt.Errorf("predicate: NEXT requires an alias in %q", p.src)
			}
			if p.peek().kind != etRParen {
				return nil, fmt.Errorf("predicate: missing ')' after NEXT(%s) in %q", al.text, p.src)
			}
			p.next()
			if p.peek().kind != etDot {
				return nil, fmt.Errorf("predicate: NEXT(%s) requires .attribute in %q", al.text, p.src)
			}
			p.next()
			attr := p.next()
			if attr.kind != etIdent {
				return nil, fmt.Errorf("predicate: NEXT(%s). requires an attribute name in %q", al.text, p.src)
			}
			return Ref{Alias: al.text, Attr: attr.text, Next: true}, nil
		}
		if strings.EqualFold(t.text, "TRUE") {
			p.next()
			return Const{1}, nil
		}
		if strings.EqualFold(t.text, "FALSE") {
			p.next()
			return Const{0}, nil
		}
		p.next()
		if p.peek().kind == etDot {
			p.next()
			attr := p.next()
			if attr.kind != etIdent {
				return nil, fmt.Errorf("predicate: %s. requires an attribute name in %q", t.text, p.src)
			}
			return Ref{Alias: t.text, Attr: attr.text}, nil
		}
		// Bare identifier: attribute of the contextual alias.
		return Ref{Attr: t.text}, nil
	}
	return nil, fmt.Errorf("predicate: unexpected %q in %q", t.text, p.src)
}
