package predicate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greta-cep/greta/internal/event"
)

func ev(t event.Time, attrs map[string]float64) *event.Event {
	return &event.Event{ID: uint64(t), Type: "A", Time: t, Attrs: attrs}
}

func TestParseAndEval(t *testing.T) {
	prev := ev(1, map[string]float64{"price": 10, "load": 3})
	next := ev(2, map[string]float64{"price": 8, "load": 5})
	cases := []struct {
		src  string
		want bool
	}{
		{"S.price > NEXT(S).price", true},
		{"S.price < NEXT(S).price", false},
		{"S.load < NEXT(S).load", true},
		{"S.price * 0.5 < NEXT(S).price", true},
		{"S.price >= 10 AND NEXT(S).price <= 8", true},
		{"S.price > 100 OR S.load = 3", true},
		{"S.price != 10", false},
		{"S.price - NEXT(S).price = 2", true},
		{"S.price % 3 = 1", true},
		{"S.time < NEXT(S).time", true},
		{"-S.load = -3", true},
		{"(S.price + S.load) * 2 = 26", true},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got := Eval(e, Binding{Prev: prev, Next: next}).Truthy()
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseStringPredicates(t *testing.T) {
	e := &event.Event{Type: "S", Time: 1, Str: map[string]string{"company": "IBM"}}
	expr := MustParse(`S.company = "IBM"`)
	if !Eval(expr, Binding{Prev: e, Next: e}).Truthy() {
		t.Error("company = IBM should hold")
	}
	expr = MustParse(`S.company != 'IBM'`)
	if Eval(expr, Binding{Prev: e, Next: e}).Truthy() {
		t.Error("company != IBM should not hold")
	}
}

func TestMissingAttributeIsFalse(t *testing.T) {
	e := ev(1, nil)
	expr := MustParse("S.price > 0")
	if Eval(expr, Binding{Prev: e, Next: e}).Truthy() {
		t.Error("missing attribute comparison should be false")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "S.price >", "NEXT(S", "NEXT(S).", "S..x", "1 +", "(S.x > 1", `"unterminated`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestClassify(t *testing.T) {
	aliases := map[string]bool{"S": true, "M": true}
	where := MustParse("S.price > NEXT(S).price AND S.vol >= 100 AND NEXT(M).load < 5 AND S.price + M.cpu > 0")
	_, err := Classify(where, aliases)
	if err == nil {
		t.Fatal("expected error: S.price + M.cpu references two plain aliases")
	}
	where = MustParse("S.price > NEXT(S).price AND S.vol >= 100 AND NEXT(M).load < 5")
	cls, err := Classify(where, aliases)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Edge) != 1 {
		t.Fatalf("edges = %d, want 1", len(cls.Edge))
	}
	if cls.Edge[0].From != "S" || cls.Edge[0].To != "S" {
		t.Errorf("edge from %q to %q", cls.Edge[0].From, cls.Edge[0].To)
	}
	if cls.Edge[0].Range == nil {
		t.Error("edge predicate should compile to a range")
	}
	if len(cls.Vertex) != 2 {
		t.Fatalf("vertex preds = %d, want 2 (%v)", len(cls.Vertex), cls.Vertex)
	}
}

func TestClassifyUnknownAlias(t *testing.T) {
	if _, err := Classify(MustParse("X.a > 1"), map[string]bool{"S": true}); err == nil {
		t.Error("expected unknown-alias error")
	}
}

func TestRangeBounds(t *testing.T) {
	aliases := map[string]bool{"S": true}
	next := ev(5, map[string]float64{"price": 10})
	cases := []struct {
		src            string
		lo, hi         float64
		loIncl, hiIncl bool
		exact          bool
	}{
		{"S.price > NEXT(S).price", 10, math.Inf(1), false, false, true},
		{"S.price >= NEXT(S).price", 10, math.Inf(1), true, false, true},
		{"S.price < NEXT(S).price", math.Inf(-1), 10, false, false, true},
		{"S.price <= NEXT(S).price", math.Inf(-1), 10, false, true, true},
		{"S.price = NEXT(S).price", 10, 10, true, true, true},
		// Linear transforms: S.price * 2 < NEXT(S).price  =>  price < 5.
		// Inexact keys are rounded outward, so the bound may exceed the
		// solved value by the interval-arithmetic slack.
		{"S.price * 2 < NEXT(S).price", math.Inf(-1), 5, false, false, false},
		// Reversed operand order: NEXT(S).price < S.price  =>  price > 10.
		{"NEXT(S).price < S.price", 10, math.Inf(1), false, false, true},
		// Negative coefficient flips the comparison:
		// -1 * S.price < NEXT(S).price  =>  price > -10.
		{"0 - S.price < NEXT(S).price", -10, math.Inf(1), false, false, false},
	}
	for _, c := range cases {
		cls, err := Classify(MustParse(c.src), aliases)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if len(cls.Edge) != 1 || cls.Edge[0].Range == nil {
			t.Fatalf("%s: expected one compiled range edge", c.src)
		}
		lo, hi, loI, hiI, ok := cls.Edge[0].Range.Bounds(next)
		if !ok {
			t.Fatalf("%s: Bounds not ok", c.src)
		}
		if loI != c.loIncl || hiI != c.hiIncl {
			t.Errorf("%s: inclusivity (%v,%v), want (%v,%v)", c.src, loI, hiI, c.loIncl, c.hiIncl)
		}
		if c.exact {
			if lo != c.lo || hi != c.hi {
				t.Errorf("%s: bounds (%v,%v), want exactly (%v,%v)", c.src, lo, hi, c.lo, c.hi)
			}
			continue
		}
		// Inexact: outward-rounded, so the interval must contain the
		// solved bound and exceed it by at most a tiny slack. The
		// tolerance derives from the finite bounds only (an infinite
		// expected bound would make it vacuous).
		tol := 1e-9
		if !math.IsInf(c.lo, 0) {
			tol += 1e-9 * math.Abs(c.lo)
		}
		if !math.IsInf(c.hi, 0) {
			tol += 1e-9 * math.Abs(c.hi)
		}
		if math.IsInf(c.lo, -1) {
			if lo != c.lo {
				t.Errorf("%s: lo %v, want -Inf", c.src, lo)
			}
		} else if lo > c.lo || lo < c.lo-tol {
			t.Errorf("%s: lo %v not in [%v-tol, %v]", c.src, lo, c.lo, c.lo)
		}
		if math.IsInf(c.hi, 1) {
			if hi != c.hi {
				t.Errorf("%s: hi %v, want +Inf", c.src, hi)
			}
		} else if hi < c.hi || hi > c.hi+tol {
			t.Errorf("%s: hi %v not in [%v, %v+tol]", c.src, hi, c.hi, c.hi)
		}
	}
}

// TestQuickRangeMatchesEval: for random attribute values, the compiled
// interval arithmetic must bracket direct predicate evaluation — every
// true match lies inside the outward-rounded scan bounds
// (completeness: a narrowed scan misses nothing), and every value
// inside the inward-rounded fold bounds evaluates true (soundness: a
// folded subtree needs no per-vertex re-check). For exact keys the two
// intervals coincide and membership must agree with evaluation
// bidirectionally.
func TestQuickRangeMatchesEval(t *testing.T) {
	exprs := []string{
		"S.price > NEXT(S).price",
		"S.price * 1.05 < NEXT(S).price",
		"S.price * 2 - 3 >= NEXT(S).price + 1",
		"NEXT(S).price <= S.price / 2",
		"S.price * 3 = NEXT(S).price",
	}
	aliases := map[string]bool{"S": true}
	inside := func(v, lo, hi float64, loI, hiI bool) bool {
		return (v > lo || (loI && v == lo)) && (v < hi || (hiI && v == hi))
	}
	for _, src := range exprs {
		cls, err := Classify(MustParse(src), aliases)
		if err != nil {
			t.Fatal(err)
		}
		edge := cls.Edge[0]
		if edge.Range == nil {
			t.Fatalf("%s: no range", src)
		}
		exact := edge.Range.ExactKey()
		f := func(pRaw, nRaw int16) bool {
			pv, nv := float64(pRaw)/8, float64(nRaw)/8
			prev := ev(1, map[string]float64{"price": pv})
			next := ev(2, map[string]float64{"price": nv})
			want := edge.Eval(prev, next)
			rhs := Eval(edge.Range.RHS(), Binding{Next: next})
			lo, hi, loI, hiI, ok := edge.Range.BoundsOf(rhs)
			if !ok {
				return false
			}
			in := inside(pv, lo, hi, loI, hiI)
			if want && !in {
				return false // a true match outside the scan bounds
			}
			if exact && in != want {
				return false // exact keys: membership ⇔ evaluation
			}
			if flo, fhi, floI, fhiI, fok := edge.Range.FoldBoundsOf(rhs); fok {
				if inside(pv, flo, fhi, floI, fhiI) && !want {
					return false // a fold-certified value that evaluates false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestConjuncts(t *testing.T) {
	e := MustParse("S.a > 1 AND S.b > 2 AND S.c > 3")
	if got := len(Conjuncts(e)); got != 3 {
		t.Errorf("conjuncts = %d, want 3", got)
	}
	// OR does not split.
	e = MustParse("S.a > 1 OR S.b > 2")
	if got := len(Conjuncts(e)); got != 1 {
		t.Errorf("conjuncts = %d, want 1", got)
	}
}

func TestResolveBareRefs(t *testing.T) {
	e := MustParse("price > NEXT(S).price")
	r := ResolveBareRefs(e, "S")
	refs := Refs(r)
	for _, ref := range refs {
		if ref.Alias != "S" {
			t.Errorf("unresolved ref %v", ref)
		}
	}
}
