// Package predicate implements the predicate language θ of the GRETA
// query grammar (paper Fig. 2):
//
//	θ := Constant | EventType.Attribute | NEXT(EventType).Attribute | θ O θ
//	O := + | - | / | * | % | = | != | > | >= | < | <= | AND | OR
//
// and the classification of predicates into vertex predicates (local and
// equivalence) and edge predicates (paper §6). Edge predicates are
// additionally compiled into range-query bounds so the runtime's Vertex
// Tree can locate predecessor events in logarithmic time (paper §7).
package predicate

import (
	"fmt"
	"math"

	"github.com/greta-cep/greta/internal/event"
)

// Op enumerates binary operators.
type Op uint8

// Binary operators of the θ grammar.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpGt
	OpGe
	OpLt
	OpLe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNeq: "!=", OpGt: ">", OpGe: ">=", OpLt: "<", OpLe: "<=",
	OpAnd: "AND", OpOr: "OR",
}

func (o Op) String() string { return opNames[o] }

// Expr is a predicate expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// Const is a numeric literal.
type Const struct{ V float64 }

// StrConst is a string literal.
type StrConst struct{ V string }

// Ref references an attribute of an event bound by alias. Next marks a
// NEXT(alias).attr reference (the later event of an adjacent pair).
// Attr may be the pseudo-attribute "time" to reference timestamps.
type Ref struct {
	Alias string
	Attr  string
	Next  bool
}

// Binary applies Op to L and R.
type Binary struct {
	Op   Op
	L, R Expr
}

func (Const) expr()    {}
func (StrConst) expr() {}
func (Ref) expr()      {}
func (Binary) expr()   {}

func (c Const) String() string    { return trimFloat(c.V) }
func (s StrConst) String() string { return fmt.Sprintf("%q", s.V) }
func (r Ref) String() string {
	if r.Next {
		return fmt.Sprintf("NEXT(%s).%s", r.Alias, r.Attr)
	}
	if r.Alias == "" {
		// Bare attribute shorthand, resolved by the planner.
		return r.Attr
	}
	return fmt.Sprintf("%s.%s", r.Alias, r.Attr)
}
func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Value is the result of evaluating an expression: a number, a string,
// or a boolean (numbers double as booleans: non-zero is true).
type Value struct {
	F   float64
	S   string
	Str bool
}

func num(f float64) Value { return Value{F: f} }
func str(s string) Value  { return Value{S: s, Str: true} }
func boolVal(b bool) Value {
	if b {
		return Value{F: 1}
	}
	return Value{F: 0}
}

// Truthy reports whether the value is boolean-true.
func (v Value) Truthy() bool { return v.Str && v.S != "" || !v.Str && v.F != 0 }

// Binding supplies the events referenced by an expression. Prev is the
// earlier event of an adjacent pair (plain alias references); Next is
// the later event (NEXT(alias) references). For vertex predicates the
// same event is bound to both.
type Binding struct {
	Prev *event.Event
	Next *event.Event
}

// Eval evaluates e under b. Missing attributes evaluate to NaN (numeric)
// or "" (string), which makes comparisons involving them false.
func Eval(e Expr, b Binding) Value {
	switch n := e.(type) {
	case Const:
		return num(n.V)
	case StrConst:
		return str(n.V)
	case Ref:
		ev := b.Prev
		if n.Next {
			ev = b.Next
		}
		if ev == nil {
			return num(math.NaN())
		}
		if n.Attr == "time" {
			return num(float64(ev.Time))
		}
		if v, ok := ev.Attrs[n.Attr]; ok {
			return num(v)
		}
		if s, ok := ev.Str[n.Attr]; ok {
			return str(s)
		}
		return num(math.NaN())
	case Binary:
		l := Eval(n.L, b)
		// Short-circuit booleans.
		switch n.Op {
		case OpAnd:
			if !l.Truthy() {
				return boolVal(false)
			}
			return boolVal(Eval(n.R, b).Truthy())
		case OpOr:
			if l.Truthy() {
				return boolVal(true)
			}
			return boolVal(Eval(n.R, b).Truthy())
		}
		r := Eval(n.R, b)
		if l.Str || r.Str {
			return evalStr(n.Op, l, r)
		}
		switch n.Op {
		case OpAdd:
			return num(l.F + r.F)
		case OpSub:
			return num(l.F - r.F)
		case OpMul:
			return num(l.F * r.F)
		case OpDiv:
			return num(l.F / r.F)
		case OpMod:
			return num(math.Mod(l.F, r.F))
		case OpEq:
			return boolVal(l.F == r.F)
		case OpNeq:
			return boolVal(l.F != r.F)
		case OpGt:
			return boolVal(l.F > r.F)
		case OpGe:
			return boolVal(l.F >= r.F)
		case OpLt:
			return boolVal(l.F < r.F)
		case OpLe:
			return boolVal(l.F <= r.F)
		}
	}
	return num(math.NaN())
}

func evalStr(op Op, l, r Value) Value {
	ls, rs := l.S, r.S
	if !l.Str {
		ls = trimFloat(l.F)
	}
	if !r.Str {
		rs = trimFloat(r.F)
	}
	switch op {
	case OpEq:
		return boolVal(ls == rs)
	case OpNeq:
		return boolVal(ls != rs)
	case OpGt:
		return boolVal(ls > rs)
	case OpGe:
		return boolVal(ls >= rs)
	case OpLt:
		return boolVal(ls < rs)
	case OpLe:
		return boolVal(ls <= rs)
	case OpAdd:
		return str(ls + rs)
	}
	return num(math.NaN())
}

// Refs appends all Ref leaves of e.
func Refs(e Expr) []Ref {
	var out []Ref
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case Ref:
			out = append(out, n)
		case Binary:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(e)
	return out
}
